#include "core/wire.hpp"

#include <cstring>
#include <string>

namespace dmfsgd::core {

namespace {

// --- encoding primitives (little-endian, explicit byte order) -------------

void PutU8(std::vector<std::byte>& out, std::uint8_t value) {
  out.push_back(static_cast<std::byte>(value));
}

void PutU16(std::vector<std::byte>& out, std::uint16_t value) {
  PutU8(out, static_cast<std::uint8_t>(value & 0xff));
  PutU8(out, static_cast<std::uint8_t>(value >> 8));
}

void PutU32(std::vector<std::byte>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    PutU8(out, static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

void PutDouble(std::vector<std::byte>& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    PutU8(out, static_cast<std::uint8_t>((bits >> shift) & 0xff));
  }
}

void PutVector(std::vector<std::byte>& out, const std::vector<double>& values) {
  if (values.size() > kMaxWireVectorSize) {
    throw WireError("Encode: coordinate vector too long");
  }
  PutU16(out, static_cast<std::uint16_t>(values.size()));
  for (const double v : values) {
    PutDouble(out, v);
  }
}

// --- decoding primitives ---------------------------------------------------

class Reader {
 public:
  explicit Reader(std::span<const std::byte> buffer) : buffer_(buffer) {}

  [[nodiscard]] std::uint8_t U8() {
    Need(1);
    return static_cast<std::uint8_t>(buffer_[offset_++]);
  }

  [[nodiscard]] std::uint16_t U16() {
    const auto lo = U8();
    const auto hi = U8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  [[nodiscard]] std::uint32_t U32() {
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(U8()) << shift;
    }
    return value;
  }

  [[nodiscard]] double Double() {
    Need(8);
    std::uint64_t bits = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      bits |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                  buffer_[offset_++]))
              << shift;
    }
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  [[nodiscard]] std::vector<double> Vector() {
    const std::uint16_t count = U16();
    if (count > kMaxWireVectorSize) {
      throw WireError("Decode: coordinate vector length out of bounds");
    }
    std::vector<double> values(count);
    for (double& v : values) {
      v = Double();
    }
    return values;
  }

  void ExpectEnd() const {
    if (offset_ != buffer_.size()) {
      throw WireError("Decode: trailing bytes in message");
    }
  }

 private:
  void Need(std::size_t bytes) const {
    if (offset_ + bytes > buffer_.size()) {
      throw WireError("Decode: truncated message");
    }
  }

  std::span<const std::byte> buffer_;
  std::size_t offset_ = 0;
};

void PutHeader(std::vector<std::byte>& out, MessageType type) {
  PutU8(out, kWireVersion);
  PutU8(out, static_cast<std::uint8_t>(type));
}

Reader OpenMessage(std::span<const std::byte> buffer, MessageType expected) {
  Reader reader(buffer);
  const std::uint8_t version = reader.U8();
  if (version != kWireVersion) {
    throw WireError("Decode: unsupported wire version " + std::to_string(version));
  }
  const std::uint8_t tag = reader.U8();
  if (tag != static_cast<std::uint8_t>(expected)) {
    throw WireError("Decode: unexpected message type " + std::to_string(tag));
  }
  return reader;
}

}  // namespace

std::vector<std::byte> Encode(const RttProbeRequest& message) {
  std::vector<std::byte> out;
  PutHeader(out, MessageType::kRttProbeRequest);
  PutU32(out, message.prober);
  return out;
}

std::vector<std::byte> Encode(const RttProbeReply& message) {
  std::vector<std::byte> out;
  PutHeader(out, MessageType::kRttProbeReply);
  PutU32(out, message.target);
  PutVector(out, message.u);
  PutVector(out, message.v);
  return out;
}

std::vector<std::byte> Encode(const AbwProbeRequest& message) {
  std::vector<std::byte> out;
  PutHeader(out, MessageType::kAbwProbeRequest);
  PutU32(out, message.prober);
  PutVector(out, message.u);
  PutDouble(out, message.rate_mbps);
  return out;
}

std::vector<std::byte> Encode(const AbwProbeReply& message) {
  std::vector<std::byte> out;
  PutHeader(out, MessageType::kAbwProbeReply);
  PutU32(out, message.target);
  PutDouble(out, message.measurement);
  PutVector(out, message.v);
  return out;
}

MessageType PeekType(std::span<const std::byte> buffer) {
  Reader reader(buffer);
  const std::uint8_t version = reader.U8();
  if (version != kWireVersion) {
    throw WireError("PeekType: unsupported wire version");
  }
  const std::uint8_t tag = reader.U8();
  if (tag < static_cast<std::uint8_t>(MessageType::kRttProbeRequest) ||
      tag > static_cast<std::uint8_t>(MessageType::kMessageBatch)) {
    throw WireError("PeekType: unknown message type " + std::to_string(tag));
  }
  return static_cast<MessageType>(tag);
}

RttProbeRequest DecodeRttProbeRequest(std::span<const std::byte> buffer) {
  Reader reader = OpenMessage(buffer, MessageType::kRttProbeRequest);
  RttProbeRequest message;
  message.prober = reader.U32();
  reader.ExpectEnd();
  return message;
}

RttProbeReply DecodeRttProbeReply(std::span<const std::byte> buffer) {
  Reader reader = OpenMessage(buffer, MessageType::kRttProbeReply);
  RttProbeReply message;
  message.target = reader.U32();
  message.u = reader.Vector();
  message.v = reader.Vector();
  reader.ExpectEnd();
  return message;
}

AbwProbeRequest DecodeAbwProbeRequest(std::span<const std::byte> buffer) {
  Reader reader = OpenMessage(buffer, MessageType::kAbwProbeRequest);
  AbwProbeRequest message;
  message.prober = reader.U32();
  message.u = reader.Vector();
  message.rate_mbps = reader.Double();
  reader.ExpectEnd();
  return message;
}

AbwProbeReply DecodeAbwProbeReply(std::span<const std::byte> buffer) {
  Reader reader = OpenMessage(buffer, MessageType::kAbwProbeReply);
  AbwProbeReply message;
  message.target = reader.U32();
  message.measurement = reader.Double();
  message.v = reader.Vector();
  reader.ExpectEnd();
  return message;
}

}  // namespace dmfsgd::core
