#include "core/multiclass.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

namespace {

using datasets::Dataset;
using datasets::LowerIsBetter;
using datasets::Metric;

void RequireConfig(const Dataset& dataset, const MulticlassConfig& config) {
  if (config.num_classes < 2) {
    throw std::invalid_argument("OrdinalDmfsgd: need at least 2 classes");
  }
  if (config.thresholds.size() != config.num_classes - 1) {
    throw std::invalid_argument("OrdinalDmfsgd: need C-1 thresholds");
  }
  if (config.rank == 0) {
    throw std::invalid_argument("OrdinalDmfsgd: rank must be > 0");
  }
  if (config.neighbor_count == 0 ||
      config.neighbor_count >= dataset.NodeCount()) {
    throw std::invalid_argument("OrdinalDmfsgd: invalid neighbor_count");
  }
}

/// Logistic gradient on the margin y (s - b):  dl/ds = -y / (1 + e^{y(s-b)}).
double LogisticScale(double y, double margin) noexcept {
  if (margin > 35.0) {
    return 0.0;
  }
  return -y / (1.0 + std::exp(margin));
}

}  // namespace

std::size_t LevelOf(Metric metric, double quantity,
                    std::span<const double> thresholds) {
  std::size_t level = 0;
  for (const double t : thresholds) {
    const bool clears = LowerIsBetter(metric) ? quantity <= t : quantity >= t;
    if (clears) {
      ++level;
    }
  }
  return level;
}

std::vector<double> EqualMassThresholds(const Dataset& dataset,
                                        std::size_t num_classes) {
  if (num_classes < 2) {
    throw std::invalid_argument("EqualMassThresholds: need at least 2 classes");
  }
  std::vector<double> thresholds(num_classes - 1);
  for (std::size_t c = 0; c < thresholds.size(); ++c) {
    // Quality increases with the threshold index: level c requires clearing
    // thresholds 0..c-1.  For RTT "clearing" means being below, so the RTT
    // thresholds must descend as quality rises; percentiles handle both.
    const double portion =
        static_cast<double>(c + 1) / static_cast<double>(num_classes);
    const double percentile = datasets::LowerIsBetter(dataset.metric)
                                  ? (1.0 - portion) * 100.0
                                  : portion * 100.0;
    thresholds[c] = dataset.PercentileValue(percentile);
  }
  return thresholds;
}

OrdinalDmfsgdSimulation::OrdinalDmfsgdSimulation(const Dataset& dataset,
                                                 const MulticlassConfig& config)
    : dataset_(&dataset), config_(config), rng_(config.seed) {
  RequireConfig(dataset, config);
  config_.params.loss = LossKind::kLogistic;  // the ordinal scheme is logistic

  const std::size_t n = dataset.NodeCount();
  store_.Reset(n, config_.rank);
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i), store_, i, rng_);
  }
  // Biases start spread in [0, 1) ascending so thresholds are distinct.
  const std::size_t stride = config_.num_classes - 1;
  biases_.resize(n * stride);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = MutableBiases(i);
    for (std::size_t t = 0; t < b.size(); ++t) {
      b[t] = static_cast<double>(t + 1) /
             static_cast<double>(config_.num_classes);
    }
  }

  neighbors_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<NodeId> candidates;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && dataset.IsKnown(i, j)) {
        candidates.push_back(static_cast<NodeId>(j));
      }
    }
    if (candidates.size() < config_.neighbor_count) {
      throw std::invalid_argument(
          "OrdinalDmfsgd: node has fewer measurable pairs than k");
    }
    rng_.Shuffle(std::span(candidates));
    candidates.resize(config_.neighbor_count);
    std::sort(candidates.begin(), candidates.end());
    neighbors_[i] = std::move(candidates);
  }
}

bool OrdinalDmfsgdSimulation::IsNeighborPair(std::size_t i, std::size_t j) const {
  const auto& nb = neighbors_[i];
  return std::binary_search(nb.begin(), nb.end(), static_cast<NodeId>(j));
}

std::span<const double> OrdinalDmfsgdSimulation::Biases(std::size_t i) const {
  if (i >= nodes_.size()) {
    throw std::out_of_range("OrdinalDmfsgd::Biases: index out of range");
  }
  const std::size_t stride = config_.num_classes - 1;
  return {biases_.data() + i * stride, stride};
}

void OrdinalDmfsgdSimulation::Probe(NodeId i, NodeId j) {
  const std::size_t level =
      LevelOf(dataset_->metric, dataset_->Quantity(i, j), config_.thresholds);
  const auto u_j = nodes_[j].UCopy();
  const auto v_j = nodes_[j].VCopy();

  // Accumulate threshold gradients on the shared score s = u_i · v_j ...
  const double s_ij = nodes_[i].Predict(v_j);
  double g_u_total = 0.0;
  const auto b = MutableBiases(i);
  for (std::size_t t = 0; t < b.size(); ++t) {
    const double y = level > t ? 1.0 : -1.0;
    const double g = LogisticScale(y, y * (s_ij - b[t]));
    g_u_total += g;
    // dl/db = -dl/ds = -g  =>  b -= η (-g)  =>  b += η g.
    b[t] += config_.params.eta * g;
  }
  // ... and symmetrically on s' = u_j · v_i for the v_i update (RTT-style
  // symmetric exchange, x_ji = x_ij).
  const double s_ji = linalg::Dot(u_j, nodes_[i].v());
  double g_v_total = 0.0;
  for (std::size_t t = 0; t < b.size(); ++t) {
    const double y = level > t ? 1.0 : -1.0;
    g_v_total += LogisticScale(y, y * (s_ji - b[t]));
  }

  nodes_[i].GradientStepU(g_u_total, v_j, config_.params);
  nodes_[i].GradientStepV(g_v_total, u_j, config_.params);
}

void OrdinalDmfsgdSimulation::RunRounds(std::size_t rounds) {
  for (std::size_t round = 0; round < rounds; ++round) {
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      const auto& nb = neighbors_[i];
      const NodeId j = nb[rng_.UniformInt(static_cast<std::uint64_t>(nb.size()))];
      Probe(i, j);
    }
  }
}

std::size_t OrdinalDmfsgdSimulation::PredictLevel(std::size_t i,
                                                  std::size_t j) const {
  if (i >= nodes_.size() || j >= nodes_.size()) {
    throw std::out_of_range("OrdinalDmfsgd::PredictLevel: index out of range");
  }
  const double s = nodes_[i].Predict(nodes_[j].v());
  std::size_t level = 0;
  for (const double b : Biases(i)) {
    if (s > b) {
      ++level;
    }
  }
  return level;
}

std::size_t OrdinalDmfsgdSimulation::TrueLevel(std::size_t i, std::size_t j) const {
  if (!dataset_->IsKnown(i, j)) {
    throw std::invalid_argument("OrdinalDmfsgd::TrueLevel: pair unknown");
  }
  return LevelOf(dataset_->metric, dataset_->Quantity(i, j), config_.thresholds);
}

OrdinalDmfsgdSimulation::Evaluation OrdinalDmfsgdSimulation::Evaluate() const {
  Evaluation eval;
  double absolute_error = 0.0;
  std::size_t exact = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (i == j || !dataset_->IsKnown(i, j) || IsNeighborPair(i, j)) {
        continue;
      }
      const std::size_t predicted = PredictLevel(i, j);
      const std::size_t actual = TrueLevel(i, j);
      const auto diff = predicted > actual ? predicted - actual : actual - predicted;
      absolute_error += static_cast<double>(diff);
      if (diff == 0) {
        ++exact;
      }
      ++eval.pair_count;
    }
  }
  if (eval.pair_count > 0) {
    eval.accuracy = static_cast<double>(exact) / static_cast<double>(eval.pair_count);
    eval.mean_absolute_error = absolute_error / static_cast<double>(eval.pair_count);
  }
  return eval;
}

}  // namespace dmfsgd::core
