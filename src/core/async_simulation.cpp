#include "core/async_simulation.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmfsgd::core {

namespace {

using datasets::Dataset;
using datasets::Metric;

}  // namespace

AsyncDmfsgdSimulation::AsyncDmfsgdSimulation(const Dataset& dataset,
                                             const AsyncSimulationConfig& config,
                                             const ErrorInjector* injector)
    : dataset_(&dataset),
      config_(config),
      injector_(injector),
      rng_(config.base.seed) {
  if (config.mean_probe_interval_s <= 0.0) {
    throw std::invalid_argument(
        "AsyncDmfsgdSimulation: mean_probe_interval_s must be > 0");
  }
  if (config.min_oneway_delay_s <= 0.0 ||
      config.max_oneway_delay_s < config.min_oneway_delay_s) {
    throw std::invalid_argument("AsyncDmfsgdSimulation: bad one-way delay range");
  }
  // Reuse the synchronous simulator's validation for the shared knobs by
  // constructing the node and neighbor state the same way it does.
  if (config.base.rank == 0 || config.base.neighbor_count == 0 ||
      config.base.neighbor_count >= dataset.NodeCount() || config.base.tau <= 0.0 ||
      config.base.message_loss < 0.0 || config.base.message_loss >= 1.0 ||
      config.base.params.eta <= 0.0 || config.base.params.lambda < 0.0) {
    throw std::invalid_argument("AsyncDmfsgdSimulation: invalid base config");
  }
  if (injector_ != nullptr && injector_->NodeCount() != dataset.NodeCount()) {
    throw std::invalid_argument(
        "AsyncDmfsgdSimulation: injector node count mismatch");
  }

  delay_seed_ = rng_();
  const std::size_t n = dataset.NodeCount();
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i), config_.base.rank, rng_);
  }
  neighbors_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<NodeId> candidates;
    candidates.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && dataset.IsKnown(i, j)) {
        candidates.push_back(static_cast<NodeId>(j));
      }
    }
    if (candidates.size() < config_.base.neighbor_count) {
      throw std::invalid_argument(
          "AsyncDmfsgdSimulation: node has fewer measurable pairs than k");
    }
    rng_.Shuffle(std::span(candidates));
    candidates.resize(config_.base.neighbor_count);
    std::sort(candidates.begin(), candidates.end());
    neighbors_[i] = std::move(candidates);
  }

  // Kick off every node's probe loop with a random initial phase so the
  // Poisson processes don't fire in lockstep at t = 0.
  for (NodeId i = 0; i < n; ++i) {
    ScheduleNextProbe(i);
  }
}

bool AsyncDmfsgdSimulation::IsNeighborPair(std::size_t i, std::size_t j) const {
  if (i >= nodes_.size() || j >= nodes_.size()) {
    throw std::out_of_range("AsyncDmfsgdSimulation::IsNeighborPair: out of range");
  }
  const auto& nb = neighbors_[i];
  return std::binary_search(nb.begin(), nb.end(), static_cast<NodeId>(j));
}

double AsyncDmfsgdSimulation::AverageMeasurementsPerNode() const noexcept {
  return static_cast<double>(measurement_count_) /
         static_cast<double>(nodes_.size());
}

double AsyncDmfsgdSimulation::Predict(std::size_t i, std::size_t j) const {
  if (i >= nodes_.size() || j >= nodes_.size()) {
    throw std::out_of_range("AsyncDmfsgdSimulation::Predict: out of range");
  }
  return nodes_[i].Predict(nodes_[j].v());
}

double AsyncDmfsgdSimulation::OneWayDelay(NodeId i, NodeId j) const {
  if (dataset_->metric == Metric::kRtt) {
    return dataset_->Quantity(i, j) / 2.0 / 1000.0;  // ms -> s
  }
  // ABW datasets carry no delay; derive a symmetric per-pair delay from a
  // keyed hash so repeated exchanges see a consistent network.
  const std::uint64_t lo = std::min<std::uint64_t>(i, j);
  const std::uint64_t hi = std::max<std::uint64_t>(i, j);
  std::uint64_t state = delay_seed_ ^ (lo * 0x9e3779b97f4a7c15ULL + hi);
  common::Rng pair_rng(common::SplitMix64Next(state));
  return pair_rng.Uniform(config_.min_oneway_delay_s, config_.max_oneway_delay_s);
}

double AsyncDmfsgdSimulation::MeasurementFor(NodeId i, NodeId j) const {
  const double quantity = dataset_->Quantity(i, j);
  if (config_.base.mode == PredictionMode::kRegression) {
    return quantity / config_.base.tau;
  }
  if (injector_ != nullptr) {
    return static_cast<double>(injector_->Label(i, j));
  }
  return static_cast<double>(
      datasets::ClassOf(dataset_->metric, quantity, config_.base.tau));
}

bool AsyncDmfsgdSimulation::LegLost() {
  if (config_.base.message_loss <= 0.0) {
    return false;
  }
  const bool lost = rng_.Bernoulli(config_.base.message_loss);
  if (lost) {
    ++dropped_legs_;
  }
  return lost;
}

void AsyncDmfsgdSimulation::ScheduleNextProbe(NodeId i) {
  const double wait = rng_.Exponential(1.0 / config_.mean_probe_interval_s);
  events_.Schedule(wait, [this, i] {
    StartProbe(i);
    ScheduleNextProbe(i);
  });
}

void AsyncDmfsgdSimulation::StartProbe(NodeId i) {
  const auto& nb = neighbors_[i];
  const NodeId j = nb[rng_.UniformInt(static_cast<std::uint64_t>(nb.size()))];
  const double oneway = OneWayDelay(i, j);
  const UpdateParams params = config_.base.params;
  ++in_flight_;

  if (dataset_->metric == Metric::kRtt) {
    // Algorithm 1, asynchronous: the request carries nothing; the reply
    // carries (u_j, v_j) *as of the moment j answers*.
    if (LegLost()) {
      --in_flight_;
      return;
    }
    events_.Schedule(oneway, [this, i, j, oneway, params] {
      if (LegLost()) {
        --in_flight_;
        return;
      }
      // Snapshot at send time of the reply: stale by `oneway` on arrival.
      RttProbeReply reply{j, nodes_[j].UCopy(), nodes_[j].VCopy()};
      events_.Schedule(oneway, [this, i, j, reply = std::move(reply), params] {
        const double x = MeasurementFor(i, j);
        nodes_[i].RttUpdate(x, reply.u, reply.v, params);
        ++measurement_count_;
        --in_flight_;
      });
    });
    return;
  }

  // Algorithm 2, asynchronous: the request carries u_i (snapshot at send
  // time); the target measures, updates v_j, and replies with its
  // *pre-update* v_j.
  if (LegLost()) {
    --in_flight_;
    return;
  }
  AbwProbeRequest request{i, nodes_[i].UCopy(), config_.base.tau};
  events_.Schedule(oneway, [this, i, j, oneway, request = std::move(request),
                            params] {
    const double x = MeasurementFor(i, j);
    AbwProbeReply reply{j, x, nodes_[j].VCopy()};
    nodes_[j].AbwTargetUpdate(x, request.u, params);
    ++measurement_count_;
    if (LegLost()) {
      --in_flight_;
      return;
    }
    events_.Schedule(oneway, [this, i, reply = std::move(reply), params] {
      nodes_[i].AbwProberUpdate(reply.measurement, reply.v, params);
      --in_flight_;
    });
  });
}

void AsyncDmfsgdSimulation::RunUntil(double until_s) {
  if (until_s < events_.Now()) {
    throw std::invalid_argument("AsyncDmfsgdSimulation::RunUntil: time in the past");
  }
  events_.RunUntil(until_s);
}

}  // namespace dmfsgd::core
