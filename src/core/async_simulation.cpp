#include "core/async_simulation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hpp"
#include "netsim/shard_runtime.hpp"

namespace dmfsgd::core {

namespace {

using datasets::Metric;

const AsyncSimulationConfig& Validate(const AsyncSimulationConfig& config) {
  if (config.mean_probe_interval_s <= 0.0) {
    throw std::invalid_argument(
        "AsyncDmfsgdSimulation: mean_probe_interval_s must be > 0");
  }
  if (config.min_oneway_delay_s <= 0.0 ||
      config.max_oneway_delay_s < config.min_oneway_delay_s) {
    throw std::invalid_argument("AsyncDmfsgdSimulation: bad one-way delay range");
  }
  return config;
}

std::size_t ResolveShardCount(const AsyncSimulationConfig& config) {
  if (config.shard_count != 0) {
    return config.shard_count;
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

/// The minimum one-way delay any message can experience — the conservative
/// lookahead of the parallel drain.  RTT datasets derive delays from the
/// ground truth, so scan it; ABW delays are hash-drawn from the configured
/// range, whose lower bound is the answer.
double MinOneWayDelay(const datasets::Dataset& dataset,
                      const AsyncSimulationConfig& config) {
  if (dataset.metric != Metric::kRtt) {
    return config.min_oneway_delay_s;
  }
  double min_rtt = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < dataset.NodeCount(); ++i) {
    for (std::size_t j = 0; j < dataset.NodeCount(); ++j) {
      if (i != j && dataset.IsKnown(i, j)) {
        min_rtt = std::min(min_rtt, dataset.Quantity(i, j));
      }
    }
  }
  return min_rtt / 2.0 / 1000.0;  // ms -> s, one way
}

}  // namespace

AsyncDmfsgdSimulation::AsyncDmfsgdSimulation(const datasets::Dataset& dataset,
                                             const AsyncSimulationConfig& config,
                                             const ErrorInjector* injector)
    : config_(Validate(config)),
      events_(dataset.NodeCount(), ResolveShardCount(config)),
      delayed_(events_,
               [this](NodeId i, NodeId j) { return OneWayDelay(i, j); },
               config.base.coalesce_delivery),
      engine_(dataset, config.base, injector,
              StackChannel(delayed_, wire_, config.base.use_wire_format)),
      lookahead_s_(MinOneWayDelay(dataset, config)) {
  delay_seed_ = engine_.rng()();

  // Kick off every node's probe loop with a random initial phase so the
  // Poisson processes don't fire in lockstep at t = 0.
  for (NodeId i = 0; i < engine_.NodeCount(); ++i) {
    ScheduleNextProbe(i);
  }
}

double AsyncDmfsgdSimulation::OneWayDelay(NodeId i, NodeId j) const {
  if (engine_.dataset().metric == Metric::kRtt) {
    return engine_.dataset().Quantity(i, j) / 2.0 / 1000.0;  // ms -> s
  }
  // ABW datasets carry no delay; derive a symmetric per-pair delay from a
  // keyed hash so repeated exchanges see a consistent network.
  const std::uint64_t lo = std::min<std::uint64_t>(i, j);
  const std::uint64_t hi = std::max<std::uint64_t>(i, j);
  std::uint64_t state = delay_seed_ ^ (lo * 0x9e3779b97f4a7c15ULL + hi);
  common::Rng pair_rng(common::SplitMix64Next(state));
  return pair_rng.Uniform(config_.min_oneway_delay_s, config_.max_oneway_delay_s);
}

void AsyncDmfsgdSimulation::ScheduleNextProbe(NodeId i) {
  // Think times come from the engine stream normally and from the node's
  // private stream during a sharded drain, so a draining node's timer chain
  // stays a pure function of its own history.
  common::Rng& rng =
      engine_.ShardedDrainActive() ? engine_.NodeRng(i) : engine_.rng();
  const double wait = rng.Exponential(1.0 / config_.mean_probe_interval_s);
  events_.Schedule(i, wait, [this, i] {
    StartProbe(i);
    ScheduleNextProbe(i);
  });
}

void AsyncDmfsgdSimulation::StartProbe(NodeId i) {
  // Per-probe churn roll: the async analogue of the round-based driver's
  // per-round sweep (each node fires about once per mean interval).  The
  // roll covers the whole burst — one membership decision per firing.
  common::Rng& rng =
      engine_.ShardedDrainActive() ? engine_.NodeRng(i) : engine_.rng();
  (void)engine_.MaybeChurnNodeWith(i, rng);
  for (std::size_t b = 0; b < engine_.config().probe_burst; ++b) {
    const NodeId j = engine_.PickNeighborWith(i, rng);
    engine_.StartExchange(i, j, std::nullopt);
  }
}

void AsyncDmfsgdSimulation::RunUntil(double until_s) {
  if (until_s < events_.Now()) {
    throw std::invalid_argument("AsyncDmfsgdSimulation::RunUntil: time in the past");
  }
  events_.RunUntil(until_s);
}

const netsim::LookaheadMatrix& AsyncDmfsgdSimulation::PairLookaheads() {
  if (pair_lookaheads_.has_value()) {
    return *pair_lookaheads_;
  }
  const std::size_t shards = events_.ShardCount();
  if (!config_.use_pair_lookaheads || shards == 1) {
    pair_lookaheads_.emplace(shards, lookahead_s_);
    return *pair_lookaheads_;
  }
  // Cell (a, b) = the minimum delay any message from block a to block b can
  // experience.  Messages only ever travel between measurable pairs
  // (neighbor sets are IsKnown-restricted, through churn too), so blocks
  // with no measurable pair keep +infinity — no event ever crosses them.
  netsim::LookaheadMatrix matrix(
      shards, std::numeric_limits<double>::infinity());
  const datasets::Dataset& dataset = engine_.dataset();
  const bool rtt = dataset.metric == Metric::kRtt;
  const std::size_t n = dataset.NodeCount();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t from = events_.ShardOf(static_cast<NodeId>(i));
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || (rtt && !dataset.IsKnown(i, j))) {
        continue;
      }
      const std::size_t to = events_.ShardOf(static_cast<NodeId>(j));
      const double delay =
          OneWayDelay(static_cast<NodeId>(i), static_cast<NodeId>(j));
      if (delay < matrix.At(from, to)) {
        matrix.Set(from, to, delay);
      }
    }
  }
  pair_lookaheads_ = std::move(matrix);
  return *pair_lookaheads_;
}

void AsyncDmfsgdSimulation::RunUntilParallel(double until_s,
                                             common::ThreadPool& pool) {
  if (until_s < events_.Now()) {
    throw std::invalid_argument(
        "AsyncDmfsgdSimulation::RunUntilParallel: time in the past");
  }
  const netsim::LookaheadMatrix& lookaheads = PairLookaheads();
  engine_.BeginShardedDrain();
  try {
    events_.RunUntilParallel(until_s, pool, lookaheads);
  } catch (...) {
    engine_.EndShardedDrain();
    throw;
  }
  engine_.EndShardedDrain();
}

void AsyncDmfsgdSimulation::RunUntilDistributed(double until_s,
                                                common::ThreadPool& pool,
                                                netsim::ShardRuntime& runtime) {
  if (until_s < events_.Now()) {
    throw std::invalid_argument(
        "AsyncDmfsgdSimulation::RunUntilDistributed: time in the past");
  }
  engine_.BeginShardedDrain();
  try {
    runtime.RunUntil(until_s, pool);
  } catch (...) {
    engine_.EndShardedDrain();
    throw;
  }
  engine_.EndShardedDrain();
}

}  // namespace dmfsgd::core
