#include "core/async_simulation.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmfsgd::core {

namespace {

using datasets::Metric;

const AsyncSimulationConfig& Validate(const AsyncSimulationConfig& config) {
  if (config.mean_probe_interval_s <= 0.0) {
    throw std::invalid_argument(
        "AsyncDmfsgdSimulation: mean_probe_interval_s must be > 0");
  }
  if (config.min_oneway_delay_s <= 0.0 ||
      config.max_oneway_delay_s < config.min_oneway_delay_s) {
    throw std::invalid_argument("AsyncDmfsgdSimulation: bad one-way delay range");
  }
  return config;
}

}  // namespace

AsyncDmfsgdSimulation::AsyncDmfsgdSimulation(const datasets::Dataset& dataset,
                                             const AsyncSimulationConfig& config,
                                             const ErrorInjector* injector)
    : config_(Validate(config)),
      delayed_(events_,
               [this](NodeId i, NodeId j) { return OneWayDelay(i, j); }),
      engine_(dataset, config.base, injector,
              StackChannel(delayed_, wire_, config.base.use_wire_format)) {
  delay_seed_ = engine_.rng()();

  // Kick off every node's probe loop with a random initial phase so the
  // Poisson processes don't fire in lockstep at t = 0.
  for (NodeId i = 0; i < engine_.NodeCount(); ++i) {
    ScheduleNextProbe(i);
  }
}

double AsyncDmfsgdSimulation::OneWayDelay(NodeId i, NodeId j) const {
  if (engine_.dataset().metric == Metric::kRtt) {
    return engine_.dataset().Quantity(i, j) / 2.0 / 1000.0;  // ms -> s
  }
  // ABW datasets carry no delay; derive a symmetric per-pair delay from a
  // keyed hash so repeated exchanges see a consistent network.
  const std::uint64_t lo = std::min<std::uint64_t>(i, j);
  const std::uint64_t hi = std::max<std::uint64_t>(i, j);
  std::uint64_t state = delay_seed_ ^ (lo * 0x9e3779b97f4a7c15ULL + hi);
  common::Rng pair_rng(common::SplitMix64Next(state));
  return pair_rng.Uniform(config_.min_oneway_delay_s, config_.max_oneway_delay_s);
}

void AsyncDmfsgdSimulation::ScheduleNextProbe(NodeId i) {
  const double wait = engine_.rng().Exponential(1.0 / config_.mean_probe_interval_s);
  events_.Schedule(wait, [this, i] {
    StartProbe(i);
    ScheduleNextProbe(i);
  });
}

void AsyncDmfsgdSimulation::StartProbe(NodeId i) {
  // Per-probe churn roll: the async analogue of the round-based driver's
  // per-round sweep (each node fires about once per mean interval).
  (void)engine_.MaybeChurnNode(i);
  const NodeId j = engine_.PickNeighbor(i);
  engine_.StartExchange(i, j, std::nullopt);
}

void AsyncDmfsgdSimulation::RunUntil(double until_s) {
  if (until_s < events_.Now()) {
    throw std::invalid_argument("AsyncDmfsgdSimulation::RunUntil: time in the past");
  }
  events_.RunUntil(until_s);
}

}  // namespace dmfsgd::core
