// IDES — Internet Distance Estimation Service (Mao, Saul & Smith, JSAC
// 2006), the landmark-based matrix-factorization system of the paper's
// related work (§2, [13]).
//
// IDES is the architectural contrast to DMFSGD: it also factorizes the
// performance matrix as X ≈ U Vᵀ (so it handles asymmetric metrics, unlike
// Vivaldi), but it relies on *special* landmark nodes and centralized
// computation:
//
//   1. m landmarks measure each other -> an m x m matrix D;
//   2. a central service computes a rank-r SVD of D, giving landmark
//      coordinates U_L = Û Ŝ^1/2, V_L = V̂ Ŝ^1/2;
//   3. an ordinary host measures to/from all m landmarks and solves two
//      least-squares problems for its own u (against V_L, from its outgoing
//      measurements) and v (against U_L, from its incoming ones).
//
// Implemented here as the second baseline for the comparison bench: what
// the landmark architecture buys and costs relative to the fully
// decentralized approach.
#pragma once

#include <cstdint>
#include <vector>

#include "datasets/dataset.hpp"
#include "linalg/matrix.hpp"

namespace dmfsgd::core {

struct IdesConfig {
  std::size_t landmark_count = 20;
  std::size_t rank = 10;
  double ridge = 1e-6;  ///< regularization of the per-host least squares
  std::uint64_t seed = 1;
};

class IdesModel {
 public:
  /// Fits landmarks and all ordinary hosts against `dataset` (any metric;
  /// missing host-landmark measurements are skipped in the least squares).
  /// Throws std::invalid_argument on insufficient landmarks / rank, or if
  /// some host has fewer usable landmark measurements than the rank.
  IdesModel(const datasets::Dataset& dataset, const IdesConfig& config);

  /// Predicted quantity from i to j (same units as the dataset metric).
  [[nodiscard]] double Predict(std::size_t i, std::size_t j) const;

  [[nodiscard]] const std::vector<std::size_t>& Landmarks() const noexcept {
    return landmarks_;
  }
  [[nodiscard]] bool IsLandmark(std::size_t i) const;
  [[nodiscard]] std::size_t NodeCount() const noexcept { return u_.Rows(); }
  /// Total measurements consumed: m^2 landmark pairs + 2m per ordinary host.
  [[nodiscard]] std::size_t MeasurementCount() const noexcept {
    return measurement_count_;
  }

 private:
  std::vector<std::size_t> landmarks_;
  std::vector<bool> is_landmark_;
  linalg::Matrix u_;  // n x r
  linalg::Matrix v_;  // n x r
  std::size_t measurement_count_ = 0;
};

}  // namespace dmfsgd::core
