#include "core/snapshot.hpp"

#include <stdexcept>
#include <string>

#include "common/csv.hpp"
#include "common/thread_pool.hpp"

namespace dmfsgd::core {

void PredictAllInto(const CoordinateStore& store, std::span<double> out,
                    common::ThreadPool* pool) {
  const std::size_t n = store.NodeCount();
  if (out.size() != n * n) {
    throw std::invalid_argument("PredictAllInto: output buffer size mismatch");
  }
  const auto sweep_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      double* row = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = store.PredictUnchecked(i, j);
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, n, sweep_rows);
  } else {
    sweep_rows(0, n);
  }
}

std::vector<double> PredictAll(const CoordinateStore& store,
                               common::ThreadPool* pool) {
  const std::size_t n = store.NodeCount();
  std::vector<double> predictions(n * n);
  PredictAllInto(store, predictions, pool);
  return predictions;
}

std::vector<double> CoordinateSnapshot::PredictAll(
    common::ThreadPool* pool) const {
  return core::PredictAll(store, pool);
}

CoordinateSnapshot TakeSnapshot(const DeploymentEngine& engine) {
  // The live factors already sit in one contiguous store; archiving is a
  // plain copy.
  return CoordinateSnapshot{engine.store()};
}

CoordinateSnapshot TakeSnapshot(const DmfsgdSimulation& simulation) {
  return TakeSnapshot(simulation.engine());
}

void SaveSnapshot(const CoordinateSnapshot& snapshot,
                  const std::filesystem::path& path) {
  if (snapshot.rank() == 0) {
    throw std::invalid_argument("SaveSnapshot: malformed snapshot");
  }
  const std::vector<std::string> header = {"dmfsgd-snapshot",
                                           std::to_string(snapshot.rank()),
                                           std::to_string(snapshot.NodeCount())};
  std::vector<std::vector<std::string>> rows;
  rows.reserve(snapshot.NodeCount());
  for (std::size_t i = 0; i < snapshot.NodeCount(); ++i) {
    std::vector<std::string> row;
    row.reserve(2 * snapshot.rank());
    for (const double value : snapshot.store.U(i)) {
      row.push_back(common::FormatDouble(value));
    }
    for (const double value : snapshot.store.V(i)) {
      row.push_back(common::FormatDouble(value));
    }
    rows.push_back(std::move(row));
  }
  common::WriteCsv(path, header, rows);
}

CoordinateSnapshot LoadSnapshot(const std::filesystem::path& path) {
  const auto doc = common::ReadCsv(path, /*has_header=*/true);
  if (doc.header.size() != 3 || doc.header[0] != "dmfsgd-snapshot") {
    throw std::invalid_argument("LoadSnapshot: not a snapshot file");
  }
  const auto rank = static_cast<std::size_t>(std::stoull(doc.header[1]));
  const auto n = static_cast<std::size_t>(std::stoull(doc.header[2]));
  if (rank == 0) {
    throw std::invalid_argument("LoadSnapshot: rank must be positive");
  }
  if (doc.rows.size() != n) {
    throw std::invalid_argument("LoadSnapshot: node count mismatch");
  }
  CoordinateSnapshot snapshot;
  snapshot.store.Reset(n, rank);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& row = doc.rows[i];
    if (row.size() != 2 * rank) {
      throw std::invalid_argument("LoadSnapshot: malformed row " +
                                  std::to_string(i));
    }
    const auto u = snapshot.store.U(i);
    const auto v = snapshot.store.V(i);
    for (std::size_t d = 0; d < rank; ++d) {
      u[d] = common::ParseDouble(row[d]);
      v[d] = common::ParseDouble(row[rank + d]);
    }
  }
  return snapshot;
}

}  // namespace dmfsgd::core
