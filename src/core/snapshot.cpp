#include "core/snapshot.hpp"

#include <stdexcept>
#include <string>

#include "common/csv.hpp"
#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

double CoordinateSnapshot::Predict(std::size_t i, std::size_t j) const {
  if (i >= u.size() || j >= v.size()) {
    throw std::out_of_range("CoordinateSnapshot::Predict: index out of range");
  }
  return linalg::Dot(u[i], v[j]);
}

CoordinateSnapshot TakeSnapshot(const DmfsgdSimulation& simulation) {
  CoordinateSnapshot snapshot;
  snapshot.rank = simulation.config().rank;
  const std::size_t n = simulation.NodeCount();
  snapshot.u.reserve(n);
  snapshot.v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    snapshot.u.push_back(simulation.node(i).UCopy());
    snapshot.v.push_back(simulation.node(i).VCopy());
  }
  return snapshot;
}

void SaveSnapshot(const CoordinateSnapshot& snapshot,
                  const std::filesystem::path& path) {
  if (snapshot.rank == 0 || snapshot.u.size() != snapshot.v.size()) {
    throw std::invalid_argument("SaveSnapshot: malformed snapshot");
  }
  const std::vector<std::string> header = {"dmfsgd-snapshot",
                                           std::to_string(snapshot.rank),
                                           std::to_string(snapshot.NodeCount())};
  std::vector<std::vector<std::string>> rows;
  rows.reserve(snapshot.NodeCount());
  for (std::size_t i = 0; i < snapshot.NodeCount(); ++i) {
    if (snapshot.u[i].size() != snapshot.rank ||
        snapshot.v[i].size() != snapshot.rank) {
      throw std::invalid_argument("SaveSnapshot: rank mismatch at node " +
                                  std::to_string(i));
    }
    std::vector<std::string> row;
    row.reserve(2 * snapshot.rank);
    for (const double value : snapshot.u[i]) {
      row.push_back(common::FormatDouble(value));
    }
    for (const double value : snapshot.v[i]) {
      row.push_back(common::FormatDouble(value));
    }
    rows.push_back(std::move(row));
  }
  common::WriteCsv(path, header, rows);
}

CoordinateSnapshot LoadSnapshot(const std::filesystem::path& path) {
  const auto doc = common::ReadCsv(path, /*has_header=*/true);
  if (doc.header.size() != 3 || doc.header[0] != "dmfsgd-snapshot") {
    throw std::invalid_argument("LoadSnapshot: not a snapshot file");
  }
  CoordinateSnapshot snapshot;
  snapshot.rank = static_cast<std::size_t>(std::stoull(doc.header[1]));
  const auto n = static_cast<std::size_t>(std::stoull(doc.header[2]));
  if (snapshot.rank == 0) {
    throw std::invalid_argument("LoadSnapshot: rank must be positive");
  }
  if (doc.rows.size() != n) {
    throw std::invalid_argument("LoadSnapshot: node count mismatch");
  }
  snapshot.u.resize(n);
  snapshot.v.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& row = doc.rows[i];
    if (row.size() != 2 * snapshot.rank) {
      throw std::invalid_argument("LoadSnapshot: malformed row " +
                                  std::to_string(i));
    }
    snapshot.u[i].resize(snapshot.rank);
    snapshot.v[i].resize(snapshot.rank);
    for (std::size_t d = 0; d < snapshot.rank; ++d) {
      snapshot.u[i][d] = common::ParseDouble(row[d]);
      snapshot.v[i][d] = common::ParseDouble(row[snapshot.rank + d]);
    }
  }
  return snapshot;
}

}  // namespace dmfsgd::core
