// Vivaldi network coordinates (Dabek et al., SIGCOMM 2004) — the paper's
// §2/§5.3 reference system and architectural template for DMFSGD.
//
// Vivaldi embeds nodes into a low-dimensional Euclidean space plus a
// per-node "height" (modeling the access link) so that
// ‖x_i - x_j‖ + h_i + h_j ≈ rtt(i, j).  Like DMFSGD it is fully
// decentralized with each node probing a small random neighbor set; unlike
// DMFSGD it predicts metric *quantities* and — being a metric embedding —
// cannot express triangle-inequality violations or asymmetric metrics.
// This implementation serves as the quantitative baseline the reproduction
// compares class-based prediction against (bench/baseline_vivaldi).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "datasets/dataset.hpp"

namespace dmfsgd::core {

struct VivaldiConfig {
  std::size_t dimensions = 3;
  bool use_height = true;
  double cc = 0.25;  ///< coordinate adaptation gain
  double ce = 0.25;  ///< error-estimate adaptation gain
  std::size_t neighbor_count = 10;
  std::uint64_t seed = 1;
};

class VivaldiSimulation {
 public:
  /// Requires an RTT dataset (Vivaldi embeds symmetric delays).
  VivaldiSimulation(const datasets::Dataset& dataset, const VivaldiConfig& config);

  /// Runs probing rounds: per round every node measures one random neighbor
  /// and applies the Vivaldi spring update.
  void RunRounds(std::size_t rounds);

  /// Predicted RTT in ms: ‖x_i - x_j‖ + h_i + h_j.
  [[nodiscard]] double PredictRtt(std::size_t i, std::size_t j) const;

  /// Median relative prediction error |predicted - true| / true over
  /// non-neighbor pairs — the standard Vivaldi accuracy criterion.
  [[nodiscard]] double MedianRelativeError() const;

  [[nodiscard]] std::size_t NodeCount() const noexcept { return positions_.size(); }
  [[nodiscard]] double Height(std::size_t i) const;
  [[nodiscard]] double ErrorEstimate(std::size_t i) const;
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& Neighbors()
      const noexcept {
    return neighbors_;
  }
  [[nodiscard]] bool IsNeighborPair(std::size_t i, std::size_t j) const;

 private:
  void Update(std::size_t i, std::size_t j, double measured_rtt);

  const datasets::Dataset* dataset_;
  VivaldiConfig config_;
  common::Rng rng_;
  std::vector<std::vector<double>> positions_;
  std::vector<double> heights_;
  std::vector<double> error_;  // relative error estimates, start at 1
  std::vector<std::vector<std::uint32_t>> neighbors_;
};

}  // namespace dmfsgd::core
