#include "core/protocol_config.hpp"

#include <stdexcept>
#include <string>

namespace dmfsgd::core {

namespace {

[[noreturn]] void Fail(const char* who, const char* what) {
  throw std::invalid_argument(std::string(who) + ": " + what);
}

}  // namespace

void ValidateProtocolConfig(const ProtocolConfig& config, const char* who) {
  if (config.rank == 0) {
    Fail(who, "rank must be > 0");
  }
  if (config.tau <= 0.0) {
    Fail(who, "tau must be set (> 0)");
  }
  if (config.params.eta <= 0.0) {
    Fail(who, "eta must be > 0");
  }
  if (config.params.lambda < 0.0) {
    Fail(who, "lambda must be >= 0");
  }
  if (config.probe_burst == 0) {
    Fail(who, "probe_burst must be >= 1");
  }
}

}  // namespace dmfsgd::core
