// Per-node state and update rules of DMFSGD (paper §5.2).
//
// Each network node owns exactly two length-r coordinate vectors u_i and
// v_i — the i-th rows of the factors U and V.  All learning happens through
// the three update entry points below, each consuming one measurement plus
// the remote coordinates carried by a protocol message:
//
//   RttUpdate        Algorithm 1, eqs. 9-10 (sender-side, symmetric metric)
//   AbwProberUpdate  Algorithm 2, eq. 12    (sender side of asymmetric metric)
//   AbwTargetUpdate  Algorithm 2, eq. 13    (receiver side)
//
// A node never sees the matrix, other nodes' measurements, or more than one
// neighbor's coordinates at a time.
//
// Storage: a node is a *view* over one row of a CoordinateStore — deployments
// keep every node's rows in two contiguous factor buffers so the SGD inner
// loop stays cache-friendly.  A standalone node (tests, single UDP agents)
// owns a private one-row store through the (id, rank, rng) constructor.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/coordinate_store.hpp"
#include "core/loss.hpp"
#include "core/messages.hpp"

namespace dmfsgd::common {
class Rng;
}

namespace dmfsgd::linalg {
struct KernelOps;
}

namespace dmfsgd::core {

/// SGD hyper-parameters shared by all update rules.
struct UpdateParams {
  double eta = 0.1;                        ///< learning rate η
  double lambda = 0.1;                     ///< regularization coefficient λ
  LossKind loss = LossKind::kLogistic;     ///< l in eq. 3
};

/// Accumulator for the paper's mini-batch variant (DESIGN.md §13): instead
/// of one regularized step per received measurement, a node folds a batch's
/// gradient terms Σ_k g_k·remote_k into one running direction and applies a
/// *single* fused step per batch per row:
///
///   row = (1 - ηλ) row − η Σ_k g_k remote_k
///
/// Every g_k is evaluated at the node's pre-batch coordinates (that is what
/// makes it a mini-batch rather than k sequential steps) and the decay —
/// the regularization — applies once per batch, not once per message.
/// Accumulate uses linalg::AxpyRaw and Apply the fused DecayAxpyRaw, so the
/// per-batch cost is O(r) per message plus one O(r) apply.
///
/// Lifetime contract: `remote` spans passed to Accumulate are consumed
/// immediately (copied into the running sum); nothing is retained.
class GradientStepBatch {
 public:
  /// Requires rank > 0.
  explicit GradientStepBatch(std::size_t rank);

  [[nodiscard]] std::size_t rank() const noexcept { return sum_.size(); }
  [[nodiscard]] std::size_t Count() const noexcept { return count_; }
  [[nodiscard]] bool Empty() const noexcept { return count_ == 0; }

  /// Drops the accumulated direction (start of a new batch).
  void Reset() noexcept { count_ = 0; }

  /// Adds g * remote to the direction.  Requires remote.size() == rank().
  void Accumulate(double g, std::span<const double> remote);

  /// Applies the fused batch step to `row` and resets.  No-op when empty.
  /// Inner-loop precondition (validated by the callers' message-decode
  /// boundary): row.size() == rank(), and row does not alias the internal
  /// sum (it cannot — the sum is private).
  void ApplyTo(std::span<double> row, const UpdateParams& params) noexcept;

 private:
  std::vector<double> sum_;
  std::size_t count_ = 0;
};

class DmfsgdNode {
 public:
  /// Standalone node owning a private one-row store; u_i and v_i start
  /// uniform random in [0, 1) — the paper's initialization (§5.3).
  /// Requires rank > 0.
  DmfsgdNode(NodeId id, std::size_t rank, common::Rng& rng);

  /// View over row `row` of a shared store (the deployment layout); the
  /// row is randomized the same way.  `store` must outlive the node and
  /// never reallocate while the node exists.
  DmfsgdNode(NodeId id, CoordinateStore& store, std::size_t row,
             common::Rng& rng);

  DmfsgdNode(DmfsgdNode&&) noexcept = default;
  DmfsgdNode& operator=(DmfsgdNode&&) noexcept = default;
  DmfsgdNode(const DmfsgdNode&) = delete;
  DmfsgdNode& operator=(const DmfsgdNode&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t rank() const noexcept { return store_->rank(); }

  [[nodiscard]] std::span<const double> u() const noexcept {
    return store_->U(row_);
  }
  [[nodiscard]] std::span<const double> v() const noexcept {
    return store_->V(row_);
  }

  /// Copies of the coordinates, as shipped in protocol replies.
  [[nodiscard]] std::vector<double> UCopy() const {
    const auto s = u();
    return {s.begin(), s.end()};
  }
  [[nodiscard]] std::vector<double> VCopy() const {
    const auto s = v();
    return {s.begin(), s.end()};
  }

  /// x̂_ij = u_i · v_j, the node's prediction toward a remote node whose v
  /// row is known.  Requires matching rank.
  [[nodiscard]] double Predict(std::span<const double> v_remote) const;

  /// Algorithm 1: this node (i) probed node j, measured x_ij, and received
  /// (u_j, v_j).  Applies eq. 9 to u_i and eq. 10 to v_i (using x_ji = x_ij).
  void RttUpdate(double x, std::span<const double> u_remote,
                 std::span<const double> v_remote, const UpdateParams& params);

  /// Algorithm 2, prober side: this node (i) received (x_ij, v_j).
  /// Applies eq. 12 to u_i.
  void AbwProberUpdate(double x, std::span<const double> v_remote,
                       const UpdateParams& params);

  /// Algorithm 2, target side: this node (j) inferred x_ij from a probe that
  /// carried u_i.  Applies eq. 13 to v_j.
  void AbwTargetUpdate(double x, std::span<const double> u_remote,
                       const UpdateParams& params);

  // -- compiled runs (DESIGN.md §14) ---------------------------------------
  // The *With entry points are the named updates above dispatched through a
  // caller-held kernel table: same expressions, same evaluation order, same
  // rank validation, but the table is fetched once per reply run instead of
  // once per message, and the vector tables get to use their fused kernels.
  // With the scalar table the results are bit-identical to the named updates.

  /// RttUpdate through `kernels` (the compiled window path).
  void RttUpdateWith(const linalg::KernelOps& kernels, double x,
                     std::span<const double> u_remote,
                     std::span<const double> v_remote,
                     const UpdateParams& params);

  /// AbwProberUpdate through `kernels`.
  void AbwProberUpdateWith(const linalg::KernelOps& kernels, double x,
                           std::span<const double> v_remote,
                           const UpdateParams& params);

  /// AbwTargetUpdate through `kernels`.
  void AbwTargetUpdateWith(const linalg::KernelOps& kernels, double x,
                           std::span<const double> u_remote,
                           const UpdateParams& params);

  // -- mini-batch accumulation (DESIGN.md §13) ------------------------------
  // The Accumulate* entry points compute the same gradient scales as the
  // named updates above but fold them into GradientStepBatch accumulators
  // instead of stepping immediately; ApplyBatchU/V then perform one fused
  // step per batch.  All gradients are evaluated at the node's *current*
  // (pre-batch) coordinates.  Rank mismatches throw, like the named updates.

  /// Eqs. 9-10 terms of one batched RTT reply: g_u·v_remote into `du`,
  /// g_v·u_remote into `dv`.  Only params.loss is consumed here; η and λ
  /// enter once, at apply time.
  void AccumulateRttUpdate(double x, std::span<const double> u_remote,
                           std::span<const double> v_remote,
                           const UpdateParams& params, GradientStepBatch& du,
                           GradientStepBatch& dv) const;

  /// Eq. 12 term of one batched ABW reply: g·v_remote into `du`.
  void AccumulateAbwProberUpdate(double x, std::span<const double> v_remote,
                                 const UpdateParams& params,
                                 GradientStepBatch& du) const;

  /// Eq. 13 term of one batched ABW probe: g·u_remote into `dv`.
  void AccumulateAbwTargetUpdate(double x, std::span<const double> u_remote,
                                 const UpdateParams& params,
                                 GradientStepBatch& dv) const;

  /// u_i = (1 - ηλ) u_i − η · du.sum, then resets `du`.  No-op when empty.
  void ApplyBatchU(GradientStepBatch& du, const UpdateParams& params);

  /// v_i = (1 - ηλ) v_i − η · dv.sum, then resets `dv`.  No-op when empty.
  void ApplyBatchV(GradientStepBatch& dv, const UpdateParams& params);

  /// Regularized loss this node would incur on a measurement (diagnostics).
  [[nodiscard]] double LocalLoss(double x, std::span<const double> v_remote,
                                 const UpdateParams& params) const;

  /// Generic regularized SGD step on u_i with a caller-supplied gradient
  /// scale g:  u_i = (1 - ηλ) u_i - η g v_remote.  The three named updates
  /// above are thin wrappers over these; the multiclass extension supplies
  /// its own accumulated g.
  ///
  /// Inner-loop precondition (NOT re-checked here): v_remote.size() ==
  /// rank(), and v_remote does not alias this node's u row.  The named
  /// updates and the message-decode boundary validate sizes before calling;
  /// remote spans are always copies or round snapshots, never this row.
  void GradientStepU(double g, std::span<const double> v_remote,
                     const UpdateParams& params);

  /// v_i = (1 - ηλ) v_i - η g u_remote.  Same precondition as GradientStepU
  /// (u_remote must match rank() and not alias this node's v row).
  void GradientStepV(double g, std::span<const double> u_remote,
                     const UpdateParams& params);

 private:
  [[nodiscard]] std::span<double> MutableU() noexcept { return store_->U(row_); }
  [[nodiscard]] std::span<double> MutableV() noexcept { return store_->V(row_); }
  void RequireRank(std::size_t remote_rank) const;

  NodeId id_ = 0;
  std::unique_ptr<CoordinateStore> owned_;  ///< set only for standalone nodes
  CoordinateStore* store_ = nullptr;
  std::size_t row_ = 0;
};

}  // namespace dmfsgd::core
