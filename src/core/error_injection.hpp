// Erroneous class-label injection (paper §6.3).
//
// The paper stresses DMFSGD against four error mechanisms.  Corruption is a
// property of a *path*: once a pair's label is corrupted, every probe of
// that pair observes the corrupted label (inaccurate tools and malicious
// nodes are persistent, not per-probe, phenomena).  The injector therefore
// precomputes a corrupted label matrix from the ground truth:
//
//   Type 1  flip near τ:   paths with quantity in [τ-δ, τ+δ] flip w.p. 0.5
//   Type 2  underestimation bias (ABW-like): paths on the good side of τ
//           within δ are mislabeled "bad"
//   Type 3  flip randomly: a target fraction of paths flips
//   Type 4  good-to-bad:   a target fraction of paths (drawn among "good"
//           ones) is labeled "bad"
//
// For symmetric metrics (RTT) corruption is applied per unordered pair so
// the corrupted labels stay symmetric.  "Error level" is defined throughout
// as the fraction of known off-diagonal labels that end up wrong — the unit
// of Figure 6's x-axis.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datasets/dataset.hpp"

namespace dmfsgd::core {

enum class ErrorType {
  kFlipNearTau = 1,
  kUnderestimationBias = 2,
  kFlipRandom = 3,
  kGoodToBad = 4,
};

/// Human-readable error-type name ("Type 1" .. "Type 4").
[[nodiscard]] const char* ErrorTypeName(ErrorType type) noexcept;

/// One corruption pass.  `delta` is used by Types 1-2 (quantity units),
/// `fraction` by Types 3-4 (target fraction of all known labels).
struct ErrorSpec {
  ErrorType type = ErrorType::kFlipNearTau;
  double delta = 0.0;
  double fraction = 0.0;
};

class ErrorInjector {
 public:
  /// Precomputes corrupted labels for every known off-diagonal pair of
  /// `dataset` under threshold `tau`, applying `specs` in order.
  ErrorInjector(const datasets::Dataset& dataset, double tau,
                std::span<const ErrorSpec> specs, std::uint64_t seed);

  /// Corrupted (or clean) label of pair (i, j): +1 or -1.
  /// Throws std::invalid_argument if the pair has no known ground truth.
  [[nodiscard]] int Label(std::size_t i, std::size_t j) const;

  /// True if the pair's label differs from its true label.
  [[nodiscard]] bool IsCorrupted(std::size_t i, std::size_t j) const;

  /// Realized fraction of known off-diagonal labels that are wrong.
  [[nodiscard]] double ErrorRate() const noexcept;

  [[nodiscard]] std::size_t NodeCount() const noexcept { return n_; }

 private:
  [[nodiscard]] std::int8_t LabelAt(std::size_t i, std::size_t j) const;

  std::size_t n_ = 0;
  bool symmetric_ = false;
  std::vector<std::int8_t> labels_;       // corrupted labels; 0 = missing
  std::vector<std::int8_t> true_labels_;  // clean labels;     0 = missing
  std::size_t known_count_ = 0;
  std::size_t corrupted_count_ = 0;
};

/// Finds the δ that makes a Type-1 or Type-2 pass produce (in expectation)
/// the target error level on this dataset/τ — the computation behind the
/// paper's Table 3.  Throws if the target is unreachable (e.g. more errors
/// requested than paths exist near τ) or if `type` is not 1 or 2.
[[nodiscard]] double DeltaForErrorRate(const datasets::Dataset& dataset, double tau,
                                       ErrorType type, double target_rate);

}  // namespace dmfsgd::core
