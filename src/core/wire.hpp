// Binary wire format for DMFSGD protocol messages.
//
// Layout (all integers little-endian, doubles IEEE-754 binary64):
//
//   byte 0      protocol version (kWireVersion)
//   byte 1      message type tag (MessageType)
//   bytes 2..   type-specific payload; vectors are encoded as a u16 element
//               count followed by the raw doubles
//
// The format is versioned and length-checked: Decode* functions throw
// WireError on truncated buffers, version or tag mismatches, so a corrupted
// datagram can never silently produce a bogus coordinate update.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/messages.hpp"

namespace dmfsgd::core {

inline constexpr std::uint8_t kWireVersion = 1;

enum class MessageType : std::uint8_t {
  kRttProbeRequest = 1,
  kRttProbeReply = 2,
  kAbwProbeRequest = 3,
  kAbwProbeReply = 4,
  /// A batch frame: several codec'd messages sharing one destination packed
  /// into a single buffer/datagram (DESIGN.md §13).  Decoded through
  /// DecodeBatchFrame (core/delivery.hpp), never through DecodeMessage.
  kMessageBatch = 5,
};

/// Thrown on any malformed buffer (truncation, bad version, bad tag,
/// oversized vector).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Maximum coordinate vector length accepted on decode — sanity bound that
/// rejects garbage length fields before allocating.
inline constexpr std::size_t kMaxWireVectorSize = 4096;

/// Maximum messages one batch frame may carry — same role as
/// kMaxWireVectorSize: a garbage count field must be rejected before any
/// allocation or decode loop runs.
inline constexpr std::size_t kMaxWireBatchItems = 512;

[[nodiscard]] std::vector<std::byte> Encode(const RttProbeRequest& message);
[[nodiscard]] std::vector<std::byte> Encode(const RttProbeReply& message);
[[nodiscard]] std::vector<std::byte> Encode(const AbwProbeRequest& message);
[[nodiscard]] std::vector<std::byte> Encode(const AbwProbeReply& message);

/// Peeks at the message type of an encoded buffer (throws WireError if the
/// header is malformed).
[[nodiscard]] MessageType PeekType(std::span<const std::byte> buffer);

[[nodiscard]] RttProbeRequest DecodeRttProbeRequest(std::span<const std::byte> buffer);
[[nodiscard]] RttProbeReply DecodeRttProbeReply(std::span<const std::byte> buffer);
[[nodiscard]] AbwProbeRequest DecodeAbwProbeRequest(std::span<const std::byte> buffer);
[[nodiscard]] AbwProbeReply DecodeAbwProbeReply(std::span<const std::byte> buffer);

}  // namespace dmfsgd::core
