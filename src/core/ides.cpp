#include "core/ides.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "linalg/solve.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

IdesModel::IdesModel(const datasets::Dataset& dataset, const IdesConfig& config) {
  const std::size_t n = dataset.NodeCount();
  const std::size_t m = config.landmark_count;
  const std::size_t r = config.rank;
  if (r == 0 || m < r) {
    throw std::invalid_argument("IdesModel: need landmark_count >= rank >= 1");
  }
  if (m >= n) {
    throw std::invalid_argument("IdesModel: landmark_count must be < node count");
  }

  // 1. Pick landmarks uniformly at random (IDES assumes well-known
  // infrastructure nodes; random selection is its published default).
  common::Rng rng(config.seed);
  landmarks_ = rng.SampleWithoutReplacement(n, m);
  is_landmark_.assign(n, false);
  for (const std::size_t l : landmarks_) {
    is_landmark_[l] = true;
  }

  // 2. Landmark matrix D (missing pairs -> 0, as in the IDES paper's
  // treatment of unmeasurable pairs) and its rank-r SVD.
  linalg::Matrix d(m, m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      if (a != b && dataset.IsKnown(landmarks_[a], landmarks_[b])) {
        d(a, b) = dataset.Quantity(landmarks_[a], landmarks_[b]);
        ++measurement_count_;
      }
    }
  }
  linalg::SvdOptions svd_options;
  svd_options.compute_u = true;
  svd_options.compute_v = true;
  const linalg::SvdResult svd = linalg::JacobiSvd(d, svd_options);

  // Landmark coordinates: U_L = Û Ŝ^1/2, V_L = V̂ Ŝ^1/2 (rank-r truncation).
  linalg::Matrix u_l(m, r, 0.0);
  linalg::Matrix v_l(m, r, 0.0);
  for (std::size_t c = 0; c < r; ++c) {
    const double scale = std::sqrt(svd.singular_values[c]);
    for (std::size_t row = 0; row < m; ++row) {
      u_l(row, c) = svd.u(row, c) * scale;
      v_l(row, c) = svd.v(row, c) * scale;
    }
  }

  // 3. Place every node.  Landmarks take their factorized rows directly;
  // ordinary hosts solve least squares against the landmark coordinates.
  u_ = linalg::Matrix(n, r, 0.0);
  v_ = linalg::Matrix(n, r, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t c = 0; c < r; ++c) {
      u_(landmarks_[a], c) = u_l(a, c);
      v_(landmarks_[a], c) = v_l(a, c);
    }
  }

  for (std::size_t host = 0; host < n; ++host) {
    if (is_landmark_[host]) {
      continue;
    }
    // Outgoing measurements host -> landmark constrain u_host against V_L;
    // incoming ones constrain v_host against U_L.  Skip unknown pairs.
    std::vector<std::size_t> out_rows;
    std::vector<std::size_t> in_rows;
    for (std::size_t a = 0; a < m; ++a) {
      if (dataset.IsKnown(host, landmarks_[a])) {
        out_rows.push_back(a);
      }
      if (dataset.IsKnown(landmarks_[a], host)) {
        in_rows.push_back(a);
      }
    }
    if (out_rows.size() < r || in_rows.size() < r) {
      throw std::invalid_argument(
          "IdesModel: host has fewer usable landmark measurements than rank");
    }
    measurement_count_ += out_rows.size() + in_rows.size();

    linalg::Matrix a_out(out_rows.size(), r);
    std::vector<double> b_out(out_rows.size());
    for (std::size_t row = 0; row < out_rows.size(); ++row) {
      for (std::size_t c = 0; c < r; ++c) {
        a_out(row, c) = v_l(out_rows[row], c);
      }
      b_out[row] = dataset.Quantity(host, landmarks_[out_rows[row]]);
    }
    const auto u_host = linalg::SolveLeastSquares(a_out, b_out, config.ridge);

    linalg::Matrix a_in(in_rows.size(), r);
    std::vector<double> b_in(in_rows.size());
    for (std::size_t row = 0; row < in_rows.size(); ++row) {
      for (std::size_t c = 0; c < r; ++c) {
        a_in(row, c) = u_l(in_rows[row], c);
      }
      b_in[row] = dataset.Quantity(landmarks_[in_rows[row]], host);
    }
    const auto v_host = linalg::SolveLeastSquares(a_in, b_in, config.ridge);

    for (std::size_t c = 0; c < r; ++c) {
      u_(host, c) = u_host[c];
      v_(host, c) = v_host[c];
    }
  }
}

bool IdesModel::IsLandmark(std::size_t i) const {
  if (i >= is_landmark_.size()) {
    throw std::out_of_range("IdesModel::IsLandmark: index out of range");
  }
  return is_landmark_[i];
}

double IdesModel::Predict(std::size_t i, std::size_t j) const {
  if (i >= u_.Rows() || j >= v_.Rows()) {
    throw std::out_of_range("IdesModel::Predict: index out of range");
  }
  return linalg::Dot(u_.Row(i), v_.Row(j));
}

}  // namespace dmfsgd::core
