#include "core/node.hpp"

#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "core/round_compiler.hpp"
#include "linalg/kernels.hpp"
#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

GradientStepBatch::GradientStepBatch(std::size_t rank) : sum_(rank) {
  if (rank == 0) {
    throw std::invalid_argument("GradientStepBatch: rank must be > 0");
  }
}

void GradientStepBatch::Accumulate(double g, std::span<const double> remote) {
  if (remote.size() != sum_.size()) {
    throw std::invalid_argument("GradientStepBatch: rank mismatch");
  }
  if (count_ == 0) {
    // First term overwrites: Reset() is O(1) and the sum never needs zeroing.
    for (std::size_t d = 0; d < sum_.size(); ++d) {
      sum_[d] = g * remote[d];
    }
  } else {
    linalg::AxpyRaw(g, remote.data(), sum_.data(), sum_.size());
  }
  ++count_;
}

void GradientStepBatch::ApplyTo(std::span<double> row,
                                const UpdateParams& params) noexcept {
  if (count_ == 0) {
    return;
  }
  linalg::DecayAxpyRaw(1.0 - params.eta * params.lambda, -params.eta,
                       sum_.data(), row.data(), sum_.size());
  count_ = 0;
}

DmfsgdNode::DmfsgdNode(NodeId id, std::size_t rank, common::Rng& rng)
    : id_(id), owned_(std::make_unique<CoordinateStore>(1, rank)), store_(owned_.get()) {
  store_->RandomizeRow(0, rng);
}

DmfsgdNode::DmfsgdNode(NodeId id, CoordinateStore& store, std::size_t row,
                       common::Rng& rng)
    : id_(id), store_(&store), row_(row) {
  if (row >= store.NodeCount()) {
    throw std::out_of_range("DmfsgdNode: row outside the coordinate store");
  }
  store_->RandomizeRow(row_, rng);
}

void DmfsgdNode::RequireRank(std::size_t remote_rank) const {
  if (remote_rank != rank()) {
    throw std::invalid_argument("DmfsgdNode: rank mismatch (local " +
                                std::to_string(rank()) + ", remote " +
                                std::to_string(remote_rank) + ")");
  }
}

double DmfsgdNode::Predict(std::span<const double> v_remote) const {
  RequireRank(v_remote.size());
  return linalg::DotRaw(u().data(), v_remote.data(), rank());
}

void DmfsgdNode::RttUpdate(double x, std::span<const double> u_remote,
                           std::span<const double> v_remote,
                           const UpdateParams& params) {
  RequireRank(u_remote.size());
  RequireRank(v_remote.size());

  // Compute both gradient scales before touching any state: eq. 9 reads
  // u_i·v_j and eq. 10 reads u_j·v_i, neither of which depends on the other
  // update, but evaluating first keeps the rules exactly simultaneous.  One
  // fused sweep produces both dots.
  const auto [x_hat_ij, x_hat_ji] = linalg::DotPairRaw(
      u().data(), v_remote.data(), u_remote.data(), v().data(), rank());
  const double g_u = LossGradientScale(params.loss, x, x_hat_ij);
  const double g_v = LossGradientScale(params.loss, x, x_hat_ji);

  GradientStepU(g_u, v_remote, params);  // eq. 9
  GradientStepV(g_v, u_remote, params);  // eq. 10 (x_ji = x_ij for RTT)
}

void DmfsgdNode::AbwProberUpdate(double x, std::span<const double> v_remote,
                                 const UpdateParams& params) {
  RequireRank(v_remote.size());
  const double x_hat = linalg::DotRaw(u().data(), v_remote.data(), rank());
  const double g = LossGradientScale(params.loss, x, x_hat);
  GradientStepU(g, v_remote, params);  // eq. 12
}

void DmfsgdNode::AbwTargetUpdate(double x, std::span<const double> u_remote,
                                 const UpdateParams& params) {
  RequireRank(u_remote.size());
  const double x_hat = linalg::DotRaw(u_remote.data(), v().data(), rank());
  const double g = LossGradientScale(params.loss, x, x_hat);
  GradientStepV(g, u_remote, params);  // eq. 13
}

void DmfsgdNode::RttUpdateWith(const linalg::KernelOps& kernels, double x,
                               std::span<const double> u_remote,
                               std::span<const double> v_remote,
                               const UpdateParams& params) {
  RequireRank(u_remote.size());
  RequireRank(v_remote.size());
  CompiledRttStep(kernels, params, x, u_remote.data(), v_remote.data(),
                  MutableU().data(), MutableV().data(), rank());
}

void DmfsgdNode::AbwProberUpdateWith(const linalg::KernelOps& kernels, double x,
                                     std::span<const double> v_remote,
                                     const UpdateParams& params) {
  RequireRank(v_remote.size());
  CompiledAbwProberStep(kernels, params, x, v_remote.data(), MutableU().data(),
                        rank());
}

void DmfsgdNode::AbwTargetUpdateWith(const linalg::KernelOps& kernels, double x,
                                     std::span<const double> u_remote,
                                     const UpdateParams& params) {
  RequireRank(u_remote.size());
  CompiledAbwTargetStep(kernels, params, x, u_remote.data(), MutableV().data(),
                        rank());
}

void DmfsgdNode::GradientStepU(double g, std::span<const double> v_remote,
                               const UpdateParams& params) {
  // u_i = (1 - ηλ) u_i - η g v_remote, fused into one pass over u_i.
  linalg::DecayAxpyRaw(1.0 - params.eta * params.lambda, -params.eta * g,
                       v_remote.data(), MutableU().data(), rank());
}

void DmfsgdNode::GradientStepV(double g, std::span<const double> u_remote,
                               const UpdateParams& params) {
  // v_i = (1 - ηλ) v_i - η g u_remote, fused into one pass over v_i.
  linalg::DecayAxpyRaw(1.0 - params.eta * params.lambda, -params.eta * g,
                       u_remote.data(), MutableV().data(), rank());
}

void DmfsgdNode::AccumulateRttUpdate(double x, std::span<const double> u_remote,
                                     std::span<const double> v_remote,
                                     const UpdateParams& params,
                                     GradientStepBatch& du,
                                     GradientStepBatch& dv) const {
  RequireRank(u_remote.size());
  RequireRank(v_remote.size());
  // Same fused dot pair as RttUpdate, but both scales are evaluated at the
  // node's pre-batch coordinates — every message of a mini-batch sees the
  // same u_i, v_i (the mini-batch contract, DESIGN.md §13).
  const auto [x_hat_ij, x_hat_ji] = linalg::DotPairRaw(
      u().data(), v_remote.data(), u_remote.data(), v().data(), rank());
  du.Accumulate(LossGradientScale(params.loss, x, x_hat_ij), v_remote);
  dv.Accumulate(LossGradientScale(params.loss, x, x_hat_ji), u_remote);
}

void DmfsgdNode::AccumulateAbwProberUpdate(double x,
                                           std::span<const double> v_remote,
                                           const UpdateParams& params,
                                           GradientStepBatch& du) const {
  RequireRank(v_remote.size());
  const double x_hat = linalg::DotRaw(u().data(), v_remote.data(), rank());
  du.Accumulate(LossGradientScale(params.loss, x, x_hat), v_remote);
}

void DmfsgdNode::AccumulateAbwTargetUpdate(double x,
                                           std::span<const double> u_remote,
                                           const UpdateParams& params,
                                           GradientStepBatch& dv) const {
  RequireRank(u_remote.size());
  const double x_hat = linalg::DotRaw(u_remote.data(), v().data(), rank());
  dv.Accumulate(LossGradientScale(params.loss, x, x_hat), u_remote);
}

void DmfsgdNode::ApplyBatchU(GradientStepBatch& du, const UpdateParams& params) {
  RequireRank(du.rank());
  du.ApplyTo(MutableU(), params);
}

void DmfsgdNode::ApplyBatchV(GradientStepBatch& dv, const UpdateParams& params) {
  RequireRank(dv.rank());
  dv.ApplyTo(MutableV(), params);
}

double DmfsgdNode::LocalLoss(double x, std::span<const double> v_remote,
                             const UpdateParams& params) const {
  RequireRank(v_remote.size());
  const double x_hat = linalg::Dot(u(), v_remote);
  return LossValue(params.loss, x, x_hat) +
         params.lambda * linalg::SquaredNorm(u());
}

}  // namespace dmfsgd::core
