#include "core/node.hpp"

#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

DmfsgdNode::DmfsgdNode(NodeId id, std::size_t rank, common::Rng& rng)
    : id_(id), owned_(std::make_unique<CoordinateStore>(1, rank)), store_(owned_.get()) {
  store_->RandomizeRow(0, rng);
}

DmfsgdNode::DmfsgdNode(NodeId id, CoordinateStore& store, std::size_t row,
                       common::Rng& rng)
    : id_(id), store_(&store), row_(row) {
  if (row >= store.NodeCount()) {
    throw std::out_of_range("DmfsgdNode: row outside the coordinate store");
  }
  store_->RandomizeRow(row_, rng);
}

void DmfsgdNode::RequireRank(std::size_t remote_rank) const {
  if (remote_rank != rank()) {
    throw std::invalid_argument("DmfsgdNode: rank mismatch (local " +
                                std::to_string(rank()) + ", remote " +
                                std::to_string(remote_rank) + ")");
  }
}

double DmfsgdNode::Predict(std::span<const double> v_remote) const {
  RequireRank(v_remote.size());
  return linalg::Dot(u(), v_remote);
}

void DmfsgdNode::RttUpdate(double x, std::span<const double> u_remote,
                           std::span<const double> v_remote,
                           const UpdateParams& params) {
  RequireRank(u_remote.size());
  RequireRank(v_remote.size());

  // Compute both gradient scales before touching any state: eq. 9 reads
  // u_i·v_j and eq. 10 reads u_j·v_i, neither of which depends on the other
  // update, but evaluating first keeps the rules exactly simultaneous.
  const double x_hat_ij = linalg::Dot(u(), v_remote);
  const double g_u = LossGradientScale(params.loss, x, x_hat_ij);
  const double x_hat_ji = linalg::Dot(u_remote, v());
  const double g_v = LossGradientScale(params.loss, x, x_hat_ji);

  GradientStepU(g_u, v_remote, params);  // eq. 9
  GradientStepV(g_v, u_remote, params);  // eq. 10 (x_ji = x_ij for RTT)
}

void DmfsgdNode::AbwProberUpdate(double x, std::span<const double> v_remote,
                                 const UpdateParams& params) {
  RequireRank(v_remote.size());
  const double x_hat = linalg::Dot(u(), v_remote);
  const double g = LossGradientScale(params.loss, x, x_hat);
  GradientStepU(g, v_remote, params);  // eq. 12
}

void DmfsgdNode::AbwTargetUpdate(double x, std::span<const double> u_remote,
                                 const UpdateParams& params) {
  RequireRank(u_remote.size());
  const double x_hat = linalg::Dot(u_remote, v());
  const double g = LossGradientScale(params.loss, x, x_hat);
  GradientStepV(g, u_remote, params);  // eq. 13
}

void DmfsgdNode::GradientStepU(double g, std::span<const double> v_remote,
                               const UpdateParams& params) {
  RequireRank(v_remote.size());
  // u_i = (1 - ηλ) u_i - η g v_remote
  linalg::Scale(1.0 - params.eta * params.lambda, MutableU());
  linalg::Axpy(-params.eta * g, v_remote, MutableU());
}

void DmfsgdNode::GradientStepV(double g, std::span<const double> u_remote,
                               const UpdateParams& params) {
  RequireRank(u_remote.size());
  // v_i = (1 - ηλ) v_i - η g u_remote
  linalg::Scale(1.0 - params.eta * params.lambda, MutableV());
  linalg::Axpy(-params.eta * g, u_remote, MutableV());
}

double DmfsgdNode::LocalLoss(double x, std::span<const double> v_remote,
                             const UpdateParams& params) const {
  RequireRank(v_remote.size());
  const double x_hat = linalg::Dot(u(), v_remote);
  return LossValue(params.loss, x, x_hat) +
         params.lambda * linalg::SquaredNorm(u());
}

}  // namespace dmfsgd::core
