#include "core/node.hpp"

#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "linalg/kernels.hpp"
#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

DmfsgdNode::DmfsgdNode(NodeId id, std::size_t rank, common::Rng& rng)
    : id_(id), owned_(std::make_unique<CoordinateStore>(1, rank)), store_(owned_.get()) {
  store_->RandomizeRow(0, rng);
}

DmfsgdNode::DmfsgdNode(NodeId id, CoordinateStore& store, std::size_t row,
                       common::Rng& rng)
    : id_(id), store_(&store), row_(row) {
  if (row >= store.NodeCount()) {
    throw std::out_of_range("DmfsgdNode: row outside the coordinate store");
  }
  store_->RandomizeRow(row_, rng);
}

void DmfsgdNode::RequireRank(std::size_t remote_rank) const {
  if (remote_rank != rank()) {
    throw std::invalid_argument("DmfsgdNode: rank mismatch (local " +
                                std::to_string(rank()) + ", remote " +
                                std::to_string(remote_rank) + ")");
  }
}

double DmfsgdNode::Predict(std::span<const double> v_remote) const {
  RequireRank(v_remote.size());
  return linalg::DotRaw(u().data(), v_remote.data(), rank());
}

void DmfsgdNode::RttUpdate(double x, std::span<const double> u_remote,
                           std::span<const double> v_remote,
                           const UpdateParams& params) {
  RequireRank(u_remote.size());
  RequireRank(v_remote.size());

  // Compute both gradient scales before touching any state: eq. 9 reads
  // u_i·v_j and eq. 10 reads u_j·v_i, neither of which depends on the other
  // update, but evaluating first keeps the rules exactly simultaneous.  One
  // fused sweep produces both dots.
  const auto [x_hat_ij, x_hat_ji] = linalg::DotPairRaw(
      u().data(), v_remote.data(), u_remote.data(), v().data(), rank());
  const double g_u = LossGradientScale(params.loss, x, x_hat_ij);
  const double g_v = LossGradientScale(params.loss, x, x_hat_ji);

  GradientStepU(g_u, v_remote, params);  // eq. 9
  GradientStepV(g_v, u_remote, params);  // eq. 10 (x_ji = x_ij for RTT)
}

void DmfsgdNode::AbwProberUpdate(double x, std::span<const double> v_remote,
                                 const UpdateParams& params) {
  RequireRank(v_remote.size());
  const double x_hat = linalg::DotRaw(u().data(), v_remote.data(), rank());
  const double g = LossGradientScale(params.loss, x, x_hat);
  GradientStepU(g, v_remote, params);  // eq. 12
}

void DmfsgdNode::AbwTargetUpdate(double x, std::span<const double> u_remote,
                                 const UpdateParams& params) {
  RequireRank(u_remote.size());
  const double x_hat = linalg::DotRaw(u_remote.data(), v().data(), rank());
  const double g = LossGradientScale(params.loss, x, x_hat);
  GradientStepV(g, u_remote, params);  // eq. 13
}

void DmfsgdNode::GradientStepU(double g, std::span<const double> v_remote,
                               const UpdateParams& params) {
  // u_i = (1 - ηλ) u_i - η g v_remote, fused into one pass over u_i.
  linalg::DecayAxpyRaw(1.0 - params.eta * params.lambda, -params.eta * g,
                       v_remote.data(), MutableU().data(), rank());
}

void DmfsgdNode::GradientStepV(double g, std::span<const double> u_remote,
                               const UpdateParams& params) {
  // v_i = (1 - ηλ) v_i - η g u_remote, fused into one pass over v_i.
  linalg::DecayAxpyRaw(1.0 - params.eta * params.lambda, -params.eta * g,
                       u_remote.data(), MutableV().data(), rank());
}

double DmfsgdNode::LocalLoss(double x, std::span<const double> v_remote,
                             const UpdateParams& params) const {
  RequireRank(v_remote.size());
  const double x_hat = linalg::Dot(u(), v_remote);
  return LossValue(params.loss, x, x_hat) +
         params.lambda * linalg::SquaredNorm(u());
}

}  // namespace dmfsgd::core
