// Structure-of-arrays storage for the DMFSGD coordinate factors.
//
// Every node owns two length-r rows, u_i and v_i (the i-th rows of U and V).
// Storing each factor as one contiguous buffer — instead of two heap vectors
// per node — keeps the SGD inner loop on cache lines that prefetch cleanly
// when a deployment sweeps its nodes, and gives snapshots, the batch-MF
// bridge and the benches a single flat view of the whole factor.
//
// Rows are exposed as spans.  The store never reallocates after
// construction/Reset, so row spans stay valid for the store's lifetime —
// exactly what DmfsgdNode (a view over one row) and the deployment engine
// rely on.
//
// ## Concurrency / determinism contract (DESIGN.md §6, §8, §9)
//
// The store itself takes no locks; the engine's parallel paths stay
// race-free and bit-identical across pool sizes purely through *row
// ownership*, which callers must respect:
//
//  * a row pair (u_i, v_i) is written only by tasks that own node i — one
//    task per node in the Algorithm-1 sweep, the unique prober of u_i and
//    the unique per-phase targeter of v_i in the Algorithm-2 schedule, the
//    owner shard in an async drain;
//  * concurrent *reads* of remote rows are only safe against snapshots
//    (the sweep's start-of-round copy, protocol-message copies), never
//    against rows another live task may be updating;
//  * RandomizeRow draws from the RNG stream passed in — during parallel
//    execution that must be the owning node's private stream, or results
//    depend on thread interleaving.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/kernels.hpp"

namespace dmfsgd::common {
class Rng;
}

namespace dmfsgd::core {

class CoordinateStore {
 public:
  /// Empty store (0 nodes, rank 0).
  CoordinateStore() = default;

  /// `node_count` rows of `rank` doubles per factor, zero-initialized.
  /// Requires rank > 0.
  CoordinateStore(std::size_t node_count, std::size_t rank);

  [[nodiscard]] std::size_t NodeCount() const noexcept {
    return rank_ == 0 ? 0 : u_data_.size() / rank_;
  }
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

  /// Row views; unchecked in release-style hot paths, so callers validate
  /// indices at API boundaries.
  [[nodiscard]] std::span<double> U(std::size_t i) noexcept {
    return {u_data_.data() + i * rank_, rank_};
  }
  [[nodiscard]] std::span<const double> U(std::size_t i) const noexcept {
    return {u_data_.data() + i * rank_, rank_};
  }
  [[nodiscard]] std::span<double> V(std::size_t i) noexcept {
    return {v_data_.data() + i * rank_, rank_};
  }
  [[nodiscard]] std::span<const double> V(std::size_t i) const noexcept {
    return {v_data_.data() + i * rank_, rank_};
  }

  /// Whole-factor views (row-major, stride = rank).
  [[nodiscard]] std::span<const double> UData() const noexcept { return u_data_; }
  [[nodiscard]] std::span<const double> VData() const noexcept { return v_data_; }
  [[nodiscard]] std::span<double> UData() noexcept { return u_data_; }
  [[nodiscard]] std::span<double> VData() noexcept { return v_data_; }

  /// Fills u_i then v_i with uniform random values in [0, 1) — the paper's
  /// initialization (§5.3), also used when a churned node rejoins fresh.
  void RandomizeRow(std::size_t i, common::Rng& rng);

  // -- drift hooks (the ANN query plane's snapshot primitives, DESIGN.md
  // §16): an index keeps per-member copies of v rows and decides whether a
  // member's row moved far enough to re-link its edges.

  /// Copies the live v_i into `out` (a drift snapshot).  Requires
  /// out.size() == rank.
  void CopyVRow(std::size_t i, std::span<double> out) const;

  /// Squared L2 distance between the live v_i and a snapshot row — the
  /// drift an index compares against its epsilon.  Requires
  /// snapshot.size() == rank.
  [[nodiscard]] double VRowDriftSquared(std::size_t i,
                                        std::span<const double> snapshot) const;

  /// Discards all rows and reshapes the store.  Invalidates row spans.
  void Reset(std::size_t node_count, std::size_t rank);

  /// x̂_ij = u_i · v_j straight from the flat buffers.  Throws
  /// std::out_of_range on bad indices.
  [[nodiscard]] double Predict(std::size_t i, std::size_t j) const;

  /// Predict without the bounds check — the O(n²r) evaluation sweeps
  /// (snapshots, full-matrix metrics) validate i and j once at the sweep
  /// boundary instead of per pair.  Requires i, j < NodeCount().
  [[nodiscard]] double PredictUnchecked(std::size_t i, std::size_t j) const noexcept {
    return linalg::DotRaw(u_data_.data() + i * rank_, v_data_.data() + j * rank_,
                          rank_);
  }

 private:
  std::size_t rank_ = 0;
  std::vector<double> u_data_;
  std::vector<double> v_data_;
};

}  // namespace dmfsgd::core
