#include "core/error_injection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace dmfsgd::core {

namespace {

using datasets::ClassOf;
using datasets::Dataset;
using datasets::LowerIsBetter;

/// True if `quantity` lies in the "good side" band of width delta next to
/// tau — the region where underestimating tools flip good labels to bad.
bool InUnderestimationBand(const Dataset& dataset, double tau, double delta,
                           double quantity) {
  if (LowerIsBetter(dataset.metric)) {
    return quantity >= tau - delta && quantity <= tau;
  }
  return quantity >= tau && quantity <= tau + delta;
}

}  // namespace

const char* ErrorTypeName(ErrorType type) noexcept {
  switch (type) {
    case ErrorType::kFlipNearTau:
      return "Type 1 (flip near tau)";
    case ErrorType::kUnderestimationBias:
      return "Type 2 (underestimation bias)";
    case ErrorType::kFlipRandom:
      return "Type 3 (flip randomly)";
    case ErrorType::kGoodToBad:
      return "Type 4 (good-to-bad)";
  }
  return "?";
}

ErrorInjector::ErrorInjector(const Dataset& dataset, double tau,
                             std::span<const ErrorSpec> specs, std::uint64_t seed)
    : n_(dataset.NodeCount()),
      symmetric_(dataset.metric == datasets::Metric::kRtt),
      labels_(n_ * n_, 0),
      true_labels_(n_ * n_, 0) {
  common::Rng rng(seed);

  // Clean labels first.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j || !dataset.IsKnown(i, j)) {
        continue;
      }
      const auto label = static_cast<std::int8_t>(
          ClassOf(dataset.metric, dataset.Quantity(i, j), tau));
      true_labels_[i * n_ + j] = label;
      labels_[i * n_ + j] = label;
      ++known_count_;
    }
  }

  // The unit of corruption is a *path*: an unordered pair for symmetric
  // metrics, an ordered pair otherwise.
  std::vector<std::pair<std::size_t, std::size_t>> paths;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j_begin = symmetric_ ? i + 1 : 0;
    for (std::size_t j = j_begin; j < n_; ++j) {
      if (i != j && dataset.IsKnown(i, j)) {
        paths.emplace_back(i, j);
      }
    }
  }

  const auto flip_path = [&](std::size_t i, std::size_t j) {
    labels_[i * n_ + j] = static_cast<std::int8_t>(-labels_[i * n_ + j]);
    if (symmetric_) {
      labels_[j * n_ + i] = static_cast<std::int8_t>(-labels_[j * n_ + i]);
    }
  };
  const auto set_bad = [&](std::size_t i, std::size_t j) {
    labels_[i * n_ + j] = -1;
    if (symmetric_) {
      labels_[j * n_ + i] = -1;
    }
  };

  for (const ErrorSpec& spec : specs) {
    switch (spec.type) {
      case ErrorType::kFlipNearTau: {
        if (spec.delta < 0.0) {
          throw std::invalid_argument("ErrorInjector: Type 1 delta must be >= 0");
        }
        for (const auto& [i, j] : paths) {
          const double q = dataset.Quantity(i, j);
          if (std::abs(q - tau) <= spec.delta && rng.Bernoulli(0.5)) {
            flip_path(i, j);
          }
        }
        break;
      }
      case ErrorType::kUnderestimationBias: {
        if (spec.delta < 0.0) {
          throw std::invalid_argument("ErrorInjector: Type 2 delta must be >= 0");
        }
        for (const auto& [i, j] : paths) {
          if (InUnderestimationBand(dataset, tau, spec.delta,
                                    dataset.Quantity(i, j))) {
            set_bad(i, j);
          }
        }
        break;
      }
      case ErrorType::kFlipRandom: {
        if (spec.fraction < 0.0 || spec.fraction > 1.0) {
          throw std::invalid_argument("ErrorInjector: Type 3 fraction in [0, 1]");
        }
        auto order = paths;
        rng.Shuffle(std::span(order));
        const auto count = static_cast<std::size_t>(
            std::llround(spec.fraction * static_cast<double>(order.size())));
        for (std::size_t p = 0; p < count; ++p) {
          flip_path(order[p].first, order[p].second);
        }
        break;
      }
      case ErrorType::kGoodToBad: {
        if (spec.fraction < 0.0 || spec.fraction > 1.0) {
          throw std::invalid_argument("ErrorInjector: Type 4 fraction in [0, 1]");
        }
        std::vector<std::pair<std::size_t, std::size_t>> good_paths;
        for (const auto& [i, j] : paths) {
          if (true_labels_[i * n_ + j] > 0) {
            good_paths.emplace_back(i, j);
          }
        }
        rng.Shuffle(std::span(good_paths));
        // The target fraction is measured against *all* paths (Figure 6's
        // x-axis), capped by how many good paths exist.
        const auto wanted = static_cast<std::size_t>(
            std::llround(spec.fraction * static_cast<double>(paths.size())));
        const std::size_t count = std::min(wanted, good_paths.size());
        for (std::size_t p = 0; p < count; ++p) {
          set_bad(good_paths[p].first, good_paths[p].second);
        }
        break;
      }
    }
  }

  for (std::size_t idx = 0; idx < labels_.size(); ++idx) {
    if (true_labels_[idx] != 0 && labels_[idx] != true_labels_[idx]) {
      ++corrupted_count_;
    }
  }
}

std::int8_t ErrorInjector::LabelAt(std::size_t i, std::size_t j) const {
  return labels_[i * n_ + j];
}

int ErrorInjector::Label(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) {
    throw std::out_of_range("ErrorInjector::Label: index out of range");
  }
  const std::int8_t label = LabelAt(i, j);
  if (label == 0) {
    throw std::invalid_argument("ErrorInjector::Label: pair has no ground truth");
  }
  return label;
}

bool ErrorInjector::IsCorrupted(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) {
    throw std::out_of_range("ErrorInjector::IsCorrupted: index out of range");
  }
  return true_labels_[i * n_ + j] != 0 && labels_[i * n_ + j] != true_labels_[i * n_ + j];
}

double ErrorInjector::ErrorRate() const noexcept {
  if (known_count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(corrupted_count_) / static_cast<double>(known_count_);
}

double DeltaForErrorRate(const Dataset& dataset, double tau, ErrorType type,
                         double target_rate) {
  if (type != ErrorType::kFlipNearTau && type != ErrorType::kUnderestimationBias) {
    throw std::invalid_argument("DeltaForErrorRate: only Types 1 and 2 use delta");
  }
  if (target_rate <= 0.0 || target_rate >= 1.0) {
    throw std::invalid_argument("DeltaForErrorRate: target_rate must be in (0, 1)");
  }
  const auto values = linalg::KnownOffDiagonal(dataset.ground_truth);
  if (values.empty()) {
    throw std::invalid_argument("DeltaForErrorRate: dataset has no known pairs");
  }

  // Expected error fraction as a function of delta (monotone non-decreasing).
  const auto expected_rate = [&](double delta) {
    std::size_t hit = 0;
    for (const double q : values) {
      const bool in_band = type == ErrorType::kFlipNearTau
                               ? std::abs(q - tau) <= delta
                               : InUnderestimationBand(dataset, tau, delta, q);
      if (in_band) {
        ++hit;
      }
    }
    const double fraction = static_cast<double>(hit) / static_cast<double>(values.size());
    return type == ErrorType::kFlipNearTau ? 0.5 * fraction : fraction;
  };

  double hi = 0.0;
  for (const double q : values) {
    hi = std::max(hi, std::abs(q - tau));
  }
  if (expected_rate(hi) < target_rate) {
    throw std::invalid_argument(
        "DeltaForErrorRate: target error level unreachable for this dataset/tau");
  }
  double lo = 0.0;
  for (int iteration = 0; iteration < 100; ++iteration) {
    const double mid = 0.5 * (lo + hi);
    if (expected_rate(mid) >= target_rate) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace dmfsgd::core
