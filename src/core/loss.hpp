// Loss functions and their (sub)gradients (paper §4.1 and §5.2.3).
//
// For binary classification the reference value x is ±1 and the prediction
// x̂ = u vᵀ is real-valued; hinge and logistic penalize x·x̂ < 1 and are
// insensitive to the magnitude of x̂ once the sign is right.  The L2 loss
// serves the quantity-based (regression) variant used for comparison in the
// peer-selection study (§6.4).
//
// All three gradients share the form  dl/du = g(x, x̂) · v  and
// dl/dv = g(x, x̂) · u  for a scalar g, which is what makes the per-node SGD
// updates O(r):
//
//   hinge:        g = -x       if 1 - x·x̂ > 0, else 0      (subgradient)
//   logistic:     g = -x / (1 + exp(x·x̂))
//   L2:           g = -(x - x̂)                              (factor 2 dropped,
//                                                            as in the paper)
//   smooth hinge: g = -x        if x·x̂ <= 0
//                 g = -x(1 - x·x̂) if 0 < x·x̂ < 1, else 0    (extension)
#pragma once

#include <string>

namespace dmfsgd::core {

enum class LossKind {
  kHinge,
  kLogistic,
  kL2,
  /// Extension beyond the paper: Rennie's smoothly differentiable hinge
  /// (used by the MMMF line of work the paper cites [20, 22]) — hinge's
  /// sparsity with a continuous gradient at the margin boundary.
  kSmoothHinge,
};

/// Human-readable loss name ("hinge" / "logistic" / "L2").
[[nodiscard]] const char* LossName(LossKind kind) noexcept;

/// Parses a loss name; throws std::invalid_argument on unknown names.
[[nodiscard]] LossKind ParseLossName(const std::string& name);

/// l(x, x̂) as defined in §4.1.
[[nodiscard]] double LossValue(LossKind kind, double x, double x_hat) noexcept;

/// The scalar g such that dl/du = g·v and dl/dv = g·u (§5.2.3).
[[nodiscard]] double LossGradientScale(LossKind kind, double x, double x_hat) noexcept;

}  // namespace dmfsgd::core
