#include "core/delivery.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/wire.hpp"
#include "netsim/event_queue.hpp"

namespace dmfsgd::core {

namespace {

/// Map key for a pending coalesced envelope: exact arrival time, compared
/// bitwise (arrival times are computed, never parsed, so equal doubles are
/// bit-equal).
std::pair<NodeId, std::uint64_t> ArrivalKey(NodeId to, double arrival) {
  return {to, std::bit_cast<std::uint64_t>(arrival)};
}

void PutU16(std::vector<std::byte>& out, std::uint16_t value) {
  out.push_back(static_cast<std::byte>(value & 0xff));
  out.push_back(static_cast<std::byte>(value >> 8));
}

void PutU32(std::vector<std::byte>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>((value >> shift) & 0xff));
  }
}

/// Minimal checked reader for the batch frame / batch envelope headers (the
/// nested message payloads go through the full wire codec).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> buffer) : buffer_(buffer) {}

  [[nodiscard]] std::uint8_t U8() {
    Need(1, "truncated header");
    return static_cast<std::uint8_t>(buffer_[pos_++]);
  }

  [[nodiscard]] std::uint16_t U16() {
    const auto lo = U8();
    const auto hi = U8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  [[nodiscard]] std::uint32_t U32() {
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(U8()) << shift;
    }
    return value;
  }

  [[nodiscard]] std::span<const std::byte> Bytes(std::size_t count) {
    Need(count, "length field points past the buffer");
    const auto slice = buffer_.subspan(pos_, count);
    pos_ += count;
    return slice;
  }

  [[nodiscard]] bool AtEnd() const noexcept { return pos_ == buffer_.size(); }

 private:
  void Need(std::size_t count, const char* what) const {
    if (pos_ + count > buffer_.size()) {
      throw WireError(std::string("DecodeBatchFrame: ") + what);
    }
  }

  std::span<const std::byte> buffer_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::byte> EncodeMessage(const ProtocolMessage& message) {
  return std::visit([](const auto& typed) { return Encode(typed); }, message);
}

ProtocolMessage DecodeMessage(std::span<const std::byte> buffer) {
  switch (PeekType(buffer)) {
    case MessageType::kRttProbeRequest:
      return DecodeRttProbeRequest(buffer);
    case MessageType::kRttProbeReply:
      return DecodeRttProbeReply(buffer);
    case MessageType::kAbwProbeRequest:
      return DecodeAbwProbeRequest(buffer);
    case MessageType::kAbwProbeReply:
      return DecodeAbwProbeReply(buffer);
    case MessageType::kMessageBatch:
      throw WireError("DecodeMessage: buffer holds a batch frame, not a "
                      "single message");
  }
  throw WireError("DecodeMessage: unknown message type");
}

NodeId SenderOf(const ProtocolMessage& message) noexcept {
  return std::visit(
      [](const auto& typed) {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, RttProbeRequest> ||
                      std::is_same_v<T, AbwProbeRequest>) {
          return typed.prober;
        } else {
          return typed.target;
        }
      },
      message);
}

std::vector<std::byte> EncodeBatchFrame(
    std::span<const std::vector<std::byte>> encoded_messages) {
  if (encoded_messages.empty() ||
      encoded_messages.size() > kMaxWireBatchItems) {
    throw WireError("EncodeBatchFrame: batch size out of bounds");
  }
  std::vector<std::byte> out;
  out.push_back(static_cast<std::byte>(kWireVersion));
  out.push_back(static_cast<std::byte>(MessageType::kMessageBatch));
  PutU16(out, static_cast<std::uint16_t>(encoded_messages.size()));
  for (const std::vector<std::byte>& wire : encoded_messages) {
    PutU32(out, static_cast<std::uint32_t>(wire.size()));
    out.insert(out.end(), wire.begin(), wire.end());
  }
  return out;
}

std::vector<std::byte> EncodeBatchFrame(const MessageBatch& batch) {
  std::vector<std::vector<std::byte>> encoded;
  encoded.reserve(batch.items.size());
  for (const BatchItem& item : batch.items) {
    encoded.push_back(EncodeMessage(item.message));
  }
  return EncodeBatchFrame(encoded);
}

std::vector<ProtocolMessage> DecodeBatchFrame(std::span<const std::byte> buffer) {
  ByteReader reader(buffer);
  const std::uint8_t version = reader.U8();
  if (version != kWireVersion) {
    throw WireError("DecodeBatchFrame: unsupported wire version");
  }
  const std::uint8_t tag = reader.U8();
  if (tag != static_cast<std::uint8_t>(MessageType::kMessageBatch)) {
    throw WireError("DecodeBatchFrame: not a batch frame");
  }
  const std::uint16_t count = reader.U16();
  if (count == 0 || count > kMaxWireBatchItems) {
    throw WireError("DecodeBatchFrame: batch count out of bounds");
  }
  std::vector<ProtocolMessage> messages;
  messages.reserve(count);
  for (std::uint16_t m = 0; m < count; ++m) {
    const std::uint32_t length = reader.U32();
    messages.push_back(DecodeMessage(reader.Bytes(length)));
  }
  if (!reader.AtEnd()) {
    throw WireError("DecodeBatchFrame: trailing bytes after the last message");
  }
  return messages;
}

void DeliveryChannel::SendBatch(MessageBatch batch) {
  for (BatchItem& item : batch.items) {
    Send(item.from, batch.to, std::move(item.message));
  }
}

void ImmediateDeliveryChannel::Send(NodeId from, NodeId to,
                                    ProtocolMessage message) {
  DeliverNow(from, to, std::move(message));
}

void ImmediateDeliveryChannel::SendBatch(MessageBatch batch) {
  DeliverBatch(batch);
}

void WireCodecDeliveryChannel::Send(NodeId from, NodeId to,
                                    ProtocolMessage message) {
  // Encode + decode every payload so a codec regression can never hide
  // behind in-process delivery.
  inner_->Send(from, to, DecodeMessage(EncodeMessage(message)));
}

void WireCodecDeliveryChannel::SendBatch(MessageBatch batch) {
  if (batch.items.size() == 1) {
    // One-item envelopes travel as plain datagrams on real transports;
    // round-trip the same format here.
    Send(batch.items.front().from, batch.to,
         std::move(batch.items.front().message));
    return;
  }
  // Multi-item envelopes round-trip through the packed batch frame — the
  // exact bytes UdpDeliveryChannel::SendBatch puts in one datagram.
  const std::vector<ProtocolMessage> messages =
      DecodeBatchFrame(EncodeBatchFrame(batch));
  MessageBatch decoded;
  decoded.to = batch.to;
  decoded.items.reserve(messages.size());
  for (const ProtocolMessage& message : messages) {
    decoded.items.push_back(BatchItem{SenderOf(message), message});
  }
  inner_->SendBatch(std::move(decoded));
}

void CoalescingDeliveryChannel::Buffer(NodeId from, NodeId to,
                                       ProtocolMessage message) {
  auto [it, inserted] = buffers_.try_emplace(to);
  if (inserted || it->second.empty()) {
    order_.push_back(to);
  }
  it->second.push_back(BatchItem{from, std::move(message)});
  if (max_batch_ > 0 && it->second.size() >= max_batch_) {
    MessageBatch batch;
    batch.to = to;
    batch.items = std::exchange(it->second, {});
    // The destination's order_ slot stays; Flush skips empty buffers.
    Emit(std::move(batch));
  }
}

void CoalescingDeliveryChannel::Send(NodeId from, NodeId to,
                                     ProtocolMessage message) {
  Buffer(from, to, std::move(message));
}

void CoalescingDeliveryChannel::SendBatch(MessageBatch batch) {
  for (BatchItem& item : batch.items) {
    Buffer(item.from, batch.to, std::move(item.message));
  }
}

void CoalescingDeliveryChannel::Emit(MessageBatch batch) {
  ++batches_emitted_;
  messages_emitted_ += batch.items.size();
  max_batch_emitted_ = std::max(max_batch_emitted_, batch.items.size());
  inner_->SendBatch(std::move(batch));
}

void CoalescingDeliveryChannel::Flush() {
  // The emission may cascade (handlers sending again); each pass drains the
  // destinations buffered so far, in first-buffered order, until quiescent.
  while (!order_.empty()) {
    std::vector<NodeId> round = std::exchange(order_, {});
    for (const NodeId to : round) {
      auto it = buffers_.find(to);
      if (it == buffers_.end() || it->second.empty()) {
        continue;  // auto-flushed by the max_batch cap, or a duplicate slot
      }
      MessageBatch batch;
      batch.to = to;
      batch.items = std::exchange(it->second, {});
      Emit(std::move(batch));
    }
  }
}

std::size_t CoalescingDeliveryChannel::PendingMessages() const noexcept {
  std::size_t pending = 0;
  for (const auto& [to, items] : buffers_) {
    pending += items.size();
  }
  return pending;
}

EventQueueDeliveryChannel::EventQueueDeliveryChannel(netsim::EventQueue& events,
                                                     DelayFn delay,
                                                     bool coalesce)
    : events_(&events), delay_(std::move(delay)), coalesce_(coalesce) {
  if (!delay_) {
    throw std::invalid_argument("EventQueueDeliveryChannel: delay fn required");
  }
}

void EventQueueDeliveryChannel::Send(NodeId from, NodeId to,
                                     ProtocolMessage message) {
  const double delay = delay_(from, to);
  if (!coalesce_) {
    events_->Schedule(delay, [this, from, to, message = std::move(message)] {
      DeliverNow(from, to, message);
    });
    return;
  }
  const double arrival = events_->Now() + delay;
  const auto key = ArrivalKey(to, arrival);
  // Merge only *back-to-back* sends sharing the key (DESIGN.md §13): their
  // per-message events would carry consecutive sequence numbers at one
  // timestamp, so nothing can sort between them and the merge is exactly
  // order-preserving — unconditionally, not just for continuous delays.
  // Because only the most recent envelope can ever absorb another message,
  // one (key, envelope) slot suffices.  The arrival > Now() guard keeps an
  // already-fired envelope from absorbing a late send (only possible at
  // delay 0 — positive delays always produce a fresh, future key) and lets
  // the fire callback stay mutation-free: it may execute on a parallel
  // window's worker thread long after this driver-context schedule.
  if (last_key_ == key && last_batch_ != nullptr && arrival > events_->Now()) {
    last_batch_->items.push_back(BatchItem{from, std::move(message)});
    return;
  }
  auto batch = std::make_shared<MessageBatch>();
  batch->to = to;
  batch->items.push_back(BatchItem{from, std::move(message)});
  last_key_ = key;
  last_batch_ = batch;
  events_->Schedule(delay, [this, batch] { DeliverBatch(*batch); });
}

ShardedEventQueueDeliveryChannel::ShardedEventQueueDeliveryChannel(
    netsim::ShardedEventQueue& events, DelayFn delay, bool coalesce)
    : events_(&events), delay_(std::move(delay)), coalesce_(coalesce) {
  if (!delay_) {
    throw std::invalid_argument(
        "ShardedEventQueueDeliveryChannel: delay fn required");
  }
}

void ShardedEventQueueDeliveryChannel::Send(NodeId from, NodeId to,
                                            ProtocolMessage message) {
  // Owner = destination: the delivered message's handler runs at `to`.  A
  // destination shard owned by a peer process gets the serialized envelope
  // instead of a callback (DESIGN.md §12).
  const double delay = delay_(from, to);
  if (!events_->IsOwnedShard(events_->ShardOf(to))) {
    events_->ScheduleRemote(to, delay, EncodeEnvelope(from, message));
    return;
  }
  // Coalescing is driver-context only: inside a parallel window callbacks
  // run concurrently and the pending index is shared state; in-window
  // cross-process traffic is merged at the barrier instead (DESIGN.md §13).
  if (!coalesce_ || events_->InParallelWindow()) {
    events_->Schedule(to, delay, [this, from, to, message = std::move(message)] {
      DeliverNow(from, to, message);
    });
    return;
  }
  const double arrival = events_->Now() + delay;
  const auto key = ArrivalKey(to, arrival);
  // Back-to-back merging with a future-arrival guard, and a mutation-free
  // fire callback — see EventQueueDeliveryChannel::Send for why both.
  if (last_key_ == key && last_batch_ != nullptr && arrival > events_->Now()) {
    last_batch_->items.push_back(BatchItem{from, std::move(message)});
    return;
  }
  auto batch = std::make_shared<MessageBatch>();
  batch->to = to;
  batch->items.push_back(BatchItem{from, std::move(message)});
  last_key_ = key;
  last_batch_ = batch;
  events_->Schedule(to, delay, [this, batch] { DeliverBatch(*batch); });
}

std::vector<std::byte> ShardedEventQueueDeliveryChannel::EncodeEnvelope(
    NodeId from, const ProtocolMessage& message) {
  std::vector<std::byte> wire = EncodeMessage(message);
  std::vector<std::byte> envelope(sizeof(NodeId) + wire.size());
  std::memcpy(envelope.data(), &from, sizeof(from));
  std::memcpy(envelope.data() + sizeof(NodeId), wire.data(), wire.size());
  return envelope;
}

std::vector<std::byte> ShardedEventQueueDeliveryChannel::MergeEnvelopes(
    std::span<const std::vector<std::byte>> envelopes) {
  if (envelopes.empty() || envelopes.size() > kMaxWireBatchItems) {
    throw WireError("MergeEnvelopes: envelope count out of bounds");
  }
  std::vector<std::byte> merged;
  PutU32(merged, kBatchEnvelopeMarker);
  PutU16(merged, static_cast<std::uint16_t>(envelopes.size()));
  for (const std::vector<std::byte>& envelope : envelopes) {
    if (envelope.empty()) {
      throw WireError("MergeEnvelopes: empty sub-envelope");
    }
    PutU32(merged, static_cast<std::uint32_t>(envelope.size()));
    merged.insert(merged.end(), envelope.begin(), envelope.end());
  }
  return merged;
}

std::optional<std::vector<std::byte>>
ShardedEventQueueDeliveryChannel::MergeEnvelopesIfReplies(
    std::span<const std::vector<std::byte>> envelopes) {
  if (envelopes.size() > kMaxWireBatchItems) {
    return std::nullopt;
  }
  for (const std::vector<std::byte>& envelope : envelopes) {
    // [from u32][version u8][tag u8]...: peek the wire tag without a full
    // decode; anything but a reply (or anything malformed) declines — the
    // events then ship individually and fail loudly at the receiver's
    // decoder if genuinely corrupt.
    if (envelope.size() < sizeof(NodeId) + 2) {
      return std::nullopt;
    }
    const auto tag = static_cast<std::uint8_t>(envelope[sizeof(NodeId) + 1]);
    if (tag != static_cast<std::uint8_t>(MessageType::kRttProbeReply) &&
        tag != static_cast<std::uint8_t>(MessageType::kAbwProbeReply)) {
      return std::nullopt;
    }
  }
  return MergeEnvelopes(envelopes);
}

namespace {

/// Decodes one single-message envelope ([from u32][wire bytes]); shared by
/// the single and batch paths.  `owner_count` bounds the sender id.
BatchItem DecodeSingleEnvelope(std::span<const std::byte> payload,
                               std::size_t owner_count) {
  if (payload.size() < sizeof(NodeId)) {
    throw WireError("ShardedEventQueueDeliveryChannel: truncated envelope");
  }
  NodeId from = 0;
  std::memcpy(&from, payload.data(), sizeof(from));
  if (from >= owner_count) {
    // Fail at decode time, not mid-window when the handler indexes with it.
    throw WireError(
        "ShardedEventQueueDeliveryChannel: envelope sender out of range");
  }
  return BatchItem{from, DecodeMessage(payload.subspan(sizeof(NodeId)))};
}

}  // namespace

netsim::ShardedEventQueue::Callback
ShardedEventQueueDeliveryChannel::DecodeEnvelopeCallback(
    NodeId to, std::vector<std::byte> payload) {
  const std::size_t owners = events_->OwnerCount();
  std::uint32_t head = 0;
  if (payload.size() >= sizeof(head)) {
    std::memcpy(&head, payload.data(), sizeof(head));
  }
  auto batch = std::make_shared<MessageBatch>();
  batch->to = to;
  if (head != kBatchEnvelopeMarker) {
    batch->items.push_back(DecodeSingleEnvelope(payload, owners));
  } else {
    ByteReader reader(std::span<const std::byte>(payload).subspan(4));
    const std::uint16_t count = reader.U16();
    if (count == 0 || count > kMaxWireBatchItems) {
      throw WireError(
          "ShardedEventQueueDeliveryChannel: batch envelope count out of "
          "bounds");
    }
    batch->items.reserve(count);
    for (std::uint16_t e = 0; e < count; ++e) {
      const std::uint32_t length = reader.U32();
      batch->items.push_back(DecodeSingleEnvelope(reader.Bytes(length), owners));
    }
    if (!reader.AtEnd()) {
      throw WireError(
          "ShardedEventQueueDeliveryChannel: trailing bytes in batch envelope");
    }
  }
  return [this, batch] { DeliverBatch(*batch); };
}

}  // namespace dmfsgd::core
