#include "core/delivery.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/wire.hpp"
#include "netsim/event_queue.hpp"

namespace dmfsgd::core {

std::vector<std::byte> EncodeMessage(const ProtocolMessage& message) {
  return std::visit([](const auto& typed) { return Encode(typed); }, message);
}

ProtocolMessage DecodeMessage(std::span<const std::byte> buffer) {
  switch (PeekType(buffer)) {
    case MessageType::kRttProbeRequest:
      return DecodeRttProbeRequest(buffer);
    case MessageType::kRttProbeReply:
      return DecodeRttProbeReply(buffer);
    case MessageType::kAbwProbeRequest:
      return DecodeAbwProbeRequest(buffer);
    case MessageType::kAbwProbeReply:
      return DecodeAbwProbeReply(buffer);
  }
  throw WireError("DecodeMessage: unknown message type");
}

NodeId SenderOf(const ProtocolMessage& message) noexcept {
  return std::visit(
      [](const auto& typed) {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, RttProbeRequest> ||
                      std::is_same_v<T, AbwProbeRequest>) {
          return typed.prober;
        } else {
          return typed.target;
        }
      },
      message);
}

void ImmediateDeliveryChannel::Send(NodeId from, NodeId to,
                                    ProtocolMessage message) {
  DeliverNow(from, to, message);
}

void WireCodecDeliveryChannel::Send(NodeId from, NodeId to,
                                    ProtocolMessage message) {
  // Encode + decode every payload so a codec regression can never hide
  // behind in-process delivery.
  inner_->Send(from, to, DecodeMessage(EncodeMessage(message)));
}

EventQueueDeliveryChannel::EventQueueDeliveryChannel(netsim::EventQueue& events,
                                                     DelayFn delay)
    : events_(&events), delay_(std::move(delay)) {
  if (!delay_) {
    throw std::invalid_argument("EventQueueDeliveryChannel: delay fn required");
  }
}

void EventQueueDeliveryChannel::Send(NodeId from, NodeId to,
                                     ProtocolMessage message) {
  events_->Schedule(delay_(from, to),
                    [this, from, to, message = std::move(message)] {
                      DeliverNow(from, to, message);
                    });
}

ShardedEventQueueDeliveryChannel::ShardedEventQueueDeliveryChannel(
    netsim::ShardedEventQueue& events, DelayFn delay)
    : events_(&events), delay_(std::move(delay)) {
  if (!delay_) {
    throw std::invalid_argument(
        "ShardedEventQueueDeliveryChannel: delay fn required");
  }
}

void ShardedEventQueueDeliveryChannel::Send(NodeId from, NodeId to,
                                            ProtocolMessage message) {
  // Owner = destination: the delivered message's handler runs at `to`.  A
  // destination shard owned by a peer process gets the serialized envelope
  // instead of a callback (DESIGN.md §12).
  if (!events_->IsOwnedShard(events_->ShardOf(to))) {
    events_->ScheduleRemote(to, delay_(from, to), EncodeEnvelope(from, message));
    return;
  }
  events_->Schedule(to, delay_(from, to),
                    [this, from, to, message = std::move(message)] {
                      DeliverNow(from, to, message);
                    });
}

std::vector<std::byte> ShardedEventQueueDeliveryChannel::EncodeEnvelope(
    NodeId from, const ProtocolMessage& message) {
  std::vector<std::byte> wire = EncodeMessage(message);
  std::vector<std::byte> envelope(sizeof(NodeId) + wire.size());
  std::memcpy(envelope.data(), &from, sizeof(from));
  std::memcpy(envelope.data() + sizeof(NodeId), wire.data(), wire.size());
  return envelope;
}

netsim::ShardedEventQueue::Callback
ShardedEventQueueDeliveryChannel::DecodeEnvelopeCallback(
    NodeId to, std::vector<std::byte> payload) {
  if (payload.size() < sizeof(NodeId)) {
    throw WireError("ShardedEventQueueDeliveryChannel: truncated envelope");
  }
  NodeId from = 0;
  std::memcpy(&from, payload.data(), sizeof(from));
  if (from >= events_->OwnerCount()) {
    // Fail at decode time, not mid-window when the handler indexes with it.
    throw WireError("ShardedEventQueueDeliveryChannel: envelope sender out of range");
  }
  ProtocolMessage message = DecodeMessage(
      std::span<const std::byte>(payload).subspan(sizeof(NodeId)));
  return [this, from, to, message = std::move(message)] {
    DeliverNow(from, to, message);
  };
}

}  // namespace dmfsgd::core
