#include "core/simulation.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/wire.hpp"

namespace dmfsgd::core {

DeliveryChannel& DmfsgdSimulation::BuildStack(const SimulationConfig& config) {
  DeliveryChannel& stack =
      StackChannel(immediate_, wire_, config.use_wire_format);
  if (!config.coalesce_delivery) {
    return stack;
  }
  // Cap envelopes at the wire frame's item bound: a probe_burst beyond it
  // would otherwise hand the wire-codec decorator (and any datagram
  // transport) an unencodable envelope.
  coalescing_.emplace(stack, kMaxWireBatchItems);
  return *coalescing_;
}

DmfsgdSimulation::DmfsgdSimulation(const datasets::Dataset& dataset,
                                   const SimulationConfig& config,
                                   const ErrorInjector* injector)
    : engine_(dataset, config, injector, BuildStack(config)) {}

void DmfsgdSimulation::RunRounds(std::size_t rounds) {
  const std::size_t n = engine_.NodeCount();
  const std::size_t burst = engine_.config().probe_burst;
  for (std::size_t round = 0; round < rounds; ++round) {
    engine_.ChurnSweep();
    for (NodeId i = 0; i < n; ++i) {
      for (std::size_t b = 0; b < burst; ++b) {
        const NodeId j = engine_.PickNeighbor(i);
        engine_.StartExchange(i, j, std::nullopt);
      }
      if (coalescing_.has_value()) {
        // Flush per node, after its whole burst: the burst's requests go
        // out as envelopes grouped by target, and — because every reply of
        // the burst addresses node i — the replies come back as one
        // envelope, the unit the mini-batch fold consumes.  At burst 1 the
        // flush degenerates to per-message delivery in the exact sequential
        // order, so the drain is bit-identical to the immediate channel
        // (pinned by the coalesced-drain parity tests).
        coalescing_->Flush();
      }
    }
  }
}

void DmfsgdSimulation::RunRoundsParallel(std::size_t rounds,
                                         common::ThreadPool& pool) {
  for (std::size_t round = 0; round < rounds; ++round) {
    engine_.ParallelRoundSweep(pool);  // includes the churn sweep
  }
}

void DmfsgdSimulation::RunRoundsCompiled(std::size_t rounds) {
  for (std::size_t round = 0; round < rounds; ++round) {
    engine_.CompiledRoundSweep();  // includes the churn sweep
  }
}

std::size_t DmfsgdSimulation::ReplayTrace(std::size_t begin, std::size_t end) {
  const auto& trace = engine_.dataset().trace;
  if (trace.empty()) {
    throw std::logic_error("DmfsgdSimulation::ReplayTrace: dataset has no trace");
  }
  if (coalescing_.has_value()) {
    // A trace record's observed value must be consumed by the reply handler
    // inside StartExchange, which deferred delivery makes impossible.
    throw std::logic_error(
        "DmfsgdSimulation::ReplayTrace: trace replay requires per-message "
        "delivery (coalesce_delivery must be off)");
  }
  end = std::min(end, trace.size());
  if (begin > end) {
    throw std::invalid_argument("DmfsgdSimulation::ReplayTrace: begin > end");
  }
  std::size_t applied = 0;
  for (std::size_t r = begin; r < end; ++r) {
    const datasets::TraceRecord& record = trace[r];
    // A passively observed measurement is usable only when the observing
    // node actually keeps the other endpoint in its neighbor set.
    if (!engine_.IsNeighborPair(record.src, record.dst)) {
      continue;
    }
    const std::size_t before = engine_.MeasurementCount();
    engine_.StartExchange(record.src, record.dst, record.value);
    if (engine_.MeasurementCount() > before) {
      ++applied;
    }
  }
  return applied;
}

std::size_t DmfsgdSimulation::ReplayTrace() {
  return ReplayTrace(0, engine_.dataset().trace.size());
}

bool DmfsgdSimulation::Ingest(NodeId i, NodeId j,
                              std::optional<double> observed_quantity) {
  if (observed_quantity.has_value() && coalescing_.has_value()) {
    // Same constraint as trace replay: an override must be consumed by the
    // reply handler inside StartExchange, which deferred delivery breaks.
    throw std::logic_error(
        "DmfsgdSimulation::Ingest: observed overrides require per-message "
        "delivery (coalesce_delivery must be off)");
  }
  const std::size_t before = engine_.MeasurementCount();
  engine_.StartExchange(i, j, observed_quantity);
  if (coalescing_.has_value()) {
    coalescing_->Flush();
  }
  return engine_.MeasurementCount() > before;
}

NodeId DmfsgdSimulation::IngestProbe(NodeId i) {
  const NodeId j = engine_.PickNeighbor(i);
  (void)Ingest(i, j, std::nullopt);
  return j;
}

}  // namespace dmfsgd::core
