#include "core/simulation.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmfsgd::core {

DmfsgdSimulation::DmfsgdSimulation(const datasets::Dataset& dataset,
                                   const SimulationConfig& config,
                                   const ErrorInjector* injector)
    : engine_(dataset, config, injector,
              StackChannel(immediate_, wire_, config.use_wire_format)) {}

void DmfsgdSimulation::RunRounds(std::size_t rounds) {
  const std::size_t n = engine_.NodeCount();
  for (std::size_t round = 0; round < rounds; ++round) {
    engine_.ChurnSweep();
    for (NodeId i = 0; i < n; ++i) {
      const NodeId j = engine_.PickNeighbor(i);
      engine_.StartExchange(i, j, std::nullopt);
    }
  }
}

void DmfsgdSimulation::RunRoundsParallel(std::size_t rounds,
                                         common::ThreadPool& pool) {
  for (std::size_t round = 0; round < rounds; ++round) {
    engine_.ParallelRoundSweep(pool);  // includes the churn sweep
  }
}

std::size_t DmfsgdSimulation::ReplayTrace(std::size_t begin, std::size_t end) {
  const auto& trace = engine_.dataset().trace;
  if (trace.empty()) {
    throw std::logic_error("DmfsgdSimulation::ReplayTrace: dataset has no trace");
  }
  end = std::min(end, trace.size());
  if (begin > end) {
    throw std::invalid_argument("DmfsgdSimulation::ReplayTrace: begin > end");
  }
  std::size_t applied = 0;
  for (std::size_t r = begin; r < end; ++r) {
    const datasets::TraceRecord& record = trace[r];
    // A passively observed measurement is usable only when the observing
    // node actually keeps the other endpoint in its neighbor set.
    if (!engine_.IsNeighborPair(record.src, record.dst)) {
      continue;
    }
    const std::size_t before = engine_.MeasurementCount();
    engine_.StartExchange(record.src, record.dst, record.value);
    if (engine_.MeasurementCount() > before) {
      ++applied;
    }
  }
  return applied;
}

std::size_t DmfsgdSimulation::ReplayTrace() {
  return ReplayTrace(0, engine_.dataset().trace.size());
}

}  // namespace dmfsgd::core
