#include "core/simulation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/wire.hpp"
#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

namespace {

using datasets::Dataset;
using datasets::Metric;

void RequireConfig(const Dataset& dataset, const SimulationConfig& config) {
  if (config.rank == 0) {
    throw std::invalid_argument("DmfsgdSimulation: rank must be > 0");
  }
  if (config.neighbor_count == 0) {
    throw std::invalid_argument("DmfsgdSimulation: neighbor_count must be > 0");
  }
  if (config.neighbor_count >= dataset.NodeCount()) {
    throw std::invalid_argument(
        "DmfsgdSimulation: neighbor_count must be < node count");
  }
  if (config.tau <= 0.0) {
    throw std::invalid_argument("DmfsgdSimulation: tau must be set (> 0)");
  }
  if (config.message_loss < 0.0 || config.message_loss >= 1.0) {
    throw std::invalid_argument("DmfsgdSimulation: message_loss must be in [0, 1)");
  }
  if (config.params.eta <= 0.0) {
    throw std::invalid_argument("DmfsgdSimulation: eta must be > 0");
  }
  if (config.params.lambda < 0.0) {
    throw std::invalid_argument("DmfsgdSimulation: lambda must be >= 0");
  }
  if (config.churn_rate < 0.0 || config.churn_rate >= 1.0) {
    throw std::invalid_argument("DmfsgdSimulation: churn_rate must be in [0, 1)");
  }
  if (config.exploration < 0.0 || config.exploration > 1.0) {
    throw std::invalid_argument("DmfsgdSimulation: exploration must be in [0, 1]");
  }
}

}  // namespace

const char* ProbeStrategyName(ProbeStrategy strategy) noexcept {
  switch (strategy) {
    case ProbeStrategy::kUniformRandom:
      return "uniform-random";
    case ProbeStrategy::kRoundRobin:
      return "round-robin";
    case ProbeStrategy::kLossDriven:
      return "loss-driven";
  }
  return "?";
}

DmfsgdSimulation::DmfsgdSimulation(const Dataset& dataset,
                                   const SimulationConfig& config,
                                   const ErrorInjector* injector)
    : dataset_(&dataset), config_(config), injector_(injector), rng_(config.seed) {
  RequireConfig(dataset, config);
  if (injector_ != nullptr && injector_->NodeCount() != dataset.NodeCount()) {
    throw std::invalid_argument(
        "DmfsgdSimulation: injector node count does not match the dataset");
  }

  const std::size_t n = dataset.NodeCount();
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i), config_.rank, rng_);
  }

  // Random neighbor sets, restricted to pairs with known ground truth
  // (HP-S3 has ~4% unmeasured pairs that can't be probed).
  neighbors_.resize(n);
  round_robin_cursor_.assign(n, 0);
  neighbor_loss_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    RebuildNeighborSet(static_cast<NodeId>(i));
  }
}

void DmfsgdSimulation::RebuildNeighborSet(NodeId i) {
  const std::size_t n = nodes_.size();
  std::vector<NodeId> candidates;
  candidates.reserve(n - 1);
  for (std::size_t j = 0; j < n; ++j) {
    if (j != i && dataset_->IsKnown(i, j)) {
      candidates.push_back(static_cast<NodeId>(j));
    }
  }
  if (candidates.size() < config_.neighbor_count) {
    throw std::invalid_argument(
        "DmfsgdSimulation: node has fewer measurable pairs than k");
  }
  rng_.Shuffle(std::span(candidates));
  candidates.resize(config_.neighbor_count);
  std::sort(candidates.begin(), candidates.end());
  neighbors_[i] = std::move(candidates);
  round_robin_cursor_[i] = 0;
  // Unprobed neighbors carry +inf loss so the loss-driven strategy visits
  // everyone at least once before exploiting.
  neighbor_loss_[i].assign(config_.neighbor_count,
                           std::numeric_limits<double>::infinity());
}

void DmfsgdSimulation::ResetNode(NodeId i) {
  if (i >= nodes_.size()) {
    throw std::out_of_range("DmfsgdSimulation::ResetNode: index out of range");
  }
  nodes_[i] = DmfsgdNode(i, config_.rank, rng_);
  RebuildNeighborSet(i);
  ++churn_count_;
}

NodeId DmfsgdSimulation::PickNeighbor(NodeId i) {
  const auto& nb = neighbors_[i];
  switch (config_.strategy) {
    case ProbeStrategy::kUniformRandom:
      return nb[rng_.UniformInt(static_cast<std::uint64_t>(nb.size()))];
    case ProbeStrategy::kRoundRobin: {
      const NodeId j = nb[round_robin_cursor_[i] % nb.size()];
      ++round_robin_cursor_[i];
      return j;
    }
    case ProbeStrategy::kLossDriven: {
      if (rng_.Bernoulli(config_.exploration)) {
        return nb[rng_.UniformInt(static_cast<std::uint64_t>(nb.size()))];
      }
      const auto& losses = neighbor_loss_[i];
      std::size_t best = 0;
      for (std::size_t p = 1; p < losses.size(); ++p) {
        if (losses[p] > losses[best]) {
          best = p;
        }
      }
      return nb[best];
    }
  }
  return nb[0];
}

const DmfsgdNode& DmfsgdSimulation::node(std::size_t i) const {
  if (i >= nodes_.size()) {
    throw std::out_of_range("DmfsgdSimulation::node: index out of range");
  }
  return nodes_[i];
}

bool DmfsgdSimulation::IsNeighborPair(std::size_t i, std::size_t j) const {
  if (i >= nodes_.size() || j >= nodes_.size()) {
    throw std::out_of_range("DmfsgdSimulation::IsNeighborPair: index out of range");
  }
  const auto& nb = neighbors_[i];
  return std::binary_search(nb.begin(), nb.end(), static_cast<NodeId>(j));
}

double DmfsgdSimulation::AverageMeasurementsPerNode() const noexcept {
  return static_cast<double>(measurement_count_) /
         static_cast<double>(nodes_.size());
}

double DmfsgdSimulation::Predict(std::size_t i, std::size_t j) const {
  if (i >= nodes_.size() || j >= nodes_.size()) {
    throw std::out_of_range("DmfsgdSimulation::Predict: index out of range");
  }
  return nodes_[i].Predict(nodes_[j].v());
}

bool DmfsgdSimulation::LegLost() {
  if (config_.message_loss <= 0.0) {
    return false;
  }
  const bool lost = rng_.Bernoulli(config_.message_loss);
  if (lost) {
    ++dropped_legs_;
  }
  return lost;
}

double DmfsgdSimulation::MeasurementFor(
    std::size_t i, std::size_t j, std::optional<double> observed_quantity) const {
  const double quantity =
      observed_quantity.has_value() ? *observed_quantity : dataset_->Quantity(i, j);
  if (config_.mode == PredictionMode::kRegression) {
    // τ-normalization keeps SGD stable across metrics (DESIGN.md §3); the
    // prediction target is then a dimensionless "multiples of τ".
    return quantity / config_.tau;
  }
  // Classification: corrupted paths report their corrupted label on *every*
  // probe (inaccurate tools and malicious nodes are persistent, §6.3), so
  // the injector overrides even dynamically observed quantities.
  if (injector_ != nullptr) {
    return static_cast<double>(injector_->Label(i, j));
  }
  return static_cast<double>(ClassOf(dataset_->metric, quantity, config_.tau));
}

void DmfsgdSimulation::RttProbe(NodeId i, NodeId j,
                                std::optional<double> observed_quantity) {
  // Algorithm 1.  Leg 1: the probe itself (ping request).
  if (LegLost()) {
    return;
  }
  // Leg 2: the reply carrying (u_j, v_j); its timing gives x_ij at node i.
  if (LegLost()) {
    return;
  }
  RttProbeReply reply{j, nodes_[j].UCopy(), nodes_[j].VCopy()};
  if (config_.use_wire_format) {
    const auto encoded = Encode(reply);
    reply = DecodeRttProbeReply(encoded);
  }
  const double x = MeasurementFor(i, j, observed_quantity);
  if (config_.strategy == ProbeStrategy::kLossDriven) {
    const auto& nb = neighbors_[i];
    const auto it = std::lower_bound(nb.begin(), nb.end(), j);
    if (it != nb.end() && *it == j) {
      const double x_hat = linalg::Dot(nodes_[i].u(), reply.v);
      neighbor_loss_[i][static_cast<std::size_t>(it - nb.begin())] =
          LossValue(config_.params.loss, x, x_hat);
    }
  }
  nodes_[i].RttUpdate(x, reply.u, reply.v, config_.params);
  ++measurement_count_;
}

void DmfsgdSimulation::AbwProbe(NodeId i, NodeId j) {
  // Algorithm 2.  Leg 1: the UDP train carrying u_i at rate τ.
  if (LegLost()) {
    return;
  }
  AbwProbeRequest request{i, nodes_[i].UCopy(), config_.tau};
  if (config_.use_wire_format) {
    const auto encoded = Encode(request);
    request = DecodeAbwProbeRequest(encoded);
  }

  // The target infers x_ij, replies with its pre-update v_j (Algorithm 2
  // sends before updating), then updates v_j — the measurement is consumed
  // at the target even if the reply later gets lost.
  const double x = MeasurementFor(i, j, std::nullopt);
  AbwProbeReply reply{j, x, nodes_[j].VCopy()};
  nodes_[j].AbwTargetUpdate(x, request.u, config_.params);
  ++measurement_count_;

  // Leg 2: the reply back to the prober.
  if (LegLost()) {
    return;
  }
  if (config_.use_wire_format) {
    const auto encoded = Encode(reply);
    reply = DecodeAbwProbeReply(encoded);
  }
  if (config_.strategy == ProbeStrategy::kLossDriven) {
    const auto& nb = neighbors_[i];
    const auto it = std::lower_bound(nb.begin(), nb.end(), j);
    if (it != nb.end() && *it == j) {
      const double x_hat = linalg::Dot(nodes_[i].u(), reply.v);
      neighbor_loss_[i][static_cast<std::size_t>(it - nb.begin())] =
          LossValue(config_.params.loss, reply.measurement, x_hat);
    }
  }
  nodes_[i].AbwProberUpdate(reply.measurement, reply.v, config_.params);
}

void DmfsgdSimulation::RunRounds(std::size_t rounds) {
  const bool abw = dataset_->metric == Metric::kAbw;
  for (std::size_t round = 0; round < rounds; ++round) {
    if (config_.churn_rate > 0.0) {
      for (NodeId i = 0; i < nodes_.size(); ++i) {
        if (rng_.Bernoulli(config_.churn_rate)) {
          ResetNode(i);
        }
      }
    }
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      const NodeId j = PickNeighbor(i);
      if (abw) {
        AbwProbe(i, j);
      } else {
        RttProbe(i, j, std::nullopt);
      }
    }
  }
}

std::size_t DmfsgdSimulation::ReplayTrace(std::size_t begin, std::size_t end) {
  if (dataset_->trace.empty()) {
    throw std::logic_error("DmfsgdSimulation::ReplayTrace: dataset has no trace");
  }
  end = std::min(end, dataset_->trace.size());
  if (begin > end) {
    throw std::invalid_argument("DmfsgdSimulation::ReplayTrace: begin > end");
  }
  std::size_t applied = 0;
  for (std::size_t r = begin; r < end; ++r) {
    const datasets::TraceRecord& record = dataset_->trace[r];
    // A passively observed measurement is usable only when the observing
    // node actually keeps the other endpoint in its neighbor set.
    if (!IsNeighborPair(record.src, record.dst)) {
      continue;
    }
    const std::size_t before = measurement_count_;
    RttProbe(record.src, record.dst, record.value);
    if (measurement_count_ > before) {
      ++applied;
    }
  }
  return applied;
}

std::size_t DmfsgdSimulation::ReplayTrace() {
  return ReplayTrace(0, dataset_->trace.size());
}

}  // namespace dmfsgd::core
