#include "core/coordinate_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

CoordinateStore::CoordinateStore(std::size_t node_count, std::size_t rank) {
  Reset(node_count, rank);
}

void CoordinateStore::Reset(std::size_t node_count, std::size_t rank) {
  if (rank == 0) {
    throw std::invalid_argument("CoordinateStore: rank must be > 0");
  }
  rank_ = rank;
  u_data_.assign(node_count * rank, 0.0);
  v_data_.assign(node_count * rank, 0.0);
}

void CoordinateStore::RandomizeRow(std::size_t i, common::Rng& rng) {
  if (i >= NodeCount()) {
    throw std::out_of_range("CoordinateStore::RandomizeRow: index out of range");
  }
  for (double& value : U(i)) {
    value = rng.Uniform();
  }
  for (double& value : V(i)) {
    value = rng.Uniform();
  }
}

void CoordinateStore::CopyVRow(std::size_t i, std::span<double> out) const {
  if (i >= NodeCount()) {
    throw std::out_of_range("CoordinateStore::CopyVRow: index out of range");
  }
  if (out.size() != rank_) {
    throw std::invalid_argument("CoordinateStore::CopyVRow: rank mismatch");
  }
  const auto row = V(i);
  std::copy(row.begin(), row.end(), out.begin());
}

double CoordinateStore::VRowDriftSquared(std::size_t i,
                                         std::span<const double> snapshot) const {
  if (i >= NodeCount()) {
    throw std::out_of_range(
        "CoordinateStore::VRowDriftSquared: index out of range");
  }
  if (snapshot.size() != rank_) {
    throw std::invalid_argument(
        "CoordinateStore::VRowDriftSquared: rank mismatch");
  }
  const auto row = V(i);
  double sum = 0.0;
  for (std::size_t d = 0; d < rank_; ++d) {
    const double diff = row[d] - snapshot[d];
    sum += diff * diff;
  }
  return sum;
}

double CoordinateStore::Predict(std::size_t i, std::size_t j) const {
  if (i >= NodeCount() || j >= NodeCount()) {
    throw std::out_of_range("CoordinateStore::Predict: index out of range");
  }
  return PredictUnchecked(i, j);
}

}  // namespace dmfsgd::core
