#include "core/coordinate_store.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

CoordinateStore::CoordinateStore(std::size_t node_count, std::size_t rank) {
  Reset(node_count, rank);
}

void CoordinateStore::Reset(std::size_t node_count, std::size_t rank) {
  if (rank == 0) {
    throw std::invalid_argument("CoordinateStore: rank must be > 0");
  }
  rank_ = rank;
  u_data_.assign(node_count * rank, 0.0);
  v_data_.assign(node_count * rank, 0.0);
}

void CoordinateStore::RandomizeRow(std::size_t i, common::Rng& rng) {
  if (i >= NodeCount()) {
    throw std::out_of_range("CoordinateStore::RandomizeRow: index out of range");
  }
  for (double& value : U(i)) {
    value = rng.Uniform();
  }
  for (double& value : V(i)) {
    value = rng.Uniform();
  }
}

double CoordinateStore::Predict(std::size_t i, std::size_t j) const {
  if (i >= NodeCount() || j >= NodeCount()) {
    throw std::out_of_range("CoordinateStore::Predict: index out of range");
  }
  return PredictUnchecked(i, j);
}

}  // namespace dmfsgd::core
