// Multi-process async DMFSGD simulation coordinator (DESIGN.md §12).
//
// Distributes one AsyncDmfsgdSimulation across the processes of an
// InterShardChannel: every process performs the same deterministic
// construction from (dataset, config), owns a contiguous block of event
// shards (and therefore of nodes), and drains conservative windows in lock
// step under a netsim::ShardRuntime.  Handlers only ever touch the state of
// the node they run at, every cross-owner influence travels as a protocol
// message (shipped as a stamped envelope when it crosses processes), and all
// randomness flows through per-node streams — so the distributed run is
// bit-identical to a single-process parallel drain of the same seed and
// shard count, window for window.
//
// At End the coordinator (process 0) folds the deployment back together:
// peers ship their owned coordinate rows and counter sums, and process 0
// assembles the full final factors plus exact global counters.
#pragma once

#include <cstdint>
#include <vector>

#include "core/async_simulation.hpp"
#include "netsim/inter_shard_channel.hpp"
#include "netsim/shard_runtime.hpp"

namespace dmfsgd::core {

/// The folded outcome of one process's share of a distributed run.  On the
/// coordinator, `u`/`v` hold the complete final factors (every process's
/// owned rows) and the counters are global sums; on a peer they cover only
/// the locally owned nodes (rows outside the owned block are the stale
/// construction-time replicas and are not shipped).
struct MultiprocessRunReport {
  std::size_t process_index = 0;
  std::size_t process_count = 1;
  bool coordinator = false;

  std::size_t node_count = 0;
  std::size_t rank = 0;
  /// First and one-past-last node this process owned.
  NodeId owned_begin = 0;
  NodeId owned_end = 0;
  std::vector<double> u;  ///< row-major, stride = rank
  std::vector<double> v;

  std::uint64_t events_executed = 0;  ///< global sum on the coordinator
  std::uint64_t windows = 0;          ///< identical on every process
  std::uint64_t measurements = 0;
  std::uint64_t dropped_legs = 0;
  std::uint64_t churns = 0;
  /// Inter-shard frames this process shipped (local, never folded) — what
  /// envelope coalescing (config.base.coalesce_delivery) reduces.
  std::uint64_t frames_sent = 0;

  // Transport-health counters snapshotted from the channel after the fold
  // (local to this process, never summed — each process has its own link).
  // Nonzero retransmits/duplicates mean the reliability layer actually
  // repaired faults during the run; dropped/stray come from the UDP backend.
  std::uint64_t dropped_datagrams = 0;
  std::uint64_t stray_datagrams = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates_suppressed = 0;
};

/// Runs this process's share of a distributed async simulation to
/// `until_s` and performs the End fold over `channel`.  Blocking; every
/// process of the channel must call it with the same dataset, config and
/// until_s.  Requires config.shard_count >= channel.ProcessCount() (so each
/// process owns at least one shard; shard_count == 0 resolves to hardware
/// concurrency *locally* and is therefore rejected — a distributed run
/// needs one host-independent value).  `pool` parallelizes the local drain.
/// `runtime_options` tunes the window protocol (poll/stall timing, the
/// event-frame byte budget); every process must pass the same values.  With
/// config.base.coalesce_delivery on, same-destination same-time
/// cross-process messages ship as merged batch envelopes (DESIGN.md §13):
/// results stay bit-identical to the per-message run, while events_executed
/// and frames_sent drop.
[[nodiscard]] MultiprocessRunReport RunMultiprocessAsyncSimulation(
    const datasets::Dataset& dataset, const AsyncSimulationConfig& config,
    netsim::InterShardChannel& channel, double until_s, common::ThreadPool& pool,
    const netsim::ShardRuntimeOptions& runtime_options =
        netsim::ShardRuntimeOptions());

}  // namespace dmfsgd::core
