// The shared DMFSGD deployment core.
//
// Both deployment drivers — the round-based DmfsgdSimulation (paper §5.3)
// and the event-driven AsyncDmfsgdSimulation (§6.1's asynchronous regime) —
// are thin timing loops over this engine.  The engine owns everything the
// paper's protocol defines, independent of timing:
//
//  * membership: per-node random neighbor sets over measurable pairs,
//    churn (a node leaving and a fresh one joining in its place);
//  * probe scheduling policy: which neighbor a node probes next
//    (uniform random / round robin / loss driven);
//  * the measurement pipeline: ground-truth lookup or trace override,
//    error injection, classification vs τ-normalized regression targets;
//  * message-loss semantics: each protocol leg is dropped independently and
//    a lost leg loses exactly the updates a real deployment would lose;
//  * the Algorithm 1/2 exchange state machines (eqs. 9-13), reacting to
//    protocol messages delivered by a pluggable DeliveryChannel.
//
// Because the engine only ever *reacts to delivered messages*, the same
// code runs atomically (immediate channel), with one-way delays and stale
// snapshots (event-queue channel), through the binary codec (wire-codec
// decorator), or over real UDP sockets (transport/udp_channel.hpp).  That
// is the paper's central claim — DMFSGD does not care how its exchanges are
// scheduled — made structural.
//
// Coordinates live in a structure-of-arrays CoordinateStore; DmfsgdNode
// objects are row views, so the SGD inner loop walks contiguous memory.
//
// ## Determinism contract (DESIGN.md §6, §8, §9) — callers must not break it
//
// The engine offers two execution regimes and each one's reproducibility
// rests on invariants that belong to the *caller* as much as to the engine:
//
//  * Sequential (RunRounds / event-driven RunUntil): all randomness flows
//    through the single engine stream `rng()`; a run is a pure function of
//    (seed, dataset, channel stack).  Callers must not draw from `rng()`
//    out of band between protocol steps, or two same-seed runs diverge.
//  * Parallel (ParallelRoundSweep, sharded event drains): every node draws
//    from a private decorrelated stream (`NodeRng`), advanced only by that
//    node's own protocol activity, and every remote coordinate a node
//    consumes is a snapshot captured at a deterministic point — the start of
//    the round (Algorithm 1), the phase schedule position (Algorithm 2), or
//    the message send time (sharded async drain).  Results are therefore
//    bit-identical for every thread-pool size.  Callers must not read or
//    mutate engine state (coordinates, membership, counters) from outside
//    while a parallel call is in flight, and must not mix the per-node
//    streams into sequential paths.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/coordinate_store.hpp"
#include "core/delivery.hpp"
#include "core/error_injection.hpp"
#include "core/node.hpp"
#include "core/protocol_config.hpp"
#include "core/round_compiler.hpp"
#include "datasets/dataset.hpp"

namespace dmfsgd::common {
class ThreadPool;
}

namespace dmfsgd::core {

enum class PredictionMode {
  kClassification,  ///< train on ±1 labels (hinge/logistic)
  kRegression,      ///< train on τ-normalized quantities (L2)
};

/// How a node picks which neighbor to probe next (the paper uses uniform
/// random; the alternatives are extensions inspired by the active sampling
/// of Rish & Tesauro [20] that the related-work section contrasts against).
enum class ProbeStrategy {
  kUniformRandom,  ///< paper default: uniform over the neighbor set
  kRoundRobin,     ///< deterministic cycling through the neighbor set
  kLossDriven,     ///< mostly probe the neighbor with the highest local loss
};

/// Human-readable strategy name.
[[nodiscard]] const char* ProbeStrategyName(ProbeStrategy strategy) noexcept;

/// Greedy target-disjoint phase assignment for one round of exchanges
/// (DESIGN.md §8).  Pair p is the exchange prober_p -> targets[p]; pairs with
/// active[p] == 0 perform no update and are left out of the schedule.  Pairs
/// are scanned in index order and each active pair joins the earliest phase
/// in which its target is not yet taken, so
///
///   * within a phase every target is distinct (phases are data-race-free:
///     pair p writes only u of prober p — unique by construction, one probe
///     per node per round — and v of its target);
///   * for any one target, its pairs appear in ascending prober order across
///     phases, which fixes the order of same-target updates;
///   * the result depends only on (targets, active), never on thread count.
///
/// Returns the phases in order; phases[k] holds pair indices ascending.
/// Empty input yields an empty schedule.  Requires active.size() ==
/// targets.size().
[[nodiscard]] std::vector<std::vector<std::uint32_t>> GreedyTargetPhases(
    std::span<const NodeId> targets, std::span<const unsigned char> active);

/// The simulation drivers' deployment config: the shared protocol knobs
/// (rank, η/λ/loss, τ, seed, probe_burst, coalesce_delivery, compile_rounds
/// — see core/protocol_config.hpp; validated by the one shared
/// ValidateProtocolConfig) plus the driver-specific knobs below.
///
/// Driver semantics of the inherited knobs:
///  * probe_burst — exchanges per probe slot (per round here, per timer
///    firing in the async driver).  The parallel round sweep supports
///    bursts only through the sequential driver (ParallelRoundSweep
///    rejects probe_burst > 1).
///  * coalesce_delivery — the round driver flushes each node's burst
///    through a CoalescingDeliveryChannel; the async driver merges
///    same-destination same-arrival-time messages into one event.  With
///    gradient_batch_size == 1 the drains are bit-identical to
///    per-message delivery (DESIGN.md §13).
///  * compile_rounds — the parallel round sweep gathers rounds into
///    row-major COO fused sweeps and the engine folds multi-message reply
///    envelopes through the same fused executor; bit-identical to the
///    per-message twin under the scalar kernel table (DESIGN.md §14).
///    Mini-batch folding (gradient_batch_size > 1) takes precedence on
///    the receive path.
struct SimulationConfig : ProtocolConfig {
  PredictionMode mode = PredictionMode::kClassification;
  std::size_t neighbor_count = 10; ///< k
  double message_loss = 0.0;       ///< per-leg drop probability in [0, 1)
  bool use_wire_format = false;    ///< serialize every exchange through wire.hpp
  ProbeStrategy strategy = ProbeStrategy::kUniformRandom;
  /// Per-round probability that a node churns (leaves and is replaced by a
  /// fresh node with new random coordinates and a new neighbor set) — the
  /// P2P membership dynamics a deployed system faces.  The async driver
  /// applies it per probe firing, its per-node scheduling unit.
  double churn_rate = 0.0;
  /// Exploration probability of the loss-driven strategy.
  double exploration = 0.3;

  /// Opt-in mini-batch receive mode (> 1): the engine folds runs of
  /// consecutive same-kind replies inside one delivered envelope into a
  /// single accumulated gradient step (GradientStepBatch), chunked at this
  /// size.  At 1 (default) every message applies its own step — the paper's
  /// per-measurement update — and results are bit-identical to the
  /// pre-batch engine.  Must be >= 1.
  std::size_t gradient_batch_size = 1;
};

class DeploymentEngine {
 public:
  /// Builds the deployment state (nodes with random coordinates, random
  /// neighbor sets over pairs with known ground truth) and binds the
  /// engine's protocol dispatcher as the channel's sink.  `dataset`,
  /// `injector` (if given) and `channel` must outlive the engine.  Throws
  /// std::invalid_argument on a bad config or injector mismatch.
  DeploymentEngine(const datasets::Dataset& dataset, const SimulationConfig& config,
                   const ErrorInjector* injector, DeliveryChannel& channel);

  // Self-referential by design: the channel sink captures `this` and every
  // node views the engine's store.  Moving or copying would dangle both.
  DeploymentEngine(const DeploymentEngine&) = delete;
  DeploymentEngine& operator=(const DeploymentEngine&) = delete;
  DeploymentEngine(DeploymentEngine&&) = delete;
  DeploymentEngine& operator=(DeploymentEngine&&) = delete;

  // -- membership ----------------------------------------------------------

  /// Simulates node i leaving and a fresh node joining in its place: new
  /// random coordinates, a new random neighbor set, reset probing state.
  void ResetNode(NodeId i);

  /// Rolls churn for every node (one round's worth of membership dynamics).
  void ChurnSweep();

  /// Rolls churn for a single node (the async driver's per-probe unit).
  /// Returns whether the node churned.
  bool MaybeChurnNode(NodeId i);

  /// MaybeChurnNode against an explicit RNG stream; sharded drains pass the
  /// node's private stream so churn stays a pure function of the node's own
  /// history.  The churn counter routes per-node while a sharded drain is
  /// active.
  bool MaybeChurnNodeWith(NodeId i, common::Rng& rng);

  /// Picks the neighbor node i probes next, per the configured strategy.
  [[nodiscard]] NodeId PickNeighbor(NodeId i);

  /// PickNeighbor against an explicit RNG stream (the parallel paths hand
  /// each node its own; the sequential path passes rng()).  Mutates only
  /// node-owned probing state (round-robin cursor), so concurrent calls for
  /// distinct nodes are safe.
  [[nodiscard]] NodeId PickNeighborWith(NodeId i, common::Rng& rng);

  /// Node i's private decorrelated RNG stream (derived from the run seed,
  /// advanced only by node i's own draws).  Built lazily for all nodes on
  /// first use — the build itself is not thread-safe; parallel drivers
  /// trigger it up front (BeginShardedDrain / ParallelRoundSweep do).
  [[nodiscard]] common::Rng& NodeRng(NodeId i);

  // -- protocol ------------------------------------------------------------

  /// Launches one Algorithm-1 (RTT datasets) or Algorithm-2 (ABW) exchange
  /// i -> j through the delivery channel.  `observed_quantity` overrides the
  /// static matrix during trace replay; it is only meaningful on channels
  /// that complete the exchange within this call (immediate delivery).
  void StartExchange(NodeId i, NodeId j, std::optional<double> observed_quantity);

  /// Runs one full probing round — churn sweep, then every node probes one
  /// neighbor — with the per-node work spread over `pool`.  Every node draws
  /// its randomness (neighbor choice, per-leg loss) from a private RNG
  /// stream, which makes the round independent of node visit order; the
  /// result is bit-identical for every pool size.  The trajectory differs
  /// from the sequential, channel-driven RunRounds (which serves mid-round
  /// coordinates and shares one RNG stream).  Counters (measurements,
  /// dropped legs) are updated exactly as the sequential round would.  The
  /// channel stack is bypassed — this is a perf path for the round driver,
  /// not a delivery channel.  Two schedules, picked by the dataset's metric:
  ///
  ///  * Algorithm 1 (prober-measured, RTT): each node's exchange writes only
  ///    its own rows, so one flat sweep suffices; every reply is a snapshot
  ///    captured at the start of the round (the §6.1 staleness regime).
  ///  * Algorithm 2 (target-measured, ABW): an exchange i -> j writes u_i at
  ///    the prober *and* v_j at the target, so the round's pairs are
  ///    partitioned into target-disjoint phases (GreedyTargetPhases over the
  ///    start-of-round membership snapshot, DESIGN.md §8) and the phases run
  ///    as successive data-race-free ParallelFors.  Within one pair the
  ///    sequential exchange order is reproduced exactly: the target consumes
  ///    the probe's u_i and updates v_j, the prober consumes the pre-update
  ///    v_j; same-target updates across phases apply in ascending prober
  ///    order.
  void ParallelRoundSweep(common::ThreadPool& pool);

  /// Runs one full probing round through the sparse round compiler
  /// (DESIGN.md §14), sequentially: churn sweep, then a *gather* pass that
  /// consumes the shared RNG stream in exactly the per-message order (pick,
  /// leg-1 roll, leg-2 roll per exchange) while collecting the surviving
  /// exchanges as COO edges, then an *execute* pass that replays the
  /// gathered edges — in original order (Algorithm 1) or grouped by target
  /// row, stable by message order (Algorithm 2) — as one fused kernel sweep
  /// with no channel, no variant dispatch and no per-message coordinate
  /// copies.  With the scalar kernel table the result is bit-identical to
  /// RunRounds' round over an immediate channel (counters included); vector
  /// tables differ only in dot accumulation order.  Rejects probe_burst > 1
  /// (the compiled gather models one exchange per node per round) and trace
  /// overrides (which need an immediate channel).
  void CompiledRoundSweep();

  // -- sharded event drains ------------------------------------------------

  /// Enters sharded-drain mode for a parallel event-queue drain
  /// (DESIGN.md §9): builds the per-node RNG streams, zeroes the per-node
  /// counter slots, and reroutes every handler-side draw (leg loss) and
  /// counter bump to the node the handler runs at, so concurrent handlers
  /// for distinct nodes never share mutable state.  While active, trace
  /// replay is rejected and the scalar counters are stale.  Throws
  /// std::logic_error if already active.
  void BeginShardedDrain();

  /// Leaves sharded-drain mode and folds the per-node counter slots back
  /// into the scalar counters (integer sums — deterministic regardless of
  /// which thread bumped what).
  void EndShardedDrain();

  [[nodiscard]] bool ShardedDrainActive() const noexcept {
    return sharded_drain_;
  }

  // -- coordinate drift tracking (the ANN query plane's feed, DESIGN.md §16)

  /// Starts recording which nodes' coordinate rows training writes, so a
  /// proximity index can absorb drift incrementally instead of rescanning
  /// the store.  Marks live in a per-node byte array attributed to the node
  /// whose rows changed — the same ownership discipline as the per-node
  /// counter slots, so every parallel path stays race-free.  Marking never
  /// touches an RNG stream or any coordinate arithmetic: a run with
  /// tracking enabled is bit-identical to the same run without it.
  void EnableDriftTracking();

  [[nodiscard]] bool DriftTrackingEnabled() const noexcept {
    return drift_tracking_;
  }

  /// Drains the dirty set: ids whose u or v row changed since the last
  /// take (or since EnableDriftTracking), ascending — deterministic hand-
  /// off order for index maintenance.  The parallel sweeps publish their
  /// marks before returning, so after any driver call the set is complete.
  /// Throws std::logic_error if tracking was never enabled.
  [[nodiscard]] std::vector<NodeId> TakeDirtyNodes();

  // -- warm restart (the snapshot plane's hook, DESIGN.md §17) --------------

  /// Overwrites every coordinate row with `snapshot`'s — the service's
  /// restart path: a freshly built engine adopts the learned factors a
  /// recovered snapshot carries.  Only coordinates are restored; membership,
  /// probing state and counters keep their freshly-seeded values (both are
  /// pure functions of the config seed, so a restarted deployment is still
  /// deterministic).  Marks every row dirty when drift tracking is enabled,
  /// so a proximity index built before the restore absorbs it.  Throws
  /// std::invalid_argument on a shape mismatch.
  void RestoreCoordinates(const CoordinateStore& snapshot);

  // -- queries -------------------------------------------------------------

  /// x̂_ij = u_i · v_j.  Throws std::out_of_range on bad indices.
  [[nodiscard]] double Predict(std::size_t i, std::size_t j) const;
  [[nodiscard]] const DmfsgdNode& node(std::size_t i) const;
  [[nodiscard]] bool IsNeighborPair(std::size_t i, std::size_t j) const;
  [[nodiscard]] const std::vector<std::vector<NodeId>>& Neighbors() const noexcept {
    return neighbors_;
  }
  [[nodiscard]] std::size_t NodeCount() const noexcept { return nodes_.size(); }
  [[nodiscard]] const datasets::Dataset& dataset() const noexcept {
    return *dataset_;
  }
  [[nodiscard]] const SimulationConfig& config() const noexcept { return config_; }
  [[nodiscard]] const CoordinateStore& store() const noexcept { return store_; }

  [[nodiscard]] std::size_t MeasurementCount() const noexcept {
    return measurement_count_;
  }
  [[nodiscard]] double AverageMeasurementsPerNode() const noexcept;
  [[nodiscard]] std::size_t DroppedLegs() const noexcept { return dropped_legs_; }
  [[nodiscard]] std::size_t ChurnCount() const noexcept { return churn_count_; }
  /// Exchanges currently in flight (started, not yet resolved or dropped).
  [[nodiscard]] std::size_t InFlight() const noexcept { return in_flight_; }

  /// The deployment's RNG stream; drivers draw think times etc. from it so a
  /// single seed determines an entire run.
  [[nodiscard]] common::Rng& rng() noexcept { return rng_; }

 private:
  void RebuildNeighborSet(NodeId i);
  void RebuildNeighborSetWith(NodeId i, common::Rng& rng);
  void ResetNodeWith(NodeId i, common::Rng& rng);

  /// Builds per_node_rng_ (and the per-node sweep scratch) if absent.
  void EnsurePerNodeStreams();

  /// The Algorithm-2 half of ParallelRoundSweep: target-sharded phases.
  void ParallelAbwRoundSweep(common::ThreadPool& pool);

  /// The compiled twins of the parallel sweeps (config.compile_rounds):
  /// same per-node draws, but the gradient pass runs as fused sweeps over
  /// contiguous row ranges — Algorithm 1 splits the fused pick+update loop
  /// into a draw pass and a branch-light execute pass; Algorithm 2 replaces
  /// the phase-barrier schedule with one ParallelFor over stable row-major
  /// target groups (each range exclusively owns its targets' v rows and the
  /// u rows of their probers, who appear in exactly one group).  Bit-
  /// identical to the uncompiled sweeps under the scalar kernel table, and
  /// to themselves for every pool size.
  void CompiledParallelRttSweep(common::ThreadPool& pool);
  void CompiledParallelAbwSweep(common::ThreadPool& pool);

  /// The sequential execute passes shared by CompiledRoundSweep.
  void ExecuteCompiledRttRound();
  void ExecuteCompiledAbwRound();

  /// The training value for pair (i, j): class label (possibly corrupted) or
  /// τ-normalized quantity (the DESIGN.md §3 substitution).
  [[nodiscard]] double MeasurementFor(std::size_t i, std::size_t j,
                                      std::optional<double> observed_quantity) const;
  [[nodiscard]] bool LegLost();

  /// Leg-loss roll attributed to the node whose handler rolls it: the shared
  /// stream + scalar counter normally, the node's private stream + per-node
  /// slot during a sharded drain.
  [[nodiscard]] bool LegLostFor(NodeId who);

  /// Measurement-counter bump attributed to the consuming node.
  void CountMeasurementAt(NodeId who);

  /// Marks one in-flight exchange finished (saturating at zero — datagram
  /// transports can duplicate replies).
  void ResolveExchange();

  /// ResolveExchange attributed to the resolving handler's node.
  void ResolveExchangeAt(NodeId who);

  /// Channel sink: dispatches a delivered envelope.  In per-message mode
  /// (gradient_batch_size == 1) every item runs its own handler in order —
  /// exactly the pre-batch semantics; in mini-batch mode consecutive
  /// same-kind reply runs fold into accumulated steps (DESIGN.md §13).
  void OnBatch(const MessageBatch& batch);
  void OnMessage(NodeId from, NodeId to, const ProtocolMessage& message);
  void HandleRttRequest(NodeId prober, NodeId target);
  void HandleRttReply(NodeId prober, const RttProbeReply& reply);
  void HandleAbwRequest(NodeId target, const AbwProbeRequest& request);
  void HandleAbwReply(NodeId prober, const AbwProbeReply& reply);

  /// Mini-batch folds over a consecutive run of same-kind items starting at
  /// `start`; each returns the index one past the run.  Handlers for other
  /// kinds and single-item runs go through the per-message path (whose
  /// arithmetic a one-item fold would only reproduce approximately).
  std::size_t FoldRttReplies(const MessageBatch& batch, std::size_t start);
  std::size_t FoldAbwReplies(const MessageBatch& batch, std::size_t start);
  std::size_t FoldAbwRequests(const MessageBatch& batch, std::size_t start);

  /// Window-compile folds (config.compile_rounds, per-message gradients):
  /// a consecutive same-kind reply run inside one delivered envelope — the
  /// unit an async conservative window or a coalesced burst produces — runs
  /// through the fused compiled executor with the kernel table hoisted out
  /// of the loop.  Per-message arithmetic and bookkeeping are preserved
  /// item for item, so the fold is bit-identical to the per-message
  /// handlers under the scalar table.  Each returns one past the run.
  std::size_t CompileRttReplies(const MessageBatch& batch, std::size_t start);
  std::size_t CompileAbwReplies(const MessageBatch& batch, std::size_t start);

  /// Feeds the loss-driven strategy after a completed exchange.
  void RecordNeighborLoss(NodeId i, NodeId j, double x,
                          std::span<const double> v_remote);

  const datasets::Dataset* dataset_;
  SimulationConfig config_;
  const ErrorInjector* injector_;
  DeliveryChannel* channel_;
  common::Rng rng_;
  bool abw_;  ///< Algorithm 2 (target-measured) vs Algorithm 1

  CoordinateStore store_;
  std::vector<DmfsgdNode> nodes_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<std::size_t> round_robin_cursor_;     // per node
  std::vector<std::vector<double>> neighbor_loss_;  // per node, per neighbor

  /// Trace-replay override for the RTT reply handler; only valid while an
  /// immediate-delivery exchange is executing (set/cleared by StartExchange,
  /// which throws if a supplied override was neither consumed nor lost).
  std::optional<double> trace_observed_;
  bool trace_observed_consumed_ = false;

  std::size_t measurement_count_ = 0;
  std::size_t dropped_legs_ = 0;
  std::size_t churn_count_ = 0;
  std::size_t in_flight_ = 0;

  // Parallel-path state, built lazily on first use: one decorrelated RNG
  // stream per node (advanced only by that node's draws), the Algorithm-1
  // start-of-round coordinate snapshot, and per-node scratch (drop flags /
  // exchange outcomes / chosen targets) reduced sequentially after joins.
  std::vector<common::Rng> per_node_rng_;
  std::vector<double> sweep_u_;
  std::vector<double> sweep_v_;
  std::vector<unsigned char> sweep_state_;
  std::vector<NodeId> sweep_target_;

  /// Round-compiler COO buffer (DESIGN.md §14), reused across rounds.
  RoundCoo round_coo_;

  // Sharded-drain state: per-node counter slots, cache-line separated so
  // handlers on different shards never share a line.  Folded into the scalar
  // counters by EndShardedDrain.
  struct alignas(64) NodeCounters {
    std::uint64_t measurements = 0;
    std::uint64_t dropped_legs = 0;
    std::uint64_t started = 0;
    std::uint64_t resolved = 0;
    std::uint64_t churns = 0;
  };
  bool sharded_drain_ = false;
  std::vector<NodeCounters> node_counters_;

  /// Marks node i's rows as written (no-op unless tracking is enabled).
  /// Callable from handler context: the byte belongs to the node whose
  /// handler runs, so sharded drains never race on it, and the parallel
  /// sweeps mark sequentially after their joins.
  void MarkDirty(std::size_t i) noexcept {
    if (drift_tracking_) {
      dirty_rows_[i] = 1;
    }
  }
  bool drift_tracking_ = false;
  std::vector<unsigned char> dirty_rows_;
};

}  // namespace dmfsgd::core
