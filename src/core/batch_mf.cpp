#include "core/batch_mf.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "linalg/kernels.hpp"
#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

double BatchMfResult::Predict(std::size_t i, std::size_t j) const {
  return linalg::Dot(u.Row(i), v.Row(j));
}

BatchMfResult FitBatchMf(const linalg::Matrix& x, const BatchMfConfig& config) {
  if (x.Rows() != x.Cols()) {
    throw std::invalid_argument("FitBatchMf: matrix must be square");
  }
  if (config.rank == 0) {
    throw std::invalid_argument("FitBatchMf: rank must be > 0");
  }
  const std::size_t n = x.Rows();
  const std::size_t r = config.rank;

  // Count known entries per row/column for gradient averaging; rows with
  // more observations shouldn't take proportionally larger steps.
  std::vector<std::size_t> row_count(n, 0);
  std::vector<std::size_t> col_count(n, 0);
  std::size_t known = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (!linalg::Matrix::IsMissing(x(i, j))) {
        ++row_count[i];
        ++col_count[j];
        ++known;
      }
    }
  }
  if (known == 0) {
    throw std::invalid_argument("FitBatchMf: matrix has no known entries");
  }

  common::Rng rng(config.seed);
  BatchMfResult result;
  result.u = linalg::Matrix(n, r);
  result.v = linalg::Matrix(n, r);
  result.u.FillUniform(rng, 0.0, 1.0);
  result.v.FillUniform(rng, 0.0, 1.0);
  result.loss_history.reserve(config.epochs);

  linalg::Matrix grad_u(n, r);
  linalg::Matrix grad_v(n, r);
  // Element-wise kernels (axpy) go through the runtime-dispatched table —
  // their vector variants are bit-identical to the scalar path, so the
  // result is the same on every machine.  The dots stay on the scalar
  // kernels: vector reductions reassociate, and the reference factorization
  // should not drift by ulps with the host's ISA.
  const linalg::KernelOps& kernels = linalg::ActiveKernels();
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    grad_u.Fill(0.0);
    grad_v.Fill(0.0);
    double total_loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto u_i = result.u.Row(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double value = x(i, j);
        if (linalg::Matrix::IsMissing(value)) {
          continue;
        }
        const auto v_j = result.v.Row(j);
        const double x_hat = linalg::Dot(u_i, v_j);
        const double g = LossGradientScale(config.loss, value, x_hat);
        total_loss += LossValue(config.loss, value, x_hat);
        kernels.axpy(g / static_cast<double>(row_count[i]), v_j.data(),
                     grad_u.Row(i).data(), r);
        kernels.axpy(g / static_cast<double>(col_count[j]), u_i.data(),
                     grad_v.Row(j).data(), r);
      }
    }
    // U = (1 - ηλ) U - η grad_U, same for V (eq. 3's regularization).
    const double decay = 1.0 - config.eta * config.lambda;
    for (std::size_t i = 0; i < n; ++i) {
      auto u_i = result.u.Row(i);
      linalg::Scale(decay, u_i);
      kernels.axpy(-config.eta, grad_u.Row(i).data(), u_i.data(), r);
      auto v_i = result.v.Row(i);
      linalg::Scale(decay, v_i);
      kernels.axpy(-config.eta, grad_v.Row(i).data(), v_i.data(), r);
    }
    double reg = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      reg += linalg::SquaredNorm(result.u.Row(i)) +
             linalg::SquaredNorm(result.v.Row(i));
    }
    result.loss_history.push_back(
        (total_loss + config.lambda * reg) / static_cast<double>(known));
  }
  return result;
}

}  // namespace dmfsgd::core
