// Pluggable message delivery for DMFSGD deployments.
//
// The deployment engine (core/engine.hpp) is a pure protocol state machine:
// it reacts to delivered protocol messages and emits new ones.  *How* a
// message travels from node i to node j — instantly (round-based
// simulation), after a one-way delay (discrete-event simulation), through
// the binary wire codec (serialization proof), or over a real UDP socket
// (transport/udp_channel.hpp) — is a DeliveryChannel implementation.  This
// is the seam that lets one engine serve every deployment style the paper
// argues are equivalent (§5.3 vs §6.1), and the one future transports
// (sharded execution, batching, real networks) plug into.
//
// The unit of delivery is the batch envelope (core::MessageBatch,
// DESIGN.md §13): an ordered run of messages sharing one destination.
// Sinks always receive batches; a plain channel delivers one-item batches,
// a coalescing layer merges messages into larger envelopes without ever
// reordering them, so applying a batch front to back is exactly the
// per-message delivery the envelope replaced.
//
// Channels move messages; they do not model loss.  Message loss is protocol
// semantics (a lost leg loses exactly the updates a real deployment would
// lose), so the engine rolls it before handing a message to the channel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <variant>
#include <vector>

#include "core/messages.hpp"
#include "netsim/event_queue.hpp"

namespace dmfsgd::core {

/// Serializes any protocol message through the binary wire codec.
[[nodiscard]] std::vector<std::byte> EncodeMessage(const ProtocolMessage& message);

/// Decodes a wire buffer into whichever message type it carries.  Throws
/// WireError (core/wire.hpp) on malformed input.  Batch frames are not
/// single messages — decode those with DecodeBatchFrame.
[[nodiscard]] ProtocolMessage DecodeMessage(std::span<const std::byte> buffer);

/// The node id embedded in a message by its sender (prober for requests,
/// target for replies) — datagram transports use it to learn return routes.
[[nodiscard]] NodeId SenderOf(const ProtocolMessage& message) noexcept;

/// Packs a batch's messages into one wire frame:
///   [version u8][kMessageBatch u8][count u16]{[length u32][message frame]}*
/// The destination is *not* embedded (a datagram's receiving socket is the
/// authoritative destination) and neither are sender ids — every protocol
/// message already carries its sender, recoverable via SenderOf.  Requires
/// 1 <= items <= kMaxWireBatchItems.
[[nodiscard]] std::vector<std::byte> EncodeBatchFrame(const MessageBatch& batch);

/// Same frame from already-encoded message buffers — lets a transport that
/// measured its packing against the encoded sizes assemble the frame
/// without serializing every message twice.  Same bounds as above.
[[nodiscard]] std::vector<std::byte> EncodeBatchFrame(
    std::span<const std::vector<std::byte>> encoded_messages);

/// Decodes a batch frame into its messages, in order.  Throws WireError on
/// any malformation: truncation, bad version/tag, a zero or oversized count,
/// a length field pointing past the buffer, a malformed nested message, or
/// trailing bytes.
[[nodiscard]] std::vector<ProtocolMessage> DecodeBatchFrame(
    std::span<const std::byte> buffer);

/// Transports protocol messages between nodes of one deployment.  The engine
/// binds a sink once; every implementation eventually hands each sent
/// message back to that sink inside a MessageBatch envelope (one-item for
/// plain channels).
class DeliveryChannel {
 public:
  using Sink = std::function<void(const MessageBatch& batch)>;

  virtual ~DeliveryChannel() = default;

  /// Registers the receiver-side dispatcher.  Decorating channels forward
  /// the binding to their inner channel.
  virtual void BindSink(Sink sink) { sink_ = std::move(sink); }

  /// Ships one message.  Delivery may happen synchronously inside the call
  /// (immediate channel) or later (event queue, sockets).
  virtual void Send(NodeId from, NodeId to, ProtocolMessage message) = 0;

  /// Ships an already-assembled envelope.  The default unrolls it into
  /// per-message Sends (semantically lossless — a batch is its messages in
  /// order); batch-aware channels override to keep the envelope intact
  /// (one event, one frame, one datagram).
  virtual void SendBatch(MessageBatch batch);

  [[nodiscard]] virtual const char* Name() const noexcept = 0;

 protected:
  /// Invokes the bound sink with a one-item envelope; no-op if none bound.
  void DeliverNow(NodeId from, NodeId to, ProtocolMessage message) {
    if (sink_) {
      sink_(MessageBatch::Single(from, to, std::move(message)));
    }
  }

  /// Invokes the bound sink with a whole envelope; no-op if none bound.
  void DeliverBatch(const MessageBatch& batch) {
    if (sink_) {
      sink_(batch);
    }
  }

 private:
  Sink sink_;
};

/// Atomic delivery: Send() invokes the sink before returning.  The
/// round-based simulator's timing model.
class ImmediateDeliveryChannel final : public DeliveryChannel {
 public:
  void Send(NodeId from, NodeId to, ProtocolMessage message) override;
  /// Delivers the whole envelope as one sink call (order preserved).
  void SendBatch(MessageBatch batch) override;
  [[nodiscard]] const char* Name() const noexcept override { return "immediate"; }
};

/// Decorator that round-trips every message through the binary wire codec
/// (core/wire.hpp) before handing it to the inner channel — proving each
/// exchange is implementable over a datagram transport, bit-for-bit.
/// Multi-message envelopes round-trip through the batch frame, proving the
/// packed datagram format the UDP transport ships.
class WireCodecDeliveryChannel final : public DeliveryChannel {
 public:
  /// `inner` must outlive this channel.
  explicit WireCodecDeliveryChannel(DeliveryChannel& inner) : inner_(&inner) {}

  void BindSink(Sink sink) override { inner_->BindSink(std::move(sink)); }
  void Send(NodeId from, NodeId to, ProtocolMessage message) override;
  void SendBatch(MessageBatch batch) override;
  [[nodiscard]] const char* Name() const noexcept override { return "wire-codec"; }

 private:
  DeliveryChannel* inner_;
};

/// Decorator that buffers sends per destination and emits them as batch
/// envelopes on Flush() — the engine-level coalescing seam of DESIGN.md §13.
/// Buffered messages keep their per-destination send order; destinations
/// flush in first-buffered order, so a flush is a deterministic function of
/// the send sequence.  Flush() loops until quiescent: handlers run by the
/// inner channel may send again (e.g. an immediate inner channel delivering
/// a request whose handler emits the reply), and those cascaded sends are
/// flushed in the next pass.
class CoalescingDeliveryChannel final : public DeliveryChannel {
 public:
  /// `inner` must outlive this channel.  `max_batch` caps the envelope size:
  /// a destination's buffer auto-flushes (alone, preserving order) when it
  /// reaches the cap; 0 means unbounded.
  explicit CoalescingDeliveryChannel(DeliveryChannel& inner,
                                     std::size_t max_batch = 0)
      : inner_(&inner), max_batch_(max_batch) {}

  void BindSink(Sink sink) override { inner_->BindSink(std::move(sink)); }
  void Send(NodeId from, NodeId to, ProtocolMessage message) override;
  void SendBatch(MessageBatch batch) override;
  /// Emits all buffered envelopes (and any the emission cascades into).
  void Flush();

  [[nodiscard]] std::size_t PendingMessages() const noexcept;
  [[nodiscard]] std::uint64_t BatchesEmitted() const noexcept {
    return batches_emitted_;
  }
  [[nodiscard]] std::uint64_t MessagesEmitted() const noexcept {
    return messages_emitted_;
  }
  [[nodiscard]] std::size_t MaxBatchEmitted() const noexcept {
    return max_batch_emitted_;
  }
  [[nodiscard]] const char* Name() const noexcept override { return "coalescing"; }

 private:
  void Buffer(NodeId from, NodeId to, ProtocolMessage message);
  void Emit(MessageBatch batch);

  DeliveryChannel* inner_;
  std::size_t max_batch_;
  /// Insertion-ordered per-destination buffers: `order_` remembers first
  /// touch, `buffers_` holds the pending envelope per destination.
  std::vector<NodeId> order_;
  std::map<NodeId, std::vector<BatchItem>> buffers_;
  std::uint64_t batches_emitted_ = 0;
  std::uint64_t messages_emitted_ = 0;
  std::size_t max_batch_emitted_ = 0;
};

/// Assembles a driver's channel stack: the base channel, optionally wrapped
/// by the wire-codec decorator.  `base` and `wire` must outlive whatever
/// binds to the returned channel (drivers declare them as members ahead of
/// the engine).
[[nodiscard]] inline DeliveryChannel& StackChannel(
    DeliveryChannel& base, std::optional<WireCodecDeliveryChannel>& wire,
    bool use_wire_format) {
  if (use_wire_format) {
    wire.emplace(base);
    return *wire;
  }
  return base;
}

/// Delivery after a per-pair one-way delay on a discrete-event queue — the
/// asynchronous deployment model: payloads are snapshots taken at send time,
/// stale by the flight time when consumed.
///
/// With `coalesce` on, *back-to-back* sends to the same destination with
/// the same arrival time merge into one pending envelope and fire as a
/// single event (items in send order) — the order-preserving coalescing
/// mode of DESIGN.md §13.  The back-to-back restriction is what makes the
/// merge exact: the replaced per-message events would carry consecutive
/// sequence numbers at one timestamp, so no foreign event can sort between
/// them and every per-node delivery sequence is unchanged, unconditionally.
/// Probe-burst traffic (a burst's replies converging on the prober, sent by
/// an uninterrupted chain of handler executions) merges fully.
class EventQueueDeliveryChannel final : public DeliveryChannel {
 public:
  /// One-way delay in seconds for a directed pair.
  using DelayFn = std::function<double(NodeId from, NodeId to)>;

  /// `events` must outlive this channel; `delay` must be valid.
  EventQueueDeliveryChannel(netsim::EventQueue& events, DelayFn delay,
                            bool coalesce = false);

  void Send(NodeId from, NodeId to, ProtocolMessage message) override;
  [[nodiscard]] const char* Name() const noexcept override { return "event-queue"; }

 private:
  netsim::EventQueue* events_;
  DelayFn delay_;
  bool coalesce_;
  /// The most recent envelope and its (destination, arrival-time bits) key
  /// — only back-to-back repeats of the key with a still-future arrival
  /// merge, so one slot is the whole index and fire callbacks never touch
  /// channel state (they may run on parallel-window worker threads).
  std::optional<std::pair<NodeId, std::uint64_t>> last_key_;
  std::shared_ptr<MessageBatch> last_batch_;
};

/// EventQueueDeliveryChannel over a ShardedEventQueue: every message is
/// scheduled into its *destination* node's shard (the handler runs at the
/// destination), which is what lets AsyncDmfsgdSimulation drain shards in
/// parallel while handlers only ever touch destination-local state
/// (DESIGN.md §9).  Send is safe from inside a parallel drain window — the
/// queue routes the schedule through the executing shard's lane.
///
/// With `coalesce` on, driver-context sends (sequential drains) merge
/// back-to-back same-destination same-arrival-time messages into one event
/// exactly like the plain channel above.  Sends from inside a parallel
/// window fall back
/// to the per-message path — the pending-envelope index is shared state and
/// window callbacks run concurrently; cross-process envelopes produced in a
/// window are instead merged per (owner, time) at the window barrier by
/// netsim::ShardRuntime through MergeEnvelopes (DESIGN.md §13).
///
/// In a multi-process drain (DESIGN.md §12) the queue's owned-shard range is
/// a strict subset: a Send whose destination shard is remote cannot carry a
/// callback across the process boundary, so the channel serializes the
/// message into an envelope and hands it to the queue's remote outbox
/// (ScheduleRemote) with the same deterministic stamp a local cross-shard
/// schedule would get; the peer process turns the envelope back into a
/// delivery via DecodeEnvelopeCallback.
class ShardedEventQueueDeliveryChannel final : public DeliveryChannel {
 public:
  /// One-way delay in seconds for a directed pair.
  using DelayFn = std::function<double(NodeId from, NodeId to)>;

  /// `events` must outlive this channel; `delay` must be valid.
  ShardedEventQueueDeliveryChannel(netsim::ShardedEventQueue& events,
                                   DelayFn delay, bool coalesce = false);

  void Send(NodeId from, NodeId to, ProtocolMessage message) override;
  [[nodiscard]] const char* Name() const noexcept override {
    return "sharded-event-queue";
  }

  /// Cross-process envelope: [from u32][wire-codec message bytes].  The
  /// destination is *not* embedded — the event stamp's owner is the
  /// authoritative destination (it picks the shard heap on the receiving
  /// side), and carrying a second copy would invite unvalidated mismatch.
  [[nodiscard]] static std::vector<std::byte> EncodeEnvelope(
      NodeId from, const ProtocolMessage& message);

  /// Concatenates several single-message envelopes (same destination, same
  /// event time) into one batch envelope:
  ///   [kBatchEnvelopeMarker u32][count u16]{[length u32][envelope]}*
  /// The marker can never collide with a single envelope's leading `from`
  /// field — node ids are always < OwnerCount().  Requires 1 <= count <=
  /// kMaxWireBatchItems and non-empty parts.
  [[nodiscard]] static std::vector<std::byte> MergeEnvelopes(
      std::span<const std::vector<std::byte>> envelopes);

  /// The marker distinguishing merged batch envelopes from single ones.
  static constexpr std::uint32_t kBatchEnvelopeMarker = 0xffffffffu;

  /// The ShardRuntime merger hook (DESIGN.md §13): merges the group only if
  /// every envelope carries a *reply* (RttProbeReply / AbwProbeReply).
  /// Reply handlers mutate destination-local state only — they emit no
  /// messages and draw no randomness — so executing a whole reply group at
  /// its first stamp is provably order-equivalent; request handlers emit
  /// (consuming lane sequence numbers), so request groups are declined and
  /// ship as individual events.
  [[nodiscard]] static std::optional<std::vector<std::byte>>
  MergeEnvelopesIfReplies(std::span<const std::vector<std::byte>> envelopes);

  /// The receiving side's ShardRuntime decoder: returns a callback that
  /// decodes `payload` — a single envelope or a MergeEnvelopes batch — and
  /// delivers the message(s) to `to` (the remote event's owner stamp)
  /// through the bound sink, as one envelope in original order.  Throws
  /// WireError on malformed envelopes — at decode time, not delivery time,
  /// so a corrupt frame fails loudly.
  [[nodiscard]] netsim::ShardedEventQueue::Callback DecodeEnvelopeCallback(
      NodeId to, std::vector<std::byte> payload);

 private:
  netsim::ShardedEventQueue* events_;
  DelayFn delay_;
  bool coalesce_;
  /// The most recent unfired driver-context envelope and its key (see the
  /// plain channel above); never touched from window threads.
  std::optional<std::pair<NodeId, std::uint64_t>> last_key_;
  std::shared_ptr<MessageBatch> last_batch_;
};

}  // namespace dmfsgd::core
