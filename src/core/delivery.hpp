// Pluggable message delivery for DMFSGD deployments.
//
// The deployment engine (core/engine.hpp) is a pure protocol state machine:
// it reacts to delivered protocol messages and emits new ones.  *How* a
// message travels from node i to node j — instantly (round-based
// simulation), after a one-way delay (discrete-event simulation), through
// the binary wire codec (serialization proof), or over a real UDP socket
// (transport/udp_channel.hpp) — is a DeliveryChannel implementation.  This
// is the seam that lets one engine serve every deployment style the paper
// argues are equivalent (§5.3 vs §6.1), and the one future transports
// (sharded execution, batching, real networks) plug into.
//
// Channels move messages; they do not model loss.  Message loss is protocol
// semantics (a lost leg loses exactly the updates a real deployment would
// lose), so the engine rolls it before handing a message to the channel.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "core/messages.hpp"
#include "netsim/event_queue.hpp"

namespace dmfsgd::core {

/// Any of the four protocol payloads of Algorithms 1-2.
using ProtocolMessage =
    std::variant<RttProbeRequest, RttProbeReply, AbwProbeRequest, AbwProbeReply>;

/// Serializes any protocol message through the binary wire codec.
[[nodiscard]] std::vector<std::byte> EncodeMessage(const ProtocolMessage& message);

/// Decodes a wire buffer into whichever message type it carries.  Throws
/// WireError (core/wire.hpp) on malformed input.
[[nodiscard]] ProtocolMessage DecodeMessage(std::span<const std::byte> buffer);

/// The node id embedded in a message by its sender (prober for requests,
/// target for replies) — datagram transports use it to learn return routes.
[[nodiscard]] NodeId SenderOf(const ProtocolMessage& message) noexcept;

/// Transports protocol messages between nodes of one deployment.  The engine
/// binds a sink once; every implementation eventually hands each sent
/// message (addressed from -> to) back to that sink.
class DeliveryChannel {
 public:
  using Sink =
      std::function<void(NodeId from, NodeId to, const ProtocolMessage& message)>;

  virtual ~DeliveryChannel() = default;

  /// Registers the receiver-side dispatcher.  Decorating channels forward
  /// the binding to their inner channel.
  virtual void BindSink(Sink sink) { sink_ = std::move(sink); }

  /// Ships one message.  Delivery may happen synchronously inside the call
  /// (immediate channel) or later (event queue, sockets).
  virtual void Send(NodeId from, NodeId to, ProtocolMessage message) = 0;

  [[nodiscard]] virtual const char* Name() const noexcept = 0;

 protected:
  /// Invokes the bound sink; no-op if none is bound.
  void DeliverNow(NodeId from, NodeId to, const ProtocolMessage& message) {
    if (sink_) {
      sink_(from, to, message);
    }
  }

 private:
  Sink sink_;
};

/// Atomic delivery: Send() invokes the sink before returning.  The
/// round-based simulator's timing model.
class ImmediateDeliveryChannel final : public DeliveryChannel {
 public:
  void Send(NodeId from, NodeId to, ProtocolMessage message) override;
  [[nodiscard]] const char* Name() const noexcept override { return "immediate"; }
};

/// Decorator that round-trips every message through the binary wire codec
/// (core/wire.hpp) before handing it to the inner channel — proving each
/// exchange is implementable over a datagram transport, bit-for-bit.
class WireCodecDeliveryChannel final : public DeliveryChannel {
 public:
  /// `inner` must outlive this channel.
  explicit WireCodecDeliveryChannel(DeliveryChannel& inner) : inner_(&inner) {}

  void BindSink(Sink sink) override { inner_->BindSink(std::move(sink)); }
  void Send(NodeId from, NodeId to, ProtocolMessage message) override;
  [[nodiscard]] const char* Name() const noexcept override { return "wire-codec"; }

 private:
  DeliveryChannel* inner_;
};

/// Assembles a driver's channel stack: the base channel, optionally wrapped
/// by the wire-codec decorator.  `base` and `wire` must outlive whatever
/// binds to the returned channel (drivers declare them as members ahead of
/// the engine).
[[nodiscard]] inline DeliveryChannel& StackChannel(
    DeliveryChannel& base, std::optional<WireCodecDeliveryChannel>& wire,
    bool use_wire_format) {
  if (use_wire_format) {
    wire.emplace(base);
    return *wire;
  }
  return base;
}

/// Delivery after a per-pair one-way delay on a discrete-event queue — the
/// asynchronous deployment model: payloads are snapshots taken at send time,
/// stale by the flight time when consumed.
class EventQueueDeliveryChannel final : public DeliveryChannel {
 public:
  /// One-way delay in seconds for a directed pair.
  using DelayFn = std::function<double(NodeId from, NodeId to)>;

  /// `events` must outlive this channel; `delay` must be valid.
  EventQueueDeliveryChannel(netsim::EventQueue& events, DelayFn delay);

  void Send(NodeId from, NodeId to, ProtocolMessage message) override;
  [[nodiscard]] const char* Name() const noexcept override { return "event-queue"; }

 private:
  netsim::EventQueue* events_;
  DelayFn delay_;
};

/// EventQueueDeliveryChannel over a ShardedEventQueue: every message is
/// scheduled into its *destination* node's shard (the handler runs at the
/// destination), which is what lets AsyncDmfsgdSimulation drain shards in
/// parallel while handlers only ever touch destination-local state
/// (DESIGN.md §9).  Send is safe from inside a parallel drain window — the
/// queue routes the schedule through the executing shard's lane.
///
/// In a multi-process drain (DESIGN.md §12) the queue's owned-shard range is
/// a strict subset: a Send whose destination shard is remote cannot carry a
/// callback across the process boundary, so the channel serializes the
/// message into an envelope and hands it to the queue's remote outbox
/// (ScheduleRemote) with the same deterministic stamp a local cross-shard
/// schedule would get; the peer process turns the envelope back into a
/// delivery via DecodeEnvelopeCallback.
class ShardedEventQueueDeliveryChannel final : public DeliveryChannel {
 public:
  /// One-way delay in seconds for a directed pair.
  using DelayFn = std::function<double(NodeId from, NodeId to)>;

  /// `events` must outlive this channel; `delay` must be valid.
  ShardedEventQueueDeliveryChannel(netsim::ShardedEventQueue& events, DelayFn delay);

  void Send(NodeId from, NodeId to, ProtocolMessage message) override;
  [[nodiscard]] const char* Name() const noexcept override {
    return "sharded-event-queue";
  }

  /// Cross-process envelope: [from u32][wire-codec message bytes].  The
  /// destination is *not* embedded — the event stamp's owner is the
  /// authoritative destination (it picks the shard heap on the receiving
  /// side), and carrying a second copy would invite unvalidated mismatch.
  [[nodiscard]] static std::vector<std::byte> EncodeEnvelope(
      NodeId from, const ProtocolMessage& message);

  /// The receiving side's ShardRuntime decoder: returns a callback that
  /// decodes `payload` and delivers the message to `to` (the remote event's
  /// owner stamp) through the bound sink (the engine's dispatcher).  Throws
  /// WireError on malformed envelopes — at decode time, not delivery time,
  /// so a corrupt frame fails loudly.
  [[nodiscard]] netsim::ShardedEventQueue::Callback DecodeEnvelopeCallback(
      NodeId to, std::vector<std::byte> payload);

 private:
  netsim::ShardedEventQueue* events_;
  DelayFn delay_;
};

}  // namespace dmfsgd::core
