// Multiclass (ordinal) extension of DMFSGD — the paper's future work (§7).
//
// "While we focus here on binary classification, our framework could be
//  extended to the prediction of more than two performance classes."
//
// This module implements that extension with an *immediate-threshold ordinal
// regression* scheme that stays fully decentralized:
//
//  * performance levels 0 (worst) .. C-1 (best) are defined by C-1 ascending
//    quality thresholds on the metric;
//  * each node keeps its coordinates u_i, v_i plus a private bias vector
//    b_i[0..C-2]; the score s = u_i · v_j is shared across all thresholds;
//  * a measurement of level c yields C-1 binary targets
//    y_t = +1 if c > t else -1, each trained with the logistic loss on the
//    margin y_t (s - b_i[t]); gradients on u_i/v_i accumulate over t, the
//    biases take their own SGD step;
//  * the predicted level of (i, j) counts the thresholds the score clears:
//    |{t : s > b_i[t]}|.
//
// With C = 2 and b ≡ 0 this degenerates to exactly the binary DMFSGD rules,
// which the tests verify.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/coordinate_store.hpp"
#include "core/node.hpp"
#include "datasets/dataset.hpp"

namespace dmfsgd::core {

struct MulticlassConfig {
  std::size_t num_classes = 3;      ///< C >= 2
  std::vector<double> thresholds;   ///< C-1 metric thresholds, ascending quality
  std::size_t rank = 10;
  UpdateParams params;              ///< η, λ, loss is forced to logistic
  std::size_t neighbor_count = 10;
  std::uint64_t seed = 1;
};

/// Level (0 = worst .. C-1 = best) of a quantity under quality thresholds.
/// For RTT (lower better) thresholds must be *descending* RTT values
/// (ascending quality); for ABW ascending Mbps.  A level is the number of
/// thresholds the quantity clears.
[[nodiscard]] std::size_t LevelOf(datasets::Metric metric, double quantity,
                                  std::span<const double> thresholds);

/// Builds C-1 thresholds from dataset percentiles that split known pairs
/// into C equal-mass classes.
[[nodiscard]] std::vector<double> EqualMassThresholds(
    const datasets::Dataset& dataset, std::size_t num_classes);

class OrdinalDmfsgdSimulation {
 public:
  OrdinalDmfsgdSimulation(const datasets::Dataset& dataset,
                          const MulticlassConfig& config);

  /// Runs probing rounds (every node probes one random neighbor per round,
  /// symmetric Algorithm-1 style exchange).
  void RunRounds(std::size_t rounds);

  /// Predicted level of pair (i, j).
  [[nodiscard]] std::size_t PredictLevel(std::size_t i, std::size_t j) const;

  /// True level of pair (i, j); throws if unknown.
  [[nodiscard]] std::size_t TrueLevel(std::size_t i, std::size_t j) const;

  /// Exact-match accuracy and mean absolute level error over non-neighbor
  /// known pairs.
  struct Evaluation {
    double accuracy = 0.0;
    double mean_absolute_error = 0.0;
    std::size_t pair_count = 0;
  };
  [[nodiscard]] Evaluation Evaluate() const;

  [[nodiscard]] std::size_t NodeCount() const noexcept { return nodes_.size(); }
  [[nodiscard]] const MulticlassConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::span<const double> Biases(std::size_t i) const;

 private:
  void Probe(NodeId i, NodeId j);
  [[nodiscard]] bool IsNeighborPair(std::size_t i, std::size_t j) const;

  [[nodiscard]] std::span<double> MutableBiases(std::size_t i) noexcept {
    const std::size_t stride = config_.num_classes - 1;
    return {biases_.data() + i * stride, stride};
  }

  const datasets::Dataset* dataset_;
  MulticlassConfig config_;
  common::Rng rng_;
  CoordinateStore store_;               // SoA coordinate rows, one per node
  std::vector<DmfsgdNode> nodes_;       // row views into store_
  std::vector<double> biases_;          // node-major, stride C-1
  std::vector<std::vector<NodeId>> neighbors_;
};

}  // namespace dmfsgd::core
