// The sparse round compiler (DESIGN.md §14).
//
// A probing round — or an async conservative window — is a sparse triple
// list: (prober i, target j, measured x).  Instead of reacting to one
// protocol message at a time (variant dispatch, two heap-allocated
// coordinate copies per reply), the compiled path *gathers* the round's
// exchanges first (consuming the RNG streams in exactly the order the
// per-message path would), sorts them into row-major COO — grouped by the
// updated factor row, stable by original message order — and then
// *executes* the whole gradient pass as one fused sweep over contiguous
// CoordinateStore rows through a kernel table fetched once per sweep.
//
// The ordering invariant that makes the deferred execution bit-identical
// to the per-message round (given the same kernel table):
//
//  * Algorithm 1: an exchange writes only the prober's own rows (u_i, v_i)
//    and reads the target's rows as they stood at reply time.  Executing
//    the gathered edges in original (ascending-prober) order against the
//    live store reproduces every mid-round read the sequential channel
//    drain performs — the "sort" is the identity permutation, row-major by
//    construction.
//  * Algorithm 2: an exchange writes v_j at the target and u_i at the
//    prober.  u_i is read and written only by prober i's own exchange
//    (one probe per node per round), so exchanges aimed at different
//    targets commute; only the per-target v_j sequence is ordered.  Stable
//    grouping by target row (a counting sort preserving message order)
//    keeps each group's updates in ascending-prober order — exactly the
//    sequence the per-message drain applies — while making the groups
//    row-disjoint, so a parallel sweep can partition them into contiguous
//    row ranges with no phase barriers (each range owns its targets' v
//    rows plus the u rows of their probers).
//
// Within one group the compiled sweep still applies one step per message
// (not one accumulated step per row): that is what keeps it bit-identical
// to the sequential round.  Callers who want the one-apply-per-row
// mini-batch semantics instead opt into gradient_batch_size (DESIGN.md
// §13) — the two modes compose with, not replace, each other.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/loss.hpp"
#include "core/messages.hpp"
#include "core/node.hpp"
#include "linalg/kernels.hpp"

namespace dmfsgd::core {

/// One gathered exchange: who probed whom, and whether both protocol legs
/// survived (Algorithm 2 updates the target even when the reply leg is
/// lost; Algorithm 1 edges are only gathered when the full exchange
/// survives, so `full` is always 1 there).
struct RoundEdge {
  NodeId prober = 0;
  NodeId target = 0;
  unsigned char full = 1;
};

/// The round's COO buffer: edges in gather (original message) order plus a
/// stable row-major grouping by target, built by counting sort.  Reused
/// across rounds — Clear() keeps the capacity.
class RoundCoo {
 public:
  void Clear() noexcept {
    edges_.clear();
    grouped_.clear();
  }

  void Add(NodeId prober, NodeId target, bool full) {
    edges_.push_back(RoundEdge{prober, target, full ? (unsigned char)1 : (unsigned char)0});
  }

  [[nodiscard]] std::size_t EdgeCount() const noexcept { return edges_.size(); }
  [[nodiscard]] const std::vector<RoundEdge>& Edges() const noexcept {
    return edges_;
  }

  /// Builds the row-major grouping: Group(t) afterwards yields the indices
  /// of all edges targeting row t, in gather order (the sort is stable).
  /// O(edges + node_count) counting sort.  Requires every target < node_count.
  void GroupByTarget(std::size_t node_count);

  /// Edge indices targeting t, ascending by gather position.  Only valid
  /// after GroupByTarget; empty for untargeted rows.
  [[nodiscard]] std::span<const std::uint32_t> Group(NodeId t) const {
    return std::span<const std::uint32_t>(grouped_)
        .subspan(offsets_[t], offsets_[t + 1] - offsets_[t]);
  }

 private:
  std::vector<RoundEdge> edges_;
  std::vector<std::uint32_t> offsets_;  // node_count + 1 group boundaries
  std::vector<std::uint32_t> grouped_;  // edge indices, grouped by target
  std::vector<std::uint32_t> cursor_;   // counting-sort scratch
};

// -- fused per-edge gradient steps ------------------------------------------
//
// Arithmetically identical to the DmfsgdNode update entry points (same
// expressions, same evaluation order), but dispatched through a caller-held
// kernel table and raw rows: no rank re-validation, no copies, no variant
// dispatch.  With the scalar table the results are bit-identical to the
// per-message handlers; vector tables differ only in the dots' accumulation
// order (see linalg/kernels.hpp).  The usual aliasing contract applies:
// remote rows must not alias the updated rows (distinct store rows — the
// engine never probes itself — or message-carried copies).

/// Algorithm 1, eqs. 9-10: updates u_row against v_remote and v_row
/// against u_remote, both gradient scales evaluated before either step —
/// exactly DmfsgdNode::RttUpdate.
inline void CompiledRttStep(const linalg::KernelOps& k,
                            const UpdateParams& params, double x,
                            const double* u_remote, const double* v_remote,
                            double* u_row, double* v_row, std::size_t r) {
  const auto [x_hat_ij, x_hat_ji] = k.dot_pair(u_row, v_remote, u_remote, v_row, r);
  const double g_u = LossGradientScale(params.loss, x, x_hat_ij);
  const double g_v = LossGradientScale(params.loss, x, x_hat_ji);
  k.decay_axpy(1.0 - params.eta * params.lambda, -params.eta * g_u, v_remote,
               u_row, r);
  k.decay_axpy(1.0 - params.eta * params.lambda, -params.eta * g_v, u_remote,
               v_row, r);
}

/// Algorithm 2, eq. 12 (prober side): updates u_row against v_remote —
/// exactly DmfsgdNode::AbwProberUpdate.
inline void CompiledAbwProberStep(const linalg::KernelOps& k,
                                  const UpdateParams& params, double x,
                                  const double* v_remote, double* u_row,
                                  std::size_t r) {
  const double x_hat = k.dot(u_row, v_remote, r);
  const double g = LossGradientScale(params.loss, x, x_hat);
  k.decay_axpy(1.0 - params.eta * params.lambda, -params.eta * g, v_remote,
               u_row, r);
}

/// Algorithm 2, eq. 13 (target side): updates v_row against u_remote —
/// exactly DmfsgdNode::AbwTargetUpdate.
inline void CompiledAbwTargetStep(const linalg::KernelOps& k,
                                  const UpdateParams& params, double x,
                                  const double* u_remote, double* v_row,
                                  std::size_t r) {
  const double x_hat = k.dot(u_remote, v_row, r);
  const double g = LossGradientScale(params.loss, x, x_hat);
  k.decay_axpy(1.0 - params.eta * params.lambda, -params.eta * g, u_remote,
               v_row, r);
}

}  // namespace dmfsgd::core
