#include "core/vivaldi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace dmfsgd::core {

namespace {

constexpr double kMinHeightMs = 0.1;
constexpr double kMaxErrorEstimate = 2.0;

}  // namespace

VivaldiSimulation::VivaldiSimulation(const datasets::Dataset& dataset,
                                     const VivaldiConfig& config)
    : dataset_(&dataset), config_(config), rng_(config.seed) {
  if (dataset.metric != datasets::Metric::kRtt) {
    throw std::invalid_argument(
        "VivaldiSimulation: Vivaldi embeds RTT datasets only");
  }
  if (config.dimensions == 0) {
    throw std::invalid_argument("VivaldiSimulation: dimensions must be > 0");
  }
  if (config.cc <= 0.0 || config.cc > 1.0 || config.ce <= 0.0 || config.ce > 1.0) {
    throw std::invalid_argument("VivaldiSimulation: gains must be in (0, 1]");
  }
  const std::size_t n = dataset.NodeCount();
  if (config.neighbor_count == 0 || config.neighbor_count >= n) {
    throw std::invalid_argument("VivaldiSimulation: invalid neighbor_count");
  }

  // Vivaldi canonically starts everyone at the origin and lets the random
  // direction kick separate them; starting from tiny random offsets is
  // equivalent and avoids the all-coincident special case.
  positions_.resize(n);
  for (auto& position : positions_) {
    position.resize(config.dimensions);
    for (double& c : position) {
      c = rng_.Uniform(-0.5, 0.5);
    }
  }
  heights_.assign(n, kMinHeightMs);
  error_.assign(n, 1.0);

  neighbors_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::uint32_t> candidates;
    candidates.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && dataset.IsKnown(i, j)) {
        candidates.push_back(static_cast<std::uint32_t>(j));
      }
    }
    if (candidates.size() < config.neighbor_count) {
      throw std::invalid_argument(
          "VivaldiSimulation: node has fewer measurable pairs than k");
    }
    rng_.Shuffle(std::span(candidates));
    candidates.resize(config.neighbor_count);
    std::sort(candidates.begin(), candidates.end());
    neighbors_[i] = std::move(candidates);
  }
}

bool VivaldiSimulation::IsNeighborPair(std::size_t i, std::size_t j) const {
  if (i >= positions_.size() || j >= positions_.size()) {
    throw std::out_of_range("VivaldiSimulation::IsNeighborPair: out of range");
  }
  const auto& nb = neighbors_[i];
  return std::binary_search(nb.begin(), nb.end(), static_cast<std::uint32_t>(j));
}

double VivaldiSimulation::Height(std::size_t i) const {
  if (i >= heights_.size()) {
    throw std::out_of_range("VivaldiSimulation::Height: out of range");
  }
  return heights_[i];
}

double VivaldiSimulation::ErrorEstimate(std::size_t i) const {
  if (i >= error_.size()) {
    throw std::out_of_range("VivaldiSimulation::ErrorEstimate: out of range");
  }
  return error_[i];
}

double VivaldiSimulation::PredictRtt(std::size_t i, std::size_t j) const {
  if (i >= positions_.size() || j >= positions_.size()) {
    throw std::out_of_range("VivaldiSimulation::PredictRtt: out of range");
  }
  double sum = 0.0;
  for (std::size_t d = 0; d < config_.dimensions; ++d) {
    const double delta = positions_[i][d] - positions_[j][d];
    sum += delta * delta;
  }
  double predicted = std::sqrt(sum);
  if (config_.use_height) {
    predicted += heights_[i] + heights_[j];
  }
  return predicted;
}

void VivaldiSimulation::Update(std::size_t i, std::size_t j, double measured_rtt) {
  const double predicted = PredictRtt(i, j);

  // Confidence weighting: w = e_i / (e_i + e_j).
  const double w = error_[i] / (error_[i] + error_[j]);

  // Update i's error estimate toward the observed relative sample error.
  const double sample_error = std::abs(predicted - measured_rtt) / measured_rtt;
  error_[i] = std::min(kMaxErrorEstimate,
                       sample_error * config_.ce * w + error_[i] * (1.0 - config_.ce * w));

  // Spring force along the unit vector from j to i (random direction when
  // coincident, per the original algorithm).
  std::vector<double> direction(config_.dimensions);
  double norm = 0.0;
  for (std::size_t d = 0; d < config_.dimensions; ++d) {
    direction[d] = positions_[i][d] - positions_[j][d];
    norm += direction[d] * direction[d];
  }
  norm = std::sqrt(norm);
  if (norm < 1e-9) {
    for (double& c : direction) {
      c = rng_.Normal();
    }
    norm = 0.0;
    for (const double c : direction) {
      norm += c * c;
    }
    norm = std::sqrt(norm);
  }
  for (double& c : direction) {
    c /= norm;
  }

  const double delta = config_.cc * w;
  const double displacement = delta * (measured_rtt - predicted);
  for (std::size_t d = 0; d < config_.dimensions; ++d) {
    positions_[i][d] += displacement * direction[d];
  }
  if (config_.use_height) {
    // The height axis always points "up": moving away from everyone.
    heights_[i] = std::max(kMinHeightMs, heights_[i] + displacement);
  }
}

void VivaldiSimulation::RunRounds(std::size_t rounds) {
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      const auto& nb = neighbors_[i];
      const std::uint32_t j =
          nb[rng_.UniformInt(static_cast<std::uint64_t>(nb.size()))];
      Update(i, j, dataset_->Quantity(i, j));
    }
  }
}

double VivaldiSimulation::MedianRelativeError() const {
  std::vector<double> errors;
  const std::size_t n = positions_.size();
  errors.reserve(n * (n - 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || !dataset_->IsKnown(i, j) || IsNeighborPair(i, j)) {
        continue;
      }
      const double truth = dataset_->Quantity(i, j);
      errors.push_back(std::abs(PredictRtt(i, j) - truth) / truth);
    }
  }
  if (errors.empty()) {
    throw std::logic_error("VivaldiSimulation::MedianRelativeError: no test pairs");
  }
  return common::Median(errors);
}

}  // namespace dmfsgd::core
