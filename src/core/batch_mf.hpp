// Centralized batch matrix factorization baseline (paper §4.2).
//
// The paper's system architecture (Figure 2) is centralized before §5
// decentralizes it: collect all known entries of X at one place and minimize
// eq. 3 by full-gradient descent over the factors U and V.  This module
// implements that baseline so the reproduction can quantify what, if
// anything, decentralization costs (an ablation DESIGN.md calls out), and so
// tests can cross-check DMFSGD against an independent optimizer of the same
// objective.
#pragma once

#include <cstdint>
#include <vector>

#include "core/loss.hpp"
#include "linalg/matrix.hpp"

namespace dmfsgd::core {

struct BatchMfConfig {
  std::size_t rank = 10;
  double eta = 0.5;      ///< step size on per-row-averaged gradients
  double lambda = 0.1;
  LossKind loss = LossKind::kLogistic;
  std::size_t epochs = 200;
  std::uint64_t seed = 1;
};

struct BatchMfResult {
  linalg::Matrix u;  ///< n x r
  linalg::Matrix v;  ///< n x r
  /// Mean regularized loss over known entries after each epoch.
  std::vector<double> loss_history;

  /// x̂_ij = u_i · v_j.
  [[nodiscard]] double Predict(std::size_t i, std::size_t j) const;
};

/// Minimizes eq. 3 on the known (non-NaN) entries of `x` by batch gradient
/// descent with per-row gradient averaging.  Throws std::invalid_argument on
/// a non-square matrix, rank 0, or a matrix with no known entries.
[[nodiscard]] BatchMfResult FitBatchMf(const linalg::Matrix& x,
                                       const BatchMfConfig& config);

}  // namespace dmfsgd::core
