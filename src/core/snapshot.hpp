// Coordinate snapshots: persistence of a deployment's learned state.
//
// A real DMFSGD deployment wants warm restarts — a node that reboots should
// resume from its last coordinates instead of re-randomizing, and operators
// want to archive the system state for offline analysis.  A snapshot holds
// every node's (u_i, v_i) rows; predictions can be served directly from it.
#pragma once

#include <cstddef>
#include <filesystem>
#include <vector>

#include "core/simulation.hpp"

namespace dmfsgd::core {

struct CoordinateSnapshot {
  std::size_t rank = 0;
  /// u[i] / v[i] are node i's coordinate rows, each of length `rank`.
  std::vector<std::vector<double>> u;
  std::vector<std::vector<double>> v;

  [[nodiscard]] std::size_t NodeCount() const noexcept { return u.size(); }

  /// x̂_ij from the archived coordinates.  Throws on bad indices.
  [[nodiscard]] double Predict(std::size_t i, std::size_t j) const;
};

/// Captures the current coordinates of every node in a deployment.
[[nodiscard]] CoordinateSnapshot TakeSnapshot(const DmfsgdSimulation& simulation);

/// Writes a snapshot as CSV (one row per node: u..., v...).
void SaveSnapshot(const CoordinateSnapshot& snapshot,
                  const std::filesystem::path& path);

/// Reads a snapshot written by SaveSnapshot.  Throws std::runtime_error /
/// std::invalid_argument on malformed input.
[[nodiscard]] CoordinateSnapshot LoadSnapshot(const std::filesystem::path& path);

}  // namespace dmfsgd::core
