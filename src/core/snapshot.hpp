// Coordinate snapshots: persistence of a deployment's learned state.
//
// A real DMFSGD deployment wants warm restarts — a node that reboots should
// resume from its last coordinates instead of re-randomizing, and operators
// want to archive the system state for offline analysis.  A snapshot is a
// copy of the deployment's structure-of-arrays CoordinateStore (every
// node's u_i / v_i rows); predictions can be served directly from it.
#pragma once

#include <cstddef>
#include <filesystem>
#include <span>
#include <vector>

#include "core/coordinate_store.hpp"
#include "core/engine.hpp"
#include "core/simulation.hpp"

namespace dmfsgd::common {
class ThreadPool;
}

namespace dmfsgd::core {

struct CoordinateSnapshot {
  /// The archived factors, in the same SoA layout deployments use live.
  CoordinateStore store;

  [[nodiscard]] std::size_t NodeCount() const noexcept {
    return store.NodeCount();
  }
  [[nodiscard]] std::size_t rank() const noexcept { return store.rank(); }

  /// x̂_ij from the archived coordinates.  Throws on bad indices.
  [[nodiscard]] double Predict(std::size_t i, std::size_t j) const {
    return store.Predict(i, j);
  }

  /// All-pairs prediction matrix (see the free function below).
  [[nodiscard]] std::vector<double> PredictAll(
      common::ThreadPool* pool = nullptr) const;
};

/// The full prediction matrix x̂ = U Vᵀ as a row-major n×n buffer — the
/// O(n²r) sweep behind offline full-matrix evaluation.  Materializes n²
/// doubles; rows are computed independently (one unchecked dot per pair), so
/// a pool parallelizes the sweep with bit-identical output for any pool
/// size.
[[nodiscard]] std::vector<double> PredictAll(const CoordinateStore& store,
                                             common::ThreadPool* pool = nullptr);

/// Same sweep into a caller-owned buffer (callers that repeat the sweep —
/// periodic evaluation, the bench — allocate once instead of per call).
/// Requires out.size() == NodeCount()².
void PredictAllInto(const CoordinateStore& store, std::span<double> out,
                    common::ThreadPool* pool = nullptr);

/// Captures the current coordinates of every node in a deployment core
/// (works for any driver over the shared engine).
[[nodiscard]] CoordinateSnapshot TakeSnapshot(const DeploymentEngine& engine);

/// Convenience overload for the round-based driver.
[[nodiscard]] CoordinateSnapshot TakeSnapshot(const DmfsgdSimulation& simulation);

/// Writes a snapshot as CSV (one row per node: u..., v...).
void SaveSnapshot(const CoordinateSnapshot& snapshot,
                  const std::filesystem::path& path);

/// Reads a snapshot written by SaveSnapshot.  Throws std::runtime_error /
/// std::invalid_argument on malformed input.
[[nodiscard]] CoordinateSnapshot LoadSnapshot(const std::filesystem::path& path);

}  // namespace dmfsgd::core
