#include "core/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmfsgd::core {

const char* LossName(LossKind kind) noexcept {
  switch (kind) {
    case LossKind::kHinge:
      return "hinge";
    case LossKind::kLogistic:
      return "logistic";
    case LossKind::kL2:
      return "L2";
    case LossKind::kSmoothHinge:
      return "smooth-hinge";
  }
  return "?";
}

LossKind ParseLossName(const std::string& name) {
  if (name == "hinge") {
    return LossKind::kHinge;
  }
  if (name == "logistic") {
    return LossKind::kLogistic;
  }
  if (name == "L2" || name == "l2") {
    return LossKind::kL2;
  }
  if (name == "smooth-hinge") {
    return LossKind::kSmoothHinge;
  }
  throw std::invalid_argument("ParseLossName: unknown loss '" + name + "'");
}

double LossValue(LossKind kind, double x, double x_hat) noexcept {
  switch (kind) {
    case LossKind::kHinge:
      return std::max(0.0, 1.0 - x * x_hat);
    case LossKind::kLogistic: {
      // Numerically stable log(1 + e^{-m}): for large m the exp underflows
      // harmlessly; for very negative m use m + log(1 + e^{m}).
      const double margin = x * x_hat;
      if (margin > 0.0) {
        return std::log1p(std::exp(-margin));
      }
      return -margin + std::log1p(std::exp(margin));
    }
    case LossKind::kL2: {
      const double d = x - x_hat;
      return d * d;
    }
    case LossKind::kSmoothHinge: {
      const double margin = x * x_hat;
      if (margin >= 1.0) {
        return 0.0;
      }
      if (margin <= 0.0) {
        return 0.5 - margin;
      }
      const double gap = 1.0 - margin;
      return 0.5 * gap * gap;
    }
  }
  return 0.0;
}

double LossGradientScale(LossKind kind, double x, double x_hat) noexcept {
  switch (kind) {
    case LossKind::kHinge:
      // Subgradient: zero for correctly classified samples (1 - x·x̂ <= 0).
      return (1.0 - x * x_hat > 0.0) ? -x : 0.0;
    case LossKind::kLogistic: {
      // -x / (1 + e^{x·x̂}), computed to avoid overflow for large |x·x̂|.
      const double margin = x * x_hat;
      if (margin > 35.0) {
        return 0.0;  // e^margin overflows; gradient is ~0 anyway
      }
      return -x / (1.0 + std::exp(margin));
    }
    case LossKind::kL2:
      return -(x - x_hat);  // factor 2 dropped, matching the paper
    case LossKind::kSmoothHinge: {
      const double margin = x * x_hat;
      if (margin >= 1.0) {
        return 0.0;
      }
      if (margin <= 0.0) {
        return -x;
      }
      return -x * (1.0 - margin);
    }
  }
  return 0.0;
}

}  // namespace dmfsgd::core
