// Protocol messages exchanged by DMFSGD nodes (paper §5.3, Algorithms 1-2).
//
// The decentralized factorization never ships matrices around — only
// length-r coordinate vectors and, for ABW, the single measured class.  The
// four message types below are exactly the payloads of the two algorithms:
//
//   Algorithm 1 (RTT):  i --RttProbeRequest--> j
//                       j --RttProbeReply(u_j, v_j)--> i
//                       (i measures x_ij itself from the probe timing)
//
//   Algorithm 2 (ABW):  i --AbwProbeRequest(u_i, rate)--> j
//                       j --AbwProbeReply(x_ij, v_j)--> i
//                       (j infers x_ij at the receiver side)
//
// wire.hpp provides a binary serialization of these structs so the protocol
// has a concrete, testable wire format.
#pragma once

#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

namespace dmfsgd::core {

/// Node identifier within a deployment.
using NodeId = std::uint32_t;

/// RTT probe: carries no payload beyond the prober's identity; the RTT
/// itself is inferred by the prober from the request/reply timing (ping).
struct RttProbeRequest {
  NodeId prober = 0;
};

/// RTT reply: the target returns both of its coordinate rows so the prober
/// can update u_i against v_j and v_i against u_j (eqs. 9-10).
struct RttProbeReply {
  NodeId target = 0;
  std::vector<double> u;
  std::vector<double> v;
};

/// ABW probe: a UDP train sent at `rate_mbps` (the classification threshold
/// τ); carries u_i because the *target* computes the measurement and needs
/// the prober's coordinates for its own update (eq. 13).
struct AbwProbeRequest {
  NodeId prober = 0;
  std::vector<double> u;
  double rate_mbps = 0.0;
};

/// ABW reply: the target's congestion verdict (the binary class measure,
/// +1 good / -1 bad — or a quantity in regression mode) plus v_j for the
/// prober's update (eq. 12).
struct AbwProbeReply {
  NodeId target = 0;
  double measurement = 0.0;
  std::vector<double> v;
};

[[nodiscard]] bool operator==(const RttProbeRequest& a, const RttProbeRequest& b);
[[nodiscard]] bool operator==(const RttProbeReply& a, const RttProbeReply& b);
[[nodiscard]] bool operator==(const AbwProbeRequest& a, const AbwProbeRequest& b);
[[nodiscard]] bool operator==(const AbwProbeReply& a, const AbwProbeReply& b);

/// Any of the four protocol payloads of Algorithms 1-2.
using ProtocolMessage =
    std::variant<RttProbeRequest, RttProbeReply, AbwProbeRequest, AbwProbeReply>;

/// One message inside a batch envelope: the payload plus its sender (the
/// prober for requests, the target for replies).
struct BatchItem {
  NodeId from = 0;
  ProtocolMessage message;
};

/// The unit of delivery (DESIGN.md §13): an ordered run of messages sharing
/// one destination.  Every DeliveryChannel sink receives batches; a
/// non-coalescing channel simply delivers one-item batches.  The ordering
/// contract is that applying `items` front to back is exactly the
/// per-message delivery order the batch replaced — coalescing layers may
/// merge messages into one envelope but must never reorder them.
struct MessageBatch {
  NodeId to = 0;
  std::vector<BatchItem> items;

  /// Convenience wrapper for the ubiquitous one-message case.
  [[nodiscard]] static MessageBatch Single(NodeId from, NodeId to,
                                           ProtocolMessage message) {
    MessageBatch batch;
    batch.to = to;
    batch.items.push_back(BatchItem{from, std::move(message)});
    return batch;
  }
};

[[nodiscard]] bool operator==(const BatchItem& a, const BatchItem& b);
[[nodiscard]] bool operator==(const MessageBatch& a, const MessageBatch& b);

}  // namespace dmfsgd::core
