#include "core/messages.hpp"

namespace dmfsgd::core {

bool operator==(const RttProbeRequest& a, const RttProbeRequest& b) {
  return a.prober == b.prober;
}

bool operator==(const RttProbeReply& a, const RttProbeReply& b) {
  return a.target == b.target && a.u == b.u && a.v == b.v;
}

bool operator==(const AbwProbeRequest& a, const AbwProbeRequest& b) {
  return a.prober == b.prober && a.u == b.u && a.rate_mbps == b.rate_mbps;
}

bool operator==(const AbwProbeReply& a, const AbwProbeReply& b) {
  return a.target == b.target && a.measurement == b.measurement && a.v == b.v;
}

bool operator==(const BatchItem& a, const BatchItem& b) {
  return a.from == b.from && a.message == b.message;
}

bool operator==(const MessageBatch& a, const MessageBatch& b) {
  return a.to == b.to && a.items == b.items;
}

}  // namespace dmfsgd::core
