#include "core/engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

namespace {

using datasets::Dataset;
using datasets::Metric;

/// Throwing pass-through so the config is validated before any member that
/// depends on it (the store sizes itself off config.rank) is built.
const SimulationConfig& RequireConfig(const Dataset& dataset,
                                      const SimulationConfig& config) {
  if (config.rank == 0) {
    throw std::invalid_argument("DeploymentEngine: rank must be > 0");
  }
  if (config.neighbor_count == 0) {
    throw std::invalid_argument("DeploymentEngine: neighbor_count must be > 0");
  }
  if (config.neighbor_count >= dataset.NodeCount()) {
    throw std::invalid_argument(
        "DeploymentEngine: neighbor_count must be < node count");
  }
  if (config.tau <= 0.0) {
    throw std::invalid_argument("DeploymentEngine: tau must be set (> 0)");
  }
  if (config.message_loss < 0.0 || config.message_loss >= 1.0) {
    throw std::invalid_argument("DeploymentEngine: message_loss must be in [0, 1)");
  }
  if (config.params.eta <= 0.0) {
    throw std::invalid_argument("DeploymentEngine: eta must be > 0");
  }
  if (config.params.lambda < 0.0) {
    throw std::invalid_argument("DeploymentEngine: lambda must be >= 0");
  }
  if (config.churn_rate < 0.0 || config.churn_rate >= 1.0) {
    throw std::invalid_argument("DeploymentEngine: churn_rate must be in [0, 1)");
  }
  if (config.exploration < 0.0 || config.exploration > 1.0) {
    throw std::invalid_argument("DeploymentEngine: exploration must be in [0, 1]");
  }
  return config;
}

}  // namespace

const char* ProbeStrategyName(ProbeStrategy strategy) noexcept {
  switch (strategy) {
    case ProbeStrategy::kUniformRandom:
      return "uniform-random";
    case ProbeStrategy::kRoundRobin:
      return "round-robin";
    case ProbeStrategy::kLossDriven:
      return "loss-driven";
  }
  return "?";
}

DeploymentEngine::DeploymentEngine(const Dataset& dataset,
                                   const SimulationConfig& config,
                                   const ErrorInjector* injector,
                                   DeliveryChannel& channel)
    : dataset_(&dataset),
      config_(RequireConfig(dataset, config)),
      injector_(injector),
      channel_(&channel),
      rng_(config.seed),
      abw_(dataset.metric == Metric::kAbw),
      store_(dataset.NodeCount(), config.rank) {
  if (injector_ != nullptr && injector_->NodeCount() != dataset.NodeCount()) {
    throw std::invalid_argument(
        "DeploymentEngine: injector node count does not match the dataset");
  }

  const std::size_t n = dataset.NodeCount();
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i), store_, i, rng_);
  }

  // Random neighbor sets, restricted to pairs with known ground truth
  // (HP-S3 has ~4% unmeasured pairs that can't be probed).
  neighbors_.resize(n);
  round_robin_cursor_.assign(n, 0);
  neighbor_loss_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    RebuildNeighborSet(static_cast<NodeId>(i));
  }

  channel_->BindSink([this](NodeId from, NodeId to, const ProtocolMessage& message) {
    OnMessage(from, to, message);
  });
}

void DeploymentEngine::RebuildNeighborSet(NodeId i) {
  const std::size_t n = nodes_.size();
  std::vector<NodeId> candidates;
  candidates.reserve(n - 1);
  for (std::size_t j = 0; j < n; ++j) {
    if (j != i && dataset_->IsKnown(i, j)) {
      candidates.push_back(static_cast<NodeId>(j));
    }
  }
  if (candidates.size() < config_.neighbor_count) {
    throw std::invalid_argument(
        "DeploymentEngine: node has fewer measurable pairs than k");
  }
  rng_.Shuffle(std::span(candidates));
  candidates.resize(config_.neighbor_count);
  std::sort(candidates.begin(), candidates.end());
  neighbors_[i] = std::move(candidates);
  round_robin_cursor_[i] = 0;
  // Unprobed neighbors carry +inf loss so the loss-driven strategy visits
  // everyone at least once before exploiting.
  neighbor_loss_[i].assign(config_.neighbor_count,
                           std::numeric_limits<double>::infinity());
}

void DeploymentEngine::ResetNode(NodeId i) {
  if (i >= nodes_.size()) {
    throw std::out_of_range("DeploymentEngine::ResetNode: index out of range");
  }
  store_.RandomizeRow(i, rng_);
  RebuildNeighborSet(i);
  ++churn_count_;
}

void DeploymentEngine::ChurnSweep() {
  if (config_.churn_rate <= 0.0) {
    return;
  }
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (rng_.Bernoulli(config_.churn_rate)) {
      ResetNode(i);
    }
  }
}

bool DeploymentEngine::MaybeChurnNode(NodeId i) {
  if (config_.churn_rate <= 0.0 || !rng_.Bernoulli(config_.churn_rate)) {
    return false;
  }
  ResetNode(i);
  return true;
}

NodeId DeploymentEngine::PickNeighbor(NodeId i) {
  return PickNeighborWith(i, rng_);
}

NodeId DeploymentEngine::PickNeighborWith(NodeId i, common::Rng& rng) {
  const auto& nb = neighbors_[i];
  switch (config_.strategy) {
    case ProbeStrategy::kUniformRandom:
      return nb[rng.UniformInt(static_cast<std::uint64_t>(nb.size()))];
    case ProbeStrategy::kRoundRobin: {
      const NodeId j = nb[round_robin_cursor_[i] % nb.size()];
      ++round_robin_cursor_[i];
      return j;
    }
    case ProbeStrategy::kLossDriven: {
      if (rng.Bernoulli(config_.exploration)) {
        return nb[rng.UniformInt(static_cast<std::uint64_t>(nb.size()))];
      }
      const auto& losses = neighbor_loss_[i];
      std::size_t best = 0;
      for (std::size_t p = 1; p < losses.size(); ++p) {
        if (losses[p] > losses[best]) {
          best = p;
        }
      }
      return nb[best];
    }
  }
  return nb[0];
}

void DeploymentEngine::ParallelRoundSweep(common::ThreadPool& pool) {
  if (abw_) {
    throw std::logic_error(
        "DeploymentEngine::ParallelRoundSweep: Algorithm 2 (target-measured "
        "metrics) updates both endpoints of an exchange, so the per-node "
        "ownership the parallel sweep relies on does not hold");
  }
  const std::size_t n = nodes_.size();
  const std::size_t r = config_.rank;
  if (sweep_rng_.empty()) {
    // Decorrelated per-node streams derived from the run seed.  Each stream
    // advances only through its own node's draws, so the sequence a node
    // sees is a pure function of (seed, node id, its own probe history) —
    // never of which thread ran it.
    common::Rng root(config_.seed ^ 0x5deece66dULL);
    sweep_rng_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      sweep_rng_.push_back(root.Split());
    }
    sweep_dropped_.resize(n);
  }

  // Membership dynamics stay on the engine stream, sequential and identical
  // regardless of pool size (they also rebuild neighbor sets, which other
  // nodes' probes must not observe mid-round).
  ChurnSweep();

  // Start-of-round snapshot: every probe reads remote coordinates as they
  // stood here — each reply is a snapshot captured at round start.
  const auto u_data = store_.UData();
  const auto v_data = store_.VData();
  sweep_u_.assign(u_data.begin(), u_data.end());
  sweep_v_.assign(v_data.begin(), v_data.end());

  pool.ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      common::Rng& rng = sweep_rng_[i];
      const NodeId j = PickNeighborWith(static_cast<NodeId>(i), rng);
      // Two protocol legs, each dropped independently — the same roll
      // sequence LegLost() produces on the sequential path (the second leg
      // is only rolled if the first survived).
      bool lost = false;
      if (config_.message_loss > 0.0) {
        lost = rng.Bernoulli(config_.message_loss) ||
               rng.Bernoulli(config_.message_loss);
      }
      sweep_dropped_[i] = lost ? 1 : 0;
      if (lost) {
        continue;
      }
      const double x = MeasurementFor(i, j, std::nullopt);
      const std::span<const double> u_remote(sweep_u_.data() + j * r, r);
      const std::span<const double> v_remote(sweep_v_.data() + j * r, r);
      RecordNeighborLoss(static_cast<NodeId>(i), j, x, v_remote);
      nodes_[i].RttUpdate(x, u_remote, v_remote, config_.params);
    }
  });

  // An exchange either dropped a leg or applied its measurement, so one
  // per-node flag determines both counters.
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    dropped += sweep_dropped_[i];
  }
  dropped_legs_ += dropped;
  measurement_count_ += n - dropped;
}

const DmfsgdNode& DeploymentEngine::node(std::size_t i) const {
  if (i >= nodes_.size()) {
    throw std::out_of_range("DeploymentEngine::node: index out of range");
  }
  return nodes_[i];
}

bool DeploymentEngine::IsNeighborPair(std::size_t i, std::size_t j) const {
  if (i >= nodes_.size() || j >= nodes_.size()) {
    throw std::out_of_range("DeploymentEngine::IsNeighborPair: index out of range");
  }
  const auto& nb = neighbors_[i];
  return std::binary_search(nb.begin(), nb.end(), static_cast<NodeId>(j));
}

double DeploymentEngine::AverageMeasurementsPerNode() const noexcept {
  return static_cast<double>(measurement_count_) /
         static_cast<double>(nodes_.size());
}

double DeploymentEngine::Predict(std::size_t i, std::size_t j) const {
  if (i >= nodes_.size() || j >= nodes_.size()) {
    throw std::out_of_range("DeploymentEngine::Predict: index out of range");
  }
  return store_.Predict(i, j);
}

bool DeploymentEngine::LegLost() {
  if (config_.message_loss <= 0.0) {
    return false;
  }
  const bool lost = rng_.Bernoulli(config_.message_loss);
  if (lost) {
    ++dropped_legs_;
  }
  return lost;
}

double DeploymentEngine::MeasurementFor(
    std::size_t i, std::size_t j, std::optional<double> observed_quantity) const {
  const double quantity =
      observed_quantity.has_value() ? *observed_quantity : dataset_->Quantity(i, j);
  if (config_.mode == PredictionMode::kRegression) {
    // τ-normalization keeps SGD stable across metrics (DESIGN.md §3); the
    // prediction target is then a dimensionless "multiples of τ".
    return quantity / config_.tau;
  }
  // Classification: corrupted paths report their corrupted label on *every*
  // probe (inaccurate tools and malicious nodes are persistent, §6.3), so
  // the injector overrides even dynamically observed quantities.
  if (injector_ != nullptr) {
    return static_cast<double>(injector_->Label(i, j));
  }
  return static_cast<double>(ClassOf(dataset_->metric, quantity, config_.tau));
}

void DeploymentEngine::RecordNeighborLoss(NodeId i, NodeId j, double x,
                                          std::span<const double> v_remote) {
  if (config_.strategy != ProbeStrategy::kLossDriven) {
    return;
  }
  const auto& nb = neighbors_[i];
  const auto it = std::lower_bound(nb.begin(), nb.end(), j);
  if (it != nb.end() && *it == j) {
    const double x_hat = linalg::Dot(nodes_[i].u(), v_remote);
    neighbor_loss_[i][static_cast<std::size_t>(it - nb.begin())] =
        LossValue(config_.params.loss, x, x_hat);
  }
}

void DeploymentEngine::StartExchange(NodeId i, NodeId j,
                                     std::optional<double> observed_quantity) {
  if (abw_ && observed_quantity.has_value()) {
    // Algorithm 2 measures at the *target*; a prober-side trace value has
    // nowhere to go, and silently training on the static matrix instead
    // would corrupt the experiment.
    throw std::logic_error(
        "DeploymentEngine: trace replay is not supported for target-measured "
        "(ABW) metrics");
  }
  ++in_flight_;
  // Leg 1: the probe itself (Algorithm 1's ping, Algorithm 2's UDP train).
  if (LegLost()) {
    --in_flight_;
    return;
  }
  if (abw_) {
    channel_->Send(i, j, AbwProbeRequest{i, nodes_[i].UCopy(), config_.tau});
    return;
  }
  trace_observed_ = observed_quantity;
  trace_observed_consumed_ = false;
  const std::size_t dropped_before = dropped_legs_;
  channel_->Send(i, j, RttProbeRequest{i});
  // Only an immediate channel resolves the exchange within the send.  A
  // trace override that was neither consumed by the reply handler nor
  // killed by leg loss would silently train on the static matrix instead —
  // fail loudly rather than corrupt the experiment.
  const bool resolved =
      trace_observed_consumed_ || dropped_legs_ > dropped_before;
  trace_observed_.reset();
  if (observed_quantity.has_value() && !resolved) {
    throw std::logic_error(
        "DeploymentEngine: trace replay requires an immediate delivery "
        "channel");
  }
}

void DeploymentEngine::OnMessage(NodeId from, NodeId to,
                                 const ProtocolMessage& message) {
  std::visit(
      [&](const auto& typed) {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, RttProbeRequest>) {
          HandleRttRequest(from, to);
        } else if constexpr (std::is_same_v<T, RttProbeReply>) {
          HandleRttReply(to, typed);
        } else if constexpr (std::is_same_v<T, AbwProbeRequest>) {
          HandleAbwRequest(to, typed);
        } else {
          HandleAbwReply(to, typed);
        }
      },
      message);
}

void DeploymentEngine::ResolveExchange() {
  // Saturating: a duplicated or unsolicited reply (possible over datagram
  // transports) must not wrap the counter.
  if (in_flight_ > 0) {
    --in_flight_;
  }
}

void DeploymentEngine::HandleRttRequest(NodeId prober, NodeId target) {
  // Leg 2: the reply carrying (u_j, v_j) — a snapshot taken now, stale by
  // one flight time when the prober consumes it.
  if (LegLost()) {
    ResolveExchange();
    return;
  }
  channel_->Send(target, prober,
                 RttProbeReply{target, nodes_[target].UCopy(),
                               nodes_[target].VCopy()});
}

void DeploymentEngine::HandleRttReply(NodeId prober, const RttProbeReply& reply) {
  // Its timing gives the prober x_ij (or the trace record supplies it).
  const double x = MeasurementFor(prober, reply.target, trace_observed_);
  trace_observed_consumed_ = trace_observed_.has_value();
  RecordNeighborLoss(prober, reply.target, x, reply.v);
  nodes_[prober].RttUpdate(x, reply.u, reply.v, config_.params);
  ++measurement_count_;
  ResolveExchange();
}

void DeploymentEngine::HandleAbwRequest(NodeId target,
                                        const AbwProbeRequest& request) {
  // The target infers x_ij, replies with its pre-update v_j (Algorithm 2
  // sends before updating), then updates v_j — the measurement is consumed
  // at the target even if the reply later gets lost.
  const double x = MeasurementFor(request.prober, target, std::nullopt);
  AbwProbeReply reply{target, x, nodes_[target].VCopy()};
  nodes_[target].AbwTargetUpdate(x, request.u, config_.params);
  ++measurement_count_;

  // Leg 2: the reply back to the prober.
  if (LegLost()) {
    ResolveExchange();
    return;
  }
  channel_->Send(target, request.prober, std::move(reply));
}

void DeploymentEngine::HandleAbwReply(NodeId prober, const AbwProbeReply& reply) {
  RecordNeighborLoss(prober, reply.target, reply.measurement, reply.v);
  nodes_[prober].AbwProberUpdate(reply.measurement, reply.v, config_.params);
  ResolveExchange();
}

}  // namespace dmfsgd::core
