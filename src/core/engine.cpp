#include "core/engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "linalg/vector_ops.hpp"

namespace dmfsgd::core {

namespace {

using datasets::Dataset;
using datasets::Metric;

/// Throwing pass-through so the config is validated before any member that
/// depends on it (the store sizes itself off config.rank) is built.  The
/// shared protocol knobs go through the one ValidateProtocolConfig; only the
/// driver-specific knobs are checked here.
const SimulationConfig& RequireConfig(const Dataset& dataset,
                                      const SimulationConfig& config) {
  ValidateProtocolConfig(config, "DeploymentEngine");
  if (config.neighbor_count == 0) {
    throw std::invalid_argument("DeploymentEngine: neighbor_count must be > 0");
  }
  if (config.neighbor_count >= dataset.NodeCount()) {
    throw std::invalid_argument(
        "DeploymentEngine: neighbor_count must be < node count");
  }
  if (config.message_loss < 0.0 || config.message_loss >= 1.0) {
    throw std::invalid_argument("DeploymentEngine: message_loss must be in [0, 1)");
  }
  if (config.churn_rate < 0.0 || config.churn_rate >= 1.0) {
    throw std::invalid_argument("DeploymentEngine: churn_rate must be in [0, 1)");
  }
  if (config.exploration < 0.0 || config.exploration > 1.0) {
    throw std::invalid_argument("DeploymentEngine: exploration must be in [0, 1]");
  }
  if (config.gradient_batch_size == 0) {
    throw std::invalid_argument(
        "DeploymentEngine: gradient_batch_size must be >= 1");
  }
  return config;
}

}  // namespace

std::vector<std::vector<std::uint32_t>> GreedyTargetPhases(
    std::span<const NodeId> targets, std::span<const unsigned char> active) {
  if (targets.size() != active.size()) {
    throw std::invalid_argument(
        "GreedyTargetPhases: targets and active must have equal length");
  }
  // phase(pair) = number of earlier active pairs with the same target; the
  // counts live in a dense map over the target id range.
  NodeId max_target = 0;
  for (std::size_t p = 0; p < targets.size(); ++p) {
    if (active[p] != 0) {
      max_target = std::max(max_target, targets[p]);
    }
  }
  std::vector<std::uint32_t> taken(static_cast<std::size_t>(max_target) + 1, 0);
  std::vector<std::vector<std::uint32_t>> phases;
  for (std::size_t p = 0; p < targets.size(); ++p) {
    if (active[p] == 0) {
      continue;
    }
    const std::uint32_t phase = taken[targets[p]]++;
    if (phase == phases.size()) {
      phases.emplace_back();
    }
    phases[phase].push_back(static_cast<std::uint32_t>(p));
  }
  return phases;
}

const char* ProbeStrategyName(ProbeStrategy strategy) noexcept {
  switch (strategy) {
    case ProbeStrategy::kUniformRandom:
      return "uniform-random";
    case ProbeStrategy::kRoundRobin:
      return "round-robin";
    case ProbeStrategy::kLossDriven:
      return "loss-driven";
  }
  return "?";
}

DeploymentEngine::DeploymentEngine(const Dataset& dataset,
                                   const SimulationConfig& config,
                                   const ErrorInjector* injector,
                                   DeliveryChannel& channel)
    : dataset_(&dataset),
      config_(RequireConfig(dataset, config)),
      injector_(injector),
      channel_(&channel),
      rng_(config.seed),
      abw_(dataset.metric == Metric::kAbw),
      store_(dataset.NodeCount(), config.rank) {
  if (injector_ != nullptr && injector_->NodeCount() != dataset.NodeCount()) {
    throw std::invalid_argument(
        "DeploymentEngine: injector node count does not match the dataset");
  }

  const std::size_t n = dataset.NodeCount();
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.emplace_back(static_cast<NodeId>(i), store_, i, rng_);
  }

  // Random neighbor sets, restricted to pairs with known ground truth
  // (HP-S3 has ~4% unmeasured pairs that can't be probed).
  neighbors_.resize(n);
  round_robin_cursor_.assign(n, 0);
  neighbor_loss_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    RebuildNeighborSet(static_cast<NodeId>(i));
  }

  channel_->BindSink([this](const MessageBatch& batch) { OnBatch(batch); });
}

void DeploymentEngine::RebuildNeighborSet(NodeId i) {
  RebuildNeighborSetWith(i, rng_);
}

void DeploymentEngine::RebuildNeighborSetWith(NodeId i, common::Rng& rng) {
  const std::size_t n = nodes_.size();
  std::vector<NodeId> candidates;
  if (dataset_->Procedural()) {
    // Every off-diagonal pair is known by the procedural contract, so k
    // distinct neighbors come from rejection sampling: O(k) expected draws
    // instead of the O(n) candidate scan, which makes the construction
    // O(n·k) overall — the difference between feasible and not at the
    // bench-scale node counts the procedural datasets exist for.
    if (n - 1 < config_.neighbor_count) {
      throw std::invalid_argument(
          "DeploymentEngine: node has fewer measurable pairs than k");
    }
    candidates.reserve(config_.neighbor_count);
    while (candidates.size() < config_.neighbor_count) {
      const auto j = static_cast<NodeId>(rng.UniformInt(n));
      if (j != i &&
          std::find(candidates.begin(), candidates.end(), j) == candidates.end()) {
        candidates.push_back(j);
      }
    }
  } else {
    candidates.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && dataset_->IsKnown(i, j)) {
        candidates.push_back(static_cast<NodeId>(j));
      }
    }
    if (candidates.size() < config_.neighbor_count) {
      throw std::invalid_argument(
          "DeploymentEngine: node has fewer measurable pairs than k");
    }
    rng.Shuffle(std::span(candidates));
    candidates.resize(config_.neighbor_count);
  }
  std::sort(candidates.begin(), candidates.end());
  neighbors_[i] = std::move(candidates);
  round_robin_cursor_[i] = 0;
  // Unprobed neighbors carry +inf loss so the loss-driven strategy visits
  // everyone at least once before exploiting.
  neighbor_loss_[i].assign(config_.neighbor_count,
                           std::numeric_limits<double>::infinity());
}

void DeploymentEngine::ResetNode(NodeId i) {
  if (i >= nodes_.size()) {
    throw std::out_of_range("DeploymentEngine::ResetNode: index out of range");
  }
  ResetNodeWith(i, rng_);
}

void DeploymentEngine::ResetNodeWith(NodeId i, common::Rng& rng) {
  store_.RandomizeRow(i, rng);
  MarkDirty(i);
  RebuildNeighborSetWith(i, rng);
  if (sharded_drain_) {
    ++node_counters_[i].churns;
  } else {
    ++churn_count_;
  }
}

void DeploymentEngine::ChurnSweep() {
  if (config_.churn_rate <= 0.0) {
    return;
  }
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (rng_.Bernoulli(config_.churn_rate)) {
      ResetNode(i);
    }
  }
}

bool DeploymentEngine::MaybeChurnNode(NodeId i) {
  return MaybeChurnNodeWith(i, rng_);
}

bool DeploymentEngine::MaybeChurnNodeWith(NodeId i, common::Rng& rng) {
  if (config_.churn_rate <= 0.0 || !rng.Bernoulli(config_.churn_rate)) {
    return false;
  }
  if (i >= nodes_.size()) {
    throw std::out_of_range("DeploymentEngine: churn index out of range");
  }
  ResetNodeWith(i, rng);
  return true;
}

NodeId DeploymentEngine::PickNeighbor(NodeId i) {
  return PickNeighborWith(i, rng_);
}

NodeId DeploymentEngine::PickNeighborWith(NodeId i, common::Rng& rng) {
  const auto& nb = neighbors_[i];
  switch (config_.strategy) {
    case ProbeStrategy::kUniformRandom:
      return nb[rng.UniformInt(static_cast<std::uint64_t>(nb.size()))];
    case ProbeStrategy::kRoundRobin: {
      const NodeId j = nb[round_robin_cursor_[i] % nb.size()];
      ++round_robin_cursor_[i];
      return j;
    }
    case ProbeStrategy::kLossDriven: {
      if (rng.Bernoulli(config_.exploration)) {
        return nb[rng.UniformInt(static_cast<std::uint64_t>(nb.size()))];
      }
      const auto& losses = neighbor_loss_[i];
      std::size_t best = 0;
      for (std::size_t p = 1; p < losses.size(); ++p) {
        if (losses[p] > losses[best]) {
          best = p;
        }
      }
      return nb[best];
    }
  }
  return nb[0];
}

void DeploymentEngine::EnsurePerNodeStreams() {
  if (!per_node_rng_.empty()) {
    return;
  }
  // Decorrelated per-node streams derived from the run seed.  Each stream
  // advances only through its own node's draws, so the sequence a node
  // sees is a pure function of (seed, node id, its own probe history) —
  // never of which thread ran it.
  const std::size_t n = nodes_.size();
  common::Rng root(config_.seed ^ 0x5deece66dULL);
  per_node_rng_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    per_node_rng_.push_back(root.Split());
  }
  sweep_state_.resize(n);
}

common::Rng& DeploymentEngine::NodeRng(NodeId i) {
  EnsurePerNodeStreams();
  if (i >= per_node_rng_.size()) {
    throw std::out_of_range("DeploymentEngine::NodeRng: index out of range");
  }
  return per_node_rng_[i];
}

void DeploymentEngine::ParallelRoundSweep(common::ThreadPool& pool) {
  if (config_.probe_burst > 1) {
    // The snapshot sweep models one exchange per node per round; batched
    // rounds run through the sequential driver or the async drains.
    throw std::logic_error(
        "DeploymentEngine::ParallelRoundSweep: probe_burst > 1 is not "
        "supported on the parallel sweep path");
  }
  if (config_.compile_rounds) {
    if (abw_) {
      CompiledParallelAbwSweep(pool);
    } else {
      CompiledParallelRttSweep(pool);
    }
    return;
  }
  if (abw_) {
    ParallelAbwRoundSweep(pool);
    return;
  }
  const std::size_t n = nodes_.size();
  const std::size_t r = config_.rank;
  EnsurePerNodeStreams();

  // Membership dynamics stay on the engine stream, sequential and identical
  // regardless of pool size (they also rebuild neighbor sets, which other
  // nodes' probes must not observe mid-round).
  ChurnSweep();

  // Start-of-round snapshot: every probe reads remote coordinates as they
  // stood here — each reply is a snapshot captured at round start.
  const auto u_data = store_.UData();
  const auto v_data = store_.VData();
  sweep_u_.assign(u_data.begin(), u_data.end());
  sweep_v_.assign(v_data.begin(), v_data.end());

  pool.ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      common::Rng& rng = per_node_rng_[i];
      const NodeId j = PickNeighborWith(static_cast<NodeId>(i), rng);
      // Two protocol legs, each dropped independently — the same roll
      // sequence LegLost() produces on the sequential path (the second leg
      // is only rolled if the first survived).
      bool lost = false;
      if (config_.message_loss > 0.0) {
        lost = rng.Bernoulli(config_.message_loss) ||
               rng.Bernoulli(config_.message_loss);
      }
      sweep_state_[i] = lost ? 1 : 0;
      if (lost) {
        continue;
      }
      const double x = MeasurementFor(i, j, std::nullopt);
      const std::span<const double> u_remote(sweep_u_.data() + j * r, r);
      const std::span<const double> v_remote(sweep_v_.data() + j * r, r);
      RecordNeighborLoss(static_cast<NodeId>(i), j, x, v_remote);
      nodes_[i].RttUpdate(x, u_remote, v_remote, config_.params);
    }
  });

  // An exchange either dropped a leg or applied its measurement, so one
  // per-node flag determines both counters; a node that measured also
  // updated its own rows (drift marks go here, after the join).
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sweep_state_[i] != 0) {
      ++dropped;
    } else {
      MarkDirty(i);
    }
  }
  dropped_legs_ += dropped;
  measurement_count_ += n - dropped;
}

void DeploymentEngine::CompiledRoundSweep() {
  if (config_.probe_burst > 1) {
    // The compiled gather models one exchange per node per round, like the
    // parallel sweep; batched rounds run through the sequential driver.
    throw std::logic_error(
        "DeploymentEngine::CompiledRoundSweep: probe_burst > 1 is not "
        "supported on the compiled round path");
  }
  ChurnSweep();

  // Gather: consume the shared RNG stream in exactly the per-message order
  // — pick, leg-1 roll, leg-2 roll per exchange.  (Algorithm 2 rolls leg 2
  // after the target consumed the measurement, but no draw happens in
  // between, so rolling it at gather time replays the stream verbatim.)
  // Only node-owned probing state (round-robin cursors, loss feedback read
  // by the pick) is touched here, none of which the deferred execution
  // changes out of order: neighbor_loss_[i] is written solely by node i's
  // own exchange, which the per-message round also applies after i's pick.
  round_coo_.Clear();
  const std::size_t n = nodes_.size();
  for (NodeId i = 0; i < n; ++i) {
    const NodeId j = PickNeighbor(i);
    if (LegLost()) {  // leg 1: the probe — nothing happened anywhere
      continue;
    }
    const bool full = !LegLost();  // leg 2: the reply
    if (abw_) {
      round_coo_.Add(i, j, full);  // the target measured and updates either way
    } else if (full) {
      round_coo_.Add(i, j, true);  // a lost RTT reply loses the whole exchange
    }
  }

  if (abw_) {
    ExecuteCompiledAbwRound();
  } else {
    ExecuteCompiledRttRound();
  }
}

void DeploymentEngine::ExecuteCompiledRttRound() {
  // Original gather order *is* ascending-prober row-major order (one edge
  // per prober), and an Algorithm-1 exchange writes only the prober's own
  // rows, so executing the edges in order against the live store replays
  // every mid-round coordinate read the sequential channel drain performs —
  // the remote rows here are live for the same reason the per-message
  // reply's copies were fresh at reply time.
  const linalg::KernelOps& kernels = linalg::ActiveKernels();
  const std::size_t r = config_.rank;
  for (const RoundEdge& edge : round_coo_.Edges()) {
    const double x = MeasurementFor(edge.prober, edge.target, std::nullopt);
    RecordNeighborLoss(edge.prober, edge.target, x, store_.V(edge.target));
    CompiledRttStep(kernels, config_.params, x, store_.U(edge.target).data(),
                    store_.V(edge.target).data(), store_.U(edge.prober).data(),
                    store_.V(edge.prober).data(), r);
    MarkDirty(edge.prober);
    ++measurement_count_;
  }
}

void DeploymentEngine::ExecuteCompiledAbwRound() {
  // Group by updated v row, stable by message order: per target the updates
  // apply in ascending-prober order — the exact per-message sequence — and
  // exchanges aimed at different targets commute because u_i is read and
  // written only by prober i's own exchange (one probe per node per round).
  const std::size_t n = nodes_.size();
  round_coo_.GroupByTarget(n);
  const linalg::KernelOps& kernels = linalg::ActiveKernels();
  const std::size_t r = config_.rank;
  const auto& edges = round_coo_.Edges();
  std::vector<double> v_pre(r);
  for (NodeId t = 0; t < n; ++t) {
    for (const std::uint32_t e : round_coo_.Group(t)) {
      const RoundEdge& edge = edges[e];
      const double x = MeasurementFor(edge.prober, t, std::nullopt);
      double* v_row = store_.V(t).data();
      if (edge.full != 0) {
        // The reply ships v_j as it stood before the target's update
        // (Algorithm 2 sends before updating).
        std::copy(v_row, v_row + r, v_pre.begin());
      }
      CompiledAbwTargetStep(kernels, config_.params, x,
                            store_.U(edge.prober).data(), v_row, r);  // eq. 13
      MarkDirty(t);
      ++measurement_count_;
      if (edge.full != 0) {
        RecordNeighborLoss(edge.prober, t, x, v_pre);
        CompiledAbwProberStep(kernels, config_.params, x, v_pre.data(),
                              store_.U(edge.prober).data(), r);  // eq. 12
        MarkDirty(edge.prober);
      }
    }
  }
}

void DeploymentEngine::CompiledParallelRttSweep(common::ThreadPool& pool) {
  const std::size_t n = nodes_.size();
  const std::size_t r = config_.rank;
  EnsurePerNodeStreams();
  ChurnSweep();

  const auto u_data = store_.UData();
  const auto v_data = store_.VData();
  sweep_u_.assign(u_data.begin(), u_data.end());
  sweep_v_.assign(v_data.begin(), v_data.end());
  sweep_target_.resize(n);

  // Gather: draws only — the same streams rolled in the same order as the
  // uncompiled sweep, so both sweeps follow one trajectory.
  pool.ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      common::Rng& rng = per_node_rng_[i];
      sweep_target_[i] = PickNeighborWith(static_cast<NodeId>(i), rng);
      bool lost = false;
      if (config_.message_loss > 0.0) {
        lost = rng.Bernoulli(config_.message_loss) ||
               rng.Bernoulli(config_.message_loss);
      }
      sweep_state_[i] = lost ? 1 : 0;
    }
  });

  // Execute: the gathered edges partitioned into contiguous row ranges
  // (edge i updates exactly rows i of both factors), swept through a kernel
  // table fetched once — no variant dispatch, no per-message copies.
  const linalg::KernelOps& kernels = linalg::ActiveKernels();
  pool.ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (sweep_state_[i] != 0) {
        continue;
      }
      const NodeId j = sweep_target_[i];
      const double x = MeasurementFor(i, j, std::nullopt);
      const std::span<const double> v_remote(sweep_v_.data() + j * r, r);
      RecordNeighborLoss(static_cast<NodeId>(i), j, x, v_remote);
      CompiledRttStep(kernels, config_.params, x, sweep_u_.data() + j * r,
                      sweep_v_.data() + j * r, store_.U(i).data(),
                      store_.V(i).data(), r);
    }
  });

  std::size_t dropped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sweep_state_[i] != 0) {
      ++dropped;
    } else {
      MarkDirty(i);
    }
  }
  dropped_legs_ += dropped;
  measurement_count_ += n - dropped;
}

namespace {

// Outcome of one Algorithm-2 exchange, decided entirely by the prober's
// private rolls before any phase runs.
constexpr unsigned char kAbwFull = 0;      // both legs survived
constexpr unsigned char kAbwLeg2Lost = 1;  // target updated, reply lost
constexpr unsigned char kAbwLeg1Lost = 2;  // probe lost, nothing happened

}  // namespace

void DeploymentEngine::ParallelAbwRoundSweep(common::ThreadPool& pool) {
  const std::size_t n = nodes_.size();
  EnsurePerNodeStreams();
  ChurnSweep();  // sequential on the engine stream, like the Algorithm-1 path

  // 1. Draws: each prober picks its target and rolls both protocol legs from
  // its private stream (leg 2 only if leg 1 survived — the sequential roll
  // order).  Node-owned state only, so the draws themselves parallelize.
  sweep_target_.resize(n);
  pool.ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      common::Rng& rng = per_node_rng_[i];
      sweep_target_[i] = PickNeighborWith(static_cast<NodeId>(i), rng);
      unsigned char state = kAbwFull;
      if (config_.message_loss > 0.0) {
        if (rng.Bernoulli(config_.message_loss)) {
          state = kAbwLeg1Lost;
        } else if (rng.Bernoulli(config_.message_loss)) {
          state = kAbwLeg2Lost;
        }
      }
      sweep_state_[i] = state;
    }
  });

  // 2. Greedy target-disjoint phases over the pairs that will update state
  // (a lost probe updates nobody and needs no slot).
  std::vector<unsigned char> active(n);
  for (std::size_t i = 0; i < n; ++i) {
    active[i] = sweep_state_[i] != kAbwLeg1Lost ? 1 : 0;
  }
  const auto phases = GreedyTargetPhases(sweep_target_, active);

  // 3. Run the phases.  Within a phase every prober and every target is
  // distinct, so pair (i, j)'s task exclusively owns u_i and v_j; across
  // phases, same-target updates apply in ascending prober order.  Each task
  // replays the sequential exchange exactly: the target consumes x and the
  // probe's u_i and updates v_j; the prober consumes the *pre-update* v_j.
  for (const auto& phase : phases) {
    pool.ParallelFor(0, phase.size(), [&](std::size_t lo, std::size_t hi) {
      std::vector<double> v_pre(config_.rank);
      for (std::size_t p = lo; p < hi; ++p) {
        const std::size_t i = phase[p];
        const NodeId j = sweep_target_[i];
        const double x = MeasurementFor(i, j, std::nullopt);
        const auto v_j = nodes_[j].v();
        std::copy(v_j.begin(), v_j.end(), v_pre.begin());
        nodes_[j].AbwTargetUpdate(x, nodes_[i].u(), config_.params);  // eq. 13
        if (sweep_state_[i] == kAbwFull) {
          RecordNeighborLoss(static_cast<NodeId>(i), j, x, v_pre);
          nodes_[i].AbwProberUpdate(x, v_pre, config_.params);  // eq. 12
        }
      }
    });
  }

  // 4. Counters, reduced exactly as the sequential exchanges would have:
  // the target consumes the measurement even when the reply is lost.
  std::size_t measured = 0;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sweep_state_[i] != kAbwLeg1Lost) {
      ++measured;
      MarkDirty(sweep_target_[i]);  // the target's v row took eq. 13
      if (sweep_state_[i] == kAbwFull) {
        MarkDirty(i);  // the prober's u row took eq. 12
      }
    }
    dropped += sweep_state_[i] != kAbwFull ? 1 : 0;
  }
  measurement_count_ += measured;
  dropped_legs_ += dropped;
}

void DeploymentEngine::CompiledParallelAbwSweep(common::ThreadPool& pool) {
  const std::size_t n = nodes_.size();
  const std::size_t r = config_.rank;
  EnsurePerNodeStreams();
  ChurnSweep();

  // 1. Draws — identical streams and roll order to ParallelAbwRoundSweep.
  sweep_target_.resize(n);
  pool.ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      common::Rng& rng = per_node_rng_[i];
      sweep_target_[i] = PickNeighborWith(static_cast<NodeId>(i), rng);
      unsigned char state = kAbwFull;
      if (config_.message_loss > 0.0) {
        if (rng.Bernoulli(config_.message_loss)) {
          state = kAbwLeg1Lost;
        } else if (rng.Bernoulli(config_.message_loss)) {
          state = kAbwLeg2Lost;
        }
      }
      sweep_state_[i] = state;
    }
  });

  // 2. Compile: row-major COO, grouped by updated v row, stable by prober
  // order (probers are gathered ascending, and the grouping sort is
  // stable).  Sequential and deterministic — pool size never enters.
  round_coo_.Clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (sweep_state_[i] != kAbwLeg1Lost) {
      round_coo_.Add(static_cast<NodeId>(i), sweep_target_[i],
                     sweep_state_[i] == kAbwFull);
    }
  }
  round_coo_.GroupByTarget(n);

  // 3. One ParallelFor over contiguous target-row ranges replaces the
  // phase-barrier schedule: a range exclusively owns v of its target rows
  // and u of their probers (each prober appears in exactly one group), so
  // the partition is data-race-free, and within a group the updates apply
  // in the same ascending-prober order the phases enforced — bit-identical
  // results for every pool size, and to the uncompiled schedule under the
  // scalar kernel table.
  const linalg::KernelOps& kernels = linalg::ActiveKernels();
  const auto& edges = round_coo_.Edges();
  pool.ParallelFor(0, n, [&](std::size_t lo, std::size_t hi) {
    std::vector<double> v_pre(r);
    for (std::size_t t = lo; t < hi; ++t) {
      for (const std::uint32_t e : round_coo_.Group(static_cast<NodeId>(t))) {
        const RoundEdge& edge = edges[e];
        const double x = MeasurementFor(edge.prober, t, std::nullopt);
        double* v_row = store_.V(t).data();
        if (edge.full != 0) {
          std::copy(v_row, v_row + r, v_pre.begin());
        }
        CompiledAbwTargetStep(kernels, config_.params, x,
                              store_.U(edge.prober).data(), v_row, r);  // eq. 13
        if (edge.full != 0) {
          RecordNeighborLoss(edge.prober, static_cast<NodeId>(t), x, v_pre);
          CompiledAbwProberStep(kernels, config_.params, x, v_pre.data(),
                                store_.U(edge.prober).data(), r);  // eq. 12
        }
      }
    }
  });

  // 4. Same counter reduction as the phase schedule.
  std::size_t measured = 0;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sweep_state_[i] != kAbwLeg1Lost) {
      ++measured;
      MarkDirty(sweep_target_[i]);  // the target's v row took eq. 13
      if (sweep_state_[i] == kAbwFull) {
        MarkDirty(i);  // the prober's u row took eq. 12
      }
    }
    dropped += sweep_state_[i] != kAbwFull ? 1 : 0;
  }
  measurement_count_ += measured;
  dropped_legs_ += dropped;
}

const DmfsgdNode& DeploymentEngine::node(std::size_t i) const {
  if (i >= nodes_.size()) {
    throw std::out_of_range("DeploymentEngine::node: index out of range");
  }
  return nodes_[i];
}

bool DeploymentEngine::IsNeighborPair(std::size_t i, std::size_t j) const {
  if (i >= nodes_.size() || j >= nodes_.size()) {
    throw std::out_of_range("DeploymentEngine::IsNeighborPair: index out of range");
  }
  const auto& nb = neighbors_[i];
  return std::binary_search(nb.begin(), nb.end(), static_cast<NodeId>(j));
}

double DeploymentEngine::AverageMeasurementsPerNode() const noexcept {
  return static_cast<double>(measurement_count_) /
         static_cast<double>(nodes_.size());
}

double DeploymentEngine::Predict(std::size_t i, std::size_t j) const {
  if (i >= nodes_.size() || j >= nodes_.size()) {
    throw std::out_of_range("DeploymentEngine::Predict: index out of range");
  }
  return store_.Predict(i, j);
}

bool DeploymentEngine::LegLost() {
  if (config_.message_loss <= 0.0) {
    return false;
  }
  const bool lost = rng_.Bernoulli(config_.message_loss);
  if (lost) {
    ++dropped_legs_;
  }
  return lost;
}

bool DeploymentEngine::LegLostFor(NodeId who) {
  if (!sharded_drain_) {
    return LegLost();
  }
  if (config_.message_loss <= 0.0) {
    return false;
  }
  const bool lost = per_node_rng_[who].Bernoulli(config_.message_loss);
  if (lost) {
    ++node_counters_[who].dropped_legs;
  }
  return lost;
}

void DeploymentEngine::CountMeasurementAt(NodeId who) {
  if (sharded_drain_) {
    ++node_counters_[who].measurements;
  } else {
    ++measurement_count_;
  }
}

void DeploymentEngine::ResolveExchangeAt(NodeId who) {
  if (sharded_drain_) {
    ++node_counters_[who].resolved;
  } else {
    ResolveExchange();
  }
}

void DeploymentEngine::EnableDriftTracking() {
  // Starts clean: "dirty" means written after this point — callers build
  // their index from the current store, then drain deltas.
  dirty_rows_.assign(nodes_.size(), 0);
  drift_tracking_ = true;
}

std::vector<NodeId> DeploymentEngine::TakeDirtyNodes() {
  if (!drift_tracking_) {
    throw std::logic_error(
        "DeploymentEngine::TakeDirtyNodes: drift tracking is not enabled");
  }
  std::vector<NodeId> dirty;
  for (std::size_t i = 0; i < dirty_rows_.size(); ++i) {
    if (dirty_rows_[i] != 0) {
      dirty.push_back(static_cast<NodeId>(i));
      dirty_rows_[i] = 0;
    }
  }
  return dirty;
}

void DeploymentEngine::RestoreCoordinates(const CoordinateStore& snapshot) {
  if (snapshot.NodeCount() != store_.NodeCount() ||
      snapshot.rank() != store_.rank()) {
    throw std::invalid_argument(
        "DeploymentEngine::RestoreCoordinates: snapshot shape mismatch");
  }
  std::copy(snapshot.UData().begin(), snapshot.UData().end(),
            store_.UData().begin());
  std::copy(snapshot.VData().begin(), snapshot.VData().end(),
            store_.VData().begin());
  if (drift_tracking_) {
    // Every row moved: an index built before the restore must re-snapshot.
    std::fill(dirty_rows_.begin(), dirty_rows_.end(), 1);
  }
}

void DeploymentEngine::BeginShardedDrain() {
  if (sharded_drain_) {
    throw std::logic_error("DeploymentEngine: sharded drain already active");
  }
  EnsurePerNodeStreams();
  node_counters_.assign(nodes_.size(), NodeCounters{});
  sharded_drain_ = true;
}

void DeploymentEngine::EndShardedDrain() {
  if (!sharded_drain_) {
    throw std::logic_error("DeploymentEngine: no sharded drain active");
  }
  sharded_drain_ = false;
  std::uint64_t started = 0;
  std::uint64_t resolved = 0;
  for (const NodeCounters& counters : node_counters_) {
    measurement_count_ += counters.measurements;
    dropped_legs_ += counters.dropped_legs;
    churn_count_ += counters.churns;
    started += counters.started;
    resolved += counters.resolved;
  }
  // Same saturating semantics as ResolveExchange: a duplicated resolution
  // must not wrap the in-flight gauge.
  const std::uint64_t in_flight = in_flight_ + started;
  in_flight_ = in_flight > resolved ? in_flight - resolved : 0;
}

double DeploymentEngine::MeasurementFor(
    std::size_t i, std::size_t j, std::optional<double> observed_quantity) const {
  const double quantity =
      observed_quantity.has_value() ? *observed_quantity : dataset_->Quantity(i, j);
  if (config_.mode == PredictionMode::kRegression) {
    // τ-normalization keeps SGD stable across metrics (DESIGN.md §3); the
    // prediction target is then a dimensionless "multiples of τ".
    return quantity / config_.tau;
  }
  // Classification: corrupted paths report their corrupted label on *every*
  // probe (inaccurate tools and malicious nodes are persistent, §6.3), so
  // the injector overrides even dynamically observed quantities.
  if (injector_ != nullptr) {
    return static_cast<double>(injector_->Label(i, j));
  }
  return static_cast<double>(ClassOf(dataset_->metric, quantity, config_.tau));
}

void DeploymentEngine::RecordNeighborLoss(NodeId i, NodeId j, double x,
                                          std::span<const double> v_remote) {
  if (config_.strategy != ProbeStrategy::kLossDriven) {
    return;
  }
  const auto& nb = neighbors_[i];
  const auto it = std::lower_bound(nb.begin(), nb.end(), j);
  if (it != nb.end() && *it == j) {
    const double x_hat = linalg::Dot(nodes_[i].u(), v_remote);
    neighbor_loss_[i][static_cast<std::size_t>(it - nb.begin())] =
        LossValue(config_.params.loss, x, x_hat);
  }
}

void DeploymentEngine::StartExchange(NodeId i, NodeId j,
                                     std::optional<double> observed_quantity) {
  if (abw_ && observed_quantity.has_value()) {
    // Algorithm 2 measures at the *target*; a prober-side trace value has
    // nowhere to go, and silently training on the static matrix instead
    // would corrupt the experiment.
    throw std::logic_error(
        "DeploymentEngine: trace replay is not supported for target-measured "
        "(ABW) metrics");
  }
  if (sharded_drain_) {
    // Sharded-drain path: no shared state — the prober's private stream
    // rolls leg 1 and the per-node slots absorb the counters.  Trace
    // overrides need an immediate channel, which a sharded drain never is.
    if (observed_quantity.has_value()) {
      throw std::logic_error(
          "DeploymentEngine: trace replay is not supported during a sharded "
          "drain");
    }
    ++node_counters_[i].started;
    if (LegLostFor(i)) {
      ++node_counters_[i].resolved;
      return;
    }
    if (abw_) {
      channel_->Send(i, j, AbwProbeRequest{i, nodes_[i].UCopy(), config_.tau});
    } else {
      channel_->Send(i, j, RttProbeRequest{i});
    }
    return;
  }
  ++in_flight_;
  // Leg 1: the probe itself (Algorithm 1's ping, Algorithm 2's UDP train).
  if (LegLost()) {
    --in_flight_;
    return;
  }
  if (abw_) {
    channel_->Send(i, j, AbwProbeRequest{i, nodes_[i].UCopy(), config_.tau});
    return;
  }
  trace_observed_ = observed_quantity;
  trace_observed_consumed_ = false;
  const std::size_t dropped_before = dropped_legs_;
  channel_->Send(i, j, RttProbeRequest{i});
  // Only an immediate channel resolves the exchange within the send.  A
  // trace override that was neither consumed by the reply handler nor
  // killed by leg loss would silently train on the static matrix instead —
  // fail loudly rather than corrupt the experiment.
  const bool resolved =
      trace_observed_consumed_ || dropped_legs_ > dropped_before;
  trace_observed_.reset();
  if (observed_quantity.has_value() && !resolved) {
    throw std::logic_error(
        "DeploymentEngine: trace replay requires an immediate delivery "
        "channel");
  }
}

void DeploymentEngine::OnBatch(const MessageBatch& batch) {
  // Per-message mode, or a trivial envelope: every item runs its own
  // handler in order — bit-identical to the pre-batch engine (an envelope
  // is its messages in order, DESIGN.md §13).
  if (config_.gradient_batch_size <= 1 || batch.items.size() <= 1) {
    // Window-compile (opt-in, DESIGN.md §14): a multi-item envelope is a
    // conservative delivery window, so its reply runs can execute as fused
    // compiled sweeps — same per-message arithmetic and bookkeeping, but
    // through a kernel table fetched once per run and raw store rows, no
    // coordinate copies.  Mini-batch mode (the branch below) takes
    // precedence; singletons stay on the per-message handlers.
    if (config_.compile_rounds && batch.items.size() > 1) {
      std::size_t i = 0;
      while (i < batch.items.size()) {
        const ProtocolMessage& message = batch.items[i].message;
        if (std::holds_alternative<RttProbeReply>(message)) {
          i = CompileRttReplies(batch, i);
        } else if (std::holds_alternative<AbwProbeReply>(message)) {
          i = CompileAbwReplies(batch, i);
        } else {
          // Requests send replies — they stay per-message.
          OnMessage(batch.items[i].from, batch.to, message);
          ++i;
        }
      }
      return;
    }
    for (const BatchItem& item : batch.items) {
      OnMessage(item.from, batch.to, item.message);
    }
    return;
  }
  // Mini-batch receive: consecutive same-kind reply runs fold into one
  // accumulated step per gradient_batch_size chunk; everything else keeps
  // its per-message handler, in envelope order.
  std::size_t i = 0;
  while (i < batch.items.size()) {
    const ProtocolMessage& message = batch.items[i].message;
    if (std::holds_alternative<RttProbeReply>(message)) {
      i = FoldRttReplies(batch, i);
    } else if (std::holds_alternative<AbwProbeReply>(message)) {
      i = FoldAbwReplies(batch, i);
    } else if (std::holds_alternative<AbwProbeRequest>(message)) {
      i = FoldAbwRequests(batch, i);
    } else {
      OnMessage(batch.items[i].from, batch.to, message);
      ++i;
    }
  }
}

namespace {

/// One past the last index of the run of items holding alternative T,
/// capped at `limit` items (the gradient_batch_size chunk bound).
template <typename T>
std::size_t RunEnd(const MessageBatch& batch, std::size_t start,
                   std::size_t limit) {
  std::size_t end = start;
  while (end < batch.items.size() && end - start < limit &&
         std::holds_alternative<T>(batch.items[end].message)) {
    ++end;
  }
  return end;
}

}  // namespace

std::size_t DeploymentEngine::FoldRttReplies(const MessageBatch& batch,
                                             std::size_t start) {
  const std::size_t end =
      RunEnd<RttProbeReply>(batch, start, config_.gradient_batch_size);
  const NodeId prober = batch.to;
  if (end - start == 1) {
    HandleRttReply(prober, std::get<RttProbeReply>(batch.items[start].message));
    return end;
  }
  // All gradients evaluate at the prober's pre-batch coordinates; the
  // per-item bookkeeping (loss feedback, counters, exchange resolution)
  // matches the per-message handlers item for item.
  GradientStepBatch du(config_.rank);
  GradientStepBatch dv(config_.rank);
  for (std::size_t k = start; k < end; ++k) {
    const auto& reply = std::get<RttProbeReply>(batch.items[k].message);
    const double x = MeasurementFor(prober, reply.target, std::nullopt);
    RecordNeighborLoss(prober, reply.target, x, reply.v);
    nodes_[prober].AccumulateRttUpdate(x, reply.u, reply.v, config_.params, du,
                                       dv);
    CountMeasurementAt(prober);
    ResolveExchangeAt(prober);
  }
  nodes_[prober].ApplyBatchU(du, config_.params);
  nodes_[prober].ApplyBatchV(dv, config_.params);
  MarkDirty(prober);
  return end;
}

std::size_t DeploymentEngine::FoldAbwReplies(const MessageBatch& batch,
                                             std::size_t start) {
  const std::size_t end =
      RunEnd<AbwProbeReply>(batch, start, config_.gradient_batch_size);
  const NodeId prober = batch.to;
  if (end - start == 1) {
    HandleAbwReply(prober, std::get<AbwProbeReply>(batch.items[start].message));
    return end;
  }
  GradientStepBatch du(config_.rank);
  for (std::size_t k = start; k < end; ++k) {
    const auto& reply = std::get<AbwProbeReply>(batch.items[k].message);
    RecordNeighborLoss(prober, reply.target, reply.measurement, reply.v);
    nodes_[prober].AccumulateAbwProberUpdate(reply.measurement, reply.v,
                                             config_.params, du);
    ResolveExchangeAt(prober);
  }
  nodes_[prober].ApplyBatchU(du, config_.params);
  MarkDirty(prober);
  return end;
}

std::size_t DeploymentEngine::FoldAbwRequests(const MessageBatch& batch,
                                              std::size_t start) {
  const std::size_t end =
      RunEnd<AbwProbeRequest>(batch, start, config_.gradient_batch_size);
  const NodeId target = batch.to;
  if (end - start == 1) {
    HandleAbwRequest(target,
                     std::get<AbwProbeRequest>(batch.items[start].message));
    return end;
  }
  // Every reply of the chunk carries the same pre-batch v_j (the mini-batch
  // analogue of Algorithm 2's reply-before-update); measurements are
  // consumed and leg losses rolled per item, in order, exactly like the
  // per-message handler.
  GradientStepBatch dv(config_.rank);
  const std::vector<double> v_pre = nodes_[target].VCopy();
  for (std::size_t k = start; k < end; ++k) {
    const auto& request = std::get<AbwProbeRequest>(batch.items[k].message);
    const double x = MeasurementFor(request.prober, target, std::nullopt);
    nodes_[target].AccumulateAbwTargetUpdate(x, request.u, config_.params, dv);
    CountMeasurementAt(target);
    if (LegLostFor(target)) {
      ResolveExchangeAt(target);
      continue;
    }
    channel_->Send(target, request.prober, AbwProbeReply{target, x, v_pre});
  }
  nodes_[target].ApplyBatchV(dv, config_.params);
  MarkDirty(target);
  return end;
}

std::size_t DeploymentEngine::CompileRttReplies(const MessageBatch& batch,
                                                std::size_t start) {
  const std::size_t end =
      RunEnd<RttProbeReply>(batch, start, batch.items.size());
  const NodeId prober = batch.to;
  const std::size_t r = config_.rank;
  // The whole run updates only the prober's own rows: hoist the kernel
  // table and row pointers, then replay the run in envelope order — the
  // arithmetic and bookkeeping of HandleRttReply, item for item.  (Trace
  // overrides never reach here: ReplayTrace rejects coalescing channels,
  // and only coalescing produces multi-item envelopes.)
  const linalg::KernelOps& kernels = linalg::ActiveKernels();
  double* u_row = store_.U(prober).data();
  double* v_row = store_.V(prober).data();
  for (std::size_t k = start; k < end; ++k) {
    const auto& reply = std::get<RttProbeReply>(batch.items[k].message);
    if (reply.u.size() != r || reply.v.size() != r) {
      throw std::invalid_argument(
          "DeploymentEngine: RttProbeReply coordinate rank mismatch");
    }
    const double x = MeasurementFor(prober, reply.target, std::nullopt);
    RecordNeighborLoss(prober, reply.target, x, reply.v);
    CompiledRttStep(kernels, config_.params, x, reply.u.data(), reply.v.data(),
                    u_row, v_row, r);
    CountMeasurementAt(prober);
    ResolveExchangeAt(prober);
  }
  MarkDirty(prober);
  return end;
}

std::size_t DeploymentEngine::CompileAbwReplies(const MessageBatch& batch,
                                                std::size_t start) {
  const std::size_t end =
      RunEnd<AbwProbeReply>(batch, start, batch.items.size());
  const NodeId prober = batch.to;
  const std::size_t r = config_.rank;
  // HandleAbwReply's arithmetic and bookkeeping (the target already
  // consumed the measurement when it replied — no CountMeasurementAt).
  const linalg::KernelOps& kernels = linalg::ActiveKernels();
  double* u_row = store_.U(prober).data();
  for (std::size_t k = start; k < end; ++k) {
    const auto& reply = std::get<AbwProbeReply>(batch.items[k].message);
    if (reply.v.size() != r) {
      throw std::invalid_argument(
          "DeploymentEngine: AbwProbeReply coordinate rank mismatch");
    }
    RecordNeighborLoss(prober, reply.target, reply.measurement, reply.v);
    CompiledAbwProberStep(kernels, config_.params, reply.measurement,
                          reply.v.data(), u_row, r);  // eq. 12
    ResolveExchangeAt(prober);
  }
  MarkDirty(prober);
  return end;
}

void DeploymentEngine::OnMessage(NodeId from, NodeId to,
                                 const ProtocolMessage& message) {
  std::visit(
      [&](const auto& typed) {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, RttProbeRequest>) {
          HandleRttRequest(from, to);
        } else if constexpr (std::is_same_v<T, RttProbeReply>) {
          HandleRttReply(to, typed);
        } else if constexpr (std::is_same_v<T, AbwProbeRequest>) {
          HandleAbwRequest(to, typed);
        } else {
          HandleAbwReply(to, typed);
        }
      },
      message);
}

void DeploymentEngine::ResolveExchange() {
  // Saturating: a duplicated or unsolicited reply (possible over datagram
  // transports) must not wrap the counter.
  if (in_flight_ > 0) {
    --in_flight_;
  }
}

void DeploymentEngine::HandleRttRequest(NodeId prober, NodeId target) {
  // Leg 2: the reply carrying (u_j, v_j) — a snapshot taken now, stale by
  // one flight time when the prober consumes it.  The roll and any counter
  // bumps belong to the target, whose handler this is.
  if (LegLostFor(target)) {
    ResolveExchangeAt(target);
    return;
  }
  channel_->Send(target, prober,
                 RttProbeReply{target, nodes_[target].UCopy(),
                               nodes_[target].VCopy()});
}

void DeploymentEngine::HandleRttReply(NodeId prober, const RttProbeReply& reply) {
  // Its timing gives the prober x_ij (or the trace record supplies it —
  // never during a sharded drain, whose StartExchange rejects overrides).
  const double x = MeasurementFor(
      prober, reply.target, sharded_drain_ ? std::nullopt : trace_observed_);
  if (!sharded_drain_) {
    trace_observed_consumed_ = trace_observed_.has_value();
  }
  RecordNeighborLoss(prober, reply.target, x, reply.v);
  nodes_[prober].RttUpdate(x, reply.u, reply.v, config_.params);
  MarkDirty(prober);
  CountMeasurementAt(prober);
  ResolveExchangeAt(prober);
}

void DeploymentEngine::HandleAbwRequest(NodeId target,
                                        const AbwProbeRequest& request) {
  // The target infers x_ij, replies with its pre-update v_j (Algorithm 2
  // sends before updating), then updates v_j — the measurement is consumed
  // at the target even if the reply later gets lost.
  const double x = MeasurementFor(request.prober, target, std::nullopt);
  AbwProbeReply reply{target, x, nodes_[target].VCopy()};
  nodes_[target].AbwTargetUpdate(x, request.u, config_.params);
  MarkDirty(target);
  CountMeasurementAt(target);

  // Leg 2: the reply back to the prober.
  if (LegLostFor(target)) {
    ResolveExchangeAt(target);
    return;
  }
  channel_->Send(target, request.prober, std::move(reply));
}

void DeploymentEngine::HandleAbwReply(NodeId prober, const AbwProbeReply& reply) {
  RecordNeighborLoss(prober, reply.target, reply.measurement, reply.v);
  nodes_[prober].AbwProberUpdate(reply.measurement, reply.v, config_.params);
  MarkDirty(prober);
  ResolveExchangeAt(prober);
}

}  // namespace dmfsgd::core
