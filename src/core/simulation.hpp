// Decentralized DMFSGD deployment simulator (paper §5.3 and §6.1).
//
// Simulates a network of DmfsgdNodes running Algorithm 1 (RTT) or
// Algorithm 2 (ABW) against a dataset:
//
//  * every node independently picks a random neighbor set of k nodes
//    (Vivaldi-style architecture);
//  * static datasets (Meridian, HP-S3) are driven in rounds — per round each
//    node probes one uniformly chosen neighbor, so after R rounds the
//    average measurement count per node is R (the x-axis of Figure 5(c) in
//    units of k is R/k);
//  * the dynamic Harvard trace is replayed in timestamp order; a record
//    (src, dst) is usable only if dst is in src's neighbor set, which yields
//    the uneven per-node measurement counts of the paper's footnote 4.
//
// The simulator moves actual protocol messages (core/messages.hpp) between
// nodes; with `use_wire_format` every exchange is serialized through the
// binary wire codec and decoded on the receiving side, proving the protocol
// is implementable over a datagram transport.  Message loss models lossy
// networks: each protocol leg is dropped independently, and a lost leg
// loses exactly the updates a real deployment would lose (e.g. an ABW
// target still updates v_j even when its reply to the prober is lost).
//
// In classification mode the measurement fed to the update rules is the
// binary class of the probed pair (optionally corrupted by an
// ErrorInjector); in regression mode it is the quantity divided by τ — a
// scale normalization that keeps SGD stable across metrics whose raw values
// span orders of magnitude (documented substitution, DESIGN.md §3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/error_injection.hpp"
#include "core/node.hpp"
#include "datasets/dataset.hpp"

namespace dmfsgd::core {

enum class PredictionMode {
  kClassification,  ///< train on ±1 labels (hinge/logistic)
  kRegression,      ///< train on τ-normalized quantities (L2)
};

/// How a node picks which neighbor to probe next (the paper uses uniform
/// random; the alternatives are extensions inspired by the active sampling
/// of Rish & Tesauro [20] that the related-work section contrasts against).
enum class ProbeStrategy {
  kUniformRandom,  ///< paper default: uniform over the neighbor set
  kRoundRobin,     ///< deterministic cycling through the neighbor set
  kLossDriven,     ///< mostly probe the neighbor with the highest local loss
};

/// Human-readable strategy name.
[[nodiscard]] const char* ProbeStrategyName(ProbeStrategy strategy) noexcept;

struct SimulationConfig {
  std::size_t rank = 10;           ///< r
  UpdateParams params;             ///< η, λ, loss
  PredictionMode mode = PredictionMode::kClassification;
  std::size_t neighbor_count = 10; ///< k
  double tau = 0.0;                ///< classification threshold (quantity units)
  std::uint64_t seed = 1;
  double message_loss = 0.0;       ///< per-leg drop probability in [0, 1)
  bool use_wire_format = false;    ///< serialize every exchange through wire.hpp
  ProbeStrategy strategy = ProbeStrategy::kUniformRandom;
  /// Per-round probability that a node churns (leaves and is replaced by a
  /// fresh node with new random coordinates and a new neighbor set) — the
  /// P2P membership dynamics a deployed system faces.
  double churn_rate = 0.0;
  /// Exploration probability of the loss-driven strategy.
  double exploration = 0.3;
};

class DmfsgdSimulation {
 public:
  /// Builds the deployment: nodes with random coordinates and random
  /// neighbor sets (only pairs with known ground truth are eligible).
  /// `injector`, if given, must outlive the simulation and is consulted for
  /// every classification measurement.
  DmfsgdSimulation(const datasets::Dataset& dataset, const SimulationConfig& config,
                   const ErrorInjector* injector = nullptr);

  /// Runs `rounds` probing rounds (static datasets); in each round every
  /// node probes one random neighbor.  Usable with trace datasets too (the
  /// static median matrix is then the measurement source).
  void RunRounds(std::size_t rounds);

  /// Replays trace records [begin, end) in time order; returns the number of
  /// records that were usable (dst in src's neighbor set) and applied.
  /// Throws std::logic_error if the dataset has no trace.
  std::size_t ReplayTrace(std::size_t begin, std::size_t end);

  /// Replays the whole trace.
  std::size_t ReplayTrace();

  /// x̂_ij = u_i · v_j.
  [[nodiscard]] double Predict(std::size_t i, std::size_t j) const;

  /// Total measurements applied (lost exchanges don't count).
  [[nodiscard]] std::size_t MeasurementCount() const noexcept {
    return measurement_count_;
  }

  /// MeasurementCount() / node count — the x-axis of Figure 5(c).
  [[nodiscard]] double AverageMeasurementsPerNode() const noexcept;

  /// Protocol legs dropped by the loss model.
  [[nodiscard]] std::size_t DroppedLegs() const noexcept { return dropped_legs_; }

  [[nodiscard]] const datasets::Dataset& dataset() const noexcept { return *dataset_; }
  [[nodiscard]] const SimulationConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t NodeCount() const noexcept { return nodes_.size(); }
  [[nodiscard]] const DmfsgdNode& node(std::size_t i) const;

  /// Neighbor sets (sorted); index = node id.
  [[nodiscard]] const std::vector<std::vector<NodeId>>& Neighbors() const noexcept {
    return neighbors_;
  }

  /// True if j is in i's neighbor set (i.e. (i, j) is a training pair).
  [[nodiscard]] bool IsNeighborPair(std::size_t i, std::size_t j) const;

  /// Simulates node i leaving and a fresh node joining in its place: new
  /// random coordinates, a new random neighbor set, reset probing state.
  void ResetNode(NodeId i);

  /// Total nodes churned so far (by churn_rate or explicit ResetNode).
  [[nodiscard]] std::size_t ChurnCount() const noexcept { return churn_count_; }

 private:
  /// Picks the neighbor node i probes this round, per the configured
  /// strategy.
  [[nodiscard]] NodeId PickNeighbor(NodeId i);

  void RebuildNeighborSet(NodeId i);
  /// One full Algorithm-1 exchange i -> j.  `observed_quantity` overrides
  /// the static matrix during trace replay.
  void RttProbe(NodeId i, NodeId j, std::optional<double> observed_quantity);
  /// One full Algorithm-2 exchange i -> j.
  void AbwProbe(NodeId i, NodeId j);

  /// The training value for pair (i, j): class label (possibly corrupted) or
  /// τ-normalized quantity.
  [[nodiscard]] double MeasurementFor(std::size_t i, std::size_t j,
                                      std::optional<double> observed_quantity) const;

  [[nodiscard]] bool LegLost();

  const datasets::Dataset* dataset_;
  SimulationConfig config_;
  const ErrorInjector* injector_;
  common::Rng rng_;
  std::vector<DmfsgdNode> nodes_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<std::size_t> round_robin_cursor_;       // per node
  std::vector<std::vector<double>> neighbor_loss_;    // per node, per neighbor
  std::size_t measurement_count_ = 0;
  std::size_t dropped_legs_ = 0;
  std::size_t churn_count_ = 0;
};

}  // namespace dmfsgd::core
