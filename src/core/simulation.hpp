// Round-based DMFSGD deployment driver (paper §5.3 and §6.1).
//
// A thin timing loop over the shared deployment core (core/engine.hpp):
//
//  * static datasets (Meridian, HP-S3) are driven in rounds — per round each
//    node probes one neighbor chosen by the configured strategy, so after R
//    rounds the average measurement count per node is R (the x-axis of
//    Figure 5(c) in units of k is R/k);
//  * the dynamic Harvard trace is replayed in timestamp order; a record
//    (src, dst) is usable only if dst is in src's neighbor set, which yields
//    the uneven per-node measurement counts of the paper's footnote 4.
//
// Exchanges are delivered atomically through an ImmediateDeliveryChannel;
// with `use_wire_format` every message additionally round-trips through the
// binary wire codec (a WireCodecDeliveryChannel decorator), proving the
// protocol is implementable over a datagram transport.  All protocol,
// membership, measurement and loss semantics live in the engine and are
// shared verbatim with the asynchronous driver (async_simulation.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/engine.hpp"

namespace dmfsgd::core {

class DmfsgdSimulation {
 public:
  /// Builds the deployment: nodes with random coordinates and random
  /// neighbor sets (only pairs with known ground truth are eligible).
  /// `injector`, if given, must outlive the simulation and is consulted for
  /// every classification measurement.
  DmfsgdSimulation(const datasets::Dataset& dataset, const SimulationConfig& config,
                   const ErrorInjector* injector = nullptr);

  /// Runs `rounds` probing rounds (static datasets); in each round every
  /// node probes one neighbor.  Usable with trace datasets too (the static
  /// median matrix is then the measurement source).
  void RunRounds(std::size_t rounds);

  /// Runs `rounds` probing rounds with each round's per-node sweep spread
  /// over `pool`.  Bit-identical for every pool size — see
  /// DeploymentEngine::ParallelRoundSweep for the exact semantics: per-node
  /// RNG streams and start-of-round reply snapshots (Algorithm 1), or the
  /// target-disjoint phase schedule of DESIGN.md §8 (Algorithm 2).
  void RunRoundsParallel(std::size_t rounds, common::ThreadPool& pool);

  /// Runs `rounds` probing rounds through the sparse round compiler
  /// (DESIGN.md §14): each round is gathered into row-major COO and
  /// executed as one fused sweep.  Bit-identical to RunRounds under the
  /// scalar kernel table — see DeploymentEngine::CompiledRoundSweep.
  /// Requires probe_burst == 1.
  void RunRoundsCompiled(std::size_t rounds);

  /// Replays trace records [begin, end) in time order; returns the number of
  /// records that were usable (dst in src's neighbor set) and applied.
  /// Throws std::logic_error if the dataset has no trace.
  std::size_t ReplayTrace(std::size_t begin, std::size_t end);

  /// Replays the whole trace.
  std::size_t ReplayTrace();

  // -- push ingest (the resident service's front door, DESIGN.md §17) ------

  /// Launches one exchange i -> j through the channel stack — a single
  /// pushed measurement instead of a whole round.  `observed_quantity`
  /// overrides the dataset matrix (a caller-supplied live measurement); it
  /// requires per-message delivery, exactly like trace replay.  Returns
  /// whether a measurement was applied (a lost leg loses it, as always).
  bool Ingest(NodeId i, NodeId j, std::optional<double> observed_quantity);

  /// Push-ingest with the engine picking i's next target per the configured
  /// probe strategy (the active-probing unit of a resident node).  Returns
  /// the chosen target.
  NodeId IngestProbe(NodeId i);

  /// Overwrites every coordinate row from `snapshot` — the service's warm
  /// restart (see DeploymentEngine::RestoreCoordinates for the exact
  /// semantics).  Throws std::invalid_argument on a shape mismatch.
  void RestoreCoordinates(const CoordinateStore& snapshot) {
    engine_.RestoreCoordinates(snapshot);
  }

  /// x̂_ij = u_i · v_j.
  [[nodiscard]] double Predict(std::size_t i, std::size_t j) const {
    return engine_.Predict(i, j);
  }

  /// Total measurements applied (lost exchanges don't count).
  [[nodiscard]] std::size_t MeasurementCount() const noexcept {
    return engine_.MeasurementCount();
  }

  /// MeasurementCount() / node count — the x-axis of Figure 5(c).
  [[nodiscard]] double AverageMeasurementsPerNode() const noexcept {
    return engine_.AverageMeasurementsPerNode();
  }

  /// Protocol legs dropped by the loss model.
  [[nodiscard]] std::size_t DroppedLegs() const noexcept {
    return engine_.DroppedLegs();
  }

  [[nodiscard]] const datasets::Dataset& dataset() const noexcept {
    return engine_.dataset();
  }
  [[nodiscard]] const SimulationConfig& config() const noexcept {
    return engine_.config();
  }
  [[nodiscard]] std::size_t NodeCount() const noexcept {
    return engine_.NodeCount();
  }
  [[nodiscard]] const DmfsgdNode& node(std::size_t i) const {
    return engine_.node(i);
  }

  /// Neighbor sets (sorted); index = node id.
  [[nodiscard]] const std::vector<std::vector<NodeId>>& Neighbors() const noexcept {
    return engine_.Neighbors();
  }

  /// True if j is in i's neighbor set (i.e. (i, j) is a training pair).
  [[nodiscard]] bool IsNeighborPair(std::size_t i, std::size_t j) const {
    return engine_.IsNeighborPair(i, j);
  }

  /// Simulates node i leaving and a fresh node joining in its place: new
  /// random coordinates, a new random neighbor set, reset probing state.
  void ResetNode(NodeId i) { engine_.ResetNode(i); }

  /// Total nodes churned so far (by churn_rate or explicit ResetNode).
  [[nodiscard]] std::size_t ChurnCount() const noexcept {
    return engine_.ChurnCount();
  }

  /// Coordinate drift tracking for the ANN query plane (DESIGN.md §16):
  /// enable before building a PeerIndex over store(), then drain the dirty
  /// set after each training slice and feed it to PeerIndex::ApplyUpdates.
  void EnableDriftTracking() { engine_.EnableDriftTracking(); }
  [[nodiscard]] std::vector<NodeId> TakeDirtyNodes() {
    return engine_.TakeDirtyNodes();
  }

  /// The shared deployment core (read access for snapshots and evaluation).
  [[nodiscard]] const DeploymentEngine& engine() const noexcept { return engine_; }

 private:
  [[nodiscard]] DeliveryChannel& BuildStack(const SimulationConfig& config);

  /// Channel stack: immediate delivery, optionally decorated by the wire
  /// codec, optionally wrapped outermost by the coalescing decorator
  /// (config.coalesce_delivery — RunRounds then flushes each node's probe
  /// burst as batch envelopes, DESIGN.md §13).  Declared before the engine,
  /// which binds its sink onto them.
  ImmediateDeliveryChannel immediate_;
  std::optional<WireCodecDeliveryChannel> wire_;
  std::optional<CoalescingDeliveryChannel> coalescing_;
  DeploymentEngine engine_;
};

}  // namespace dmfsgd::core
