#include "core/multiprocess.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"
#include "netsim/shard_runtime.hpp"

namespace dmfsgd::core {

namespace {

// Result-fold frame types; disjoint from the ShardRuntime window protocol
// (types 1-2), which parks them in its leftover buffer when they race ahead.
constexpr std::uint8_t kFrameNodeRows = 16;
constexpr std::uint8_t kFrameRunStats = 17;

constexpr int kResultPollMs = 50;
constexpr double kResultStallTimeoutS = 60.0;

/// Per-peer gather state of the coordinator's result fold.
struct PeerFold {
  netsim::ChunkAssembler rows;
  bool stats_received = false;

  [[nodiscard]] bool Complete() const {
    return stats_received && rows.Complete();
  }
};

void SendOwnedRows(netsim::InterShardChannel& channel,
                   const MultiprocessRunReport& report) {
  // Rows chunked so each frame stays under the channel's budget (which a
  // reliability decorator shrinks by its header).
  const std::size_t row_bytes = 8 + 2 * report.rank * sizeof(double);
  const std::size_t rows_per_chunk =
      std::max<std::size_t>(1, (channel.MaxFrameBytes() - 64) / row_bytes);
  const std::size_t owned =
      static_cast<std::size_t>(report.owned_end - report.owned_begin);
  const std::size_t chunk_count = std::max<std::size_t>(
      1, (owned + rows_per_chunk - 1) / rows_per_chunk);
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t first = report.owned_begin + c * rows_per_chunk;
    const std::size_t last =
        std::min<std::size_t>(first + rows_per_chunk, report.owned_end);
    netsim::FrameWriter writer;
    writer.U8(kFrameNodeRows);
    writer.U32(static_cast<std::uint32_t>(c));
    writer.U8(c + 1 == chunk_count ? 1 : 0);
    writer.U32(static_cast<std::uint32_t>(last - first));
    for (std::size_t i = first; i < last; ++i) {
      writer.U32(static_cast<std::uint32_t>(i));
      for (std::size_t d = 0; d < report.rank; ++d) {
        writer.F64(report.u[i * report.rank + d]);
      }
      for (std::size_t d = 0; d < report.rank; ++d) {
        writer.F64(report.v[i * report.rank + d]);
      }
    }
    channel.Send(0, writer.Take());
  }
  netsim::FrameWriter stats;
  stats.U8(kFrameRunStats);
  stats.U64(report.events_executed);
  stats.U64(report.measurements);
  stats.U64(report.dropped_legs);
  stats.U64(report.churns);
  channel.Send(0, stats.Take());
}

void GatherPeerResults(netsim::InterShardChannel& channel,
                       std::vector<netsim::InterShardFrame> leftovers,
                       MultiprocessRunReport& report) {
  std::vector<PeerFold> folds(channel.ProcessCount());
  const auto stall_timeout =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(kResultStallTimeoutS));
  auto deadline = std::chrono::steady_clock::now() + stall_timeout;
  std::uint64_t liveness = channel.LivenessEpoch();
  std::vector<std::uint64_t> frames_received_from(channel.ProcessCount(), 0);
  auto all_complete = [&] {
    for (std::size_t p = 1; p < folds.size(); ++p) {
      if (!folds[p].Complete()) {
        return false;
      }
    }
    return true;
  };
  auto handle = [&](const netsim::InterShardFrame& frame) {
    netsim::FrameReader reader(frame.bytes);
    const std::uint8_t type = reader.U8();
    PeerFold& fold = folds.at(frame.from_process);
    if (type == kFrameRunStats) {
      if (fold.stats_received) {
        return;  // duplicated datagram
      }
      fold.stats_received = true;
      report.events_executed += reader.U64();
      report.measurements += reader.U64();
      report.dropped_legs += reader.U64();
      report.churns += reader.U64();
      return;
    }
    if (type != kFrameNodeRows) {
      // A duplicated datagram of a peer's final-window proposal or event
      // chunk can straggle in after RunUntil consumed the original — the
      // same duplicates the window protocol itself tolerates.  Drop them.
      return;
    }
    const std::uint32_t chunk = reader.U32();
    const bool is_last = reader.U8() != 0;
    const std::uint32_t rows = reader.U32();
    if (!fold.rows.Mark(chunk, is_last)) {
      return;  // duplicated datagram
    }
    for (std::uint32_t r = 0; r < rows; ++r) {
      const std::uint32_t node = reader.U32();
      if (node >= report.node_count) {
        throw std::logic_error(
            "RunMultiprocessAsyncSimulation: peer sent an out-of-range node");
      }
      for (std::size_t d = 0; d < report.rank; ++d) {
        report.u[node * report.rank + d] = reader.F64();
      }
      for (std::size_t d = 0; d < report.rank; ++d) {
        report.v[node * report.rank + d] = reader.F64();
      }
    }
  };
  for (const auto& frame : leftovers) {
    handle(frame);
  }
  while (!all_complete()) {
    auto frame = channel.Receive(kResultPollMs);
    if (frame.has_value()) {
      ++frames_received_from[frame->from_process];
      handle(*frame);
      continue;
    }
    // Mirror ShardRuntime's liveness handling: ack progress under
    // retransmission re-arms the deadline, so a slow-but-alive peer's fold
    // is awaited rather than declared dead.
    const std::uint64_t epoch = channel.LivenessEpoch();
    if (epoch != liveness) {
      liveness = epoch;
      deadline = std::chrono::steady_clock::now() + stall_timeout;
      continue;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw netsim::StallError(report.windows, "result-fold",
                               std::move(frames_received_from),
                               channel.Diagnostics());
    }
  }
}

}  // namespace

MultiprocessRunReport RunMultiprocessAsyncSimulation(
    const datasets::Dataset& dataset, const AsyncSimulationConfig& config,
    netsim::InterShardChannel& channel, double until_s, common::ThreadPool& pool,
    const netsim::ShardRuntimeOptions& runtime_options) {
  if (config.shard_count == 0) {
    throw std::invalid_argument(
        "RunMultiprocessAsyncSimulation: shard_count must be explicit (a "
        "hardware-resolved count would differ across hosts)");
  }
  if (config.shard_count < channel.ProcessCount()) {
    throw std::invalid_argument(
        "RunMultiprocessAsyncSimulation: need at least one shard per process");
  }

  // Identical deterministic construction in every process; the runtime then
  // narrows this process to its owned shard range.
  AsyncDmfsgdSimulation simulation(dataset, config);
  netsim::ShardedEventQueue& events = simulation.MutableEvents();
  ShardedEventQueueDeliveryChannel& delivery = simulation.ShardedChannel();
  netsim::ShardRuntime runtime(
      events, channel, simulation.PairLookaheads(),
      [&delivery](netsim::ShardedEventQueue::OwnerId owner,
                  std::vector<std::byte> payload) {
        return delivery.DecodeEnvelopeCallback(owner, std::move(payload));
      },
      runtime_options);
  if (config.base.coalesce_delivery) {
    // Same-destination same-time cross-process *replies* ship as one batch
    // envelope (DESIGN.md §13; request groups are declined — their handlers
    // emit).  Every process derives this from the shared config, so the
    // fleet agrees on event counts.
    runtime.SetRemoteEventMerger(
        &ShardedEventQueueDeliveryChannel::MergeEnvelopesIfReplies);
  }
  simulation.RunUntilDistributed(until_s, pool, runtime);

  MultiprocessRunReport report;
  report.process_index = channel.ProcessIndex();
  report.process_count = channel.ProcessCount();
  report.coordinator = channel.ProcessIndex() == 0;
  report.node_count = simulation.NodeCount();
  report.rank = simulation.config().rank;
  report.owned_begin = events.OwnersOfShard(events.OwnedShardBegin()).first;
  report.owned_end = events.OwnersOfShard(events.OwnedShardEnd() - 1).second;
  const auto u = simulation.engine().store().UData();
  const auto v = simulation.engine().store().VData();
  report.u.assign(u.begin(), u.end());
  report.v.assign(v.begin(), v.end());
  report.windows = simulation.WindowsExecuted();
  report.frames_sent = runtime.FramesSent();
  report.events_executed = simulation.EventsExecuted();
  report.measurements = simulation.MeasurementCount();
  report.dropped_legs = simulation.DroppedLegs();
  report.churns = simulation.ChurnCount();

  auto snapshot_transport = [&] {
    const netsim::ChannelDiagnostics diagnostics = channel.Diagnostics();
    report.dropped_datagrams = diagnostics.dropped_datagrams;
    report.stray_datagrams = diagnostics.stray_datagrams;
    for (const netsim::PeerChannelStats& peer : diagnostics.peers) {
      report.retransmits += peer.retransmits;
      report.duplicates_suppressed += peer.duplicates_suppressed;
    }
  };
  if (channel.ProcessCount() == 1) {
    report.coordinator = true;
    snapshot_transport();
    return report;
  }
  if (!report.coordinator) {
    SendOwnedRows(channel, report);
    // A reliable channel services its retransmit timers inside Send/Receive,
    // so exiting right after the last Send would strand any dropped row
    // frame; drain until the coordinator acked everything (no-op on plain
    // backends).  Bounded well under the stall timeout: if the final ack
    // never comes the data still arrived, and waiting longer buys nothing.
    (void)channel.Flush(10'000);
    snapshot_transport();
    return report;
  }
  GatherPeerResults(channel, runtime.TakeLeftoverFrames(), report);
  // Push out the delayed acks for the peers' final frames, then linger
  // briefly to re-ack any retransmission whose ack the network dropped —
  // otherwise a peer's Flush retransmits into the void until its timeout.
  (void)channel.Flush(1000);
  (void)channel.Receive(300);
  snapshot_transport();
  return report;
}

}  // namespace dmfsgd::core
