#include "core/round_compiler.hpp"

#include <stdexcept>

namespace dmfsgd::core {

void RoundCoo::GroupByTarget(std::size_t node_count) {
  // Stable counting sort by target row: count, prefix-sum into group
  // boundaries, scatter in gather order (which preserves the ascending
  // message order within every group — the §14 ordering invariant).
  offsets_.assign(node_count + 1, 0);
  for (const RoundEdge& edge : edges_) {
    if (edge.target >= node_count) {
      throw std::out_of_range("RoundCoo::GroupByTarget: target out of range");
    }
    ++offsets_[edge.target + 1];
  }
  for (std::size_t t = 0; t < node_count; ++t) {
    offsets_[t + 1] += offsets_[t];
  }
  grouped_.resize(edges_.size());
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t e = 0; e < edges_.size(); ++e) {
    grouped_[cursor_[edges_[e].target]++] = e;
  }
}

}  // namespace dmfsgd::core
