// Asynchronous (event-driven) DMFSGD deployment driver.
//
// The round-based driver executes each probe exchange atomically; a real
// deployment does not: the request flies for one one-way delay, the reply
// for another, nodes keep probing while earlier exchanges are in flight, and
// every coordinate vector a node receives is a *snapshot taken at send
// time* — stale by the time it is consumed.  This driver runs the shared
// deployment core (core/engine.hpp) over an EventQueueDeliveryChannel to
// demonstrate (and let tests verify) that DMFSGD's convergence survives that
// asynchrony, which is what makes the paper's "fully decentralized,
// large-scale" claim credible.
//
// Because the protocol lives in the engine, everything the synchronous
// driver supports — probe strategies, churn, error injection, message loss,
// the wire codec — works identically here:
//
//  * each node fires probes according to an independent Poisson process
//    (exponential think time with the configured mean); churn is rolled per
//    probe firing, the async analogue of the per-round sweep; a firing
//    launches base.probe_burst exchanges (one membership roll covers the
//    burst), and with base.coalesce_delivery the channel merges the burst's
//    same-arrival replies into one batch envelope (DESIGN.md §13);
//  * one-way message delay for pair (i, j) is the ground-truth RTT / 2 for
//    RTT datasets; ABW datasets carry no delay information, so a symmetric
//    per-pair delay is derived deterministically from a pair-keyed hash in
//    the configured range;
//  * each protocol leg can be lost independently (message_loss), with
//    engine semantics shared verbatim with the synchronous driver.
//
// The event queue is partitioned by owner node (netsim::ShardedEventQueue):
// every event — a node's probe timer, a message delivery — runs in the shard
// of the node whose handler it is.  RunUntil drains the shards through a
// deterministic cross-shard merge (identical, event for event, to the old
// single queue), and RunUntilParallel drains them concurrently in
// conservative windows bounded by the minimum one-way delay, with every
// node's randomness moved onto its private RNG stream (DESIGN.md §9).  The
// parallel drain is bit-identical for every pool size at a fixed shard
// count; its trajectory differs from the sequential drain (per-node vs
// shared RNG streams), exactly as the round driver's parallel sweep differs
// from its sequential rounds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "netsim/event_queue.hpp"

namespace dmfsgd::netsim {
class ShardRuntime;
}

namespace dmfsgd::core {

struct AsyncSimulationConfig {
  SimulationConfig base;              ///< rank, η/λ/loss, k, τ, seed, loss rate,
                                      ///< strategy, churn, wire format
  double mean_probe_interval_s = 1.0; ///< mean think time between a node's probes
  /// One-way delay bounds for metrics that don't define a delay (ABW).
  double min_oneway_delay_s = 0.010;
  double max_oneway_delay_s = 0.100;
  /// Event-queue shards (owner-node partitions).  The default of 1 keeps
  /// the sequential RunUntil at the single-heap cost and host-independent
  /// (the cross-shard merge scans one heap top per shard per event); set it
  /// to ~hardware concurrency — or 0, which resolves to exactly that — to
  /// give RunUntilParallel shards to drain concurrently.  The sequential
  /// RunUntil is shard-count-invariant; the parallel drain is bit-identical
  /// across pool sizes for a fixed value.
  std::size_t shard_count = 1;
  /// Bound parallel-drain windows with the per-shard-pair lookahead matrix
  /// (the minimum one-way delay between each pair of owner blocks,
  /// DESIGN.md §12) instead of the single global minimum.  Wider windows on
  /// heterogeneous delay spaces; the drain trajectory is bit-identical
  /// either way (windowing only reorders across shards, never within one).
  bool use_pair_lookaheads = true;
};

class AsyncDmfsgdSimulation {
 public:
  AsyncDmfsgdSimulation(const datasets::Dataset& dataset,
                        const AsyncSimulationConfig& config,
                        const ErrorInjector* injector = nullptr);

  /// Advances simulated time to `until_s`, executing all probe traffic due.
  void RunUntil(double until_s);

  /// Advances simulated time to `until_s` with the event shards drained
  /// concurrently over `pool`, in conservative windows bounded by the
  /// deployment's minimum one-way delay.  While draining, every node draws
  /// its randomness (think times, churn, neighbor choice, leg loss) from its
  /// private engine stream and all counters accumulate per node, so the
  /// result is bit-identical for every pool size (including 1) at a fixed
  /// shard_count.  May be freely interleaved with RunUntil; the two modes
  /// advance different RNG streams, so a run's trajectory is a deterministic
  /// function of the seed and the exact call sequence.
  void RunUntilParallel(double until_s, common::ThreadPool& pool);

  /// x̂_ij = u_i · v_j with the current (live) coordinates.
  [[nodiscard]] double Predict(std::size_t i, std::size_t j) const {
    return engine_.Predict(i, j);
  }

  [[nodiscard]] double Now() const noexcept { return events_.Now(); }
  /// Total events executed (probe timers + message deliveries).
  [[nodiscard]] std::uint64_t EventsExecuted() const noexcept {
    return events_.Executed();
  }
  /// Owner-node partitions of the event queue.
  [[nodiscard]] std::size_t ShardCount() const noexcept {
    return events_.ShardCount();
  }
  /// The conservative-window bound of RunUntilParallel: the deployment's
  /// minimum one-way delay.
  [[nodiscard]] double LookaheadSeconds() const noexcept { return lookahead_s_; }
  /// The per-shard-pair lookahead matrix the parallel and distributed drains
  /// window with (DESIGN.md §12): cell (a, b) is the minimum one-way delay
  /// from any owner in shard a's block to any owner in shard b's block
  /// (+infinity when no measurable pair connects the blocks), or uniformly
  /// LookaheadSeconds() when use_pair_lookaheads is off.  Built lazily on
  /// first use — an O(n²) scan — and cached.
  [[nodiscard]] const netsim::LookaheadMatrix& PairLookaheads();
  /// Conservative windows executed by the parallel/distributed drains.
  [[nodiscard]] std::uint64_t WindowsExecuted() const noexcept {
    return events_.WindowsExecuted();
  }
  [[nodiscard]] std::size_t MeasurementCount() const noexcept {
    return engine_.MeasurementCount();
  }
  [[nodiscard]] double AverageMeasurementsPerNode() const noexcept {
    return engine_.AverageMeasurementsPerNode();
  }
  [[nodiscard]] std::size_t DroppedLegs() const noexcept {
    return engine_.DroppedLegs();
  }
  /// Exchanges currently in flight (sent, not yet fully resolved).
  [[nodiscard]] std::size_t InFlight() const noexcept {
    return engine_.InFlight();
  }
  /// Nodes churned so far (per-probe churn rolls).
  [[nodiscard]] std::size_t ChurnCount() const noexcept {
    return engine_.ChurnCount();
  }
  [[nodiscard]] std::size_t NodeCount() const noexcept {
    return engine_.NodeCount();
  }
  [[nodiscard]] const std::vector<std::vector<NodeId>>& Neighbors() const noexcept {
    return engine_.Neighbors();
  }
  [[nodiscard]] bool IsNeighborPair(std::size_t i, std::size_t j) const {
    return engine_.IsNeighborPair(i, j);
  }
  [[nodiscard]] const datasets::Dataset& dataset() const noexcept {
    return engine_.dataset();
  }
  [[nodiscard]] const SimulationConfig& config() const noexcept {
    return engine_.config();
  }
  [[nodiscard]] const DmfsgdNode& node(std::size_t i) const {
    return engine_.node(i);
  }

  /// The shared deployment core (read access for snapshots and evaluation).
  [[nodiscard]] const DeploymentEngine& engine() const noexcept { return engine_; }

  // -- multi-process drains (DESIGN.md §12) --------------------------------
  // Wiring points for core/multiprocess.hpp: the shard runtime needs the
  // queue (to own a shard range and exchange window barriers) and the
  // delivery channel (to decode cross-process envelopes).  Tests and
  // drivers must not mutate either outside that protocol.

  [[nodiscard]] netsim::ShardedEventQueue& MutableEvents() noexcept {
    return events_;
  }
  [[nodiscard]] ShardedEventQueueDeliveryChannel& ShardedChannel() noexcept {
    return delayed_;
  }

  /// Runs the distributed windowed drain under `runtime` (which owns this
  /// simulation's shard range assignment) in sharded-drain mode — the same
  /// per-node RNG/counter regime as RunUntilParallel, so a distributed run
  /// is bit-identical to a single-process parallel drain of the same seed
  /// and shard count.
  void RunUntilDistributed(double until_s, common::ThreadPool& pool,
                           netsim::ShardRuntime& runtime);

 private:
  void ScheduleNextProbe(NodeId i);
  void StartProbe(NodeId i);
  [[nodiscard]] double OneWayDelay(NodeId i, NodeId j) const;

  AsyncSimulationConfig config_;
  netsim::ShardedEventQueue events_;
  /// Channel stack: sharded event-queue delivery (messages run in their
  /// destination's shard), optionally decorated by the wire codec.  Declared
  /// before the engine, which binds its sink onto them.
  ShardedEventQueueDeliveryChannel delayed_;
  std::optional<WireCodecDeliveryChannel> wire_;
  DeploymentEngine engine_;
  std::uint64_t delay_seed_ = 0;
  double lookahead_s_ = 0.0;
  std::optional<netsim::LookaheadMatrix> pair_lookaheads_;  ///< lazy cache
};

}  // namespace dmfsgd::core
