// Asynchronous (event-driven) DMFSGD deployment.
//
// The round-based simulator executes each probe exchange atomically; a real
// deployment does not: the request flies for one one-way delay, the reply
// for another, nodes keep probing while earlier exchanges are in flight, and
// every coordinate vector a node receives is a *snapshot taken at send
// time* — stale by the time it is consumed.  This module runs Algorithms
// 1-2 on a discrete-event engine to demonstrate (and let tests verify) that
// DMFSGD's convergence survives that asynchrony, which is what makes the
// paper's "fully decentralized, large-scale" claim credible.
//
// Timing model:
//  * each node fires probes according to an independent Poisson process
//    (exponential think time with the configured mean);
//  * one-way message delay for pair (i, j) is the ground-truth RTT / 2 for
//    RTT datasets; ABW datasets carry no delay information, so a symmetric
//    per-pair delay is derived deterministically from a pair-keyed hash in
//    the configured range;
//  * each protocol leg can be lost independently (message_loss), with the
//    same semantics as the synchronous simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/node.hpp"
#include "core/simulation.hpp"
#include "datasets/dataset.hpp"
#include "netsim/event_queue.hpp"

namespace dmfsgd::core {

struct AsyncSimulationConfig {
  SimulationConfig base;              ///< rank, η/λ/loss, k, τ, seed, loss rate
  double mean_probe_interval_s = 1.0; ///< mean think time between a node's probes
  /// One-way delay bounds for metrics that don't define a delay (ABW).
  double min_oneway_delay_s = 0.010;
  double max_oneway_delay_s = 0.100;
};

class AsyncDmfsgdSimulation {
 public:
  AsyncDmfsgdSimulation(const datasets::Dataset& dataset,
                        const AsyncSimulationConfig& config,
                        const ErrorInjector* injector = nullptr);

  /// Advances simulated time to `until_s`, executing all probe traffic due.
  void RunUntil(double until_s);

  /// x̂_ij = u_i · v_j with the current (live) coordinates.
  [[nodiscard]] double Predict(std::size_t i, std::size_t j) const;

  [[nodiscard]] double Now() const noexcept { return events_.Now(); }
  [[nodiscard]] std::size_t MeasurementCount() const noexcept {
    return measurement_count_;
  }
  [[nodiscard]] double AverageMeasurementsPerNode() const noexcept;
  [[nodiscard]] std::size_t DroppedLegs() const noexcept { return dropped_legs_; }
  /// Exchanges currently in flight (sent, not yet fully resolved).
  [[nodiscard]] std::size_t InFlight() const noexcept { return in_flight_; }
  [[nodiscard]] std::size_t NodeCount() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::vector<std::vector<NodeId>>& Neighbors() const noexcept {
    return neighbors_;
  }
  [[nodiscard]] bool IsNeighborPair(std::size_t i, std::size_t j) const;
  [[nodiscard]] const datasets::Dataset& dataset() const noexcept {
    return *dataset_;
  }
  [[nodiscard]] const SimulationConfig& config() const noexcept {
    return config_.base;
  }

 private:
  void ScheduleNextProbe(NodeId i);
  void StartProbe(NodeId i);
  [[nodiscard]] double OneWayDelay(NodeId i, NodeId j) const;
  [[nodiscard]] double MeasurementFor(NodeId i, NodeId j) const;
  [[nodiscard]] bool LegLost();

  const datasets::Dataset* dataset_;
  AsyncSimulationConfig config_;
  const ErrorInjector* injector_;
  common::Rng rng_;
  netsim::EventQueue events_;
  std::vector<DmfsgdNode> nodes_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::uint64_t delay_seed_ = 0;
  std::size_t measurement_count_ = 0;
  std::size_t dropped_legs_ = 0;
  std::size_t in_flight_ = 0;
};

}  // namespace dmfsgd::core
