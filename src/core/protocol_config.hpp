// The protocol knobs every DMFSGD front end shares (DESIGN.md §17).
//
// Three entry points speak the same protocol — the round/async simulation
// drivers (SimulationConfig), the real-socket UDP peer (UdpPeerConfig) and
// the resident coordinate service (svc::ServiceConfig) — and before this
// header each carried its own copy of the shared knobs with its own,
// slightly drifting validation.  ProtocolConfig is the single source for
// those knobs: the other configs embed it (by inheritance, so existing
// field access is unchanged) and every constructor funnels through the one
// ValidateProtocolConfig below.  Front-end-specific knobs (membership size,
// loss model, node id, ...) stay in the embedding config and are validated
// where they are interpreted.
#pragma once

#include <cstdint>
#include <cstddef>

#include "core/node.hpp"

namespace dmfsgd::core {

struct ProtocolConfig {
  std::size_t rank = 10;  ///< r — factor rows u_i, v_i are length r
  UpdateParams params;    ///< η, λ, loss function
  /// Classification threshold in quantity units; also the regression
  /// normalizer (targets are quantity/τ, DESIGN.md §3) and the probing rate
  /// carried in ABW probe requests.  Must be > 0.
  double tau = 0.0;
  std::uint64_t seed = 1;

  // -- batched message plane (DESIGN.md §13/§14) ----------------------------

  /// Exchanges launched per probe slot (per round in the round driver, per
  /// Probe() call at the UDP peer).  Targets are picked independently with
  /// replacement.  Must be >= 1.
  std::size_t probe_burst = 1;

  /// Coalesce delivery into batch envelopes: the round driver flushes each
  /// node's burst through a CoalescingDeliveryChannel, the UDP peer packs a
  /// burst's same-target probes into one datagram.  Order-preserving.
  bool coalesce_delivery = false;

  /// Sparse round compiler (DESIGN.md §14): fused kernel execution with
  /// per-message update semantics (bit-identical under the scalar table).
  bool compile_rounds = false;
};

/// The one validation path for the shared knobs; every embedding config's
/// constructor calls it (engine, UDP peer, coordinate service).  `who` names
/// the front end in the error text.  Throws std::invalid_argument.
void ValidateProtocolConfig(const ProtocolConfig& config, const char* who);

}  // namespace dmfsgd::core
