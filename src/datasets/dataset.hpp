// Dataset value types.
//
// A Dataset bundles a ground-truth pairwise performance matrix with its
// metric semantics.  The three instances used throughout the reproduction
// mirror the paper's evaluation data (§6.1):
//
//   Harvard   226 nodes, dynamic application-level RTT (plus a replayable
//             timestamped trace; the static matrix holds per-pair medians)
//   Meridian  2500 nodes, static RTT
//   HP-S3     231 nodes, static ABW with ~4% missing entries
//
// Metric semantics matter for classification: for RTT *smaller* is better
// (good == rtt <= tau) while for ABW *larger* is better (good == abw >= tau).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace dmfsgd::datasets {

enum class Metric {
  kRtt,  ///< round-trip time, ms; lower is better; symmetric
  kAbw,  ///< available bandwidth, Mbps; higher is better; asymmetric
};

/// Human-readable metric name ("RTT" / "ABW").
[[nodiscard]] const char* MetricName(Metric metric) noexcept;

/// True if smaller metric values are better (RTT); false for ABW.
[[nodiscard]] bool LowerIsBetter(Metric metric) noexcept;

/// Binary class of a quantity under threshold tau: +1 good / -1 bad.
[[nodiscard]] int ClassOf(Metric metric, double quantity, double tau) noexcept;

/// One timestamped measurement (the Harvard trace format).
struct TraceRecord {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  double value = 0.0;        ///< observed quantity (ms or Mbps)
  double timestamp_s = 0.0;  ///< seconds since trace start, non-decreasing
};

/// A pairwise performance dataset.
struct Dataset {
  std::string name;
  Metric metric = Metric::kRtt;
  /// Ground-truth quantities; diagonal and unmeasured pairs are NaN.
  linalg::Matrix ground_truth;
  /// Optional dynamic trace (empty for static datasets), time-ordered.
  std::vector<TraceRecord> trace;

  [[nodiscard]] std::size_t NodeCount() const noexcept {
    return ground_truth.Rows();
  }

  /// True quantity of pair (i, j), NaN if unknown.
  [[nodiscard]] double Quantity(std::size_t i, std::size_t j) const {
    return ground_truth.At(i, j);
  }

  /// True if pair (i, j) has a known ground-truth quantity.
  [[nodiscard]] bool IsKnown(std::size_t i, std::size_t j) const {
    return !linalg::Matrix::IsMissing(ground_truth.At(i, j));
  }

  /// p-th percentile of known off-diagonal quantities (Table 1's tau rows).
  [[nodiscard]] double PercentileValue(double p) const;

  /// Median of known off-diagonal quantities (the paper's default tau).
  [[nodiscard]] double MedianValue() const;

  /// The tau that makes `portion_good` of the known pairs "good" — e.g. for
  /// RTT the portion-th percentile, for ABW the (1-portion)-th (Table 1).
  [[nodiscard]] double TauForGoodPortion(double portion_good) const;

  /// Ground-truth class matrix under tau (+1 / -1, NaN preserved).
  [[nodiscard]] linalg::Matrix ClassMatrix(double tau) const;

  /// Fraction of known off-diagonal pairs that are "good" under tau.
  [[nodiscard]] double GoodFraction(double tau) const;
};

/// Sanity checks: square matrix, NaN diagonal, symmetric iff RTT, positive
/// known entries, trace indices in range and timestamps sorted.  Throws
/// std::invalid_argument with a description of the first violation.
void ValidateDataset(const Dataset& dataset);

}  // namespace dmfsgd::datasets
