// Two-cluster RTT dataset: a deliberately *heterogeneous* delay space.
//
// Node ids are cluster-contiguous — the first half "metro" cluster, the
// second half across a slow long-haul link — so the event queue's
// contiguous block sharding aligns shard blocks with clusters.  Intra-
// cluster RTTs are fast, cross-cluster RTTs an order of magnitude slower:
// exactly the shape where the per-shard-pair lookahead matrix
// (DESIGN.md §12) widens conservative windows far beyond the global-minimum
// bound.  Shared by the window-gain bench scalar and the drain determinism
// tests so both measure the same topology.
#pragma once

#include <cstddef>
#include <cstdint>

#include "datasets/dataset.hpp"

namespace dmfsgd::datasets {

struct TwoClusterRttConfig {
  std::size_t node_count = 128;
  std::uint64_t seed = 29;
  /// Intra-cluster RTT range (ms) — metro-scale paths.
  double intra_min_ms = 10.0;
  double intra_max_ms = 30.0;
  /// Cross-cluster RTT range (ms) — long-haul paths.
  double cross_min_ms = 400.0;
  double cross_max_ms = 500.0;
};

/// Builds the two-cluster dataset (static, symmetric RTT, no trace).
/// Requires node_count >= 2 and 0 < min <= max for both ranges.
[[nodiscard]] Dataset MakeTwoClusterRtt(const TwoClusterRttConfig& config = {});

}  // namespace dmfsgd::datasets
