// Harvard-like dynamic RTT dataset (synthetic stand-in, DESIGN.md §3).
//
// The real Harvard dataset contains 2,492,546 timestamped application-level
// RTT measurements between 226 Azureus clients collected over 4 hours, with
// very uneven per-pair probing frequencies (passive measurement).  This
// generator reproduces that regime:
//
//  * 226 nodes in a clustered delay space (BitTorrent swarms skew toward
//    broadband consumer links, so access delays are larger than Meridian's);
//  * per-node AR(1) congestion + heavy-tailed spikes (application-level
//    noise: overlay scheduling, GC pauses, cross-traffic);
//  * a 4-hour trace whose pairs are drawn from a Zipf popularity law, giving
//    the uneven per-node measurement counts the paper's footnote 4 notes;
//  * the static ground truth is the per-pair *median* of the observation
//    process (the paper extracts medians of the measurement streams).
//
// To keep the default build fast the trace defaults to 500k records; pass
// `paper_scale = true` for the full 2.49M.  Both are statistically
// equivalent for the experiments (the algorithms converge within ~50k
// usable records).
#pragma once

#include <cstddef>
#include <cstdint>

#include "datasets/dataset.hpp"

namespace dmfsgd::datasets {

struct HarvardConfig {
  std::size_t node_count = 226;
  std::size_t trace_records = 500'000;
  /// If true, generates the paper-scale 2,492,546-record trace.
  bool paper_scale = false;
  double duration_s = 4.0 * 3600.0;
  double zipf_exponent = 0.9;  ///< pair-popularity skew
  std::uint64_t seed = 226;
};

/// Builds the synthetic Harvard dataset: dynamic trace + median ground truth.
[[nodiscard]] Dataset MakeHarvard(const HarvardConfig& config = {});

}  // namespace dmfsgd::datasets
