// Meridian-like static RTT dataset (synthetic stand-in, DESIGN.md §3).
//
// The real Meridian dataset holds static RTT measurements between 2500
// nodes; the paper also carves a 2255x2255 submatrix out of it for the
// Figure 1 rank study.  This generator produces a clustered geometric delay
// space of the same scale with symmetric RTTs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "datasets/dataset.hpp"

namespace dmfsgd::datasets {

struct MeridianConfig {
  std::size_t node_count = 2500;
  std::uint64_t seed = 2011;
};

/// Builds the synthetic Meridian dataset (static, symmetric RTT, no trace).
[[nodiscard]] Dataset MakeMeridian(const MeridianConfig& config = {});

}  // namespace dmfsgd::datasets
