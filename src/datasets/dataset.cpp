#include "datasets/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "linalg/low_rank.hpp"

namespace dmfsgd::datasets {

const char* MetricName(Metric metric) noexcept {
  switch (metric) {
    case Metric::kRtt:
      return "RTT";
    case Metric::kAbw:
      return "ABW";
  }
  return "?";
}

bool LowerIsBetter(Metric metric) noexcept { return metric == Metric::kRtt; }

int ClassOf(Metric metric, double quantity, double tau) noexcept {
  if (LowerIsBetter(metric)) {
    return quantity <= tau ? 1 : -1;
  }
  return quantity >= tau ? 1 : -1;
}

namespace {

// The percentile/class-matrix helpers scan the dense ground-truth matrix —
// meaningless (and, at bench scale, impossibly large) for a procedural
// dataset.  Callers on procedural data pick tau analytically or by sampling
// quantity_fn instead.
void RequireMaterialized(const Dataset& dataset, const char* what) {
  if (dataset.Procedural()) {
    throw std::logic_error(std::string(what) +
                           ": not available on a procedural dataset");
  }
}

}  // namespace

double Dataset::PercentileValue(double p) const {
  RequireMaterialized(*this, "Dataset::PercentileValue");
  const auto values = linalg::KnownOffDiagonal(ground_truth);
  return common::Percentile(values, p);
}

double Dataset::MedianValue() const { return PercentileValue(50.0); }

double Dataset::TauForGoodPortion(double portion_good) const {
  if (portion_good <= 0.0 || portion_good >= 1.0) {
    throw std::invalid_argument("TauForGoodPortion: portion must be in (0, 1)");
  }
  const double percentile =
      LowerIsBetter(metric) ? portion_good * 100.0 : (1.0 - portion_good) * 100.0;
  return PercentileValue(percentile);
}

linalg::Matrix Dataset::ClassMatrix(double tau) const {
  RequireMaterialized(*this, "Dataset::ClassMatrix");
  return linalg::ClassMatrix(ground_truth, tau, LowerIsBetter(metric));
}

double Dataset::GoodFraction(double tau) const {
  RequireMaterialized(*this, "Dataset::GoodFraction");
  const auto values = linalg::KnownOffDiagonal(ground_truth);
  if (values.empty()) {
    throw std::logic_error("GoodFraction: dataset has no known pairs");
  }
  std::size_t good = 0;
  for (const double v : values) {
    if (ClassOf(metric, v, tau) > 0) {
      ++good;
    }
  }
  return static_cast<double>(good) / static_cast<double>(values.size());
}

void ValidateDataset(const Dataset& dataset) {
  if (dataset.Procedural()) {
    // The full pairwise check would be O(n²) against a function — spot-check
    // the declared invariants on a deterministic sample of pairs instead.
    if (dataset.procedural_nodes < 2) {
      throw std::invalid_argument("ValidateDataset: need at least 2 nodes");
    }
    if (dataset.ground_truth.Rows() != 0) {
      throw std::invalid_argument(
          "ValidateDataset: procedural dataset must not also carry a matrix");
    }
    if (!dataset.trace.empty()) {
      throw std::invalid_argument(
          "ValidateDataset: procedural datasets cannot carry a trace");
    }
    const std::size_t n = dataset.procedural_nodes;
    const std::size_t step = std::max<std::size_t>(1, n / 64);
    for (std::size_t i = 0; i < n; i += step) {
      const std::size_t j = (i + step) % n;
      if (i == j) {
        continue;
      }
      const double v = dataset.quantity_fn(i, j);
      if (!(v > 0.0) || !std::isfinite(v)) {
        throw std::invalid_argument(
            "ValidateDataset: procedural quantities must be positive finite");
      }
      if (dataset.metric == Metric::kRtt) {
        const double back = dataset.quantity_fn(j, i);
        if (std::abs(v - back) > 1e-9 * std::max(v, back)) {
          throw std::invalid_argument(
              "ValidateDataset: procedural RTT must be symmetric");
        }
      }
    }
    return;
  }
  const auto& m = dataset.ground_truth;
  if (m.Rows() != m.Cols()) {
    throw std::invalid_argument("ValidateDataset: matrix must be square");
  }
  if (m.Rows() < 2) {
    throw std::invalid_argument("ValidateDataset: need at least 2 nodes");
  }
  for (std::size_t i = 0; i < m.Rows(); ++i) {
    if (!linalg::Matrix::IsMissing(m(i, i))) {
      throw std::invalid_argument("ValidateDataset: diagonal must be NaN");
    }
  }
  for (std::size_t i = 0; i < m.Rows(); ++i) {
    for (std::size_t j = 0; j < m.Cols(); ++j) {
      const double v = m(i, j);
      if (!linalg::Matrix::IsMissing(v) && v <= 0.0) {
        throw std::invalid_argument(
            "ValidateDataset: known quantities must be positive");
      }
    }
  }
  if (dataset.metric == Metric::kRtt) {
    for (std::size_t i = 0; i < m.Rows(); ++i) {
      for (std::size_t j = i + 1; j < m.Cols(); ++j) {
        const double a = m(i, j);
        const double b = m(j, i);
        const bool a_missing = linalg::Matrix::IsMissing(a);
        const bool b_missing = linalg::Matrix::IsMissing(b);
        if (a_missing != b_missing ||
            (!a_missing && std::abs(a - b) > 1e-9 * std::max(a, b))) {
          throw std::invalid_argument("ValidateDataset: RTT matrix must be symmetric");
        }
      }
    }
  }
  double previous_time = 0.0;
  for (const TraceRecord& record : dataset.trace) {
    if (record.src >= m.Rows() || record.dst >= m.Rows()) {
      throw std::invalid_argument("ValidateDataset: trace node out of range");
    }
    if (record.src == record.dst) {
      throw std::invalid_argument("ValidateDataset: trace contains self-pair");
    }
    if (record.value <= 0.0) {
      throw std::invalid_argument("ValidateDataset: trace value must be positive");
    }
    if (record.timestamp_s < previous_time) {
      throw std::invalid_argument("ValidateDataset: trace timestamps must be sorted");
    }
    previous_time = record.timestamp_s;
  }
}

}  // namespace dmfsgd::datasets
