// HP-S3-like available-bandwidth dataset (synthetic stand-in, DESIGN.md §3).
//
// The real HP-S3 dataset holds pathChirp ABW estimates between 459 nodes of
// HP's S3 monitoring system; the paper extracts a dense 231-node submatrix
// with ~4% missing entries.  This generator grows a tiered capacity tree
// (SEQUOIA's tree-metric observation), reads asymmetric ground-truth ABW off
// it, applies pathChirp-style measurement distortion (underestimation bias +
// lognormal noise, since the *dataset itself* was measured with pathChirp)
// and finally knocks out ~4% of the entries at random.
#pragma once

#include <cstddef>
#include <cstdint>

#include "datasets/dataset.hpp"

namespace dmfsgd::datasets {

struct HpS3Config {
  std::size_t host_count = 231;
  double missing_fraction = 0.04;
  std::uint64_t seed = 459;
};

/// Builds the synthetic HP-S3 dataset (static, asymmetric ABW, no trace).
[[nodiscard]] Dataset MakeHpS3(const HpS3Config& config = {});

}  // namespace dmfsgd::datasets
