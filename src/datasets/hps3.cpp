#include "datasets/hps3.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "netsim/capacity_tree.hpp"
#include "netsim/probes.hpp"

namespace dmfsgd::datasets {

Dataset MakeHpS3(const HpS3Config& config) {
  if (config.missing_fraction < 0.0 || config.missing_fraction >= 1.0) {
    throw std::invalid_argument("MakeHpS3: missing_fraction must be in [0, 1)");
  }

  netsim::CapacityTreeConfig tree_config;
  tree_config.host_count = config.host_count;
  tree_config.branching_min = 2;
  tree_config.branching_max = 4;
  tree_config.depth = 5;
  // Tiers: core 10G, regional 1G, metro 622M (OC-12-ish), access ~100M.
  // With background utilization this yields end-to-end ABW mostly in the
  // 5-120 Mbps range, matching the paper's Table 1 (median 43 Mbps).
  tree_config.tier_capacity_mbps = {10000.0, 1000.0, 622.0, 155.0, 100.0};
  tree_config.capacity_jitter_sigma = 0.25;
  tree_config.max_utilization = 0.85;
  tree_config.utilization_shape = 1.6;
  tree_config.seed = config.seed;

  const netsim::CapacityTree tree(tree_config);
  const netsim::PathchirpProbe pathchirp(
      {.underestimation_factor = 0.92, .noise_sigma = 0.12});
  common::Rng rng(config.seed + 1);

  const std::size_t n = config.host_count;
  linalg::Matrix truth(n, n, linalg::Matrix::kMissing);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      if (rng.Bernoulli(config.missing_fraction)) {
        continue;  // unmeasured pair, as in the extracted HP-S3 submatrix
      }
      truth(i, j) = pathchirp.Measure(tree.Abw(i, j), rng);
    }
  }

  Dataset dataset;
  dataset.name = "HP-S3";
  dataset.metric = Metric::kAbw;
  dataset.ground_truth = std::move(truth);
  return dataset;
}

}  // namespace dmfsgd::datasets
