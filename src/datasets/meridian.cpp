#include "datasets/meridian.hpp"

#include "netsim/delay_space.hpp"

namespace dmfsgd::datasets {

Dataset MakeMeridian(const MeridianConfig& config) {
  netsim::DelaySpaceConfig space;
  space.node_count = config.node_count;
  // Meridian nodes are globally distributed: more clusters, wider world than
  // the Harvard (single-application swarm) deployment.
  space.continent_count = 5;
  space.cluster_count = 20;
  space.dimensions = 3;
  space.cluster_radius_ms = 8.0;
  space.continent_radius_ms = 22.0;
  space.world_radius_ms = 130.0;
  space.min_access_ms = 0.3;
  space.access_lognormal_mu = 0.6;
  space.access_lognormal_sigma = 0.8;
  space.detour_cluster_sigma = 0.15;
  space.detour_pair_sigma = 0.03;
  space.seed = config.seed;

  const netsim::DelaySpace delay_space(space);
  Dataset dataset;
  dataset.name = "Meridian";
  dataset.metric = Metric::kRtt;
  dataset.ground_truth = delay_space.ToMatrix();
  return dataset;
}

}  // namespace dmfsgd::datasets
