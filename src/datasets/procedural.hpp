// Procedural (matrix-free) datasets for bench-scale node counts.
//
// The round-throughput benches of DESIGN.md §14 need n = 65536 nodes; a
// dense ground-truth matrix at that size would be ~34 GB, so these datasets
// carry a pure quantity function instead (Dataset::quantity_fn).  The RTT
// generator reuses the synthetic Internet delay space of netsim/delay_space
// — O(n) materialized state (positions, access delays), O(1) per-pair
// evaluation, symmetric and positive by construction.
#pragma once

#include <cstddef>
#include <cstdint>

#include "datasets/dataset.hpp"

namespace dmfsgd::datasets {

struct EuclideanRttConfig {
  std::size_t node_count = 65536;
  std::uint64_t seed = 2011;
};

/// Builds a procedural symmetric-RTT dataset over a clustered geometric
/// delay space (same family as MakeMeridian, scaled to `node_count` without
/// materializing the matrix).  Quantity(i, j) is deterministic in
/// (seed, i, j).
[[nodiscard]] Dataset MakeEuclideanRtt(const EuclideanRttConfig& config = {});

/// Approximate median off-diagonal quantity of a procedural dataset,
/// estimated from `samples` deterministic random pairs (the tau source that
/// replaces Dataset::MedianValue, which needs the dense matrix).  Also works
/// on materialized datasets.  Requires samples > 0.
[[nodiscard]] double SampledMedianValue(const Dataset& dataset,
                                        std::size_t samples = 4096,
                                        std::uint64_t seed = 7);

}  // namespace dmfsgd::datasets
