// Dataset persistence.
//
// Datasets round-trip through two CSV files: `<stem>.matrix.csv` (the
// ground-truth matrix, "nan" for missing entries) and, when a trace exists,
// `<stem>.trace.csv` (src,dst,value,timestamp rows).  This lets experiments
// pin a generated dataset to disk and reload it exactly.
#pragma once

#include <filesystem>

#include "datasets/dataset.hpp"

namespace dmfsgd::datasets {

/// Writes `<stem>.matrix.csv` (+ `<stem>.trace.csv` if the trace is
/// non-empty).  Throws std::runtime_error on IO failure.
void SaveDataset(const Dataset& dataset, const std::filesystem::path& stem);

/// Reads a dataset previously written by SaveDataset.  `metric` and `name`
/// are restored from the matrix file header.  Throws std::runtime_error /
/// std::invalid_argument on malformed input.
[[nodiscard]] Dataset LoadDataset(const std::filesystem::path& stem);

}  // namespace dmfsgd::datasets
