#include "datasets/clusters.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace dmfsgd::datasets {

Dataset MakeTwoClusterRtt(const TwoClusterRttConfig& config) {
  if (config.node_count < 2) {
    throw std::invalid_argument("MakeTwoClusterRtt: need at least 2 nodes");
  }
  if (!(config.intra_min_ms > 0.0) || config.intra_max_ms < config.intra_min_ms ||
      !(config.cross_min_ms > 0.0) || config.cross_max_ms < config.cross_min_ms) {
    throw std::invalid_argument("MakeTwoClusterRtt: bad RTT ranges");
  }
  Dataset dataset;
  dataset.name = "two-cluster-rtt";
  dataset.metric = Metric::kRtt;
  const std::size_t n = config.node_count;
  dataset.ground_truth = linalg::Matrix(n, n, linalg::Matrix::kMissing);
  common::Rng rng(config.seed);
  const std::size_t half = n / 2;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const bool same_cluster = (i < half) == (j < half);
      const double rtt =
          same_cluster ? rng.Uniform(config.intra_min_ms, config.intra_max_ms)
                       : rng.Uniform(config.cross_min_ms, config.cross_max_ms);
      dataset.ground_truth(i, j) = rtt;
      dataset.ground_truth(j, i) = rtt;
    }
  }
  return dataset;
}

}  // namespace dmfsgd::datasets
