#include "datasets/harvard.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "netsim/delay_space.hpp"
#include "netsim/dynamics.hpp"
#include "netsim/probes.hpp"

namespace dmfsgd::datasets {

namespace {

netsim::DelaySpaceConfig HarvardDelaySpace(const HarvardConfig& config) {
  netsim::DelaySpaceConfig space;
  space.node_count = config.node_count;
  // Azureus clients cluster in fewer regions than Meridian's infrastructure
  // nodes, with fatter consumer access links.
  space.continent_count = 4;
  space.cluster_count = 10;
  space.dimensions = 3;
  space.cluster_radius_ms = 12.0;
  space.continent_radius_ms = 22.0;
  space.world_radius_ms = 110.0;
  space.min_access_ms = 2.0;
  space.access_lognormal_mu = 2.0;
  space.access_lognormal_sigma = 0.7;
  space.detour_cluster_sigma = 0.12;
  space.detour_pair_sigma = 0.03;
  space.seed = config.seed;
  return space;
}

netsim::CongestionConfig HarvardCongestion(const HarvardConfig& config) {
  netsim::CongestionConfig congestion;
  congestion.ar_coefficient = 0.98;
  congestion.noise_stddev_ms = 1.5;
  congestion.spike_probability = 0.015;
  congestion.spike_scale_ms = 25.0;
  congestion.spike_shape = 1.8;
  congestion.seed = config.seed + 1;
  return congestion;
}

/// Stationary sample of one endpoint's congestion level: positive part of
/// the AR(1) stationary normal.
double StationaryCongestion(const netsim::CongestionConfig& c, common::Rng& rng) {
  const double stationary_stddev =
      c.noise_stddev_ms / std::sqrt(1.0 - c.ar_coefficient * c.ar_coefficient);
  return std::max(0.0, rng.Normal(0.0, stationary_stddev));
}

}  // namespace

Dataset MakeHarvard(const HarvardConfig& config) {
  if (config.node_count < 2) {
    throw std::invalid_argument("MakeHarvard: need at least 2 nodes");
  }
  const std::size_t record_count =
      config.paper_scale ? 2'492'546 : config.trace_records;
  if (record_count == 0) {
    throw std::invalid_argument("MakeHarvard: trace_records must be > 0");
  }

  const netsim::DelaySpace delay_space(HarvardDelaySpace(config));
  const netsim::CongestionConfig congestion_config = HarvardCongestion(config);
  netsim::CongestionProcess congestion(config.node_count, congestion_config);
  const netsim::PingProbe ping({.noise_sigma = 0.03});

  common::Rng rng(config.seed + 2);

  // --- Ground truth: per-pair median of the observation distribution. ---
  // An observation is (base_rtt + congestion_i + congestion_j + spike) * ping
  // noise; the median over many draws defines the paper's static matrix.
  const std::size_t n = config.node_count;
  linalg::Matrix truth(n, n, linalg::Matrix::kMissing);
  constexpr std::size_t kMedianSamples = 15;  // odd, so the median is a sample
  std::vector<double> samples(kMedianSamples);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double base = delay_space.Rtt(i, j);
      for (double& sample : samples) {
        double extra = StationaryCongestion(congestion_config, rng) +
                       StationaryCongestion(congestion_config, rng);
        if (rng.Bernoulli(congestion_config.spike_probability)) {
          extra += rng.Pareto(congestion_config.spike_scale_ms,
                              congestion_config.spike_shape);
        }
        sample = ping.Measure(base + extra, rng);
      }
      const double median = common::Median(samples);
      truth(i, j) = median;
      truth(j, i) = median;
    }
  }

  // --- Dynamic trace: Zipf pair popularity over a shuffled pair ranking. ---
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      pairs.emplace_back(i, j);
    }
  }
  rng.Shuffle(std::span(pairs));
  const common::ZipfSampler popularity(pairs.size(), config.zipf_exponent);

  std::vector<double> times(record_count);
  for (double& t : times) {
    t = rng.Uniform(0.0, config.duration_s);
  }
  std::sort(times.begin(), times.end());

  Dataset dataset;
  dataset.name = "Harvard";
  dataset.metric = Metric::kRtt;
  dataset.ground_truth = std::move(truth);
  dataset.trace.reserve(record_count);

  // Advance the congestion clock in 1-second ticks as the trace time passes.
  double clock_s = 0.0;
  for (const double t : times) {
    while (clock_s + 1.0 <= t) {
      congestion.Step();
      clock_s += 1.0;
    }
    const auto [a, b] = pairs[popularity.Sample(rng)];
    // Passive measurement is observed at one endpoint; pick the direction at
    // random (RTT itself is symmetric).
    const bool forward = rng.Bernoulli(0.5);
    const std::uint32_t src = forward ? a : b;
    const std::uint32_t dst = forward ? b : a;
    const double base = delay_space.Rtt(src, dst);
    const double value = ping.Measure(base + congestion.PathExtraDelay(src, dst), rng);
    dataset.trace.push_back(TraceRecord{src, dst, value, t});
  }
  return dataset;
}

}  // namespace dmfsgd::datasets
