#include "datasets/io.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "common/csv.hpp"

namespace dmfsgd::datasets {

namespace {

constexpr const char* kMissingToken = "nan";

std::filesystem::path MatrixPath(const std::filesystem::path& stem) {
  auto p = stem;
  p += ".matrix.csv";
  return p;
}

std::filesystem::path TracePath(const std::filesystem::path& stem) {
  auto p = stem;
  p += ".trace.csv";
  return p;
}

}  // namespace

void SaveDataset(const Dataset& dataset, const std::filesystem::path& stem) {
  const auto& m = dataset.ground_truth;
  // Header row doubles as metadata: name, metric, node count.
  const std::vector<std::string> header = {
      dataset.name, MetricName(dataset.metric), std::to_string(m.Rows())};
  std::vector<std::vector<std::string>> rows;
  rows.reserve(m.Rows());
  for (std::size_t r = 0; r < m.Rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(m.Cols());
    for (std::size_t c = 0; c < m.Cols(); ++c) {
      const double v = m(r, c);
      row.push_back(linalg::Matrix::IsMissing(v) ? kMissingToken
                                                 : common::FormatDouble(v));
    }
    rows.push_back(std::move(row));
  }
  common::WriteCsv(MatrixPath(stem), header, rows);

  if (!dataset.trace.empty()) {
    std::vector<std::vector<std::string>> trace_rows;
    trace_rows.reserve(dataset.trace.size());
    for (const TraceRecord& record : dataset.trace) {
      trace_rows.push_back({std::to_string(record.src), std::to_string(record.dst),
                            common::FormatDouble(record.value),
                            common::FormatDouble(record.timestamp_s)});
    }
    common::WriteCsv(TracePath(stem), {"src", "dst", "value", "timestamp_s"},
                     trace_rows);
  }
}

Dataset LoadDataset(const std::filesystem::path& stem) {
  const auto doc = common::ReadCsv(MatrixPath(stem), /*has_header=*/true);
  if (doc.header.size() != 3) {
    throw std::invalid_argument("LoadDataset: malformed matrix header");
  }
  Dataset dataset;
  dataset.name = doc.header[0];
  const std::string& metric_name = doc.header[1];
  if (metric_name == "RTT") {
    dataset.metric = Metric::kRtt;
  } else if (metric_name == "ABW") {
    dataset.metric = Metric::kAbw;
  } else {
    throw std::invalid_argument("LoadDataset: unknown metric '" + metric_name + "'");
  }
  const auto n = static_cast<std::size_t>(std::stoull(doc.header[2]));
  if (doc.rows.size() != n) {
    throw std::invalid_argument("LoadDataset: row count mismatch");
  }
  dataset.ground_truth = linalg::Matrix(n, n, linalg::Matrix::kMissing);
  for (std::size_t r = 0; r < n; ++r) {
    if (doc.rows[r].size() != n) {
      throw std::invalid_argument("LoadDataset: column count mismatch in row " +
                                  std::to_string(r));
    }
    for (std::size_t c = 0; c < n; ++c) {
      const std::string& field = doc.rows[r][c];
      if (field != kMissingToken) {
        dataset.ground_truth(r, c) = common::ParseDouble(field);
      }
    }
  }

  if (std::filesystem::exists(TracePath(stem))) {
    const auto trace_doc = common::ReadCsv(TracePath(stem), /*has_header=*/true);
    dataset.trace.reserve(trace_doc.rows.size());
    for (const auto& row : trace_doc.rows) {
      if (row.size() != 4) {
        throw std::invalid_argument("LoadDataset: malformed trace row");
      }
      TraceRecord record;
      record.src = static_cast<std::uint32_t>(std::stoul(row[0]));
      record.dst = static_cast<std::uint32_t>(std::stoul(row[1]));
      record.value = common::ParseDouble(row[2]);
      record.timestamp_s = common::ParseDouble(row[3]);
      dataset.trace.push_back(record);
    }
  }
  return dataset;
}

}  // namespace dmfsgd::datasets
