#include "datasets/procedural.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "netsim/delay_space.hpp"

namespace dmfsgd::datasets {

Dataset MakeEuclideanRtt(const EuclideanRttConfig& config) {
  netsim::DelaySpaceConfig space;
  space.node_count = config.node_count;
  // Meridian-like globally distributed population (see MakeMeridian), with
  // the cluster count scaled up so metro areas don't grow unboundedly dense
  // at bench-scale n.
  space.continent_count = 5;
  space.cluster_count = std::max<std::size_t>(20, config.node_count / 512);
  space.dimensions = 3;
  space.cluster_radius_ms = 8.0;
  space.continent_radius_ms = 22.0;
  space.world_radius_ms = 130.0;
  space.min_access_ms = 0.3;
  space.access_lognormal_mu = 0.6;
  space.access_lognormal_sigma = 0.8;
  space.detour_cluster_sigma = 0.15;
  space.detour_pair_sigma = 0.03;
  space.seed = config.seed;

  auto delay_space = std::make_shared<const netsim::DelaySpace>(space);
  Dataset dataset;
  dataset.name = "EuclideanRtt";
  dataset.metric = Metric::kRtt;
  dataset.procedural_nodes = config.node_count;
  dataset.quantity_fn = [delay_space](std::size_t i, std::size_t j) {
    return delay_space->Rtt(i, j);
  };
  return dataset;
}

double SampledMedianValue(const Dataset& dataset, std::size_t samples,
                          std::uint64_t seed) {
  if (samples == 0) {
    throw std::invalid_argument("SampledMedianValue: samples must be > 0");
  }
  const std::size_t n = dataset.NodeCount();
  if (n < 2) {
    throw std::invalid_argument("SampledMedianValue: need at least 2 nodes");
  }
  common::Rng rng(seed);
  std::vector<double> values;
  values.reserve(samples);
  // A rejection cap keeps a pathologically sparse matrix from spinning the
  // sampler forever; real datasets are > 90% known, so it never binds there.
  std::size_t attempts_left = samples * 64;
  while (values.size() < samples) {
    if (attempts_left-- == 0) {
      throw std::invalid_argument(
          "SampledMedianValue: dataset too sparse to sample");
    }
    const auto i = static_cast<std::size_t>(rng.UniformInt(n));
    const auto j = static_cast<std::size_t>(rng.UniformInt(n));
    if (i == j || !dataset.IsKnown(i, j)) {
      continue;
    }
    values.push_back(dataset.Quantity(i, j));
  }
  const auto mid = values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2);
  std::nth_element(values.begin(), mid, values.end());
  return *mid;
}

}  // namespace dmfsgd::datasets
