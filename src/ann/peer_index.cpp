#include "ann/peer_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmfsgd::ann {

namespace {

const PeerIndexOptions& RequireOptions(const PeerIndexOptions& options) {
  if (options.degree == 0) {
    throw std::invalid_argument("PeerIndex: degree must be > 0");
  }
  if (options.ef_construction == 0 || options.ef_search == 0) {
    throw std::invalid_argument("PeerIndex: beam widths must be > 0");
  }
  if (options.entry_points == 0) {
    throw std::invalid_argument("PeerIndex: entry_points must be > 0");
  }
  if (options.drift_epsilon < 0.0) {
    throw std::invalid_argument("PeerIndex: drift_epsilon must be >= 0");
  }
  if (options.rebuild_fraction < 0.0 || options.rebuild_fraction > 1.0) {
    throw std::invalid_argument("PeerIndex: rebuild_fraction must be in [0, 1]");
  }
  if (options.ivf_cells > 0) {
    if (options.ivf_nprobe == 0) {
      throw std::invalid_argument("PeerIndex: ivf_nprobe must be > 0");
    }
    if (options.ivf_sample == 0) {
      throw std::invalid_argument("PeerIndex: ivf_sample must be > 0");
    }
  }
  return options;
}

}  // namespace

PeerIndex::ScratchLease::ScratchLease(const PeerIndex& index)
    : index_(&index), scratch_(index.AcquireScratch()) {}

PeerIndex::ScratchLease::~ScratchLease() {
  index_->ReleaseScratch(std::move(scratch_));
}

std::unique_ptr<PeerIndex::SearchScratch> PeerIndex::AcquireScratch() const {
  {
    const std::lock_guard<std::mutex> lock(scratch_mutex_);
    if (!scratch_pool_.empty()) {
      std::unique_ptr<SearchScratch> scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<SearchScratch>();
}

void PeerIndex::ReleaseScratch(std::unique_ptr<SearchScratch> scratch) const {
  if (scratch->score_evals != 0) {
    score_evals_.fetch_add(scratch->score_evals, std::memory_order_relaxed);
    scratch->score_evals = 0;
  }
  const std::lock_guard<std::mutex> lock(scratch_mutex_);
  scratch_pool_.push_back(std::move(scratch));
}

PeerIndex::PeerIndex(const core::CoordinateStore& store,
                     const PeerIndexOptions& options)
    : store_(&store),
      options_(RequireOptions(options)),
      rank_(store.rank()),
      rng_(options.seed) {
  const std::size_t n = store.NodeCount();
  slot_of_.assign(n, kNoSlot);
  id_of_.reserve(n);
  snap_v_.reserve(n * rank_);
  adj_.reserve(n * options_.degree);
  adj_len_.reserve(n);
  SearchScratch scratch;
  for (std::size_t id = 0; id < n; ++id) {
    const Slot slot = AppendSlot(id);
    LinkSlot(slot, slot, scratch);
  }
  BuildCoarse();
}

PeerIndex::PeerIndex(const core::CoordinateStore& store,
                     std::span<const std::size_t> members,
                     const PeerIndexOptions& options)
    : store_(&store),
      options_(RequireOptions(options)),
      rank_(store.rank()),
      rng_(options.seed) {
  slot_of_.assign(store.NodeCount(), kNoSlot);
  id_of_.reserve(members.size());
  snap_v_.reserve(members.size() * rank_);
  adj_.reserve(members.size() * options_.degree);
  adj_len_.reserve(members.size());
  SearchScratch scratch;
  for (const std::size_t id : members) {
    if (id >= store.NodeCount()) {
      throw std::out_of_range("PeerIndex: member id out of range");
    }
    if (slot_of_[id] != kNoSlot) {
      throw std::invalid_argument("PeerIndex: duplicate member id");
    }
    const Slot slot = AppendSlot(id);
    LinkSlot(slot, slot, scratch);
  }
  BuildCoarse();
}

double PeerIndex::SnapDistanceSquared(Slot a, Slot b) const noexcept {
  const double* pa = Snapshot(a);
  const double* pb = Snapshot(b);
  double sum = 0.0;
  for (std::size_t d = 0; d < rank_; ++d) {
    const double diff = pa[d] - pb[d];
    sum += diff * diff;
  }
  return sum;
}

double PeerIndex::DistanceSquaredToSnapshot(std::span<const double> row,
                                            Slot slot) const noexcept {
  const double* p = Snapshot(slot);
  double sum = 0.0;
  for (std::size_t d = 0; d < rank_; ++d) {
    const double diff = row[d] - p[d];
    sum += diff * diff;
  }
  return sum;
}

PeerIndex::Slot PeerIndex::AppendSlot(std::size_t id) {
  const Slot slot = static_cast<Slot>(id_of_.size());
  id_of_.push_back(id);
  slot_of_[id] = slot;
  const auto v = store_->V(id);
  snap_v_.insert(snap_v_.end(), v.begin(), v.end());
  adj_.resize(adj_.size() + options_.degree, kNoSlot);
  adj_len_.push_back(0);
  return slot;
}

void PeerIndex::SelectNeighbors(const std::vector<RankedSlot>& candidates,
                                std::vector<Slot>& chosen) const {
  // Relative-neighborhood prune: a candidate already "covered" by a chosen
  // neighbor (closer to it than to the subject) is skipped first and only
  // backfilled if the list stays short — the DEG/HNSW diversity heuristic
  // that keeps greedy routing from collapsing into one cluster.
  chosen.clear();
  std::vector<Slot> pruned;
  for (const RankedSlot& candidate : candidates) {
    if (chosen.size() >= options_.degree) {
      break;
    }
    bool keep = true;
    for (const Slot s : chosen) {
      if (SnapDistanceSquared(candidate.slot, s) < candidate.key) {
        keep = false;
        break;
      }
    }
    if (keep) {
      chosen.push_back(candidate.slot);
    } else {
      pruned.push_back(candidate.slot);
    }
  }
  for (const Slot s : pruned) {
    if (chosen.size() >= options_.degree) {
      break;
    }
    chosen.push_back(s);
  }
}

void PeerIndex::LinkBack(Slot to, Slot from) {
  Slot* edges = adj_.data() + static_cast<std::size_t>(to) * options_.degree;
  for (std::uint32_t e = 0; e < adj_len_[to]; ++e) {
    if (edges[e] == from) {
      return;
    }
  }
  if (adj_len_[to] < options_.degree) {
    edges[adj_len_[to]++] = from;
    return;
  }
  // Full list: re-prune the union of the existing edges and the newcomer
  // relative to `to`'s snapshot; the newcomer survives only if it beats the
  // diversity of what is already there.
  std::vector<RankedSlot> candidates;
  candidates.reserve(options_.degree + 1);
  for (std::uint32_t e = 0; e < adj_len_[to]; ++e) {
    candidates.push_back(RankedSlot{SnapDistanceSquared(to, edges[e]), edges[e]});
  }
  candidates.push_back(RankedSlot{SnapDistanceSquared(to, from), from});
  std::sort(candidates.begin(), candidates.end(), Better);
  std::vector<Slot> chosen;
  SelectNeighbors(candidates, chosen);
  adj_len_[to] = static_cast<std::uint32_t>(chosen.size());
  std::copy(chosen.begin(), chosen.end(), edges);
}

template <typename KeyFn>
void PeerIndex::BeamSearch(std::span<const Slot> entries, std::size_t ef,
                           Slot exclude, const KeyFn& key_of,
                           SearchScratch& scratch) const {
  std::vector<RankedSlot>& out = scratch.out;
  out.clear();
  if (id_of_.empty() || ef == 0) {
    return;
  }
  if (scratch.visited.size() < id_of_.size()) {
    scratch.visited.resize(id_of_.size(), 0);
  }
  if (++scratch.epoch == 0) {
    std::fill(scratch.visited.begin(), scratch.visited.end(), 0);
    scratch.epoch = 1;
  }
  std::vector<std::uint32_t>& visited = scratch.visited;
  const std::uint32_t epoch = scratch.epoch;

  // `out` doubles as the worst-on-top result heap; `scratch.frontier` is
  // the best-first frontier.  Both orders key on (key, slot), so the walk
  // is a pure function of (graph, entries, key function) — which is why
  // query results are bit-identical at any number of query threads.
  const auto worst_on_top = [](const RankedSlot& a, const RankedSlot& b) {
    return Better(a, b);
  };
  const auto best_on_top = [](const RankedSlot& a, const RankedSlot& b) {
    return Better(b, a);
  };
  std::vector<RankedSlot>& frontier = scratch.frontier;
  frontier.clear();

  for (const Slot s : entries) {
    if (visited[s] == epoch) {
      continue;
    }
    visited[s] = epoch;
    const RankedSlot entry{key_of(s), s};
    frontier.push_back(entry);
    std::push_heap(frontier.begin(), frontier.end(), best_on_top);
    if (s != exclude) {
      out.push_back(entry);
      std::push_heap(out.begin(), out.end(), worst_on_top);
    }
  }

  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), best_on_top);
    const RankedSlot current = frontier.back();
    frontier.pop_back();
    if (out.size() >= ef && !Better(current, out.front())) {
      break;
    }
    for (const Slot nb : Edges(current.slot)) {
      if (visited[nb] == epoch) {
        continue;
      }
      visited[nb] = epoch;
      const RankedSlot next{key_of(nb), nb};
      if (out.size() < ef || Better(next, out.front())) {
        frontier.push_back(next);
        std::push_heap(frontier.begin(), frontier.end(), best_on_top);
        if (nb != exclude) {
          out.push_back(next);
          std::push_heap(out.begin(), out.end(), worst_on_top);
          if (out.size() > ef) {
            std::pop_heap(out.begin(), out.end(), worst_on_top);
            out.pop_back();
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), Better);
}

void PeerIndex::LinkSlot(Slot slot, std::size_t linked, SearchScratch& scratch) {
  if (linked == 0) {
    adj_len_[slot] = 0;
    return;
  }
  // Entry points come from the index Rng: construction order + seed fully
  // determine the adjacency (duplicates are fine, the visited set dedups).
  std::vector<Slot> entries;
  entries.reserve(options_.entry_points);
  for (std::size_t t = 0; t < options_.entry_points; ++t) {
    entries.push_back(
        static_cast<Slot>(rng_.UniformInt(static_cast<std::uint64_t>(linked))));
  }
  const std::span<const double> row(Snapshot(slot), rank_);
  BeamSearch(
      entries, options_.ef_construction, slot,
      [&](Slot s) { return DistanceSquaredToSnapshot(row, s); }, scratch);
  std::vector<Slot> chosen;
  SelectNeighbors(scratch.out, chosen);
  adj_len_[slot] = static_cast<std::uint32_t>(chosen.size());
  std::copy(chosen.begin(), chosen.end(),
            adj_.data() + static_cast<std::size_t>(slot) * options_.degree);
  for (const Slot s : chosen) {
    LinkBack(s, slot);
  }
}

void PeerIndex::BuildCoarse() {
  centroids_.clear();
  cell_entry_.clear();
  const std::size_t size = id_of_.size();
  if (options_.ivf_cells == 0 || size == 0) {
    return;
  }
  // Deterministic by construction: the training sample is evenly spaced
  // over the slots, centroids are seeded from evenly spaced sample rows,
  // and every tie breaks toward the lower cell / smaller slot.  No rng_
  // draws, so enabling the coarse layer never shifts the adjacency stream.
  const std::size_t sample_count = std::min(options_.ivf_sample, size);
  const std::size_t cells = std::min(options_.ivf_cells, sample_count);
  std::vector<Slot> sample(sample_count);
  for (std::size_t t = 0; t < sample_count; ++t) {
    sample[t] = static_cast<Slot>(t * size / sample_count);
  }
  centroids_.resize(cells * rank_);
  for (std::size_t c = 0; c < cells; ++c) {
    const Slot seed_slot = sample[c * sample_count / cells];
    std::copy(Snapshot(seed_slot), Snapshot(seed_slot) + rank_,
              centroids_.data() + c * rank_);
  }

  std::vector<std::size_t> assignment(sample_count, 0);
  const auto assign_all = [&] {
    for (std::size_t t = 0; t < sample_count; ++t) {
      const double* row = Snapshot(sample[t]);
      std::size_t best_cell = 0;
      double best = 0.0;
      for (std::size_t c = 0; c < cells; ++c) {
        const double* center = centroids_.data() + c * rank_;
        double dist = 0.0;
        for (std::size_t d = 0; d < rank_; ++d) {
          const double diff = row[d] - center[d];
          dist += diff * diff;
        }
        if (c == 0 || dist < best) {
          best = dist;
          best_cell = c;
        }
      }
      assignment[t] = best_cell;
    }
  };

  std::vector<double> sums(cells * rank_);
  std::vector<std::size_t> counts(cells);
  for (std::size_t it = 0; it < options_.ivf_iterations; ++it) {
    assign_all();
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t t = 0; t < sample_count; ++t) {
      const double* row = Snapshot(sample[t]);
      double* sum = sums.data() + assignment[t] * rank_;
      for (std::size_t d = 0; d < rank_; ++d) {
        sum[d] += row[d];
      }
      ++counts[assignment[t]];
    }
    for (std::size_t c = 0; c < cells; ++c) {
      if (counts[c] == 0) {
        continue;  // empty cell keeps its previous centroid
      }
      double* center = centroids_.data() + c * rank_;
      const double* sum = sums.data() + c * rank_;
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t d = 0; d < rank_; ++d) {
        center[d] = sum[d] * inv;
      }
    }
  }
  assign_all();

  // Entry medoid per cell: the sampled slot nearest the final centroid
  // (tie → smaller slot); an empty cell falls back to its evenly-spaced
  // seed so every cell always routes somewhere valid.
  cell_entry_.assign(cells, kNoSlot);
  std::vector<double> best_dist(cells, 0.0);
  for (std::size_t t = 0; t < sample_count; ++t) {
    const std::size_t c = assignment[t];
    const double* row = Snapshot(sample[t]);
    const double* center = centroids_.data() + c * rank_;
    double dist = 0.0;
    for (std::size_t d = 0; d < rank_; ++d) {
      const double diff = row[d] - center[d];
      dist += diff * diff;
    }
    if (cell_entry_[c] == kNoSlot || dist < best_dist[c] ||
        (dist == best_dist[c] && sample[t] < cell_entry_[c])) {
      cell_entry_[c] = sample[t];
      best_dist[c] = dist;
    }
  }
  for (std::size_t c = 0; c < cells; ++c) {
    if (cell_entry_[c] == kNoSlot) {
      cell_entry_[c] = sample[c * sample_count / cells];
    }
  }
}

std::vector<std::size_t> PeerIndex::NeighborsOf(std::size_t id) const {
  if (!Contains(id)) {
    throw std::out_of_range("PeerIndex::NeighborsOf: not a member");
  }
  const Slot slot = slot_of_[id];
  std::vector<std::size_t> out;
  out.reserve(adj_len_[slot]);
  for (const Slot e : Edges(slot)) {
    out.push_back(id_of_[e]);
  }
  return out;
}

std::vector<std::size_t> PeerIndex::CellEntries() const {
  std::vector<std::size_t> out;
  out.reserve(cell_entry_.size());
  for (const Slot s : cell_entry_) {
    out.push_back(id_of_[s]);
  }
  return out;
}

eval::KnnResult PeerIndex::GraphSearch(std::span<const double> query_u,
                                       std::size_t k, eval::KnnOrdering ordering,
                                       std::size_t ef, std::size_t exclude_id,
                                       SearchScratch& scratch) const {
  const bool smallest = ordering == eval::KnnOrdering::kSmallestFirst;
  const auto key_of = [&](Slot s) {
    ++scratch.score_evals;
    const double score =
        linalg::DotRaw(query_u.data(), store_->V(id_of_[s]).data(), rank_);
    return smallest ? score : -score;
  };
  const std::size_t size = id_of_.size();
  std::vector<Slot>& entries = scratch.entries;
  entries.clear();
  if (!cell_entry_.empty()) {
    // Coarse routing: rank every cell by the query's score against its
    // centroid (u · centroid — the cell's mean member score) and seed the
    // beam from the best `nprobe` cell medoids.  Ties break toward the
    // lower cell, so routing is deterministic.
    const std::size_t cells = cell_entry_.size();
    std::vector<RankedSlot>& ranked = scratch.cells;
    ranked.clear();
    ranked.reserve(cells);
    scratch.score_evals += cells;
    for (std::size_t c = 0; c < cells; ++c) {
      const double score =
          linalg::DotRaw(query_u.data(), centroids_.data() + c * rank_, rank_);
      ranked.push_back(
          RankedSlot{smallest ? score : -score, static_cast<Slot>(c)});
    }
    const std::size_t probe = std::min(options_.ivf_nprobe, cells);
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<std::ptrdiff_t>(probe),
                      ranked.end(), Better);
    entries.reserve(probe);
    for (std::size_t p = 0; p < probe; ++p) {
      entries.push_back(cell_entry_[ranked[p].slot]);
    }
  } else {
    // Flat mode: fixed evenly-spaced entry slots keep const searches
    // stateless and repeatable.
    const std::size_t entry_count = std::min(options_.entry_points, size);
    entries.reserve(entry_count);
    for (std::size_t t = 0; t < entry_count; ++t) {
      entries.push_back(static_cast<Slot>(t * size / entry_count));
    }
  }
  const Slot exclude =
      exclude_id < slot_of_.size() && slot_of_[exclude_id] != kNoSlot
          ? slot_of_[exclude_id]
          : kNoSlot;
  BeamSearch(entries, ef, exclude, key_of, scratch);
  const std::vector<RankedSlot>& found = scratch.out;
  const std::size_t count = std::min(k, found.size());
  eval::KnnResult result;
  result.ids.reserve(count);
  result.scores.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    result.ids.push_back(id_of_[found[p].slot]);
    result.scores.push_back(smallest ? found[p].key : -found[p].key);
  }
  return result;
}

eval::KnnResult PeerIndex::Search(std::span<const double> query_u, std::size_t k,
                                  eval::KnnOrdering ordering,
                                  std::size_t ef) const {
  return SearchFrom(store_->NodeCount(), k, ordering, ef, query_u);
}

eval::KnnResult PeerIndex::SearchFrom(std::size_t query, std::size_t k,
                                      eval::KnnOrdering ordering,
                                      std::size_t ef) const {
  if (query >= store_->NodeCount()) {
    throw std::out_of_range("PeerIndex::SearchFrom: query id out of range");
  }
  return SearchFrom(query, k, ordering, ef, store_->U(query));
}

eval::KnnResult PeerIndex::SearchFrom(std::size_t exclude_id, std::size_t k,
                                      eval::KnnOrdering ordering, std::size_t ef,
                                      std::span<const double> query_u) const {
  if (k == 0) {
    throw std::invalid_argument("PeerIndex::Search: k must be > 0");
  }
  if (query_u.size() != rank_) {
    throw std::invalid_argument("PeerIndex::Search: query row rank mismatch");
  }
  std::size_t beam = ef == 0 ? options_.ef_search : ef;
  beam = std::max(beam, k);
  const bool probe_everything =
      !cell_entry_.empty() && options_.ivf_nprobe >= cell_entry_.size();
  if (beam >= id_of_.size() || probe_everything) {
    // Exact mode (the beam covers the membership, or the coarse layer
    // would probe every cell): the oracle itself over the members in slot
    // order — the bit-identity the parity tests rely on.
    score_evals_.fetch_add(id_of_.size(), std::memory_order_relaxed);
    return eval::BruteForceKnnRow(*store_, query_u, id_of_, k, ordering,
                                  exclude_id);
  }
  const ScratchLease lease(*this);
  return GraphSearch(query_u, k, ordering, beam, exclude_id, *lease);
}

void PeerIndex::Add(std::size_t id) {
  if (id >= store_->NodeCount()) {
    throw std::out_of_range("PeerIndex::Add: id out of range");
  }
  if (slot_of_[id] != kNoSlot) {
    throw std::invalid_argument("PeerIndex::Add: already a member");
  }
  const Slot slot = AppendSlot(id);
  const ScratchLease lease(*this);
  LinkSlot(slot, slot, *lease);
  // The coarse layer is left alone: the new member is reachable through
  // back-links from its neighbors, and the next rebuild refreshes the
  // cells.
}

void PeerIndex::Remove(std::size_t id) {
  if (!Contains(id)) {
    throw std::invalid_argument("PeerIndex::Remove: not a member");
  }
  const Slot slot = slot_of_[id];
  const Slot last = static_cast<Slot>(id_of_.size() - 1);

  // One pass over every edge list: drop references to the departing slot,
  // then (second pass, after the swap) rename `last` to its new home.
  for (Slot s = 0; s <= last; ++s) {
    Slot* edges = adj_.data() + static_cast<std::size_t>(s) * options_.degree;
    std::uint32_t kept = 0;
    for (std::uint32_t e = 0; e < adj_len_[s]; ++e) {
      if (edges[e] != slot) {
        edges[kept++] = edges[e];
      }
    }
    adj_len_[s] = kept;
  }

  if (slot != last) {
    id_of_[slot] = id_of_[last];
    slot_of_[id_of_[slot]] = slot;
    std::copy(Snapshot(last), Snapshot(last) + rank_,
              snap_v_.data() + static_cast<std::size_t>(slot) * rank_);
    const Slot* from = adj_.data() + static_cast<std::size_t>(last) * options_.degree;
    Slot* to = adj_.data() + static_cast<std::size_t>(slot) * options_.degree;
    std::copy(from, from + adj_len_[last], to);
    adj_len_[slot] = adj_len_[last];
    for (Slot s = 0; s < last; ++s) {
      Slot* edges = adj_.data() + static_cast<std::size_t>(s) * options_.degree;
      for (std::uint32_t e = 0; e < adj_len_[s]; ++e) {
        if (edges[e] == last) {
          edges[e] = slot;
        }
      }
    }
  }

  // Patch the coarse entries through the swap: the departed member's cells
  // fall back to an evenly-spaced slot; `last` follows its rename.
  for (Slot& entry : cell_entry_) {
    if (entry == slot) {
      entry = kNoSlot;
    } else if (entry == last) {
      entry = slot;
    }
  }

  slot_of_[id] = kNoSlot;
  id_of_.pop_back();
  snap_v_.resize(snap_v_.size() - rank_);
  adj_.resize(adj_.size() - options_.degree);
  adj_len_.pop_back();

  if (id_of_.empty()) {
    centroids_.clear();
    cell_entry_.clear();
  } else {
    const std::size_t cells = cell_entry_.size();
    for (std::size_t c = 0; c < cells; ++c) {
      if (cell_entry_[c] == kNoSlot) {
        cell_entry_[c] = static_cast<Slot>(c * id_of_.size() / cells);
      }
    }
  }
}

bool PeerIndex::Update(std::size_t id) {
  if (!Contains(id)) {
    throw std::invalid_argument("PeerIndex::Update: not a member");
  }
  const Slot slot = slot_of_[id];
  const std::span<const double> snapshot(Snapshot(slot), rank_);
  const double drift2 = store_->VRowDriftSquared(id, snapshot);
  if (drift2 <= options_.drift_epsilon * options_.drift_epsilon) {
    return false;
  }
  // Refresh the snapshot and replace the member's out-edges; stale
  // in-edges stay (they are routing hints toward a nearby region) until a
  // rebuild re-prunes them.  The coarse centroids drift with the rows and
  // are refreshed wholesale on the rebuild path.
  store_->CopyVRow(id, {snap_v_.data() + static_cast<std::size_t>(slot) * rank_,
                        rank_});
  const ScratchLease lease(*this);
  LinkSlot(slot, id_of_.size(), *lease);
  return true;
}

PeerIndex::UpdateStats PeerIndex::ApplyUpdates(std::span<const core::NodeId> ids) {
  UpdateStats stats;
  if (id_of_.empty()) {
    return stats;
  }
  const double eps2 = options_.drift_epsilon * options_.drift_epsilon;
  std::size_t drifted = 0;
  for (const core::NodeId id : ids) {
    if (!Contains(id)) {
      continue;
    }
    const Slot slot = slot_of_[id];
    if (store_->VRowDriftSquared(id, {Snapshot(slot), rank_}) > eps2) {
      ++drifted;
    } else {
      ++stats.epsilon_skips;
    }
  }
  if (static_cast<double>(drifted) >
      options_.rebuild_fraction * static_cast<double>(id_of_.size())) {
    RebuildAll();
    stats.rebuilt = true;
    return stats;
  }
  for (const core::NodeId id : ids) {
    if (Contains(id) && Update(id)) {
      ++stats.relinked;
    }
  }
  return stats;
}

void PeerIndex::RebuildAll() {
  // Refresh every snapshot, drop every edge, re-seed the Rng, then replay
  // the construction inserts in slot order — a pure function of (member
  // order, live rows, options.seed), so a rebuild is idempotent and a
  // rebuild of a fresh index reproduces the constructed adjacency.  The
  // coarse layer rebuilds from the same refreshed snapshots.
  rng_ = common::Rng(options_.seed);
  for (Slot slot = 0; slot < id_of_.size(); ++slot) {
    store_->CopyVRow(id_of_[slot],
                     {snap_v_.data() + static_cast<std::size_t>(slot) * rank_,
                      rank_});
  }
  std::fill(adj_len_.begin(), adj_len_.end(), 0);
  SearchScratch scratch;
  for (Slot slot = 0; slot < id_of_.size(); ++slot) {
    LinkSlot(slot, slot, scratch);
  }
  BuildCoarse();
}

}  // namespace dmfsgd::ann
