#include "ann/peer_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmfsgd::ann {

namespace {

const PeerIndexOptions& RequireOptions(const PeerIndexOptions& options) {
  if (options.degree == 0) {
    throw std::invalid_argument("PeerIndex: degree must be > 0");
  }
  if (options.ef_construction == 0 || options.ef_search == 0) {
    throw std::invalid_argument("PeerIndex: beam widths must be > 0");
  }
  if (options.entry_points == 0) {
    throw std::invalid_argument("PeerIndex: entry_points must be > 0");
  }
  if (options.drift_epsilon < 0.0) {
    throw std::invalid_argument("PeerIndex: drift_epsilon must be >= 0");
  }
  if (options.rebuild_fraction < 0.0 || options.rebuild_fraction > 1.0) {
    throw std::invalid_argument("PeerIndex: rebuild_fraction must be in [0, 1]");
  }
  return options;
}

}  // namespace

PeerIndex::PeerIndex(const core::CoordinateStore& store,
                     const PeerIndexOptions& options)
    : store_(&store),
      options_(RequireOptions(options)),
      rank_(store.rank()),
      rng_(options.seed) {
  const std::size_t n = store.NodeCount();
  slot_of_.assign(n, kNoSlot);
  id_of_.reserve(n);
  snap_v_.reserve(n * rank_);
  adj_.reserve(n * options_.degree);
  adj_len_.reserve(n);
  for (std::size_t id = 0; id < n; ++id) {
    const Slot slot = AppendSlot(id);
    LinkSlot(slot, slot);
  }
}

PeerIndex::PeerIndex(const core::CoordinateStore& store,
                     std::span<const std::size_t> members,
                     const PeerIndexOptions& options)
    : store_(&store),
      options_(RequireOptions(options)),
      rank_(store.rank()),
      rng_(options.seed) {
  slot_of_.assign(store.NodeCount(), kNoSlot);
  id_of_.reserve(members.size());
  snap_v_.reserve(members.size() * rank_);
  adj_.reserve(members.size() * options_.degree);
  adj_len_.reserve(members.size());
  for (const std::size_t id : members) {
    if (id >= store.NodeCount()) {
      throw std::out_of_range("PeerIndex: member id out of range");
    }
    if (slot_of_[id] != kNoSlot) {
      throw std::invalid_argument("PeerIndex: duplicate member id");
    }
    const Slot slot = AppendSlot(id);
    LinkSlot(slot, slot);
  }
}

double PeerIndex::SnapDistanceSquared(Slot a, Slot b) const noexcept {
  const double* pa = Snapshot(a);
  const double* pb = Snapshot(b);
  double sum = 0.0;
  for (std::size_t d = 0; d < rank_; ++d) {
    const double diff = pa[d] - pb[d];
    sum += diff * diff;
  }
  return sum;
}

double PeerIndex::DistanceSquaredToSnapshot(std::span<const double> row,
                                            Slot slot) const noexcept {
  const double* p = Snapshot(slot);
  double sum = 0.0;
  for (std::size_t d = 0; d < rank_; ++d) {
    const double diff = row[d] - p[d];
    sum += diff * diff;
  }
  return sum;
}

PeerIndex::Slot PeerIndex::AppendSlot(std::size_t id) {
  const Slot slot = static_cast<Slot>(id_of_.size());
  id_of_.push_back(id);
  slot_of_[id] = slot;
  const auto v = store_->V(id);
  snap_v_.insert(snap_v_.end(), v.begin(), v.end());
  adj_.resize(adj_.size() + options_.degree, kNoSlot);
  adj_len_.push_back(0);
  return slot;
}

void PeerIndex::SelectNeighbors(const std::vector<RankedSlot>& candidates,
                                std::vector<Slot>& chosen) const {
  // Relative-neighborhood prune: a candidate already "covered" by a chosen
  // neighbor (closer to it than to the subject) is skipped first and only
  // backfilled if the list stays short — the DEG/HNSW diversity heuristic
  // that keeps greedy routing from collapsing into one cluster.
  chosen.clear();
  std::vector<Slot> pruned;
  for (const RankedSlot& candidate : candidates) {
    if (chosen.size() >= options_.degree) {
      break;
    }
    bool keep = true;
    for (const Slot s : chosen) {
      if (SnapDistanceSquared(candidate.slot, s) < candidate.key) {
        keep = false;
        break;
      }
    }
    if (keep) {
      chosen.push_back(candidate.slot);
    } else {
      pruned.push_back(candidate.slot);
    }
  }
  for (const Slot s : pruned) {
    if (chosen.size() >= options_.degree) {
      break;
    }
    chosen.push_back(s);
  }
}

void PeerIndex::LinkBack(Slot to, Slot from) {
  Slot* edges = adj_.data() + static_cast<std::size_t>(to) * options_.degree;
  for (std::uint32_t e = 0; e < adj_len_[to]; ++e) {
    if (edges[e] == from) {
      return;
    }
  }
  if (adj_len_[to] < options_.degree) {
    edges[adj_len_[to]++] = from;
    return;
  }
  // Full list: re-prune the union of the existing edges and the newcomer
  // relative to `to`'s snapshot; the newcomer survives only if it beats the
  // diversity of what is already there.
  std::vector<RankedSlot> candidates;
  candidates.reserve(options_.degree + 1);
  for (std::uint32_t e = 0; e < adj_len_[to]; ++e) {
    candidates.push_back(RankedSlot{SnapDistanceSquared(to, edges[e]), edges[e]});
  }
  candidates.push_back(RankedSlot{SnapDistanceSquared(to, from), from});
  std::sort(candidates.begin(), candidates.end(), Better);
  std::vector<Slot> chosen;
  SelectNeighbors(candidates, chosen);
  adj_len_[to] = static_cast<std::uint32_t>(chosen.size());
  std::copy(chosen.begin(), chosen.end(), edges);
}

template <typename KeyFn>
void PeerIndex::BeamSearch(std::span<const Slot> entries, std::size_t ef,
                           Slot exclude, const KeyFn& key_of,
                           std::vector<RankedSlot>& out) const {
  out.clear();
  if (id_of_.empty() || ef == 0) {
    return;
  }
  if (visited_.size() < id_of_.size()) {
    visited_.resize(id_of_.size(), 0);
  }
  if (++epoch_ == 0) {
    std::fill(visited_.begin(), visited_.end(), 0);
    epoch_ = 1;
  }

  // `out` doubles as the worst-on-top result heap; `beam_candidates_` is
  // the best-first frontier.  Both orders key on (key, slot), so the walk
  // is a pure function of (graph, entries, key function).
  const auto worst_on_top = [](const RankedSlot& a, const RankedSlot& b) {
    return Better(a, b);
  };
  const auto best_on_top = [](const RankedSlot& a, const RankedSlot& b) {
    return Better(b, a);
  };
  std::vector<RankedSlot>& frontier = beam_candidates_;
  frontier.clear();

  for (const Slot s : entries) {
    if (visited_[s] == epoch_) {
      continue;
    }
    visited_[s] = epoch_;
    const RankedSlot entry{key_of(s), s};
    frontier.push_back(entry);
    std::push_heap(frontier.begin(), frontier.end(), best_on_top);
    if (s != exclude) {
      out.push_back(entry);
      std::push_heap(out.begin(), out.end(), worst_on_top);
    }
  }

  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), best_on_top);
    const RankedSlot current = frontier.back();
    frontier.pop_back();
    if (out.size() >= ef && !Better(current, out.front())) {
      break;
    }
    for (const Slot nb : Edges(current.slot)) {
      if (visited_[nb] == epoch_) {
        continue;
      }
      visited_[nb] = epoch_;
      const RankedSlot next{key_of(nb), nb};
      if (out.size() < ef || Better(next, out.front())) {
        frontier.push_back(next);
        std::push_heap(frontier.begin(), frontier.end(), best_on_top);
        if (nb != exclude) {
          out.push_back(next);
          std::push_heap(out.begin(), out.end(), worst_on_top);
          if (out.size() > ef) {
            std::pop_heap(out.begin(), out.end(), worst_on_top);
            out.pop_back();
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), Better);
}

void PeerIndex::LinkSlot(Slot slot, std::size_t linked) {
  if (linked == 0) {
    adj_len_[slot] = 0;
    return;
  }
  // Entry points come from the index Rng: construction order + seed fully
  // determine the adjacency (duplicates are fine, the visited set dedups).
  std::vector<Slot> entries;
  entries.reserve(options_.entry_points);
  for (std::size_t t = 0; t < options_.entry_points; ++t) {
    entries.push_back(
        static_cast<Slot>(rng_.UniformInt(static_cast<std::uint64_t>(linked))));
  }
  const std::span<const double> row(Snapshot(slot), rank_);
  std::vector<RankedSlot>& found = beam_out_;
  BeamSearch(
      entries, options_.ef_construction, slot,
      [&](Slot s) { return DistanceSquaredToSnapshot(row, s); }, found);
  std::vector<Slot> chosen;
  SelectNeighbors(found, chosen);
  adj_len_[slot] = static_cast<std::uint32_t>(chosen.size());
  std::copy(chosen.begin(), chosen.end(),
            adj_.data() + static_cast<std::size_t>(slot) * options_.degree);
  for (const Slot s : chosen) {
    LinkBack(s, slot);
  }
}

std::vector<std::size_t> PeerIndex::NeighborsOf(std::size_t id) const {
  if (!Contains(id)) {
    throw std::out_of_range("PeerIndex::NeighborsOf: not a member");
  }
  const Slot slot = slot_of_[id];
  std::vector<std::size_t> out;
  out.reserve(adj_len_[slot]);
  for (const Slot e : Edges(slot)) {
    out.push_back(id_of_[e]);
  }
  return out;
}

eval::KnnResult PeerIndex::GraphSearch(std::span<const double> query_u,
                                       std::size_t k, eval::KnnOrdering ordering,
                                       std::size_t ef,
                                       std::size_t exclude_id) const {
  const bool smallest = ordering == eval::KnnOrdering::kSmallestFirst;
  const auto key_of = [&](Slot s) {
    ++score_evals_;
    const double score =
        linalg::DotRaw(query_u.data(), store_->V(id_of_[s]).data(), rank_);
    return smallest ? score : -score;
  };
  // Fixed evenly-spaced entry slots keep const searches stateless and
  // repeatable; beam width >= k so the result heap can fill.
  const std::size_t size = id_of_.size();
  const std::size_t entry_count = std::min(options_.entry_points, size);
  std::vector<Slot> entries;
  entries.reserve(entry_count);
  for (std::size_t t = 0; t < entry_count; ++t) {
    entries.push_back(static_cast<Slot>(t * size / entry_count));
  }
  const Slot exclude =
      exclude_id < slot_of_.size() && slot_of_[exclude_id] != kNoSlot
          ? slot_of_[exclude_id]
          : kNoSlot;
  std::vector<RankedSlot>& found = beam_out_;
  BeamSearch(entries, ef, exclude, key_of, found);
  const std::size_t count = std::min(k, found.size());
  eval::KnnResult result;
  result.ids.reserve(count);
  result.scores.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    result.ids.push_back(id_of_[found[p].slot]);
    result.scores.push_back(smallest ? found[p].key : -found[p].key);
  }
  return result;
}

eval::KnnResult PeerIndex::Search(std::span<const double> query_u, std::size_t k,
                                  eval::KnnOrdering ordering,
                                  std::size_t ef) const {
  return SearchFrom(store_->NodeCount(), k, ordering, ef, query_u);
}

eval::KnnResult PeerIndex::SearchFrom(std::size_t query, std::size_t k,
                                      eval::KnnOrdering ordering,
                                      std::size_t ef) const {
  if (query >= store_->NodeCount()) {
    throw std::out_of_range("PeerIndex::SearchFrom: query id out of range");
  }
  return SearchFrom(query, k, ordering, ef, store_->U(query));
}

eval::KnnResult PeerIndex::SearchFrom(std::size_t exclude_id, std::size_t k,
                                      eval::KnnOrdering ordering, std::size_t ef,
                                      std::span<const double> query_u) const {
  if (k == 0) {
    throw std::invalid_argument("PeerIndex::Search: k must be > 0");
  }
  if (query_u.size() != rank_) {
    throw std::invalid_argument("PeerIndex::Search: query row rank mismatch");
  }
  std::size_t beam = ef == 0 ? options_.ef_search : ef;
  beam = std::max(beam, k);
  if (beam >= id_of_.size()) {
    // Exact mode: the oracle itself over the members in slot order — the
    // bit-identity the parity tests rely on.
    score_evals_ += id_of_.size();
    return eval::BruteForceKnnRow(*store_, query_u, id_of_, k, ordering,
                                  exclude_id);
  }
  return GraphSearch(query_u, k, ordering, beam, exclude_id);
}

void PeerIndex::Add(std::size_t id) {
  if (id >= store_->NodeCount()) {
    throw std::out_of_range("PeerIndex::Add: id out of range");
  }
  if (slot_of_[id] != kNoSlot) {
    throw std::invalid_argument("PeerIndex::Add: already a member");
  }
  const Slot slot = AppendSlot(id);
  LinkSlot(slot, slot);
}

void PeerIndex::Remove(std::size_t id) {
  if (!Contains(id)) {
    throw std::invalid_argument("PeerIndex::Remove: not a member");
  }
  const Slot slot = slot_of_[id];
  const Slot last = static_cast<Slot>(id_of_.size() - 1);

  // One pass over every edge list: drop references to the departing slot,
  // then (second pass, after the swap) rename `last` to its new home.
  for (Slot s = 0; s <= last; ++s) {
    Slot* edges = adj_.data() + static_cast<std::size_t>(s) * options_.degree;
    std::uint32_t kept = 0;
    for (std::uint32_t e = 0; e < adj_len_[s]; ++e) {
      if (edges[e] != slot) {
        edges[kept++] = edges[e];
      }
    }
    adj_len_[s] = kept;
  }

  if (slot != last) {
    id_of_[slot] = id_of_[last];
    slot_of_[id_of_[slot]] = slot;
    std::copy(Snapshot(last), Snapshot(last) + rank_,
              snap_v_.data() + static_cast<std::size_t>(slot) * rank_);
    const Slot* from = adj_.data() + static_cast<std::size_t>(last) * options_.degree;
    Slot* to = adj_.data() + static_cast<std::size_t>(slot) * options_.degree;
    std::copy(from, from + adj_len_[last], to);
    adj_len_[slot] = adj_len_[last];
    for (Slot s = 0; s < last; ++s) {
      Slot* edges = adj_.data() + static_cast<std::size_t>(s) * options_.degree;
      for (std::uint32_t e = 0; e < adj_len_[s]; ++e) {
        if (edges[e] == last) {
          edges[e] = slot;
        }
      }
    }
  }

  slot_of_[id] = kNoSlot;
  id_of_.pop_back();
  snap_v_.resize(snap_v_.size() - rank_);
  adj_.resize(adj_.size() - options_.degree);
  adj_len_.pop_back();
}

bool PeerIndex::Update(std::size_t id) {
  if (!Contains(id)) {
    throw std::invalid_argument("PeerIndex::Update: not a member");
  }
  const Slot slot = slot_of_[id];
  const std::span<const double> snapshot(Snapshot(slot), rank_);
  const double drift2 = store_->VRowDriftSquared(id, snapshot);
  if (drift2 <= options_.drift_epsilon * options_.drift_epsilon) {
    return false;
  }
  // Refresh the snapshot and replace the member's out-edges; stale
  // in-edges stay (they are routing hints toward a nearby region) until a
  // rebuild re-prunes them.
  store_->CopyVRow(id, {snap_v_.data() + static_cast<std::size_t>(slot) * rank_,
                        rank_});
  LinkSlot(slot, id_of_.size());
  return true;
}

PeerIndex::UpdateStats PeerIndex::ApplyUpdates(std::span<const core::NodeId> ids) {
  UpdateStats stats;
  if (id_of_.empty()) {
    return stats;
  }
  const double eps2 = options_.drift_epsilon * options_.drift_epsilon;
  std::size_t drifted = 0;
  for (const core::NodeId id : ids) {
    if (!Contains(id)) {
      continue;
    }
    const Slot slot = slot_of_[id];
    if (store_->VRowDriftSquared(id, {Snapshot(slot), rank_}) > eps2) {
      ++drifted;
    } else {
      ++stats.epsilon_skips;
    }
  }
  if (static_cast<double>(drifted) >
      options_.rebuild_fraction * static_cast<double>(id_of_.size())) {
    RebuildAll();
    stats.rebuilt = true;
    return stats;
  }
  for (const core::NodeId id : ids) {
    if (Contains(id) && Update(id)) {
      ++stats.relinked;
    }
  }
  return stats;
}

void PeerIndex::RebuildAll() {
  // Refresh every snapshot, drop every edge, re-seed the Rng, then replay
  // the construction inserts in slot order — a pure function of (member
  // order, live rows, options.seed), so a rebuild is idempotent and a
  // rebuild of a fresh index reproduces the constructed adjacency.
  rng_ = common::Rng(options_.seed);
  for (Slot slot = 0; slot < id_of_.size(); ++slot) {
    store_->CopyVRow(id_of_[slot],
                     {snap_v_.data() + static_cast<std::size_t>(slot) * rank_,
                      rank_});
  }
  std::fill(adj_len_.begin(), adj_len_.end(), 0);
  for (Slot slot = 0; slot < id_of_.size(); ++slot) {
    LinkSlot(slot, slot);
  }
}

}  // namespace dmfsgd::ann
