// The ANN peer-selection plane (DESIGN.md §16, §18): a drift-tolerant
// proximity index over live coordinates.
//
// The trained factors make "which peers should node i talk to" a k-NN
// query under the predicted quantity x̂ = u_query · v_member.  PeerIndex
// answers it with a graph-based dynamic index in the spirit of DEG/HNSW:
//
//  * structure: every member holds up to `degree` out-edges to members
//    whose *snapshot* v rows are Euclidean-near its own, chosen by greedy
//    beam search plus the relative-neighborhood prune (a candidate is
//    skipped while some already-chosen neighbor is closer to it than the
//    new member is).  Edges are directed; back-links are added while there
//    is room and re-pruned when a list overflows.
//  * search: greedy best-first beam over the adjacency, ranked by the
//    *live* bilinear score u_query · v_member — the graph only navigates;
//    every score reads the store at query time.  That split is the whole
//    staleness story: SGD drift can only degrade *routing* (which the
//    recall-under-drift tests bound), never the scores reported, and both
//    RTT (smallest-first) and ABW (largest-first) orderings ride the same
//    graph because edge selection is ordering-agnostic.
//  * coarse routing (DESIGN.md §18): with `ivf_cells > 0` an IVF-style
//    coarse quantizer sits above the graph — seeded k-means centroids over
//    a deterministic subsample of the snapshot v rows, one medoid entry
//    slot per cell.  A query scores every centroid (u · centroid — the
//    cell's mean member score), picks the best `ivf_nprobe` cells, and
//    seeds the beam from their medoids instead of from fixed evenly-spaced
//    slots; past n ≈ 10⁵ that lands the beam inside the right region in
//    O(cells) instead of walking there, which is what holds recall at the
//    million-node tier.  The coarse layer is routing only — like the graph
//    it is rebuilt from live rows on the RebuildAll escalation path and
//    drifts harmlessly in between.
//  * drift: Update(id) measures the member's v-row drift against its
//    snapshot and epsilon-skips below `drift_epsilon` — the common case for
//    one SGD step — otherwise refreshes the snapshot and re-links the
//    member's out-edges (stale in-edges are tolerated; they are routing
//    hints, not answers).  ApplyUpdates() drains an engine dirty set and
//    escalates to RebuildAll() when the drifted fraction makes per-member
//    re-linking more expensive than rebuilding.
//
// Exact mode: a search with ef >= Size() — or, with the coarse layer on,
// ivf_nprobe >= the cell count — bypasses the graph and runs
// eval::BruteForceKnnRow over the members in slot order, so an exact-mode
// query is bit-identical to the oracle by construction — the property the
// peer-selection parity and IVF exact-mode tests pin.
//
// Determinism: construction and maintenance draw entry points from one
// internal Rng seeded by options.seed; the coarse layer is built from a
// deterministic evenly-spaced subsample (no Rng draws, so enabling it
// never shifts the adjacency stream); all ranking uses the strict total
// order (key, slot); searches seed from the coarse medoids (or fixed
// evenly-spaced slots) — the same (seed, member order, operation sequence)
// always yields the same adjacency and the same query results, at any
// number of query threads.
//
// Concurrency (DESIGN.md §18): queries never mutate the store or the
// graph.  Each Search/SearchFrom leases a SearchScratch (visited epochs,
// beam heaps) from an internal free-list pool and folds its evaluation
// count into one atomic on release, so any number of threads may run
// const searches concurrently — results are bit-identical to a serial run
// because the walk is a pure function of (graph, entries, key function).
// Mutators (Add/Remove/Update/ApplyUpdates/RebuildAll) are NOT safe
// against concurrent searches; callers serialize them behind a writer
// lock (svc::CoordinateService holds its reader–writer lock exclusively
// around every mutation).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/coordinate_store.hpp"
#include "core/messages.hpp"
#include "eval/brute_force_knn.hpp"

namespace dmfsgd::ann {

struct PeerIndexOptions {
  std::size_t degree = 16;            ///< max out-edges per member
  std::size_t ef_construction = 96;   ///< beam width for insert / re-link
  std::size_t ef_search = 96;         ///< default query beam width
  std::size_t entry_points = 4;       ///< beam seeds per search (coarse layer off)
  /// L2 drift of the v row below which Update() skips re-linking — small
  /// SGD steps move a row far less than the inter-member spacing.
  double drift_epsilon = 1e-3;
  /// ApplyUpdates() rebuilds instead of re-linking when more than this
  /// fraction of the members drifted past epsilon.
  double rebuild_fraction = 0.35;
  std::uint64_t seed = 97;

  // -- IVF coarse quantizer (DESIGN.md §18); 0 cells = off -------------------

  /// Coarse k-means cells over the snapshot v rows (clamped to Size()).
  /// Routing only: a query seeds its beam from the best `ivf_nprobe` cell
  /// medoids instead of fixed evenly-spaced slots.
  std::size_t ivf_cells = 0;
  /// Cells probed per query; >= the cell count is the exact mode (the
  /// whole search delegates to the brute-force oracle, bit-identical).
  std::size_t ivf_nprobe = 8;
  /// K-means training subsample cap (evenly spaced over the slots, so the
  /// coarse build is deterministic and O(sample · cells · rank), not
  /// O(Size · cells · rank) at the million-node tier).
  std::size_t ivf_sample = 32768;
  /// Lloyd refinement rounds; 0 keeps the evenly-spaced seeds as pivots.
  std::size_t ivf_iterations = 3;
};

class PeerIndex {
 public:
  /// Indexes every node of the store.  The store must outlive the index
  /// and must not shrink below the indexed ids (it never reallocates rows,
  /// so spans stay valid).  Throws std::invalid_argument on bad options.
  PeerIndex(const core::CoordinateStore& store, const PeerIndexOptions& options);

  /// Indexes an explicit member subset (e.g. one node's candidate peer
  /// set); slot order == `members` order, which exact-mode queries scan.
  /// Throws on duplicate or out-of-range members.
  PeerIndex(const core::CoordinateStore& store,
            std::span<const std::size_t> members,
            const PeerIndexOptions& options);

  [[nodiscard]] std::size_t Size() const noexcept { return id_of_.size(); }
  [[nodiscard]] bool Contains(std::size_t id) const noexcept {
    return id < slot_of_.size() && slot_of_[id] != kNoSlot;
  }
  /// Member ids in slot order (exact-mode scan order).
  [[nodiscard]] std::span<const std::size_t> Members() const noexcept {
    return id_of_;
  }
  /// A member's current out-edges as node ids (determinism tests pin this).
  [[nodiscard]] std::vector<std::size_t> NeighborsOf(std::size_t id) const;

  /// Coarse cells currently built (0 when the IVF layer is off or empty).
  [[nodiscard]] std::size_t CellCount() const noexcept {
    return cell_entry_.size();
  }
  /// Member ids serving as cell entry medoids, in cell order (the IVF
  /// determinism tests pin this).
  [[nodiscard]] std::vector<std::size_t> CellEntries() const;

  /// k best members by u_query · v_member under `ordering`, read from the
  /// live store.  `ef` widens the beam (0 = options.ef_search; clamped to
  /// >= k); ef >= Size() is the exact mode.  Safe to call from any number
  /// of threads concurrently (not concurrently with mutators).  Throws on
  /// rank mismatch or k == 0.
  [[nodiscard]] eval::KnnResult Search(std::span<const double> query_u,
                                       std::size_t k, eval::KnnOrdering ordering,
                                       std::size_t ef = 0) const;

  /// Search with node `query`'s live u row; `query` itself (member or not)
  /// is excluded from the results.
  [[nodiscard]] eval::KnnResult SearchFrom(std::size_t query, std::size_t k,
                                           eval::KnnOrdering ordering,
                                           std::size_t ef = 0) const;

  /// Adds a member (a node joining the query plane).  Throws if already
  /// present or out of range.
  void Add(std::size_t id);

  /// Removes a member and every edge referencing it.  O(Size · degree) —
  /// bulk departures should RebuildAll() instead.  Throws if absent.
  void Remove(std::size_t id);

  /// Re-links `id` if its live v row drifted more than drift_epsilon from
  /// the indexed snapshot; returns whether a re-link happened.  Throws if
  /// absent.
  bool Update(std::size_t id);

  struct UpdateStats {
    std::size_t relinked = 0;      ///< members re-linked
    std::size_t epsilon_skips = 0; ///< members whose drift stayed under epsilon
    bool rebuilt = false;          ///< escalated to RebuildAll
  };

  /// Drains an engine dirty set (DeploymentEngine::TakeDirtyNodes):
  /// non-members are ignored, members are drift-checked, and the whole
  /// batch escalates to RebuildAll() when more than rebuild_fraction of
  /// the membership drifted past epsilon.
  UpdateStats ApplyUpdates(std::span<const core::NodeId> ids);

  /// Rebuilds every edge — and the coarse layer — from the live store
  /// (bulk churn / drift).  Keeps membership and slot order; a rebuild of
  /// an already-fresh index is a no-op on the adjacency (idempotence —
  /// pinned by tests).
  void RebuildAll();

  /// Cumulative u·v-shaped evaluations performed by searches — member
  /// scores plus coarse centroid scores (the work an exact scan would
  /// spend Size() of per query) — the bench's cost model.
  [[nodiscard]] std::uint64_t ScoreEvaluations() const noexcept {
    return score_evals_.load(std::memory_order_relaxed);
  }

 private:
  using Slot = std::uint32_t;
  static constexpr Slot kNoSlot = 0xffffffffu;

  /// A beam entry under the strict total order (key, slot); smaller key is
  /// better (query keys negate largest-first scores).
  struct RankedSlot {
    double key = 0.0;
    Slot slot = 0;
  };
  static bool Better(const RankedSlot& a, const RankedSlot& b) noexcept {
    return a.key < b.key || (a.key == b.key && a.slot < b.slot);
  }

  /// Per-search mutable state, leased from an internal pool so const
  /// searches from many threads never share a buffer (DESIGN.md §18).
  struct SearchScratch {
    std::vector<std::uint32_t> visited;  ///< epoch-marked visited set
    std::uint32_t epoch = 0;
    std::vector<RankedSlot> frontier;    ///< best-first beam frontier
    std::vector<RankedSlot> out;         ///< worst-on-top result heap
    std::vector<RankedSlot> cells;       ///< coarse-cell ranking buffer
    std::vector<Slot> entries;           ///< beam seed slots
    std::uint64_t score_evals = 0;       ///< folded into the index atomic
  };

  /// RAII lease: pops a scratch from the free list (or makes one), folds
  /// its evaluation count into score_evals_ and returns it on destruction.
  class ScratchLease {
   public:
    explicit ScratchLease(const PeerIndex& index);
    ~ScratchLease();
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    [[nodiscard]] SearchScratch& operator*() const noexcept { return *scratch_; }
    [[nodiscard]] SearchScratch* operator->() const noexcept {
      return scratch_.get();
    }

   private:
    const PeerIndex* index_;
    std::unique_ptr<SearchScratch> scratch_;
  };

  [[nodiscard]] const double* Snapshot(Slot slot) const noexcept {
    return snap_v_.data() + static_cast<std::size_t>(slot) * rank_;
  }
  [[nodiscard]] double SnapDistanceSquared(Slot a, Slot b) const noexcept;
  [[nodiscard]] double DistanceSquaredToSnapshot(std::span<const double> row,
                                                 Slot slot) const noexcept;
  [[nodiscard]] std::span<const Slot> Edges(Slot slot) const noexcept {
    return {adj_.data() + static_cast<std::size_t>(slot) * options_.degree,
            adj_len_[slot]};
  }

  /// Appends a slot for `id` (snapshot copied from the live store) without
  /// linking it.
  Slot AppendSlot(std::size_t id);
  /// Chooses and wires `slot`'s out-edges by beam search over the already
  /// linked graph, seeding from `linked` random slots (rng_ draws).
  void LinkSlot(Slot slot, std::size_t linked, SearchScratch& scratch);
  /// Relative-neighborhood prune over `candidates` (sorted best-first by
  /// distance to the subject's snapshot); keeps up to degree, backfills
  /// with pruned candidates to keep the graph dense.
  void SelectNeighbors(const std::vector<RankedSlot>& candidates,
                       std::vector<Slot>& chosen) const;
  /// Adds the back-edge to -> from, re-pruning to's list when full.
  void LinkBack(Slot to, Slot from);

  /// (Re)builds the IVF coarse layer from the current snapshots: seeded
  /// k-means over an evenly-spaced subsample, one medoid entry per cell.
  /// Deterministic; draws nothing from rng_.
  void BuildCoarse();

  /// Greedy best-first beam search; key_of(slot) returns the ranking key.
  /// Fills scratch.out best-first with up to `ef` slots (minus `exclude`).
  template <typename KeyFn>
  void BeamSearch(std::span<const Slot> entries, std::size_t ef, Slot exclude,
                  const KeyFn& key_of, SearchScratch& scratch) const;

  [[nodiscard]] eval::KnnResult GraphSearch(std::span<const double> query_u,
                                            std::size_t k,
                                            eval::KnnOrdering ordering,
                                            std::size_t ef,
                                            std::size_t exclude_id,
                                            SearchScratch& scratch) const;

  /// The shared search body: explicit query row + id to exclude (pass
  /// store.NodeCount() for "none").
  [[nodiscard]] eval::KnnResult SearchFrom(std::size_t exclude_id, std::size_t k,
                                           eval::KnnOrdering ordering,
                                           std::size_t ef,
                                           std::span<const double> query_u) const;

  [[nodiscard]] std::unique_ptr<SearchScratch> AcquireScratch() const;
  void ReleaseScratch(std::unique_ptr<SearchScratch> scratch) const;

  const core::CoordinateStore* store_;
  PeerIndexOptions options_;
  std::size_t rank_;
  common::Rng rng_;

  std::vector<Slot> slot_of_;        // dense over node ids; kNoSlot = absent
  std::vector<std::size_t> id_of_;   // per slot
  std::vector<double> snap_v_;       // per slot: the indexed v row
  std::vector<Slot> adj_;            // per slot: `degree` edge slots
  std::vector<std::uint32_t> adj_len_;

  // IVF coarse layer (empty = off): k-means centers over snapshot v rows
  // and one medoid entry slot per cell.
  std::vector<double> centroids_;    // cell-major, rank_ doubles per cell
  std::vector<Slot> cell_entry_;

  // Search-scratch free list + the folded evaluation counter; the only
  // mutable state a const search touches, which is what makes concurrent
  // queries safe.
  mutable std::mutex scratch_mutex_;
  mutable std::vector<std::unique_ptr<SearchScratch>> scratch_pool_;
  mutable std::atomic<std::uint64_t> score_evals_{0};
};

}  // namespace dmfsgd::ann
