// The ANN peer-selection plane (DESIGN.md §16): a drift-tolerant proximity
// index over live coordinates.
//
// The trained factors make "which peers should node i talk to" a k-NN
// query under the predicted quantity x̂ = u_query · v_member.  PeerIndex
// answers it with a graph-based dynamic index in the spirit of DEG/HNSW:
//
//  * structure: every member holds up to `degree` out-edges to members
//    whose *snapshot* v rows are Euclidean-near its own, chosen by greedy
//    beam search plus the relative-neighborhood prune (a candidate is
//    skipped while some already-chosen neighbor is closer to it than the
//    new member is).  Edges are directed; back-links are added while there
//    is room and re-pruned when a list overflows.
//  * search: greedy best-first beam over the adjacency, ranked by the
//    *live* bilinear score u_query · v_member — the graph only navigates;
//    every score reads the store at query time.  That split is the whole
//    staleness story: SGD drift can only degrade *routing* (which the
//    recall-under-drift tests bound), never the scores reported, and both
//    RTT (smallest-first) and ABW (largest-first) orderings ride the same
//    graph because edge selection is ordering-agnostic.
//  * drift: Update(id) measures the member's v-row drift against its
//    snapshot and epsilon-skips below `drift_epsilon` — the common case for
//    one SGD step — otherwise refreshes the snapshot and re-links the
//    member's out-edges (stale in-edges are tolerated; they are routing
//    hints, not answers).  ApplyUpdates() drains an engine dirty set and
//    escalates to RebuildAll() when the drifted fraction makes per-member
//    re-linking more expensive than rebuilding.
//
// Exact mode: a search with ef >= Size() bypasses the graph and runs
// eval::BruteForceKnnRow over the members in slot order, so an exact-mode
// query is bit-identical to the oracle by construction — the property the
// peer-selection parity test pins.
//
// Determinism: construction and maintenance draw entry points from one
// internal Rng seeded by options.seed, all ranking uses the strict total
// order (key, slot), and searches seed from fixed evenly-spaced slots —
// the same (seed, member order, operation sequence) always yields the
// same adjacency and the same query results.
//
// Concurrency: the index never mutates the store.  Queries are logically
// const but share visited-epoch scratch, so concurrent Search calls on one
// PeerIndex are not safe; clone the index or serialize queries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/coordinate_store.hpp"
#include "core/messages.hpp"
#include "eval/brute_force_knn.hpp"

namespace dmfsgd::ann {

struct PeerIndexOptions {
  std::size_t degree = 16;            ///< max out-edges per member
  std::size_t ef_construction = 96;   ///< beam width for insert / re-link
  std::size_t ef_search = 96;         ///< default query beam width
  std::size_t entry_points = 4;       ///< beam seeds per search
  /// L2 drift of the v row below which Update() skips re-linking — small
  /// SGD steps move a row far less than the inter-member spacing.
  double drift_epsilon = 1e-3;
  /// ApplyUpdates() rebuilds instead of re-linking when more than this
  /// fraction of the members drifted past epsilon.
  double rebuild_fraction = 0.35;
  std::uint64_t seed = 97;
};

class PeerIndex {
 public:
  /// Indexes every node of the store.  The store must outlive the index
  /// and must not shrink below the indexed ids (it never reallocates rows,
  /// so spans stay valid).  Throws std::invalid_argument on bad options.
  PeerIndex(const core::CoordinateStore& store, const PeerIndexOptions& options);

  /// Indexes an explicit member subset (e.g. one node's candidate peer
  /// set); slot order == `members` order, which exact-mode queries scan.
  /// Throws on duplicate or out-of-range members.
  PeerIndex(const core::CoordinateStore& store,
            std::span<const std::size_t> members,
            const PeerIndexOptions& options);

  [[nodiscard]] std::size_t Size() const noexcept { return id_of_.size(); }
  [[nodiscard]] bool Contains(std::size_t id) const noexcept {
    return id < slot_of_.size() && slot_of_[id] != kNoSlot;
  }
  /// Member ids in slot order (exact-mode scan order).
  [[nodiscard]] std::span<const std::size_t> Members() const noexcept {
    return id_of_;
  }
  /// A member's current out-edges as node ids (determinism tests pin this).
  [[nodiscard]] std::vector<std::size_t> NeighborsOf(std::size_t id) const;

  /// k best members by u_query · v_member under `ordering`, read from the
  /// live store.  `ef` widens the beam (0 = options.ef_search; clamped to
  /// >= k); ef >= Size() is the exact mode.  Throws on rank mismatch or
  /// k == 0.
  [[nodiscard]] eval::KnnResult Search(std::span<const double> query_u,
                                       std::size_t k, eval::KnnOrdering ordering,
                                       std::size_t ef = 0) const;

  /// Search with node `query`'s live u row; `query` itself (member or not)
  /// is excluded from the results.
  [[nodiscard]] eval::KnnResult SearchFrom(std::size_t query, std::size_t k,
                                           eval::KnnOrdering ordering,
                                           std::size_t ef = 0) const;

  /// Adds a member (a node joining the query plane).  Throws if already
  /// present or out of range.
  void Add(std::size_t id);

  /// Removes a member and every edge referencing it.  O(Size · degree) —
  /// bulk departures should RebuildAll() instead.  Throws if absent.
  void Remove(std::size_t id);

  /// Re-links `id` if its live v row drifted more than drift_epsilon from
  /// the indexed snapshot; returns whether a re-link happened.  Throws if
  /// absent.
  bool Update(std::size_t id);

  struct UpdateStats {
    std::size_t relinked = 0;      ///< members re-linked
    std::size_t epsilon_skips = 0; ///< members whose drift stayed under epsilon
    bool rebuilt = false;          ///< escalated to RebuildAll
  };

  /// Drains an engine dirty set (DeploymentEngine::TakeDirtyNodes):
  /// non-members are ignored, members are drift-checked, and the whole
  /// batch escalates to RebuildAll() when more than rebuild_fraction of
  /// the membership drifted past epsilon.
  UpdateStats ApplyUpdates(std::span<const core::NodeId> ids);

  /// Rebuilds every edge from the live store (bulk churn / drift).  Keeps
  /// membership and slot order; a rebuild of an already-fresh index is a
  /// no-op on the adjacency (idempotence — pinned by tests).
  void RebuildAll();

  /// Cumulative u·v evaluations performed by searches (the work an exact
  /// scan would spend Size() of per query) — the bench's cost model.
  [[nodiscard]] std::uint64_t ScoreEvaluations() const noexcept {
    return score_evals_;
  }

 private:
  using Slot = std::uint32_t;
  static constexpr Slot kNoSlot = 0xffffffffu;

  /// A beam entry under the strict total order (key, slot); smaller key is
  /// better (query keys negate largest-first scores).
  struct RankedSlot {
    double key = 0.0;
    Slot slot = 0;
  };
  static bool Better(const RankedSlot& a, const RankedSlot& b) noexcept {
    return a.key < b.key || (a.key == b.key && a.slot < b.slot);
  }

  [[nodiscard]] const double* Snapshot(Slot slot) const noexcept {
    return snap_v_.data() + static_cast<std::size_t>(slot) * rank_;
  }
  [[nodiscard]] double SnapDistanceSquared(Slot a, Slot b) const noexcept;
  [[nodiscard]] double DistanceSquaredToSnapshot(std::span<const double> row,
                                                 Slot slot) const noexcept;
  [[nodiscard]] std::span<const Slot> Edges(Slot slot) const noexcept {
    return {adj_.data() + static_cast<std::size_t>(slot) * options_.degree,
            adj_len_[slot]};
  }

  /// Appends a slot for `id` (snapshot copied from the live store) without
  /// linking it.
  Slot AppendSlot(std::size_t id);
  /// Chooses and wires `slot`'s out-edges by beam search over the already
  /// linked graph, seeding from `linked` random slots (rng_ draws).
  void LinkSlot(Slot slot, std::size_t linked);
  /// Relative-neighborhood prune over `candidates` (sorted best-first by
  /// distance to the subject's snapshot); keeps up to degree, backfills
  /// with pruned candidates to keep the graph dense.
  void SelectNeighbors(const std::vector<RankedSlot>& candidates,
                       std::vector<Slot>& chosen) const;
  /// Adds the back-edge to -> from, re-pruning to's list when full.
  void LinkBack(Slot to, Slot from);

  /// Greedy best-first beam search; key_of(slot) returns the ranking key.
  /// Fills `out` best-first with up to `ef` slots (minus `exclude`).
  template <typename KeyFn>
  void BeamSearch(std::span<const Slot> entries, std::size_t ef, Slot exclude,
                  const KeyFn& key_of, std::vector<RankedSlot>& out) const;

  [[nodiscard]] eval::KnnResult GraphSearch(std::span<const double> query_u,
                                            std::size_t k,
                                            eval::KnnOrdering ordering,
                                            std::size_t ef,
                                            std::size_t exclude_id) const;

  /// The shared search body: explicit query row + id to exclude (pass
  /// store.NodeCount() for "none").
  [[nodiscard]] eval::KnnResult SearchFrom(std::size_t exclude_id, std::size_t k,
                                           eval::KnnOrdering ordering,
                                           std::size_t ef,
                                           std::span<const double> query_u) const;

  const core::CoordinateStore* store_;
  PeerIndexOptions options_;
  std::size_t rank_;
  common::Rng rng_;

  std::vector<Slot> slot_of_;        // dense over node ids; kNoSlot = absent
  std::vector<std::size_t> id_of_;   // per slot
  std::vector<double> snap_v_;       // per slot: the indexed v row
  std::vector<Slot> adj_;            // per slot: `degree` edge slots
  std::vector<std::uint32_t> adj_len_;

  // Query scratch (epoch-marked visited set + beam heaps), shared across
  // searches — the reason concurrent queries are not safe.
  mutable std::vector<std::uint32_t> visited_;
  mutable std::uint32_t epoch_ = 0;
  mutable std::vector<RankedSlot> beam_candidates_;
  mutable std::vector<RankedSlot> beam_out_;
  mutable std::uint64_t score_evals_ = 0;
};

}  // namespace dmfsgd::ann
