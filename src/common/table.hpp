// Fixed-width ASCII table printer.
//
// Every bench binary regenerates a paper table or figure as text; this class
// gives them a uniform, aligned look, e.g.
//
//   +----------+---------+---------+
//   | dataset  | AUC     | acc%    |
//   +----------+---------+---------+
//   | Harvard  | 0.957   | 89.4    |
//   ...
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dmfsgd::common {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have exactly as many fields as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::vector<double>& row, int precision = 4);

  /// Renders the table with +/- borders to the stream.
  void Print(std::ostream& out) const;

  /// Renders to a string (used by tests).
  [[nodiscard]] std::string ToString() const;

  [[nodiscard]] std::size_t RowCount() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double to fixed precision, trimming to keep tables compact.
[[nodiscard]] std::string FormatFixed(double value, int precision);

/// Prints a named numeric series ("x y" pairs), the textual analogue of one
/// curve in a paper figure.
void PrintSeries(std::ostream& out, const std::string& name,
                 const std::vector<double>& xs, const std::vector<double>& ys,
                 int precision = 4);

}  // namespace dmfsgd::common
