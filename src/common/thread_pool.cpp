#include "common/thread_pool.hpp"

#include <algorithm>

namespace dmfsgd::common {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count - 1);
  // Worker w owns block w + 1; the calling thread owns block 0.
  for (std::size_t w = 0; w + 1 < thread_count; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::pair<std::size_t, std::size_t> BlockRange(std::size_t total,
                                               std::size_t parts,
                                               std::size_t index) {
  if (parts == 0 || index >= parts) {
    throw std::invalid_argument("BlockRange: bad partition");
  }
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  const std::size_t begin = index * base + std::min(index, extra);
  return {begin, begin + base + (index < extra ? 1 : 0)};
}

std::pair<std::size_t, std::size_t> ThreadPool::Block(
    std::size_t block, std::size_t begin, std::size_t end) const noexcept {
  const auto [lo, hi] = BlockRange(end - begin, thread_count(), block);
  return {begin + lo, begin + hi};
}

void ThreadPool::RunBlock(std::size_t block) {
  const auto [lo, hi] = Block(block, job_begin_, job_end_);
  if (lo >= hi) {
    return;
  }
  try {
    (*fn_)(lo, hi);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) {
      first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::WorkerLoop(std::size_t block_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) {
        return;
      }
      seen_epoch = epoch_;
    }
    // job_begin_/job_end_/fn_ are stable until every block reports done, so
    // reading them outside the lock is safe.
    RunBlock(block_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const RangeFn& fn) {
  if (begin >= end) {
    return;
  }
  if (workers_.empty()) {
    fn(begin, end);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    job_begin_ = begin;
    job_end_ = end;
    remaining_ = workers_.size();
    first_error_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunBlock(0);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    fn_ = nullptr;
    error = std::exchange(first_error_, nullptr);
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace dmfsgd::common
