#include "common/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dmfsgd::common {

namespace {

void RequireCleanField(const std::string& field, char separator) {
  if (field.find(separator) != std::string::npos ||
      field.find('\n') != std::string::npos ||
      field.find('\r') != std::string::npos) {
    throw std::invalid_argument("WriteCsv: field contains separator or newline: " +
                                field);
  }
}

void WriteRow(std::ofstream& out, const std::vector<std::string>& row, char separator) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    RequireCleanField(row[i], separator);
    if (i > 0) {
      out << separator;
    }
    out << row[i];
  }
  out << '\n';
}

}  // namespace

void WriteCsv(const std::filesystem::path& path,
              const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows,
              char separator) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("WriteCsv: cannot open " + path.string());
  }
  if (!header.empty()) {
    WriteRow(out, header, separator);
  }
  for (const auto& row : rows) {
    WriteRow(out, row, separator);
  }
  if (!out) {
    throw std::runtime_error("WriteCsv: write failed for " + path.string());
  }
}

CsvDocument ReadCsv(const std::filesystem::path& path, bool has_header, char separator) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ReadCsv: cannot open " + path.string());
  }
  CsvDocument doc;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    auto fields = SplitCsvLine(line, separator);
    if (first && has_header) {
      doc.header = std::move(fields);
    } else {
      doc.rows.push_back(std::move(fields));
    }
    first = false;
  }
  return doc;
}

std::vector<std::string> SplitCsvLine(const std::string& line, char separator) {
  std::vector<std::string> fields;
  std::string current;
  for (const char c : line) {
    if (c == separator) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

double ParseDouble(const std::string& field) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(field, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("ParseDouble: not a number: '" + field + "'");
  }
  if (consumed != field.size()) {
    throw std::invalid_argument("ParseDouble: trailing characters in '" + field + "'");
  }
  return value;
}

}  // namespace dmfsgd::common
