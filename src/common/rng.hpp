// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through an explicitly seeded Rng object
// (no global state, per C++ Core Guidelines I.2/I.3).  The generator is
// xoshiro256++ seeded via SplitMix64, which is fast, has a 2^256-1 period and
// passes BigCrush; std::mt19937 is avoided because its state is bulky to copy
// into the thousands of simulated nodes used by the experiments.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace dmfsgd::common {

/// SplitMix64 step; used to expand a single 64-bit seed into generator state.
/// Public because tests and hashing utilities reuse it.
[[nodiscard]] constexpr std::uint64_t SplitMix64Next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ deterministic PRNG.
///
/// Satisfies std::uniform_random_bit_generator so it can also be handed to
/// <random> distributions, although the member helpers below are preferred.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64 (never all-zero).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double Uniform() noexcept;

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  [[nodiscard]] double Uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.  Unbiased (Lemire rejection).
  [[nodiscard]] std::uint64_t UniformInt(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  [[nodiscard]] std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  [[nodiscard]] double Normal() noexcept;

  /// Normal with given mean and standard deviation.  Requires stddev >= 0.
  [[nodiscard]] double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)).  Requires sigma >= 0.
  [[nodiscard]] double LogNormal(double mu, double sigma);

  /// Exponential with the given rate.  Requires rate > 0.
  [[nodiscard]] double Exponential(double rate);

  /// True with probability p.  Requires p in [0, 1].
  [[nodiscard]] bool Bernoulli(double p);

  /// Pareto(scale, shape): heavy-tailed positive values >= scale.
  /// Requires scale > 0 and shape > 0.
  [[nodiscard]] double Pareto(double scale, double shape);

  /// Fisher-Yates shuffle of a span in place.
  template <typename T>
  void Shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = UniformInt(static_cast<std::uint64_t>(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (partial Fisher-Yates).
  /// Requires k <= n.
  [[nodiscard]] std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                                  std::size_t k);

  /// Independent child generator; decorrelated from this one and from other
  /// children (used to give every simulated node its own RNG).
  [[nodiscard]] Rng Split() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Samples ranks from a Zipf distribution over {0, .., n-1} with exponent s,
/// using precomputed CDF (suitable when n is at most a few thousand).
class ZipfSampler {
 public:
  /// Requires n > 0 and exponent >= 0 (0 degenerates to uniform).
  ZipfSampler(std::size_t n, double exponent);

  /// Draws one rank in [0, n).
  [[nodiscard]] std::size_t Sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dmfsgd::common
