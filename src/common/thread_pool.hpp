// Deterministic fork-join worker pool for the deployment sweeps.
//
// The repo's parallel hot paths (the per-round node sweep, the O(n²r)
// full-matrix evaluation) all have the same shape: a range of indices whose
// per-index work touches only index-owned state.  ParallelFor splits the
// range into `thread_count()` fixed contiguous blocks — block boundaries
// depend only on the range and the pool size, never on scheduling — and runs
// one block per thread, the calling thread included.  There is no work
// stealing and no dynamic chunking: a given (range, pool size) always yields
// the same block layout, so any computation whose per-index work is a pure
// function of index-owned state produces bit-identical results for every
// pool size, including 1 (which runs inline on the caller with no threads at
// all).  That property is what the parallel-sweep determinism test pins.
//
// ## Determinism contract for callers (DESIGN.md §6, §8, §9)
//
// The pool guarantees *where* indices run, never *when*; bit-identical
// results additionally require that the submitted fn:
//
//  * writes only index-owned state (rows, counters, RNG streams belonging
//    to the index being processed) — the engine's sweeps pair each node
//    with a private Rng::Split stream for exactly this reason;
//  * reads shared state only if it is frozen for the whole call (a
//    start-of-round snapshot, config, the dataset) — never state another
//    index may be mutating;
//  * performs no cross-index reduction inside the loop; reduce after the
//    join, in index order (or with order-insensitive integer sums).
//
// Violating any of these silently reintroduces schedule dependence — the
// determinism tests catch it only for the paths they pin.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace dmfsgd::common {

/// The contiguous block split behind every deterministic partition in the
/// repo — `total` items over `parts` blocks, the first (total % parts)
/// blocks one item larger.  ThreadPool::Block (indices → threads), the
/// sharded event queue's OwnersOfShard (owners → shards) and the shard
/// runtime's shard → process assignment all route through here; the queue's
/// ShardOf keeps a closed-form inverse, pinned against this by the
/// OwnersOfShardInvertsShardOf test.  Returns [begin, end) of `index`.
/// Requires parts >= 1, index < parts.
[[nodiscard]] std::pair<std::size_t, std::size_t> BlockRange(std::size_t total,
                                                             std::size_t parts,
                                                             std::size_t index);

class ThreadPool {
 public:
  /// fn(block_begin, block_end): processes one contiguous index block.
  using RangeFn = std::function<void(std::size_t, std::size_t)>;

  /// `thread_count` workers in total, the calling thread included; 0 means
  /// std::thread::hardware_concurrency().  A pool of 1 spawns no threads.
  explicit ThreadPool(std::size_t thread_count = 0);

  /// Joins all workers.  Must not be called while a ParallelFor is running.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ThreadPool(ThreadPool&&) = delete;
  ThreadPool& operator=(ThreadPool&&) = delete;

  /// Total workers, the calling thread included.
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Invokes fn once per non-empty block of [begin, end) and returns when
  /// every block has finished.  The first exception thrown by any block is
  /// rethrown on the caller after the join.  Not reentrant: fn must not call
  /// ParallelFor on the same pool.
  void ParallelFor(std::size_t begin, std::size_t end, const RangeFn& fn);

 private:
  void WorkerLoop(std::size_t block_index);

  /// Bounds of `block` when [begin, end) is split into thread_count() parts:
  /// the first (size % parts) blocks get one extra element.
  [[nodiscard]] std::pair<std::size_t, std::size_t> Block(
      std::size_t block, std::size_t begin, std::size_t end) const noexcept;

  void RunBlock(std::size_t block);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< signals a new job epoch (or stop)
  std::condition_variable done_cv_;   ///< signals remaining_ reached zero
  const RangeFn* fn_ = nullptr;       ///< current job; valid while remaining_ > 0
  std::size_t job_begin_ = 0;
  std::size_t job_end_ = 0;
  std::uint64_t epoch_ = 0;           ///< bumped per job so workers never re-run one
  std::size_t remaining_ = 0;         ///< worker blocks not yet finished
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace dmfsgd::common
