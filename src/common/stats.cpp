#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace dmfsgd::common {

namespace {

void RequireNonEmpty(std::span<const double> values, const char* what) {
  if (values.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty input");
  }
}

/// Percentile of an already-sorted sample (linear interpolation).
[[nodiscard]] double SortedPercentile(std::span<const double> sorted, double p) {
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double Mean(std::span<const double> values) {
  RequireNonEmpty(values, "Mean");
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  if (values.size() < 2) {
    throw std::invalid_argument("Variance: need at least two values");
  }
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (const double v : values) {
    const double d = v - mean;
    sum_sq += d * d;
  }
  return sum_sq / static_cast<double>(values.size() - 1);
}

double StdDev(std::span<const double> values) { return std::sqrt(Variance(values)); }

double Median(std::span<const double> values) { return Percentile(values, 50.0); }

double Percentile(std::span<const double> values, double p) {
  RequireNonEmpty(values, "Percentile");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("Percentile: p must be in [0, 100]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return SortedPercentile(sorted, p);
}

double Min(std::span<const double> values) {
  RequireNonEmpty(values, "Min");
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  RequireNonEmpty(values, "Max");
  return *std::max_element(values.begin(), values.end());
}

Summary Summarize(std::span<const double> values) {
  if (values.size() < 2) {
    throw std::invalid_argument("Summarize: need at least two values");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = sorted.size();
  s.mean = Mean(sorted);
  s.stddev = StdDev(sorted);
  s.min = sorted.front();
  s.p25 = SortedPercentile(sorted, 25.0);
  s.median = SortedPercentile(sorted, 50.0);
  s.p75 = SortedPercentile(sorted, 75.0);
  s.max = sorted.back();
  return s;
}

void RunningStats::Add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::Mean() const {
  if (count_ == 0) {
    throw std::logic_error("RunningStats::Mean: no samples");
  }
  return mean_;
}

double RunningStats::Variance() const {
  if (count_ < 2) {
    throw std::logic_error("RunningStats::Variance: need at least two samples");
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const {
  if (count_ == 0) {
    throw std::logic_error("RunningStats::Min: no samples");
  }
  return min_;
}

double RunningStats::Max() const {
  if (count_ == 0) {
    throw std::logic_error("RunningStats::Max: no samples");
  }
  return max_;
}

}  // namespace dmfsgd::common
