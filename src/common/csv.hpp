// Minimal CSV reader/writer used to persist datasets and experiment results.
//
// The dialect is deliberately simple (no quoting; fields must not contain the
// separator or newlines), which is sufficient for the numeric tables this
// library produces and keeps parsing unambiguous.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace dmfsgd::common {

/// A parsed CSV document: rows of string fields.
struct CsvDocument {
  std::vector<std::string> header;            ///< empty if has_header was false
  std::vector<std::vector<std::string>> rows;  ///< data rows, field-split
};

/// Writes rows (with optional header) to `path`, creating parent directories.
/// Throws std::runtime_error on IO failure and std::invalid_argument if any
/// field contains the separator or a newline.
void WriteCsv(const std::filesystem::path& path,
              const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows,
              char separator = ',');

/// Reads a CSV file written by WriteCsv (or any unquoted CSV).
/// Throws std::runtime_error if the file cannot be opened.
[[nodiscard]] CsvDocument ReadCsv(const std::filesystem::path& path,
                                  bool has_header = true,
                                  char separator = ',');

/// Splits a single line on `separator` (no quoting).
[[nodiscard]] std::vector<std::string> SplitCsvLine(const std::string& line,
                                                    char separator = ',');

/// Formats a double with enough digits (%.17g) that parsing the field back
/// recovers the exact bits.  The snapshot log (svc/snapshot_log.hpp) pins
/// restart-from-snapshot bit-identical to the live store, so lossy
/// formatting here would silently break recovery.
[[nodiscard]] std::string FormatDouble(double value);

/// Parses a double; throws std::invalid_argument on garbage or trailing junk.
[[nodiscard]] double ParseDouble(const std::string& field);

}  // namespace dmfsgd::common
