#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace dmfsgd::common {

namespace {

[[nodiscard]] constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64Next(sm);
  }
  // xoshiro256++ must not be seeded with all zeros; SplitMix64 cannot emit
  // four consecutive zeros, so no further check is needed.
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() noexcept {
  // Top 53 bits mapped to [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  if (lo > hi) {
    throw std::invalid_argument("Rng::Uniform: lo > hi");
  }
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  if (n == 0) {
    throw std::invalid_argument("Rng::UniformInt: n must be positive");
  }
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("Rng::UniformInt: lo > hi");
  }
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(UniformInt(span));
}

double Rng::Normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 0.0) {  // log(0) guard; probability ~2^-53 per draw
    u1 = Uniform();
  }
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  if (stddev < 0.0) {
    throw std::invalid_argument("Rng::Normal: stddev must be >= 0");
  }
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument("Rng::Exponential: rate must be > 0");
  }
  double u = Uniform();
  while (u <= 0.0) {
    u = Uniform();
  }
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Rng::Bernoulli: p must be in [0, 1]");
  }
  return Uniform() < p;
}

double Rng::Pareto(double scale, double shape) {
  if (scale <= 0.0 || shape <= 0.0) {
    throw std::invalid_argument("Rng::Pareto: scale and shape must be > 0");
  }
  double u = Uniform();
  while (u <= 0.0) {
    u = Uniform();
  }
  return scale / std::pow(u, 1.0 / shape);
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n, std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("Rng::SampleWithoutReplacement: k > n");
  }
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool[i] = i;
  }
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + UniformInt(static_cast<std::uint64_t>(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Split() noexcept {
  // Derive a child seed from two raw outputs; mixing through SplitMix64 in
  // the constructor decorrelates the child stream from the parent.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ Rotl(b, 32) ^ 0x9e3779b97f4a7c15ULL);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) {
    throw std::invalid_argument("ZipfSampler: n must be positive");
  }
  if (exponent < 0.0) {
    throw std::invalid_argument("ZipfSampler: exponent must be >= 0");
  }
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    cdf_[rank] = total;
  }
  for (auto& value : cdf_) {
    value /= total;
  }
  cdf_.back() = 1.0;  // guard against rounding drift at the tail
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.Uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace dmfsgd::common
