// Tiny command-line flag parser for the example and bench binaries.
//
// Supports `--name=value` and boolean `--name` arguments.  Unknown flags are
// rejected so typos fail fast.  The paper harnesses use this for e.g.
// `--quick` (reduced sweeps) and `--seed=N`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dmfsgd::common {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed or unknown flags.
  /// `allowed` lists the accepted flag names (without the leading dashes).
  Flags(int argc, const char* const* argv, const std::vector<std::string>& allowed);

  /// True if `--name` or `--name=...` was given.
  [[nodiscard]] bool Has(const std::string& name) const;

  /// String value, or `fallback` if not given.
  [[nodiscard]] std::string GetString(const std::string& name,
                                      const std::string& fallback) const;

  /// Integer value, or `fallback` if not given; throws on non-numeric value.
  [[nodiscard]] std::int64_t GetInt(const std::string& name,
                                    std::int64_t fallback) const;

  /// Double value, or `fallback` if not given; throws on non-numeric value.
  [[nodiscard]] double GetDouble(const std::string& name, double fallback) const;

  /// Boolean flag (present without value, or =true/=false).
  [[nodiscard]] bool GetBool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& Positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dmfsgd::common
