// Tiny command-line flag parser for the example and bench binaries.
//
// Supports `--name=value` and boolean `--name` arguments.  Unknown flags are
// rejected so typos fail fast.  The paper harnesses use this for e.g.
// `--quick` (reduced sweeps) and `--seed=N`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dmfsgd::core {
struct ProtocolConfig;
}

namespace dmfsgd::common {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed or unknown flags.
  /// `allowed` lists the accepted flag names (without the leading dashes).
  Flags(int argc, const char* const* argv, const std::vector<std::string>& allowed);

  /// True if `--name` or `--name=...` was given.
  [[nodiscard]] bool Has(const std::string& name) const;

  /// String value, or `fallback` if not given.
  [[nodiscard]] std::string GetString(const std::string& name,
                                      const std::string& fallback) const;

  /// Integer value, or `fallback` if not given; throws on non-numeric value.
  [[nodiscard]] std::int64_t GetInt(const std::string& name,
                                    std::int64_t fallback) const;

  /// Double value, or `fallback` if not given; throws on non-numeric value.
  [[nodiscard]] double GetDouble(const std::string& name, double fallback) const;

  /// Boolean flag (present without value, or =true/=false).
  [[nodiscard]] bool GetBool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& Positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// The flag names of the shared protocol knobs (core/protocol_config.hpp):
/// --rank, --eta, --lambda, --loss, --tau, --seed, --batch-size, --coalesce,
/// --compile-rounds.  Binaries append these to their allow-list so every
/// front end spells the knobs the same way.
[[nodiscard]] std::vector<std::string> ProtocolFlagNames();

/// `base` plus ProtocolFlagNames() — the usual way a binary builds its
/// allow-list.
[[nodiscard]] std::vector<std::string> WithProtocolFlagNames(
    std::vector<std::string> base);

/// Applies the shared protocol flags onto `config`.  Absent flags keep the
/// config's current values, so the defaults live in ProtocolConfig alone;
/// --tau absent falls back to `tau_fallback` when it is > 0 (callers pass
/// the dataset's median value, the paper's threshold choice).  --batch-size
/// sets probe_burst; front-end couplings (e.g. the simulator's mini-batch
/// fold size under --coalesce) stay at the caller.  Throws
/// std::invalid_argument on malformed values.
void ApplyProtocolFlags(const Flags& flags, core::ProtocolConfig& config,
                        double tau_fallback = 0.0);

}  // namespace dmfsgd::common
