#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dmfsgd::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: header must not be empty");
  }
}

void Table::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::AddRow: expected " +
                                std::to_string(header_.size()) + " fields, got " +
                                std::to_string(row.size()));
  }
  rows_.push_back(std::move(row));
}

void Table::AddRow(const std::vector<double>& row, int precision) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (const double value : row) {
    fields.push_back(FormatFixed(value, precision));
  }
  AddRow(std::move(fields));
}

void Table::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_border = [&] {
    out << '+';
    for (const std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size() + 1, ' ') << '|';
    }
    out << '\n';
  };

  print_border();
  print_row(header_);
  print_border();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_border();
}

std::string Table::ToString() const {
  std::ostringstream out;
  Print(out);
  return out.str();
}

std::string FormatFixed(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void PrintSeries(std::ostream& out, const std::string& name,
                 const std::vector<double>& xs, const std::vector<double>& ys,
                 int precision) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("PrintSeries: xs and ys must have equal size");
  }
  out << "# series: " << name << '\n';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out << FormatFixed(xs[i], precision) << ' ' << FormatFixed(ys[i], precision)
        << '\n';
  }
}

}  // namespace dmfsgd::common
