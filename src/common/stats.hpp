// Small descriptive-statistics toolkit used by dataset generators, the
// evaluation library and the experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dmfsgd::common {

/// Arithmetic mean.  Requires a non-empty input.
[[nodiscard]] double Mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator).  Requires size >= 2.
[[nodiscard]] double Variance(std::span<const double> values);

/// Unbiased sample standard deviation.  Requires size >= 2.
[[nodiscard]] double StdDev(std::span<const double> values);

/// Median (average of middle two for even sizes).  Requires non-empty input.
/// Does not modify the input.
[[nodiscard]] double Median(std::span<const double> values);

/// p-th percentile with linear interpolation between closest ranks,
/// p in [0, 100].  Requires non-empty input.  Does not modify the input.
[[nodiscard]] double Percentile(std::span<const double> values, double p);

/// Minimum.  Requires non-empty input.
[[nodiscard]] double Min(std::span<const double> values);

/// Maximum.  Requires non-empty input.
[[nodiscard]] double Max(std::span<const double> values);

/// Summary of a sample, produced in a single pass over the (copied) data.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Computes a five-number-plus summary.  Requires size >= 2.
[[nodiscard]] Summary Summarize(std::span<const double> values);

/// Streaming mean/variance accumulator (Welford).  Useful when the sample is
/// too large to buffer, e.g. per-pair error statistics over n^2 entries.
class RunningStats {
 public:
  void Add(double value) noexcept;

  [[nodiscard]] std::size_t Count() const noexcept { return count_; }
  /// Requires Count() >= 1.
  [[nodiscard]] double Mean() const;
  /// Unbiased sample variance; requires Count() >= 2.
  [[nodiscard]] double Variance() const;
  [[nodiscard]] double StdDev() const;
  /// Requires Count() >= 1.
  [[nodiscard]] double Min() const;
  /// Requires Count() >= 1.
  [[nodiscard]] double Max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dmfsgd::common
