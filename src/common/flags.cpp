#include "common/flags.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/csv.hpp"  // ParseDouble
#include "core/protocol_config.hpp"

namespace dmfsgd::common {

Flags::Flags(int argc, const char* const* argv,
             const std::vector<std::string>& allowed) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    const std::string name = body.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : body.substr(eq + 1);
    if (name.empty()) {
      throw std::invalid_argument("Flags: malformed argument '" + arg + "'");
    }
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      throw std::invalid_argument("Flags: unknown flag '--" + name + "'");
    }
    values_[name] = value;
  }
}

bool Flags::Has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  std::size_t consumed = 0;
  const std::int64_t value = std::stoll(it->second, &consumed);
  if (consumed != it->second.size()) {
    throw std::invalid_argument("Flags: --" + name + " expects an integer");
  }
  return value;
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  return ParseDouble(it->second);
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return fallback;
  }
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  if (it->second == "false" || it->second == "0") {
    return false;
  }
  throw std::invalid_argument("Flags: --" + name + " expects a boolean");
}

std::vector<std::string> ProtocolFlagNames() {
  return {"rank",      "eta",  "lambda",     "loss",    "tau",
          "seed",      "batch-size", "coalesce", "compile-rounds"};
}

std::vector<std::string> WithProtocolFlagNames(std::vector<std::string> base) {
  for (std::string& name : ProtocolFlagNames()) {
    base.push_back(std::move(name));
  }
  return base;
}

void ApplyProtocolFlags(const Flags& flags, core::ProtocolConfig& config,
                        double tau_fallback) {
  config.rank = static_cast<std::size_t>(
      flags.GetInt("rank", static_cast<std::int64_t>(config.rank)));
  config.params.eta = flags.GetDouble("eta", config.params.eta);
  config.params.lambda = flags.GetDouble("lambda", config.params.lambda);
  if (flags.Has("loss")) {
    config.params.loss = core::ParseLossName(flags.GetString("loss", ""));
  }
  config.tau = flags.GetDouble("tau",
                               tau_fallback > 0.0 ? tau_fallback : config.tau);
  config.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", static_cast<std::int64_t>(config.seed)));
  config.probe_burst = static_cast<std::size_t>(flags.GetInt(
      "batch-size", static_cast<std::int64_t>(config.probe_burst)));
  config.coalesce_delivery =
      flags.GetBool("coalesce", config.coalesce_delivery);
  config.compile_rounds =
      flags.GetBool("compile-rounds", config.compile_rounds);
}

}  // namespace dmfsgd::common
