// Delta-encoded snapshot persistence for the resident coordinate service
// (DESIGN.md §17).
//
// A long-lived deployment cannot afford to rewrite all n·2r factors every
// few seconds, but it also cannot afford to lose the learned state on a
// crash.  The snapshot log splits persistence into a full **base image**
// (the core/snapshot CSV format, written once per log generation) plus an
// append-only **delta log**: each epoch carries only the rows training
// dirtied since the previous epoch (the engine's drift-tracking feed —
// the same dirty set the ANN index absorbs), framed as
//
//   epoch,<id>,<row count>
//   <node>,u_0,...,u_{r-1},v_0,...,v_{r-1}     x row count
//   commit,<id>,<fnv1a64 of the epoch's bytes>
//
// The commit line makes every epoch atomic-by-construction on any
// filesystem that appends in order: a crash mid-epoch leaves a tail with no
// valid commit, and recovery simply discards everything after the last
// epoch whose checksum verifies — the *last-good-epoch* state, which is
// bit-identical to the live store at the moment that epoch was appended
// (doubles round-trip exactly through common::FormatDouble's %.17g).
//
// One directory holds one log generation: base.csv + deltas.log.  Starting
// a writer begins a fresh generation (new base from the current store,
// truncated delta log); a service that restarts therefore recovers first,
// then starts a new generation from the recovered state.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>

#include "core/coordinate_store.hpp"
#include "core/messages.hpp"

namespace dmfsgd::svc {

/// Appends delta epochs on top of a freshly written base image.
class SnapshotLogWriter {
 public:
  /// Starts a new log generation rooted at `dir` (created if missing):
  /// writes `store` as the base image and truncates any previous delta
  /// tail.  Throws std::runtime_error if the directory or files cannot be
  /// written.
  SnapshotLogWriter(std::filesystem::path dir, const core::CoordinateStore& store);

  /// Appends one delta epoch holding `rows`' current u/v values (callers
  /// pass the dirty set drained since the last epoch, ascending — the
  /// TakeDirtyNodes order).  An empty row set still writes an (empty)
  /// epoch, so "nothing changed" is distinguishable from "crashed before
  /// the epoch".  Flushes before returning: once AppendDelta returns, the
  /// epoch survives a process crash.  Throws std::out_of_range on a bad
  /// row id.
  void AppendDelta(const core::CoordinateStore& store,
                   std::span<const core::NodeId> rows);

  /// Committed epochs appended by this writer (the base image is epoch 0).
  [[nodiscard]] std::uint64_t Epochs() const noexcept { return epochs_; }

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

 private:
  std::filesystem::path dir_;
  std::ofstream deltas_;
  std::uint64_t epochs_ = 0;
};

struct SnapshotLogRecovery {
  /// Base image with every committed delta epoch applied, in order.
  core::CoordinateStore store;
  /// Committed epochs applied.
  std::uint64_t epochs = 0;
  /// True if the delta log held bytes past the last valid commit (a crash
  /// mid-epoch); they were discarded — `store` is the last-good-epoch state.
  bool truncated_tail = false;
};

/// Recovers the store a log generation describes, tolerating a torn tail.
/// Returns std::nullopt if `dir` holds no base image (nothing to recover —
/// a fresh start, not an error).  Throws std::runtime_error only if the
/// base image itself is unreadable (without it no consistent state exists).
[[nodiscard]] std::optional<SnapshotLogRecovery> RecoverSnapshotLog(
    const std::filesystem::path& dir);

}  // namespace dmfsgd::svc
