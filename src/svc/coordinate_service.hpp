// The resident coordinate service (DESIGN.md §17): one front door over the
// deployment engine, the ANN query plane and the snapshot log.
//
// The paper's end state is not a convergence experiment but a running
// system — nodes continuously measure, coordinates continuously train, and
// applications continuously ask "how far is j" / "who are my best peers"
// (conf_conext_LiaoDGL11 §1, §5).  CoordinateService is that system's
// node-set-in-one-process form, organized as three planes:
//
//  * **ingest plane** — a push API: every measurement (pushed pair, active
//    probe, trace replay window, warm-up round) funnels into the engine's
//    exchange machinery through the round driver's channel stack, so all
//    protocol semantics (loss, churn, coalescing, mini-batch, compiled
//    envelopes) apply to served deployments unchanged.
//  * **query plane** — live bilinear scores (DESIGN.md §16): point-to-point
//    score/quantity, multiclass level readout, and k-nearest-peer queries
//    through a resident ann::PeerIndex that is kept warm by draining the
//    engine's dirty set on a *staleness budget*: after at most
//    `staleness_budget` ingests the index absorbs accumulated drift
//    (PeerIndex::ApplyUpdates — epsilon-skip / re-link / rebuild).  Because
//    the index ranks by live scores, staleness only ever degrades *routing*
//    (recall), never the scores an application sees, and CurrentStaleness()
//    is bounded by the budget at every query.
//  * **snapshot plane** — incremental persistence: a snapshot-log generation
//    (base image + delta epochs of only the rows dirtied since the last
//    epoch, svc/snapshot_log.hpp) appended every `snapshot_interval`
//    ingests.  On start, an existing generation in `snapshot_dir` is
//    recovered first (tolerating a torn tail from a crash) and the engine
//    warm-restarts from it bit-identically; a fresh generation then begins
//    from the recovered state.
//
// Determinism: the service adds no randomness of its own — every draw is
// the engine's — so the answer stream is a pure function of (dataset,
// config, ingest sequence).  Index maintenance reads coordinates but never
// writes them, so query answers are also independent of *when* the index
// absorbs drift: any staleness budget yields the same scores, and exact-
// mode k-NN (ef >= n) the same peers.
//
// Concurrency (DESIGN.md §18): the service is a reader–writer split over
// one shared_mutex.  The const query plane (QueryScore / QueryQuantity /
// QueryLevel / QueryNearestPeers, plus stats() and CurrentStaleness())
// takes the lock shared — any number of query threads run concurrently,
// each leasing its own search scratch from the index underneath — while
// the ingest and snapshot planes (Ingest* / Checkpoint) take it exclusive,
// so index refreshes and coordinate writes never race a query.  Queries
// are pure reads: on a quiescent service, N-thread query results are
// bit-identical to single-thread (the walk is a pure function of the
// index and the store — pinned by the concurrent-query tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "ann/peer_index.hpp"
#include "core/simulation.hpp"
#include "svc/snapshot_log.hpp"

namespace dmfsgd::svc {

/// The service's config: the shared protocol knobs (core/protocol_config.hpp,
/// validated by the one shared ValidateProtocolConfig) plus the serving
/// knobs below.
struct ServiceConfig : core::ProtocolConfig {
  core::PredictionMode mode = core::PredictionMode::kClassification;
  std::size_t neighbor_count = 10;  ///< k — membership set per node
  double message_loss = 0.0;        ///< per-leg drop probability in [0, 1)
  double churn_rate = 0.0;          ///< per-round membership churn

  // -- query plane ----------------------------------------------------------

  /// Max ingests between index drift absorptions; must be >= 1.  Small =
  /// fresher routing, more maintenance; CurrentStaleness() never exceeds it.
  std::size_t staleness_budget = 256;
  ann::PeerIndexOptions index;

  /// Score thresholds for QueryLevel (ascending quality): the level is the
  /// number of thresholds the live score beats in the mode's "better"
  /// direction.  The default {0} is the paper's binary rule — level 1 ⇔
  /// predicted good — and multiclass deployments pass C-1 thresholds
  /// (quantity thresholds divided by τ in regression mode).
  std::vector<double> class_thresholds = {0.0};

  // -- snapshot plane -------------------------------------------------------

  /// Log-generation directory; empty disables persistence.
  std::filesystem::path snapshot_dir;
  /// Ingests per delta epoch (when persistence is on); must be >= 1.
  std::size_t snapshot_interval = 4096;
};

class CoordinateService {
 public:
  /// Builds the resident deployment over `dataset` (which must outlive the
  /// service).  With a snapshot_dir set, recovers any existing log
  /// generation first — the warm restart — and starts a new generation from
  /// the (possibly recovered) state.  Throws std::invalid_argument on a bad
  /// config.
  CoordinateService(const datasets::Dataset& dataset, const ServiceConfig& config);

  // The engine underneath is self-referential; the service inherits its
  // pinned-in-place nature.
  CoordinateService(const CoordinateService&) = delete;
  CoordinateService& operator=(const CoordinateService&) = delete;

  // -- ingest plane ---------------------------------------------------------

  /// Pushes one measurement: launches the exchange prober -> target.
  /// `observed_quantity` carries a live measurement (requires per-message
  /// delivery, like trace replay); without it the dataset matrix supplies
  /// the ground truth.  Returns whether a measurement was applied (a lost
  /// protocol leg loses it, as in any deployment).  Throws std::out_of_range
  /// on a bad id and std::invalid_argument on a self-probe.
  bool Ingest(core::NodeId prober, core::NodeId target,
              std::optional<double> observed_quantity = std::nullopt);

  /// Active probe: the engine picks `prober`'s next target per the
  /// configured strategy.  Returns the target.
  core::NodeId IngestProbe(core::NodeId prober);

  /// Warm-up / background training: full probing rounds (every node probes
  /// once per round; compiled when config.compile_rounds).  Counts as
  /// NodeCount() ingests per round against the staleness budget and
  /// snapshot interval.
  void IngestRounds(std::size_t rounds);

  /// Replays trace records [begin, end) (the passive-overlay regime);
  /// returns the number applied.  Throws if the dataset has no trace.
  std::size_t IngestTrace(std::size_t begin, std::size_t end);

  // -- query plane (live bilinear scores, DESIGN.md §16, §18) ---------------
  //
  // All Query* methods are const shared-lock readers: safe from any number
  // of threads concurrently, and concurrently with the exclusive ingest
  // plane (a query observes the state before or after an ingest, never a
  // torn one).

  /// x̂_ij = u_i · v_j, live.  Throws std::out_of_range on bad indices.
  [[nodiscard]] double QueryScore(std::size_t i, std::size_t j) const;

  /// The metric-unit readout x̂ · τ — in regression mode the predicted
  /// quantity (the §3 τ-normalization inverted); in classification mode a
  /// score scaled into quantity range (the sign rule is QueryLevel's job).
  [[nodiscard]] double QueryQuantity(std::size_t i, std::size_t j) const;

  /// Multiclass readout: thresholds from config.class_thresholds beaten by
  /// the live score, in the mode's "better" direction (0 = worst class).
  [[nodiscard]] std::size_t QueryLevel(std::size_t i, std::size_t j) const;

  /// k best peers for node i by live score through the warm index.
  /// `ef` widens the beam (0 = the configured default; ef >= n is exact
  /// mode, bit-identical to the brute-force oracle).  Node i itself is
  /// excluded.  Throws std::out_of_range on a bad id.
  [[nodiscard]] eval::KnnResult QueryNearestPeers(std::size_t i, std::size_t k,
                                                  std::size_t ef = 0) const;

  /// The "better" direction queries rank under: largest-first score in
  /// classification mode, the metric's quantity ordering in regression.
  [[nodiscard]] eval::KnnOrdering DefaultOrdering() const noexcept;

  // -- snapshot plane -------------------------------------------------------

  /// Forces a delta epoch now (clean-shutdown flush; the periodic cadence
  /// otherwise decides).  No-op when persistence is off.
  void Checkpoint();

  // -- introspection --------------------------------------------------------

  struct Stats {
    std::uint64_t ingests = 0;          ///< measurements applied
    std::uint64_t queries = 0;          ///< Query* calls answered
    std::uint64_t index_refreshes = 0;  ///< staleness-budget absorptions
    std::uint64_t index_relinks = 0;    ///< members re-linked across refreshes
    std::uint64_t index_rebuilds = 0;   ///< full rebuild escalations
    std::uint64_t epochs = 0;           ///< delta epochs appended this run
    bool resumed = false;               ///< warm-restarted from a recovered log
    bool recovered_torn_tail = false;   ///< that recovery discarded a torn epoch
  };
  /// A consistent snapshot of the counters (shared-lock reader; the query
  /// counter is an atomic fed by the lock-sharing query plane).
  [[nodiscard]] Stats stats() const;

  /// Ingests since the index last absorbed drift; <= config.staleness_budget
  /// at all times (the CI-pinned bound).  Shared-lock reader.
  [[nodiscard]] std::size_t CurrentStaleness() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }
  [[nodiscard]] const core::DeploymentEngine& engine() const noexcept {
    return simulation_.engine();
  }
  [[nodiscard]] const core::CoordinateStore& store() const noexcept {
    return engine().store();
  }
  [[nodiscard]] const datasets::Dataset& dataset() const noexcept {
    return engine().dataset();
  }
  [[nodiscard]] std::size_t NodeCount() const noexcept {
    return engine().NodeCount();
  }

 private:
  /// Cadence bookkeeping after `count` applied measurements: drains the
  /// engine dirty set into the two pending masks lazily (only when a
  /// consumer is due — the drain is destructive and O(n), so the hot ingest
  /// path must not pay it per measurement).
  void AccountIngest(std::size_t count);
  void DrainDirty();
  void RefreshIndex();
  void AppendEpoch();
  [[nodiscard]] std::vector<core::NodeId> TakeMask(
      std::vector<unsigned char>& mask);
  /// The raw live score; callers hold the lock (shared suffices — a score
  /// is a pure read of two store rows).
  [[nodiscard]] double ScoreLocked(std::size_t i, std::size_t j) const;

  ServiceConfig config_;
  core::DmfsgdSimulation simulation_;
  std::optional<ann::PeerIndex> index_;    // engaged for the service's life
  std::optional<SnapshotLogWriter> log_;   // engaged iff persistence is on

  // The reader–writer split (DESIGN.md §18): Query*/stats/CurrentStaleness
  // share, Ingest*/Checkpoint are exclusive.  The query counter is atomic
  // because lock-sharing queries may bump it concurrently.
  mutable std::shared_mutex state_mutex_;
  mutable std::atomic<std::uint64_t> query_count_{0};

  // Dirty ids awaiting each consumer (the engine drain feeds both): byte
  // masks so merging a drain is O(drained), materialized ascending on use.
  std::vector<unsigned char> pending_index_;
  std::vector<unsigned char> pending_snapshot_;
  std::size_t staleness_ = 0;    ///< ingests since the last index refresh
  std::size_t since_epoch_ = 0;  ///< ingests since the last delta epoch
  Stats stats_;
};

}  // namespace dmfsgd::svc
