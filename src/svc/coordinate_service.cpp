#include "svc/coordinate_service.hpp"

#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <utility>

namespace dmfsgd::svc {

namespace {

core::SimulationConfig SimulationConfigFor(const ServiceConfig& config) {
  core::SimulationConfig sim;
  static_cast<core::ProtocolConfig&>(sim) = config;  // the shared knobs
  sim.mode = config.mode;
  sim.neighbor_count = config.neighbor_count;
  sim.message_loss = config.message_loss;
  sim.churn_rate = config.churn_rate;
  return sim;
}

const ServiceConfig& RequireServiceConfig(const ServiceConfig& config) {
  // The shared knobs go through the one shared validator; the engine
  // re-validates them on construction, which is fine — same function,
  // same rules.
  core::ValidateProtocolConfig(config, "svc::CoordinateService");
  if (config.staleness_budget == 0) {
    throw std::invalid_argument(
        "svc::CoordinateService: staleness_budget must be >= 1");
  }
  if (config.snapshot_interval == 0) {
    throw std::invalid_argument(
        "svc::CoordinateService: snapshot_interval must be >= 1");
  }
  return config;
}

}  // namespace

CoordinateService::CoordinateService(const datasets::Dataset& dataset,
                                     const ServiceConfig& config)
    : config_(RequireServiceConfig(config)),
      simulation_(dataset, SimulationConfigFor(config_)),
      pending_index_(simulation_.NodeCount(), 0),
      pending_snapshot_(simulation_.NodeCount(), 0) {
  // Warm restart: recover any prior log generation *before* tracking or
  // indexing starts, so the index snapshots the recovered rows and the new
  // generation's base image is the recovered state.
  if (!config_.snapshot_dir.empty()) {
    if (auto recovered = RecoverSnapshotLog(config_.snapshot_dir)) {
      simulation_.RestoreCoordinates(recovered->store);
      stats_.resumed = true;
      stats_.recovered_torn_tail = recovered->truncated_tail;
    }
  }
  simulation_.EnableDriftTracking();
  index_.emplace(store(), config_.index);
  if (!config_.snapshot_dir.empty()) {
    log_.emplace(config_.snapshot_dir, store());
  }
}

// -- ingest plane -----------------------------------------------------------

bool CoordinateService::Ingest(core::NodeId prober, core::NodeId target,
                               std::optional<double> observed_quantity) {
  const std::unique_lock<std::shared_mutex> lock(state_mutex_);
  if (prober >= NodeCount() || target >= NodeCount()) {
    throw std::out_of_range("svc::CoordinateService::Ingest: node id out of range");
  }
  if (prober == target) {
    throw std::invalid_argument("svc::CoordinateService::Ingest: self-probe");
  }
  const bool applied = simulation_.Ingest(prober, target, observed_quantity);
  if (applied) {
    AccountIngest(1);
  }
  return applied;
}

core::NodeId CoordinateService::IngestProbe(core::NodeId prober) {
  const std::unique_lock<std::shared_mutex> lock(state_mutex_);
  if (prober >= NodeCount()) {
    throw std::out_of_range(
        "svc::CoordinateService::IngestProbe: node id out of range");
  }
  const std::size_t before = simulation_.MeasurementCount();
  const core::NodeId target = simulation_.IngestProbe(prober);
  AccountIngest(simulation_.MeasurementCount() - before);
  return target;
}

void CoordinateService::IngestRounds(std::size_t rounds) {
  for (std::size_t round = 0; round < rounds; ++round) {
    // One round per exclusive hold — a round is the service's largest
    // indivisible ingest, and re-taking the lock between rounds lets
    // waiting queries interleave with long warm-ups.
    const std::unique_lock<std::shared_mutex> lock(state_mutex_);
    const std::size_t before = simulation_.MeasurementCount();
    if (config_.compile_rounds) {
      simulation_.RunRoundsCompiled(1);
    } else {
      simulation_.RunRounds(1);
    }
    // Per-round accounting keeps the staleness bound honest at round
    // granularity.
    AccountIngest(simulation_.MeasurementCount() - before);
  }
}

std::size_t CoordinateService::IngestTrace(std::size_t begin, std::size_t end) {
  const std::unique_lock<std::shared_mutex> lock(state_mutex_);
  const std::size_t applied = simulation_.ReplayTrace(begin, end);
  AccountIngest(applied);
  return applied;
}

// -- query plane ------------------------------------------------------------

double CoordinateService::ScoreLocked(std::size_t i, std::size_t j) const {
  query_count_.fetch_add(1, std::memory_order_relaxed);
  return simulation_.engine().Predict(i, j);
}

double CoordinateService::QueryScore(std::size_t i, std::size_t j) const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return ScoreLocked(i, j);
}

double CoordinateService::QueryQuantity(std::size_t i, std::size_t j) const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return ScoreLocked(i, j) * config_.tau;
}

std::size_t CoordinateService::QueryLevel(std::size_t i, std::size_t j) const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  const double score = ScoreLocked(i, j);
  const bool higher_better =
      DefaultOrdering() == eval::KnnOrdering::kLargestFirst;
  std::size_t level = 0;
  for (const double threshold : config_.class_thresholds) {
    if (higher_better ? score > threshold : score < threshold) {
      ++level;
    }
  }
  return level;
}

eval::KnnResult CoordinateService::QueryNearestPeers(std::size_t i,
                                                     std::size_t k,
                                                     std::size_t ef) const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  query_count_.fetch_add(1, std::memory_order_relaxed);
  return index_->SearchFrom(i, k, DefaultOrdering(), ef);
}

eval::KnnOrdering CoordinateService::DefaultOrdering() const noexcept {
  if (config_.mode == core::PredictionMode::kClassification) {
    // Classification scores are trained toward ±1 labels where +1 = good,
    // so higher is better regardless of the underlying metric.
    return eval::KnnOrdering::kLargestFirst;
  }
  return eval::RegressionOrderingFor(dataset().metric);
}

// -- snapshot plane ---------------------------------------------------------

void CoordinateService::Checkpoint() {
  const std::unique_lock<std::shared_mutex> lock(state_mutex_);
  if (log_) {
    AppendEpoch();
  }
}

// -- introspection ----------------------------------------------------------

CoordinateService::Stats CoordinateService::stats() const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  Stats out = stats_;
  out.queries = query_count_.load(std::memory_order_relaxed);
  return out;
}

std::size_t CoordinateService::CurrentStaleness() const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return staleness_;
}

// -- cadence ----------------------------------------------------------------

void CoordinateService::AccountIngest(std::size_t count) {
  if (count == 0) {
    return;
  }
  stats_.ingests += count;
  staleness_ += count;
  since_epoch_ += count;
  if (staleness_ >= config_.staleness_budget) {
    RefreshIndex();
  }
  if (log_ && since_epoch_ >= config_.snapshot_interval) {
    AppendEpoch();
  }
}

void CoordinateService::DrainDirty() {
  for (const core::NodeId id : simulation_.TakeDirtyNodes()) {
    pending_index_[id] = 1;
    pending_snapshot_[id] = 1;
  }
}

std::vector<core::NodeId> CoordinateService::TakeMask(
    std::vector<unsigned char>& mask) {
  std::vector<core::NodeId> ids;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) {
      ids.push_back(static_cast<core::NodeId>(i));
      mask[i] = 0;
    }
  }
  return ids;
}

void CoordinateService::RefreshIndex() {
  DrainDirty();
  const std::vector<core::NodeId> dirty = TakeMask(pending_index_);
  const ann::PeerIndex::UpdateStats update = index_->ApplyUpdates(dirty);
  ++stats_.index_refreshes;
  stats_.index_relinks += update.relinked;
  if (update.rebuilt) {
    ++stats_.index_rebuilds;
  }
  staleness_ = 0;
}

void CoordinateService::AppendEpoch() {
  DrainDirty();
  const std::vector<core::NodeId> dirty = TakeMask(pending_snapshot_);
  log_->AppendDelta(store(), dirty);
  ++stats_.epochs;
  since_epoch_ = 0;
}

}  // namespace dmfsgd::svc
