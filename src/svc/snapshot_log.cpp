#include "svc/snapshot_log.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/csv.hpp"
#include "core/snapshot.hpp"

namespace dmfsgd::svc {

namespace {

constexpr const char* kBaseName = "base.csv";
constexpr const char* kDeltasName = "deltas.log";

/// FNV-1a 64 over the epoch's payload bytes — cheap, dependency-free, and
/// plenty to distinguish "crash tore this epoch" from "epoch is whole".
/// (This is corruption *detection* for recovery truncation, not integrity
/// against an adversary.)
std::uint64_t Fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string HexDigest(std::uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

}  // namespace

SnapshotLogWriter::SnapshotLogWriter(std::filesystem::path dir,
                                     const core::CoordinateStore& store)
    : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  core::SaveSnapshot(core::CoordinateSnapshot{store}, dir_ / kBaseName);
  deltas_.open(dir_ / kDeltasName, std::ios::out | std::ios::trunc);
  if (!deltas_) {
    throw std::runtime_error("SnapshotLogWriter: cannot open " +
                             (dir_ / kDeltasName).string());
  }
}

void SnapshotLogWriter::AppendDelta(const core::CoordinateStore& store,
                                    std::span<const core::NodeId> rows) {
  const std::uint64_t epoch = epochs_ + 1;
  std::string payload = "epoch," + std::to_string(epoch) + "," +
                        std::to_string(rows.size()) + "\n";
  for (const core::NodeId id : rows) {
    if (id >= store.NodeCount()) {
      throw std::out_of_range("SnapshotLogWriter::AppendDelta: row " +
                              std::to_string(id) + " out of range");
    }
    payload += std::to_string(id);
    for (const double value : store.U(id)) {
      payload += ',';
      payload += common::FormatDouble(value);
    }
    for (const double value : store.V(id)) {
      payload += ',';
      payload += common::FormatDouble(value);
    }
    payload += '\n';
  }
  deltas_ << payload << "commit," << epoch << "," << HexDigest(Fnv1a64(payload))
          << "\n";
  deltas_.flush();
  if (!deltas_) {
    throw std::runtime_error("SnapshotLogWriter::AppendDelta: write failed");
  }
  epochs_ = epoch;
}

std::optional<SnapshotLogRecovery> RecoverSnapshotLog(
    const std::filesystem::path& dir) {
  if (!std::filesystem::exists(dir / kBaseName)) {
    return std::nullopt;
  }
  SnapshotLogRecovery recovery;
  recovery.store = core::LoadSnapshot(dir / kBaseName).store;
  const std::size_t rank = recovery.store.rank();

  std::ifstream deltas(dir / kDeltasName);
  if (!deltas) {
    // A base with no delta log is a whole generation that never appended.
    return recovery;
  }

  std::string line;
  bool saw_tail_bytes = false;  // anything read past the last valid commit
  // One staged epoch: rows are applied to the store only after its commit
  // line verifies, so a torn epoch can never half-apply.
  std::vector<core::NodeId> staged_ids;
  std::vector<double> staged_values;  // 2r per staged row
  while (std::getline(deltas, line)) {
    saw_tail_bytes = true;
    // -- epoch header ------------------------------------------------------
    std::string payload = line + "\n";
    auto fields = common::SplitCsvLine(line);
    if (fields.size() != 3 || fields[0] != "epoch") {
      break;
    }
    std::uint64_t epoch = 0;
    std::size_t row_count = 0;
    try {
      epoch = std::stoull(fields[1]);
      row_count = std::stoull(fields[2]);
    } catch (const std::exception&) {
      break;
    }
    if (epoch != recovery.epochs + 1) {
      break;
    }
    // -- staged rows -------------------------------------------------------
    staged_ids.clear();
    staged_values.clear();
    bool whole = true;
    for (std::size_t r = 0; r < row_count; ++r) {
      if (!std::getline(deltas, line)) {
        whole = false;
        break;
      }
      payload += line;
      payload += '\n';
      fields = common::SplitCsvLine(line);
      if (fields.size() != 1 + 2 * rank) {
        whole = false;
        break;
      }
      try {
        const auto id = static_cast<core::NodeId>(std::stoull(fields[0]));
        if (id >= recovery.store.NodeCount()) {
          whole = false;
          break;
        }
        staged_ids.push_back(id);
        for (std::size_t d = 0; d < 2 * rank; ++d) {
          staged_values.push_back(common::ParseDouble(fields[1 + d]));
        }
      } catch (const std::exception&) {
        whole = false;
        break;
      }
    }
    if (!whole) {
      break;
    }
    // -- commit ------------------------------------------------------------
    if (!std::getline(deltas, line)) {
      break;
    }
    fields = common::SplitCsvLine(line);
    if (fields.size() != 3 || fields[0] != "commit" ||
        fields[1] != std::to_string(epoch) ||
        fields[2] != HexDigest(Fnv1a64(payload))) {
      break;
    }
    for (std::size_t r = 0; r < staged_ids.size(); ++r) {
      const double* values = staged_values.data() + r * 2 * rank;
      const auto u = recovery.store.U(staged_ids[r]);
      const auto v = recovery.store.V(staged_ids[r]);
      for (std::size_t d = 0; d < rank; ++d) {
        u[d] = values[d];
        v[d] = values[rank + d];
      }
    }
    recovery.epochs = epoch;
    saw_tail_bytes = false;
  }
  recovery.truncated_tail = saw_tail_bytes;
  return recovery;
}

}  // namespace dmfsgd::svc
