// Peer selection: optimality vs satisfaction (paper §6.4, Figure 7).
//
// Every node draws a random peer set (disjoint from its neighbor/training
// set) and selects one peer to interact with:
//
//   Random          uniform choice (the paper's baseline)
//   Classification  peer with the largest raw score x̂_ij (no thresholding)
//   Regression      predicted best quantity: smallest x̂ for RTT, largest
//                   for ABW (quantity-based prediction with the L2 loss)
//
// Two criteria are reported:
//
//   stretch       s_i = x_i•/x_i◦ over true quantities (• selected peer,
//                 ◦ true best peer); > 1 for RTT, < 1 for ABW; 1 is optimal
//   satisfaction  fraction of *unsatisfied* nodes — nodes that picked a
//                 truly "bad" peer although a "good" one existed in their
//                 peer set; nodes with all-bad peer sets are excluded
#pragma once

#include <cstdint>
#include <vector>

#include "core/simulation.hpp"

namespace dmfsgd::eval {

enum class SelectionMethod {
  kRandom,
  kClassification,
  kRegression,
};

/// Human-readable method name.
[[nodiscard]] const char* SelectionMethodName(SelectionMethod method) noexcept;

struct PeerSelectionConfig {
  std::size_t peer_count = 10;
  std::uint64_t seed = 17;

  // -- query-plane routing (DESIGN.md §16) ----------------------------------

  /// Route Classification/Regression selection through an ann::PeerIndex
  /// built per node over its peer set instead of the exhaustive scan.  With
  /// index_ef == 0 the index queries in exact mode (ef = peer-set size),
  /// which reproduces the scan bit-identically — the parity the index tests
  /// pin; a smaller index_ef trades optimality for fewer score evaluations.
  /// kRandom ignores the flag (it never scans).
  bool use_index = false;
  std::size_t index_ef = 0;
};

struct PeerSelectionOutcome {
  double average_stretch = 0.0;
  double unsatisfied_fraction = 0.0;
  std::size_t stretch_nodes = 0;       ///< nodes contributing to the stretch
  std::size_t satisfaction_nodes = 0;  ///< nodes with >= 1 good peer
};

/// Evaluates one peer-selection method on a trained deployment.  Peer sets
/// are a deterministic function of (config.seed, node id, the deployment's
/// neighbor sets), so different methods evaluated with the same seed against
/// deployments sharing neighbor sets face identical peer sets.
[[nodiscard]] PeerSelectionOutcome EvaluatePeerSelection(
    const core::DmfsgdSimulation& simulation, SelectionMethod method,
    const PeerSelectionConfig& config);

}  // namespace dmfsgd::eval
