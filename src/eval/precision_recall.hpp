// Precision-recall analysis (paper §6.1, Figure 5(b)).
//
// Same threshold sweep as the ROC curve, but each point reports the
// precision of the positive ("good") class against its recall (= TPR).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dmfsgd::eval {

struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
  double threshold = 0.0;  ///< the τ_c producing this point
};

/// Precision-recall curve from scores and ±1 labels, ordered by ascending
/// recall.  Requires at least one positive and one negative label.
[[nodiscard]] std::vector<PrPoint> PrecisionRecallCurve(
    std::span<const double> scores, std::span<const int> labels);

/// Area under the precision-recall curve (average precision, trapezoidal).
[[nodiscard]] double AveragePrecision(std::span<const double> scores,
                                      std::span<const int> labels);

}  // namespace dmfsgd::eval
