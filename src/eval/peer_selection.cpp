#include "eval/peer_selection.hpp"

#include <algorithm>
#include <stdexcept>

#include "ann/peer_index.hpp"
#include "common/rng.hpp"
#include "eval/brute_force_knn.hpp"

namespace dmfsgd::eval {

namespace {

using datasets::ClassOf;
using datasets::LowerIsBetter;

/// The best peer by predicted score: the brute-force oracle's top-1, or —
/// with config.use_index — an ann::PeerIndex over the peer set queried with
/// node i's live u row.  Exact-mode queries (ef >= set size) are
/// bit-identical to the oracle, which is itself bit-identical to the
/// historical first-strict-improvement scan (ties keep peer order).
[[nodiscard]] std::size_t SelectByScore(const core::CoordinateStore& store,
                                        std::size_t i,
                                        std::span<const std::size_t> peers,
                                        KnnOrdering ordering,
                                        const PeerSelectionConfig& config) {
  if (config.use_index) {
    ann::PeerIndex index(store, peers, ann::PeerIndexOptions{});
    const std::size_t ef = config.index_ef == 0 ? index.Size() : config.index_ef;
    return index.SearchFrom(i, 1, ordering, ef).ids.at(0);
  }
  return BruteForceKnn(store, i, peers, 1, ordering).ids.at(0);
}

}  // namespace

const char* SelectionMethodName(SelectionMethod method) noexcept {
  switch (method) {
    case SelectionMethod::kRandom:
      return "Random";
    case SelectionMethod::kClassification:
      return "Classification";
    case SelectionMethod::kRegression:
      return "Regression";
  }
  return "?";
}

PeerSelectionOutcome EvaluatePeerSelection(const core::DmfsgdSimulation& simulation,
                                           SelectionMethod method,
                                           const PeerSelectionConfig& config) {
  if (config.peer_count == 0) {
    throw std::invalid_argument("EvaluatePeerSelection: peer_count must be > 0");
  }
  const auto& dataset = simulation.dataset();
  const std::size_t n = dataset.NodeCount();
  const double tau = simulation.config().tau;
  const bool lower_better = LowerIsBetter(dataset.metric);

  common::Rng rng(config.seed);
  PeerSelectionOutcome outcome;
  double stretch_sum = 0.0;
  std::size_t unsatisfied = 0;

  for (std::size_t i = 0; i < n; ++i) {
    // Candidate peers: measurable pairs outside the training (neighbor) set.
    std::vector<std::size_t> candidates;
    candidates.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && dataset.IsKnown(i, j) && !simulation.IsNeighborPair(i, j)) {
        candidates.push_back(j);
      }
    }
    // Peer-set construction consumes the same RNG stream regardless of the
    // method, so the sets are identical across methods for a given seed.
    rng.Shuffle(std::span(candidates));
    const std::size_t peer_count = std::min(config.peer_count, candidates.size());
    if (peer_count == 0) {
      continue;
    }
    const std::span<const std::size_t> peers(candidates.data(), peer_count);

    // Selection.
    std::size_t selected = peers[0];
    switch (method) {
      case SelectionMethod::kRandom:
        selected = peers[rng.UniformInt(static_cast<std::uint64_t>(peer_count))];
        break;
      case SelectionMethod::kClassification:
        // "the peer which is the most likely to be good": the largest raw
        // x̂_ij, no sign-taking or thresholding (paper §6.4).
        selected = SelectByScore(simulation.engine().store(), i, peers,
                                 KnnOrdering::kLargestFirst, config);
        break;
      case SelectionMethod::kRegression:
        // Predicted best-performing peer: smallest x̂ for RTT, largest for ABW.
        selected = SelectByScore(simulation.engine().store(), i, peers,
                                 RegressionOrderingFor(dataset.metric), config);
        break;
    }

    // True best peer in the set.
    std::size_t best = peers[0];
    bool any_good = false;
    for (const std::size_t j : peers) {
      const double quantity = dataset.Quantity(i, j);
      const bool better = lower_better ? quantity < dataset.Quantity(i, best)
                                       : quantity > dataset.Quantity(i, best);
      if (better) {
        best = j;
      }
      if (ClassOf(dataset.metric, quantity, tau) > 0) {
        any_good = true;
      }
    }

    stretch_sum += dataset.Quantity(i, selected) / dataset.Quantity(i, best);
    ++outcome.stretch_nodes;

    if (any_good) {
      ++outcome.satisfaction_nodes;
      if (ClassOf(dataset.metric, dataset.Quantity(i, selected), tau) < 0) {
        ++unsatisfied;
      }
    }
  }

  if (outcome.stretch_nodes > 0) {
    outcome.average_stretch = stretch_sum / static_cast<double>(outcome.stretch_nodes);
  }
  if (outcome.satisfaction_nodes > 0) {
    outcome.unsatisfied_fraction =
        static_cast<double>(unsatisfied) /
        static_cast<double>(outcome.satisfaction_nodes);
  }
  return outcome;
}

}  // namespace dmfsgd::eval
