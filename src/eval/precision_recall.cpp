#include "eval/precision_recall.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dmfsgd::eval {

std::vector<PrPoint> PrecisionRecallCurve(std::span<const double> scores,
                                          std::span<const int> labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("PrecisionRecall: scores/labels size mismatch");
  }
  if (scores.empty()) {
    throw std::invalid_argument("PrecisionRecall: empty input");
  }
  std::size_t positives = 0;
  for (const int label : labels) {
    if (label != 1 && label != -1) {
      throw std::invalid_argument("PrecisionRecall: labels must be +1 or -1");
    }
    if (label == 1) {
      ++positives;
    }
  }
  if (positives == 0 || positives == labels.size()) {
    throw std::invalid_argument(
        "PrecisionRecall: need at least one positive and one negative");
  }

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&scores](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::vector<PrPoint> curve;
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t index = 0;
  while (index < order.size()) {
    const double score = scores[order[index]];
    while (index < order.size() && scores[order[index]] == score) {
      if (labels[order[index]] == 1) {
        ++tp;
      } else {
        ++fp;
      }
      ++index;
    }
    curve.push_back(PrPoint{
        static_cast<double>(tp) / static_cast<double>(positives),
        static_cast<double>(tp) / static_cast<double>(tp + fp), score});
  }
  return curve;
}

double AveragePrecision(std::span<const double> scores,
                        std::span<const int> labels) {
  const auto curve = PrecisionRecallCurve(scores, labels);
  double area = 0.0;
  double previous_recall = 0.0;
  double previous_precision = 1.0;  // precision at recall 0 by convention
  for (const PrPoint& point : curve) {
    area += (point.recall - previous_recall) * 0.5 *
            (point.precision + previous_precision);
    previous_recall = point.recall;
    previous_precision = point.precision;
  }
  return area;
}

}  // namespace dmfsgd::eval
