#include "eval/regression_metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace dmfsgd::eval {

namespace {

std::vector<double> Errors(std::span<const double> predicted,
                           std::span<const double> actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("RelativeError: size mismatch");
  }
  if (predicted.empty()) {
    throw std::invalid_argument("RelativeError: empty input");
  }
  std::vector<double> errors;
  errors.reserve(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    errors.push_back(RelativeError(predicted[i], actual[i]));
  }
  return errors;
}

}  // namespace

double RelativeError(double predicted, double actual) {
  if (actual <= 0.0) {
    throw std::invalid_argument("RelativeError: actual must be > 0");
  }
  return std::abs(predicted - actual) / actual;
}

RelativeErrorSummary SummarizeRelativeError(std::span<const double> predicted,
                                            std::span<const double> actual) {
  const auto errors = Errors(predicted, actual);
  RelativeErrorSummary summary;
  summary.count = errors.size();
  summary.mean = common::Mean(errors);
  summary.median = common::Median(errors);
  summary.p90 = common::Percentile(errors, 90.0);
  std::size_t close = 0;
  for (const double e : errors) {
    if (e <= 0.5) {
      ++close;
    }
  }
  summary.within_half = static_cast<double>(close) / static_cast<double>(errors.size());
  return summary;
}

std::vector<double> RelativeErrorCdf(std::span<const double> predicted,
                                     std::span<const double> actual,
                                     std::span<const double> levels) {
  const auto errors = Errors(predicted, actual);
  std::vector<double> cdf;
  cdf.reserve(levels.size());
  for (const double level : levels) {
    std::size_t below = 0;
    for (const double e : errors) {
      if (e <= level) {
        ++below;
      }
    }
    cdf.push_back(static_cast<double>(below) / static_cast<double>(errors.size()));
  }
  return cdf;
}

}  // namespace dmfsgd::eval
