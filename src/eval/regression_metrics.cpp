#include "eval/regression_metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace dmfsgd::eval {

namespace {

std::vector<double> Errors(std::span<const double> predicted,
                           std::span<const double> actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("RelativeError: size mismatch");
  }
  if (predicted.empty()) {
    throw std::invalid_argument("RelativeError: empty input");
  }
  std::vector<double> errors;
  errors.reserve(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    errors.push_back(RelativeError(predicted[i], actual[i]));
  }
  return errors;
}

}  // namespace

double RelativeError(double predicted, double actual) {
  if (actual <= 0.0) {
    throw std::invalid_argument("RelativeError: actual must be > 0");
  }
  return std::abs(predicted - actual) / actual;
}

RelativeErrorSummary SummarizeRelativeError(std::span<const double> predicted,
                                            std::span<const double> actual) {
  const auto errors = Errors(predicted, actual);
  RelativeErrorSummary summary;
  summary.count = errors.size();
  summary.mean = common::Mean(errors);
  summary.median = common::Median(errors);
  summary.p90 = common::Percentile(errors, 90.0);
  std::size_t close = 0;
  for (const double e : errors) {
    if (e <= 0.5) {
      ++close;
    }
  }
  summary.within_half = static_cast<double>(close) / static_cast<double>(errors.size());
  return summary;
}

FullMatrixRegressionSummary EvaluateFullMatrix(std::span<const double> predicted,
                                               std::span<const double> actual,
                                               std::size_t n,
                                               common::ThreadPool* pool) {
  if (n == 0) {
    throw std::invalid_argument("EvaluateFullMatrix: empty matrix");
  }
  if (predicted.size() != n * n || actual.size() != n * n) {
    throw std::invalid_argument("EvaluateFullMatrix: size mismatch");
  }

  // Fixed per-row partial slots: each row's partials are computed by exactly
  // one thread and the reduction below runs in row order on the caller, so
  // the summary never depends on the pool size.
  struct RowPartial {
    double err2 = 0.0;      // Σ (p − a)²
    double act2 = 0.0;      // Σ a²
    double rel = 0.0;       // Σ |p − a| / a
    std::size_t count = 0;
    std::size_t within = 0;
  };
  std::vector<RowPartial> partials(n);

  const auto sweep_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      RowPartial partial;
      const double* p_row = predicted.data() + i * n;
      const double* a_row = actual.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double a = a_row[j];
        if (i == j || !(a > 0.0)) {  // NaN fails the comparison too
          continue;
        }
        const double diff = p_row[j] - a;
        const double rel = std::abs(diff) / a;
        partial.err2 += diff * diff;
        partial.act2 += a * a;
        partial.rel += rel;
        partial.within += rel <= 0.5 ? 1 : 0;
        ++partial.count;
      }
      partials[i] = partial;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(0, n, sweep_rows);
  } else {
    sweep_rows(0, n);
  }

  double err2 = 0.0;
  double act2 = 0.0;
  double rel = 0.0;
  std::size_t within = 0;
  FullMatrixRegressionSummary summary;
  for (const RowPartial& partial : partials) {
    err2 += partial.err2;
    act2 += partial.act2;
    rel += partial.rel;
    within += partial.within;
    summary.count += partial.count;
  }
  if (summary.count > 0) {
    summary.stress = act2 > 0.0 ? std::sqrt(err2 / act2) : 0.0;
    summary.mean_relative = rel / static_cast<double>(summary.count);
    summary.within_half =
        static_cast<double>(within) / static_cast<double>(summary.count);
  }
  return summary;
}

std::vector<double> RelativeErrorCdf(std::span<const double> predicted,
                                     std::span<const double> actual,
                                     std::span<const double> levels) {
  const auto errors = Errors(predicted, actual);
  std::vector<double> cdf;
  cdf.reserve(levels.size());
  for (const double level : levels) {
    std::size_t below = 0;
    for (const double e : errors) {
      if (e <= level) {
        ++below;
      }
    }
    cdf.push_back(static_cast<double>(below) / static_cast<double>(errors.size()));
  }
  return cdf;
}

}  // namespace dmfsgd::eval
