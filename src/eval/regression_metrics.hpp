// Quantity-prediction (regression) accuracy metrics.
//
// The NCS literature the paper builds on (Vivaldi, IDES, DMF) reports
// *relative error* statistics for predicted quantities; this module provides
// them for comparing the quantity-based DMFSGD variant and the Vivaldi
// baseline against ground truth.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dmfsgd::eval {

/// Relative error of one prediction: |predicted - actual| / actual.
/// Requires actual > 0.
[[nodiscard]] double RelativeError(double predicted, double actual);

struct RelativeErrorSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  /// Fraction of predictions within 50% of the truth (an NCS-community
  /// staple: "REL50").
  double within_half = 0.0;
};

/// Summary over paired (predicted, actual) samples.  Requires equal-sized,
/// non-empty inputs with positive actuals.
[[nodiscard]] RelativeErrorSummary SummarizeRelativeError(
    std::span<const double> predicted, std::span<const double> actual);

/// Points of the relative-error CDF at the requested error levels:
/// result[i] = fraction of samples with relative error <= levels[i].
[[nodiscard]] std::vector<double> RelativeErrorCdf(
    std::span<const double> predicted, std::span<const double> actual,
    std::span<const double> levels);

}  // namespace dmfsgd::eval
