// Quantity-prediction (regression) accuracy metrics.
//
// The NCS literature the paper builds on (Vivaldi, IDES, DMF) reports
// *relative error* statistics for predicted quantities; this module provides
// them for comparing the quantity-based DMFSGD variant and the Vivaldi
// baseline against ground truth.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dmfsgd::common {
class ThreadPool;
}

namespace dmfsgd::eval {

/// Relative error of one prediction: |predicted - actual| / actual.
/// Requires actual > 0.
[[nodiscard]] double RelativeError(double predicted, double actual);

struct RelativeErrorSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  /// Fraction of predictions within 50% of the truth (an NCS-community
  /// staple: "REL50").
  double within_half = 0.0;
};

/// Summary over paired (predicted, actual) samples.  Requires equal-sized,
/// non-empty inputs with positive actuals.
[[nodiscard]] RelativeErrorSummary SummarizeRelativeError(
    std::span<const double> predicted, std::span<const double> actual);

/// Points of the relative-error CDF at the requested error levels:
/// result[i] = fraction of samples with relative error <= levels[i].
[[nodiscard]] std::vector<double> RelativeErrorCdf(
    std::span<const double> predicted, std::span<const double> actual,
    std::span<const double> levels);

/// Full-matrix regression accuracy over all n² pairs at once.
struct FullMatrixRegressionSummary {
  std::size_t count = 0;        ///< evaluated pairs (off-diagonal, usable truth)
  double stress = 0.0;          ///< sqrt(Σ(p−a)² / Σa²), the NCS stress statistic
  double mean_relative = 0.0;   ///< mean |p−a|/a
  double within_half = 0.0;     ///< REL50: fraction with relative error <= 0.5
};

/// Streams over row-major n×n `predicted` and `actual` matrices and
/// evaluates every off-diagonal pair whose actual is usable (> 0 and not
/// NaN — the datasets' missing-entry convention).  O(n) extra memory: no
/// per-pair error vector is kept, which is why the quantile statistics of
/// SummarizeRelativeError are absent here (use that on sampled pairs when
/// median/p90 are needed).  With a pool, rows are swept in parallel into
/// per-row partial sums that are reduced in row order, so the result is
/// bit-identical for any pool size.  Requires matching sizes n*n and n > 0.
[[nodiscard]] FullMatrixRegressionSummary EvaluateFullMatrix(
    std::span<const double> predicted, std::span<const double> actual,
    std::size_t n, common::ThreadPool* pool = nullptr);

}  // namespace dmfsgd::eval
