#include "eval/brute_force_knn.hpp"

#include <algorithm>
#include <stdexcept>

namespace dmfsgd::eval {

namespace {

/// One scored candidate under the strict total order (key, position):
/// key = score for smallest-first, -score for largest-first (exact for
/// finite doubles), position = index in the candidate list.  The worst of
/// a set is the lexicographic maximum.
struct Ranked {
  double key = 0.0;
  std::size_t position = 0;
  std::size_t id = 0;
  double score = 0.0;
};

constexpr auto kWorseFirst = [](const Ranked& a, const Ranked& b) noexcept {
  return a.key < b.key || (a.key == b.key && a.position < b.position);
};

/// Streaming top-k: a worst-on-top heap of at most k entries.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) { heap_.reserve(k); }

  void Offer(const Ranked& entry) {
    if (heap_.size() < k_) {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end(), kWorseFirst);
      return;
    }
    if (kWorseFirst(entry, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), kWorseFirst);
      heap_.back() = entry;
      std::push_heap(heap_.begin(), heap_.end(), kWorseFirst);
    }
  }

  /// Drains best-first into a KnnResult.
  [[nodiscard]] KnnResult Take() {
    std::sort(heap_.begin(), heap_.end(), kWorseFirst);
    KnnResult result;
    result.ids.reserve(heap_.size());
    result.scores.reserve(heap_.size());
    for (const Ranked& entry : heap_) {
      result.ids.push_back(entry.id);
      result.scores.push_back(entry.score);
    }
    return result;
  }

  /// The current survivors in heap order (for merging block-local top-ks;
  /// the set — not its order — is what the merge consumes).
  [[nodiscard]] const std::vector<Ranked>& Entries() const noexcept {
    return heap_;
  }

 private:
  std::size_t k_;
  std::vector<Ranked> heap_;
};

[[nodiscard]] double KeyFor(double score, KnnOrdering ordering) noexcept {
  return ordering == KnnOrdering::kSmallestFirst ? score : -score;
}

}  // namespace

KnnOrdering RegressionOrderingFor(datasets::Metric metric) noexcept {
  return datasets::LowerIsBetter(metric) ? KnnOrdering::kSmallestFirst
                                         : KnnOrdering::kLargestFirst;
}

KnnResult BruteForceKnnRow(const core::CoordinateStore& store,
                           std::span<const double> query_u,
                           std::span<const std::size_t> candidates, std::size_t k,
                           KnnOrdering ordering, std::size_t exclude) {
  if (k == 0) {
    throw std::invalid_argument("BruteForceKnn: k must be > 0");
  }
  if (query_u.size() != store.rank()) {
    throw std::invalid_argument("BruteForceKnn: query row rank mismatch");
  }
  const std::size_t n = store.NodeCount();
  TopK top(k);
  for (std::size_t p = 0; p < candidates.size(); ++p) {
    const std::size_t c = candidates[p];
    if (c >= n) {
      throw std::out_of_range("BruteForceKnn: candidate id out of range");
    }
    if (c == exclude) {
      continue;
    }
    const double score =
        linalg::DotRaw(query_u.data(), store.V(c).data(), store.rank());
    top.Offer(Ranked{KeyFor(score, ordering), p, c, score});
  }
  return top.Take();
}

KnnResult BruteForceKnn(const core::CoordinateStore& store, std::size_t query,
                        std::span<const std::size_t> candidates, std::size_t k,
                        KnnOrdering ordering) {
  if (query >= store.NodeCount()) {
    throw std::out_of_range("BruteForceKnn: query id out of range");
  }
  return BruteForceKnnRow(store, store.U(query), candidates, k, ordering, query);
}

KnnResult BruteForceKnnAll(const core::CoordinateStore& store, std::size_t query,
                           std::size_t k, KnnOrdering ordering,
                           common::ThreadPool* pool) {
  if (query >= store.NodeCount()) {
    throw std::out_of_range("BruteForceKnnAll: query id out of range");
  }
  if (k == 0) {
    throw std::invalid_argument("BruteForceKnnAll: k must be > 0");
  }
  const std::size_t n = store.NodeCount();
  const std::span<const double> u = store.U(query);

  if (pool != nullptr && pool->thread_count() > 1) {
    // Deterministic fan-out: the candidate axis splits into the pool's
    // fixed contiguous blocks, each block keeps its own top-k over frozen
    // store rows, and the block winners merge after the join.  Ranked keys
    // carry the absolute candidate position, so the merged top-k set is
    // the serial scan's — unique under the strict total order — at any
    // pool size.
    const std::size_t parts = pool->thread_count();
    std::vector<std::pair<std::size_t, std::size_t>> blocks(parts);
    std::vector<TopK> block_top(parts, TopK(k));
    for (std::size_t b = 0; b < parts; ++b) {
      blocks[b] = common::BlockRange(n, parts, b);
    }
    pool->ParallelFor(0, n, [&](std::size_t begin, std::size_t end) {
      std::size_t block = 0;
      while (blocks[block].first != begin || blocks[block].second != end) {
        ++block;
      }
      TopK& top = block_top[block];
      for (std::size_t j = begin; j < end; ++j) {
        if (j == query) {
          continue;
        }
        const double score =
            linalg::DotRaw(u.data(), store.V(j).data(), store.rank());
        top.Offer(Ranked{KeyFor(score, ordering), j, j, score});
      }
    });
    TopK merged(k);
    for (TopK& top : block_top) {
      for (const Ranked& entry : top.Entries()) {
        merged.Offer(entry);
      }
    }
    return merged.Take();
  }

  TopK top(k);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == query) {
      continue;
    }
    const double score = linalg::DotRaw(u.data(), store.V(j).data(), store.rank());
    top.Offer(Ranked{KeyFor(score, ordering), j, j, score});
  }
  return top.Take();
}

double RecallAtK(const KnnResult& approx, const KnnResult& oracle) {
  if (oracle.ids.empty()) {
    return 1.0;
  }
  std::size_t hits = 0;
  for (const std::size_t id : oracle.ids) {
    if (std::find(approx.ids.begin(), approx.ids.end(), id) != approx.ids.end()) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(oracle.ids.size());
}

}  // namespace dmfsgd::eval
