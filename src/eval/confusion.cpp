#include "eval/confusion.hpp"

#include <stdexcept>
#include <string>

namespace dmfsgd::eval {

namespace {

double Ratio(std::size_t numerator, std::size_t denominator, const char* what) {
  if (denominator == 0) {
    throw std::logic_error(std::string("ConfusionMatrix::") + what +
                           ": undefined (empty denominator)");
  }
  return static_cast<double>(numerator) / static_cast<double>(denominator);
}

}  // namespace

double ConfusionMatrix::Accuracy() const {
  return Ratio(true_positive + true_negative, Total(), "Accuracy");
}

double ConfusionMatrix::GoodRecall() const {
  return Ratio(true_positive, ActualPositives(), "GoodRecall");
}

double ConfusionMatrix::BadRecall() const {
  return Ratio(true_negative, ActualNegatives(), "BadRecall");
}

double ConfusionMatrix::Tpr() const { return GoodRecall(); }

double ConfusionMatrix::Fpr() const {
  return Ratio(false_positive, ActualNegatives(), "Fpr");
}

double ConfusionMatrix::Precision() const {
  return Ratio(true_positive, true_positive + false_positive, "Precision");
}

ConfusionMatrix ConfusionFromScores(std::span<const double> scores,
                                    std::span<const int> labels, double threshold) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("ConfusionFromScores: size mismatch");
  }
  ConfusionMatrix cm;
  for (std::size_t idx = 0; idx < scores.size(); ++idx) {
    const bool predicted_good = scores[idx] > threshold;
    if (labels[idx] == 1) {
      predicted_good ? ++cm.true_positive : ++cm.false_negative;
    } else if (labels[idx] == -1) {
      predicted_good ? ++cm.false_positive : ++cm.true_negative;
    } else {
      throw std::invalid_argument("ConfusionFromScores: labels must be +1 or -1");
    }
  }
  return cm;
}

}  // namespace dmfsgd::eval
