// ROC analysis (paper §6.1).
//
// The paper's headline accuracy number is the AUC: scores x̂_ij are swept
// over a discrimination threshold τ_c from +∞ down to -∞; at each distinct
// score the true/false positive rates against the ±1 ground truth labels
// give one ROC point.  The AUC here is computed exactly as the area under
// that curve (trapezoidal over tie groups), which equals the Mann-Whitney
// U statistic with the standard 1/2 tie correction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dmfsgd::eval {

struct RocPoint {
  double fpr = 0.0;        ///< false positive rate
  double tpr = 0.0;        ///< true positive rate
  double threshold = 0.0;  ///< the τ_c producing this point
};

/// ROC curve from prediction scores and ±1 labels.  Points are ordered by
/// ascending FPR, beginning at (0,0) and ending at (1,1).  Requires equal
/// sizes, at least one positive and one negative label.
[[nodiscard]] std::vector<RocPoint> RocCurve(std::span<const double> scores,
                                             std::span<const int> labels);

/// Exact area under the ROC curve in [0, 1].
[[nodiscard]] double Auc(std::span<const double> scores, std::span<const int> labels);

}  // namespace dmfsgd::eval
