// The exhaustive k-NN oracle over live coordinates (DESIGN.md §16).
//
// The model's predicted quantity x̂_ij = u_i · v_j makes the coordinate
// store an embedding: "the k best peers for node i" is a top-k scan under
// the metric's ordering — smallest x̂ for RTT (lower is better), largest
// for ABW.  This oracle is that scan, extracted from the peer-selection
// eval so that
//
//  * the peer-selection methods (eval/peer_selection.cpp) and any index
//    share one definition of "best",
//  * the ANN plane (ann/peer_index.hpp) has a ground truth to measure
//    recall against — always evaluated on the *live* store, never on a
//    snapshot, which is exactly the staleness property the index tests pin.
//
// Determinism: candidates are ranked under the strict total order
// (score, candidate position) — ties keep candidate order — so the result
// is a pure function of (store contents, candidate order, k, ordering).
// The top-1 of BruteForceKnn over a peer set is bit-identical to the
// first-strict-improvement scan the peer-selection eval historically ran.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/coordinate_store.hpp"
#include "datasets/dataset.hpp"

namespace dmfsgd::eval {

/// Which end of the predicted-quantity axis is "best".
enum class KnnOrdering {
  kSmallestFirst,  ///< RTT-style: lower predicted quantity is better
  kLargestFirst,   ///< ABW-style (and raw-score classification): higher is better
};

/// The regression ordering for a metric: smallest-first for RTT, largest
/// for ABW (quantity-based prediction, paper §6.4).
[[nodiscard]] KnnOrdering RegressionOrderingFor(datasets::Metric metric) noexcept;

/// A ranked k-NN answer: ids[0] is the best candidate, scores[p] is the
/// predicted quantity x̂ = u_query · v_ids[p].
struct KnnResult {
  std::vector<std::size_t> ids;
  std::vector<double> scores;

  [[nodiscard]] std::size_t Size() const noexcept { return ids.size(); }
};

/// Exact top-k over an explicit candidate list: scores every candidate
/// against the live store (x̂ = u_query · v_c) and keeps the k best under
/// `ordering`.  Any candidate equal to `query` is skipped (a node is never
/// its own peer).  Returns min(k, eligible candidates) entries; ties keep
/// candidate order.  Throws std::out_of_range on out-of-range ids and
/// std::invalid_argument on k == 0.
[[nodiscard]] KnnResult BruteForceKnn(const core::CoordinateStore& store,
                                      std::size_t query,
                                      std::span<const std::size_t> candidates,
                                      std::size_t k, KnnOrdering ordering);

/// Exact top-k with an explicit query row (length rank) instead of a node
/// id — the form the ANN search plane uses.  `exclude` (pass
/// CoordinateStore::NodeCount() or larger for "none") is skipped.
[[nodiscard]] KnnResult BruteForceKnnRow(const core::CoordinateStore& store,
                                         std::span<const double> query_u,
                                         std::span<const std::size_t> candidates,
                                         std::size_t k, KnnOrdering ordering,
                                         std::size_t exclude);

/// Exact top-k over the whole store (candidates = every node except the
/// query) — the recall ground truth and the brute-force QPS baseline.
/// With a `pool`, the candidate axis is partitioned into the pool's fixed
/// contiguous blocks (common::BlockRange), each block keeps its own top-k,
/// and the per-block winners merge in block order — the strict total order
/// (key, position) makes the merged answer bit-identical to the serial
/// scan at any pool size, so the oracle stays an oracle when it goes wide
/// (the n = 10⁶ tier would otherwise spend minutes per ground-truth
/// sweep).
[[nodiscard]] KnnResult BruteForceKnnAll(const core::CoordinateStore& store,
                                         std::size_t query, std::size_t k,
                                         KnnOrdering ordering,
                                         common::ThreadPool* pool = nullptr);

/// |approx ∩ oracle| / |oracle| over the id sets (recall@k with the oracle
/// as ground truth).  An empty oracle yields 1.0.
[[nodiscard]] double RecallAtK(const KnnResult& approx, const KnnResult& oracle);

}  // namespace dmfsgd::eval
