// Confusion matrix and accuracy (paper §6.2.4, Table 2).
//
// The paper's Table 2 decides classes by taking the sign of x̂_ij (i.e.
// τ_c = 0) and reports the overall accuracy plus row-normalized confusion
// percentages (Actual Good -> Predicted Good/Bad, Actual Bad -> ...).
#pragma once

#include <cstddef>
#include <span>

namespace dmfsgd::eval {

struct ConfusionMatrix {
  std::size_t true_positive = 0;   ///< actual good, predicted good
  std::size_t false_negative = 0;  ///< actual good, predicted bad
  std::size_t false_positive = 0;  ///< actual bad, predicted good
  std::size_t true_negative = 0;   ///< actual bad, predicted bad

  [[nodiscard]] std::size_t Total() const noexcept {
    return true_positive + false_negative + false_positive + true_negative;
  }
  [[nodiscard]] std::size_t ActualPositives() const noexcept {
    return true_positive + false_negative;
  }
  [[nodiscard]] std::size_t ActualNegatives() const noexcept {
    return false_positive + true_negative;
  }

  /// Fraction of all predictions that are correct.
  [[nodiscard]] double Accuracy() const;
  /// P(predicted good | actual good) — Table 2's top-left cell.
  [[nodiscard]] double GoodRecall() const;
  /// P(predicted bad | actual bad) — Table 2's bottom-right cell.
  [[nodiscard]] double BadRecall() const;
  /// True positive rate (== GoodRecall).
  [[nodiscard]] double Tpr() const;
  /// False positive rate.
  [[nodiscard]] double Fpr() const;
  /// Precision of the "good" class.
  [[nodiscard]] double Precision() const;
};

/// Builds the confusion matrix by thresholding scores at `threshold`
/// (x̂ > threshold -> predicted good).  Labels must be ±1.
[[nodiscard]] ConfusionMatrix ConfusionFromScores(std::span<const double> scores,
                                                  std::span<const int> labels,
                                                  double threshold = 0.0);

}  // namespace dmfsgd::eval
