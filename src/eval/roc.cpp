#include "eval/roc.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace dmfsgd::eval {

namespace {

struct Counts {
  std::size_t positives = 0;
  std::size_t negatives = 0;
  std::vector<std::size_t> order;  // indices sorted by descending score
};

Counts Prepare(std::span<const double> scores, std::span<const int> labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("Roc: scores/labels size mismatch");
  }
  if (scores.empty()) {
    throw std::invalid_argument("Roc: empty input");
  }
  Counts counts;
  for (const int label : labels) {
    if (label == 1) {
      ++counts.positives;
    } else if (label == -1) {
      ++counts.negatives;
    } else {
      throw std::invalid_argument("Roc: labels must be +1 or -1");
    }
  }
  if (counts.positives == 0 || counts.negatives == 0) {
    throw std::invalid_argument("Roc: need at least one positive and one negative");
  }
  counts.order.resize(scores.size());
  std::iota(counts.order.begin(), counts.order.end(), std::size_t{0});
  std::sort(counts.order.begin(), counts.order.end(),
            [&scores](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  return counts;
}

}  // namespace

std::vector<RocPoint> RocCurve(std::span<const double> scores,
                               std::span<const int> labels) {
  const Counts counts = Prepare(scores, labels);
  std::vector<RocPoint> curve;
  curve.reserve(scores.size() + 2);
  curve.push_back(RocPoint{0.0, 0.0, std::numeric_limits<double>::infinity()});

  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t index = 0;
  while (index < counts.order.size()) {
    // Consume a whole tie group before emitting a point, so ties produce a
    // single diagonal segment instead of an order-dependent staircase.
    const double score = scores[counts.order[index]];
    while (index < counts.order.size() && scores[counts.order[index]] == score) {
      if (labels[counts.order[index]] == 1) {
        ++tp;
      } else {
        ++fp;
      }
      ++index;
    }
    curve.push_back(RocPoint{
        static_cast<double>(fp) / static_cast<double>(counts.negatives),
        static_cast<double>(tp) / static_cast<double>(counts.positives), score});
  }
  return curve;
}

double Auc(std::span<const double> scores, std::span<const int> labels) {
  const auto curve = RocCurve(scores, labels);
  double area = 0.0;
  for (std::size_t p = 1; p < curve.size(); ++p) {
    const double width = curve[p].fpr - curve[p - 1].fpr;
    area += width * 0.5 * (curve[p].tpr + curve[p - 1].tpr);
  }
  return area;
}

}  // namespace dmfsgd::eval
