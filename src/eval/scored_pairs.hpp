// Test-set extraction from a trained DMFSGD deployment.
//
// Gathers (prediction score, true class label, true quantity) triplets for
// the pairs a deployment was *not* trained on — the paper evaluates the
// prediction accuracy on unobserved entries of X.  Large deployments
// (Meridian: 6.25M ordered pairs) can be subsampled reproducibly with
// reservoir sampling.
#pragma once

#include <cstdint>
#include <vector>

#include "core/simulation.hpp"

namespace dmfsgd::eval {

struct ScoredPair {
  std::size_t i = 0;
  std::size_t j = 0;
  double score = 0.0;     ///< x̂_ij = u_i · v_j
  int label = 0;          ///< true class under the simulation's τ
  double quantity = 0.0;  ///< true metric value
};

struct CollectOptions {
  /// Skip pairs (i, j) with j in i's neighbor set (the training data).
  bool exclude_neighbor_pairs = true;
  /// If non-zero, reservoir-sample down to this many pairs.
  std::size_t max_pairs = 0;
  std::uint64_t seed = 9;
};

/// Collects scored test pairs from any trained deployment core (the round
/// driver, the async driver, or the resident service all expose their
/// engine).  Unknown ground-truth pairs and the diagonal are always skipped.
[[nodiscard]] std::vector<ScoredPair> CollectScoredPairs(
    const core::DeploymentEngine& engine, const CollectOptions& options = {});

/// Convenience overload for the round-based driver.
[[nodiscard]] std::vector<ScoredPair> CollectScoredPairs(
    const core::DmfsgdSimulation& simulation, const CollectOptions& options = {});

/// Convenience extraction for the metric functions.
[[nodiscard]] std::vector<double> Scores(const std::vector<ScoredPair>& pairs);
[[nodiscard]] std::vector<int> Labels(const std::vector<ScoredPair>& pairs);

}  // namespace dmfsgd::eval
