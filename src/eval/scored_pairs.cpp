#include "eval/scored_pairs.hpp"

#include "common/rng.hpp"

namespace dmfsgd::eval {

std::vector<ScoredPair> CollectScoredPairs(const core::DeploymentEngine& engine,
                                           const CollectOptions& options) {
  const auto& dataset = engine.dataset();
  const std::size_t n = dataset.NodeCount();
  const double tau = engine.config().tau;

  common::Rng rng(options.seed);
  std::vector<ScoredPair> reservoir;
  const std::size_t capacity = options.max_pairs;
  if (capacity > 0) {
    reservoir.reserve(capacity);
  }
  std::size_t seen = 0;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || !dataset.IsKnown(i, j)) {
        continue;
      }
      if (options.exclude_neighbor_pairs && engine.IsNeighborPair(i, j)) {
        continue;
      }
      const double quantity = dataset.Quantity(i, j);
      ScoredPair pair{i, j, engine.Predict(i, j),
                      datasets::ClassOf(dataset.metric, quantity, tau), quantity};
      ++seen;
      if (capacity == 0 || reservoir.size() < capacity) {
        reservoir.push_back(pair);
      } else {
        // Vitter's algorithm R: replace a random slot with probability
        // capacity/seen, keeping a uniform sample of everything seen.
        const std::size_t slot = rng.UniformInt(static_cast<std::uint64_t>(seen));
        if (slot < capacity) {
          reservoir[slot] = pair;
        }
      }
    }
  }
  return reservoir;
}

std::vector<ScoredPair> CollectScoredPairs(const core::DmfsgdSimulation& simulation,
                                           const CollectOptions& options) {
  return CollectScoredPairs(simulation.engine(), options);
}

std::vector<double> Scores(const std::vector<ScoredPair>& pairs) {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const ScoredPair& pair : pairs) {
    scores.push_back(pair.score);
  }
  return scores;
}

std::vector<int> Labels(const std::vector<ScoredPair>& pairs) {
  std::vector<int> labels;
  labels.reserve(pairs.size());
  for (const ScoredPair& pair : pairs) {
    labels.push_back(pair.label);
  }
  return labels;
}

}  // namespace dmfsgd::eval
