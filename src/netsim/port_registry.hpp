// Rendezvous-file port discovery for multi-host style launches (DESIGN.md §15).
//
// The forked multiprocess path binds every UDP socket before fork(), so each
// child inherits the full port table.  Processes with no common ancestor —
// the eventual multi-host deployment, or N independently launched local
// processes — cannot do that.  PortRegistry gives them the same table with
// no coordinator: every process appends one "index port" line to a shared
// registry file with a single O_APPEND write (atomic for short lines on
// POSIX), then polls the file until all process_count entries are present.
//
// The file is the only shared state; any process may create it, and a crashed
// participant just leaves the others polling until the timeout.  Re-running a
// swarm needs a fresh path (entries are append-only by design, so a stale
// file from a previous run would satisfy the poll with dead ports).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netsim/inter_shard_channel.hpp"
#include "transport/udp.hpp"

namespace dmfsgd::netsim {

/// Publishes `port` as process `index`'s endpoint in the registry file at
/// `path`, then polls until all `process_count` processes have published.
/// Returns the full port table indexed by process.  Throws
/// std::invalid_argument on a bad index/count, std::runtime_error when the
/// file cannot be opened, when a peer publishes a contradictory entry for
/// the same index, or when the table is still incomplete after `timeout_s`.
[[nodiscard]] std::vector<std::uint16_t> ExchangePorts(
    const std::string& path, std::size_t process_count, std::size_t index,
    std::uint16_t port, double timeout_s = 10.0);

/// Convenience: binds an ephemeral UDP socket, exchanges its port through
/// the registry at `path`, and wires up the channel — the whole handshake a
/// non-forked process needs to join a drain.
[[nodiscard]] std::unique_ptr<UdpInterShardChannel> MakeUdpChannelViaRegistry(
    const std::string& path, std::size_t process_count, std::size_t index,
    double timeout_s = 10.0);

}  // namespace dmfsgd::netsim
