#include "netsim/port_registry.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace dmfsgd::netsim {

namespace {

/// Parses every "index port" line currently in the registry into `ports`
/// (0 = not yet published).  Returns how many distinct indices have
/// published.  Throws on a contradictory re-publication of an index.
std::size_t ParseRegistry(const std::string& path,
                          std::vector<std::uint16_t>& ports) {
  std::fill(ports.begin(), ports.end(), 0);
  std::size_t published = 0;
  std::ifstream in(path);
  if (!in) {
    return 0;  // not created yet — the first writer will create it
  }
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::size_t index = 0;
    std::uint32_t port = 0;
    if (!(fields >> index >> port) || index >= ports.size() || port == 0 ||
        port > 0xffff) {
      throw std::runtime_error("PortRegistry: malformed entry in " + path +
                               ": '" + line + "'");
    }
    const auto value = static_cast<std::uint16_t>(port);
    if (ports[index] != 0 && ports[index] != value) {
      throw std::runtime_error(
          "PortRegistry: conflicting entries for process " +
          std::to_string(index) + " in " + path);
    }
    if (ports[index] == 0) {
      ports[index] = value;
      ++published;
    }
  }
  return published;
}

}  // namespace

std::vector<std::uint16_t> ExchangePorts(const std::string& path,
                                         std::size_t process_count,
                                         std::size_t index, std::uint16_t port,
                                         double timeout_s) {
  if (process_count == 0 || index >= process_count) {
    throw std::invalid_argument("ExchangePorts: bad process index/count");
  }
  if (port == 0) {
    throw std::invalid_argument("ExchangePorts: port must be bound (nonzero)");
  }
  // One short O_APPEND write is atomic on POSIX, so concurrent publishers
  // never interleave bytes within a line.
  const std::string line =
      std::to_string(index) + " " + std::to_string(port) + "\n";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    throw std::runtime_error("ExchangePorts: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  const ssize_t wrote = ::write(fd, line.data(), line.size());
  ::close(fd);
  if (wrote != static_cast<ssize_t>(line.size())) {
    throw std::runtime_error("ExchangePorts: short write to " + path);
  }

  std::vector<std::uint16_t> ports(process_count, 0);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  for (;;) {
    if (ParseRegistry(path, ports) == process_count) {
      if (ports[index] != port) {
        throw std::runtime_error(
            "ExchangePorts: registry disagrees about our own port — stale "
            "file at " + path + "?");
      }
      return ports;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::size_t missing = 0;
      for (const std::uint16_t p : ports) {
        missing += (p == 0);
      }
      throw std::runtime_error(
          "ExchangePorts: timed out waiting on " + std::to_string(missing) +
          " of " + std::to_string(process_count) + " processes at " + path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::unique_ptr<UdpInterShardChannel> MakeUdpChannelViaRegistry(
    const std::string& path, std::size_t process_count, std::size_t index,
    double timeout_s) {
  transport::UdpSocket socket(0);  // ephemeral bind: the kernel picks the port
  std::vector<std::uint16_t> ports =
      ExchangePorts(path, process_count, index, socket.Port(), timeout_s);
  return std::make_unique<UdpInterShardChannel>(std::move(socket), index,
                                                std::move(ports));
}

}  // namespace dmfsgd::netsim
