// Reliability decorator for inter-shard transport (DESIGN.md §15).
//
// InterShardChannel backends move frames but do not promise delivery: a
// genuinely lossy link (multi-host UDP, injected faults) loses datagrams,
// duplicates them, and reorders them.  ReliableInterShardChannel wraps any
// backend and restores the one property the window protocol cannot supply
// itself — every sent frame is eventually delivered exactly once:
//
//   * per-peer-pair sequence numbers   every data frame to a peer carries a
//     monotonically increasing seq; the receiver suppresses duplicates and
//     tracks which seqs arrived.
//   * cumulative + selective acks      every frame (data or standalone ack)
//     carries the highest seq S with all of 1..S received plus a 64-bit
//     bitmap of seqs S+1..S+64, so one reordered loss does not force the
//     whole tail to retransmit.  Acks piggyback on data frames; when the
//     receiver has nothing to send, a standalone ack flushes after
//     ack_delay_ms.
//   * timeout-driven retransmission    unacked frames resend after an RTO
//     that backs off exponentially (initial_rto_ms · backoff^attempts,
//     capped at max_rto_ms) with deterministic seeded jitter so two peers
//     retransmitting at each other do not phase-lock.
//
// The window protocol already tolerates reordering and duplication, so the
// layer deliberately does NOT resequence: a frame is delivered the moment it
// first arrives, in whatever order the network produced.  What it adds is
// loss recovery and exactly-once delivery — which together make a
// distributed drain over a lossy link bit-identical to the lossless run.
//
// Single-threaded by design: one runtime thread owns the channel, and all
// timers (retransmit, delayed ack) are serviced inside Send and Receive —
// no background thread, no locks, deterministic fault handling in tests.
//
// Liveness: the decorator exposes LivenessEpoch(), which advances whenever
// a peer's cumulative ack moves or a new data frame arrives.  ShardRuntime
// re-arms its stall timeout on every advance, so a slow peer that is still
// draining retransmissions is "live" and only a peer whose acks stop
// advancing for the full stall timeout trips StallError.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "netsim/inter_shard_channel.hpp"

namespace dmfsgd::netsim {

/// Tuning knobs of the reliability layer.  Defaults suit loopback and LAN
/// links; a WAN deployment raises initial_rto_ms toward its RTT.  The
/// runtime's ShardRuntimeOptions::stall_timeout_s must comfortably exceed
/// max_rto_ms — stall detection only declares a peer dead after a full
/// timeout with no ack progress, so the two compose: retransmission keeps a
/// live-but-lossy peer's acks advancing, and the stall timer fires only for
/// a genuinely dead one.
struct ReliableChannelOptions {
  int initial_rto_ms = 40;    ///< first retransmit timeout per frame
  int max_rto_ms = 2000;      ///< exponential backoff cap
  double backoff = 2.0;       ///< RTO multiplier per failed attempt
  double jitter_frac = 0.25;  ///< uniform ±fraction applied to every RTO
  int ack_delay_ms = 20;      ///< standalone-ack flush delay when idle
  std::uint64_t seed = 0x715cu;  ///< jitter stream seed (deterministic)
};

/// Header layout shared by the encoder, the decoder, and the codec tests.
/// Data frame:  [u8 kReliableData][u64 seq][u64 ack][u64 sack][u32 len][payload]
/// Standalone ack:   [u8 kReliableAck][u64 ack][u64 sack]
/// `ack` is cumulative (all of 1..ack received); `sack` bit b set means seq
/// ack+1+b was also received.  `len` is the exact payload byte count: a
/// torn or padded frame would otherwise decode as a shorter-but-valid
/// payload, so the decoder insists on it and rejects any mismatch.  Type
/// bytes sit outside the window protocol's range (1-2) and the result
/// fold's (16-17), but that is irrelevant on the wire: the reliability
/// header wraps those payloads entirely.
inline constexpr std::uint8_t kReliableData = 0x51;
inline constexpr std::uint8_t kReliableAck = 0x52;
inline constexpr std::size_t kReliableDataHeaderBytes = 1 + 8 + 8 + 8 + 4;
inline constexpr std::size_t kReliableAckFrameBytes = 1 + 8 + 8;

/// Decoded reliability header; `payload` views into the decoded buffer for
/// data frames and is empty for standalone acks.
struct ReliableFrameView {
  std::uint8_t type = 0;
  std::uint64_t seq = 0;  ///< data frames only
  std::uint64_t cumulative_ack = 0;
  std::uint64_t sack_bitmap = 0;
  std::span<const std::byte> payload;
};

/// Encodes a data frame: header + payload.  Requires payload non-empty.
[[nodiscard]] std::vector<std::byte> EncodeReliableData(
    std::uint64_t seq, std::uint64_t cumulative_ack, std::uint64_t sack_bitmap,
    std::span<const std::byte> payload);

/// Encodes a standalone ack frame.
[[nodiscard]] std::vector<std::byte> EncodeReliableAck(
    std::uint64_t cumulative_ack, std::uint64_t sack_bitmap);

/// Decodes either frame kind.  Throws std::runtime_error on an unknown type
/// byte, a truncated header, or a data frame with an empty payload — a
/// malformed frame must reject loudly, never misparse.
[[nodiscard]] ReliableFrameView DecodeReliableFrame(
    std::span<const std::byte> bytes);

/// Reliability decorator over any InterShardChannel.  `inner` must outlive
/// this object.  Not thread-safe: one thread owns Send and Receive (the
/// shard runtime's single drain thread), which is also what lets the timer
/// pump run without locks.
class ReliableInterShardChannel final : public InterShardChannel {
 public:
  explicit ReliableInterShardChannel(
      InterShardChannel& inner,
      ReliableChannelOptions options = ReliableChannelOptions());

  [[nodiscard]] std::size_t ProcessCount() const noexcept override {
    return inner_->ProcessCount();
  }
  [[nodiscard]] std::size_t ProcessIndex() const noexcept override {
    return inner_->ProcessIndex();
  }
  /// Ships one frame reliably: assigns the next seq toward `to_process`,
  /// records it for retransmission until acked, and piggybacks the current
  /// ack state for that peer.  Also services due timers.
  void Send(std::size_t to_process, std::span<const std::byte> frame) override;
  /// Returns the next new (never-seen) frame, servicing retransmissions,
  /// acks and duplicate suppression while it waits.  std::nullopt on
  /// timeout — which, unlike the raw backends, does NOT mean the link is
  /// idle: retransmissions may still be in flight (see LivenessEpoch).
  [[nodiscard]] std::optional<InterShardFrame> Receive(int timeout_ms) override;
  [[nodiscard]] const char* Name() const noexcept override {
    return "reliable";
  }
  /// The inner budget minus the data header this layer prepends.
  [[nodiscard]] std::size_t MaxFrameBytes() const noexcept override {
    return inner_->MaxFrameBytes() - kReliableDataHeaderBytes;
  }
  [[nodiscard]] ChannelDiagnostics Diagnostics() const override;
  [[nodiscard]] std::uint64_t LivenessEpoch() const noexcept override {
    return liveness_epoch_;
  }
  /// Retransmits and acks until every unacked frame is acknowledged and
  /// every delayed ack has shipped (false on timeout).  Data frames that
  /// arrive meanwhile queue for the next Receive.
  bool Flush(int timeout_ms) override;

  /// Frames accepted but not yet acked by `peer` (retransmission backlog).
  [[nodiscard]] std::size_t UnackedFrames(std::size_t peer) const;
  /// Total retransmissions across all peers.
  [[nodiscard]] std::uint64_t Retransmits() const noexcept;
  /// Received frames suppressed as duplicates across all peers.
  [[nodiscard]] std::uint64_t DuplicatesSuppressed() const noexcept;
  /// Standalone ack frames sent (piggybacked acks are free).
  [[nodiscard]] std::uint64_t StandaloneAcksSent() const noexcept {
    return standalone_acks_sent_;
  }
  /// Inner-channel frames whose reliability header failed to decode.
  [[nodiscard]] std::uint64_t MalformedFrames() const noexcept {
    return malformed_frames_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct PendingFrame {
    std::vector<std::byte> payload;  ///< original caller bytes, unwrapped
    Clock::time_point deadline;
    int attempts = 0;
  };
  struct PeerState {
    // Sender side (this → peer).
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, PendingFrame> unacked;  ///< seq → frame
    std::uint64_t frames_sent = 0;
    std::uint64_t retransmits = 0;
    // Receiver side (peer → this).
    std::uint64_t cumulative = 0;          ///< all of 1..cumulative delivered
    std::set<std::uint64_t> beyond;        ///< received out of order
    std::uint64_t frames_received = 0;
    std::uint64_t duplicates = 0;
    bool ack_pending = false;
    Clock::time_point ack_deadline{};
    bool heard = false;
    Clock::time_point last_heard{};
  };

  /// Current (cumulative, sack) ack pair to advertise toward `peer`.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> AckStateFor(
      const PeerState& peer) const;
  /// Applies a peer's ack report to our unacked buffer; advances the
  /// liveness epoch when anything newly acks.
  void ApplyAck(PeerState& peer, std::uint64_t cumulative,
                std::uint64_t sack_bitmap);
  /// Retransmits due frames and flushes due standalone acks; returns the
  /// next timer deadline (or a far-future time when no timer is armed).
  Clock::time_point PumpTimers(Clock::time_point now);
  /// Decodes one inner frame, applies its ack state, suppresses duplicates
  /// and schedules acks; returns the unwrapped frame when it is new data.
  [[nodiscard]] std::optional<InterShardFrame> ProcessIncoming(
      const InterShardFrame& raw);
  /// Jittered RTO for the given attempt count.
  [[nodiscard]] Clock::duration RtoFor(int attempts);
  void SendWrapped(std::size_t to_process, std::uint64_t seq,
                   std::span<const std::byte> payload);

  InterShardChannel* inner_;
  ReliableChannelOptions options_;
  common::Rng jitter_;
  std::vector<PeerState> peers_;
  std::deque<InterShardFrame> ready_;  ///< new data surfaced while flushing
  std::uint64_t liveness_epoch_ = 0;
  std::uint64_t standalone_acks_sent_ = 0;
  std::uint64_t malformed_frames_ = 0;
};

}  // namespace dmfsgd::netsim
