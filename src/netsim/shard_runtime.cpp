#include "netsim/shard_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"

namespace dmfsgd::netsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Window-protocol frame types.  Higher layers using the same channel (the
// coordinator's result fold) must pick types outside this range; the runtime
// parks frames it does not recognize in the leftover buffer.
constexpr std::uint8_t kFramePropose = 1;
constexpr std::uint8_t kFrameEventChunk = 2;

std::string FormatStall(std::uint64_t window_id, const std::string& phase,
                        const std::vector<std::uint64_t>& frames_received_from,
                        const ChannelDiagnostics& diagnostics) {
  std::ostringstream out;
  out << "inter-shard channel stalled in the " << phase
      << " gather of window " << window_id
      << ": a peer died or fell behind past the stall timeout";
  if (diagnostics.dropped_datagrams != 0 || diagnostics.stray_datagrams != 0) {
    out << "; transport dropped " << diagnostics.dropped_datagrams
        << " and discarded " << diagnostics.stray_datagrams
        << " stray datagrams";
  }
  for (std::size_t p = 0; p < diagnostics.peers.size(); ++p) {
    const PeerChannelStats& peer = diagnostics.peers[p];
    out << "\n  peer " << p << ": "
        << (p < frames_received_from.size() ? frames_received_from[p] : 0)
        << " protocol frames received";
    if (peer.frames_sent != 0 || peer.frames_received != 0 ||
        peer.retransmits != 0 || peer.unacked_frames != 0) {
      out << ", " << peer.unacked_frames << " unacked toward it ("
          << peer.retransmits << " retransmits, " << peer.duplicates_suppressed
          << " duplicates suppressed)";
    }
    if (peer.seconds_since_heard >= 0.0) {
      out << ", last heard " << peer.seconds_since_heard << "s ago";
    } else {
      out << ", never heard from";
    }
  }
  return out.str();
}

}  // namespace

StallError::StallError(std::uint64_t window_id, std::string phase,
                       std::vector<std::uint64_t> frames_received_from,
                       ChannelDiagnostics diagnostics)
    : std::runtime_error(
          FormatStall(window_id, phase, frames_received_from, diagnostics)),
      window_id_(window_id),
      phase_(std::move(phase)),
      frames_received_from_(std::move(frames_received_from)),
      diagnostics_(std::move(diagnostics)) {}

/// Gather state for one window: which peers proposed, and each peer's
/// event-batch reassembly (duplicate-safe via ChunkAssembler — a duplicated
/// datagram must not inject its events twice).
struct ShardRuntime::WindowExchange {
  explicit WindowExchange(std::size_t processes, std::vector<double> mins)
      : proposed(processes, false),
        batches(processes),
        merged_mins(std::move(mins)) {}

  std::vector<bool> proposed;
  std::vector<ChunkAssembler> batches;
  std::vector<double> merged_mins;

  [[nodiscard]] bool AllProposed(std::size_t self) const {
    for (std::size_t p = 0; p < proposed.size(); ++p) {
      if (p != self && !proposed[p]) {
        return false;
      }
    }
    return true;
  }
  [[nodiscard]] bool AllBatchesComplete(std::size_t self) const {
    for (std::size_t p = 0; p < proposed.size(); ++p) {
      if (p != self && !batches[p].Complete()) {
        return false;
      }
    }
    return true;
  }
};

ShardRuntime::ShardRuntime(ShardedEventQueue& queue, InterShardChannel& channel,
                           LookaheadMatrix lookaheads, RemoteEventDecoder decoder,
                           Options options)
    : queue_(&queue),
      channel_(&channel),
      lookaheads_(std::move(lookaheads)),
      decoder_(std::move(decoder)),
      options_(options) {
  if (options_.receive_poll_ms <= 0) {
    throw std::invalid_argument(
        "ShardRuntime: receive_poll_ms must be positive");
  }
  if (!(options_.stall_timeout_s > 0.0)) {
    throw std::invalid_argument(
        "ShardRuntime: stall_timeout_s must be positive");
  }
  // Clamp against the *channel's* budget: a reliability decorator reserves
  // header bytes out of every frame, so the constant overshoots there.
  options_.max_frame_bytes = std::clamp<std::size_t>(
      options_.max_frame_bytes, 256, channel.MaxFrameBytes());
  if (lookaheads_.ShardCount() != queue.ShardCount()) {
    throw std::invalid_argument(
        "ShardRuntime: lookahead matrix shard count mismatch");
  }
  if (!decoder_) {
    throw std::invalid_argument("ShardRuntime: remote event decoder required");
  }
  if (queue.ShardCount() < channel.ProcessCount()) {
    throw std::invalid_argument(
        "ShardRuntime: fewer shards than processes — every process needs at "
        "least one shard");
  }
  process_of_shard_.resize(queue.ShardCount());
  for (std::size_t p = 0; p < channel.ProcessCount(); ++p) {
    const auto [block_begin, block_end] =
        BlockRange(queue.ShardCount(), channel.ProcessCount(), p);
    for (std::size_t s = block_begin; s < block_end; ++s) {
      process_of_shard_[s] = p;
    }
  }
  const auto [begin, end] = BlockRange(queue.ShardCount(), channel.ProcessCount(),
                                       channel.ProcessIndex());
  queue.SetOwnedShardRange(begin, end);
  frames_received_from_.resize(channel.ProcessCount(), 0);
}

std::uint64_t ShardRuntime::RunUntil(double until_s, common::ThreadPool& pool) {
  const std::size_t processes = channel_->ProcessCount();
  std::uint64_t executed = 0;
  for (;;) {
    // Local truth for owned shards only; remote shards hold the stale
    // replicas of the deterministic construction and must be overridden by
    // their owners' proposals.
    const std::vector<double> local = queue_->ShardMinTimes();
    std::vector<double> mins(queue_->ShardCount(), kInf);
    for (std::size_t s = queue_->OwnedShardBegin(); s < queue_->OwnedShardEnd();
         ++s) {
      mins[s] = local[s];
    }
    WindowExchange exchange(processes, std::move(mins));
    if (processes > 1) {
      BroadcastProposal(window_id_, local);
      GatherProposals(window_id_, exchange);
    }
    const double t_min =
        *std::min_element(exchange.merged_mins.begin(), exchange.merged_mins.end());
    if (!(t_min <= until_s)) {
      break;  // every process computes the same vector, so all agree to stop
    }
    std::vector<double> ends = ShardedEventQueue::ConservativeWindowEnds(
        exchange.merged_mins, lookaheads_);
    const double frontier =
        std::min(until_s, *std::min_element(ends.begin(), ends.end()));
    queue_->BeginWindow(std::move(ends));
    queue_->DrainOwnedShards(pool, until_s);
    executed += queue_->FinishWindow();
    if (processes > 1) {
      SendEventBatches(window_id_,
                       CoalesceRemoteEvents(queue_->TakeRemoteEvents()));
      GatherEventBatches(window_id_, exchange);
    }
    queue_->AdvanceNow(frontier);
    ++window_id_;
  }
  queue_->AdvanceNow(until_s);
  if (processes > 1) {
    // The terminal proposes can still be in flight: every process agreed to
    // stop, but on a lossy link one process's final propose may have been
    // dropped — and a reliability decorator only retransmits inside
    // Send/Receive/Flush.  Returning without a flush would strand the peer
    // in its final gather until its stall timeout with nobody left to
    // retransmit.  Bounded by the stall timeout: against a live peer this
    // settles in a few RTOs; against a dead one the caller was stalling
    // anyway.
    (void)channel_->Flush(
        static_cast<int>(options_.stall_timeout_s * 1000.0));
  }
  return executed;
}

std::vector<InterShardFrame> ShardRuntime::TakeLeftoverFrames() {
  return std::exchange(leftover_, {});
}

void ShardRuntime::BroadcastProposal(std::uint64_t window_id,
                                     const std::vector<double>& local_mins) {
  FrameWriter writer;
  writer.U8(kFramePropose);
  writer.U64(window_id);
  const std::size_t begin = queue_->OwnedShardBegin();
  const std::size_t end = queue_->OwnedShardEnd();
  writer.U32(static_cast<std::uint32_t>(end - begin));
  for (std::size_t s = begin; s < end; ++s) {
    writer.U32(static_cast<std::uint32_t>(s));
    writer.F64(local_mins[s]);
  }
  const std::vector<std::byte> frame = writer.Take();
  for (std::size_t p = 0; p < channel_->ProcessCount(); ++p) {
    if (p != channel_->ProcessIndex()) {
      SendFrame(p, frame);
    }
  }
}

void ShardRuntime::SendFrame(std::size_t to_process,
                             std::span<const std::byte> frame) {
  channel_->Send(to_process, frame);
  ++frames_sent_;
}

std::vector<ShardedEventQueue::RemoteEvent> ShardRuntime::CoalesceRemoteEvents(
    std::vector<ShardedEventQueue::RemoteEvent> events) const {
  if (!merger_ || events.size() < 2) {
    return events;
  }
  // Group by identical (owner, time) — not just adjacent runs: a burst's
  // replies converge on one owner from *different* source lanes, so the
  // group's members are scattered across the per-shard outbox order.
  // TakeRemoteEvents yields ascending (lane, seq), so a group's first
  // occurrence carries its least merge key: the batch executes exactly
  // where its first message would have, with the rest applied in stamp
  // order behind it (DESIGN.md §13).
  struct Group {
    std::vector<ShardedEventQueue::RemoteEvent> members;
    std::size_t bytes = 0;
  };
  // A merged payload must still fit one frame of the *configured* budget
  // (the MTU knob exists precisely so no frame outgrows it) with
  // chunk-header headroom; an overfull group splits — the follow-on batch
  // keeps the next member's (later) stamp, so order survives the split.
  const std::size_t byte_budget = options_.max_frame_bytes - 128;
  // 512 mirrors the delivery layer's batch-envelope item cap without
  // making this payload-agnostic layer include the wire codec.
  constexpr std::size_t kMaxGroupPayloads = 512;
  std::vector<Group> groups;
  groups.reserve(events.size());
  std::map<std::pair<ShardedEventQueue::OwnerId, std::uint64_t>, std::size_t>
      index;
  for (ShardedEventQueue::RemoteEvent& event : events) {
    std::uint64_t time_bits = 0;
    std::memcpy(&time_bits, &event.time, sizeof(time_bits));
    const std::size_t bytes = event.payload.size() + 8;
    auto [it, inserted] =
        index.try_emplace({event.owner, time_bits}, groups.size());
    if (!inserted &&
        (groups[it->second].bytes + bytes > byte_budget ||
         groups[it->second].members.size() >= kMaxGroupPayloads)) {
      it->second = groups.size();  // start a follow-on group for this key
      inserted = true;
    }
    if (inserted) {
      groups.emplace_back();
    }
    Group& group = groups[it->second];
    group.bytes += bytes;
    group.members.push_back(std::move(event));
  }
  std::vector<ShardedEventQueue::RemoteEvent> merged;
  merged.reserve(groups.size());
  std::vector<std::vector<std::byte>> payloads;
  for (Group& group : groups) {
    if (group.members.size() == 1) {
      merged.push_back(std::move(group.members.front()));
      continue;
    }
    payloads.clear();
    payloads.reserve(group.members.size());
    for (ShardedEventQueue::RemoteEvent& member : group.members) {
      payloads.push_back(std::move(member.payload));
    }
    std::optional<std::vector<std::byte>> combined = merger_(payloads);
    if (!combined.has_value()) {
      // The scheduling layer declined (handlers of these payloads emit, so
      // merging could reorder emission stamps): ship them individually.
      for (std::size_t m = 0; m < group.members.size(); ++m) {
        group.members[m].payload = std::move(payloads[m]);
        merged.push_back(std::move(group.members[m]));
      }
      continue;
    }
    ShardedEventQueue::RemoteEvent batch = std::move(group.members.front());
    batch.payload = std::move(*combined);
    merged.push_back(std::move(batch));
  }
  return merged;
}

void ShardRuntime::SendEventBatches(
    std::uint64_t window_id, std::vector<ShardedEventQueue::RemoteEvent> events) {
  // One bucketing pass maps every event to its owner's process; each peer
  // then gets >= 1 chunk (an empty one doubles as the barrier), each chunk
  // capped at the clamped max_frame_bytes budget.
  std::vector<std::vector<const ShardedEventQueue::RemoteEvent*>> buckets(
      channel_->ProcessCount());
  for (const auto& event : events) {
    buckets[process_of_shard_[queue_->ShardOf(event.owner)]].push_back(&event);
  }
  for (std::size_t p = 0; p < channel_->ProcessCount(); ++p) {
    if (p == channel_->ProcessIndex()) {
      continue;
    }
    // Pre-partition into chunks by serialized size so every chunk can carry
    // its index and a last-chunk flag (UDP may reorder chunks in flight).
    // First-fit-decreasing: big records (merged reply envelopes) open
    // chunks, small ones fill the tails — order across and within chunks is
    // free because every event carries its own deterministic stamp, and the
    // packing itself is deterministic (stable sort, first-fit scan).
    std::vector<const ShardedEventQueue::RemoteEvent*> ordered = buckets[p];
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const auto* a, const auto* b) {
                       return a->payload.size() > b->payload.size();
                     });
    std::vector<std::vector<const ShardedEventQueue::RemoteEvent*>> chunks(1);
    std::vector<std::size_t> chunk_bytes(1, 64);  // header headroom
    for (const auto* event : ordered) {
      const std::size_t bytes = 28 + event->payload.size();
      std::size_t slot = chunks.size();
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        if (chunk_bytes[c] + bytes <= options_.max_frame_bytes ||
            chunks[c].empty()) {
          slot = c;
          break;
        }
      }
      if (slot == chunks.size()) {
        chunks.emplace_back();
        chunk_bytes.push_back(64);
      }
      chunks[slot].push_back(event);
      chunk_bytes[slot] += bytes;
    }
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      FrameWriter writer;
      writer.U8(kFrameEventChunk);
      writer.U64(window_id);
      writer.U32(static_cast<std::uint32_t>(c));
      writer.U8(c + 1 == chunks.size() ? 1 : 0);
      writer.U32(static_cast<std::uint32_t>(chunks[c].size()));
      for (const auto* event : chunks[c]) {
        writer.U32(event->owner);
        writer.F64(event->time);
        writer.U32(event->lane);
        writer.U64(event->seq);
        writer.U32(static_cast<std::uint32_t>(event->payload.size()));
        writer.Bytes(event->payload);
      }
      SendFrame(p, writer.Take());
    }
  }
}

InterShardFrame ShardRuntime::ReceiveOrThrow(std::uint64_t window_id,
                                             const char* phase) {
  const auto stall_timeout =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.stall_timeout_s));
  auto deadline = std::chrono::steady_clock::now() + stall_timeout;
  std::uint64_t liveness = channel_->LivenessEpoch();
  for (;;) {
    auto frame = channel_->Receive(options_.receive_poll_ms);
    if (frame.has_value()) {
      ++frames_received_from_[frame->from_process];
      return std::move(*frame);
    }
    // No frame surfaced, but the channel may still have seen progress (a
    // reliability layer's acks advancing under retransmission): treat any
    // liveness advance as "peers alive" and re-arm the deadline, so only a
    // peer whose acks stop for the whole timeout trips the stall.
    const std::uint64_t epoch = channel_->LivenessEpoch();
    if (epoch != liveness) {
      liveness = epoch;
      deadline = std::chrono::steady_clock::now() + stall_timeout;
      continue;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw StallError(window_id, phase, frames_received_from_,
                       channel_->Diagnostics());
    }
  }
}

void ShardRuntime::HandleFrame(std::uint64_t window_id,
                               const InterShardFrame& frame,
                               WindowExchange& exchange) {
  FrameReader reader(frame.bytes);
  const std::uint8_t type = reader.U8();
  if (type != kFramePropose && type != kFrameEventChunk) {
    leftover_.push_back(frame);
    return;
  }
  const std::uint64_t wid = reader.U64();
  if (wid < window_id) {
    return;  // stale duplicate; the window it belongs to already closed
  }
  if (wid > window_id + 1 || (wid == window_id + 1 && type != kFramePropose)) {
    throw std::logic_error(
        "ShardRuntime: peer is ahead by more than the lock-step protocol "
        "allows — window desynchronization");
  }
  if (wid == window_id + 1) {
    pending_.push_back(frame);  // next window's proposal arrived early
    return;
  }
  if (type == kFramePropose) {
    const std::uint32_t count = reader.U32();
    for (std::uint32_t e = 0; e < count; ++e) {
      const std::uint32_t shard = reader.U32();
      const double t_min = reader.F64();
      if (shard >= queue_->ShardCount() ||
          process_of_shard_[shard] != frame.from_process) {
        throw std::logic_error(
            "ShardRuntime: peer proposed for a shard it does not own");
      }
      exchange.merged_mins[shard] = t_min;
    }
    exchange.proposed[frame.from_process] = true;
    return;
  }
  // Event chunk for the current window.
  const std::uint32_t chunk_index = reader.U32();
  const bool is_last = reader.U8() != 0;
  const std::uint32_t count = reader.U32();
  if (!exchange.batches[frame.from_process].Mark(chunk_index, is_last)) {
    return;  // duplicated datagram; its events are already enqueued
  }
  for (std::uint32_t e = 0; e < count; ++e) {
    const auto owner = static_cast<ShardedEventQueue::OwnerId>(reader.U32());
    const double time = reader.F64();
    const std::uint32_t lane = reader.U32();
    const std::uint64_t seq = reader.U64();
    const std::uint32_t payload_len = reader.U32();
    std::vector<std::byte> payload = reader.Bytes(payload_len);
    queue_->InjectRemote(owner, time, lane, seq,
                         decoder_(owner, std::move(payload)));
  }
}

void ShardRuntime::GatherProposals(std::uint64_t window_id,
                                   WindowExchange& exchange) {
  for (const InterShardFrame& frame : std::exchange(pending_, {})) {
    HandleFrame(window_id, frame, exchange);
  }
  while (!exchange.AllProposed(channel_->ProcessIndex())) {
    HandleFrame(window_id, ReceiveOrThrow(window_id, "propose"), exchange);
  }
}

void ShardRuntime::GatherEventBatches(std::uint64_t window_id,
                                      WindowExchange& exchange) {
  while (!exchange.AllBatchesComplete(channel_->ProcessIndex())) {
    HandleFrame(window_id, ReceiveOrThrow(window_id, "event-batch"), exchange);
  }
}

}  // namespace dmfsgd::netsim
