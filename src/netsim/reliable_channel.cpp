#include "netsim/reliable_channel.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace dmfsgd::netsim {

namespace {

constexpr auto kFarFuture = std::chrono::steady_clock::time_point::max();

void PutU64(std::vector<std::byte>& bytes, std::size_t at, std::uint64_t value) {
  std::memcpy(bytes.data() + at, &value, sizeof(value));
}

std::uint64_t GetU64(std::span<const std::byte> bytes, std::size_t at) {
  std::uint64_t value = 0;
  std::memcpy(&value, bytes.data() + at, sizeof(value));
  return value;
}

void PutU32(std::vector<std::byte>& bytes, std::size_t at, std::uint32_t value) {
  std::memcpy(bytes.data() + at, &value, sizeof(value));
}

std::uint32_t GetU32(std::span<const std::byte> bytes, std::size_t at) {
  std::uint32_t value = 0;
  std::memcpy(&value, bytes.data() + at, sizeof(value));
  return value;
}

}  // namespace

std::vector<std::byte> EncodeReliableData(std::uint64_t seq,
                                          std::uint64_t cumulative_ack,
                                          std::uint64_t sack_bitmap,
                                          std::span<const std::byte> payload) {
  if (payload.empty()) {
    throw std::invalid_argument("EncodeReliableData: empty payload");
  }
  std::vector<std::byte> bytes(kReliableDataHeaderBytes + payload.size());
  bytes[0] = static_cast<std::byte>(kReliableData);
  PutU64(bytes, 1, seq);
  PutU64(bytes, 9, cumulative_ack);
  PutU64(bytes, 17, sack_bitmap);
  PutU32(bytes, 25, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(bytes.data() + kReliableDataHeaderBytes, payload.data(),
              payload.size());
  return bytes;
}

std::vector<std::byte> EncodeReliableAck(std::uint64_t cumulative_ack,
                                         std::uint64_t sack_bitmap) {
  std::vector<std::byte> bytes(kReliableAckFrameBytes);
  bytes[0] = static_cast<std::byte>(kReliableAck);
  PutU64(bytes, 1, cumulative_ack);
  PutU64(bytes, 9, sack_bitmap);
  return bytes;
}

ReliableFrameView DecodeReliableFrame(std::span<const std::byte> bytes) {
  if (bytes.empty()) {
    throw std::runtime_error("DecodeReliableFrame: empty frame");
  }
  ReliableFrameView view;
  view.type = static_cast<std::uint8_t>(bytes[0]);
  if (view.type == kReliableAck) {
    if (bytes.size() != kReliableAckFrameBytes) {
      throw std::runtime_error(
          "DecodeReliableFrame: ack frame has the wrong length");
    }
    view.cumulative_ack = GetU64(bytes, 1);
    view.sack_bitmap = GetU64(bytes, 9);
    return view;
  }
  if (view.type != kReliableData) {
    throw std::runtime_error("DecodeReliableFrame: unknown frame type");
  }
  if (bytes.size() <= kReliableDataHeaderBytes) {
    // A header with no payload is as malformed as a truncated header: Send
    // never accepts empty frames, so nothing legitimate encodes this way.
    throw std::runtime_error("DecodeReliableFrame: truncated data frame");
  }
  view.seq = GetU64(bytes, 1);
  if (view.seq == 0) {
    throw std::runtime_error("DecodeReliableFrame: data frame with seq 0");
  }
  view.cumulative_ack = GetU64(bytes, 9);
  view.sack_bitmap = GetU64(bytes, 17);
  if (GetU32(bytes, 25) != bytes.size() - kReliableDataHeaderBytes) {
    // A torn tail would otherwise pass as a shorter valid payload.
    throw std::runtime_error(
        "DecodeReliableFrame: payload length does not match the frame");
  }
  view.payload = bytes.subspan(kReliableDataHeaderBytes);
  return view;
}

// ------------------------------------------------------------------------

ReliableInterShardChannel::ReliableInterShardChannel(
    InterShardChannel& inner, ReliableChannelOptions options)
    : inner_(&inner), options_(options), jitter_(options.seed) {
  if (options_.initial_rto_ms <= 0 || options_.max_rto_ms <= 0 ||
      options_.ack_delay_ms <= 0) {
    throw std::invalid_argument(
        "ReliableInterShardChannel: timer intervals must be positive");
  }
  if (options_.backoff < 1.0) {
    throw std::invalid_argument(
        "ReliableInterShardChannel: backoff must be >= 1");
  }
  if (options_.jitter_frac < 0.0 || options_.jitter_frac >= 1.0) {
    throw std::invalid_argument(
        "ReliableInterShardChannel: jitter_frac must be in [0, 1)");
  }
  if (inner_->MaxFrameBytes() <= kReliableDataHeaderBytes) {
    throw std::invalid_argument(
        "ReliableInterShardChannel: inner frame budget leaves no payload room");
  }
  peers_.resize(inner_->ProcessCount());
}

std::pair<std::uint64_t, std::uint64_t>
ReliableInterShardChannel::AckStateFor(const PeerState& peer) const {
  std::uint64_t sack = 0;
  for (const std::uint64_t seq : peer.beyond) {
    const std::uint64_t offset = seq - peer.cumulative - 1;
    if (offset >= 64) {
      break;  // beyond is ordered; the rest are past the bitmap window
    }
    sack |= std::uint64_t{1} << offset;
  }
  return {peer.cumulative, sack};
}

void ReliableInterShardChannel::ApplyAck(PeerState& peer,
                                         std::uint64_t cumulative,
                                         std::uint64_t sack_bitmap) {
  bool advanced = false;
  auto it = peer.unacked.begin();
  while (it != peer.unacked.end() && it->first <= cumulative) {
    it = peer.unacked.erase(it);
    advanced = true;
  }
  for (std::uint64_t bit = 0; bit < 64 && sack_bitmap >> bit; ++bit) {
    if ((sack_bitmap >> bit) & 1u) {
      advanced |= peer.unacked.erase(cumulative + 1 + bit) > 0;
    }
  }
  if (advanced) {
    ++liveness_epoch_;
  }
}

ReliableInterShardChannel::Clock::duration ReliableInterShardChannel::RtoFor(
    int attempts) {
  double rto_ms = static_cast<double>(options_.initial_rto_ms);
  for (int a = 0; a < attempts && rto_ms < options_.max_rto_ms; ++a) {
    rto_ms *= options_.backoff;
  }
  rto_ms = std::min(rto_ms, static_cast<double>(options_.max_rto_ms));
  // Deterministic jitter (seeded stream): ±jitter_frac, never below 1 ms.
  rto_ms *= 1.0 + options_.jitter_frac * (2.0 * jitter_.Uniform() - 1.0);
  return std::chrono::milliseconds(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(rto_ms)));
}

void ReliableInterShardChannel::SendWrapped(std::size_t to_process,
                                            std::uint64_t seq,
                                            std::span<const std::byte> payload) {
  PeerState& peer = peers_[to_process];
  const auto [cumulative, sack] = AckStateFor(peer);
  inner_->Send(to_process, EncodeReliableData(seq, cumulative, sack, payload));
  peer.ack_pending = false;  // the data frame piggybacked the freshest ack
}

void ReliableInterShardChannel::Send(std::size_t to_process,
                                     std::span<const std::byte> frame) {
  RequireSendable(to_process, frame);
  (void)PumpTimers(Clock::now());
  PeerState& peer = peers_[to_process];
  const std::uint64_t seq = peer.next_seq++;
  PendingFrame pending;
  pending.payload.assign(frame.begin(), frame.end());
  pending.attempts = 1;
  pending.deadline = Clock::now() + RtoFor(0);
  SendWrapped(to_process, seq, pending.payload);
  peer.unacked.emplace(seq, std::move(pending));
  ++peer.frames_sent;
}

ReliableInterShardChannel::Clock::time_point
ReliableInterShardChannel::PumpTimers(Clock::time_point now) {
  Clock::time_point next = kFarFuture;
  for (std::size_t p = 0; p < peers_.size(); ++p) {
    if (p == ProcessIndex()) {
      continue;
    }
    PeerState& peer = peers_[p];
    for (auto& [seq, pending] : peer.unacked) {
      if (pending.deadline <= now) {
        SendWrapped(p, seq, pending.payload);
        pending.deadline = now + RtoFor(pending.attempts);
        ++pending.attempts;
        ++peer.retransmits;
      }
      next = std::min(next, pending.deadline);
    }
    if (peer.ack_pending) {
      if (peer.ack_deadline <= now) {
        const auto [cumulative, sack] = AckStateFor(peer);
        inner_->Send(p, EncodeReliableAck(cumulative, sack));
        peer.ack_pending = false;
        ++standalone_acks_sent_;
      } else {
        next = std::min(next, peer.ack_deadline);
      }
    }
  }
  return next;
}

std::optional<InterShardFrame> ReliableInterShardChannel::ProcessIncoming(
    const InterShardFrame& raw) {
  PeerState& peer = peers_[raw.from_process];
  ReliableFrameView view;
  try {
    view = DecodeReliableFrame(raw.bytes);
  } catch (const std::runtime_error&) {
    ++malformed_frames_;
    return std::nullopt;
  }
  peer.heard = true;
  peer.last_heard = Clock::now();
  ApplyAck(peer, view.cumulative_ack, view.sack_bitmap);
  if (view.type == kReliableAck) {
    return std::nullopt;  // pure ack: no frame to surface
  }
  const bool duplicate =
      view.seq <= peer.cumulative || peer.beyond.count(view.seq) > 0;
  // Schedule an ack either way: a duplicate means our previous ack was
  // lost (or is still in flight), and re-acking is what stops the
  // sender's retransmit timer.
  if (!peer.ack_pending) {
    peer.ack_pending = true;
    peer.ack_deadline =
        Clock::now() + std::chrono::milliseconds(options_.ack_delay_ms);
  }
  if (duplicate) {
    ++peer.duplicates;
    return std::nullopt;
  }
  if (view.seq == peer.cumulative + 1) {
    ++peer.cumulative;
    while (!peer.beyond.empty() &&
           *peer.beyond.begin() == peer.cumulative + 1) {
      peer.beyond.erase(peer.beyond.begin());
      ++peer.cumulative;
    }
  } else {
    peer.beyond.insert(view.seq);
  }
  ++peer.frames_received;
  ++liveness_epoch_;
  return InterShardFrame{
      raw.from_process,
      std::vector<std::byte>(view.payload.begin(), view.payload.end())};
}

std::optional<InterShardFrame> ReliableInterShardChannel::Receive(
    int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (!ready_.empty()) {
      InterShardFrame frame = std::move(ready_.front());
      ready_.pop_front();
      return frame;
    }
    const auto now = Clock::now();
    const Clock::time_point next_timer = PumpTimers(now);
    // Wait only until the earlier of the caller's deadline and the next
    // retransmit/ack timer, so a blocked gather still drives the pumps.
    const Clock::time_point wake = std::min(deadline, next_timer);
    const auto wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        wake - now);
    auto raw = inner_->Receive(
        static_cast<int>(std::clamp<std::int64_t>(wait_ms.count(), 0, 1000)));
    if (!raw.has_value()) {
      if (Clock::now() >= deadline) {
        return std::nullopt;
      }
      continue;
    }
    if (auto frame = ProcessIncoming(*raw)) {
      return frame;
    }
  }
}

bool ReliableInterShardChannel::Flush(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto now = Clock::now();
    // A flushing endpoint is going quiet: there is no future data frame to
    // piggyback an ack on, so the usual ack delay only stalls the peer's own
    // settle. Expire pending acks now and let PumpTimers ship them.
    for (std::size_t p = 0; p < peers_.size(); ++p) {
      if (p != ProcessIndex() && peers_[p].ack_pending) {
        peers_[p].ack_deadline = now;
      }
    }
    const Clock::time_point next_timer = PumpTimers(now);
    bool busy = false;
    for (const PeerState& peer : peers_) {
      busy |= !peer.unacked.empty() || peer.ack_pending;
    }
    if (!busy) {
      return true;
    }
    if (now >= deadline) {
      return false;
    }
    const Clock::time_point wake = std::min(deadline, next_timer);
    const auto wait_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        wake - now);
    auto raw = inner_->Receive(
        static_cast<int>(std::clamp<std::int64_t>(wait_ms.count(), 0, 1000)));
    if (raw.has_value()) {
      if (auto frame = ProcessIncoming(*raw)) {
        ready_.push_back(std::move(*frame));
      }
    }
  }
}

ChannelDiagnostics ReliableInterShardChannel::Diagnostics() const {
  ChannelDiagnostics diagnostics = inner_->Diagnostics();
  diagnostics.peers.resize(peers_.size());
  const auto now = Clock::now();
  for (std::size_t p = 0; p < peers_.size(); ++p) {
    const PeerState& peer = peers_[p];
    PeerChannelStats& stats = diagnostics.peers[p];
    stats.frames_sent = peer.frames_sent;
    stats.frames_received = peer.frames_received;
    stats.retransmits = peer.retransmits;
    stats.duplicates_suppressed = peer.duplicates;
    stats.unacked_frames = peer.unacked.size();
    stats.seconds_since_heard =
        peer.heard ? std::chrono::duration<double>(now - peer.last_heard).count()
                   : -1.0;
  }
  return diagnostics;
}

std::size_t ReliableInterShardChannel::UnackedFrames(std::size_t peer) const {
  return peers_.at(peer).unacked.size();
}

std::uint64_t ReliableInterShardChannel::Retransmits() const noexcept {
  std::uint64_t total = 0;
  for (const PeerState& peer : peers_) {
    total += peer.retransmits;
  }
  return total;
}

std::uint64_t ReliableInterShardChannel::DuplicatesSuppressed() const noexcept {
  std::uint64_t total = 0;
  for (const PeerState& peer : peers_) {
    total += peer.duplicates;
  }
  return total;
}

}  // namespace dmfsgd::netsim
