#include "netsim/capacity_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dmfsgd::netsim {

CapacityTree::CapacityTree(const CapacityTreeConfig& config) {
  if (config.host_count < 2) {
    throw std::invalid_argument("CapacityTree: need at least 2 hosts");
  }
  if (config.branching_min < 2 || config.branching_max < config.branching_min) {
    throw std::invalid_argument("CapacityTree: invalid branching range");
  }
  if (config.depth == 0) {
    throw std::invalid_argument("CapacityTree: depth must be > 0");
  }
  if (config.tier_capacity_mbps.empty()) {
    throw std::invalid_argument("CapacityTree: tier_capacity_mbps must not be empty");
  }
  if (config.max_utilization < 0.0 || config.max_utilization >= 1.0) {
    throw std::invalid_argument("CapacityTree: max_utilization must be in [0, 1)");
  }

  common::Rng rng(config.seed);

  // Grow the tree breadth-first: internal nodes until `depth`, then attach
  // hosts round-robin to the deepest frontier until host_count is reached.
  parent_.push_back(0);  // root
  depth_.push_back(0);
  edge_.push_back(EdgeLoad{});  // unused sentinel for the root

  std::vector<std::size_t> frontier{0};
  for (std::size_t level = 1; level < config.depth; ++level) {
    std::vector<std::size_t> next;
    for (const std::size_t node : frontier) {
      const auto children = static_cast<std::size_t>(rng.UniformInt(
          static_cast<std::int64_t>(config.branching_min),
          static_cast<std::int64_t>(config.branching_max)));
      for (std::size_t c = 0; c < children; ++c) {
        const std::size_t id = parent_.size();
        parent_.push_back(node);
        depth_.push_back(level);
        edge_.push_back(EdgeLoad{});
        next.push_back(id);
      }
    }
    frontier = std::move(next);
  }

  // Attach hosts as leaves below the frontier (round-robin with a random
  // start so host ids do not align with subtrees deterministically).
  hosts_.reserve(config.host_count);
  std::size_t cursor = rng.UniformInt(static_cast<std::uint64_t>(frontier.size()));
  for (std::size_t h = 0; h < config.host_count; ++h) {
    const std::size_t attach = frontier[cursor % frontier.size()];
    ++cursor;
    const std::size_t id = parent_.size();
    parent_.push_back(attach);
    depth_.push_back(config.depth);
    edge_.push_back(EdgeLoad{});
    hosts_.push_back(id);
  }

  // Assign capacities and directional utilizations to every non-root edge.
  for (std::size_t node = 1; node < parent_.size(); ++node) {
    const std::size_t tier =
        std::min(depth_[node] - 1, config.tier_capacity_mbps.size() - 1);
    EdgeLoad& e = edge_[node];
    e.capacity_mbps = config.tier_capacity_mbps[tier] *
                      rng.LogNormal(0.0, config.capacity_jitter_sigma);
    // U^shape skews utilization toward 0 (lightly loaded links dominate).
    e.utilization_up =
        config.max_utilization * std::pow(rng.Uniform(), config.utilization_shape);
    e.utilization_down =
        config.max_utilization * std::pow(rng.Uniform(), config.utilization_shape);
  }
}

double CapacityTree::Residual(std::size_t tree_node, bool upward) const noexcept {
  const EdgeLoad& e = edge_[tree_node];
  const double utilization = upward ? e.utilization_up : e.utilization_down;
  return e.capacity_mbps * (1.0 - utilization);
}

double CapacityTree::Abw(std::size_t i, std::size_t j) const {
  if (i >= HostCount() || j >= HostCount()) {
    throw std::out_of_range("CapacityTree::Abw: host index out of range");
  }
  if (i == j) {
    throw std::invalid_argument("CapacityTree::Abw: i == j has no path");
  }
  // Walk both endpoints up to their lowest common ancestor; edges on the
  // source side are traversed upward, edges on the destination side downward.
  std::size_t a = hosts_[i];
  std::size_t b = hosts_[j];
  double bottleneck = std::numeric_limits<double>::infinity();
  while (a != b) {
    if (depth_[a] >= depth_[b]) {
      bottleneck = std::min(bottleneck, Residual(a, /*upward=*/true));
      a = parent_[a];
    } else {
      bottleneck = std::min(bottleneck, Residual(b, /*upward=*/false));
      b = parent_[b];
    }
  }
  return bottleneck;
}

std::size_t CapacityTree::PathLength(std::size_t i, std::size_t j) const {
  if (i >= HostCount() || j >= HostCount()) {
    throw std::out_of_range("CapacityTree::PathLength: host index out of range");
  }
  std::size_t a = hosts_[i];
  std::size_t b = hosts_[j];
  std::size_t edges = 0;
  while (a != b) {
    if (depth_[a] >= depth_[b]) {
      a = parent_[a];
    } else {
      b = parent_[b];
    }
    ++edges;
  }
  return edges;
}

linalg::Matrix CapacityTree::ToMatrix() const {
  const std::size_t n = HostCount();
  linalg::Matrix m(n, n, linalg::Matrix::kMissing);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        m(i, j) = Abw(i, j);
      }
    }
  }
  return m;
}

}  // namespace dmfsgd::netsim
