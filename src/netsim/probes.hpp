// Simulated measurement tools.
//
// Stand-ins for the real probing tools the paper relies on (DESIGN.md §3):
//
//  * PingProbe        — ICMP round-trip: cheap, sender-inferred, returns the
//                       RTT *quantity* with small multiplicative noise.
//  * PathloadClassProbe — the paper's cheap ABW *class* measurement: send a
//                       UDP train at constant rate τ and report only whether
//                       congestion was observed ("bad") or not ("good").
//                       Misclassification probability rises for paths whose
//                       true ABW is close to τ (the paper's Type-1 error
//                       mechanism) and the tool may under-estimate (Type-2).
//  * PathchirpProbe   — coarse ABW *quantity* estimate with an
//                       underestimation bias and lognormal noise; cheaper but
//                       less accurate than pathload, matching the HP-S3
//                       collection methodology.
//
// All probes consume entropy from a caller-provided Rng, so experiments stay
// reproducible and nodes can carry independent streams.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace dmfsgd::netsim {

/// Simulates ping: returns an observed RTT given the true current RTT.
class PingProbe {
 public:
  struct Options {
    double noise_sigma = 0.02;  ///< lognormal multiplicative jitter (~2%)
  };

  PingProbe() : PingProbe(Options()) {}
  explicit PingProbe(const Options& options) : options_(options) {}

  /// Observed RTT in ms; requires true_rtt_ms > 0.
  [[nodiscard]] double Measure(double true_rtt_ms, common::Rng& rng) const;

 private:
  Options options_;
};

/// Simulates a pathload-style constant-rate UDP train returning only the
/// binary congestion verdict.
class PathloadClassProbe {
 public:
  struct Options {
    /// Width of the ambiguous band around the probing rate, as a fraction of
    /// the rate: within [τ(1-w), τ(1+w)] the verdict degrades to a coin flip
    /// that sharpens away from τ (logistic response).
    double ambiguity_width = 0.1;
    /// Probability scale of spurious congestion detection (underestimation):
    /// with this probability a "good" path near the band is reported "bad".
    double underestimation_bias = 0.05;
  };

  PathloadClassProbe() : PathloadClassProbe(Options()) {}
  explicit PathloadClassProbe(const Options& options) : options_(options) {}

  /// +1 ("good": abw >= rate, no congestion) or -1 ("bad").
  /// Requires true_abw_mbps > 0 and rate_mbps > 0.
  [[nodiscard]] int Measure(double true_abw_mbps, double rate_mbps,
                            common::Rng& rng) const;

 private:
  Options options_;
};

/// Simulates a pathchirp-style coarse ABW estimator.
class PathchirpProbe {
 public:
  struct Options {
    double underestimation_factor = 0.9;  ///< multiplicative bias (< 1)
    double noise_sigma = 0.15;            ///< lognormal estimation noise
  };

  PathchirpProbe() : PathchirpProbe(Options()) {}
  explicit PathchirpProbe(const Options& options) : options_(options) {}

  /// Estimated ABW in Mbps; requires true_abw_mbps > 0.
  [[nodiscard]] double Measure(double true_abw_mbps, common::Rng& rng) const;

 private:
  Options options_;
};

}  // namespace dmfsgd::netsim
