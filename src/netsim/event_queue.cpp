#include "netsim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace dmfsgd::netsim {

void EventQueue::Schedule(double delay_s, Callback callback) {
  if (delay_s < 0.0) {
    throw std::invalid_argument("EventQueue::Schedule: negative delay");
  }
  if (!callback) {
    throw std::invalid_argument("EventQueue::Schedule: empty callback");
  }
  queue_.push(Entry{now_ + delay_s, next_sequence_++, std::move(callback)});
}

std::uint64_t EventQueue::RunUntil(double until_s) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().time <= until_s) {
    // Copy out before pop: the callback may schedule new events.
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.time;
    entry.callback();
    ++executed_;
    ++ran;
  }
  if (now_ < until_s) {
    now_ = until_s;
  }
  return ran;
}

bool EventQueue::RunOne() {
  if (queue_.empty()) {
    return false;
  }
  Entry entry = queue_.top();
  queue_.pop();
  now_ = entry.time;
  entry.callback();
  ++executed_;
  return true;
}

}  // namespace dmfsgd::netsim
