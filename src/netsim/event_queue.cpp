#include "netsim/event_queue.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"

namespace dmfsgd::netsim {

void EventQueue::Schedule(double delay_s, Callback callback) {
  if (delay_s < 0.0) {
    throw std::invalid_argument("EventQueue::Schedule: negative delay");
  }
  if (!callback) {
    throw std::invalid_argument("EventQueue::Schedule: empty callback");
  }
  queue_.push(Entry{now_ + delay_s, next_sequence_++, std::move(callback)});
}

std::uint64_t EventQueue::RunUntil(double until_s) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().time <= until_s) {
    // Copy out before pop: the callback may schedule new events.
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.time;
    entry.callback();
    ++executed_;
    ++ran;
  }
  if (now_ < until_s) {
    now_ = until_s;
  }
  return ran;
}

bool EventQueue::RunOne() {
  if (queue_.empty()) {
    return false;
  }
  Entry entry = queue_.top();
  queue_.pop();
  now_ = entry.time;
  entry.callback();
  ++executed_;
  return true;
}

// ------------------------------------------------------------------------
// ShardedEventQueue

namespace {

/// The shard context of the callback currently executing on this thread
/// during a parallel window.  `queue` doubles as the active flag; it is set
/// per shard iteration and cleared when the thread's block ends, so a stale
/// value can never alias a later drain.
struct ParallelDrainTls {
  const void* queue = nullptr;
  std::size_t shard = 0;
  double local_now = 0.0;
};
thread_local ParallelDrainTls tls_drain;

}  // namespace

ShardedEventQueue::ShardedEventQueue(std::size_t owner_count,
                                     std::size_t shard_count)
    : owner_count_(owner_count) {
  if (owner_count == 0) {
    throw std::invalid_argument("ShardedEventQueue: owner_count must be > 0");
  }
  shard_count = std::clamp<std::size_t>(shard_count, 1, owner_count);
  shards_ = std::vector<Shard>(shard_count);
}

std::size_t ShardedEventQueue::ShardOf(OwnerId owner) const {
  if (owner >= owner_count_) {
    throw std::out_of_range("ShardedEventQueue::ShardOf: owner out of range");
  }
  // Contiguous blocks, the first (owner_count % shards) one owner larger —
  // the same split rule as ThreadPool::Block, so neighboring owners land in
  // the same shard.
  const std::size_t parts = shards_.size();
  const std::size_t base = owner_count_ / parts;
  const std::size_t extra = owner_count_ % parts;
  const std::size_t boundary = extra * (base + 1);
  if (owner < boundary) {
    return owner / (base + 1);
  }
  return extra + (owner - boundary) / base;
}

std::size_t ShardedEventQueue::Pending() const noexcept {
  std::size_t pending = 0;
  for (const Shard& shard : shards_) {
    pending += shard.heap.size();
  }
  return pending;
}

std::size_t ShardedEventQueue::PendingInShard(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("ShardedEventQueue::PendingInShard: bad shard");
  }
  return shards_[shard].heap.size();
}

void ShardedEventQueue::Schedule(OwnerId owner, double delay_s,
                                 Callback callback) {
  if (delay_s < 0.0) {
    throw std::invalid_argument("ShardedEventQueue::Schedule: negative delay");
  }
  if (!callback) {
    throw std::invalid_argument("ShardedEventQueue::Schedule: empty callback");
  }
  const std::size_t dest = ShardOf(owner);
  if (in_window_ && tls_drain.queue == this) {
    // Scheduled from a callback inside a parallel window: stamp with the
    // executing shard's lane and time, touching only that shard's state.
    Shard& source = shards_[tls_drain.shard];
    Entry entry{tls_drain.local_now + delay_s,
                static_cast<std::uint32_t>(tls_drain.shard),
                source.next_sequence++, std::move(callback)};
    if (dest == tls_drain.shard) {
      source.heap.push(std::move(entry));
      return;
    }
    if (entry.time < window_end_) {
      throw std::logic_error(
          "ShardedEventQueue: cross-shard schedule lands inside the lookahead "
          "window — the configured lookahead is not a true minimum cross-owner "
          "delay");
    }
    source.outbox.emplace_back(dest, std::move(entry));
    return;
  }
  // Driver-side (sequential) schedule: one shared lane with one monotonic
  // counter, so sequential drains tie-break globally FIFO like EventQueue.
  shards_[dest].heap.push(Entry{now_ + delay_s,
                                static_cast<std::uint32_t>(shards_.size()),
                                driver_sequence_++, std::move(callback)});
}

std::size_t ShardedEventQueue::MinShard() const {
  const Later later;
  std::size_t best = shards_.size();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].heap.empty()) {
      continue;
    }
    // a earlier than b  <=>  Later()(b, a).
    if (best == shards_.size() ||
        later(shards_[best].heap.top(), shards_[s].heap.top())) {
      best = s;
    }
  }
  return best;
}

std::uint64_t ShardedEventQueue::RunUntil(double until_s) {
  std::uint64_t ran = 0;
  for (;;) {
    const std::size_t s = MinShard();
    if (s == shards_.size() || shards_[s].heap.top().time > until_s) {
      break;
    }
    Entry entry = shards_[s].heap.top();
    shards_[s].heap.pop();
    now_ = entry.time;
    entry.callback();
    ++executed_;
    ++ran;
  }
  if (now_ < until_s) {
    now_ = until_s;
  }
  return ran;
}

bool ShardedEventQueue::RunOne() {
  const std::size_t s = MinShard();
  if (s == shards_.size()) {
    return false;
  }
  Entry entry = shards_[s].heap.top();
  shards_[s].heap.pop();
  now_ = entry.time;
  entry.callback();
  ++executed_;
  return true;
}

std::uint64_t ShardedEventQueue::RunUntilParallel(double until_s,
                                                  common::ThreadPool& pool,
                                                  double lookahead_s) {
  if (until_s < now_) {
    throw std::invalid_argument(
        "ShardedEventQueue::RunUntilParallel: time in the past");
  }
  if (!(lookahead_s > 0.0)) {
    throw std::invalid_argument(
        "ShardedEventQueue::RunUntilParallel: lookahead must be > 0");
  }
  std::uint64_t ran_total = 0;
  for (;;) {
    double t_min = std::numeric_limits<double>::infinity();
    for (const Shard& shard : shards_) {
      if (!shard.heap.empty()) {
        t_min = std::min(t_min, shard.heap.top().time);
      }
    }
    if (!(t_min <= until_s)) {
      break;  // drained, or everything pending lies beyond the horizon
    }
    window_end_ = t_min + lookahead_s;
    in_window_ = true;
    try {
      pool.ParallelFor(0, shards_.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          Shard& shard = shards_[s];
          tls_drain.queue = this;
          tls_drain.shard = s;
          while (!shard.heap.empty() && shard.heap.top().time < window_end_ &&
                 shard.heap.top().time <= until_s) {
            Entry entry = shard.heap.top();
            shard.heap.pop();
            tls_drain.local_now = entry.time;
            entry.callback();
            ++shard.executed;
          }
        }
        tls_drain.queue = nullptr;
      });
    } catch (...) {
      // A throwing callback (or a lookahead violation) leaves pending events
      // in an unspecified but self-consistent state; the window flag must not
      // leak into later sequential scheduling.
      in_window_ = false;
      ran_total += MergeWindow();
      throw;
    }
    in_window_ = false;
    ran_total += MergeWindow();
    now_ = std::min(window_end_, until_s);
  }
  now_ = until_s;
  return ran_total;
}

std::uint64_t ShardedEventQueue::MergeWindow() {
  std::uint64_t ran = 0;
  for (Shard& shard : shards_) {
    for (auto& [dest, entry] : shard.outbox) {
      shards_[dest].heap.push(std::move(entry));
    }
    shard.outbox.clear();
    ran += shard.executed;
    executed_ += shard.executed;
    shard.executed = 0;
  }
  return ran;
}

}  // namespace dmfsgd::netsim
