#include "netsim/event_queue.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/thread_pool.hpp"

namespace dmfsgd::netsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void EventQueue::Schedule(double delay_s, Callback callback) {
  if (delay_s < 0.0) {
    throw std::invalid_argument("EventQueue::Schedule: negative delay");
  }
  if (!callback) {
    throw std::invalid_argument("EventQueue::Schedule: empty callback");
  }
  queue_.push(Entry{now_ + delay_s, next_sequence_++, std::move(callback)});
}

std::uint64_t EventQueue::RunUntil(double until_s) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().time <= until_s) {
    // Copy out before pop: the callback may schedule new events.
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.time;
    entry.callback();
    ++executed_;
    ++ran;
  }
  if (now_ < until_s) {
    now_ = until_s;
  }
  return ran;
}

bool EventQueue::RunOne() {
  if (queue_.empty()) {
    return false;
  }
  Entry entry = queue_.top();
  queue_.pop();
  now_ = entry.time;
  entry.callback();
  ++executed_;
  return true;
}

// ------------------------------------------------------------------------
// LookaheadMatrix

LookaheadMatrix::LookaheadMatrix(std::size_t shard_count, double uniform_s)
    : shard_count_(shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("LookaheadMatrix: shard_count must be > 0");
  }
  if (!(uniform_s > 0.0)) {
    throw std::invalid_argument("LookaheadMatrix: lookahead must be > 0");
  }
  cells_.assign(shard_count * shard_count, uniform_s);
}

void LookaheadMatrix::Set(std::size_t from, std::size_t to, double lookahead_s) {
  if (!(lookahead_s > 0.0)) {
    throw std::invalid_argument("LookaheadMatrix::Set: lookahead must be > 0");
  }
  RequireCell(from, to);
  cells_[from * shard_count_ + to] = lookahead_s;
}

// ------------------------------------------------------------------------
// ShardedEventQueue

namespace {

/// The shard context of the callback currently executing on this thread
/// during a parallel window.  `queue` doubles as the active flag; it is set
/// per shard iteration and cleared when the thread's block ends, so a stale
/// value can never alias a later drain.
struct ParallelDrainTls {
  const void* queue = nullptr;
  std::size_t shard = 0;
  double local_now = 0.0;
};
thread_local ParallelDrainTls tls_drain;

}  // namespace

ShardedEventQueue::ShardedEventQueue(std::size_t owner_count,
                                     std::size_t shard_count)
    : owner_count_(owner_count) {
  if (owner_count == 0) {
    throw std::invalid_argument("ShardedEventQueue: owner_count must be > 0");
  }
  shard_count = std::clamp<std::size_t>(shard_count, 1, owner_count);
  shards_ = std::vector<Shard>(shard_count);
  owned_end_ = shard_count;
}

std::size_t ShardedEventQueue::ShardOf(OwnerId owner) const {
  if (owner >= owner_count_) {
    throw std::out_of_range("ShardedEventQueue::ShardOf: owner out of range");
  }
  // Closed-form inverse of BlockRange (neighboring owners share a shard);
  // the OwnersOfShardInvertsShardOf test pins the agreement.
  const std::size_t parts = shards_.size();
  const std::size_t base = owner_count_ / parts;
  const std::size_t extra = owner_count_ % parts;
  const std::size_t boundary = extra * (base + 1);
  if (owner < boundary) {
    return owner / (base + 1);
  }
  return extra + (owner - boundary) / base;
}

std::pair<ShardedEventQueue::OwnerId, ShardedEventQueue::OwnerId>
ShardedEventQueue::OwnersOfShard(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("ShardedEventQueue::OwnersOfShard: bad shard");
  }
  const auto [first, last] = BlockRange(owner_count_, shards_.size(), shard);
  return {static_cast<OwnerId>(first), static_cast<OwnerId>(last)};
}

void ShardedEventQueue::SetOwnedShardRange(std::size_t begin, std::size_t end) {
  if (in_window_) {
    throw std::logic_error(
        "ShardedEventQueue::SetOwnedShardRange: window in progress");
  }
  if (begin >= end || end > shards_.size()) {
    throw std::invalid_argument(
        "ShardedEventQueue::SetOwnedShardRange: bad range");
  }
  owned_begin_ = begin;
  owned_end_ = end;
}

std::size_t ShardedEventQueue::Pending() const noexcept {
  std::size_t pending = 0;
  for (const Shard& shard : shards_) {
    pending += shard.heap.size();
  }
  return pending;
}

std::size_t ShardedEventQueue::PendingInShard(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("ShardedEventQueue::PendingInShard: bad shard");
  }
  return shards_[shard].heap.size();
}

void ShardedEventQueue::Schedule(OwnerId owner, double delay_s,
                                 Callback callback) {
  if (delay_s < 0.0) {
    throw std::invalid_argument("ShardedEventQueue::Schedule: negative delay");
  }
  if (!callback) {
    throw std::invalid_argument("ShardedEventQueue::Schedule: empty callback");
  }
  const std::size_t dest = ShardOf(owner);
  if (in_window_ && tls_drain.queue == this) {
    // Scheduled from a callback inside a parallel window: stamp with the
    // executing shard's lane and time, touching only that shard's state.
    Shard& source = shards_[tls_drain.shard];
    Entry entry{tls_drain.local_now + delay_s,
                static_cast<std::uint32_t>(tls_drain.shard),
                source.next_sequence++, std::move(callback)};
    if (dest == tls_drain.shard) {
      source.heap.push(std::move(entry));
      return;
    }
    if (!IsOwnedShard(dest)) {
      throw std::logic_error(
          "ShardedEventQueue::Schedule: in-window schedule onto a remote "
          "shard — a callback cannot cross the process boundary; route the "
          "event through ScheduleRemote");
    }
    if (entry.time < window_ends_[dest]) {
      throw std::logic_error(
          "ShardedEventQueue: cross-shard schedule lands inside the "
          "destination's lookahead window — the configured lookahead is not "
          "a true minimum cross-owner delay");
    }
    source.outbox.emplace_back(dest, std::move(entry));
    return;
  }
  // Driver-side (sequential) schedule: one shared lane with one monotonic
  // counter, so sequential drains tie-break globally FIFO like EventQueue.
  shards_[dest].heap.push(Entry{now_ + delay_s,
                                static_cast<std::uint32_t>(shards_.size()),
                                driver_sequence_++, std::move(callback)});
}

void ShardedEventQueue::ScheduleRemote(OwnerId owner, double delay_s,
                                       std::vector<std::byte> payload) {
  if (delay_s < 0.0) {
    throw std::invalid_argument(
        "ShardedEventQueue::ScheduleRemote: negative delay");
  }
  if (payload.empty()) {
    throw std::invalid_argument(
        "ShardedEventQueue::ScheduleRemote: empty payload");
  }
  if (!in_window_ || tls_drain.queue != this) {
    throw std::logic_error(
        "ShardedEventQueue::ScheduleRemote: only valid from a callback "
        "inside a parallel window");
  }
  const std::size_t dest = ShardOf(owner);
  if (IsOwnedShard(dest)) {
    throw std::logic_error(
        "ShardedEventQueue::ScheduleRemote: destination shard is owned "
        "locally — use Schedule");
  }
  Shard& source = shards_[tls_drain.shard];
  RemoteEvent event{owner, tls_drain.local_now + delay_s,
                    static_cast<std::uint32_t>(tls_drain.shard),
                    source.next_sequence++, std::move(payload)};
  if (event.time < window_ends_[dest]) {
    throw std::logic_error(
        "ShardedEventQueue: cross-process schedule lands inside the "
        "destination's lookahead window — the configured lookahead is not a "
        "true minimum cross-owner delay");
  }
  source.remote_outbox.push_back(std::move(event));
}

void ShardedEventQueue::RequireFullOwnership(const char* what) const {
  if (owned_begin_ != 0 || owned_end_ != shards_.size()) {
    throw std::logic_error(
        std::string("ShardedEventQueue::") + what +
        ": partial shard ownership — a multi-process drain must run "
        "windowed under a ShardRuntime");
  }
}

std::size_t ShardedEventQueue::MinShard() const {
  const Later later;
  std::size_t best = shards_.size();
  for (std::size_t s = owned_begin_; s < owned_end_; ++s) {
    if (shards_[s].heap.empty()) {
      continue;
    }
    // a earlier than b  <=>  Later()(b, a).
    if (best == shards_.size() ||
        later(shards_[best].heap.top(), shards_[s].heap.top())) {
      best = s;
    }
  }
  return best;
}

std::uint64_t ShardedEventQueue::RunUntil(double until_s) {
  RequireFullOwnership("RunUntil");
  std::uint64_t ran = 0;
  for (;;) {
    const std::size_t s = MinShard();
    if (s == shards_.size() || shards_[s].heap.top().time > until_s) {
      break;
    }
    Entry entry = shards_[s].heap.top();
    shards_[s].heap.pop();
    now_ = entry.time;
    entry.callback();
    ++executed_;
    ++ran;
  }
  if (now_ < until_s) {
    now_ = until_s;
  }
  return ran;
}

bool ShardedEventQueue::RunOne() {
  RequireFullOwnership("RunOne");
  const std::size_t s = MinShard();
  if (s == shards_.size()) {
    return false;
  }
  Entry entry = shards_[s].heap.top();
  shards_[s].heap.pop();
  now_ = entry.time;
  entry.callback();
  ++executed_;
  return true;
}

std::vector<double> ShardedEventQueue::ShardMinTimes() const {
  std::vector<double> mins(shards_.size(), kInf);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s].heap.empty()) {
      mins[s] = shards_[s].heap.top().time;
    }
  }
  return mins;
}

std::vector<double> ShardedEventQueue::ConservativeWindowEnds(
    std::span<const double> mins, const LookaheadMatrix& lookaheads) {
  if (mins.size() != lookaheads.ShardCount()) {
    throw std::invalid_argument(
        "ShardedEventQueue::ConservativeWindowEnds: size mismatch");
  }
  std::vector<double> ends(mins.size(), kInf);
  for (std::size_t to = 0; to < mins.size(); ++to) {
    for (std::size_t from = 0; from < mins.size(); ++from) {
      if (from == to || mins[from] == kInf) {
        continue;
      }
      ends[to] = std::min(ends[to], mins[from] + lookaheads.At(from, to));
    }
  }
  return ends;
}

void ShardedEventQueue::BeginWindow(std::vector<double> shard_ends) {
  if (in_window_) {
    throw std::logic_error("ShardedEventQueue::BeginWindow: window already open");
  }
  if (shard_ends.size() != shards_.size()) {
    throw std::invalid_argument(
        "ShardedEventQueue::BeginWindow: one horizon per shard required");
  }
  window_ends_ = std::move(shard_ends);
  in_window_ = true;
  ++windows_;
}

void ShardedEventQueue::DrainOwnedShards(common::ThreadPool& pool,
                                         double until_s) {
  if (!in_window_) {
    throw std::logic_error("ShardedEventQueue::DrainOwnedShards: no open window");
  }
  try {
    pool.ParallelFor(owned_begin_, owned_end_,
                     [&](std::size_t lo, std::size_t hi) {
      for (std::size_t s = lo; s < hi; ++s) {
        Shard& shard = shards_[s];
        tls_drain.queue = this;
        tls_drain.shard = s;
        const double end = window_ends_[s];
        while (!shard.heap.empty() && shard.heap.top().time < end &&
               shard.heap.top().time <= until_s) {
          Entry entry = shard.heap.top();
          shard.heap.pop();
          tls_drain.local_now = entry.time;
          entry.callback();
          ++shard.executed;
        }
      }
      tls_drain.queue = nullptr;
    });
  } catch (...) {
    // A throwing callback (or a lookahead violation) leaves pending events
    // in an unspecified but self-consistent state; the window flag must not
    // leak into later sequential scheduling.
    in_window_ = false;
    MergeWindow();
    throw;
  }
}

std::uint64_t ShardedEventQueue::FinishWindow() {
  if (!in_window_) {
    throw std::logic_error("ShardedEventQueue::FinishWindow: no open window");
  }
  in_window_ = false;
  return MergeWindow();
}

std::vector<ShardedEventQueue::RemoteEvent>
ShardedEventQueue::TakeRemoteEvents() {
  if (in_window_) {
    throw std::logic_error(
        "ShardedEventQueue::TakeRemoteEvents: window in progress");
  }
  std::vector<RemoteEvent> events;
  for (Shard& shard : shards_) {
    for (RemoteEvent& event : shard.remote_outbox) {
      events.push_back(std::move(event));
    }
    shard.remote_outbox.clear();
  }
  return events;
}

void ShardedEventQueue::InjectRemote(OwnerId owner, double time,
                                     std::uint32_t lane, std::uint64_t seq,
                                     Callback callback) {
  if (in_window_) {
    throw std::logic_error("ShardedEventQueue::InjectRemote: window in progress");
  }
  if (!callback) {
    throw std::invalid_argument("ShardedEventQueue::InjectRemote: empty callback");
  }
  if (lane >= shards_.size()) {
    throw std::invalid_argument(
        "ShardedEventQueue::InjectRemote: lane is not a shard");
  }
  const std::size_t dest = ShardOf(owner);
  if (!IsOwnedShard(dest)) {
    throw std::invalid_argument(
        "ShardedEventQueue::InjectRemote: destination shard is not owned");
  }
  shards_[dest].heap.push(Entry{time, lane, seq, std::move(callback)});
}

std::uint64_t ShardedEventQueue::RunUntilParallel(double until_s,
                                                  common::ThreadPool& pool,
                                                  double lookahead_s) {
  if (!(lookahead_s > 0.0)) {
    throw std::invalid_argument(
        "ShardedEventQueue::RunUntilParallel: lookahead must be > 0");
  }
  return RunWindowedDrain(until_s, pool,
                          LookaheadMatrix(shards_.size(), lookahead_s));
}

std::uint64_t ShardedEventQueue::RunUntilParallel(
    double until_s, common::ThreadPool& pool, const LookaheadMatrix& lookaheads) {
  if (lookaheads.ShardCount() != shards_.size()) {
    throw std::invalid_argument(
        "ShardedEventQueue::RunUntilParallel: lookahead matrix shard count "
        "mismatch");
  }
  return RunWindowedDrain(until_s, pool, lookaheads);
}

std::uint64_t ShardedEventQueue::RunWindowedDrain(
    double until_s, common::ThreadPool& pool, const LookaheadMatrix& lookaheads) {
  if (until_s < now_) {
    throw std::invalid_argument(
        "ShardedEventQueue::RunUntilParallel: time in the past");
  }
  RequireFullOwnership("RunUntilParallel");
  std::uint64_t ran_total = 0;
  for (;;) {
    const std::vector<double> mins = ShardMinTimes();
    const double t_min = *std::min_element(mins.begin(), mins.end());
    if (!(t_min <= until_s)) {
      break;  // drained, or everything pending lies beyond the horizon
    }
    BeginWindow(ConservativeWindowEnds(mins, lookaheads));
    DrainOwnedShards(pool, until_s);
    ran_total += FinishWindow();
    // Every event left pending has time >= its shard's horizon (earlier ones
    // ran; merged arrivals satisfy the lookahead bound), so the global
    // frontier may advance to the least horizon.
    AdvanceNow(std::min(
        until_s, *std::min_element(window_ends_.begin(), window_ends_.end())));
  }
  now_ = until_s;
  return ran_total;
}

std::uint64_t ShardedEventQueue::MergeWindow() {
  std::uint64_t ran = 0;
  for (Shard& shard : shards_) {
    for (auto& [dest, entry] : shard.outbox) {
      shards_[dest].heap.push(std::move(entry));
    }
    shard.outbox.clear();
    ran += shard.executed;
    executed_ += shard.executed;
    shard.executed = 0;
  }
  return ran;
}

}  // namespace dmfsgd::netsim
