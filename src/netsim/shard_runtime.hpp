// Multi-process windowed drain of a ShardedEventQueue (DESIGN.md §12).
//
// Each participating process owns a contiguous shard range of one replicated
// ShardedEventQueue (every process performs the same deterministic
// construction, then drains only its own shards).  ShardRuntime runs the
// conservative-window loop in lock step across processes:
//
//   1. propose  — every process broadcasts the earliest pending event time
//                 of each shard it owns; everyone assembles the same global
//                 min vector, so everyone computes the same window horizons
//                 (ShardedEventQueue::ConservativeWindowEnds, per-shard-pair
//                 lookaheads) and the same termination decision.
//   2. drain    — every process drains its owned shards for the window.
//                 Cross-shard events bound for a peer's shard were stamped
//                 by ScheduleRemote with the source lane's sequence.
//   3. barrier  — every process sends every peer exactly one event batch
//                 (chunked if large, possibly empty): receiving all peers'
//                 batches both delivers the remote events and *is* the
//                 window barrier.  Stamps make injection order irrelevant.
//
// Because shard-local event sequences, lane sequence numbers and per-owner
// handler state are all pure functions of the same construction and the
// same delivered events, a distributed drain is bit-identical to the
// single-process windowed drain of the same queue — window for window,
// event for event.  With ProcessCount() == 1 the runtime degenerates to the
// in-process drain and never touches the channel.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "netsim/event_queue.hpp"
#include "netsim/inter_shard_channel.hpp"

namespace dmfsgd::common {
class ThreadPool;
}

namespace dmfsgd::netsim {

/// Validated at ShardRuntime construction: receive_poll_ms and
/// stall_timeout_s must be positive (std::invalid_argument otherwise).
struct ShardRuntimeOptions {
  int receive_poll_ms = 50;  ///< per-Receive wait while gathering
  /// Give up (throw StallError) after this long with neither a frame nor
  /// liveness progress from the channel.  When the channel is a
  /// ReliableInterShardChannel, set this comfortably above its max_rto_ms:
  /// retransmission keeps a live-but-lossy peer's acks advancing (which
  /// re-arms this timeout via LivenessEpoch), so the stall timer fires only
  /// for a peer that is genuinely gone — not one mid-backoff.
  double stall_timeout_s = 60.0;
  /// Byte budget per event-batch frame.  The default fills whole datagrams;
  /// a multi-host deployment tunes this toward the path MTU (~1400) to
  /// avoid IP fragmentation, which is when envelope coalescing visibly
  /// shrinks the frame count.  Clamped to [256, channel.MaxFrameBytes()] —
  /// the channel's budget, not the constant, since a reliability decorator
  /// reserves header room out of every frame.
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

/// A peer went silent past the stall timeout.  Unlike the bare
/// runtime_error it replaces, the error carries enough to diagnose *which*
/// peer died and *what* the transport saw: the window and gather phase the
/// runtime was blocked in, per-peer protocol-frame counts, and the
/// channel's transport-level diagnostics (retransmit backlogs, last-heard
/// ages, dropped/stray datagram counts).  what() renders all of it.
class StallError : public std::runtime_error {
 public:
  StallError(std::uint64_t window_id, std::string phase,
             std::vector<std::uint64_t> frames_received_from,
             ChannelDiagnostics diagnostics);

  /// Window the runtime was gathering when the timeout fired.
  [[nodiscard]] std::uint64_t WindowId() const noexcept { return window_id_; }
  /// Which gather blocked: "propose", "event-batch", or a higher layer's
  /// phase name (the coordinator's result fold reuses this error).
  [[nodiscard]] const std::string& Phase() const noexcept { return phase_; }
  /// Protocol frames the blocked receive loop accepted from each process
  /// since construction; a dead peer's entry stops advancing.
  [[nodiscard]] const std::vector<std::uint64_t>& FramesReceivedFrom()
      const noexcept {
    return frames_received_from_;
  }
  /// Transport snapshot taken when the stall fired.
  [[nodiscard]] const ChannelDiagnostics& Diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  std::uint64_t window_id_;
  std::string phase_;
  std::vector<std::uint64_t> frames_received_from_;
  ChannelDiagnostics diagnostics_;
};

class ShardRuntime {
 public:
  /// Re-materializes the callback of a remote event from its payload; the
  /// scheduling layer that called ScheduleRemote provides the inverse (the
  /// async driver decodes a protocol-message envelope and hands it to the
  /// engine's sink).
  using RemoteEventDecoder = std::function<ShardedEventQueue::Callback(
      ShardedEventQueue::OwnerId owner, std::vector<std::byte> payload)>;

  using Options = ShardRuntimeOptions;

  /// Merges several same-destination, same-time remote-event payloads into
  /// one batch payload, or declines (nullopt) when the group is not safely
  /// mergeable — the scheduling layer knows which payload kinds have
  /// emission-free handlers (DESIGN.md §13: reply envelopes; the inverse
  /// lives in ShardedEventQueueDeliveryChannel::MergeEnvelopes /
  /// DecodeEnvelopeCallback).  The runtime itself stays payload-agnostic:
  /// declined groups ship as the original individual events.
  using RemoteEventMerger = std::function<std::optional<std::vector<std::byte>>(
      std::span<const std::vector<std::byte>> payloads)>;

  /// Assigns shard ownership: process p of channel.ProcessCount() owns
  /// BlockRange(queue.ShardCount(), ProcessCount(), p) and the queue's owned
  /// range is set accordingly.  Requires queue.ShardCount() >=
  /// channel.ProcessCount(), lookaheads sized to the queue and a non-empty
  /// decoder.  `queue` and `channel` must outlive the runtime.
  ShardRuntime(ShardedEventQueue& queue, InterShardChannel& channel,
               LookaheadMatrix lookaheads, RemoteEventDecoder decoder,
               Options options = Options());

  /// Runs the lock-step window loop until every shard's pending events lie
  /// beyond `until_s`, then advances queue time to until_s.  Returns the
  /// events executed locally.  Throws StallError if a peer stalls past
  /// Options::stall_timeout_s with no liveness progress, and
  /// std::logic_error on protocol desynchronization (a peer at a different
  /// window) or lookahead violations.
  std::uint64_t RunUntil(double until_s, common::ThreadPool& pool);

  /// Windows executed by the last RunUntil calls (mirrors the queue's
  /// counter; every process counts the same windows).
  [[nodiscard]] std::uint64_t WindowsExecuted() const noexcept {
    return queue_->WindowsExecuted();
  }

  /// Installs the per-window coalescing of cross-process events: before the
  /// barrier ships a window's remote events, runs with identical
  /// (owner, time) — concurrently produced messages bound for one node,
  /// e.g. a probe burst's replies — are folded into a single stamped
  /// envelope carrying the merger's combined payload.  The surviving stamp
  /// is the group's least (lane, seq) key, so the batch executes exactly
  /// where its first message would have (DESIGN.md §13); fewer events cross
  /// the channel, and under an MTU-sized max_frame_bytes, fewer frames.
  /// Every process must install the same merger (or none) — a mixed fleet
  /// would disagree on event counts.  Pass nullptr to uninstall.
  void SetRemoteEventMerger(RemoteEventMerger merger) {
    merger_ = std::move(merger);
  }

  /// Frames this runtime shipped through the channel (proposals + event
  /// chunks) — what envelope coalescing and max_frame_bytes trade against.
  [[nodiscard]] std::uint64_t FramesSent() const noexcept {
    return frames_sent_;
  }

  /// Frames received during the window loop that belong to a higher layer
  /// (e.g. the coordinator's result fold racing ahead of a slow peer's last
  /// barrier).  The caller that keeps using the channel after RunUntil must
  /// consume these first.
  [[nodiscard]] std::vector<InterShardFrame> TakeLeftoverFrames();

 private:
  struct WindowExchange;  // per-window gather state (defined in the .cpp)

  void BroadcastProposal(std::uint64_t window_id,
                         const std::vector<double>& local_mins);
  /// The coalescing pass of SetRemoteEventMerger (identity without one).
  [[nodiscard]] std::vector<ShardedEventQueue::RemoteEvent> CoalesceRemoteEvents(
      std::vector<ShardedEventQueue::RemoteEvent> events) const;
  void SendEventBatches(std::uint64_t window_id,
                        std::vector<ShardedEventQueue::RemoteEvent> events);
  /// Channel send + frame accounting.
  void SendFrame(std::size_t to_process, std::span<const std::byte> frame);
  /// Blocks until every peer's frames of the given kind for `window_id`
  /// arrived, dispatching and buffering out-of-order frames.
  void GatherProposals(std::uint64_t window_id, WindowExchange& exchange);
  void GatherEventBatches(std::uint64_t window_id, WindowExchange& exchange);

  /// Receives one frame, throwing StallError after stall_timeout_s with no
  /// frame and no channel liveness progress (LivenessEpoch re-arms the
  /// deadline, so a peer that is slow but draining retransmissions is not
  /// declared dead).
  [[nodiscard]] InterShardFrame ReceiveOrThrow(std::uint64_t window_id,
                                               const char* phase);
  void HandleFrame(std::uint64_t window_id, const InterShardFrame& frame,
                   WindowExchange& exchange);

  ShardedEventQueue* queue_;
  InterShardChannel* channel_;
  LookaheadMatrix lookaheads_;
  RemoteEventDecoder decoder_;
  RemoteEventMerger merger_;
  Options options_;
  std::uint64_t frames_sent_ = 0;
  std::vector<std::size_t> process_of_shard_;  ///< shard → owning process
  std::uint64_t window_id_ = 0;
  std::vector<InterShardFrame> pending_;   ///< buffered out-of-order frames
  std::vector<InterShardFrame> leftover_;  ///< frames for higher layers
  std::vector<std::uint64_t> frames_received_from_;  ///< per-process count
};

}  // namespace dmfsgd::netsim
