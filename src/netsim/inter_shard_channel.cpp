#include "netsim/inter_shard_channel.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <utility>

namespace dmfsgd::netsim {

void InterShardChannel::RequireSendable(std::size_t to_process,
                                        std::span<const std::byte> frame) const {
  if (to_process >= ProcessCount()) {
    throw std::invalid_argument("InterShardChannel::Send: bad process index");
  }
  if (to_process == ProcessIndex()) {
    throw std::invalid_argument("InterShardChannel::Send: self-send");
  }
  if (frame.empty()) {
    throw std::invalid_argument("InterShardChannel::Send: empty frame");
  }
  if (frame.size() > MaxFrameBytes()) {
    throw std::invalid_argument(
        "InterShardChannel::Send: frame exceeds MaxFrameBytes() — chunk it");
  }
}

// ------------------------------------------------------------------------
// Loopback backend

LoopbackInterShardHub::LoopbackInterShardHub(std::size_t process_count) {
  if (process_count == 0) {
    throw std::invalid_argument("LoopbackInterShardHub: process_count must be > 0");
  }
  mailboxes_.reserve(process_count);
  for (std::size_t p = 0; p < process_count; ++p) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void LoopbackInterShardHub::Post(std::size_t from, std::size_t to,
                                 std::span<const std::byte> frame) {
  Mailbox& mailbox = *mailboxes_.at(to);
  {
    const std::lock_guard<std::mutex> lock(mailbox.mutex);
    mailbox.frames.push_back(
        InterShardFrame{from, std::vector<std::byte>(frame.begin(), frame.end())});
  }
  mailbox.ready.notify_one();
}

std::optional<InterShardFrame> LoopbackInterShardHub::Take(std::size_t process,
                                                           int timeout_ms) {
  Mailbox& mailbox = *mailboxes_.at(process);
  std::unique_lock<std::mutex> lock(mailbox.mutex);
  if (!mailbox.ready.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                              [&] { return !mailbox.frames.empty(); })) {
    return std::nullopt;
  }
  InterShardFrame frame = std::move(mailbox.frames.front());
  mailbox.frames.pop_front();
  return frame;
}

LoopbackInterShardChannel::LoopbackInterShardChannel(LoopbackInterShardHub& hub,
                                                     std::size_t index)
    : hub_(&hub), index_(index) {
  if (index >= hub.ProcessCount()) {
    throw std::invalid_argument("LoopbackInterShardChannel: bad process index");
  }
}

void LoopbackInterShardChannel::Send(std::size_t to_process,
                                     std::span<const std::byte> frame) {
  RequireSendable(to_process, frame);
  hub_->Post(index_, to_process, frame);
}

std::optional<InterShardFrame> LoopbackInterShardChannel::Receive(
    int timeout_ms) {
  return hub_->Take(index_, timeout_ms);
}

// ------------------------------------------------------------------------
// UDP backend

UdpInterShardChannel::UdpInterShardChannel(transport::UdpSocket socket,
                                           std::size_t process_index,
                                           std::vector<std::uint16_t> ports)
    : socket_(std::move(socket)), index_(process_index), ports_(std::move(ports)) {
  if (ports_.empty() || index_ >= ports_.size()) {
    throw std::invalid_argument("UdpInterShardChannel: bad process index");
  }
  if (socket_.Port() != ports_[index_]) {
    throw std::invalid_argument(
        "UdpInterShardChannel: socket is not bound to this process's port");
  }
  // Window barriers arrive in bursts (every peer's chunks at once); a
  // roomy receive buffer makes loopback drops from overflow unlikely.
  (void)socket_.SetReceiveBufferBytes(4 * 1024 * 1024);
}

void UdpInterShardChannel::Send(std::size_t to_process,
                                std::span<const std::byte> frame) {
  RequireSendable(to_process, frame);
  std::vector<std::byte> datagram(sizeof(std::uint32_t) + frame.size());
  const auto from = static_cast<std::uint32_t>(index_);
  std::memcpy(datagram.data(), &from, sizeof(from));
  std::memcpy(datagram.data() + sizeof(from), frame.data(), frame.size());
  socket_.SendTo(datagram, ports_[to_process]);
}

std::optional<InterShardFrame> UdpInterShardChannel::Receive(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    auto datagram = socket_.Receive(timeout_ms);
    if (!datagram.has_value()) {
      return std::nullopt;
    }
    // Malformed or stray datagrams (too short, unknown claimed sender, a
    // sender port that doesn't match the claimed process) are counted and
    // dropped, not fatal: UDP delivers whatever was addressed to the port,
    // and the counters surface in ShardRuntime's stall diagnostics.
    if (datagram->payload.size() <= sizeof(std::uint32_t)) {
      ++dropped_datagrams_;
    } else {
      std::uint32_t from = 0;
      std::memcpy(&from, datagram->payload.data(), sizeof(from));
      if (from >= ports_.size() || ports_[from] != datagram->sender_port) {
        ++stray_datagrams_;
      } else if (from == index_) {
        ++dropped_datagrams_;
      } else {
        return InterShardFrame{
            from, std::vector<std::byte>(
                      datagram->payload.begin() + sizeof(std::uint32_t),
                      datagram->payload.end())};
      }
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return std::nullopt;
    }
    timeout_ms = static_cast<int>(remaining.count());
  }
}

ChannelDiagnostics UdpInterShardChannel::Diagnostics() const {
  ChannelDiagnostics diagnostics;
  diagnostics.dropped_datagrams = dropped_datagrams_;
  diagnostics.stray_datagrams = stray_datagrams_;
  diagnostics.peers.resize(ports_.size());
  return diagnostics;
}

// ------------------------------------------------------------------------
// Frame codec helpers

void FrameWriter::U8(std::uint8_t value) {
  bytes_.push_back(static_cast<std::byte>(value));
}

void FrameWriter::U32(std::uint32_t value) {
  const std::size_t at = bytes_.size();
  bytes_.resize(at + sizeof(value));
  std::memcpy(bytes_.data() + at, &value, sizeof(value));
}

void FrameWriter::U64(std::uint64_t value) {
  const std::size_t at = bytes_.size();
  bytes_.resize(at + sizeof(value));
  std::memcpy(bytes_.data() + at, &value, sizeof(value));
}

void FrameWriter::F64(double value) {
  const std::size_t at = bytes_.size();
  bytes_.resize(at + sizeof(value));
  std::memcpy(bytes_.data() + at, &value, sizeof(value));
}

void FrameWriter::Bytes(std::span<const std::byte> bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

bool ChunkAssembler::Mark(std::uint32_t index, bool is_last) {
  if (expected_ != kUnknown &&
      (index >= expected_ || (is_last && index + 1 != expected_))) {
    throw std::logic_error(
        "ChunkAssembler: chunk index contradicts the established final chunk");
  }
  if (is_last) {
    expected_ = index + 1;
    if (received_ > expected_ || seen_.size() > expected_) {
      throw std::logic_error(
          "ChunkAssembler: chunks received beyond the final chunk");
    }
  }
  if (index >= seen_.size()) {
    seen_.resize(index + 1, false);
  }
  if (seen_[index]) {
    return false;
  }
  seen_[index] = true;
  ++received_;
  return true;
}

void FrameReader::Require(std::size_t count) const {
  if (pos_ + count > bytes_.size()) {
    throw std::runtime_error("FrameReader: truncated frame");
  }
}

std::uint8_t FrameReader::U8() {
  Require(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t FrameReader::U32() {
  Require(sizeof(std::uint32_t));
  std::uint32_t value = 0;
  std::memcpy(&value, bytes_.data() + pos_, sizeof(value));
  pos_ += sizeof(value);
  return value;
}

std::uint64_t FrameReader::U64() {
  Require(sizeof(std::uint64_t));
  std::uint64_t value = 0;
  std::memcpy(&value, bytes_.data() + pos_, sizeof(value));
  pos_ += sizeof(value);
  return value;
}

double FrameReader::F64() {
  Require(sizeof(double));
  double value = 0.0;
  std::memcpy(&value, bytes_.data() + pos_, sizeof(value));
  pos_ += sizeof(value);
  return value;
}

std::vector<std::byte> FrameReader::Bytes(std::size_t count) {
  Require(count);
  std::vector<std::byte> out(bytes_.begin() + pos_, bytes_.begin() + pos_ + count);
  pos_ += count;
  return out;
}

}  // namespace dmfsgd::netsim
