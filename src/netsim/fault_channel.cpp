#include "netsim/fault_channel.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace dmfsgd::netsim {

namespace {

/// Hold window for reordered frames: long enough that the next frame toward
/// the same peer usually overtakes first, short enough that a pure-reorder
/// stack (no reliable layer) cannot wedge the lock-step barrier.
constexpr std::chrono::milliseconds kReorderFlush{5};

void RequireRate(double rate, const char* name) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument(std::string("FaultSpec: ") + name +
                                " must be in [0, 1]");
  }
}

void RequireSpec(const FaultSpec& spec) {
  RequireRate(spec.drop_rate, "drop_rate");
  RequireRate(spec.duplicate_rate, "duplicate_rate");
  RequireRate(spec.reorder_rate, "reorder_rate");
  RequireRate(spec.delay_rate, "delay_rate");
  if (spec.delay_ms <= 0) {
    throw std::invalid_argument("FaultSpec: delay_ms must be positive");
  }
}

}  // namespace

FaultInjectingInterShardChannel::FaultInjectingInterShardChannel(
    InterShardChannel& inner, FaultChannelOptions options)
    : inner_(&inner), options_(options) {
  RequireSpec(options_.outbound);
  RequireSpec(options_.inbound);
  // One decorrelated stream per direction so each (peer, ordinal) pair maps
  // to the same fault decision regardless of interleaving with other peers.
  common::Rng root(options_.seed);
  out_streams_.reserve(inner_->ProcessCount());
  in_streams_.reserve(inner_->ProcessCount());
  for (std::size_t p = 0; p < inner_->ProcessCount(); ++p) {
    out_streams_.push_back(root.Split());
    in_streams_.push_back(root.Split());
  }
}

FaultInjectingInterShardChannel::Fault FaultInjectingInterShardChannel::Draw(
    common::Rng& rng, const FaultSpec& spec) {
  // One draw per frame keeps the stream aligned with the frame ordinal: the
  // same frame number always sees the same uniform value for a given seed.
  const double roll = rng.Uniform();
  double edge = spec.drop_rate;
  if (roll < edge) {
    return Fault::kDrop;
  }
  edge += spec.duplicate_rate;
  if (roll < edge) {
    return Fault::kDuplicate;
  }
  edge += spec.reorder_rate;
  if (roll < edge) {
    return Fault::kReorder;
  }
  edge += spec.delay_rate;
  if (roll < edge) {
    return Fault::kDelay;
  }
  return Fault::kNone;
}

void FaultInjectingInterShardChannel::FlushHeld(Clock::time_point now) {
  while (!held_.empty() && held_.front().release <= now) {
    HeldFrame held = std::move(held_.front());
    held_.pop_front();
    inner_->Send(held.to_process, held.bytes);
  }
}

void FaultInjectingInterShardChannel::Send(std::size_t to_process,
                                           std::span<const std::byte> frame) {
  RequireSendable(to_process, frame);
  const auto now = Clock::now();
  if (options_.kill_after_frames > 0 &&
      frames_sent_ >= options_.kill_after_frames) {
    killed_ = true;
  }
  ++frames_sent_;
  if (killed_) {
    held_.clear();  // a dead process's in-flight frames die with it
    return;
  }
  const Fault fault = Draw(out_streams_[to_process], options_.outbound);
  // A newer frame toward a held frame's peer overtakes it: release the hold
  // right after this send so the pair arrives swapped.
  switch (fault) {
    case Fault::kDrop:
      ++frames_dropped_;
      break;
    case Fault::kDuplicate:
      ++frames_duplicated_;
      inner_->Send(to_process, frame);
      inner_->Send(to_process, frame);
      break;
    case Fault::kReorder: {
      ++frames_reordered_;
      const bool peer_has_hold =
          std::any_of(held_.begin(), held_.end(), [&](const HeldFrame& h) {
            return h.to_process == to_process;
          });
      if (peer_has_hold) {
        // A frame toward this peer is already waiting to be overtaken; this
        // send is the overtaker.  Ship it now and let the epilogue release
        // the hold behind it — otherwise back-to-back reorder draws would
        // stack holds and drain them FIFO, preserving order after all.
        inner_->Send(to_process, frame);
        break;
      }
      HeldFrame held;
      held.to_process = to_process;
      held.bytes.assign(frame.begin(), frame.end());
      held.release = now + kReorderFlush;
      held_.push_back(std::move(held));
      return;  // flush below would release it immediately on a quiet link
    }
    case Fault::kDelay: {
      ++frames_delayed_;
      HeldFrame held;
      held.to_process = to_process;
      held.bytes.assign(frame.begin(), frame.end());
      held.release = now + std::chrono::milliseconds(options_.outbound.delay_ms);
      held_.push_back(std::move(held));
      return;
    }
    case Fault::kNone:
      inner_->Send(to_process, frame);
      break;
  }
  // This send overtook every frame still in the hold box; release the ones
  // headed to the same peer so the swap actually happens.
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->to_process == to_process) {
      inner_->Send(it->to_process, it->bytes);
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
  FlushHeld(now);
}

bool FaultInjectingInterShardChannel::Flush(int timeout_ms) {
  if (killed_) {
    held_.clear();
    return false;
  }
  while (!held_.empty()) {
    HeldFrame held = std::move(held_.front());
    held_.pop_front();
    inner_->Send(held.to_process, held.bytes);
  }
  return inner_->Flush(timeout_ms);
}

std::optional<InterShardFrame> FaultInjectingInterShardChannel::Receive(
    int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto now = Clock::now();
    if (!killed_) {
      FlushHeld(now);
    }
    if (!inbound_ready_.empty()) {
      InterShardFrame frame = std::move(inbound_ready_.front());
      inbound_ready_.pop_front();
      return frame;
    }
    // Poll in short slices so held outbound frames keep flushing while the
    // caller blocks; a dead endpoint still consumes (and discards) traffic.
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    if (remaining.count() < 0) {
      break;
    }
    const int slice =
        static_cast<int>(std::min<std::int64_t>(remaining.count(), 2));
    auto frame = inner_->Receive(slice);
    if (!frame.has_value()) {
      if (Clock::now() >= deadline) {
        break;
      }
      continue;
    }
    if (killed_) {
      continue;  // blackhole: the dead process hears nothing
    }
    const Fault fault = Draw(in_streams_[frame->from_process], options_.inbound);
    switch (fault) {
      case Fault::kDrop:
        ++frames_dropped_;
        continue;
      case Fault::kDuplicate:
        ++frames_duplicated_;
        inbound_ready_.push_back(*frame);
        return frame;
      case Fault::kReorder:
        // Inbound reorder: step aside and let the next arrival pass first.
        // The held frame queues behind whatever frame ends this loop (or is
        // returned outright at the deadline, so reorder never loses it).
        ++frames_reordered_;
        if (inbound_held_.has_value()) {
          inbound_ready_.push_back(std::move(*inbound_held_));
        }
        inbound_held_ = std::move(*frame);
        continue;
      case Fault::kDelay:
      case Fault::kNone:
        if (inbound_held_.has_value()) {
          inbound_ready_.push_back(std::move(*inbound_held_));
          inbound_held_.reset();
        }
        return frame;
    }
  }
  // Deadline reached.  A reorder-held frame has nothing left to swap with —
  // release it rather than lose it (time-based flush for the no-reliable
  // stacking, mirroring FlushHeld on the outbound side).
  if (!killed_ && inbound_held_.has_value()) {
    InterShardFrame frame = std::move(*inbound_held_);
    inbound_held_.reset();
    return frame;
  }
  return std::nullopt;
}

}  // namespace dmfsgd::netsim
