// Deterministic fault injection for inter-shard transport (DESIGN.md §15).
//
// FaultInjectingInterShardChannel wraps any InterShardChannel and perturbs
// frames on their way through: drop, duplicate, reorder (hold one frame and
// release it after the next one toward the same peer), and delay.  Every
// decision is a function of (seed, direction, frame ordinal) drawn from a
// per-direction seeded common::Rng stream — never of wall-clock time — so
// the same seed injects the same fault pattern on every run, which is what
// lets the lossy parity tests assert bit-identical results.
//
// The injector sits UNDER the reliability layer in the intended stack
//
//     ShardRuntime → ReliableInterShardChannel
//                  → FaultInjectingInterShardChannel → Loopback/Udp
//
// so injected duplicates are suppressed and injected drops repaired one
// layer up.  It also runs without the reliable layer (tests, demos); to keep
// the lock-step window barrier from wedging in that configuration, held
// frames (reorder/delay) additionally flush on a short timer serviced by
// both Send and Receive.
//
// Kill switch: `kill_after_frames = k` blackholes the endpoint after it has
// sent k frames — subsequent sends vanish and all further receives are
// swallowed, simulating a crashed process for StallError tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "netsim/inter_shard_channel.hpp"

namespace dmfsgd::netsim {

/// Fault rates for one direction of traffic.  Rates are independent
/// per-frame probabilities in [0, 1]; a frame suffers at most one fault,
/// checked in the order drop, duplicate, reorder, delay.
struct FaultSpec {
  double drop_rate = 0.0;       ///< frame vanishes
  double duplicate_rate = 0.0;  ///< frame is delivered twice
  double reorder_rate = 0.0;    ///< frame is held and swapped with the next
  double delay_rate = 0.0;      ///< frame is held for delay_ms
  int delay_ms = 5;             ///< hold duration for delayed frames
};

struct FaultChannelOptions {
  FaultSpec outbound;  ///< faults applied to frames this endpoint sends
  FaultSpec inbound;   ///< faults applied to frames this endpoint receives
  /// After this endpoint has sent this many frames, it goes dark: sends are
  /// swallowed and receives return nothing.  0 disables the kill switch.
  std::uint64_t kill_after_frames = 0;
  std::uint64_t seed = 0xfa017u;  ///< root of the per-direction fault streams
};

/// Seeded, deterministic fault-injection decorator.  `inner` must outlive
/// this object.  Not thread-safe (same single-owner contract as the
/// reliability layer).
class FaultInjectingInterShardChannel final : public InterShardChannel {
 public:
  explicit FaultInjectingInterShardChannel(
      InterShardChannel& inner, FaultChannelOptions options = FaultChannelOptions());

  [[nodiscard]] std::size_t ProcessCount() const noexcept override {
    return inner_->ProcessCount();
  }
  [[nodiscard]] std::size_t ProcessIndex() const noexcept override {
    return inner_->ProcessIndex();
  }
  void Send(std::size_t to_process, std::span<const std::byte> frame) override;
  [[nodiscard]] std::optional<InterShardFrame> Receive(int timeout_ms) override;
  [[nodiscard]] const char* Name() const noexcept override { return "fault"; }
  [[nodiscard]] std::size_t MaxFrameBytes() const noexcept override {
    return inner_->MaxFrameBytes();
  }
  [[nodiscard]] ChannelDiagnostics Diagnostics() const override {
    return inner_->Diagnostics();
  }
  [[nodiscard]] std::uint64_t LivenessEpoch() const noexcept override {
    return inner_->LivenessEpoch();
  }
  /// Releases every held frame (reorder/delay holds have nothing left to
  /// swap with), then forwards to the inner channel.  A killed endpoint
  /// discards its holds instead — a dead process ships nothing.
  bool Flush(int timeout_ms) override;

  /// True once the kill switch has tripped.
  [[nodiscard]] bool Killed() const noexcept { return killed_; }
  [[nodiscard]] std::uint64_t FramesDropped() const noexcept {
    return frames_dropped_;
  }
  [[nodiscard]] std::uint64_t FramesDuplicated() const noexcept {
    return frames_duplicated_;
  }
  [[nodiscard]] std::uint64_t FramesReordered() const noexcept {
    return frames_reordered_;
  }
  [[nodiscard]] std::uint64_t FramesDelayed() const noexcept {
    return frames_delayed_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  enum class Fault { kNone, kDrop, kDuplicate, kReorder, kDelay };

  struct HeldFrame {
    std::size_t to_process = 0;
    std::vector<std::byte> bytes;
    Clock::time_point release;
  };

  /// Draws the fault (if any) for the next frame in `direction`'s stream.
  [[nodiscard]] Fault Draw(common::Rng& rng, const FaultSpec& spec);
  /// Ships held outbound frames whose release time passed (or, for reorder
  /// holds, that a newer frame toward the same peer has overtaken).
  void FlushHeld(Clock::time_point now);

  InterShardChannel* inner_;
  FaultChannelOptions options_;
  std::vector<common::Rng> out_streams_;  ///< one per destination process
  std::vector<common::Rng> in_streams_;   ///< one per source process
  std::deque<HeldFrame> held_;            ///< outbound frames in the hold box
  std::deque<InterShardFrame> inbound_ready_;  ///< duplicated inbound copies
  std::optional<InterShardFrame> inbound_held_;  ///< inbound reorder hold
  std::uint64_t frames_sent_ = 0;
  bool killed_ = false;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_duplicated_ = 0;
  std::uint64_t frames_reordered_ = 0;
  std::uint64_t frames_delayed_ = 0;
};

}  // namespace dmfsgd::netsim
