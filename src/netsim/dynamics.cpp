#include "netsim/dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dmfsgd::netsim {

CongestionProcess::CongestionProcess(std::size_t node_count,
                                     const CongestionConfig& config)
    : config_(config), rng_(config.seed), level_(node_count, 0.0) {
  if (node_count == 0) {
    throw std::invalid_argument("CongestionProcess: node_count must be > 0");
  }
  if (config.ar_coefficient < 0.0 || config.ar_coefficient >= 1.0) {
    throw std::invalid_argument(
        "CongestionProcess: ar_coefficient must be in [0, 1)");
  }
  // Start each node at its stationary distribution so early samples are not
  // biased toward zero congestion.
  const double stationary_stddev =
      config.noise_stddev_ms /
      std::sqrt(1.0 - config.ar_coefficient * config.ar_coefficient);
  for (double& level : level_) {
    level = rng_.Normal(0.0, stationary_stddev);
  }
}

void CongestionProcess::Step() {
  for (double& level : level_) {
    level = config_.ar_coefficient * level +
            rng_.Normal(0.0, config_.noise_stddev_ms);
  }
  ++tick_;
}

void CongestionProcess::Advance(std::size_t ticks) {
  for (std::size_t t = 0; t < ticks; ++t) {
    Step();
  }
}

double CongestionProcess::Level(std::size_t node) const {
  if (node >= level_.size()) {
    throw std::out_of_range("CongestionProcess::Level: node out of range");
  }
  // The AR(1) state is signed; observable extra queueing delay is its
  // positive part.
  return std::max(0.0, level_[node]);
}

double CongestionProcess::PathExtraDelay(std::size_t i, std::size_t j) {
  if (i >= level_.size() || j >= level_.size()) {
    throw std::out_of_range("CongestionProcess::PathExtraDelay: node out of range");
  }
  double extra = Level(i) + Level(j);
  if (rng_.Bernoulli(config_.spike_probability)) {
    extra += rng_.Pareto(config_.spike_scale_ms, config_.spike_shape);
  }
  return extra;
}

}  // namespace dmfsgd::netsim
