#include "netsim/delay_space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace dmfsgd::netsim {

DelaySpace::DelaySpace(const DelaySpaceConfig& config)
    : detour_cluster_sigma_(config.detour_cluster_sigma),
      detour_pair_sigma_(config.detour_pair_sigma) {
  if (config.node_count < 2) {
    throw std::invalid_argument("DelaySpace: need at least 2 nodes");
  }
  if (config.cluster_count == 0 || config.dimensions == 0 ||
      config.continent_count == 0) {
    throw std::invalid_argument(
        "DelaySpace: continent_count, cluster_count and dimensions must be > 0");
  }
  common::Rng rng(config.seed);
  detour_seed_ = rng();

  // Two-level geography: continents far apart (the source of the multimodal
  // RTT distribution real traces show), metro clusters inside continents.
  std::vector<std::vector<double>> continents(config.continent_count);
  for (auto& center : continents) {
    center.resize(config.dimensions);
    for (double& coordinate : center) {
      coordinate = rng.Normal(0.0, config.world_radius_ms);
    }
  }
  std::vector<std::vector<double>> centers(config.cluster_count);
  for (std::size_t c = 0; c < centers.size(); ++c) {
    const auto& continent = continents[c % config.continent_count];
    centers[c].resize(config.dimensions);
    for (std::size_t d = 0; d < config.dimensions; ++d) {
      centers[c][d] = continent[d] + rng.Normal(0.0, config.continent_radius_ms);
    }
  }

  positions_.resize(config.node_count);
  access_ms_.resize(config.node_count);
  cluster_.resize(config.node_count);
  for (std::size_t i = 0; i < config.node_count; ++i) {
    // Clusters have unequal sizes: pick a cluster with probability
    // proportional to rank^-0.8 to mimic dense vs sparse regions.
    // (Simple trick: square a uniform to skew toward low indices.)
    const double u = rng.Uniform();
    const auto cluster = static_cast<std::size_t>(
        u * u * static_cast<double>(config.cluster_count));
    cluster_[i] = std::min(cluster, config.cluster_count - 1);

    positions_[i].resize(config.dimensions);
    for (std::size_t d = 0; d < config.dimensions; ++d) {
      positions_[i][d] =
          centers[cluster_[i]][d] + rng.Normal(0.0, config.cluster_radius_ms);
    }
    access_ms_[i] =
        config.min_access_ms +
        rng.LogNormal(config.access_lognormal_mu, config.access_lognormal_sigma);
  }
}

double DelaySpace::Propagation(std::size_t i, std::size_t j) const noexcept {
  double sum = 0.0;
  for (std::size_t d = 0; d < positions_[i].size(); ++d) {
    const double delta = positions_[i][d] - positions_[j][d];
    sum += delta * delta;
  }
  return std::sqrt(sum);
}

double DelaySpace::DetourFactor(std::size_t i, std::size_t j) const noexcept {
  // Symmetric factors derived from keyed hashes so the same (i, j) always
  // sees the same detour without storing n^2 values.  The dominant component
  // is shared by the whole cluster pair (AS-level routing policy); a small
  // per-pair jitter sits on top.
  const std::uint64_t c_lo =
      static_cast<std::uint64_t>(std::min(cluster_[i], cluster_[j]));
  const std::uint64_t c_hi =
      static_cast<std::uint64_t>(std::max(cluster_[i], cluster_[j]));
  std::uint64_t cluster_state =
      detour_seed_ ^ (c_lo * 0x9e3779b97f4a7c15ULL + c_hi + 0x51ed270b8a4c9b7dULL);
  common::Rng cluster_rng(common::SplitMix64Next(cluster_state));
  const double cluster_factor = cluster_rng.LogNormal(0.0, detour_cluster_sigma_);

  const std::uint64_t lo = static_cast<std::uint64_t>(std::min(i, j));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::max(i, j));
  std::uint64_t pair_state = detour_seed_ ^ (lo * 0x9e3779b97f4a7c15ULL + hi);
  common::Rng pair_rng(common::SplitMix64Next(pair_state));
  return cluster_factor * pair_rng.LogNormal(0.0, detour_pair_sigma_);
}

double DelaySpace::Rtt(std::size_t i, std::size_t j) const {
  if (i >= NodeCount() || j >= NodeCount()) {
    throw std::out_of_range("DelaySpace::Rtt: node index out of range");
  }
  if (i == j) {
    throw std::invalid_argument("DelaySpace::Rtt: i == j has no path");
  }
  const double propagation = Propagation(i, j);
  const double detour = DetourFactor(i, j);
  return detour * propagation + access_ms_[i] + access_ms_[j];
}

std::size_t DelaySpace::Cluster(std::size_t i) const {
  if (i >= NodeCount()) {
    throw std::out_of_range("DelaySpace::Cluster: node index out of range");
  }
  return cluster_[i];
}

linalg::Matrix DelaySpace::ToMatrix() const {
  const std::size_t n = NodeCount();
  linalg::Matrix m(n, n, linalg::Matrix::kMissing);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double rtt = Rtt(i, j);
      m(i, j) = rtt;
      m(j, i) = rtt;
    }
  }
  return m;
}

}  // namespace dmfsgd::netsim
