// Inter-shard transport for multi-process async simulation (DESIGN.md §12).
//
// The owner partition of netsim::ShardedEventQueue is the natural seam for
// distributing the async simulation across processes: each process drains a
// contiguous shard range, and everything that crosses the partition —
// window proposals, barrier-carrying event batches, result folds — travels
// as small self-contained byte frames between processes.  InterShardChannel
// is that frame transport, deliberately dumber than core::DeliveryChannel:
// it moves opaque frames between *processes*, knows nothing about protocol
// messages or event stamps (that is netsim::ShardRuntime's job), and never
// consumes randomness.
//
// Two backends:
//
//   LoopbackInterShardChannel  in-process queues through a shared hub; lets
//                              tests and benches run N "processes" as N
//                              threads with zero sockets.
//   UdpInterShardChannel       real datagrams over transport::UdpSocket on
//                              the loopback interface — the backend the
//                              forked multiprocess example and test use.
//
// Frames are limited to kMaxFrameBytes so every frame fits one UDP datagram;
// ShardRuntime chunks larger payloads (event batches, result folds) itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "transport/udp.hpp"

namespace dmfsgd::netsim {

/// One received frame: opaque bytes plus the sending process's index.
struct InterShardFrame {
  std::size_t from_process = 0;
  std::vector<std::byte> bytes;
};

/// Largest frame any backend must carry: one UDP datagram minus headroom for
/// the channel's own process-id prefix.
inline constexpr std::size_t kMaxFrameBytes = 60000;

/// Per-peer transport counters a channel can report for stall diagnostics
/// (netsim::StallError) and the multiprocess example's summary line.  All
/// fields are zero for channels that do not track the quantity.
struct PeerChannelStats {
  std::uint64_t frames_sent = 0;        ///< data frames shipped to this peer
  std::uint64_t frames_received = 0;    ///< data frames accepted from this peer
  std::uint64_t retransmits = 0;        ///< resends of unacked frames
  std::uint64_t duplicates_suppressed = 0;  ///< received frames already seen
  std::uint64_t unacked_frames = 0;     ///< still awaiting this peer's ack
  /// Seconds since this peer was last heard from (any frame or ack), or a
  /// negative value when it has not been heard from at all.
  double seconds_since_heard = -1.0;
};

/// Snapshot of a channel's transport-level health.  The base implementation
/// returns empty stats; decorators and the UDP backend fill in what they
/// track.
struct ChannelDiagnostics {
  std::uint64_t dropped_datagrams = 0;  ///< malformed datagrams discarded
  std::uint64_t stray_datagrams = 0;    ///< datagrams from unknown senders
  std::vector<PeerChannelStats> peers;  ///< indexed by process, self row zero
};

/// Moves opaque byte frames between the processes of one distributed drain.
/// Frames from one sender to one receiver arrive in order on the loopback
/// backend and effectively in order on loopback UDP; ShardRuntime's window
/// protocol additionally tolerates reordering across window boundaries and
/// duplication.  Frame *loss* is handled one layer up: loopback queues
/// never drop and the UDP backend sizes its receive buffer so overflow
/// drops are unlikely, but a genuinely lossy link (multi-host, injected
/// faults) needs the ReliableInterShardChannel decorator
/// (netsim/reliable_channel.hpp, DESIGN.md §15), which adds per-peer-pair
/// sequence numbers, cumulative acks and timeout-driven retransmission so
/// a lost frame is retransmitted instead of surfacing as the runtime's
/// stall timeout.
class InterShardChannel {
 public:
  virtual ~InterShardChannel() = default;

  /// Processes participating in the drain (>= 1).
  [[nodiscard]] virtual std::size_t ProcessCount() const noexcept = 0;

  /// This endpoint's process index in [0, ProcessCount()).
  [[nodiscard]] virtual std::size_t ProcessIndex() const noexcept = 0;

  /// Ships one frame to `to_process`.  Requires to_process < ProcessCount(),
  /// to_process != ProcessIndex(), and a non-empty frame of at most
  /// MaxFrameBytes().
  virtual void Send(std::size_t to_process, std::span<const std::byte> frame) = 0;

  /// Receives one frame, waiting up to `timeout_ms` (0 = just poll).
  /// Returns std::nullopt on timeout.
  [[nodiscard]] virtual std::optional<InterShardFrame> Receive(int timeout_ms) = 0;

  [[nodiscard]] virtual const char* Name() const noexcept = 0;

  /// Largest frame Send accepts.  Backends carry kMaxFrameBytes; decorators
  /// that add their own header (the reliability layer) advertise less, and
  /// layers that size frames (ShardRuntime's chunking, the result fold)
  /// must budget against this, not the constant.
  [[nodiscard]] virtual std::size_t MaxFrameBytes() const noexcept {
    return kMaxFrameBytes;
  }

  /// Transport-health snapshot for stall diagnostics.  The base returns an
  /// empty snapshot (peers sized to ProcessCount(), all zero).
  [[nodiscard]] virtual ChannelDiagnostics Diagnostics() const {
    ChannelDiagnostics diagnostics;
    diagnostics.peers.resize(ProcessCount());
    return diagnostics;
  }

  /// Drives the channel until every frame this endpoint sent is delivered
  /// as far as the channel can tell, or `timeout_ms` elapses.  Plain
  /// backends have nothing to wait for and return true immediately; the
  /// reliability decorator keeps retransmitting and acking until its unacked
  /// buffers drain (returns false on timeout).  Call before abandoning a
  /// channel whose timers are serviced inside Send/Receive — a process that
  /// exits right after its last Send would otherwise strand frames that the
  /// network dropped.  Frames that arrive while flushing are buffered for
  /// the next Receive, never lost.
  virtual bool Flush(int timeout_ms) {
    (void)timeout_ms;
    return true;
  }

  /// Monotonic counter that advances whenever the channel observes forward
  /// progress that a caller's Receive cannot see directly — for the
  /// reliability layer, a peer's cumulative ack advancing (the peer is alive
  /// and draining retransmissions even if no data frame surfaced yet).
  /// Stall detection treats an advance as "peer alive" and re-arms its
  /// timeout, so retransmission and stall detection compose instead of
  /// racing.  Plain backends never advance it.
  [[nodiscard]] virtual std::uint64_t LivenessEpoch() const noexcept {
    return 0;
  }

 protected:
  /// Shared argument validation for Send implementations.
  void RequireSendable(std::size_t to_process,
                       std::span<const std::byte> frame) const;
};

// ------------------------------------------------------------------------
// Loopback backend

/// Shared mailbox hub for N in-process endpoints (one per simulated
/// process).  Thread-safe; endpoints must not outlive the hub.
class LoopbackInterShardHub {
 public:
  explicit LoopbackInterShardHub(std::size_t process_count);

  [[nodiscard]] std::size_t ProcessCount() const noexcept {
    return mailboxes_.size();
  }

  void Post(std::size_t from, std::size_t to, std::span<const std::byte> frame);
  [[nodiscard]] std::optional<InterShardFrame> Take(std::size_t process,
                                                    int timeout_ms);

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<InterShardFrame> frames;
  };
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

class LoopbackInterShardChannel final : public InterShardChannel {
 public:
  /// `hub` must outlive this endpoint.  Requires index < hub.ProcessCount().
  LoopbackInterShardChannel(LoopbackInterShardHub& hub, std::size_t index);

  [[nodiscard]] std::size_t ProcessCount() const noexcept override {
    return hub_->ProcessCount();
  }
  [[nodiscard]] std::size_t ProcessIndex() const noexcept override {
    return index_;
  }
  void Send(std::size_t to_process, std::span<const std::byte> frame) override;
  [[nodiscard]] std::optional<InterShardFrame> Receive(int timeout_ms) override;
  [[nodiscard]] const char* Name() const noexcept override { return "loopback"; }

 private:
  LoopbackInterShardHub* hub_;
  std::size_t index_;
};

// ------------------------------------------------------------------------
// UDP backend

/// Frame transport over a real UDP socket on 127.0.0.1.  Two discovery
/// modes: bind all sockets before a fork (children inherit them, so
/// `ports[p]` is known everywhere), or — for processes with no common
/// ancestor — exchange ports through a netsim::PortRegistry rendezvous
/// file (port_registry.hpp) and construct the channel from the exchanged
/// vector.  Each datagram carries a 4-byte sender-process prefix; datagrams
/// from unknown ports or with malformed prefixes are counted
/// (StrayDatagrams/DroppedDatagrams) and dropped, never fatal.
class UdpInterShardChannel final : public InterShardChannel {
 public:
  /// Requires ports.size() >= 1, process_index < ports.size(), and `socket`
  /// bound to ports[process_index].
  UdpInterShardChannel(transport::UdpSocket socket, std::size_t process_index,
                       std::vector<std::uint16_t> ports);

  [[nodiscard]] std::size_t ProcessCount() const noexcept override {
    return ports_.size();
  }
  [[nodiscard]] std::size_t ProcessIndex() const noexcept override {
    return index_;
  }
  void Send(std::size_t to_process, std::span<const std::byte> frame) override;
  [[nodiscard]] std::optional<InterShardFrame> Receive(int timeout_ms) override;
  [[nodiscard]] const char* Name() const noexcept override { return "udp"; }
  [[nodiscard]] ChannelDiagnostics Diagnostics() const override;

  /// Datagrams discarded because they were malformed (too short to carry
  /// the sender prefix, or a self-addressed prefix).
  [[nodiscard]] std::uint64_t DroppedDatagrams() const noexcept {
    return dropped_datagrams_;
  }
  /// Datagrams discarded because the claimed sender did not match the port
  /// table (an unknown process index, or a spoofed/unknown source port).
  [[nodiscard]] std::uint64_t StrayDatagrams() const noexcept {
    return stray_datagrams_;
  }

 private:
  transport::UdpSocket socket_;
  std::size_t index_;
  std::vector<std::uint16_t> ports_;
  std::uint64_t dropped_datagrams_ = 0;
  std::uint64_t stray_datagrams_ = 0;
};

// ------------------------------------------------------------------------
// Frame codec helpers

/// Little-endian byte-frame writer shared by the shard runtime's window
/// protocol and the coordinator's result fold.
class FrameWriter {
 public:
  void U8(std::uint8_t value);
  void U32(std::uint32_t value);
  void U64(std::uint64_t value);
  void F64(double value);
  void Bytes(std::span<const std::byte> bytes);

  [[nodiscard]] std::size_t Size() const noexcept { return bytes_.size(); }
  [[nodiscard]] std::vector<std::byte> Take() { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

/// Reassembly tracker for one sender's chunked transfer (event batches,
/// result folds): duplicate- and reorder-tolerant, and loud — an index that
/// contradicts an established final chunk is a protocol error, not a
/// silent stall.  Chunks carry (index, is_last); the final chunk reveals
/// the total.
class ChunkAssembler {
 public:
  /// Marks chunk `index` as received; `is_last` establishes the chunk
  /// count.  Returns false for a duplicate (the caller must then skip the
  /// chunk's payload — it was already consumed).  Throws std::logic_error
  /// on an index at or beyond an established final chunk, or a second,
  /// contradicting final chunk.
  bool Mark(std::uint32_t index, bool is_last);

  /// Every chunk up to the final one arrived.
  [[nodiscard]] bool Complete() const noexcept {
    return expected_ != kUnknown && received_ == expected_;
  }

 private:
  static constexpr std::uint32_t kUnknown = 0xffffffffu;
  std::uint32_t expected_ = kUnknown;
  std::uint32_t received_ = 0;
  std::vector<bool> seen_;
};

/// Companion reader; every accessor throws std::runtime_error on truncation,
/// so a malformed frame can never be silently misparsed.
class FrameReader {
 public:
  explicit FrameReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t U8();
  [[nodiscard]] std::uint32_t U32();
  [[nodiscard]] std::uint64_t U64();
  [[nodiscard]] double F64();
  [[nodiscard]] std::vector<std::byte> Bytes(std::size_t count);
  [[nodiscard]] bool AtEnd() const noexcept { return pos_ == bytes_.size(); }

 private:
  void Require(std::size_t count) const;

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace dmfsgd::netsim
