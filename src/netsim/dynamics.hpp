// Time-varying network conditions.
//
// The Harvard dataset the paper uses is a 4-hour stream of *dynamic*
// application-level RTTs between Azureus clients.  This module reproduces
// that regime: each node carries a slowly varying congestion level (an AR(1)
// process, matching the short-term temporal correlation of queueing delay)
// plus occasional heavy-tailed spikes (GC pauses / cross-traffic bursts seen
// in application-level measurements).  An observed RTT at time t is
//
//   rtt_t(i, j) = base_rtt(i, j) + congestion_i(t) + congestion_j(t)
//                 + spike (rare, Pareto-distributed)
//
// The process is deterministic given the seed and is advanced in fixed
// ticks; dataset generators sample it through a passive-probing schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace dmfsgd::netsim {

struct CongestionConfig {
  double ar_coefficient = 0.98;     ///< AR(1) memory; ~minutes at 1s ticks
  double noise_stddev_ms = 1.2;     ///< innovation noise
  double spike_probability = 0.01;  ///< per-observation heavy-tail spike
  double spike_scale_ms = 20.0;     ///< Pareto scale of spikes
  double spike_shape = 1.8;         ///< Pareto shape (finite mean, heavy tail)
  std::uint64_t seed = 13;
};

/// Per-node AR(1) congestion processes with a shared clock.
class CongestionProcess {
 public:
  CongestionProcess(std::size_t node_count, const CongestionConfig& config);

  /// Advances every node's process by one tick.
  void Step();

  /// Advances by `ticks` ticks.
  void Advance(std::size_t ticks);

  /// Non-negative congestion level of a node at the current time (ms).
  [[nodiscard]] double Level(std::size_t node) const;

  /// One observed extra delay for a path i->j at the current time: sum of
  /// endpoint congestion plus a possible spike.  Mutates only the spike RNG.
  [[nodiscard]] double PathExtraDelay(std::size_t i, std::size_t j);

  [[nodiscard]] std::size_t NodeCount() const noexcept { return level_.size(); }
  [[nodiscard]] std::uint64_t CurrentTick() const noexcept { return tick_; }

 private:
  CongestionConfig config_;
  common::Rng rng_;
  std::vector<double> level_;
  std::uint64_t tick_ = 0;
};

}  // namespace dmfsgd::netsim
