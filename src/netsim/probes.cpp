#include "netsim/probes.hpp"

#include <cmath>
#include <stdexcept>

namespace dmfsgd::netsim {

double PingProbe::Measure(double true_rtt_ms, common::Rng& rng) const {
  if (true_rtt_ms <= 0.0) {
    throw std::invalid_argument("PingProbe::Measure: RTT must be > 0");
  }
  return true_rtt_ms * rng.LogNormal(0.0, options_.noise_sigma);
}

int PathloadClassProbe::Measure(double true_abw_mbps, double rate_mbps,
                                common::Rng& rng) const {
  if (true_abw_mbps <= 0.0 || rate_mbps <= 0.0) {
    throw std::invalid_argument("PathloadClassProbe::Measure: values must be > 0");
  }
  // Relative headroom of the path over the probing rate.
  const double margin = (true_abw_mbps - rate_mbps) / rate_mbps;
  // Logistic misdetection model: far from the rate the verdict is certain,
  // inside the ambiguity band it degrades toward a coin flip.
  const double width = std::max(options_.ambiguity_width, 1e-9);
  const double p_good = 1.0 / (1.0 + std::exp(-4.0 * margin / width));
  bool good = rng.Bernoulli(p_good);
  // Underestimation: queueing noise can masquerade as congestion, flipping
  // marginal "good" verdicts to "bad" (never the other way around).
  if (good && margin < width && rng.Bernoulli(options_.underestimation_bias)) {
    good = false;
  }
  return good ? 1 : -1;
}

double PathchirpProbe::Measure(double true_abw_mbps, common::Rng& rng) const {
  if (true_abw_mbps <= 0.0) {
    throw std::invalid_argument("PathchirpProbe::Measure: ABW must be > 0");
  }
  return true_abw_mbps * options_.underestimation_factor *
         rng.LogNormal(0.0, options_.noise_sigma);
}

}  // namespace dmfsgd::netsim
