// Discrete-event simulation engine.
//
// The round-based driver in core/simulation.hpp executes probes as atomic
// exchanges; this engine supports the *asynchronous* deployment model of a
// real network (core/async_simulation.hpp): messages take one-way delays to
// travel, so the coordinates a node learns from are snapshots that may be
// stale by the time they arrive — exactly the regime SGD must tolerate in
// practice.
//
// Events fire in (time, insertion order) — ties are FIFO, which keeps runs
// fully deterministic for a given schedule.
//
// Two engines live here:
//
//   EventQueue        the original single global queue;
//   ShardedEventQueue the same semantics partitioned by *owner node* into
//                     sub-queues, with a deterministic cross-shard merge, a
//                     conservative-lookahead parallel drain (DESIGN.md §9)
//                     whose windows are bounded per shard pair
//                     (LookaheadMatrix), and a window-level API that lets a
//                     multi-process shard runtime drive the same drain over
//                     an inter-shard channel (DESIGN.md §12).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

namespace dmfsgd::netsim {

/// The one contiguous block-split rule (common/thread_pool.hpp), re-exported
/// where the shard partitions live.
using common::BlockRange;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time in seconds.
  [[nodiscard]] double Now() const noexcept { return now_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t Pending() const noexcept { return queue_.size(); }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t Executed() const noexcept { return executed_; }

  /// Schedules `callback` to run `delay_s` seconds from now.
  /// Requires delay_s >= 0 and a non-empty callback.
  void Schedule(double delay_s, Callback callback);

  /// Runs events until the queue drains or simulated time would exceed
  /// `until_s`.  Events scheduled during execution participate.  Returns the
  /// number of events executed by this call.
  std::uint64_t RunUntil(double until_s);

  /// Runs exactly one event if available; returns whether one ran.
  bool RunOne();

 private:
  struct Entry {
    double time;
    std::uint64_t sequence;  // tie-breaker: FIFO among equal times
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
};

/// Per-shard-pair conservative lookaheads for the parallel drain
/// (DESIGN.md §12): cell (from, to) is a lower bound on the delay of any
/// cross-shard schedule issued by an owner in `from`'s block onto an owner in
/// `to`'s block.  +infinity means "no event ever crosses this pair" and is a
/// legal (maximally wide) bound; the diagonal is ignored — a shard's own
/// events execute in key order regardless.  The global-minimum lookahead of
/// DESIGN.md §9 is the uniform special case.
class LookaheadMatrix {
 public:
  LookaheadMatrix() = default;

  /// `shard_count` x `shard_count` cells, all `uniform_s`.  Requires
  /// shard_count >= 1 and uniform_s > 0 (+infinity allowed).
  LookaheadMatrix(std::size_t shard_count, double uniform_s);

  [[nodiscard]] std::size_t ShardCount() const noexcept { return shard_count_; }

  /// Requires from, to < ShardCount() (each checked — an out-of-range `to`
  /// must not alias a valid flat index).
  [[nodiscard]] double At(std::size_t from, std::size_t to) const {
    RequireCell(from, to);
    return cells_[from * shard_count_ + to];
  }

  /// Requires from, to < ShardCount() and lookahead_s > 0 (+inf allowed).
  void Set(std::size_t from, std::size_t to, double lookahead_s);

 private:
  void RequireCell(std::size_t from, std::size_t to) const {
    if (from >= shard_count_ || to >= shard_count_) {
      throw std::out_of_range("LookaheadMatrix: shard index out of range");
    }
  }

  std::size_t shard_count_ = 0;
  std::vector<double> cells_;
};

/// EventQueue partitioned by *owner node* into shard sub-queues.
///
/// Every event belongs to an owner (the node whose handler it runs — a
/// message's destination, a timer's node); owners map to shards in contiguous
/// blocks.  Two drain modes share one ordering rule:
///
///  * `RunUntil` — sequential k-way merge across shards.  Global order is
///    (time, lane, lane sequence); events scheduled outside a parallel drain
///    all share the "driver" lane with one monotonic counter, so ties are
///    globally FIFO — with any shard count, a sequential drain is
///    event-for-event identical to a plain EventQueue.
///  * `RunUntilParallel` — conservative-lookahead windows (DESIGN.md §9).
///    Each window executes, on every shard s, the events due before s's
///    per-window horizon: with m[s'] the earliest pending event of shard s'
///    at window start, end(s) = min over s' != s of m[s'] + lookahead(s', s).
///    Any event a shard s' executes this window has time >= m[s'], so any
///    cross-shard event it emits toward s arrives at or after end(s) — the
///    per-pair generalization of the global-minimum window, and strictly
///    wider on heterogeneous delay spaces.  Shards drain concurrently (one
///    deterministic fork-join per window); cross-shard events scheduled
///    inside a window are buffered in per-source-shard outboxes and merged
///    after the join.  The caller guarantees the lookaheads: a handler may
///    schedule onto another shard only at a delay >= the pair's configured
///    lookahead (violations throw std::logic_error).  Within a shard, events
///    still fire in (time, lane, sequence) order, so per-owner event order —
///    the order that determines simulation results when handlers touch only
///    owner-local state — is preserved.  For a fixed shard count the drain
///    is bit-identical for every pool size, including 1.
///
/// ## Multi-process drains (DESIGN.md §12)
///
/// The same windowed drain can span processes: each process owns a
/// contiguous shard range (`SetOwnedShardRange`) and drives the window-level
/// API directly (ShardMinTimes / BeginWindow / DrainOwnedShards /
/// FinishWindow / AdvanceNow) under a netsim::ShardRuntime that agrees on
/// window horizons over an InterShardChannel.  Cross-shard events whose
/// destination shard is *not* locally owned cannot carry a callback across
/// the process boundary, so the scheduling layer ships them as stamped
/// payload records instead: `ScheduleRemote` consumes the executing shard's
/// lane sequence exactly as a local cross-shard Schedule would (which is
/// what keeps the distributed merge order bit-identical to the in-process
/// one) and buffers a RemoteEvent; the receiving process re-materializes the
/// callback and enqueues it with the original stamp via `InjectRemote`.
///
/// Thread-safety: `Schedule`/`ScheduleRemote` may be called concurrently
/// only from inside callbacks executing under a parallel window (each
/// executing shard routes through its own lane); all other members are
/// driver-thread only.
class ShardedEventQueue {
 public:
  using Callback = std::function<void()>;
  using OwnerId = std::uint32_t;

  /// A cross-shard event bound for a shard owned by another process: the
  /// deterministic stamp (time, lane, seq) plus an opaque payload the
  /// scheduling layer knows how to turn back into a callback.
  struct RemoteEvent {
    OwnerId owner = 0;
    double time = 0.0;
    std::uint32_t lane = 0;
    std::uint64_t seq = 0;
    std::vector<std::byte> payload;
  };

  /// `owner_count` owners spread over `shard_count` contiguous blocks.
  /// Requires owner_count >= 1; shard_count is clamped to [1, owner_count].
  ShardedEventQueue(std::size_t owner_count, std::size_t shard_count);

  /// Current simulation time in seconds.
  [[nodiscard]] double Now() const noexcept { return now_; }

  /// Pending events across all shards.
  [[nodiscard]] std::size_t Pending() const noexcept;

  /// Pending events in one shard.  Requires shard < ShardCount().
  [[nodiscard]] std::size_t PendingInShard(std::size_t shard) const;

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t Executed() const noexcept { return executed_; }

  /// Parallel windows executed so far (RunUntilParallel or BeginWindow).
  [[nodiscard]] std::uint64_t WindowsExecuted() const noexcept {
    return windows_;
  }

  [[nodiscard]] std::size_t ShardCount() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t OwnerCount() const noexcept { return owner_count_; }

  /// True while a parallel window is open (between BeginWindow and
  /// FinishWindow).  Scheduling layers use it to route around driver-only
  /// state: the flag is written by the driver thread only, before the fork
  /// and after the join, so reading it from window callbacks is safe.
  [[nodiscard]] bool InParallelWindow() const noexcept { return in_window_; }

  /// The shard an owner's events run in (contiguous block mapping, so
  /// neighboring owners share a shard and false sharing stays off the menu).
  [[nodiscard]] std::size_t ShardOf(OwnerId owner) const;

  /// The contiguous owner block [first, last) of one shard.  Requires
  /// shard < ShardCount().
  [[nodiscard]] std::pair<OwnerId, OwnerId> OwnersOfShard(std::size_t shard) const;

  // -- process ownership (multi-process drains, DESIGN.md §12) -------------

  /// Declares the contiguous shard range this process drains; the rest are
  /// *remote* (owned by peer processes).  Defaults to every shard.  Driver-
  /// side schedules onto remote shards are allowed and simply never drain
  /// here (each process replays the same deterministic construction);
  /// in-window schedules onto remote shards must go through ScheduleRemote.
  /// Requires 0 <= begin < end <= ShardCount() and no active window.
  void SetOwnedShardRange(std::size_t begin, std::size_t end);

  [[nodiscard]] std::size_t OwnedShardBegin() const noexcept { return owned_begin_; }
  [[nodiscard]] std::size_t OwnedShardEnd() const noexcept { return owned_end_; }
  [[nodiscard]] bool IsOwnedShard(std::size_t shard) const noexcept {
    return shard >= owned_begin_ && shard < owned_end_;
  }

  /// Schedules `callback` to run `delay_s` seconds from now in `owner`'s
  /// shard.  Requires delay_s >= 0, a non-empty callback and owner <
  /// OwnerCount().  Inside a parallel window, a cross-shard schedule whose
  /// fire time lands inside the destination shard's window throws
  /// std::logic_error (lookahead violation), as does any in-window schedule
  /// onto a remote (non-owned) shard — those must use ScheduleRemote.
  void Schedule(OwnerId owner, double delay_s, Callback callback);

  /// Cross-process cousin of an in-window cross-shard Schedule: stamps the
  /// event with the executing shard's lane and next sequence — the *same*
  /// counter a local Schedule would consume, so the distributed merge stays
  /// bit-identical to the in-process one — and buffers it for
  /// TakeRemoteEvents instead of a destination heap.  Requires an executing
  /// parallel window, delay_s >= 0, a non-empty payload and an `owner` whose
  /// shard is remote.  Throws std::logic_error on a lookahead violation.
  void ScheduleRemote(OwnerId owner, double delay_s,
                      std::vector<std::byte> payload);

  /// Sequential drain in exact global order; same contract as
  /// EventQueue::RunUntil.  Requires full shard ownership, like
  /// RunUntilParallel: under a partial range the first cross-process
  /// message would have no outside-window buffering path, so the mode is
  /// rejected up front (multi-process drains always run windowed, under a
  /// ShardRuntime).
  std::uint64_t RunUntil(double until_s);

  /// Runs exactly one event (the globally next one) if available.
  /// Requires full shard ownership (see RunUntil).
  bool RunOne();

  /// Parallel drain in conservative windows bounded by a uniform
  /// `lookahead_s` (> 0) on every shard pair, spread over `pool`.  Requires
  /// until_s >= Now() and full shard ownership (multi-process drains go
  /// through a ShardRuntime).  See the class comment for the ordering
  /// contract; callbacks must touch only owner-local state plus what the
  /// lookahead guarantee makes safe.
  std::uint64_t RunUntilParallel(double until_s, common::ThreadPool& pool,
                                 double lookahead_s);

  /// Parallel drain with per-shard-pair lookaheads.  Requires
  /// lookaheads.ShardCount() == ShardCount().
  std::uint64_t RunUntilParallel(double until_s, common::ThreadPool& pool,
                                 const LookaheadMatrix& lookaheads);

  // -- window-level API (ShardRuntime and RunUntilParallel) ----------------

  /// Earliest pending event time per shard (+infinity when empty).  Only
  /// owned shards carry meaningful values in a multi-process drain — remote
  /// shards hold the stale replicas of the deterministic construction.
  [[nodiscard]] std::vector<double> ShardMinTimes() const;

  /// The per-shard window horizons for one conservative window:
  /// ends[s] = min over s' != s with finite mins[s'] of
  /// mins[s'] + lookaheads(s', s), or +infinity when no other shard has
  /// pending events.  Requires mins.size() == lookaheads.ShardCount().
  [[nodiscard]] static std::vector<double> ConservativeWindowEnds(
      std::span<const double> mins, const LookaheadMatrix& lookaheads);

  /// Opens a parallel window with the given per-shard horizons (exclusive).
  /// Requires ends.size() == ShardCount() and no active window.
  void BeginWindow(std::vector<double> shard_ends);

  /// Executes every owned shard's events with time < its horizon and
  /// <= until_s, one deterministic fork-join over `pool`.  Requires an open
  /// window.  A throwing callback (or lookahead violation) closes the
  /// window — merging what completed — and rethrows.
  void DrainOwnedShards(common::ThreadPool& pool, double until_s);

  /// Closes the window: merges every local outbox into its destination heap
  /// and folds per-shard executed counts.  Returns the events this window
  /// executed.  Requires an open window.
  std::uint64_t FinishWindow();

  /// Drains the remote-event buffers filled by ScheduleRemote, in source-
  /// shard order (deterministic).  Requires no active window.
  [[nodiscard]] std::vector<RemoteEvent> TakeRemoteEvents();

  /// Enqueues an event received from a peer process with its original stamp.
  /// Requires no active window, an owned destination shard and
  /// lane < ShardCount().
  void InjectRemote(OwnerId owner, double time, std::uint32_t lane,
                    std::uint64_t seq, Callback callback);

  /// Advances Now() to `t` if ahead (windowed drains advance time to the
  /// window frontier, never backwards).
  void AdvanceNow(double t) noexcept { now_ = now_ < t ? t : now_; }

 private:
  struct Entry {
    double time;
    std::uint32_t lane;      // source context: shard id, or shard count = driver
    std::uint64_t sequence;  // per-lane monotonic; ties are FIFO per lane
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      if (a.lane != b.lane) {
        return a.lane > b.lane;
      }
      return a.sequence > b.sequence;
    }
  };
  using Heap = std::priority_queue<Entry, std::vector<Entry>, Later>;

  /// Per-shard state, cache-line separated: during a parallel window each
  /// shard's heap, lane counter and outboxes are touched by exactly one
  /// thread.
  struct alignas(64) Shard {
    Heap heap;
    std::uint64_t next_sequence = 0;
    std::uint64_t executed = 0;
    /// Cross-shard events produced during the current window, merged into
    /// destination heaps after the join. first = destination shard.
    std::vector<std::pair<std::size_t, Entry>> outbox;
    /// Cross-process events produced during the current window, handed to
    /// the shard runtime by TakeRemoteEvents.
    std::vector<RemoteEvent> remote_outbox;
  };

  /// Shard with the globally least pending entry among owned shards, or
  /// ShardCount() if all owned shards are empty.
  [[nodiscard]] std::size_t MinShard() const;

  /// Throws std::logic_error unless every shard is owned locally.
  void RequireFullOwnership(const char* what) const;

  /// Windowed drain core shared by both RunUntilParallel overloads.
  std::uint64_t RunWindowedDrain(double until_s, common::ThreadPool& pool,
                                 const LookaheadMatrix& lookaheads);

  /// After a window's join: merges every outbox into its destination heap and
  /// folds per-shard executed counts into the totals.  Returns the number of
  /// events the window executed.
  std::uint64_t MergeWindow();

  std::size_t owner_count_;
  std::vector<Shard> shards_;
  double now_ = 0.0;
  std::uint64_t driver_sequence_ = 0;  ///< lane counter for driver-side schedules
  std::uint64_t executed_ = 0;
  std::uint64_t windows_ = 0;
  std::vector<double> window_ends_;  ///< per-shard exclusive window horizons
  bool in_window_ = false;
  std::size_t owned_begin_ = 0;
  std::size_t owned_end_ = 0;
};

}  // namespace dmfsgd::netsim
