// Discrete-event simulation engine.
//
// The round-based driver in core/simulation.hpp executes probes as atomic
// exchanges; this engine supports the *asynchronous* deployment model of a
// real network (core/async_simulation.hpp): messages take one-way delays to
// travel, so the coordinates a node learns from are snapshots that may be
// stale by the time they arrive — exactly the regime SGD must tolerate in
// practice.
//
// Events fire in (time, insertion order) — ties are FIFO, which keeps runs
// fully deterministic for a given schedule.
//
// Two engines live here:
//
//   EventQueue        the original single global queue;
//   ShardedEventQueue the same semantics partitioned by *owner node* into
//                     sub-queues, with a deterministic cross-shard merge and
//                     an optional conservative-lookahead parallel drain
//                     (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dmfsgd::common {
class ThreadPool;
}

namespace dmfsgd::netsim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time in seconds.
  [[nodiscard]] double Now() const noexcept { return now_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t Pending() const noexcept { return queue_.size(); }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t Executed() const noexcept { return executed_; }

  /// Schedules `callback` to run `delay_s` seconds from now.
  /// Requires delay_s >= 0 and a non-empty callback.
  void Schedule(double delay_s, Callback callback);

  /// Runs events until the queue drains or simulated time would exceed
  /// `until_s`.  Events scheduled during execution participate.  Returns the
  /// number of events executed by this call.
  std::uint64_t RunUntil(double until_s);

  /// Runs exactly one event if available; returns whether one ran.
  bool RunOne();

 private:
  struct Entry {
    double time;
    std::uint64_t sequence;  // tie-breaker: FIFO among equal times
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
};

/// EventQueue partitioned by *owner node* into shard sub-queues.
///
/// Every event belongs to an owner (the node whose handler it runs — a
/// message's destination, a timer's node); owners map to shards in contiguous
/// blocks.  Two drain modes share one ordering rule:
///
///  * `RunUntil` — sequential k-way merge across shards.  Global order is
///    (time, lane, lane sequence); events scheduled outside a parallel drain
///    all share the "driver" lane with one monotonic counter, so ties are
///    globally FIFO — with any shard count, a sequential drain is
///    event-for-event identical to a plain EventQueue.
///  * `RunUntilParallel` — conservative-lookahead windows (DESIGN.md §9).
///    Each window [t, t + lookahead) is executed by draining every shard's
///    due events concurrently (one deterministic fork-join per window);
///    cross-shard events scheduled inside a window are buffered in
///    per-source-shard outboxes and merged after the join, in source-shard
///    order.  The caller guarantees *lookahead*: a handler may schedule onto
///    another shard only at `delay >= lookahead` (violations throw
///    std::logic_error), which is exactly what makes same-window events on
///    different shards causally independent.  Within a shard, events still
///    fire in (time, lane, sequence) order, so per-owner event order — the
///    order that determines simulation results when handlers touch only
///    owner-local state — is preserved.  For a fixed shard count the drain
///    is bit-identical for every pool size, including 1.
///
/// Thread-safety: `Schedule` may be called concurrently only from inside
/// callbacks executing under `RunUntilParallel` (each executing shard routes
/// through its own lane); all other members are driver-thread only.
class ShardedEventQueue {
 public:
  using Callback = std::function<void()>;
  using OwnerId = std::uint32_t;

  /// `owner_count` owners spread over `shard_count` contiguous blocks.
  /// Requires owner_count >= 1; shard_count is clamped to [1, owner_count].
  ShardedEventQueue(std::size_t owner_count, std::size_t shard_count);

  /// Current simulation time in seconds.
  [[nodiscard]] double Now() const noexcept { return now_; }

  /// Pending events across all shards.
  [[nodiscard]] std::size_t Pending() const noexcept;

  /// Pending events in one shard.  Requires shard < ShardCount().
  [[nodiscard]] std::size_t PendingInShard(std::size_t shard) const;

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t Executed() const noexcept { return executed_; }

  [[nodiscard]] std::size_t ShardCount() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t OwnerCount() const noexcept { return owner_count_; }

  /// The shard an owner's events run in (contiguous block mapping, so
  /// neighboring owners share a shard and false sharing stays off the menu).
  [[nodiscard]] std::size_t ShardOf(OwnerId owner) const;

  /// Schedules `callback` to run `delay_s` seconds from now in `owner`'s
  /// shard.  Requires delay_s >= 0, a non-empty callback and owner <
  /// OwnerCount().  Inside a parallel window, a cross-shard schedule whose
  /// fire time lands inside the window throws std::logic_error (lookahead
  /// violation).
  void Schedule(OwnerId owner, double delay_s, Callback callback);

  /// Sequential drain in exact global order; same contract as
  /// EventQueue::RunUntil.
  std::uint64_t RunUntil(double until_s);

  /// Runs exactly one event (the globally next one) if available.
  bool RunOne();

  /// Parallel drain in conservative windows of `lookahead_s` (> 0) seconds,
  /// spread over `pool`.  Requires until_s >= Now().  See the class comment
  /// for the ordering contract; callbacks must touch only owner-local state
  /// plus what the lookahead guarantee makes safe.
  std::uint64_t RunUntilParallel(double until_s, common::ThreadPool& pool,
                                 double lookahead_s);

 private:
  struct Entry {
    double time;
    std::uint32_t lane;      // source context: shard id, or shard count = driver
    std::uint64_t sequence;  // per-lane monotonic; ties are FIFO per lane
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      if (a.lane != b.lane) {
        return a.lane > b.lane;
      }
      return a.sequence > b.sequence;
    }
  };
  using Heap = std::priority_queue<Entry, std::vector<Entry>, Later>;

  /// Per-shard state, cache-line separated: during a parallel window each
  /// shard's heap, lane counter and outbox are touched by exactly one thread.
  struct alignas(64) Shard {
    Heap heap;
    std::uint64_t next_sequence = 0;
    std::uint64_t executed = 0;
    /// Cross-shard events produced during the current window, merged into
    /// destination heaps after the join. first = destination shard.
    std::vector<std::pair<std::size_t, Entry>> outbox;
  };

  /// Shard with the globally least pending entry, or ShardCount() if empty.
  [[nodiscard]] std::size_t MinShard() const;

  /// After a window's join: merges every outbox into its destination heap and
  /// folds per-shard executed counts into the totals.  Returns the number of
  /// events the window executed.
  std::uint64_t MergeWindow();

  std::size_t owner_count_;
  std::vector<Shard> shards_;
  double now_ = 0.0;
  std::uint64_t driver_sequence_ = 0;  ///< lane counter for driver-side schedules
  std::uint64_t executed_ = 0;
  double window_end_ = 0.0;  ///< exclusive end of the active parallel window
  bool in_window_ = false;
};

}  // namespace dmfsgd::netsim
