// Discrete-event simulation engine.
//
// The round-based driver in core/simulation.hpp executes probes as atomic
// exchanges; this engine supports the *asynchronous* deployment model of a
// real network (core/async_simulation.hpp): messages take one-way delays to
// travel, so the coordinates a node learns from are snapshots that may be
// stale by the time they arrive — exactly the regime SGD must tolerate in
// practice.
//
// Events fire in (time, insertion order) — ties are FIFO, which keeps runs
// fully deterministic for a given schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dmfsgd::netsim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time in seconds.
  [[nodiscard]] double Now() const noexcept { return now_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t Pending() const noexcept { return queue_.size(); }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t Executed() const noexcept { return executed_; }

  /// Schedules `callback` to run `delay_s` seconds from now.
  /// Requires delay_s >= 0 and a non-empty callback.
  void Schedule(double delay_s, Callback callback);

  /// Runs events until the queue drains or simulated time would exceed
  /// `until_s`.  Events scheduled during execution participate.  Returns the
  /// number of events executed by this call.
  std::uint64_t RunUntil(double until_s);

  /// Runs exactly one event if available; returns whether one ran.
  bool RunOne();

 private:
  struct Entry {
    double time;
    std::uint64_t sequence;  // tie-breaker: FIFO among equal times
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dmfsgd::netsim
