// Synthetic bandwidth substrate: hosts hanging off a random capacity tree.
//
// Substitute for the unavailable HP-S3 pathChirp trace (DESIGN.md §3).  The
// SEQUOIA work the paper cites ("On the treeness of Internet latency and
// bandwidth", SIGMETRICS 2009) observed that end-to-end available bandwidth
// embeds well into a tree metric; we therefore *generate* ABW directly from
// a tree:
//
//   abw(i -> j) = min over edges e on tree path i->j of
//                   capacity(e) * (1 - utilization(e, direction))
//
// Edges carry tiered capacities (access < metro < core) and asymmetric
// up/down background utilization, which makes the matrix asymmetric like
// real ABW while keeping the low-rank/tree structure the paper's Figure 1
// demonstrates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace dmfsgd::netsim {

struct CapacityTreeConfig {
  std::size_t host_count = 231;
  std::size_t branching_min = 2;   ///< children per internal node, lower bound
  std::size_t branching_max = 4;   ///< children per internal node, upper bound
  std::size_t depth = 4;           ///< tiers between root and hosts
  /// Capacity by tier, Mbps, index 0 = edges at the root (core).  If the
  /// tree is deeper than the vector, the last entry repeats.
  std::vector<double> tier_capacity_mbps = {10000.0, 1000.0, 100.0, 100.0};
  /// Per-tier capacity jitter: capacity *= LogNormal(0, jitter).
  double capacity_jitter_sigma = 0.3;
  /// Background utilization drawn per edge AND per direction from
  /// Beta-like(U^shape) in [0, max_utilization].
  double max_utilization = 0.9;
  double utilization_shape = 2.0;  ///< larger -> skewed toward low utilization
  std::uint64_t seed = 7;
};

/// Immutable random capacity tree with hosts at the leaves.
class CapacityTree {
 public:
  explicit CapacityTree(const CapacityTreeConfig& config);

  [[nodiscard]] std::size_t HostCount() const noexcept { return hosts_.size(); }

  /// Ground-truth available bandwidth from host i to host j in Mbps
  /// (asymmetric, > 0).  Throws std::out_of_range / std::invalid_argument.
  [[nodiscard]] double Abw(std::size_t i, std::size_t j) const;

  /// Materializes the full (asymmetric) ABW matrix, diagonal NaN.
  [[nodiscard]] linalg::Matrix ToMatrix() const;

  /// Number of nodes (internal + leaves) in the underlying tree.
  [[nodiscard]] std::size_t TreeNodeCount() const noexcept { return parent_.size(); }

  /// Tree-path length in edges between two hosts (diagnostics/tests).
  [[nodiscard]] std::size_t PathLength(std::size_t i, std::size_t j) const;

 private:
  struct EdgeLoad {
    double capacity_mbps = 0.0;
    double utilization_up = 0.0;    ///< toward the root
    double utilization_down = 0.0;  ///< away from the root
  };

  /// Residual bandwidth of the edge above `tree_node` in the given direction.
  [[nodiscard]] double Residual(std::size_t tree_node, bool upward) const noexcept;

  std::vector<std::size_t> parent_;   // tree_node -> parent (root: itself)
  std::vector<std::size_t> depth_;    // tree_node -> depth (root: 0)
  std::vector<EdgeLoad> edge_;        // tree_node -> edge to its parent
  std::vector<std::size_t> hosts_;    // host index -> tree node (leaf)
};

}  // namespace dmfsgd::netsim
