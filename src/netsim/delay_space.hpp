// Synthetic Internet delay space.
//
// Substitute for the unavailable Meridian/Harvard RTT traces (see DESIGN.md
// §3).  Nodes live in a low-dimensional geometric space organized in
// clusters (continents / metro areas); an RTT is
//
//   rtt(i, j) = detour_ij * propagation(i, j) + access_i + access_j
//
// where propagation is the Euclidean distance scaled to milliseconds,
// access delays model last-mile links, and the symmetric detour factor
// models routing-policy path inflation (mild triangle-inequality
// violations).  The construction is intentionally close to the models used
// to explain why measured RTT matrices have low effective rank: a
// d-dimensional embedding contributes O(d) rank, access delays rank 2 and
// the cluster structure a handful of block components.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace dmfsgd::netsim {

struct DelaySpaceConfig {
  std::size_t node_count = 200;
  std::size_t continent_count = 4;   ///< top-level regions, far apart
  std::size_t cluster_count = 8;     ///< metro areas, spread over continents
  std::size_t dimensions = 3;        ///< embedding dimension
  double cluster_radius_ms = 15.0;   ///< spread of nodes around their cluster
  double continent_radius_ms = 25.0; ///< spread of clusters inside a continent
  double world_radius_ms = 120.0;    ///< spread of continent centers
  double min_access_ms = 0.5;        ///< last-mile delay lower bound
  double access_lognormal_mu = 1.0;  ///< lognormal access delay (≈ e^1 ≈ 2.7ms)
  double access_lognormal_sigma = 0.75;
  /// Routing-policy path inflation splits into a *cluster-pair* component
  /// (AS-level detours shared by whole regions — correlated, hence learnable
  /// by the factorization, matching the strong low-rankness of real RTT
  /// matrices) and a small per-pair jitter (irreducible idiosyncrasy).
  double detour_cluster_sigma = 0.12;
  double detour_pair_sigma = 0.03;
  std::uint64_t seed = 1;
};

/// Immutable synthetic delay space.  Construction materializes per-node
/// positions and access delays; pairwise RTTs are computed on demand except
/// for the symmetric detour factors which are drawn lazily per pair from a
/// pair-keyed hash so that the full n x n matrix never needs to be stored to
/// stay consistent.
class DelaySpace {
 public:
  explicit DelaySpace(const DelaySpaceConfig& config);

  [[nodiscard]] std::size_t NodeCount() const noexcept { return access_ms_.size(); }

  /// Ground-truth RTT in milliseconds between distinct nodes i and j
  /// (symmetric, > 0).  Throws std::out_of_range on bad indices and
  /// std::invalid_argument if i == j.
  [[nodiscard]] double Rtt(std::size_t i, std::size_t j) const;

  /// Cluster id of a node (used by tests to check intra < inter RTTs).
  [[nodiscard]] std::size_t Cluster(std::size_t i) const;

  /// Materializes the full RTT matrix (diagonal = NaN).
  [[nodiscard]] linalg::Matrix ToMatrix() const;

 private:
  [[nodiscard]] double Propagation(std::size_t i, std::size_t j) const noexcept;
  [[nodiscard]] double DetourFactor(std::size_t i, std::size_t j) const noexcept;

  std::vector<std::vector<double>> positions_;  // node -> coordinates (ms units)
  std::vector<double> access_ms_;               // node -> last-mile delay
  std::vector<std::size_t> cluster_;            // node -> cluster id
  double detour_cluster_sigma_;
  double detour_pair_sigma_;
  std::uint64_t detour_seed_;
};

}  // namespace dmfsgd::netsim
