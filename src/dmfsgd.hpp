// The DMFSGD public umbrella header: include this, and only this.
//
// Applications embedding the system — the quickstart is the reference
// client — get the supported surface from one include; everything not
// re-exported here is an internal layer whose headers may move or change
// between versions without notice (the delivery-channel stack, the wire
// codec, the netsim fabric, the linalg kernels, the sparse round
// compiler, ...).
//
// Stability notes use three grades:
//   [stable]   — supported API; changes will be additive or versioned.
//   [evolving] — supported, but shapes may still change as the system
//                grows; expect mechanical call-site fixes on upgrade.
//   (internal layers carry no grade because they are not re-exported.)
#pragma once

// -- shared protocol configuration ------------------------------------------
// core::ProtocolConfig            [stable]   the knobs every deployment form
//                                            shares (rank, eta/lambda/loss,
//                                            tau, seed, burst, coalescing,
//                                            compiled rounds)
// core::ValidateProtocolConfig    [stable]   the ONE validator those knobs go
//                                            through, whoever embeds them
#include "core/protocol_config.hpp"

// -- datasets ---------------------------------------------------------------
// datasets::Dataset               [stable]   ground-truth matrix + metadata
// datasets::Metric, MetricName    [stable]
// datasets::ClassOf               [stable]   the paper's binary class rule
// datasets::MakeMeridian          [stable]   synthetic clustered RTT space
// datasets::MakeHpS3              [stable]   synthetic ABW space
// datasets::MakeHarvard           [stable]   dynamic RTT trace
// datasets::MakeEuclideanRtt      [evolving] huge-n procedural matrices
// datasets::LoadDataset           [stable]   bring-your-own matrix
#include "datasets/dataset.hpp"
#include "datasets/harvard.hpp"
#include "datasets/hps3.hpp"
#include "datasets/io.hpp"
#include "datasets/meridian.hpp"
#include "datasets/procedural.hpp"

// -- deployment drivers -----------------------------------------------------
// core::SimulationConfig          [stable]   ProtocolConfig + driver knobs
// core::DmfsgdSimulation          [stable]   the round-based driver
// core::PredictionMode            [stable]
// core::AsyncSimulation           [evolving] event-driven async driver
// core::CoordinateSnapshot,
//   SaveSnapshot, LoadSnapshot    [stable]   full-image persistence (CSV)
// core::LevelOf / multiclass      [evolving] C-class threshold readout
#include "core/async_simulation.hpp"
#include "core/multiclass.hpp"
#include "core/simulation.hpp"
#include "core/snapshot.hpp"

// -- the resident service (DESIGN.md §17) -----------------------------------
// svc::ServiceConfig              [stable]   ProtocolConfig + serving knobs
// svc::CoordinateService          [stable]   ingest / query / snapshot planes
// svc::SnapshotLogWriter,
//   RecoverSnapshotLog            [evolving] the delta log underneath it —
//                                            exposed for tooling that reads
//                                            or rebuilds service state
#include "svc/coordinate_service.hpp"

// -- the query plane --------------------------------------------------------
// ann::PeerIndex, PeerIndexOptions [stable]  drift-tolerant k-NN peer index
// eval::KnnResult, KnnOrdering,
//   RegressionOrderingFor          [stable]
// eval::BruteForceKnn*             [stable]  the exact oracle
#include "ann/peer_index.hpp"

// -- evaluation -------------------------------------------------------------
// eval::CollectScoredPairs        [stable]   test pairs off any deployment
// eval::Auc                       [stable]
// eval::ConfusionFromScores       [stable]
// eval::PrecisionRecallCurve,
//   AveragePrecision              [stable]
// eval::SummarizeRelativeError,
//   RelativeErrorCdf              [stable]   regression-mode metrics
#include "eval/confusion.hpp"
#include "eval/precision_recall.hpp"
#include "eval/regression_metrics.hpp"
#include "eval/roc.hpp"
#include "eval/scored_pairs.hpp"

// -- client utilities -------------------------------------------------------
// common::Flags                   [stable]   --key=value CLI parsing
// common::ProtocolFlagNames,
//   WithProtocolFlagNames,
//   ApplyProtocolFlags            [stable]   the shared protocol-flag set
// common::Rng                     [stable]   the deterministic RNG
// common::Mean/Median/Percentile  [stable]   summary statistics
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
