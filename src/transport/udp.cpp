#include "transport/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

namespace dmfsgd::transport {

namespace {

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

sockaddr_in LoopbackAddress(std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return address;
}

constexpr std::size_t kMaxDatagramBytes = 65536;

}  // namespace

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    ThrowErrno("UdpSocket: socket");
  }
  sockaddr_in address = LoopbackAddress(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    Close();
    ThrowErrno("UdpSocket: bind");
  }
  sockaddr_in bound{};
  socklen_t length = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &length) != 0) {
    Close();
    ThrowErrno("UdpSocket: getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() { Close(); }

void UdpSocket::Close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

std::size_t UdpSocket::SetReceiveBufferBytes(std::size_t bytes) {
  if (fd_ < 0) {
    throw std::runtime_error("UdpSocket::SetReceiveBufferBytes: socket is closed");
  }
  const int requested = static_cast<int>(
      std::min<std::size_t>(bytes, std::numeric_limits<int>::max()));
  // Best effort: the kernel clamps to net.core.rmem_max; no error if smaller.
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &requested, sizeof(requested));
  int granted = 0;
  socklen_t length = sizeof(granted);
  if (::getsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &granted, &length) != 0) {
    ThrowErrno("UdpSocket::SetReceiveBufferBytes: getsockopt");
  }
  return static_cast<std::size_t>(granted);
}

void UdpSocket::SendTo(std::span<const std::byte> payload, std::uint16_t port) {
  if (payload.empty()) {
    throw std::invalid_argument("UdpSocket::SendTo: empty payload");
  }
  if (fd_ < 0) {
    throw std::runtime_error("UdpSocket::SendTo: socket is closed");
  }
  const sockaddr_in address = LoopbackAddress(port);
  const ssize_t sent =
      ::sendto(fd_, payload.data(), payload.size(), 0,
               reinterpret_cast<const sockaddr*>(&address), sizeof(address));
  if (sent < 0 || static_cast<std::size_t>(sent) != payload.size()) {
    ThrowErrno("UdpSocket::SendTo: sendto");
  }
}

std::optional<Datagram> UdpSocket::Receive(int timeout_ms) {
  if (fd_ < 0) {
    throw std::runtime_error("UdpSocket::Receive: socket is closed");
  }
  pollfd poller{fd_, POLLIN, 0};
  const int ready = ::poll(&poller, 1, timeout_ms);
  if (ready < 0) {
    ThrowErrno("UdpSocket::Receive: poll");
  }
  if (ready == 0) {
    return std::nullopt;
  }
  Datagram datagram;
  datagram.payload.resize(kMaxDatagramBytes);
  sockaddr_in sender{};
  socklen_t sender_length = sizeof(sender);
  const ssize_t received =
      ::recvfrom(fd_, datagram.payload.data(), datagram.payload.size(), 0,
                 reinterpret_cast<sockaddr*>(&sender), &sender_length);
  if (received < 0) {
    ThrowErrno("UdpSocket::Receive: recvfrom");
  }
  datagram.payload.resize(static_cast<std::size_t>(received));
  datagram.sender_port = ntohs(sender.sin_port);
  return datagram;
}

}  // namespace dmfsgd::transport
