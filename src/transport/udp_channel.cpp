#include "transport/udp_channel.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/wire.hpp"

namespace dmfsgd::transport {

std::uint16_t UdpDeliveryChannel::Register(core::NodeId id) {
  if (sockets_.contains(id)) {
    throw std::invalid_argument("UdpDeliveryChannel::Register: duplicate node " +
                                std::to_string(id));
  }
  const auto [it, inserted] = sockets_.emplace(id, UdpSocket(0));
  contact_[id] = it->second.Port();
  return it->second.Port();
}

std::uint16_t UdpDeliveryChannel::Port(core::NodeId id) const {
  const auto it = sockets_.find(id);
  if (it == sockets_.end()) {
    throw std::out_of_range("UdpDeliveryChannel::Port: unregistered node " +
                            std::to_string(id));
  }
  return it->second.Port();
}

void UdpDeliveryChannel::AddContact(core::NodeId id, std::uint16_t port) {
  contact_[id] = port;
}

void UdpDeliveryChannel::SendFrame(UdpSocket& socket,
                                   std::span<const std::byte> frame,
                                   std::uint16_t port, std::size_t messages) {
  socket.SendTo(frame, port);
  ++datagrams_sent_;
  messages_sent_ += messages;
}

void UdpDeliveryChannel::Send(core::NodeId from, core::NodeId to,
                              core::ProtocolMessage message) {
  const auto socket = sockets_.find(from);
  if (socket == sockets_.end()) {
    throw std::invalid_argument("UdpDeliveryChannel::Send: node " +
                                std::to_string(from) + " is not local");
  }
  const auto port = contact_.find(to);
  if (port == contact_.end()) {
    throw std::runtime_error("UdpDeliveryChannel::Send: no contact for node " +
                             std::to_string(to));
  }
  SendFrame(socket->second, core::EncodeMessage(message), port->second, 1);
}

void UdpDeliveryChannel::SendBatch(core::MessageBatch batch) {
  if (batch.items.empty()) {
    return;
  }
  if (batch.items.size() == 1) {
    Send(batch.items.front().from, batch.to,
         std::move(batch.items.front().message));
    return;
  }
  const auto socket = sockets_.find(batch.items.front().from);
  if (socket == sockets_.end()) {
    throw std::invalid_argument(
        "UdpDeliveryChannel::SendBatch: node " +
        std::to_string(batch.items.front().from) + " is not local");
  }
  const auto port = contact_.find(batch.to);
  if (port == contact_.end()) {
    throw std::runtime_error(
        "UdpDeliveryChannel::SendBatch: no contact for node " +
        std::to_string(batch.to));
  }
  // Greedy packing over messages encoded exactly once: add encoded buffers
  // while the frame stays under budget (and under the wire item cap), ship,
  // repeat.  Order inside and across datagrams is the envelope order.
  std::vector<std::vector<std::byte>> packed;
  std::size_t packed_bytes = 4;  // frame header headroom
  auto flush = [&] {
    if (packed.empty()) {
      return;
    }
    SendFrame(socket->second, core::EncodeBatchFrame(packed), port->second,
              packed.size());
    packed.clear();
    packed_bytes = 4;
  };
  for (const core::BatchItem& item : batch.items) {
    std::vector<std::byte> wire = core::EncodeMessage(item.message);
    const std::size_t bytes = wire.size() + 4;
    if (!packed.empty() && (packed_bytes + bytes > kMaxBatchDatagramBytes ||
                            packed.size() >= core::kMaxWireBatchItems)) {
      flush();
    }
    packed.push_back(std::move(wire));
    packed_bytes += bytes;
  }
  flush();
}

std::size_t UdpDeliveryChannel::Pump(std::size_t max_datagrams) {
  std::size_t handled = 0;
  for (auto& [id, socket] : sockets_) {
    while (handled < max_datagrams) {
      const auto datagram = socket.Receive(/*timeout_ms=*/0);
      if (!datagram.has_value()) {
        break;
      }
      ++handled;
      try {
        core::MessageBatch batch;
        batch.to = id;
        if (core::PeekType(datagram->payload) == core::MessageType::kMessageBatch) {
          for (core::ProtocolMessage& message :
               core::DecodeBatchFrame(datagram->payload)) {
            batch.items.push_back(
                core::BatchItem{core::SenderOf(message), std::move(message)});
          }
        } else {
          core::ProtocolMessage message = core::DecodeMessage(datagram->payload);
          batch.items.push_back(
              core::BatchItem{core::SenderOf(message), std::move(message)});
        }
        // Learn the return routes before dispatching (the sink may answer a
        // prober it was never introduced to) — but never let a datagram's
        // claimed sender id re-route a *locally registered* node: its
        // contact stays pinned to its own socket, so a forged id cannot
        // hijack local traffic.
        for (const core::BatchItem& item : batch.items) {
          if (!sockets_.contains(item.from)) {
            contact_[item.from] = datagram->sender_port;
          }
        }
        DeliverBatch(batch);
      } catch (const core::WireError&) {
        ++malformed_datagrams_;
      } catch (const std::invalid_argument&) {
        // Well-formed but semantically foreign (e.g. a rank from another
        // deployment): the sink rejected it; count and drop, never crash.
        ++malformed_datagrams_;
      } catch (const std::out_of_range&) {
        ++malformed_datagrams_;  // e.g. a node id outside this deployment
      }
    }
  }
  return handled;
}

}  // namespace dmfsgd::transport
