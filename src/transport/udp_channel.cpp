#include "transport/udp_channel.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/wire.hpp"

namespace dmfsgd::transport {

std::uint16_t UdpDeliveryChannel::Register(core::NodeId id) {
  if (sockets_.contains(id)) {
    throw std::invalid_argument("UdpDeliveryChannel::Register: duplicate node " +
                                std::to_string(id));
  }
  const auto [it, inserted] = sockets_.emplace(id, UdpSocket(0));
  contact_[id] = it->second.Port();
  return it->second.Port();
}

std::uint16_t UdpDeliveryChannel::Port(core::NodeId id) const {
  const auto it = sockets_.find(id);
  if (it == sockets_.end()) {
    throw std::out_of_range("UdpDeliveryChannel::Port: unregistered node " +
                            std::to_string(id));
  }
  return it->second.Port();
}

void UdpDeliveryChannel::AddContact(core::NodeId id, std::uint16_t port) {
  contact_[id] = port;
}

void UdpDeliveryChannel::Send(core::NodeId from, core::NodeId to,
                              core::ProtocolMessage message) {
  const auto socket = sockets_.find(from);
  if (socket == sockets_.end()) {
    throw std::invalid_argument("UdpDeliveryChannel::Send: node " +
                                std::to_string(from) + " is not local");
  }
  const auto port = contact_.find(to);
  if (port == contact_.end()) {
    throw std::runtime_error("UdpDeliveryChannel::Send: no contact for node " +
                             std::to_string(to));
  }
  socket->second.SendTo(core::EncodeMessage(message), port->second);
}

std::size_t UdpDeliveryChannel::Pump(std::size_t max_datagrams) {
  std::size_t handled = 0;
  for (auto& [id, socket] : sockets_) {
    while (handled < max_datagrams) {
      const auto datagram = socket.Receive(/*timeout_ms=*/0);
      if (!datagram.has_value()) {
        break;
      }
      ++handled;
      try {
        core::ProtocolMessage message = core::DecodeMessage(datagram->payload);
        // Learn the return route before dispatching (the sink may answer a
        // prober it was never introduced to) — but never let a datagram's
        // claimed sender id re-route a *locally registered* node: its
        // contact stays pinned to its own socket, so a forged id cannot
        // hijack local traffic.
        const core::NodeId sender = core::SenderOf(message);
        if (!sockets_.contains(sender)) {
          contact_[sender] = datagram->sender_port;
        }
        DeliverNow(sender, id, message);
      } catch (const core::WireError&) {
        ++malformed_datagrams_;
      } catch (const std::invalid_argument&) {
        // Well-formed but semantically foreign (e.g. a rank from another
        // deployment): the sink rejected it; count and drop, never crash.
        ++malformed_datagrams_;
      } catch (const std::out_of_range&) {
        ++malformed_datagrams_;  // e.g. a node id outside this deployment
      }
    }
  }
  return handled;
}

}  // namespace dmfsgd::transport
