// DeliveryChannel over real UDP sockets.
//
// The same core::DeliveryChannel seam the simulators plug into, backed by
// loopback datagrams: Send() encodes a protocol message through the wire
// codec and ships it from the sender's socket to the receiver's port; Pump()
// drains pending datagrams, decodes them, and hands them to the bound sink.
// This lets the full deployment engine — membership, strategies, churn, the
// Algorithm 1/2 state machines — run unchanged over an actual network stack
// (tests do exactly that), and is the framing layer UdpDmfsgdPeer builds on.
//
// Return routes are learned: every incoming datagram maps its embedded
// sender id to the observed source port, so a node can answer probers it
// was never introduced to.  Malformed datagrams (truncated, bad version,
// garbage lengths) are counted and dropped — a corrupt packet can never
// crash the process or poison coordinates (core/wire.hpp checks).
#pragma once

#include <cstdint>
#include <map>

#include "core/delivery.hpp"
#include "transport/udp.hpp"

namespace dmfsgd::transport {

class UdpDeliveryChannel final : public core::DeliveryChannel {
 public:
  /// Opens a loopback socket for a local node and returns its bound port.
  /// Throws std::invalid_argument if the id is already registered.
  std::uint16_t Register(core::NodeId id);

  /// The bound port of a registered local node; throws std::out_of_range.
  [[nodiscard]] std::uint16_t Port(core::NodeId id) const;

  /// Registers (or updates) the contact port of a node — typically a remote
  /// peer in another process; local nodes are contactable automatically.
  void AddContact(core::NodeId id, std::uint16_t port);
  [[nodiscard]] bool HasContact(core::NodeId id) const {
    return contact_.contains(id);
  }

  /// Encodes and ships one message.  Throws std::invalid_argument if `from`
  /// is not a registered local node and std::runtime_error if `to` has no
  /// known contact.
  void Send(core::NodeId from, core::NodeId to,
            core::ProtocolMessage message) override;

  /// Ships an envelope as packed batch-frame datagrams (DESIGN.md §13):
  /// messages are greedily packed until kMaxBatchDatagramBytes, so a burst
  /// of replies to one destination costs one datagram instead of one per
  /// message.  One-item envelopes go out in the plain single-message format.
  /// Every datagram of a split batch leaves from the *first* item's sender
  /// socket (a batch shares one wire hop); per-item sender ids stay intact
  /// inside the frames.  Throws like Send.
  void SendBatch(core::MessageBatch batch) override;

  /// Payload budget per batched datagram — under the 64 KiB UDP limit with
  /// headroom, and the split bound of SendBatch.
  static constexpr std::size_t kMaxBatchDatagramBytes = 60000;

  [[nodiscard]] const char* Name() const noexcept override { return "udp"; }

  /// Services up to `max_datagrams` pending datagrams across all local
  /// sockets without blocking, delivering decoded messages to the sink.
  /// Returns the number of datagrams handled (malformed ones included).
  std::size_t Pump(std::size_t max_datagrams = 64);

  [[nodiscard]] std::size_t MalformedDatagrams() const noexcept {
    return malformed_datagrams_;
  }
  [[nodiscard]] std::size_t LocalNodeCount() const noexcept {
    return sockets_.size();
  }
  /// Datagrams shipped (single messages and packed batches both count 1 per
  /// wire send) — the quantity batching reduces.
  [[nodiscard]] std::size_t DatagramsSent() const noexcept {
    return datagrams_sent_;
  }
  /// Messages carried by those datagrams (>= DatagramsSent(); the gap is
  /// the packing win).
  [[nodiscard]] std::size_t MessagesSent() const noexcept {
    return messages_sent_;
  }

 private:
  void SendFrame(UdpSocket& socket, std::span<const std::byte> frame,
                 std::uint16_t port, std::size_t messages);

  std::map<core::NodeId, UdpSocket> sockets_;       ///< local nodes
  std::map<core::NodeId, std::uint16_t> contact_;   ///< id -> port (all known)
  std::size_t malformed_datagrams_ = 0;
  std::size_t datagrams_sent_ = 0;
  std::size_t messages_sent_ = 0;
};

}  // namespace dmfsgd::transport
