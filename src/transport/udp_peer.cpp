#include "transport/udp_peer.hpp"

#include <stdexcept>
#include <utility>

namespace dmfsgd::transport {

UdpDmfsgdPeer::UdpDmfsgdPeer(const UdpPeerConfig& config, MeasurementFn measure)
    : config_(config),
      measure_(std::move(measure)),
      rng_(config.seed),
      node_(config.id, config.rank, rng_) {
  if (!measure_) {
    throw std::invalid_argument("UdpDmfsgdPeer: measurement callback required");
  }
  (void)channel_.Register(config_.id);
  channel_.BindSink(
      [this](core::NodeId from, core::NodeId /*to*/,
             const core::ProtocolMessage& message) { Handle(from, message); });
}

void UdpDmfsgdPeer::AddNeighbor(core::NodeId id, std::uint16_t port) {
  if (id == config_.id) {
    throw std::invalid_argument("UdpDmfsgdPeer::AddNeighbor: cannot neighbor self");
  }
  neighbors_.push_back(id);
  channel_.AddContact(id, port);
}

void UdpDmfsgdPeer::Probe() {
  if (neighbors_.empty()) {
    return;
  }
  const core::NodeId target =
      neighbors_[rng_.UniformInt(static_cast<std::uint64_t>(neighbors_.size()))];
  if (config_.symmetric_metric) {
    channel_.Send(config_.id, target, core::RttProbeRequest{config_.id});
  } else {
    channel_.Send(config_.id, target,
                  core::AbwProbeRequest{config_.id, node_.UCopy(), config_.tau});
  }
}

std::size_t UdpDmfsgdPeer::Pump(std::size_t max_datagrams) {
  return channel_.Pump(max_datagrams);
}

void UdpDmfsgdPeer::Handle(core::NodeId from, const core::ProtocolMessage& message) {
  // A hostile datagram that decodes but doesn't fit this deployment (e.g. a
  // foreign rank) must never take the node down: semantic rejects are
  // counted and the message dropped.
  try {
    std::visit(
        [&](const auto& typed) {
          using T = std::decay_t<decltype(typed)>;
          if constexpr (std::is_same_v<T, core::RttProbeRequest>) {
            channel_.Send(config_.id, from,
                          core::RttProbeReply{config_.id, node_.UCopy(),
                                              node_.VCopy()});
          } else if constexpr (std::is_same_v<T, core::RttProbeReply>) {
            // Algorithm 1: the prober measures x_ij itself (in a real agent
            // the request/reply timing *is* the measurement; here the
            // callback supplies it).
            const double x = measure_(config_.id, typed.target);
            node_.RttUpdate(x, typed.u, typed.v, config_.params);
            ++measurements_applied_;
          } else if constexpr (std::is_same_v<T, core::AbwProbeRequest>) {
            // Algorithm 2, target side: infer x_ij, reply with the
            // pre-update v_j (step 3 sends before step 4 updates).
            const double x = measure_(typed.prober, config_.id);
            channel_.Send(config_.id, from,
                          core::AbwProbeReply{config_.id, x, node_.VCopy()});
            node_.AbwTargetUpdate(x, typed.u, config_.params);
            ++measurements_applied_;
          } else {
            node_.AbwProberUpdate(typed.measurement, typed.v, config_.params);
          }
        },
        message);
  } catch (const std::invalid_argument&) {
    ++rejected_messages_;  // e.g. rank mismatch from a foreign deployment
  }
}

}  // namespace dmfsgd::transport
