#include "transport/udp_peer.hpp"

#include <stdexcept>

#include "core/wire.hpp"

namespace dmfsgd::transport {

UdpDmfsgdPeer::UdpDmfsgdPeer(const UdpPeerConfig& config, MeasurementFn measure)
    : config_(config),
      measure_(std::move(measure)),
      rng_(config.seed),
      node_(config.id, config.rank, rng_),
      socket_(0) {
  if (!measure_) {
    throw std::invalid_argument("UdpDmfsgdPeer: measurement callback required");
  }
}

void UdpDmfsgdPeer::AddNeighbor(core::NodeId id, std::uint16_t port) {
  if (id == config_.id) {
    throw std::invalid_argument("UdpDmfsgdPeer::AddNeighbor: cannot neighbor self");
  }
  neighbors_.emplace_back(id, port);
  contact_[id] = port;
}

void UdpDmfsgdPeer::Probe() {
  if (neighbors_.empty()) {
    return;
  }
  const auto& [id, port] =
      neighbors_[rng_.UniformInt(static_cast<std::uint64_t>(neighbors_.size()))];
  (void)id;
  if (config_.symmetric_metric) {
    socket_.SendTo(core::Encode(core::RttProbeRequest{config_.id}), port);
  } else {
    socket_.SendTo(
        core::Encode(core::AbwProbeRequest{config_.id, node_.UCopy(), config_.tau}),
        port);
  }
}

std::size_t UdpDmfsgdPeer::Pump(std::size_t max_datagrams) {
  std::size_t handled = 0;
  while (handled < max_datagrams) {
    const auto datagram = socket_.Receive(/*timeout_ms=*/0);
    if (!datagram.has_value()) {
      break;
    }
    Handle(*datagram);
    ++handled;
  }
  return handled;
}

void UdpDmfsgdPeer::Handle(const Datagram& datagram) {
  // A hostile or corrupted datagram must never take the node down: decode
  // errors and rank mismatches are counted and the packet dropped.
  try {
    switch (core::PeekType(datagram.payload)) {
      case core::MessageType::kRttProbeRequest: {
        const auto request = core::DecodeRttProbeRequest(datagram.payload);
        (void)request;
        socket_.SendTo(core::Encode(core::RttProbeReply{config_.id, node_.UCopy(),
                                                        node_.VCopy()}),
                       datagram.sender_port);
        break;
      }
      case core::MessageType::kRttProbeReply: {
        const auto reply = core::DecodeRttProbeReply(datagram.payload);
        // Algorithm 1: the prober measures x_ij itself (in a real agent the
        // request/reply timing *is* the measurement; here the callback
        // supplies it).
        const double x = measure_(config_.id, reply.target);
        node_.RttUpdate(x, reply.u, reply.v, config_.params);
        ++measurements_applied_;
        break;
      }
      case core::MessageType::kAbwProbeRequest: {
        const auto request = core::DecodeAbwProbeRequest(datagram.payload);
        // Algorithm 2, target side: infer x_ij, reply with the pre-update
        // v_j (step 3 sends before step 4 updates).
        const double x = measure_(request.prober, config_.id);
        socket_.SendTo(
            core::Encode(core::AbwProbeReply{config_.id, x, node_.VCopy()}),
            datagram.sender_port);
        node_.AbwTargetUpdate(x, request.u, config_.params);
        ++measurements_applied_;
        break;
      }
      case core::MessageType::kAbwProbeReply: {
        const auto reply = core::DecodeAbwProbeReply(datagram.payload);
        node_.AbwProberUpdate(reply.measurement, reply.v, config_.params);
        break;
      }
    }
  } catch (const core::WireError&) {
    ++malformed_datagrams_;
  } catch (const std::invalid_argument&) {
    ++malformed_datagrams_;  // e.g. rank mismatch from a foreign deployment
  }
}

}  // namespace dmfsgd::transport
