#include "transport/udp_peer.hpp"

#include <stdexcept>
#include <utility>

#include "linalg/kernels.hpp"

namespace dmfsgd::transport {

namespace {

/// Throwing pass-through so the shared protocol knobs are validated (by the
/// one ValidateProtocolConfig) before any member that depends on them is
/// built.
const UdpPeerConfig& RequirePeerConfig(const UdpPeerConfig& config) {
  core::ValidateProtocolConfig(config, "UdpDmfsgdPeer");
  return config;
}

}  // namespace

UdpDmfsgdPeer::UdpDmfsgdPeer(const UdpPeerConfig& config, MeasurementFn measure)
    : config_(RequirePeerConfig(config)),
      measure_(std::move(measure)),
      rng_(config.seed),
      node_(config.id, config.rank, rng_) {
  if (!measure_) {
    throw std::invalid_argument("UdpDmfsgdPeer: measurement callback required");
  }
  (void)channel_.Register(config_.id);
  channel_.BindSink(
      [this](const core::MessageBatch& batch) { HandleBatch(batch); });
}

void UdpDmfsgdPeer::AddNeighbor(core::NodeId id, std::uint16_t port) {
  if (id == config_.id) {
    throw std::invalid_argument("UdpDmfsgdPeer::AddNeighbor: cannot neighbor self");
  }
  neighbors_.push_back(id);
  channel_.AddContact(id, port);
}

void UdpDmfsgdPeer::Probe() {
  if (neighbors_.empty()) {
    return;
  }
  auto pick = [&] {
    return neighbors_[rng_.UniformInt(
        static_cast<std::uint64_t>(neighbors_.size()))];
  };
  auto request = [&]() -> core::ProtocolMessage {
    if (config_.symmetric_metric) {
      return core::RttProbeRequest{config_.id};
    }
    return core::AbwProbeRequest{config_.id, node_.UCopy(), config_.tau};
  };
  if (!config_.coalesce_delivery) {
    for (std::size_t b = 0; b < config_.probe_burst; ++b) {
      channel_.Send(config_.id, pick(), request());
    }
    return;
  }
  // Coalesced burst: group the picks by target (first-pick order) so each
  // target gets one packed request datagram — and answers with one packed
  // reply datagram, the envelope the mini-batch fold consumes.
  std::vector<std::pair<core::NodeId, std::size_t>> grouped;
  for (std::size_t b = 0; b < config_.probe_burst; ++b) {
    const core::NodeId target = pick();
    bool found = false;
    for (auto& [id, count] : grouped) {
      if (id == target) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) {
      grouped.emplace_back(target, 1);
    }
  }
  for (const auto& [target, count] : grouped) {
    core::MessageBatch batch;
    batch.to = target;
    for (std::size_t c = 0; c < count; ++c) {
      batch.items.push_back(core::BatchItem{config_.id, request()});
    }
    channel_.SendBatch(std::move(batch));
  }
}

std::size_t UdpDmfsgdPeer::Pump(std::size_t max_datagrams) {
  return channel_.Pump(max_datagrams);
}

void UdpDmfsgdPeer::HandleBatch(const core::MessageBatch& batch) {
  if (!config_.coalesce_delivery || batch.items.size() <= 1) {
    for (const core::BatchItem& item : batch.items) {
      Handle(item.from, item.message);
    }
    return;
  }
  if (config_.compile_rounds) {
    HandleBatchCompiled(batch);
    return;
  }
  // Batched receive (DESIGN.md §13).  Requests are answered as one packed
  // reply batch per prober; replies fold into one mini-batch step — every
  // gradient term evaluated at the pre-batch coordinates, regularization
  // applied once per batch.  A malformed or foreign item (rank mismatch)
  // rejects the whole envelope: its updates are one accumulated step, so
  // item-level salvage would apply half a fold.
  try {
    core::GradientStepBatch du(config_.rank);
    core::GradientStepBatch dv(config_.rank);
    std::size_t applied = 0;  // committed only if the whole fold succeeds
    std::vector<core::MessageBatch> replies;
    auto reply_batch_for = [&](core::NodeId prober) -> core::MessageBatch& {
      for (core::MessageBatch& existing : replies) {
        if (existing.to == prober) {
          return existing;
        }
      }
      replies.emplace_back();
      replies.back().to = prober;
      return replies.back();
    };
    for (const core::BatchItem& item : batch.items) {
      std::visit(
          [&](const auto& typed) {
            using T = std::decay_t<decltype(typed)>;
            if constexpr (std::is_same_v<T, core::RttProbeRequest>) {
              reply_batch_for(typed.prober)
                  .items.push_back(core::BatchItem{
                      config_.id, core::RttProbeReply{config_.id, node_.UCopy(),
                                                      node_.VCopy()}});
            } else if constexpr (std::is_same_v<T, core::RttProbeReply>) {
              const double x = measure_(config_.id, typed.target);
              node_.AccumulateRttUpdate(x, typed.u, typed.v, config_.params, du,
                                        dv);
              ++applied;
            } else if constexpr (std::is_same_v<T, core::AbwProbeRequest>) {
              // All replies of the batch carry the same pre-batch v_j — the
              // mini-batch analogue of Algorithm 2's reply-before-update.
              const double x = measure_(typed.prober, config_.id);
              reply_batch_for(typed.prober)
                  .items.push_back(core::BatchItem{
                      config_.id,
                      core::AbwProbeReply{config_.id, x, node_.VCopy()}});
              node_.AccumulateAbwTargetUpdate(x, typed.u, config_.params, dv);
              ++applied;
            } else {
              node_.AccumulateAbwProberUpdate(typed.measurement, typed.v,
                                              config_.params, du);
            }
          },
          item.message);
    }
    node_.ApplyBatchU(du, config_.params);
    node_.ApplyBatchV(dv, config_.params);
    measurements_applied_ += applied;
    for (core::MessageBatch& reply : replies) {
      channel_.SendBatch(std::move(reply));
    }
  } catch (const std::invalid_argument&) {
    ++rejected_messages_;
  }
}

void UdpDmfsgdPeer::HandleBatchCompiled(const core::MessageBatch& batch) {
  // Compiled envelope handling (DESIGN.md §14): per-message update
  // semantics — each item applies its own gradient step, so with the
  // scalar kernel table the node state matches the per-item Handle() loop
  // bit for bit — but the kernel table is resolved once per envelope and
  // requests are still answered as packed reply batches (the coalesced
  // framing stays on the wire).  Because the steps are per-message, a
  // foreign item (rank mismatch) rejects only itself, exactly like the
  // per-message path.
  const linalg::KernelOps& kernels = linalg::ActiveKernels();
  std::vector<core::MessageBatch> replies;
  auto reply_batch_for = [&](core::NodeId prober) -> core::MessageBatch& {
    for (core::MessageBatch& existing : replies) {
      if (existing.to == prober) {
        return existing;
      }
    }
    replies.emplace_back();
    replies.back().to = prober;
    return replies.back();
  };
  for (const core::BatchItem& item : batch.items) {
    try {
      std::visit(
          [&](const auto& typed) {
            using T = std::decay_t<decltype(typed)>;
            if constexpr (std::is_same_v<T, core::RttProbeRequest>) {
              reply_batch_for(typed.prober)
                  .items.push_back(core::BatchItem{
                      config_.id, core::RttProbeReply{config_.id, node_.UCopy(),
                                                      node_.VCopy()}});
            } else if constexpr (std::is_same_v<T, core::RttProbeReply>) {
              const double x = measure_(config_.id, typed.target);
              node_.RttUpdateWith(kernels, x, typed.u, typed.v, config_.params);
              ++measurements_applied_;
            } else if constexpr (std::is_same_v<T, core::AbwProbeRequest>) {
              // Algorithm 2, target side: reply carries the pre-update v_j.
              const double x = measure_(typed.prober, config_.id);
              reply_batch_for(typed.prober)
                  .items.push_back(core::BatchItem{
                      config_.id,
                      core::AbwProbeReply{config_.id, x, node_.VCopy()}});
              node_.AbwTargetUpdateWith(kernels, x, typed.u, config_.params);
              ++measurements_applied_;
            } else {
              node_.AbwProberUpdateWith(kernels, typed.measurement, typed.v,
                                        config_.params);
            }
          },
          item.message);
    } catch (const std::invalid_argument&) {
      ++rejected_messages_;
    }
  }
  for (core::MessageBatch& reply : replies) {
    channel_.SendBatch(std::move(reply));
  }
}

void UdpDmfsgdPeer::Handle(core::NodeId from, const core::ProtocolMessage& message) {
  // A hostile datagram that decodes but doesn't fit this deployment (e.g. a
  // foreign rank) must never take the node down: semantic rejects are
  // counted and the message dropped.
  try {
    std::visit(
        [&](const auto& typed) {
          using T = std::decay_t<decltype(typed)>;
          if constexpr (std::is_same_v<T, core::RttProbeRequest>) {
            channel_.Send(config_.id, from,
                          core::RttProbeReply{config_.id, node_.UCopy(),
                                              node_.VCopy()});
          } else if constexpr (std::is_same_v<T, core::RttProbeReply>) {
            // Algorithm 1: the prober measures x_ij itself (in a real agent
            // the request/reply timing *is* the measurement; here the
            // callback supplies it).
            const double x = measure_(config_.id, typed.target);
            node_.RttUpdate(x, typed.u, typed.v, config_.params);
            ++measurements_applied_;
          } else if constexpr (std::is_same_v<T, core::AbwProbeRequest>) {
            // Algorithm 2, target side: infer x_ij, reply with the
            // pre-update v_j (step 3 sends before step 4 updates).
            const double x = measure_(typed.prober, config_.id);
            channel_.Send(config_.id, from,
                          core::AbwProbeReply{config_.id, x, node_.VCopy()});
            node_.AbwTargetUpdate(x, typed.u, config_.params);
            ++measurements_applied_;
          } else {
            node_.AbwProberUpdate(typed.measurement, typed.v, config_.params);
          }
        },
        message);
  } catch (const std::invalid_argument&) {
    ++rejected_messages_;
  }
}

}  // namespace dmfsgd::transport
