// A DMFSGD node speaking the wire protocol over a real UDP socket.
//
// This is what a deployed agent looks like: a DmfsgdNode (two length-r
// rows), a UdpDeliveryChannel for framing (encode/decode, socket, learned
// return routes), a table of neighbor node-ids, and a measurement callback
// (in production: run ping / send a UDP train; here: supplied by the
// caller, typically backed by a netsim substrate).  The peer is the
// node-local half of the protocol — the same exchange reactions the
// deployment engine executes globally, driven through the same
// DeliveryChannel interface the simulators use.
//
// The peer is single-threaded and non-blocking: call Probe() to launch an
// exchange toward a random neighbor, and Pump() regularly to service
// incoming datagrams (answering probe requests from others and consuming
// replies to our own probes).  Malformed datagrams are counted and dropped
// — a corrupt packet can never crash the node or poison its coordinates
// (core/wire.hpp length/version checks; rank checks in DmfsgdNode).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "core/node.hpp"
#include "core/protocol_config.hpp"
#include "transport/udp_channel.hpp"

namespace dmfsgd::transport {

/// Produces the training measurement for a directed pair: a ±1 class label
/// in classification mode or a τ-normalized quantity in regression mode.
using MeasurementFn =
    std::function<double(core::NodeId prober, core::NodeId target)>;

/// The UDP peer's config: the shared protocol knobs (rank, η/λ/loss, τ,
/// seed, probe_burst, coalesce_delivery, compile_rounds — see
/// core/protocol_config.hpp; validated by the one shared
/// ValidateProtocolConfig) plus the node-local knobs below.
///
/// Peer semantics of the inherited knobs: τ is carried in ABW probe
/// requests (the probing rate); probe_burst is the probes launched per
/// Probe() call (targets picked independently with replacement — a burst
/// measures some neighbors repeatedly, legitimate repeated samples of the
/// same path); coalesce_delivery packs a burst's same-target probes into
/// one datagram, answers a request batch with one packed reply batch, and
/// folds a received reply batch into a single mini-batch gradient step
/// (DESIGN.md §13); compile_rounds runs a packed envelope (which needs
/// coalesce framing to exist on the wire at all) through one hoisted
/// kernel table with per-message update semantics — the UDP twin of the
/// engine's window compile, selected *instead of* the mini-batch fold
/// (DESIGN.md §14).
struct UdpPeerConfig : core::ProtocolConfig {
  /// A standalone peer defaults τ to 1 (a deployment overrides it); the
  /// simulators inherit ProtocolConfig's unset 0 and force callers to pick.
  UdpPeerConfig() { tau = 1.0; }

  core::NodeId id = 0;
  /// True for symmetric sender-measured metrics (Algorithm 1 / RTT);
  /// false for target-measured metrics (Algorithm 2 / ABW).
  bool symmetric_metric = true;
};

class UdpDmfsgdPeer {
 public:
  /// Binds an ephemeral loopback port.  `measure` must outlive the peer.
  UdpDmfsgdPeer(const UdpPeerConfig& config, MeasurementFn measure);

  [[nodiscard]] std::uint16_t Port() const { return channel_.Port(config_.id); }
  [[nodiscard]] core::NodeId Id() const noexcept { return config_.id; }

  /// Registers a neighbor's contact address.
  void AddNeighbor(core::NodeId id, std::uint16_t port);
  [[nodiscard]] std::size_t NeighborCount() const noexcept {
    return neighbors_.size();
  }

  /// Sends one probe to a uniformly random neighbor (no-op without
  /// neighbors).  The exchange completes later, through Pump().
  void Probe();

  /// Services up to `max_datagrams` pending datagrams without blocking.
  /// Returns the number handled.
  std::size_t Pump(std::size_t max_datagrams = 64);

  /// x̂ toward a remote node whose v row is known (for serving predictions).
  [[nodiscard]] double Predict(std::span<const double> v_remote) const {
    return node_.Predict(v_remote);
  }
  [[nodiscard]] const core::DmfsgdNode& node() const noexcept { return node_; }

  [[nodiscard]] std::size_t MeasurementsApplied() const noexcept {
    return measurements_applied_;
  }
  /// Wire-level rejects (channel) plus semantic rejects (rank mismatches
  /// from foreign deployments).
  [[nodiscard]] std::size_t MalformedDatagrams() const noexcept {
    return channel_.MalformedDatagrams() + rejected_messages_;
  }
  /// Datagrams this peer's socket shipped — the coalescing win shows as
  /// fewer datagrams per applied measurement.
  [[nodiscard]] std::size_t DatagramsSent() const noexcept {
    return channel_.DatagramsSent();
  }

 private:
  void HandleBatch(const core::MessageBatch& batch);
  void HandleBatchCompiled(const core::MessageBatch& batch);
  void Handle(core::NodeId from, const core::ProtocolMessage& message);

  UdpPeerConfig config_;
  MeasurementFn measure_;
  common::Rng rng_;
  core::DmfsgdNode node_;
  UdpDeliveryChannel channel_;
  std::vector<core::NodeId> neighbors_;
  std::size_t measurements_applied_ = 0;
  std::size_t rejected_messages_ = 0;
};

}  // namespace dmfsgd::transport
