// Minimal RAII UDP socket (IPv4 loopback-oriented).
//
// The simulators prove the algorithm; this transport proves the *protocol*:
// DMFSGD messages are small self-contained datagrams (core/wire.hpp), so a
// node is just a UDP socket plus two length-r vectors.  UdpDmfsgdPeer
// (udp_peer.hpp) runs Algorithms 1-2 over real sockets; the udp_swarm
// example and transport tests exercise it on the loopback interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace dmfsgd::transport {

/// A received datagram: payload plus the sender's loopback port.
struct Datagram {
  std::vector<std::byte> payload;
  std::uint16_t sender_port = 0;
};

/// Move-only RAII wrapper around an IPv4 UDP socket bound to 127.0.0.1.
class UdpSocket {
 public:
  /// Binds to 127.0.0.1:`port`; port 0 picks an ephemeral port.
  /// Throws std::runtime_error on socket/bind failure.
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// The bound local port.
  [[nodiscard]] std::uint16_t Port() const noexcept { return port_; }

  /// Asks the kernel for a receive buffer of `bytes` (best effort — the
  /// kernel clamps to its limits).  Returns the size actually granted.
  /// Burst receivers (the inter-shard channel's window barriers) use this
  /// to make loopback datagram drops from buffer overflow unlikely.
  std::size_t SetReceiveBufferBytes(std::size_t bytes);

  /// Sends a datagram to 127.0.0.1:`port`.  Throws std::runtime_error on
  /// send failure and std::invalid_argument on an empty payload.
  void SendTo(std::span<const std::byte> payload, std::uint16_t port);

  /// Receives one datagram, waiting up to `timeout_ms` (0 = just poll).
  /// Returns std::nullopt on timeout.  Throws std::runtime_error on error.
  [[nodiscard]] std::optional<Datagram> Receive(int timeout_ms);

 private:
  void Close() noexcept;

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace dmfsgd::transport
