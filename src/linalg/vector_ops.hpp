// Span-based dense vector kernels.
//
// These are the validation-boundary view of the inner loops of every SGD
// update (eqs. 9-13 of the paper): the coordinate vectors u_i, v_i are
// length-r arrays owned by each node, and all updates reduce to dot products
// and axpy operations on them.  Each function checks its size precondition
// and dispatches to the unchecked raw-pointer kernels in kernels.hpp — hot
// paths that have already validated sizes (the DmfsgdNode update rules, the
// evaluation sweeps) call those kernels directly.
#pragma once

#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "linalg/kernels.hpp"

namespace dmfsgd::linalg {

/// Dot product.  Requires equal sizes.
[[nodiscard]] inline double Dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("Dot: size mismatch");
  }
  return DotRaw(a.data(), b.data(), a.size());
}

/// {a·b, c·d} computed in one sweep.  Requires all four sizes equal.
[[nodiscard]] inline std::pair<double, double> DotPair(std::span<const double> a,
                                                       std::span<const double> b,
                                                       std::span<const double> c,
                                                       std::span<const double> d) {
  if (a.size() != b.size() || a.size() != c.size() || a.size() != d.size()) {
    throw std::invalid_argument("DotPair: size mismatch");
  }
  return DotPairRaw(a.data(), b.data(), c.data(), d.data(), a.size());
}

/// y += alpha * x.  Requires equal sizes.
inline void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("Axpy: size mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

/// y = decay * y + alpha * x, the fused Scale+Axpy of one SGD step.
/// Requires equal sizes and non-aliasing x and y.
inline void DecayAxpy(double decay, double alpha, std::span<const double> x,
                      std::span<double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("DecayAxpy: size mismatch");
  }
  DecayAxpyRaw(decay, alpha, x.data(), y.data(), x.size());
}

/// x *= alpha.
inline void Scale(double alpha, std::span<double> x) noexcept {
  for (double& v : x) {
    v *= alpha;
  }
}

/// Euclidean norm.
[[nodiscard]] inline double Norm2(std::span<const double> x) noexcept {
  double sum = 0.0;
  for (const double v : x) {
    sum += v * v;
  }
  return std::sqrt(sum);
}

/// Squared Euclidean norm (the regularization term u uᵀ in eq. 3).
[[nodiscard]] inline double SquaredNorm(std::span<const double> x) noexcept {
  double sum = 0.0;
  for (const double v : x) {
    sum += v * v;
  }
  return sum;
}

/// Sets all elements to `value`.
inline void Fill(std::span<double> x, double value) noexcept {
  for (double& v : x) {
    v = value;
  }
}

}  // namespace dmfsgd::linalg
