// Span-based dense vector kernels.
//
// These are the inner loops of every SGD update (eqs. 9-13 of the paper): the
// coordinate vectors u_i, v_i are length-r arrays owned by each node, and all
// updates reduce to dot products and axpy operations on them.  Kept
// header-only so the compiler can inline them into the update rules.
#pragma once

#include <cmath>
#include <span>
#include <stdexcept>

namespace dmfsgd::linalg {

/// Dot product.  Requires equal sizes.
[[nodiscard]] inline double Dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("Dot: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

/// y += alpha * x.  Requires equal sizes.
inline void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("Axpy: size mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

/// x *= alpha.
inline void Scale(double alpha, std::span<double> x) noexcept {
  for (double& v : x) {
    v *= alpha;
  }
}

/// Euclidean norm.
[[nodiscard]] inline double Norm2(std::span<const double> x) noexcept {
  double sum = 0.0;
  for (const double v : x) {
    sum += v * v;
  }
  return std::sqrt(sum);
}

/// Squared Euclidean norm (the regularization term u uᵀ in eq. 3).
[[nodiscard]] inline double SquaredNorm(std::span<const double> x) noexcept {
  double sum = 0.0;
  for (const double v : x) {
    sum += v * v;
  }
  return sum;
}

/// Sets all elements to `value`.
inline void Fill(std::span<double> x, double value) noexcept {
  for (double& v : x) {
    v = value;
  }
}

}  // namespace dmfsgd::linalg
