#include "linalg/matrix.hpp"

#include <stdexcept>
#include <string>

#include "common/rng.hpp"

namespace dmfsgd::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::At(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::At(" + std::to_string(r) + ", " +
                            std::to_string(c) + ") out of " + std::to_string(rows_) +
                            "x" + std::to_string(cols_));
  }
  return (*this)(r, c);
}

double Matrix::At(std::size_t r, std::size_t c) const {
  return const_cast<Matrix&>(*this).At(r, c);
}

std::span<double> Matrix::Row(std::size_t r) {
  if (r >= rows_) {
    throw std::out_of_range("Matrix::Row: " + std::to_string(r));
  }
  return std::span<double>(data_).subspan(r * cols_, cols_);
}

std::span<const double> Matrix::Row(std::size_t r) const {
  if (r >= rows_) {
    throw std::out_of_range("Matrix::Row: " + std::to_string(r));
  }
  return std::span<const double>(data_).subspan(r * cols_, cols_);
}

std::size_t Matrix::KnownCount() const noexcept {
  std::size_t count = 0;
  for (const double v : data_) {
    if (!IsMissing(v)) {
      ++count;
    }
  }
  return count;
}

void Matrix::Fill(double value) noexcept {
  for (double& v : data_) {
    v = value;
  }
}

void Matrix::FillUniform(common::Rng& rng, double lo, double hi) {
  for (double& v : data_) {
    v = rng.Uniform(lo, hi);
  }
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::Symmetrized() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::Symmetrized: matrix must be square");
  }
  Matrix s(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double a = (*this)(r, c);
      const double b = (*this)(c, r);
      if (IsMissing(a)) {
        s(r, c) = b;
      } else if (IsMissing(b)) {
        s(r, c) = a;
      } else {
        s(r, c) = 0.5 * (a + b);
      }
    }
  }
  return s;
}

double Matrix::FrobeniusNorm() const noexcept {
  double sum = 0.0;
  for (const double v : data_) {
    if (!IsMissing(v)) {
      sum += v * v;
    }
  }
  return std::sqrt(sum);
}

bool Matrix::AlmostEqual(const Matrix& other, double tolerance) const noexcept {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const bool a_missing = IsMissing(data_[i]);
    const bool b_missing = IsMissing(other.data_[i]);
    if (a_missing != b_missing) {
      return false;
    }
    if (!a_missing && std::abs(data_[i] - other.data_[i]) > tolerance) {
      return false;
    }
  }
  return true;
}

bool operator==(const Matrix& a, const Matrix& b) noexcept {
  return a.AlmostEqual(b, 0.0);
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  if (a.Cols() != b.Rows()) {
    throw std::invalid_argument("Multiply: inner dimensions differ");
  }
  Matrix c(a.Rows(), b.Cols(), 0.0);
  // i-k-j loop order for row-major cache friendliness.
  for (std::size_t i = 0; i < a.Rows(); ++i) {
    for (std::size_t k = 0; k < a.Cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) {
        continue;
      }
      for (std::size_t j = 0; j < b.Cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Matrix MultiplyTransposed(const Matrix& a, const Matrix& b) {
  if (a.Cols() != b.Cols()) {
    throw std::invalid_argument("MultiplyTransposed: column counts differ");
  }
  Matrix c(a.Rows(), b.Rows(), 0.0);
  for (std::size_t i = 0; i < a.Rows(); ++i) {
    const auto row_a = a.Row(i);
    for (std::size_t j = 0; j < b.Rows(); ++j) {
      const auto row_b = b.Row(j);
      double sum = 0.0;
      for (std::size_t k = 0; k < row_a.size(); ++k) {
        sum += row_a[k] * row_b[k];
      }
      c(i, j) = sum;
    }
  }
  return c;
}

double FrobeniusDistance(const Matrix& a, const Matrix& b) {
  if (a.Rows() != b.Rows() || a.Cols() != b.Cols()) {
    throw std::invalid_argument("FrobeniusDistance: shape mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.Data().size(); ++i) {
    const double x = a.Data()[i];
    const double y = b.Data()[i];
    if (!Matrix::IsMissing(x) && !Matrix::IsMissing(y)) {
      const double d = x - y;
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

Matrix TopLeftSubmatrix(const Matrix& m, std::size_t n) {
  if (n > m.Rows() || n > m.Cols()) {
    throw std::invalid_argument("TopLeftSubmatrix: n exceeds matrix size");
  }
  Matrix sub(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      sub(r, c) = m(r, c);
    }
  }
  return sub;
}

std::vector<double> KnownOffDiagonal(const Matrix& m) {
  std::vector<double> values;
  values.reserve(m.Size());
  for (std::size_t r = 0; r < m.Rows(); ++r) {
    for (std::size_t c = 0; c < m.Cols(); ++c) {
      if (r != c && !Matrix::IsMissing(m(r, c))) {
        values.push_back(m(r, c));
      }
    }
  }
  return values;
}

}  // namespace dmfsgd::linalg
