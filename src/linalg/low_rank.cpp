#include "linalg/low_rank.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace dmfsgd::linalg {

std::size_t EffectiveRank(std::span<const double> singular_values, double energy) {
  if (singular_values.empty()) {
    throw std::invalid_argument("EffectiveRank: empty spectrum");
  }
  if (energy <= 0.0 || energy > 1.0) {
    throw std::invalid_argument("EffectiveRank: energy must be in (0, 1]");
  }
  double total = 0.0;
  for (const double s : singular_values) {
    total += s * s;
  }
  if (total == 0.0) {
    return 0;
  }
  double cumulative = 0.0;
  for (std::size_t i = 0; i < singular_values.size(); ++i) {
    cumulative += singular_values[i] * singular_values[i];
    if (cumulative >= energy * total) {
      return i + 1;
    }
  }
  return singular_values.size();
}

double RankTruncationError(std::span<const double> singular_values, std::size_t r) {
  if (singular_values.empty()) {
    throw std::invalid_argument("RankTruncationError: empty spectrum");
  }
  double total = 0.0;
  double tail = 0.0;
  for (std::size_t i = 0; i < singular_values.size(); ++i) {
    const double sq = singular_values[i] * singular_values[i];
    total += sq;
    if (i >= r) {
      tail += sq;
    }
  }
  if (total == 0.0) {
    return 0.0;
  }
  return std::sqrt(tail / total);
}

Matrix RandomLowRankMatrix(std::size_t rows, std::size_t cols, std::size_t r,
                           common::Rng& rng, double lo, double hi) {
  if (r == 0 || r > std::min(rows, cols)) {
    throw std::invalid_argument("RandomLowRankMatrix: invalid rank");
  }
  Matrix u(rows, r);
  Matrix v(cols, r);
  u.FillUniform(rng, lo, hi);
  v.FillUniform(rng, lo, hi);
  return MultiplyTransposed(u, v);
}

Matrix ClassMatrix(const Matrix& values, double threshold, bool good_if_below) {
  Matrix classes(values.Rows(), values.Cols(), Matrix::kMissing);
  for (std::size_t r = 0; r < values.Rows(); ++r) {
    for (std::size_t c = 0; c < values.Cols(); ++c) {
      const double v = values(r, c);
      if (Matrix::IsMissing(v)) {
        continue;
      }
      const bool good = good_if_below ? (v <= threshold) : (v >= threshold);
      classes(r, c) = good ? 1.0 : -1.0;
    }
  }
  return classes;
}

}  // namespace dmfsgd::linalg
