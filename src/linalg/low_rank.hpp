// Low-rank analysis helpers built on the SVD.
//
// Section 4.1 of the paper justifies matrix completion by the low effective
// rank of performance matrices; these helpers quantify that (effective rank,
// best rank-r approximation error) for tests and the Figure 1 bench.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace dmfsgd::common {
class Rng;
}

namespace dmfsgd::linalg {

/// Smallest r such that the top-r singular values capture `energy` of the
/// total squared spectrum (energy in (0, 1]).  Input must be descending.
[[nodiscard]] std::size_t EffectiveRank(std::span<const double> singular_values,
                                        double energy);

/// Relative Frobenius error of the best rank-r approximation, computed from
/// the spectrum alone: sqrt(sum_{i>r} s_i^2 / sum_i s_i^2).
[[nodiscard]] double RankTruncationError(std::span<const double> singular_values,
                                         std::size_t r);

/// Builds a random rank-r matrix U Vᵀ with entries of the factors iid
/// uniform in [lo, hi) — used by property tests (an exactly-rank-r input must
/// be recovered by SVD with only r nonzero singular values).
[[nodiscard]] Matrix RandomLowRankMatrix(std::size_t rows, std::size_t cols,
                                         std::size_t r, common::Rng& rng,
                                         double lo = -1.0, double hi = 1.0);

/// Element-wise sign matrix: +1 if entry > threshold ... the paper's class
/// matrix  (entries <= threshold map to -1).  NaN entries stay NaN.
/// For RTT-like metrics lower is better, so callers typically pass
/// `good_if_below = true` to map small values to +1.
[[nodiscard]] Matrix ClassMatrix(const Matrix& values, double threshold,
                                 bool good_if_below);

}  // namespace dmfsgd::linalg
