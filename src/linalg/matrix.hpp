// Dense row-major matrix of doubles.
//
// This is the substrate for the centralized pieces of the reproduction: the
// ground-truth performance matrices X, the low-rank factors U and V when
// analyzed centrally (Figure 1, batch-MF baseline), and the evaluation
// plumbing.  The decentralized algorithm itself never materializes a matrix —
// it only touches per-node rows (see core/).
//
// Missing entries (the paper's "unknown" pairs, and HP-S3's 4% holes) are
// represented as NaN; helpers below make the convention explicit.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace dmfsgd::common {
class Rng;
}

namespace dmfsgd::linalg {

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, all entries initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t Rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t Cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t Size() const noexcept { return data_.size(); }
  [[nodiscard]] bool Empty() const noexcept { return data_.empty(); }

  /// Unchecked element access (hot paths); prefer At() at API boundaries.
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws std::out_of_range.
  [[nodiscard]] double& At(std::size_t r, std::size_t c);
  [[nodiscard]] double At(std::size_t r, std::size_t c) const;

  /// Contiguous view of row r.
  [[nodiscard]] std::span<double> Row(std::size_t r);
  [[nodiscard]] std::span<const double> Row(std::size_t r) const;

  /// Whole storage, row-major.
  [[nodiscard]] std::span<double> Data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> Data() const noexcept { return data_; }

  /// Missing-entry convention: NaN marks an unknown measurement.
  static constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();
  [[nodiscard]] static bool IsMissing(double value) noexcept {
    return std::isnan(value);
  }

  /// Number of non-NaN entries.
  [[nodiscard]] std::size_t KnownCount() const noexcept;

  void Fill(double value) noexcept;

  /// Fills with iid uniform values in [lo, hi) (the paper's coordinate init
  /// draws from [0, 1)).
  void FillUniform(common::Rng& rng, double lo, double hi);

  [[nodiscard]] Matrix Transposed() const;

  /// (this + thisᵀ) / 2; requires a square matrix.  NaN entries are treated
  /// as absorbing: if either (i,j) or (j,i) is missing the result is the
  /// known one (or NaN if both missing).
  [[nodiscard]] Matrix Symmetrized() const;

  /// Frobenius norm over known (non-NaN) entries.
  [[nodiscard]] double FrobeniusNorm() const noexcept;

  /// Element-wise comparison with tolerance; NaNs compare equal to NaNs.
  [[nodiscard]] bool AlmostEqual(const Matrix& other, double tolerance) const noexcept;

  friend bool operator==(const Matrix& a, const Matrix& b) noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B.  Throws on inner-dimension mismatch.
[[nodiscard]] Matrix Multiply(const Matrix& a, const Matrix& b);

/// C = A * Bᵀ — the reconstruction X̂ = U Vᵀ of eq. 2.  Throws if
/// a.Cols() != b.Cols().
[[nodiscard]] Matrix MultiplyTransposed(const Matrix& a, const Matrix& b);

/// Element-wise difference ||A - B||_F over entries known in both.
[[nodiscard]] double FrobeniusDistance(const Matrix& a, const Matrix& b);

/// Extracts the top-left square submatrix of size n (used to carve the
/// paper's 2255- and 201-node submatrices out of the full datasets).
[[nodiscard]] Matrix TopLeftSubmatrix(const Matrix& m, std::size_t n);

/// All known (non-NaN) off-diagonal values, row-major order.
[[nodiscard]] std::vector<double> KnownOffDiagonal(const Matrix& m);

}  // namespace dmfsgd::linalg
