// Singular value decomposition.
//
// Two flavors:
//  * JacobiSvd — exact one-sided Jacobi, O(m n^2) per sweep.  Used for small
//    matrices (tests, the 201x201 ABW submatrix of Figure 1, the inner step
//    of the randomized method).
//  * RandomizedTopKSvd — Halko-Martinsson-Tropp randomized range finder with
//    power iterations, for the top-k spectrum of large matrices (the
//    2255x2255 RTT submatrix of Figure 1).
//
// Figure 1 of the paper plots exactly these normalized top-20 singular
// values to argue that performance matrices (and their class versions!) are
// low-rank, which is what justifies factorizing X ≈ U Vᵀ at all.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace dmfsgd::common {
class Rng;
}

namespace dmfsgd::linalg {

struct SvdOptions {
  bool compute_u = false;
  bool compute_v = false;
  int max_sweeps = 60;            ///< Jacobi sweep cap
  double tolerance = 1e-12;       ///< off-diagonal convergence threshold
};

struct SvdResult {
  /// Singular values, descending.
  std::vector<double> singular_values;
  /// Left/right singular vectors as columns; empty unless requested.
  Matrix u;
  Matrix v;
  /// Number of Jacobi sweeps actually performed (diagnostics).
  int sweeps = 0;
};

/// Exact SVD of an m x n matrix (any shape) by one-sided Jacobi.
/// Throws std::invalid_argument on an empty matrix or NaN entries.
[[nodiscard]] SvdResult JacobiSvd(const Matrix& a, const SvdOptions& options = {});

struct RandomizedSvdOptions {
  std::size_t oversample = 10;  ///< extra probe columns beyond k
  int power_iterations = 2;     ///< subspace iterations to sharpen the spectrum
};

/// Approximate top-k singular values (and optionally vectors) of `a`.
/// Accuracy is excellent for rapidly decaying spectra — precisely the regime
/// Figure 1 demonstrates.  Throws on k == 0 or k > min(m, n) or NaN entries.
[[nodiscard]] SvdResult RandomizedTopKSvd(const Matrix& a, std::size_t k,
                                          common::Rng& rng,
                                          const RandomizedSvdOptions& options = {});

/// Normalizes singular values so the largest equals 1 (the Figure 1 y-axis).
/// Requires a non-empty, descending-sorted input with positive head.
[[nodiscard]] std::vector<double> NormalizeSpectrum(std::vector<double> values);

}  // namespace dmfsgd::linalg
