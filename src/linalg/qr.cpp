#include "linalg/qr.hpp"

#include <cmath>
#include <stdexcept>

namespace dmfsgd::linalg {

QrResult QrDecompose(const Matrix& a, double tolerance) {
  const std::size_t m = a.Rows();
  const std::size_t n = a.Cols();
  if (m < n) {
    throw std::invalid_argument("QrDecompose: requires rows >= cols");
  }
  QrResult result{Matrix(m, n, 0.0), Matrix(n, n, 0.0)};
  Matrix& q = result.q;
  Matrix& r = result.r;

  // Work column by column (modified Gram-Schmidt: project against already
  // orthonormalized columns one at a time for numerical stability).
  for (std::size_t j = 0; j < n; ++j) {
    // v = a[:, j]
    std::vector<double> v(m);
    for (std::size_t i = 0; i < m; ++i) {
      v[i] = a(i, j);
    }
    for (std::size_t k = 0; k < j; ++k) {
      double proj = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        proj += q(i, k) * v[i];
      }
      r(k, j) = proj;
      for (std::size_t i = 0; i < m; ++i) {
        v[i] -= proj * q(i, k);
      }
    }
    double norm = 0.0;
    for (const double x : v) {
      norm += x * x;
    }
    norm = std::sqrt(norm);
    r(j, j) = norm;
    if (norm > tolerance) {
      for (std::size_t i = 0; i < m; ++i) {
        q(i, j) = v[i] / norm;
      }
    }
    // else: leave the Q column zero (rank-deficient input).
  }
  return result;
}

double OrthonormalityDefect(const Matrix& q) {
  const std::size_t n = q.Cols();
  double defect = 0.0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < q.Rows(); ++i) {
        dot += q(i, a) * q(i, b);
      }
      const double expected = (a == b) ? 1.0 : 0.0;
      defect = std::max(defect, std::abs(dot - expected));
    }
  }
  return defect;
}

}  // namespace dmfsgd::linalg
