// Dense linear solvers.
//
// Gaussian elimination with partial pivoting for small square systems, plus
// least squares via the normal equations — enough for the IDES baseline
// (core/ides.hpp), where every ordinary host solves an r x r system to place
// itself relative to the landmarks.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace dmfsgd::linalg {

/// Solves A x = b for square A by Gaussian elimination with partial
/// pivoting.  Throws std::invalid_argument on shape mismatch and
/// std::runtime_error if A is (numerically) singular.
[[nodiscard]] std::vector<double> SolveLinearSystem(const Matrix& a,
                                                    std::span<const double> b);

/// Least-squares solution of min ||A x - b||^2 for a tall A (rows >= cols)
/// via the normal equations AᵀA x = Aᵀb.  Adds `ridge` to the diagonal of
/// AᵀA (Tikhonov regularization; 0 disables).  Throws on shape mismatch or
/// a singular normal matrix.
[[nodiscard]] std::vector<double> SolveLeastSquares(const Matrix& a,
                                                    std::span<const double> b,
                                                    double ridge = 0.0);

}  // namespace dmfsgd::linalg
