// Explicit AVX2 / AVX-512 kernel variants with runtime CPUID dispatch
// (DESIGN.md §14).
//
// The vector bodies are compiled via function `target` attributes, so the
// translation unit builds with the project's baseline flags — no global
// -mavx2 required — and the binary stays runnable on pre-AVX2 hosts (the
// vector entry points are only reached after __builtin_cpu_supports says
// the instructions exist).
//
// Numerical design, pinned by kernels_test:
//
//  * decay_axpy / axpy: purely element-wise.  The vector bodies evaluate
//    exactly the scalar expression fl(fl(decay*y[d]) + fl(alpha*x[d])) per
//    lane — deliberately *without* FMA: the bodies use separate mul/add
//    intrinsics, short tails run under lane masks, and CMake compiles this
//    TU with -ffp-contract=off (gcc/clang default to fp-contract=fast and
//    happily fuse a mul+add *intrinsic* pair into one FMA wherever the
//    target ISA has it — avx512f does).  Every variant is then
//    bit-identical to the scalar oracle.
//  * dot / dot_pair: lane-parallel accumulators reduced in a fixed order
//    (masked tail folded into the lanes, low half + high half, then
//    left-to-right).  That reassociates the scalar left-to-right sum, so
//    results agree with the oracle to a few ulps, not bitwise; callers
//    needing sequential bit-identity use the scalar table.
//
// Sanitizer builds define DMFSGD_DISABLE_SIMD_KERNELS (CMake forces it):
// the instrumented legs then exercise exactly the scalar arithmetic the
// parity tests pin, and no sanitizer ever has to reason about intrinsics.
#include "linalg/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(DMFSGD_DISABLE_SIMD_KERNELS)
#define DMFSGD_SIMD_COMPILED 1
#include <immintrin.h>
#else
#define DMFSGD_SIMD_COMPILED 0
#endif

namespace dmfsgd::linalg {

namespace {

// Addressable wrappers over the inline scalar kernels (function pointers
// cannot bind to inline functions' bodies directly without a definition
// per TU; these give the table one stable address).
double ScalarDot(const double* a, const double* b, std::size_t r) {
  return DotRaw(a, b, r);
}
std::pair<double, double> ScalarDotPair(const double* a, const double* b,
                                        const double* c, const double* d,
                                        std::size_t r) {
  return DotPairRaw(a, b, c, d, r);
}
void ScalarDecayAxpy(double decay, double alpha, const double* x, double* y,
                     std::size_t r) {
  DecayAxpyRaw(decay, alpha, x, y, r);
}
void ScalarAxpy(double alpha, const double* x, double* y, std::size_t r) {
  AxpyRaw(alpha, x, y, r);
}

constexpr KernelOps kScalarOps{ScalarDot, ScalarDotPair, ScalarDecayAxpy,
                               ScalarAxpy, KernelIsa::kScalar};

#if DMFSGD_SIMD_COMPILED

// ---------------------------------------------------------------- AVX2 ----

__attribute__((target("avx2"))) double Avx2Dot(const double* a,
                                               const double* b,
                                               std::size_t r) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t d = 0;
  for (; d + 4 <= r; d += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + d), _mm256_loadu_pd(b + d)));
  }
  // Fixed reduction order: (lane0 + lane2) + (lane1 + lane3) via the
  // low/high-half add, then a horizontal pair add.
  const __m128d half =
      _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double sum = _mm_cvtsd_f64(_mm_add_sd(half, _mm_unpackhi_pd(half, half)));
  for (; d < r; ++d) {
    sum += a[d] * b[d];
  }
  return sum;
}

__attribute__((target("avx2"))) std::pair<double, double> Avx2DotPair(
    const double* a, const double* b, const double* c, const double* d,
    std::size_t r) {
  __m256d acc_ab = _mm256_setzero_pd();
  __m256d acc_cd = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 4 <= r; k += 4) {
    acc_ab = _mm256_add_pd(
        acc_ab, _mm256_mul_pd(_mm256_loadu_pd(a + k), _mm256_loadu_pd(b + k)));
    acc_cd = _mm256_add_pd(
        acc_cd, _mm256_mul_pd(_mm256_loadu_pd(c + k), _mm256_loadu_pd(d + k)));
  }
  const __m128d half_ab = _mm_add_pd(_mm256_castpd256_pd128(acc_ab),
                                     _mm256_extractf128_pd(acc_ab, 1));
  const __m128d half_cd = _mm_add_pd(_mm256_castpd256_pd128(acc_cd),
                                     _mm256_extractf128_pd(acc_cd, 1));
  double ab =
      _mm_cvtsd_f64(_mm_add_sd(half_ab, _mm_unpackhi_pd(half_ab, half_ab)));
  double cd =
      _mm_cvtsd_f64(_mm_add_sd(half_cd, _mm_unpackhi_pd(half_cd, half_cd)));
  for (; k < r; ++k) {
    ab += a[k] * b[k];
    cd += c[k] * d[k];
  }
  return {ab, cd};
}

__attribute__((target("avx2"))) void Avx2DecayAxpy(double decay, double alpha,
                                                   const double* x, double* y,
                                                   std::size_t r) {
  const __m256d vdecay = _mm256_set1_pd(decay);
  const __m256d valpha = _mm256_set1_pd(alpha);
  std::size_t d = 0;
  for (; d + 4 <= r; d += 4) {
    const __m256d t = _mm256_add_pd(
        _mm256_mul_pd(vdecay, _mm256_loadu_pd(y + d)),
        _mm256_mul_pd(valpha, _mm256_loadu_pd(x + d)));
    _mm256_storeu_pd(y + d, t);
  }
  for (; d < r; ++d) {
    y[d] = decay * y[d] + alpha * x[d];
  }
}

__attribute__((target("avx2"))) void Avx2Axpy(double alpha, const double* x,
                                              double* y, std::size_t r) {
  const __m256d valpha = _mm256_set1_pd(alpha);
  std::size_t d = 0;
  for (; d + 4 <= r; d += 4) {
    const __m256d t = _mm256_add_pd(
        _mm256_loadu_pd(y + d), _mm256_mul_pd(valpha, _mm256_loadu_pd(x + d)));
    _mm256_storeu_pd(y + d, t);
  }
  for (; d < r; ++d) {
    y[d] += alpha * x[d];
  }
}

constexpr KernelOps kAvx2Ops{Avx2Dot, Avx2DotPair, Avx2DecayAxpy, Avx2Axpy,
                             KernelIsa::kAvx2};

// -------------------------------------------------------------- AVX-512 ----

/// Pairwise lane reduction in a fixed, documented order (the library
/// _mm512_reduce_add_pd leaves the order unspecified — and its GCC 12
/// expansion trips -Wuninitialized through _mm256_undefined_pd).
__attribute__((target("avx512f"))) double ReduceLanes512(__m512d acc) {
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, acc);
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

/// Lane mask selecting the first `r - d` (< 8) elements of a tail.
__attribute__((target("avx512f"))) inline __mmask8 TailMask512(
    std::size_t remaining) {
  return static_cast<__mmask8>((1u << remaining) - 1u);
}

// The tails below use masked intrinsics rather than scalar cleanup loops:
// inside a target("avx512f") function the compiler may contract a scalar
// `a * b + c` into one FMA (avx512f implies the FMA ISA and fp-contract
// defaults to fast), which would break the bit-for-bit scalar-table parity
// of the element-wise kernels.  Masked lanes load 0.0, and adding zero
// products leaves the dot accumulators unchanged.

__attribute__((target("avx512f"))) double Avx512Dot(const double* a,
                                                    const double* b,
                                                    std::size_t r) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t d = 0;
  for (; d + 8 <= r; d += 8) {
    acc = _mm512_add_pd(
        acc, _mm512_mul_pd(_mm512_loadu_pd(a + d), _mm512_loadu_pd(b + d)));
  }
  if (d < r) {
    const __mmask8 tail = TailMask512(r - d);
    acc = _mm512_add_pd(acc, _mm512_mul_pd(_mm512_maskz_loadu_pd(tail, a + d),
                                           _mm512_maskz_loadu_pd(tail, b + d)));
  }
  return ReduceLanes512(acc);
}

__attribute__((target("avx512f"))) std::pair<double, double> Avx512DotPair(
    const double* a, const double* b, const double* c, const double* d,
    std::size_t r) {
  __m512d acc_ab = _mm512_setzero_pd();
  __m512d acc_cd = _mm512_setzero_pd();
  std::size_t k = 0;
  for (; k + 8 <= r; k += 8) {
    acc_ab = _mm512_add_pd(
        acc_ab, _mm512_mul_pd(_mm512_loadu_pd(a + k), _mm512_loadu_pd(b + k)));
    acc_cd = _mm512_add_pd(
        acc_cd, _mm512_mul_pd(_mm512_loadu_pd(c + k), _mm512_loadu_pd(d + k)));
  }
  if (k < r) {
    const __mmask8 tail = TailMask512(r - k);
    acc_ab =
        _mm512_add_pd(acc_ab, _mm512_mul_pd(_mm512_maskz_loadu_pd(tail, a + k),
                                            _mm512_maskz_loadu_pd(tail, b + k)));
    acc_cd =
        _mm512_add_pd(acc_cd, _mm512_mul_pd(_mm512_maskz_loadu_pd(tail, c + k),
                                            _mm512_maskz_loadu_pd(tail, d + k)));
  }
  return {ReduceLanes512(acc_ab), ReduceLanes512(acc_cd)};
}

__attribute__((target("avx512f"))) void Avx512DecayAxpy(double decay,
                                                        double alpha,
                                                        const double* x,
                                                        double* y,
                                                        std::size_t r) {
  const __m512d vdecay = _mm512_set1_pd(decay);
  const __m512d valpha = _mm512_set1_pd(alpha);
  std::size_t d = 0;
  for (; d + 8 <= r; d += 8) {
    const __m512d t = _mm512_add_pd(
        _mm512_mul_pd(vdecay, _mm512_loadu_pd(y + d)),
        _mm512_mul_pd(valpha, _mm512_loadu_pd(x + d)));
    _mm512_storeu_pd(y + d, t);
  }
  if (d < r) {
    const __mmask8 tail = TailMask512(r - d);
    const __m512d t =
        _mm512_add_pd(_mm512_mul_pd(vdecay, _mm512_maskz_loadu_pd(tail, y + d)),
                      _mm512_mul_pd(valpha, _mm512_maskz_loadu_pd(tail, x + d)));
    _mm512_mask_storeu_pd(y + d, tail, t);
  }
}

__attribute__((target("avx512f"))) void Avx512Axpy(double alpha,
                                                   const double* x, double* y,
                                                   std::size_t r) {
  const __m512d valpha = _mm512_set1_pd(alpha);
  std::size_t d = 0;
  for (; d + 8 <= r; d += 8) {
    const __m512d t = _mm512_add_pd(
        _mm512_loadu_pd(y + d), _mm512_mul_pd(valpha, _mm512_loadu_pd(x + d)));
    _mm512_storeu_pd(y + d, t);
  }
  if (d < r) {
    const __mmask8 tail = TailMask512(r - d);
    const __m512d t =
        _mm512_add_pd(_mm512_maskz_loadu_pd(tail, y + d),
                      _mm512_mul_pd(valpha, _mm512_maskz_loadu_pd(tail, x + d)));
    _mm512_mask_storeu_pd(y + d, tail, t);
  }
}

constexpr KernelOps kAvx512Ops{Avx512Dot, Avx512DotPair, Avx512DecayAxpy,
                               Avx512Axpy, KernelIsa::kAvx512};

#endif  // DMFSGD_SIMD_COMPILED

bool CpuSupports(KernelIsa isa) noexcept {
#if DMFSGD_SIMD_COMPILED
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case KernelIsa::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
#endif
  return isa == KernelIsa::kScalar;
}

const KernelOps* TableFor(KernelIsa isa) noexcept {
  switch (isa) {
    case KernelIsa::kScalar:
      return &kScalarOps;
#if DMFSGD_SIMD_COMPILED
    case KernelIsa::kAvx2:
      return &kAvx2Ops;
    case KernelIsa::kAvx512:
      return &kAvx512Ops;
#else
    case KernelIsa::kAvx2:
    case KernelIsa::kAvx512:
      return nullptr;
#endif
  }
  return nullptr;
}

/// The process-wide selection; nullptr means "not yet detected".
std::atomic<const KernelOps*> g_active{nullptr};

const KernelOps& DetectedTable() noexcept {
  const KernelOps* table = TableFor(DetectKernelIsa());
  return table != nullptr ? *table : kScalarOps;
}

}  // namespace

const char* KernelIsaName(KernelIsa isa) noexcept {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kAvx512:
      return "avx512";
  }
  return "?";
}

KernelIsa ParseKernelIsaName(const std::string& name) {
  if (name == "scalar") {
    return KernelIsa::kScalar;
  }
  if (name == "avx2") {
    return KernelIsa::kAvx2;
  }
  if (name == "avx512") {
    return KernelIsa::kAvx512;
  }
  throw std::invalid_argument("ParseKernelIsaName: unknown ISA '" + name +
                              "' (expected scalar/avx2/avx512)");
}

bool KernelIsaCompiled(KernelIsa isa) noexcept {
  return TableFor(isa) != nullptr;
}

bool KernelIsaSupported(KernelIsa isa) noexcept {
  return KernelIsaCompiled(isa) && CpuSupports(isa);
}

KernelIsa DetectKernelIsa() noexcept {
  // An explicit environment override wins when it names a supported tier;
  // anything else (unknown name, unsupported tier) falls through to
  // autodetection rather than failing a whole run over an env typo.
  if (const char* env = std::getenv("DMFSGD_KERNEL_ISA")) {
    try {
      const KernelIsa forced = ParseKernelIsaName(env);
      if (KernelIsaSupported(forced)) {
        return forced;
      }
    } catch (const std::invalid_argument&) {
    }
  }
  if (KernelIsaSupported(KernelIsa::kAvx512)) {
    return KernelIsa::kAvx512;
  }
  if (KernelIsaSupported(KernelIsa::kAvx2)) {
    return KernelIsa::kAvx2;
  }
  return KernelIsa::kScalar;
}

const KernelOps& KernelsFor(KernelIsa isa) {
  if (!KernelIsaSupported(isa)) {
    throw std::invalid_argument(
        std::string("KernelsFor: ISA '") + KernelIsaName(isa) +
        "' is not available (not compiled in or not supported by this CPU)");
  }
  return *TableFor(isa);
}

const KernelOps& ActiveKernels() noexcept {
  const KernelOps* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = &DetectedTable();
    // First caller wins; concurrent detection reaches the same answer.
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

KernelIsa ActiveKernelIsa() noexcept { return ActiveKernels().isa; }

void SetKernelIsa(KernelIsa isa) {
  g_active.store(&KernelsFor(isa), std::memory_order_release);
}

}  // namespace dmfsgd::linalg
