// Thin QR factorization via modified Gram-Schmidt.
//
// Used by the randomized SVD range finder (Figure 1 needs the top singular
// values of matrices up to 2255x2255, where full Jacobi SVD is too slow).
#pragma once

#include "linalg/matrix.hpp"

namespace dmfsgd::linalg {

struct QrResult {
  Matrix q;  ///< m x n with orthonormal columns
  Matrix r;  ///< n x n upper triangular
};

/// Thin QR of an m x n matrix with m >= n.  Rank-deficient columns (norm
/// below `tolerance` after projection) are replaced by zero columns in Q so
/// the factorization never divides by ~0; callers relying on a full basis
/// should check R's diagonal.
[[nodiscard]] QrResult QrDecompose(const Matrix& a, double tolerance = 1e-12);

/// Max |qᵀq - I| entry — orthonormality defect, used by tests.
[[nodiscard]] double OrthonormalityDefect(const Matrix& q);

}  // namespace dmfsgd::linalg
