#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "linalg/qr.hpp"

namespace dmfsgd::linalg {

namespace {

void RequireFinite(const Matrix& a, const char* what) {
  if (a.Empty()) {
    throw std::invalid_argument(std::string(what) + ": empty matrix");
  }
  for (const double v : a.Data()) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument(std::string(what) +
                                  ": matrix contains NaN/inf entries");
    }
  }
}

/// One-sided Jacobi on the columns of `work` (m x n, m >= n).  On return the
/// columns of `work` are mutually orthogonal; their norms are the singular
/// values.  If `v` is non-null it accumulates the right rotations (n x n).
int OrthogonalizeColumns(Matrix& work, Matrix* v, int max_sweeps, double tolerance) {
  const std::size_t m = work.Rows();
  const std::size_t n = work.Cols();
  int sweeps = 0;
  for (; sweeps < max_sweeps; ++sweeps) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0;
        double beta = 0.0;
        double gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double xp = work(i, p);
          const double xq = work(i, q);
          alpha += xp * xp;
          beta += xq * xq;
          gamma += xp * xq;
        }
        if (std::abs(gamma) <= tolerance * std::sqrt(alpha * beta)) {
          continue;
        }
        rotated = true;
        // Jacobi rotation annihilating the (p,q) off-diagonal of the Gram
        // matrix: tan(2θ) = 2γ / (β - α).
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = std::copysign(1.0, zeta) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double xp = work(i, p);
          const double xq = work(i, q);
          work(i, p) = c * xp - s * xq;
          work(i, q) = s * xp + c * xq;
        }
        if (v != nullptr) {
          for (std::size_t i = 0; i < n; ++i) {
            const double vp = (*v)(i, p);
            const double vq = (*v)(i, q);
            (*v)(i, p) = c * vp - s * vq;
            (*v)(i, q) = s * vp + c * vq;
          }
        }
      }
    }
    if (!rotated) {
      break;
    }
  }
  return sweeps;
}

}  // namespace

SvdResult JacobiSvd(const Matrix& a, const SvdOptions& options) {
  RequireFinite(a, "JacobiSvd");

  // One-sided Jacobi needs rows >= cols; transpose if necessary and swap the
  // roles of U and V on output.
  const bool transposed = a.Rows() < a.Cols();
  Matrix work = transposed ? a.Transposed() : a;
  const std::size_t m = work.Rows();
  const std::size_t n = work.Cols();

  const bool need_left = transposed ? options.compute_v : options.compute_u;
  const bool need_right = transposed ? options.compute_u : options.compute_v;

  Matrix v;
  Matrix* v_ptr = nullptr;
  if (need_right) {
    v = Matrix(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      v(i, i) = 1.0;
    }
    v_ptr = &v;
  }

  SvdResult result;
  result.sweeps =
      OrthogonalizeColumns(work, v_ptr, options.max_sweeps, options.tolerance);

  // Column norms are the singular values.
  std::vector<double> sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      norm += work(i, j) * work(i, j);
    }
    sigma[j] = std::sqrt(norm);
  }

  // Sort descending, permuting the factors along.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&sigma](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  result.singular_values.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    result.singular_values[j] = sigma[order[j]];
  }

  Matrix left;
  if (need_left) {
    left = Matrix(m, n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t src = order[j];
      if (sigma[src] > 0.0) {
        for (std::size_t i = 0; i < m; ++i) {
          left(i, j) = work(i, src) / sigma[src];
        }
      }
    }
  }
  Matrix right;
  if (need_right) {
    right = Matrix(n, n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t src = order[j];
      for (std::size_t i = 0; i < n; ++i) {
        right(i, j) = v(i, src);
      }
    }
  }

  if (transposed) {
    result.u = std::move(right);
    result.v = std::move(left);
  } else {
    result.u = std::move(left);
    result.v = std::move(right);
  }
  return result;
}

SvdResult RandomizedTopKSvd(const Matrix& a, std::size_t k, common::Rng& rng,
                            const RandomizedSvdOptions& options) {
  RequireFinite(a, "RandomizedTopKSvd");
  const std::size_t m = a.Rows();
  const std::size_t n = a.Cols();
  if (k == 0 || k > std::min(m, n)) {
    throw std::invalid_argument("RandomizedTopKSvd: invalid k");
  }
  const std::size_t l = std::min(std::min(m, n), k + options.oversample);

  // Gaussian probe: Y = A * Omega, Omega in R^{n x l}.
  Matrix omega(n, l);
  for (double& value : omega.Data()) {
    value = rng.Normal();
  }
  Matrix y = Multiply(a, omega);

  // Power iterations with re-orthonormalization: Y <- A (Aᵀ Y) sharpens the
  // separation between the wanted subspace and the tail.
  const Matrix at = a.Transposed();
  for (int it = 0; it < options.power_iterations; ++it) {
    y = QrDecompose(y).q;
    Matrix z = Multiply(at, y);
    z = QrDecompose(z).q;
    y = Multiply(a, z);
  }

  const Matrix q = QrDecompose(y).q;  // m x l orthonormal basis of range(A)

  // Project: B = Qᵀ A  (l x n), then exact SVD of the small B.
  const Matrix b = Multiply(q.Transposed(), a);
  SvdOptions inner;
  inner.compute_u = true;
  inner.compute_v = true;
  SvdResult small = JacobiSvd(b, inner);

  SvdResult result;
  result.sweeps = small.sweeps;
  const std::size_t keep = std::min(k, small.singular_values.size());
  result.singular_values.assign(small.singular_values.begin(),
                                small.singular_values.begin() + keep);
  // U = Q * U_small (columns 0..keep), V = V_small columns.
  Matrix u_full = Multiply(q, small.u);
  result.u = Matrix(m, keep);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < keep; ++j) {
      result.u(i, j) = u_full(i, j);
    }
  }
  result.v = Matrix(n, keep);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < keep; ++j) {
      result.v(i, j) = small.v(i, j);
    }
  }
  return result;
}

std::vector<double> NormalizeSpectrum(std::vector<double> values) {
  if (values.empty()) {
    throw std::invalid_argument("NormalizeSpectrum: empty spectrum");
  }
  const double head = values.front();
  if (head <= 0.0) {
    throw std::invalid_argument("NormalizeSpectrum: head singular value must be > 0");
  }
  for (double& v : values) {
    v /= head;
  }
  return values;
}

}  // namespace dmfsgd::linalg
