// Pre-validated raw-pointer kernels for the SGD hot path.
//
// vector_ops.hpp keeps the checked, span-based API used at validation
// boundaries (message decode, public entry points, tests).  The functions
// here are the unchecked inner loops those boundaries dispatch to once sizes
// are known to agree: raw `double*` with __restrict so the compiler can keep
// operands in registers and auto-vectorize, no size branches, no throws, and
// compile-time trip counts for the paper's canonical ranks (r = 3 — the
// Vivaldi-comparable embedding — and r = 10, the §6.2 default) with a
// generic loop as fallback.
//
// Contract (the caller's responsibility, validated upstream):
//   * every pointer addresses `r` readable (or writable) doubles;
//   * DecayAxpy's output must not alias its input — DmfsgdNode always
//     updates its own row against a remote *copy* or a round snapshot, so
//     every call site satisfies this by construction.  Read-only arguments
//     (the Dot family) may alias freely.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

#if defined(__GNUC__) || defined(__clang__)
#define DMFSGD_RESTRICT __restrict__
#else
#define DMFSGD_RESTRICT
#endif

namespace dmfsgd::linalg {

namespace detail {

// Fixed-trip-count bodies: with R known at compile time the optimizer fully
// unrolls and vectorizes these (no remainder loop, no induction overhead).

template <int R>
[[nodiscard]] inline double DotFixed(const double* a, const double* b) noexcept {
  double sum = 0.0;
  for (int d = 0; d < R; ++d) {
    sum += a[d] * b[d];
  }
  return sum;
}

template <int R>
[[nodiscard]] inline std::pair<double, double> DotPairFixed(
    const double* a, const double* b, const double* c, const double* d) noexcept {
  double ab = 0.0;
  double cd = 0.0;
  for (int k = 0; k < R; ++k) {
    ab += a[k] * b[k];
    cd += c[k] * d[k];
  }
  return {ab, cd};
}

template <int R>
inline void DecayAxpyFixed(double decay, double alpha,
                           const double* DMFSGD_RESTRICT x,
                           double* DMFSGD_RESTRICT y) noexcept {
  for (int d = 0; d < R; ++d) {
    y[d] = decay * y[d] + alpha * x[d];
  }
}

template <int R>
inline void AxpyFixed(double alpha, const double* DMFSGD_RESTRICT x,
                      double* DMFSGD_RESTRICT y) noexcept {
  for (int d = 0; d < R; ++d) {
    y[d] += alpha * x[d];
  }
}

}  // namespace detail

/// a · b over `r` elements, no validation.
[[nodiscard]] inline double DotRaw(const double* a, const double* b,
                                   std::size_t r) noexcept {
  switch (r) {
    case 3:
      return detail::DotFixed<3>(a, b);
    case 10:
      return detail::DotFixed<10>(a, b);
    default: {
      double sum = 0.0;
      for (std::size_t d = 0; d < r; ++d) {
        sum += a[d] * b[d];
      }
      return sum;
    }
  }
}

/// {a·b, c·d} in one sweep — the RTT update needs both u_i·v_j (eq. 9) and
/// u_j·v_i (eq. 10); interleaving the two accumulations halves the loop
/// overhead and keeps all four rows streaming through one pass.
[[nodiscard]] inline std::pair<double, double> DotPairRaw(
    const double* a, const double* b, const double* c, const double* d,
    std::size_t r) noexcept {
  switch (r) {
    case 3:
      return detail::DotPairFixed<3>(a, b, c, d);
    case 10:
      return detail::DotPairFixed<10>(a, b, c, d);
    default: {
      double ab = 0.0;
      double cd = 0.0;
      for (std::size_t k = 0; k < r; ++k) {
        ab += a[k] * b[k];
        cd += c[k] * d[k];
      }
      return {ab, cd};
    }
  }
}

/// y = decay * y + alpha * x in a single pass — the fusion of the
/// Scale-then-Axpy sequence every SGD step performs ((1-ηλ)·row − ηg·remote),
/// which halves the traffic over the updated row.  Element-wise it evaluates
/// the same expression fl(decay*y + alpha*x) the two-pass reference does, so
/// results agree to within one FMA-contraction ulp (see kernels_test).
inline void DecayAxpyRaw(double decay, double alpha,
                         const double* DMFSGD_RESTRICT x,
                         double* DMFSGD_RESTRICT y, std::size_t r) noexcept {
  switch (r) {
    case 3:
      detail::DecayAxpyFixed<3>(decay, alpha, x, y);
      return;
    case 10:
      detail::DecayAxpyFixed<10>(decay, alpha, x, y);
      return;
    default:
      for (std::size_t d = 0; d < r; ++d) {
        y[d] = decay * y[d] + alpha * x[d];
      }
  }
}

/// y += alpha * x — the mini-batch accumulation kernel (core::
/// GradientStepBatch folds each message's g·remote term into one running
/// direction, then applies a single DecayAxpyRaw step per batch).  Same
/// aliasing contract as DecayAxpyRaw: x must not alias y.
inline void AxpyRaw(double alpha, const double* DMFSGD_RESTRICT x,
                    double* DMFSGD_RESTRICT y, std::size_t r) noexcept {
  switch (r) {
    case 3:
      detail::AxpyFixed<3>(alpha, x, y);
      return;
    case 10:
      detail::AxpyFixed<10>(alpha, x, y);
      return;
    default:
      for (std::size_t d = 0; d < r; ++d) {
        y[d] += alpha * x[d];
      }
  }
}

// -- runtime-dispatched SIMD variants (DESIGN.md §14) -----------------------
//
// The inline kernels above stay the bit-exactness oracle and the
// per-message hot path.  Explicit AVX2 / AVX-512 variants live in
// kernels_simd.cpp behind function `target` attributes (no special compile
// flags needed) and are reached through a function-pointer table selected
// once, by runtime CPUID — batch consumers (the COO round compiler, the
// mini-batch folds) fetch the table once per sweep and hoist the dispatch
// out of the inner loop.
//
// Numerical contract, pinned by kernels_test:
//   * decay_axpy / axpy evaluate element-wise with no FMA contraction, so
//     every vector variant is bit-identical to the scalar kernel;
//   * dot / dot_pair accumulate lane-wise and reduce in a fixed order, so
//     vector variants agree with the scalar left-to-right sum only to a few
//     ulps — callers that promise bit-identity to a sequential trajectory
//     must use the scalar table (KernelsFor(KernelIsa::kScalar)).

/// Instruction-set tiers of the kernel table, ascending by capability.
enum class KernelIsa {
  kScalar = 0,  ///< the inline kernels above — always available, the oracle
  kAvx2 = 1,    ///< 4-wide double lanes (no FMA — see the contract above)
  kAvx512 = 2,  ///< 8-wide double lanes (avx512f)
};

/// One resolved kernel table.  The function pointers share the signatures
/// (and the aliasing/size contract) of the inline kernels above.
struct KernelOps {
  double (*dot)(const double*, const double*, std::size_t);
  std::pair<double, double> (*dot_pair)(const double*, const double*,
                                        const double*, const double*,
                                        std::size_t);
  void (*decay_axpy)(double, double, const double*, double*, std::size_t);
  void (*axpy)(double, const double*, double*, std::size_t);
  KernelIsa isa = KernelIsa::kScalar;
};

/// Human-readable ISA name ("scalar" / "avx2" / "avx512").
[[nodiscard]] const char* KernelIsaName(KernelIsa isa) noexcept;

/// Parses an ISA name; throws std::invalid_argument on unknown names.
[[nodiscard]] KernelIsa ParseKernelIsaName(const std::string& name);

/// True if the variant was compiled into this binary (x86-64 GCC/Clang,
/// not disabled by DMFSGD_DISABLE_SIMD_KERNELS — sanitizer builds are).
[[nodiscard]] bool KernelIsaCompiled(KernelIsa isa) noexcept;

/// True if the variant is compiled in *and* the running CPU supports it.
[[nodiscard]] bool KernelIsaSupported(KernelIsa isa) noexcept;

/// The best supported tier, or the one named by the DMFSGD_KERNEL_ISA
/// environment variable when that names a supported tier (unknown or
/// unsupported values are ignored).  This is the process-wide default.
[[nodiscard]] KernelIsa DetectKernelIsa() noexcept;

/// The table for an explicit tier; throws std::invalid_argument if the tier
/// is not supported on this host/build.
[[nodiscard]] const KernelOps& KernelsFor(KernelIsa isa);

/// The process-wide active table (DetectKernelIsa() until overridden).
/// Fetch once per sweep, not per message.
[[nodiscard]] const KernelOps& ActiveKernels() noexcept;
[[nodiscard]] KernelIsa ActiveKernelIsa() noexcept;

/// Overrides the active table (tests pin the scalar oracle; deployments can
/// force a tier).  Throws std::invalid_argument if unsupported.  Not for
/// use while a parallel sweep is in flight.
void SetKernelIsa(KernelIsa isa);

}  // namespace dmfsgd::linalg
