#include "linalg/solve.hpp"

#include <cmath>
#include <stdexcept>

namespace dmfsgd::linalg {

std::vector<double> SolveLinearSystem(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.Rows();
  if (a.Cols() != n) {
    throw std::invalid_argument("SolveLinearSystem: matrix must be square");
  }
  if (b.size() != n) {
    throw std::invalid_argument("SolveLinearSystem: rhs size mismatch");
  }
  // Augmented working copy.
  Matrix work = a;
  std::vector<double> rhs(b.begin(), b.end());

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry to the diagonal.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(work(row, col)) > std::abs(work(pivot, col))) {
        pivot = row;
      }
    }
    if (std::abs(work(pivot, col)) < 1e-12) {
      throw std::runtime_error("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work(col, c), work(pivot, c));
      }
      std::swap(rhs[col], rhs[pivot]);
    }
    // Eliminate below.
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = work(row, col) / work(col, col);
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t c = col; c < n; ++c) {
        work(row, c) -= factor * work(col, c);
      }
      rhs[row] -= factor * rhs[col];
    }
  }

  // Back substitution.
  std::vector<double> x(n);
  for (std::size_t row = n; row-- > 0;) {
    double sum = rhs[row];
    for (std::size_t c = row + 1; c < n; ++c) {
      sum -= work(row, c) * x[c];
    }
    x[row] = sum / work(row, row);
  }
  return x;
}

std::vector<double> SolveLeastSquares(const Matrix& a, std::span<const double> b,
                                      double ridge) {
  const std::size_t m = a.Rows();
  const std::size_t r = a.Cols();
  if (m < r) {
    throw std::invalid_argument("SolveLeastSquares: need rows >= cols");
  }
  if (b.size() != m) {
    throw std::invalid_argument("SolveLeastSquares: rhs size mismatch");
  }
  if (ridge < 0.0) {
    throw std::invalid_argument("SolveLeastSquares: ridge must be >= 0");
  }
  // Normal equations: (AᵀA + ridge I) x = Aᵀ b.
  Matrix normal(r, r, 0.0);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = i; j < r; ++j) {
      double sum = 0.0;
      for (std::size_t row = 0; row < m; ++row) {
        sum += a(row, i) * a(row, j);
      }
      normal(i, j) = sum;
      normal(j, i) = sum;
    }
    normal(i, i) += ridge;
  }
  std::vector<double> atb(r, 0.0);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t row = 0; row < m; ++row) {
      atb[i] += a(row, i) * b[row];
    }
  }
  return SolveLinearSystem(normal, atb);
}

}  // namespace dmfsgd::linalg
