// Figure 1: singular values of an RTT and an ABW matrix and of their binary
// class matrices, normalized so the largest singular value is 1.
//
// Paper setup: a 2255x2255 RTT submatrix of Meridian and a 201x201 ABW
// submatrix of HP-S3, thresholded at the dataset median.  Fast decay in all
// four spectra is what justifies low-rank matrix completion (§4.1).
//
// Usage: fig1_singular_values [--quick] [--seed=N]
#include <iostream>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "harness.hpp"
#include "linalg/low_rank.hpp"
#include "linalg/svd.hpp"

namespace {

using namespace dmfsgd;

/// Missing entries and the diagonal carry no spectral information; zero them
/// (the paper's matrices are dense, ours keep HP-S3's ~4% holes).
linalg::Matrix Densify(const linalg::Matrix& m) {
  linalg::Matrix out = m;
  for (double& v : out.Data()) {
    if (linalg::Matrix::IsMissing(v)) {
      v = 0.0;
    }
  }
  return out;
}

std::vector<double> Top20(const linalg::Matrix& m, common::Rng& rng) {
  constexpr std::size_t kTop = 20;
  if (m.Rows() <= 400) {
    auto spectrum = linalg::JacobiSvd(m).singular_values;
    spectrum.resize(std::min(spectrum.size(), kTop));
    return linalg::NormalizeSpectrum(std::move(spectrum));
  }
  linalg::RandomizedSvdOptions options;
  options.power_iterations = 3;
  return linalg::NormalizeSpectrum(
      linalg::RandomizedTopKSvd(m, kTop, rng, options).singular_values);
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"quick", "seed"});
  const bool quick = flags.GetBool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  common::Rng rng(seed);

  std::cout << "=== Figure 1: singular values of performance matrices ===\n";

  // RTT: the paper extracts a 2255-node submatrix of Meridian.
  const bench::PaperDataset meridian = bench::MakePaperMeridian(quick);
  const std::size_t rtt_n = quick ? meridian.dataset.NodeCount() : 2255;
  const linalg::Matrix rtt =
      Densify(linalg::TopLeftSubmatrix(meridian.dataset.ground_truth, rtt_n));
  const linalg::Matrix rtt_class = Densify(linalg::TopLeftSubmatrix(
      meridian.dataset.ClassMatrix(meridian.dataset.MedianValue()), rtt_n));

  // ABW: the paper extracts a 201-node submatrix of HP-S3.
  const bench::PaperDataset hps3 = bench::MakePaperHpS3(quick);
  const std::size_t abw_n = std::min<std::size_t>(hps3.dataset.NodeCount(), 201);
  const linalg::Matrix abw =
      Densify(linalg::TopLeftSubmatrix(hps3.dataset.ground_truth, abw_n));
  const linalg::Matrix abw_class = Densify(linalg::TopLeftSubmatrix(
      hps3.dataset.ClassMatrix(hps3.dataset.MedianValue()), abw_n));

  const auto rtt_s = Top20(rtt, rng);
  const auto rtt_class_s = Top20(rtt_class, rng);
  const auto abw_s = Top20(abw, rng);
  const auto abw_class_s = Top20(abw_class, rng);

  std::cout << "RTT matrix " << rtt.Rows() << "x" << rtt.Cols() << ", ABW matrix "
            << abw.Rows() << "x" << abw.Cols() << "\n\n";

  common::Table table({"#", "RTT", "RTT class", "ABW", "ABW class"});
  for (std::size_t i = 0; i < 20; ++i) {
    table.AddRow({std::to_string(i + 1), common::FormatFixed(rtt_s[i], 4),
                  common::FormatFixed(rtt_class_s[i], 4),
                  common::FormatFixed(abw_s[i], 4),
                  common::FormatFixed(abw_class_s[i], 4)});
  }
  table.Print(std::cout);

  const auto rank = [](const std::vector<double>& s) {
    return linalg::EffectiveRank(s, 0.95);
  };
  std::cout << "\neffective rank (95% of top-20 energy): RTT " << rank(rtt_s)
            << ", RTT class " << rank(rtt_class_s) << ", ABW " << rank(abw_s)
            << ", ABW class " << rank(abw_class_s) << "\n"
            << "paper shape: all four spectra decay fast (low effective rank)\n";
  return 0;
}
