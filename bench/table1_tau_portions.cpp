// Table 1: the classification thresholds τ that produce 10/25/50/75/90%
// "good" paths in each dataset.
//
// Paper values for reference (real traces): Harvard 27.5..324.2 ms,
// Meridian 19.4..155.2 ms, HP-S3 88.2..10.4 Mbps (descending, since for ABW
// more good paths need a lower threshold).
//
// Usage: table1_tau_portions [--quick]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace dmfsgd;

  const common::Flags flags(argc, argv, {"quick"});
  const bool quick = flags.GetBool("quick", false);

  std::cout << "=== Table 1: tau vs portion of good paths ===\n";

  const auto papers = bench::AllPaperDatasets(quick);
  common::Table table({"good %", "Harvard (ms)", "Meridian (ms)", "HP-S3 (Mbps)"});
  for (const double portion : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    std::vector<std::string> row{
        common::FormatFixed(portion * 100.0, 0) + "%"};
    for (const auto& paper : papers) {
      row.push_back(
          common::FormatFixed(paper.dataset.TauForGoodPortion(portion), 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\npaper shape: RTT taus grow with the good portion; ABW taus"
               " shrink (higher bandwidth thresholds admit fewer paths)\n";
  return 0;
}
