// Table 3: the band widths δ that produce 5/10/15% error levels for Type 1
// (flip near τ, all datasets) and Type 2 (underestimation bias, HP-S3).
//
// Paper values for reference (real traces): e.g. Harvard Type 1 needs
// δ = 24.4/41.5/54.7 ms; HP-S3 Type 2 needs δ = 2.9/5.7/10.0 Mbps.  Ours
// differ in absolute terms (synthetic quantity distributions) but must grow
// with the target level and be metric-plausible.
//
// Usage: table3_delta_levels [--quick]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/error_injection.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace dmfsgd;

  const common::Flags flags(argc, argv, {"quick"});
  const bool quick = flags.GetBool("quick", false);

  std::cout << "=== Table 3: delta values producing given error levels ===\n";

  const bench::PaperDataset harvard = bench::MakePaperHarvard(quick);
  const bench::PaperDataset meridian = bench::MakePaperMeridian(quick);
  const bench::PaperDataset hps3 = bench::MakePaperHpS3(quick);

  common::Table table({"error %", "Harvard T1 (ms)", "Meridian T1 (ms)",
                       "HP-S3 T1 (Mbps)", "HP-S3 T2 (Mbps)"});
  for (const double level : {0.05, 0.10, 0.15}) {
    const auto delta_for = [&](const bench::PaperDataset& paper,
                               core::ErrorType type) {
      return core::DeltaForErrorRate(paper.dataset, paper.dataset.MedianValue(),
                                     type, level);
    };
    table.AddRow(
        {common::FormatFixed(level * 100.0, 0) + "%",
         common::FormatFixed(delta_for(harvard, core::ErrorType::kFlipNearTau), 2),
         common::FormatFixed(delta_for(meridian, core::ErrorType::kFlipNearTau), 2),
         common::FormatFixed(delta_for(hps3, core::ErrorType::kFlipNearTau), 2),
         common::FormatFixed(
             delta_for(hps3, core::ErrorType::kUnderestimationBias), 2)});
  }
  table.Print(std::cout);

  std::cout << "\npaper shape: deltas grow with the target error level; Type 2"
               " needs smaller deltas than Type 1 at the same level (all band"
               " paths flip, not half)\n";
  return 0;
}
