// Table 2: accuracy rates and confusion matrices under the default
// parameters, classes decided by the sign of x̂_ij.
//
// Paper values for reference: accuracy 89.4% (Harvard), 85.4% (Meridian),
// 87.3% (HP-S3), with good-recall a few points above bad-recall everywhere.
//
// Usage: table2_confusion [--quick] [--seed=N]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "eval/confusion.hpp"
#include "eval/scored_pairs.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace dmfsgd;

  const common::Flags flags(argc, argv, {"quick", "seed"});
  const bool quick = flags.GetBool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  std::cout << "=== Table 2: accuracy and confusion matrices ===\n";

  for (const bench::PaperDataset& paper : bench::AllPaperDatasets(quick)) {
    const core::SimulationConfig config = bench::DefaultConfig(paper, seed);
    core::DmfsgdSimulation simulation(paper.dataset, config);
    bench::Train(simulation, paper);

    eval::CollectOptions options;
    options.max_pairs = 200000;
    const auto pairs = eval::CollectScoredPairs(simulation, options);
    const auto cm =
        eval::ConfusionFromScores(eval::Scores(pairs), eval::Labels(pairs));

    std::cout << "\n" << paper.dataset.name << ": accuracy = "
              << common::FormatFixed(cm.Accuracy() * 100.0, 1) << "%\n";
    common::Table table({"", "Predicted Good", "Predicted Bad"});
    table.AddRow({"Actual Good",
                  common::FormatFixed(cm.GoodRecall() * 100.0, 1) + "%",
                  common::FormatFixed((1.0 - cm.GoodRecall()) * 100.0, 1) + "%"});
    table.AddRow({"Actual Bad",
                  common::FormatFixed(cm.Fpr() * 100.0, 1) + "%",
                  common::FormatFixed(cm.BadRecall() * 100.0, 1) + "%"});
    table.Print(std::cout);
  }

  std::cout << "\npaper shape: 85-90% accuracy; good paths slightly easier to"
               " recognize than bad ones\n";
  return 0;
}
