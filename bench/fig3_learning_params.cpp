// Figure 3: AUC under different learning rates η and regularization
// coefficients λ, for the logistic and hinge losses, on all three datasets.
//
// Paper setup: first row sweeps η with λ = 0.1, second row sweeps λ with
// η = 0.1; r = 10, k = 10/32/10, τ = dataset median.  Expected shape:
// a plateau around η = λ = 0.1 and logistic ≳ hinge in most cells.
//
// Usage: fig3_learning_params [--quick] [--seed=N]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace dmfsgd;

  const common::Flags flags(argc, argv, {"quick", "seed"});
  const bool quick = flags.GetBool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  const std::vector<double> sweep{0.001, 0.01, 0.1, 1.0};
  const std::vector<core::LossKind> losses{core::LossKind::kLogistic,
                                           core::LossKind::kHinge};

  std::cout << "=== Figure 3: AUC vs eta and lambda (logistic vs hinge) ===\n";

  for (const bench::PaperDataset& paper : bench::AllPaperDatasets(quick)) {
    std::cout << "\n--- " << paper.dataset.name << " (n = "
              << paper.dataset.NodeCount() << ", k = " << paper.default_k
              << ", tau = " << paper.dataset.MedianValue() << ") ---\n";

    common::Table eta_table({"loss", "eta=0.001", "eta=0.01", "eta=0.1",
                             "eta=1.0"});
    for (const core::LossKind loss : losses) {
      std::vector<std::string> row{core::LossName(loss)};
      for (const double eta : sweep) {
        core::SimulationConfig config = bench::DefaultConfig(paper, seed);
        config.params.eta = eta;
        config.params.loss = loss;
        row.push_back(common::FormatFixed(bench::TrainedAuc(paper, config), 3));
      }
      eta_table.AddRow(std::move(row));
    }
    std::cout << "AUC vs eta (lambda = 0.1):\n";
    eta_table.Print(std::cout);

    common::Table lambda_table({"loss", "lambda=0.001", "lambda=0.01",
                                "lambda=0.1", "lambda=1.0"});
    for (const core::LossKind loss : losses) {
      std::vector<std::string> row{core::LossName(loss)};
      for (const double lambda : sweep) {
        core::SimulationConfig config = bench::DefaultConfig(paper, seed);
        config.params.lambda = lambda;
        config.params.loss = loss;
        row.push_back(common::FormatFixed(bench::TrainedAuc(paper, config), 3));
      }
      lambda_table.AddRow(std::move(row));
    }
    std::cout << "AUC vs lambda (eta = 0.1):\n";
    lambda_table.Print(std::cout);
  }
  std::cout << "\npaper shape: plateau near eta = lambda = 0.1; logistic >= "
               "hinge in most cells\n";
  return 0;
}
