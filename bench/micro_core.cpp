// Microbenchmarks (google-benchmark): the hot kernels of the library.
//
// These quantify the per-operation costs behind the paper's scalability
// claim — a DMFSGD update is O(r) vector arithmetic plus one small message,
// so a node handles thousands of measurements per second regardless of the
// network size.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/loss.hpp"
#include "core/node.hpp"
#include "core/simulation.hpp"
#include "core/wire.hpp"
#include "datasets/meridian.hpp"
#include "eval/roc.hpp"
#include "linalg/svd.hpp"

namespace {

using namespace dmfsgd;

void BM_LossGradient(benchmark::State& state) {
  const auto kind = static_cast<core::LossKind>(state.range(0));
  double x_hat = 0.37;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::LossGradientScale(kind, 1.0, x_hat));
    x_hat = -x_hat;
  }
}
BENCHMARK(BM_LossGradient)
    ->Arg(static_cast<int>(core::LossKind::kHinge))
    ->Arg(static_cast<int>(core::LossKind::kLogistic))
    ->Arg(static_cast<int>(core::LossKind::kL2));

void BM_RttUpdate(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  core::DmfsgdNode node(0, rank, rng);
  core::DmfsgdNode remote(1, rank, rng);
  const core::UpdateParams params;
  double label = 1.0;
  for (auto _ : state) {
    node.RttUpdate(label, remote.u(), remote.v(), params);
    label = -label;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RttUpdate)->Arg(3)->Arg(10)->Arg(100);

void BM_AbwUpdatePair(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  core::DmfsgdNode prober(0, rank, rng);
  core::DmfsgdNode target(1, rank, rng);
  const core::UpdateParams params;
  for (auto _ : state) {
    target.AbwTargetUpdate(1.0, prober.u(), params);
    prober.AbwProberUpdate(1.0, target.v(), params);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AbwUpdatePair)->Arg(10);

void BM_WireRoundTrip(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  core::RttProbeReply reply{7, std::vector<double>(rank, 0.5),
                            std::vector<double>(rank, -0.5)};
  for (auto _ : state) {
    const auto encoded = core::Encode(reply);
    benchmark::DoNotOptimize(core::DecodeRttProbeReply(encoded));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * core::Encode(reply).size()));
}
BENCHMARK(BM_WireRoundTrip)->Arg(10)->Arg(100);

void BM_SimulationRound(benchmark::State& state) {
  datasets::MeridianConfig dataset_config;
  dataset_config.node_count = static_cast<std::size_t>(state.range(0));
  const datasets::Dataset dataset = datasets::MakeMeridian(dataset_config);
  core::SimulationConfig config;
  config.neighbor_count = 10;
  config.tau = dataset.MedianValue();
  core::DmfsgdSimulation simulation(dataset, config);
  for (auto _ : state) {
    simulation.RunRounds(1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dataset.NodeCount()));
}
BENCHMARK(BM_SimulationRound)->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

void BM_Auc(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  common::Rng rng(3);
  std::vector<double> scores(count);
  std::vector<int> labels(count);
  for (std::size_t i = 0; i < count; ++i) {
    scores[i] = rng.Normal();
    labels[i] = rng.Bernoulli(0.5) ? 1 : -1;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::Auc(scores, labels));
  }
}
BENCHMARK(BM_Auc)->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_JacobiSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  linalg::Matrix m(n, n);
  m.FillUniform(rng, -1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::JacobiSvd(m));
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_RandomizedTopKSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  linalg::Matrix m(n, n);
  m.FillUniform(rng, -1.0, 1.0);
  for (auto _ : state) {
    common::Rng probe_rng(7);
    benchmark::DoNotOptimize(linalg::RandomizedTopKSvd(m, 20, probe_rng));
  }
}
BENCHMARK(BM_RandomizedTopKSvd)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_DatasetGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    datasets::MeridianConfig config;
    config.node_count = n;
    benchmark::DoNotOptimize(datasets::MakeMeridian(config));
  }
}
BENCHMARK(BM_DatasetGeneration)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
