// Shared experiment harness for the paper-reproduction bench binaries.
//
// Each bench binary regenerates one table or figure of the paper.  They all
// need the same three datasets, the paper's default parameters (§6.2) and an
// AUC-on-test-pairs evaluation, which live here.
//
// Every binary accepts `--quick` (reduced scale for smoke runs) and
// `--seed=N`; paper-scale defaults follow §6.1:
//   Harvard  226 nodes, 2.49M-record dynamic trace, k = 10
//   Meridian 2500 nodes, static, k = 32
//   HP-S3    231 nodes, static ABW with ~4% missing entries, k = 10
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/simulation.hpp"
#include "datasets/dataset.hpp"

namespace dmfsgd::bench {

/// One timed result destined for a machine-readable BENCH_*.json file (the
/// repo's perf-trajectory record; see bench/bench_core.cpp).
struct BenchJsonEntry {
  std::string name;        ///< e.g. "sgd_update/soa"
  double ops_per_sec = 0;  ///< primary metric
  std::size_t items = 0;   ///< operations timed
  double seconds = 0;      ///< wall time for `items`
};

/// Writes `entries` plus free-form `summary` scalars as a small JSON
/// document: {"benchmarks": [...], "summary": {...}}.  No external JSON
/// dependency — the schema is flat by design.
void WriteBenchJson(const std::filesystem::path& path,
                    const std::vector<BenchJsonEntry>& entries,
                    const std::vector<std::pair<std::string, double>>& summary);

/// Times `body` (which performs `items` operations) with `warmup` untimed
/// runs followed by `repeats` timed runs, and records the *minimum* wall
/// time.  Warmup absorbs first-touch page faults and cold caches; min-of-k
/// shrugs off scheduler noise.  Single-shot timings once misrecorded the
/// repo's perf trajectory (a 1.7x claim filed next to a 0.94x record), so
/// every BENCH_*.json entry must go through this.  Requires repeats > 0.
[[nodiscard]] BenchJsonEntry MeasureMinOfK(const std::string& name,
                                           std::size_t items, std::size_t warmup,
                                           std::size_t repeats,
                                           const std::function<void()>& body);

struct PaperDataset {
  datasets::Dataset dataset;
  std::size_t default_k = 10;
  std::vector<std::size_t> k_sweep;  ///< Figure 4(b) x-axis for this dataset
};

[[nodiscard]] PaperDataset MakePaperHarvard(bool quick, std::uint64_t seed = 226);
[[nodiscard]] PaperDataset MakePaperMeridian(bool quick, std::uint64_t seed = 2011);
[[nodiscard]] PaperDataset MakePaperHpS3(bool quick, std::uint64_t seed = 459);

/// All three, in the paper's order (Harvard, Meridian, HP-S3).
[[nodiscard]] std::vector<PaperDataset> AllPaperDatasets(bool quick);

/// The paper's default simulation parameters for this dataset:
/// η = λ = 0.1, r = 10, logistic loss, k = default_k, τ = median.
[[nodiscard]] core::SimulationConfig DefaultConfig(const PaperDataset& paper,
                                                   std::uint64_t seed = 1);

/// Trains a deployment with the paper's protocol: static datasets run
/// `budget_times_k` * k probing rounds; the Harvard trace is replayed in
/// time order (the budget then caps the number of records proportionally).
void Train(core::DmfsgdSimulation& simulation, const PaperDataset& paper,
           std::size_t budget_times_k = 30);

/// AUC on unmeasured pairs (reservoir-capped for the big Meridian matrix).
[[nodiscard]] double EvalAuc(const core::DmfsgdSimulation& simulation,
                             std::size_t max_pairs = 200000);

/// Convenience: build, train with defaults (+overrides applied by caller on
/// the returned config), evaluate.  Returns the AUC.
[[nodiscard]] double TrainedAuc(const PaperDataset& paper,
                                const core::SimulationConfig& config,
                                const core::ErrorInjector* injector = nullptr,
                                std::size_t budget_times_k = 30);

}  // namespace dmfsgd::bench
