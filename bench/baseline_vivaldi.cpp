// Baseline comparison: Vivaldi coordinates and IDES landmarks vs DMFSGD.
//
// The paper positions DMFSGD against Network Coordinate Systems (§2) and
// borrows Vivaldi's architecture (§5.3).  This bench quantifies the
// comparison the paper makes qualitatively, on the RTT datasets:
//
//  * class prediction: Vivaldi's predicted RTT thresholded at τ vs DMFSGD's
//    native class scores (AUC on non-neighbor pairs);
//  * peer selection: average stretch of picking the best-predicted peer.
//
// Expected shape on THIS substrate: Vivaldi wins on raw RTT accuracy —
// unsurprisingly, because the synthetic delay space is literally a Euclidean
// embedding plus access heights, i.e. Vivaldi's own generative model
// (DESIGN.md notes this substitution artifact).  DMFSGD's advantages are
// orthogonal: it handles asymmetric metrics (ABW) that no metric embedding
// can express, and its inputs are cheap binary class probes rather than
// exact quantities.  On real traces with heavy triangle-inequality
// violations the gap closes (the paper's motivation for factorization).
//
// Usage: baseline_vivaldi [--quick] [--seed=N]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/ides.hpp"
#include "core/vivaldi.hpp"
#include "eval/peer_selection.hpp"
#include "eval/regression_metrics.hpp"
#include "eval/roc.hpp"
#include "eval/scored_pairs.hpp"
#include "harness.hpp"

namespace {

using namespace dmfsgd;

/// AUC of thresholding Vivaldi's predicted RTT (smaller = better => score is
/// the negated prediction) on pairs outside Vivaldi's neighbor sets.
double VivaldiAuc(const core::VivaldiSimulation& vivaldi,
                  const datasets::Dataset& dataset, double tau) {
  std::vector<double> scores;
  std::vector<int> labels;
  for (std::size_t i = 0; i < dataset.NodeCount(); ++i) {
    for (std::size_t j = 0; j < dataset.NodeCount(); ++j) {
      if (i == j || !dataset.IsKnown(i, j) || vivaldi.IsNeighborPair(i, j)) {
        continue;
      }
      scores.push_back(-vivaldi.PredictRtt(i, j));
      labels.push_back(
          datasets::ClassOf(dataset.metric, dataset.Quantity(i, j), tau));
    }
  }
  return eval::Auc(scores, labels);
}

/// Average stretch of best-predicted-peer selection with Vivaldi (peer sets
/// mirror eval::EvaluatePeerSelection's construction).
double VivaldiStretch(const core::VivaldiSimulation& vivaldi,
                      const datasets::Dataset& dataset, std::size_t peer_count,
                      std::uint64_t seed) {
  common::Rng rng(seed);
  double stretch_sum = 0.0;
  std::size_t nodes = 0;
  for (std::size_t i = 0; i < dataset.NodeCount(); ++i) {
    std::vector<std::size_t> candidates;
    for (std::size_t j = 0; j < dataset.NodeCount(); ++j) {
      if (j != i && dataset.IsKnown(i, j) && !vivaldi.IsNeighborPair(i, j)) {
        candidates.push_back(j);
      }
    }
    rng.Shuffle(std::span(candidates));
    const std::size_t count = std::min(peer_count, candidates.size());
    if (count == 0) {
      continue;
    }
    std::size_t selected = candidates[0];
    std::size_t best = candidates[0];
    for (std::size_t p = 0; p < count; ++p) {
      const std::size_t j = candidates[p];
      if (vivaldi.PredictRtt(i, j) < vivaldi.PredictRtt(i, selected)) {
        selected = j;
      }
      if (dataset.Quantity(i, j) < dataset.Quantity(i, best)) {
        best = j;
      }
    }
    stretch_sum += dataset.Quantity(i, selected) / dataset.Quantity(i, best);
    ++nodes;
  }
  return stretch_sum / static_cast<double>(nodes);
}

}  // namespace

/// AUC of thresholding IDES quantity estimates on host-host pairs.
double IdesAuc(const core::IdesModel& ides, const datasets::Dataset& dataset,
               double tau) {
  std::vector<double> scores;
  std::vector<int> labels;
  const bool lower_better = datasets::LowerIsBetter(dataset.metric);
  for (std::size_t i = 0; i < dataset.NodeCount(); ++i) {
    for (std::size_t j = 0; j < dataset.NodeCount(); ++j) {
      if (i == j || !dataset.IsKnown(i, j) || ides.IsLandmark(i) ||
          ides.IsLandmark(j)) {
        continue;
      }
      scores.push_back(lower_better ? -ides.Predict(i, j) : ides.Predict(i, j));
      labels.push_back(
          datasets::ClassOf(dataset.metric, dataset.Quantity(i, j), tau));
    }
  }
  return eval::Auc(scores, labels);
}

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"quick", "seed"});
  const bool quick = flags.GetBool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  std::cout << "=== Baselines: Vivaldi and IDES vs DMFSGD ===\n";

  std::vector<bench::PaperDataset> papers;
  papers.push_back(bench::MakePaperHarvard(quick));
  papers.push_back(bench::MakePaperMeridian(quick));
  for (const bench::PaperDataset& paper : papers) {
    const core::SimulationConfig dmf_config = bench::DefaultConfig(paper, seed);

    // DMFSGD classification.
    core::DmfsgdSimulation dmf(paper.dataset, dmf_config);
    bench::Train(dmf, paper);

    // Vivaldi with the same neighbor budget and a matched training budget.
    core::VivaldiConfig vivaldi_config;
    vivaldi_config.neighbor_count = paper.default_k;
    vivaldi_config.seed = seed;
    core::VivaldiSimulation vivaldi(paper.dataset, vivaldi_config);
    vivaldi.RunRounds(30 * paper.default_k);

    const double dmf_auc = bench::EvalAuc(dmf);
    const double viv_auc = VivaldiAuc(vivaldi, paper.dataset, dmf_config.tau);

    std::cout << "\n--- " << paper.dataset.name << " ---\n";
    common::Table table({"system", "class AUC", "peer-selection stretch"});
    {
      eval::PeerSelectionConfig peer_config;
      peer_config.peer_count = 30;
      peer_config.seed = seed + 100;
      const auto outcome = eval::EvaluatePeerSelection(
          dmf, eval::SelectionMethod::kClassification, peer_config);
      table.AddRow({"DMFSGD (classes)", common::FormatFixed(dmf_auc, 3),
                    common::FormatFixed(outcome.average_stretch, 3)});
    }
    table.AddRow({"Vivaldi (embedding)", common::FormatFixed(viv_auc, 3),
                  common::FormatFixed(
                      VivaldiStretch(vivaldi, paper.dataset, 30, seed + 100), 3)});
    table.Print(std::cout);

    // Quantity-accuracy detail for the embedding (NCS-style statistics).
    std::vector<double> predicted;
    std::vector<double> actual;
    for (std::size_t i = 0; i < paper.dataset.NodeCount(); ++i) {
      for (std::size_t j = 0; j < paper.dataset.NodeCount(); ++j) {
        if (i == j || vivaldi.IsNeighborPair(i, j)) {
          continue;
        }
        predicted.push_back(vivaldi.PredictRtt(i, j));
        actual.push_back(paper.dataset.Quantity(i, j));
      }
    }
    const auto rel = eval::SummarizeRelativeError(predicted, actual);
    std::cout << "Vivaldi relative RTT error: median "
              << common::FormatFixed(rel.median, 3) << ", p90 "
              << common::FormatFixed(rel.p90, 3) << ", within-50% "
              << common::FormatFixed(rel.within_half * 100.0, 1) << "%\n";
  }

  // IDES handles asymmetric metrics (unlike Vivaldi) but needs landmarks
  // and a central solver (unlike DMFSGD) — compare on all three datasets.
  std::cout << "\n--- IDES (landmark MF, m = 20 landmarks) vs DMFSGD ---\n";
  {
    common::Table table({"dataset", "IDES class AUC", "DMFSGD class AUC",
                         "IDES measurements", "DMFSGD measurements"});
    for (const bench::PaperDataset& paper : bench::AllPaperDatasets(quick)) {
      core::IdesConfig ides_config;
      ides_config.landmark_count = 20;
      ides_config.rank = 10;
      ides_config.seed = seed;
      const core::IdesModel ides(paper.dataset, ides_config);

      const core::SimulationConfig dmf_config = bench::DefaultConfig(paper, seed);
      core::DmfsgdSimulation dmf(paper.dataset, dmf_config);
      bench::Train(dmf, paper);

      table.AddRow({paper.dataset.name,
                    common::FormatFixed(
                        IdesAuc(ides, paper.dataset, dmf_config.tau), 3),
                    common::FormatFixed(bench::EvalAuc(dmf), 3),
                    std::to_string(ides.MeasurementCount()),
                    std::to_string(dmf.MeasurementCount())});
    }
    table.Print(std::cout);
    std::cout << "IDES consumes exact *quantities* at special landmark nodes;"
                 " DMFSGD consumes cheap class probes at ordinary peers\n";
  }

  std::cout << "\nnote: the synthetic substrates favor both baselines — the"
               " delay space is Vivaldi's own generative model, and IDES gets"
               " exact noise-free quantities plus a centralized SVD.  DMFSGD"
               " trades a few AUC points for what the paper actually targets:"
               " no landmarks, no central solver, no exact measurements —"
               " only cheap binary probes between ordinary peers\n";
  return 0;
}
