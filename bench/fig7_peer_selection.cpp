// Figure 7: peer selection — optimality (stretch) and satisfaction
// (unsatisfied-node percentage) for peer sets of 10..60 candidates.
//
// Paper setup, per dataset: four curves — Random, Classification (logistic
// on labels), Regression (L2 on quantities), and Classification trained on
// 15% erroneous labels (10% flip-near-τ + 5% good-to-bad).  Expected shape:
// Regression wins stretch, Classification stays within ~10% unsatisfied
// nodes, 15% label noise costs < 5% satisfaction.
//
// Usage: fig7_peer_selection [--quick] [--seed=N]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "eval/peer_selection.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace dmfsgd;

  const common::Flags flags(argc, argv, {"quick", "seed"});
  const bool quick = flags.GetBool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  const std::vector<std::size_t> peer_counts{10, 20, 30, 40, 50, 60};

  std::cout << "=== Figure 7: peer selection, optimality vs satisfaction ===\n";

  for (const bench::PaperDataset& paper : bench::AllPaperDatasets(quick)) {
    const core::SimulationConfig class_config = bench::DefaultConfig(paper, seed);

    // Classification deployment.
    core::DmfsgdSimulation class_sim(paper.dataset, class_config);
    bench::Train(class_sim, paper);

    // Classification trained on 15% erroneous labels: 10% Type 1 + 5%
    // good-to-bad (the paper's noise mix for this figure).
    const double delta = core::DeltaForErrorRate(
        paper.dataset, class_config.tau, core::ErrorType::kFlipNearTau, 0.10);
    const std::vector<core::ErrorSpec> specs{
        {core::ErrorType::kFlipNearTau, delta, 0.0},
        {core::ErrorType::kGoodToBad, 0.0, 0.05}};
    const core::ErrorInjector injector(paper.dataset, class_config.tau, specs,
                                       seed + 29);
    core::DmfsgdSimulation noisy_sim(paper.dataset, class_config, &injector);
    bench::Train(noisy_sim, paper);

    // Regression deployment (L2 on tau-normalized quantities), same seed so
    // neighbor sets and hence peer sets coincide.
    core::SimulationConfig reg_config = class_config;
    reg_config.mode = core::PredictionMode::kRegression;
    reg_config.params.loss = core::LossKind::kL2;
    // Quantity-based prediction needs weaker shrinkage: lambda = 0.1 biases
    // x-hat toward 0 and distorts the ranking of short paths (documented
    // substitution, EXPERIMENTS.md).
    reg_config.params.lambda = 0.01;
    core::DmfsgdSimulation reg_sim(paper.dataset, reg_config);
    bench::Train(reg_sim, paper);

    std::cout << "\n--- " << paper.dataset.name
              << " (label noise rate of the noisy deployment: "
              << common::FormatFixed(injector.ErrorRate() * 100.0, 1)
              << "%) ---\n";

    common::Table stretch({"peers", "Random", "Classification", "Regression",
                           "Classification+noise"});
    common::Table unsatisfied({"peers", "Random", "Classification", "Regression",
                               "Classification+noise"});
    for (const std::size_t peers : peer_counts) {
      eval::PeerSelectionConfig peer_config;
      peer_config.peer_count = peers;
      peer_config.seed = seed + 100;
      const auto random = eval::EvaluatePeerSelection(
          class_sim, eval::SelectionMethod::kRandom, peer_config);
      const auto classified = eval::EvaluatePeerSelection(
          class_sim, eval::SelectionMethod::kClassification, peer_config);
      const auto regressed = eval::EvaluatePeerSelection(
          reg_sim, eval::SelectionMethod::kRegression, peer_config);
      const auto noisy = eval::EvaluatePeerSelection(
          noisy_sim, eval::SelectionMethod::kClassification, peer_config);

      stretch.AddRow({std::to_string(peers),
                      common::FormatFixed(random.average_stretch, 3),
                      common::FormatFixed(classified.average_stretch, 3),
                      common::FormatFixed(regressed.average_stretch, 3),
                      common::FormatFixed(noisy.average_stretch, 3)});
      unsatisfied.AddRow(
          {std::to_string(peers),
           common::FormatFixed(random.unsatisfied_fraction * 100.0, 1),
           common::FormatFixed(classified.unsatisfied_fraction * 100.0, 1),
           common::FormatFixed(regressed.unsatisfied_fraction * 100.0, 1),
           common::FormatFixed(noisy.unsatisfied_fraction * 100.0, 1)});
    }
    std::cout << "optimality (average stretch"
              << (paper.dataset.metric == datasets::Metric::kRtt ? ", >= 1"
                                                                 : ", <= 1")
              << ", closer to 1 is better):\n";
    stretch.Print(std::cout);
    std::cout << "satisfaction (unsatisfied node %):\n";
    unsatisfied.Print(std::cout);
  }

  std::cout << "\npaper shape: prediction beats Random; Regression wins"
               " stretch; Classification keeps ~10% unsatisfied nodes and"
               " loses < 5% under 15% label noise\n";
  return 0;
}
