// Deployment-realism ablations (extensions beyond the paper's evaluation):
//
//  1. Synchronous rounds vs asynchronous event-driven execution — stale
//     coordinate snapshots and in-flight interleaving at equal measurement
//     budget.
//  2. Probe scheduling strategies — uniform random (paper), round-robin,
//     loss-driven active sampling (inspired by Rish & Tesauro [20]).
//  3. Membership churn — nodes leaving/rejoining with fresh state.
//
// Usage: ablation_deployment [--quick] [--seed=N]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/async_simulation.hpp"
#include "eval/roc.hpp"
#include "eval/scored_pairs.hpp"
#include "harness.hpp"

namespace {

using namespace dmfsgd;

double AsyncAuc(const core::AsyncDmfsgdSimulation& simulation) {
  const auto& dataset = simulation.dataset();
  std::vector<double> scores;
  std::vector<int> labels;
  for (std::size_t i = 0; i < dataset.NodeCount(); ++i) {
    for (std::size_t j = 0; j < dataset.NodeCount(); ++j) {
      if (i == j || !dataset.IsKnown(i, j) || simulation.IsNeighborPair(i, j)) {
        continue;
      }
      scores.push_back(simulation.Predict(i, j));
      labels.push_back(datasets::ClassOf(dataset.metric, dataset.Quantity(i, j),
                                         simulation.config().tau));
    }
  }
  return eval::Auc(scores, labels);
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"quick", "seed"});
  const bool quick = flags.GetBool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  std::cout << "=== Deployment ablations ===\n";

  // A mid-size RTT world keeps this suite fast while the full-scale runs
  // live in the per-figure benches.
  bench::PaperDataset paper = bench::MakePaperMeridian(true, 2011 + seed);
  (void)quick;

  // --- [1] synchronous vs asynchronous ---
  {
    std::cout << "\n[1] synchronous rounds vs event-driven asynchrony ("
              << paper.dataset.name << ", n = " << paper.dataset.NodeCount()
              << "):\n";
    const core::SimulationConfig sync_config = bench::DefaultConfig(paper, seed);
    core::AsyncSimulationConfig async_config;
    async_config.base = sync_config;
    core::AsyncDmfsgdSimulation async_sim(paper.dataset, async_config);
    async_sim.RunUntil(30.0 * static_cast<double>(paper.default_k));

    core::DmfsgdSimulation sync_sim(paper.dataset, sync_config);
    sync_sim.RunRounds(
        static_cast<std::size_t>(async_sim.AverageMeasurementsPerNode()));

    common::Table table({"execution model", "measurements/node", "AUC"});
    table.AddRow({"synchronous rounds",
                  common::FormatFixed(sync_sim.AverageMeasurementsPerNode(), 1),
                  common::FormatFixed(bench::EvalAuc(sync_sim), 3)});
    table.AddRow({"asynchronous (stale snapshots)",
                  common::FormatFixed(async_sim.AverageMeasurementsPerNode(), 1),
                  common::FormatFixed(AsyncAuc(async_sim), 3)});
    table.Print(std::cout);
  }

  // --- [2] probe scheduling strategies ---
  {
    std::cout << "\n[2] probe scheduling strategies (fixed 30 x k rounds):\n";
    common::Table table({"strategy", "AUC"});
    for (const core::ProbeStrategy strategy :
         {core::ProbeStrategy::kUniformRandom, core::ProbeStrategy::kRoundRobin,
          core::ProbeStrategy::kLossDriven}) {
      core::SimulationConfig config = bench::DefaultConfig(paper, seed);
      config.strategy = strategy;
      core::DmfsgdSimulation simulation(paper.dataset, config);
      bench::Train(simulation, paper);
      table.AddRow({core::ProbeStrategyName(strategy),
                    common::FormatFixed(bench::EvalAuc(simulation), 3)});
    }
    table.Print(std::cout);
  }

  // --- [3] membership churn ---
  {
    std::cout << "\n[3] membership churn (fixed 30 x k rounds):\n";
    common::Table table({"churn/round", "nodes churned", "AUC"});
    for (const double churn : {0.0, 0.001, 0.005, 0.02}) {
      core::SimulationConfig config = bench::DefaultConfig(paper, seed);
      config.churn_rate = churn;
      core::DmfsgdSimulation simulation(paper.dataset, config);
      bench::Train(simulation, paper);
      table.AddRow({common::FormatFixed(churn * 100.0, 1) + "%",
                    std::to_string(simulation.ChurnCount()),
                    common::FormatFixed(bench::EvalAuc(simulation), 3)});
    }
    table.Print(std::cout);
  }

  std::cout << "\nexpected shape: asynchrony costs ~nothing; strategies are"
               " within noise of each other (the objective is uniform);"
               " accuracy degrades gracefully with churn\n";
  return 0;
}
