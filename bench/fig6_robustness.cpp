// Figure 6: robustness of class-based prediction against erroneous class
// labels at 0/5/10/15% error levels.
//
// Paper setup: Types 1 (flip near τ) and 4 (good-to-bad) on Harvard and
// Meridian; all four types on HP-S3 (Types 2 and 3 model ABW-specific
// mechanisms: tool underestimation and malicious targets).  Expected shape:
// random errors (Types 3/4) hurt noticeably; near-τ errors (Types 1/2)
// barely move the AUC.
//
// Usage: fig6_robustness [--quick] [--seed=N]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness.hpp"

namespace {

using namespace dmfsgd;

core::ErrorSpec MakeSpec(const datasets::Dataset& dataset, double tau,
                         core::ErrorType type, double level) {
  core::ErrorSpec spec;
  spec.type = type;
  if (type == core::ErrorType::kFlipNearTau ||
      type == core::ErrorType::kUnderestimationBias) {
    spec.delta = core::DeltaForErrorRate(dataset, tau, type, level);
  } else {
    spec.fraction = level;
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"quick", "seed"});
  const bool quick = flags.GetBool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  const std::vector<double> levels{0.05, 0.10, 0.15};

  std::cout << "=== Figure 6: robustness against erroneous class labels ===\n";

  for (const bench::PaperDataset& paper : bench::AllPaperDatasets(quick)) {
    const bool abw = paper.dataset.metric == datasets::Metric::kAbw;
    std::vector<core::ErrorType> types{core::ErrorType::kFlipNearTau,
                                       core::ErrorType::kGoodToBad};
    if (abw) {
      types = {core::ErrorType::kFlipNearTau, core::ErrorType::kUnderestimationBias,
               core::ErrorType::kFlipRandom, core::ErrorType::kGoodToBad};
    }

    const core::SimulationConfig config = bench::DefaultConfig(paper, seed);
    const double clean_auc = bench::TrainedAuc(paper, config);

    std::cout << "\n--- " << paper.dataset.name << " ---\n";
    common::Table table({"error type", "0%", "5%", "10%", "15%"});
    for (const core::ErrorType type : types) {
      std::vector<std::string> row{core::ErrorTypeName(type),
                                   common::FormatFixed(clean_auc, 3)};
      for (const double level : levels) {
        const core::ErrorSpec spec =
            MakeSpec(paper.dataset, config.tau, type, level);
        const core::ErrorInjector injector(paper.dataset, config.tau,
                                           std::vector<core::ErrorSpec>{spec},
                                           seed + 17);
        row.push_back(
            common::FormatFixed(bench::TrainedAuc(paper, config, &injector), 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
  }

  std::cout << "\npaper shape: random errors (Types 3-4) degrade AUC clearly;"
               " near-tau errors (Types 1-2) have limited impact\n";
  return 0;
}
