#include "harness.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "datasets/harvard.hpp"
#include "datasets/hps3.hpp"
#include "datasets/meridian.hpp"
#include "eval/roc.hpp"
#include "eval/scored_pairs.hpp"

namespace dmfsgd::bench {

PaperDataset MakePaperHarvard(bool quick, std::uint64_t seed) {
  datasets::HarvardConfig config;
  config.seed = seed;
  if (quick) {
    config.node_count = 80;
    config.trace_records = 100000;
  } else {
    config.node_count = 226;
    config.paper_scale = true;  // 2,492,546 records as in the paper
  }
  PaperDataset paper;
  paper.dataset = datasets::MakeHarvard(config);
  paper.default_k = 10;
  paper.k_sweep = {5, 10, 30, 50};
  return paper;
}

PaperDataset MakePaperMeridian(bool quick, std::uint64_t seed) {
  datasets::MeridianConfig config;
  config.seed = seed;
  config.node_count = quick ? 300 : 2500;
  PaperDataset paper;
  paper.dataset = datasets::MakeMeridian(config);
  paper.default_k = quick ? 16 : 32;
  paper.k_sweep = quick ? std::vector<std::size_t>{8, 16, 32, 64}
                        : std::vector<std::size_t>{16, 32, 64, 128};
  return paper;
}

PaperDataset MakePaperHpS3(bool quick, std::uint64_t seed) {
  datasets::HpS3Config config;
  config.seed = seed;
  config.host_count = quick ? 100 : 231;
  PaperDataset paper;
  paper.dataset = datasets::MakeHpS3(config);
  paper.default_k = 10;
  paper.k_sweep = {5, 10, 30, 50};
  return paper;
}

std::vector<PaperDataset> AllPaperDatasets(bool quick) {
  std::vector<PaperDataset> all;
  all.push_back(MakePaperHarvard(quick));
  all.push_back(MakePaperMeridian(quick));
  all.push_back(MakePaperHpS3(quick));
  return all;
}

core::SimulationConfig DefaultConfig(const PaperDataset& paper, std::uint64_t seed) {
  core::SimulationConfig config;
  config.rank = 10;
  config.params.eta = 0.1;
  config.params.lambda = 0.1;
  config.params.loss = core::LossKind::kLogistic;
  config.neighbor_count = paper.default_k;
  config.tau = paper.dataset.MedianValue();
  config.seed = seed;
  return config;
}

void Train(core::DmfsgdSimulation& simulation, const PaperDataset& paper,
           std::size_t budget_times_k) {
  if (paper.dataset.trace.empty()) {
    simulation.RunRounds(budget_times_k * simulation.config().neighbor_count);
    return;
  }
  // Dynamic trace: replay a prefix proportional to the budget (the full
  // trace corresponds to the full budget of 30).
  const std::size_t records =
      budget_times_k >= 30
          ? paper.dataset.trace.size()
          : paper.dataset.trace.size() * budget_times_k / 30;
  (void)simulation.ReplayTrace(0, records);
}

double EvalAuc(const core::DmfsgdSimulation& simulation, std::size_t max_pairs) {
  eval::CollectOptions options;
  options.max_pairs = max_pairs;
  const auto pairs = eval::CollectScoredPairs(simulation, options);
  return eval::Auc(eval::Scores(pairs), eval::Labels(pairs));
}

double TrainedAuc(const PaperDataset& paper, const core::SimulationConfig& config,
                  const core::ErrorInjector* injector,
                  std::size_t budget_times_k) {
  core::DmfsgdSimulation simulation(paper.dataset, config, injector);
  Train(simulation, paper, budget_times_k);
  return EvalAuc(simulation);
}

BenchJsonEntry MeasureMinOfK(const std::string& name, std::size_t items,
                             std::size_t warmup, std::size_t repeats,
                             const std::function<void()>& body) {
  if (repeats == 0) {
    throw std::invalid_argument("MeasureMinOfK: repeats must be > 0");
  }
  for (std::size_t w = 0; w < warmup; ++w) {
    body();
  }
  double best = 0.0;
  for (std::size_t k = 0; k < repeats; ++k) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (k == 0 || seconds < best) {
      best = seconds;
    }
  }
  BenchJsonEntry entry;
  entry.name = name;
  entry.items = items;
  entry.seconds = best;
  entry.ops_per_sec = static_cast<double>(items) / best;
  return entry;
}

// Sanitizer instrumentation slows the measured kernels by 2-20x; numbers
// from such a build would silently poison the tracked BENCH_core.json
// trajectory.  Detect instrumentation at compile time — gcc defines
// __SANITIZE_*, clang exposes __has_feature — plus the CMake marker the
// sanitizer presets set, and refuse to write.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    defined(DMFSGD_BENCH_TAINTED_BUILD)
#define DMFSGD_BENCH_TAINTED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define DMFSGD_BENCH_TAINTED 1
#endif
#endif

void WriteBenchJson(const std::filesystem::path& path,
                    const std::vector<BenchJsonEntry>& entries,
                    const std::vector<std::pair<std::string, double>>& summary) {
#ifdef DMFSGD_BENCH_TAINTED
  throw std::runtime_error(
      "WriteBenchJson: refusing to write " + path.string() +
      " from a sanitizer-instrumented build — its timings are not "
      "comparable to the tracked trajectory; rebuild without "
      "DMFSGD_SANITIZE to record bench results");
#else
  std::ostringstream out;
  out.precision(15);
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const BenchJsonEntry& entry = entries[e];
    out << "    {\"name\": \"" << entry.name
        << "\", \"ops_per_sec\": " << entry.ops_per_sec
        << ", \"items\": " << entry.items << ", \"seconds\": " << entry.seconds
        << "}" << (e + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"summary\": {";
  for (std::size_t s = 0; s < summary.size(); ++s) {
    out << "\"" << summary[s].first << "\": " << summary[s].second
        << (s + 1 < summary.size() ? ", " : "");
  }
  out << "}\n}\n";

  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("WriteBenchJson: cannot open " + path.string());
  }
  file << out.str();
#endif
}

}  // namespace dmfsgd::bench
