// Ablations and extensions beyond the paper's figures:
//
//  1. Multiclass (ordinal) prediction — the paper's §7 future work: exact
//     accuracy and mean absolute level error for C = 2, 3, 5 classes.
//  2. Message loss — the decentralized protocol under a lossy network
//     (not evaluated in the paper, but a deployment concern §5 raises).
//  3. Centralized batch MF vs decentralized DMFSGD — what decentralization
//     costs on the same observed entries (DESIGN.md ablation).
//  4. Wire-format overhead — AUC equality check between in-memory and
//     serialized message exchange (the binary codec is lossless).
//
// Usage: ablation_extensions [--quick] [--seed=N]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/batch_mf.hpp"
#include "core/multiclass.hpp"
#include "eval/roc.hpp"
#include "eval/scored_pairs.hpp"
#include "harness.hpp"

namespace {

using namespace dmfsgd;

void MulticlassAblation(const bench::PaperDataset& paper, std::uint64_t seed) {
  std::cout << "\n[1] multiclass (ordinal) extension on " << paper.dataset.name
            << ":\n";
  common::Table table({"classes", "accuracy %", "chance %", "mean |level err|"});
  for (const std::size_t classes : {2, 3, 5}) {
    core::MulticlassConfig config;
    config.num_classes = classes;
    config.thresholds = core::EqualMassThresholds(paper.dataset, classes);
    config.rank = 10;
    config.neighbor_count = paper.default_k;
    config.seed = seed;
    core::OrdinalDmfsgdSimulation simulation(paper.dataset, config);
    simulation.RunRounds(30 * paper.default_k);
    const auto eval = simulation.Evaluate();
    table.AddRow({std::to_string(classes),
                  common::FormatFixed(eval.accuracy * 100.0, 1),
                  common::FormatFixed(100.0 / static_cast<double>(classes), 1),
                  common::FormatFixed(eval.mean_absolute_error, 3)});
  }
  table.Print(std::cout);
}

void MessageLossAblation(const bench::PaperDataset& paper, std::uint64_t seed) {
  std::cout << "\n[2] message loss on " << paper.dataset.name
            << " (fixed 30 x k round budget):\n";
  common::Table table({"loss rate", "AUC", "applied measurements/node"});
  for (const double loss : {0.0, 0.1, 0.3, 0.5}) {
    core::SimulationConfig config = bench::DefaultConfig(paper, seed);
    config.message_loss = loss;
    core::DmfsgdSimulation simulation(paper.dataset, config);
    bench::Train(simulation, paper);
    table.AddRow({common::FormatFixed(loss * 100.0, 0) + "%",
                  common::FormatFixed(bench::EvalAuc(simulation), 3),
                  common::FormatFixed(simulation.AverageMeasurementsPerNode(), 1)});
  }
  table.Print(std::cout);
}

void CentralizedAblation(const bench::PaperDataset& paper, std::uint64_t seed) {
  std::cout << "\n[3] decentralized DMFSGD vs centralized batch MF on "
            << paper.dataset.name << ":\n";
  core::SimulationConfig config = bench::DefaultConfig(paper, seed);
  core::DmfsgdSimulation simulation(paper.dataset, config);
  bench::Train(simulation, paper);

  // Batch MF sees exactly the neighbor-pair labels the deployment trained on.
  const std::size_t n = paper.dataset.NodeCount();
  linalg::Matrix observed(n, n, linalg::Matrix::kMissing);
  for (std::size_t i = 0; i < n; ++i) {
    for (const core::NodeId j : simulation.Neighbors()[i]) {
      observed(i, j) = static_cast<double>(datasets::ClassOf(
          paper.dataset.metric, paper.dataset.Quantity(i, j), config.tau));
    }
  }
  core::BatchMfConfig batch_config;
  batch_config.rank = config.rank;
  batch_config.epochs = 150;
  batch_config.seed = seed;
  const auto batch = core::FitBatchMf(observed, batch_config);

  eval::CollectOptions options;
  options.max_pairs = 100000;
  const auto pairs = eval::CollectScoredPairs(simulation, options);
  std::vector<double> batch_scores;
  batch_scores.reserve(pairs.size());
  for (const auto& pair : pairs) {
    batch_scores.push_back(batch.Predict(pair.i, pair.j));
  }
  const auto labels = eval::Labels(pairs);
  common::Table table({"solver", "AUC"});
  table.AddRow({"DMFSGD (decentralized)",
                common::FormatFixed(eval::Auc(eval::Scores(pairs), labels), 3)});
  table.AddRow({"batch MF (centralized)",
                common::FormatFixed(eval::Auc(batch_scores, labels), 3)});
  table.Print(std::cout);
}

void WireAblation(const bench::PaperDataset& paper, std::uint64_t seed) {
  std::cout << "\n[4] wire-format (serialized messages) on " << paper.dataset.name
            << ":\n";
  common::Table table({"transport", "AUC"});
  for (const bool wire : {false, true}) {
    core::SimulationConfig config = bench::DefaultConfig(paper, seed);
    config.use_wire_format = wire;
    table.AddRow({wire ? "binary wire codec" : "in-memory",
                  common::FormatFixed(bench::TrainedAuc(paper, config), 3)});
  }
  table.Print(std::cout);
}

void LossComparison(const bench::PaperDataset& paper, std::uint64_t seed) {
  std::cout << "\n[5] classification losses on " << paper.dataset.name
            << " (incl. the smooth-hinge extension):\n";
  common::Table table({"loss", "AUC"});
  for (const core::LossKind loss :
       {core::LossKind::kLogistic, core::LossKind::kHinge,
        core::LossKind::kSmoothHinge}) {
    core::SimulationConfig config = bench::DefaultConfig(paper, seed);
    config.params.loss = loss;
    table.AddRow({core::LossName(loss),
                  common::FormatFixed(bench::TrainedAuc(paper, config), 3)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"quick", "seed"});
  const bool quick = flags.GetBool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  std::cout << "=== Ablations and extensions ===\n";

  // Use the mid-size datasets to keep the ablation suite quick; the paper
  // figures cover the full-scale runs.
  const bench::PaperDataset meridian =
      quick ? bench::MakePaperMeridian(true) : bench::MakePaperHpS3(false);
  const bench::PaperDataset rtt = [&] {
    bench::PaperDataset paper = bench::MakePaperMeridian(true);
    return paper;
  }();

  MulticlassAblation(rtt, seed);
  MessageLossAblation(rtt, seed);
  CentralizedAblation(rtt, seed);
  WireAblation(meridian, seed);
  LossComparison(rtt, seed);
  return 0;
}
