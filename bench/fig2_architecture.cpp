// Figure 2: the class-based measurement-and-prediction architecture, as a
// *working* demo rather than a diagram.
//
// The paper's figure shows an 8x8 matrix X of measured ±1 classes with
// holes, the factorization estimate X̂ = U Vᵀ, and the recovered sign
// matrix.  This bench builds exactly that pipeline on a small network:
// measure a subset of pairs (pathload-style binary verdicts for ABW, ping
// thresholding for RTT), complete the matrix, print all three stages, and
// score the recovered signs against the held-out ground truth.
//
// Usage: fig2_architecture [--nodes=N] [--seed=S]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/batch_mf.hpp"
#include "datasets/hps3.hpp"
#include "linalg/matrix.hpp"

namespace {

using namespace dmfsgd;

void PrintClassMatrix(const linalg::Matrix& m) {
  for (std::size_t i = 0; i < m.Rows(); ++i) {
    std::cout << "  ";
    for (std::size_t j = 0; j < m.Cols(); ++j) {
      if (linalg::Matrix::IsMissing(m(i, j))) {
        std::cout << "  . ";
      } else {
        std::cout << (m(i, j) > 0 ? " +1 " : " -1 ");
      }
    }
    std::cout << "\n";
  }
}

void PrintEstimate(const core::BatchMfResult& model, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::cout << "  ";
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        std::cout << "    . ";
        continue;
      }
      char buffer[16];
      std::snprintf(buffer, sizeof(buffer), "%5.1f ", model.Predict(i, j));
      std::cout << buffer;
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"nodes", "seed"});
  const auto n = static_cast<std::size_t>(flags.GetInt("nodes", 8));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 2));

  std::cout << "=== Figure 2: class-based measurement and prediction ===\n";

  // A small ABW network; τ = median -> the pathload verdict matrix.
  datasets::HpS3Config dataset_config;
  dataset_config.host_count = std::max<std::size_t>(n, 8);
  dataset_config.missing_fraction = 0.0;
  dataset_config.seed = seed;
  const datasets::Dataset dataset = datasets::MakeHpS3(dataset_config);
  const double tau = dataset.MedianValue();
  const linalg::Matrix truth = dataset.ClassMatrix(tau);

  // Measurement module: probe ~60% of the off-diagonal pairs.
  common::Rng rng(seed + 1);
  linalg::Matrix observed(n, n, linalg::Matrix::kMissing);
  std::size_t measured = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.Bernoulli(0.6)) {
        observed(i, j) = truth(i, j);
        ++measured;
      }
    }
  }
  std::cout << "\nX — measured classes (" << measured << " of " << n * (n - 1)
            << " pairs probed at rate tau = " << tau << " Mbps; . = unknown):\n";
  PrintClassMatrix(observed);

  // Prediction module: rank-r factorization of the incomplete matrix.
  core::BatchMfConfig mf_config;
  mf_config.rank = 3;
  mf_config.epochs = 400;
  mf_config.eta = 0.5;
  mf_config.seed = seed + 2;
  const core::BatchMfResult model = core::FitBatchMf(observed, mf_config);

  std::cout << "\nX-hat = U V^T — real-valued estimates (rank " << mf_config.rank
            << "):\n";
  PrintEstimate(model, n);

  std::cout << "\nsign(x-hat) — predicted classes:\n";
  linalg::Matrix predicted(n, n, linalg::Matrix::kMissing);
  std::size_t correct = 0;
  std::size_t held_out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      predicted(i, j) = model.Predict(i, j) > 0 ? 1.0 : -1.0;
      if (linalg::Matrix::IsMissing(observed(i, j))) {
        ++held_out;
        if (predicted(i, j) == truth(i, j)) {
          ++correct;
        }
      }
    }
  }
  PrintClassMatrix(predicted);

  std::cout << "\nrecovered " << correct << "/" << held_out
            << " held-out (never measured) pair classes correctly ("
            << common::FormatFixed(
                   100.0 * static_cast<double>(correct) /
                       static_cast<double>(held_out == 0 ? 1 : held_out),
                   1)
            << "%)\n";
  return 0;
}
