// Figure 5: accuracy of class-based prediction under the default parameter
// configuration — (a) ROC curves, (b) precision-recall curves, (c) AUC as a
// function of the average number of measurements per node.
//
// Paper shape: ROC hugging the top-left corner, precision staying high
// through most of the recall range, and convergence after each node used at
// most ~20k measurements.
//
// Usage: fig5_accuracy [--quick] [--seed=N]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "eval/precision_recall.hpp"
#include "eval/roc.hpp"
#include "eval/scored_pairs.hpp"
#include "harness.hpp"

namespace {

using namespace dmfsgd;

/// Downsamples a curve to ~points entries for textual output.
template <typename Point>
std::vector<Point> Downsample(const std::vector<Point>& curve,
                              std::size_t points) {
  if (curve.size() <= points) {
    return curve;
  }
  std::vector<Point> out;
  out.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    out.push_back(curve[p * (curve.size() - 1) / (points - 1)]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv, {"quick", "seed"});
  const bool quick = flags.GetBool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  std::cout << "=== Figure 5: accuracy under the default configuration ===\n";

  for (const bench::PaperDataset& paper : bench::AllPaperDatasets(quick)) {
    const core::SimulationConfig config = bench::DefaultConfig(paper, seed);
    core::DmfsgdSimulation simulation(paper.dataset, config, nullptr);

    // --- (c) convergence: AUC vs average measurements per node (x k) ---
    std::vector<double> xs;
    std::vector<double> ys;
    const std::size_t checkpoints = 25;
    const std::size_t budget_times_k = 50;
    if (paper.dataset.trace.empty()) {
      const std::size_t rounds_per_checkpoint =
          budget_times_k * config.neighbor_count / checkpoints;
      for (std::size_t c = 0; c < checkpoints; ++c) {
        simulation.RunRounds(rounds_per_checkpoint);
        xs.push_back(simulation.AverageMeasurementsPerNode() /
                     static_cast<double>(config.neighbor_count));
        ys.push_back(bench::EvalAuc(simulation, 100000));
      }
    } else {
      const std::size_t records_per_checkpoint =
          paper.dataset.trace.size() / checkpoints;
      for (std::size_t c = 0; c < checkpoints; ++c) {
        (void)simulation.ReplayTrace(c * records_per_checkpoint,
                                     (c + 1) * records_per_checkpoint);
        xs.push_back(simulation.AverageMeasurementsPerNode() /
                     static_cast<double>(config.neighbor_count));
        ys.push_back(bench::EvalAuc(simulation, 100000));
      }
    }

    std::cout << "\n--- " << paper.dataset.name << " ---\n";
    std::cout << "(c) AUC vs measurement number (x k):\n";
    common::PrintSeries(std::cout, paper.dataset.name + " AUC(measurements/k)",
                        xs, ys, 3);

    // --- (a) ROC and (b) precision-recall on the trained deployment ---
    eval::CollectOptions options;
    options.max_pairs = 200000;
    const auto pairs = eval::CollectScoredPairs(simulation, options);
    const auto scores = eval::Scores(pairs);
    const auto labels = eval::Labels(pairs);

    const auto roc = Downsample(eval::RocCurve(scores, labels), 15);
    std::cout << "(a) ROC (FPR TPR):\n";
    common::Table roc_table({"FPR", "TPR"});
    for (const auto& point : roc) {
      roc_table.AddRow(std::vector<double>{point.fpr, point.tpr}, 3);
    }
    roc_table.Print(std::cout);

    const auto pr = Downsample(eval::PrecisionRecallCurve(scores, labels), 15);
    std::cout << "(b) Precision-Recall:\n";
    common::Table pr_table({"recall", "precision"});
    for (const auto& point : pr) {
      pr_table.AddRow(std::vector<double>{point.recall, point.precision}, 3);
    }
    pr_table.Print(std::cout);

    std::cout << "final AUC: " << common::FormatFixed(eval::Auc(scores, labels), 4)
              << "\n";
  }
  std::cout << "\npaper shape: converged within ~20 x k measurements per node;"
               " AUC > 0.9 on all datasets\n";
  return 0;
}
