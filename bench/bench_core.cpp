// BENCH_core.json: the hot-path perf record of the repo.
//
// Times the DMFSGD SGD update inner loop — the operation every deployment
// executes once per measurement — under the two coordinate layouts:
//
//   per-node-vector   each node owns two heap std::vector<double> (the
//                     pre-refactor layout; pointer-chasing across the heap)
//   soa               all rows in one contiguous CoordinateStore buffer per
//                     factor (the current layout)
//
// Both variants run the identical update arithmetic (DmfsgdNode's rules for
// SoA, the same Scale/Axpy sequence for the legacy layout), sweeping a
// deployment-sized population in node order against pseudo-random remote
// rows — the access pattern of a probing round.  Results are written as
// machine-readable JSON so successive PRs can track the trajectory.
//
// Usage: bench_core [output.json] [--quick]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/coordinate_store.hpp"
#include "core/node.hpp"
#include "harness.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using namespace dmfsgd;

constexpr std::size_t kRank = 10;

/// The pre-refactor node layout: two independently heap-allocated vectors.
struct LegacyNode {
  std::vector<double> u;
  std::vector<double> v;
};

/// One eq. 9-10 style update on raw spans — identical arithmetic to
/// DmfsgdNode::RttUpdate with the logistic loss, kept local so the legacy
/// layout doesn't need a DmfsgdNode wrapper.
void LegacyRttUpdate(std::span<double> u, std::span<double> v, double x,
                     std::span<const double> u_remote,
                     std::span<const double> v_remote,
                     const core::UpdateParams& params) {
  const double x_hat_ij = linalg::Dot(u, v_remote);
  const double g_u = core::LossGradientScale(params.loss, x, x_hat_ij);
  const double x_hat_ji = linalg::Dot(u_remote, v);
  const double g_v = core::LossGradientScale(params.loss, x, x_hat_ji);
  linalg::Scale(1.0 - params.eta * params.lambda, u);
  linalg::Axpy(-params.eta * g_u, v_remote, u);
  linalg::Scale(1.0 - params.eta * params.lambda, v);
  linalg::Axpy(-params.eta * g_v, u_remote, v);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Sweeps `sweeps` probing rounds over n legacy-layout nodes; returns wall
/// seconds.
double TimeLegacy(std::size_t n, std::size_t sweeps) {
  common::Rng rng(1);
  const core::UpdateParams params;
  // Interleave a decoy allocation per node, reproducing the heap scatter a
  // long-lived deployment accumulates between coordinate vectors.
  std::vector<LegacyNode> nodes(n);
  std::vector<std::vector<double>> decoys;
  decoys.reserve(n);
  for (auto& node : nodes) {
    node.u.resize(kRank);
    node.v.resize(kRank);
    decoys.emplace_back(64, 0.0);
    for (std::size_t d = 0; d < kRank; ++d) {
      node.u[d] = rng.Uniform();
      node.v[d] = rng.Uniform();
    }
  }
  const auto start = std::chrono::steady_clock::now();
  double label = 1.0;
  for (std::size_t round = 0; round < sweeps; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = (i * 7 + round) % n;
      LegacyRttUpdate(nodes[i].u, nodes[i].v, label, nodes[j].u, nodes[j].v,
                      params);
      label = -label;
    }
  }
  return SecondsSince(start);
}

/// Same sweep over the SoA CoordinateStore through DmfsgdNode views.
double TimeSoa(std::size_t n, std::size_t sweeps) {
  common::Rng rng(1);
  const core::UpdateParams params;
  core::CoordinateStore store(n, kRank);
  std::vector<core::DmfsgdNode> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.emplace_back(static_cast<core::NodeId>(i), store, i, rng);
  }
  const auto start = std::chrono::steady_clock::now();
  double label = 1.0;
  for (std::size_t round = 0; round < sweeps; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = (i * 7 + round) % n;
      nodes[i].RttUpdate(label, store.U(j), store.V(j), params);
      label = -label;
    }
  }
  return SecondsSince(start);
}

/// Best-of-three to shrug off scheduler noise.
template <typename TimeFn>
bench::BenchJsonEntry Measure(const std::string& name, std::size_t n,
                              std::size_t sweeps, TimeFn time_fn) {
  double best = time_fn(n, sweeps);
  for (int repeat = 0; repeat < 2; ++repeat) {
    const double seconds = time_fn(n, sweeps);
    if (seconds < best) {
      best = seconds;
    }
  }
  bench::BenchJsonEntry entry;
  entry.name = name;
  entry.items = n * sweeps;
  entry.seconds = best;
  entry.ops_per_sec = static_cast<double>(entry.items) / best;
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_core.json";
  bool quick = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      quick = true;
    } else {
      output = arg;
    }
  }

  // The layout difference is a cache effect: it only shows once the factor
  // working set outgrows L2, so even --quick keeps a deployment-scale n.
  const std::size_t n = quick ? 4096 : 8192;       // deployment size
  const std::size_t sweeps = quick ? 250 : 500;    // probing rounds

  const auto legacy =
      Measure("sgd_update/per-node-vector", n, sweeps, TimeLegacy);
  const auto soa = Measure("sgd_update/soa", n, sweeps, TimeSoa);
  const double speedup = soa.ops_per_sec / legacy.ops_per_sec;

  try {
    bench::WriteBenchJson(output, {legacy, soa},
                          {{"nodes", static_cast<double>(n)},
                           {"rank", static_cast<double>(kRank)},
                           {"soa_speedup", speedup}});
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }

  std::printf("%-28s %12.0f ops/s\n", legacy.name.c_str(), legacy.ops_per_sec);
  std::printf("%-28s %12.0f ops/s\n", soa.name.c_str(), soa.ops_per_sec);
  std::printf("soa speedup: %.3fx  -> %s\n", speedup, output.c_str());
  return 0;
}
