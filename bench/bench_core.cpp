// BENCH_core.json: the hot-path perf record of the repo.
//
// Multi-scenario suite over the three layers of the numerical hot path, all
// measured with warmup + min-of-k (see bench::MeasureMinOfK — single-shot
// numbers are not allowed into the trajectory record):
//
//   sgd_update/*       one eq. 9-10 update per measurement — the operation
//                      every deployment runs millions of times.  Compares
//                      the frozen seed baseline (per-node heap vectors +
//                      the seed's checked span kernels) against the current
//                      fused-kernel SoA path (DotPair + DecayAxpy through
//                      DmfsgdNode).
//   predict_matrix/*   the O(n²r) full-matrix sweep behind offline
//                      evaluation (PredictAll + EvaluateFullMatrix), at 1
//                      thread and at hardware concurrency.
//   round_throughput/* end-to-end probing rounds of DmfsgdSimulation —
//                      sequential channel-driven rounds vs the parallel
//                      deterministic sweep; the alg2-* variants run the
//                      same comparison on a target-measured (ABW) dataset
//                      through the target-sharded phase schedule; the
//                      coo-compiled variants run the sparse round compiler
//                      (DESIGN.md §14) against the per-message drain at
//                      n = 8192 (dense matrix) and n = 65536 (procedural
//                      delay-space ground truth).
//   ann_query/*        k-NN peer queries over live-drifting coordinates
//                      (DESIGN.md §16, §18): the drift-tolerant PeerIndex
//                      (fed by the engine dirty set) vs the brute-force
//                      oracle, at n = 8192 and n = 65536, plus — in full
//                      runs — the IVF-routed n = 10⁶ tier, where the coarse
//                      quantizer replaces the evenly-spaced entry points and
//                      the exact scan is a million dot products per query
//   svc_mixed/*        mixed read/update traffic against the resident
//   svc_ingest/*       svc::CoordinateService (DESIGN.md §17) at the same
//   svc_query/*        tiers: per-query timings give the p50/p99 SLO
//                      scalars, a pure push loop the sustained ingest
//                      throughput, and the end-of-run index staleness is
//                      recorded against its budget (--svc-ratio sets the
//                      query:update mix, default 4:1).  The svc_query
//                      scenario (DESIGN.md §18) runs a quiescent query-only
//                      pass through the shared read lock at 1 thread and at
//                      hw threads; their ratio is the parallel-scaling
//                      scalar the multicore CI leg pins.
//   async_drain/*      end-to-end event throughput of AsyncDmfsgdSimulation —
//                      the sequential cross-shard merge vs the parallel
//                      conservative-window drain (DESIGN.md §9) vs the
//                      2-process distributed drain over the loopback
//                      inter-shard channel (DESIGN.md §12); the burst-seq /
//                      coalesced-seq pair runs constant-delay burst traffic
//                      per-message vs through the coalescing channel
//                      (DESIGN.md §13 — same trajectory, fewer events).
//
// Scenarios run at n = 1024 and n = 8192 (--quick keeps only the
// deployment-scale 8192 tier and shrinks repetition counts).  Summary
// scalars record the headline ratios:
//   sgd_update_speedup          fused-SoA vs seed baseline, largest n
//   matrix_parallel_scaling     hw-thread vs 1-thread full-matrix sweep
//   round_parallel_scaling      parallel vs sequential round throughput
//   coo_round_speedup           compiled COO round sweep vs per-message
//                               sequential rounds at n = 65536 (> 1; the
//                               _n8192/_n65536 scalars record both tiers)
//   ann_recall_at_10            mean recall@10 of the updated index against
//                               the fresh-coordinate oracle at n = 65536
//                               (CI pins >= 0.9; the _n8192 scalar records
//                               the small tier, _n1m the IVF-routed
//                               million-node tier — 0 under --quick)
//   ann_qps_speedup             index vs brute-force query throughput at
//                               n = 65536 (> 1; _n8192 records the small
//                               tier, where the scan is cache-resident and
//                               the gap is smaller; _n1m the million-node
//                               tier, where it is widest)
//   ann_index_build_seconds_n1m wall-clock build of the n = 10⁶ graph +
//                               coarse layer (capacity planning scalar)
//   svc_query_parallel_scaling  hw-thread vs 1-thread quiescent query
//                               throughput through the service's shared
//                               read lock, n = 65536 tier (1.0 on
//                               single-core hosts)
//   alg2_round_parallel_scaling same, Algorithm-2 phase schedule, largest n
//   async_drain_parallel_scaling parallel vs sequential event drain, largest n
//   async_distributed_scaling   2-process distributed vs sequential drain
//   async_pair_lookahead_window_gain windows(global-min) / windows(per-pair)
//                               on a two-cluster delay space (>= 1; wider
//                               windows mean fewer barriers)
//   async_coalesced_event_gain  events(per-message) / events(coalesced) on
//                               constant-delay burst traffic, largest n
//                               (> 1; bit-identical results)
//   async_coalesced_throughput  coalesced vs per-message drain ops/s
//   async_intershard_frame_gain frames(per-message) / frames(merged reply
//                               envelopes) on the 2-process loopback drain
//                               with MTU-sized frames (DESIGN.md §13)
//   intershard_retransmit_overhead  raw-link / reliable-link distributed
//                               throughput minus 1 at 0 % loss — what the
//                               seq/ack/retransmit bookkeeping costs when
//                               nothing needs repair (CI pins < 5 %;
//                               DESIGN.md §15)
//   intershard_lossy_window_throughput  fraction of raw distributed
//                               throughput retained while the reliability
//                               layer repairs a seeded 5 %-drop link
//   async_shards                event-queue shard count the drain used
//   hw_threads                  hardware concurrency the scaling used
//
// Usage: bench_core [output.json] [--quick]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ann/peer_index.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/async_simulation.hpp"
#include "core/coordinate_store.hpp"
#include "core/multiprocess.hpp"
#include "core/node.hpp"
#include "core/simulation.hpp"
#include "core/snapshot.hpp"
#include "datasets/clusters.hpp"
#include "datasets/dataset.hpp"
#include "datasets/procedural.hpp"
#include "eval/brute_force_knn.hpp"
#include "eval/regression_metrics.hpp"
#include "harness.hpp"
#include "netsim/fault_channel.hpp"
#include "netsim/inter_shard_channel.hpp"
#include "netsim/reliable_channel.hpp"
#include "netsim/shard_runtime.hpp"
#include "svc/coordinate_service.hpp"

namespace {

using namespace dmfsgd;

constexpr std::size_t kRank = 10;

// ------------------------------------------------------------------------
// Seed baseline, frozen.  These are the seed's checked span kernels and its
// per-node-vector layout, kept verbatim so sgd_update/per-node-vector keeps
// measuring the same baseline every PR regardless of what src/linalg grows.

double SeedDot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("Dot: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void SeedAxpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("Axpy: size mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void SeedScale(double alpha, std::span<double> x) noexcept {
  for (double& v : x) {
    v *= alpha;
  }
}

/// The pre-refactor node layout: two independently heap-allocated vectors.
struct LegacyNode {
  std::vector<double> u;
  std::vector<double> v;
};

/// One eq. 9-10 style update — identical arithmetic to DmfsgdNode::RttUpdate
/// with the logistic loss, expressed in the seed's two-pass Scale+Axpy form.
void LegacyRttUpdate(std::span<double> u, std::span<double> v, double x,
                     std::span<const double> u_remote,
                     std::span<const double> v_remote,
                     const core::UpdateParams& params) {
  const double x_hat_ij = SeedDot(u, v_remote);
  const double g_u = core::LossGradientScale(params.loss, x, x_hat_ij);
  const double x_hat_ji = SeedDot(u_remote, v);
  const double g_v = core::LossGradientScale(params.loss, x, x_hat_ji);
  SeedScale(1.0 - params.eta * params.lambda, u);
  SeedAxpy(-params.eta * g_u, v_remote, u);
  SeedScale(1.0 - params.eta * params.lambda, v);
  SeedAxpy(-params.eta * g_v, u_remote, v);
}

/// The sweep's remote pick: pseudo-random, never self (the update kernels'
/// non-aliasing contract), identical across layouts.
std::size_t RemoteOf(std::size_t i, std::size_t round, std::size_t n) {
  std::size_t j = (i * 7 + round) % n;
  if (j == i) {
    j = (j + 1) % n;
  }
  return j;
}

// ------------------------------------------------------------------------
// Scenario: SGD update sweep.

bench::BenchJsonEntry SgdLegacy(std::size_t n, std::size_t sweeps,
                                std::size_t repeats) {
  common::Rng rng(1);
  const core::UpdateParams params;
  // Interleave a decoy allocation per node, reproducing the heap scatter a
  // long-lived deployment accumulates between coordinate vectors.
  std::vector<LegacyNode> nodes(n);
  std::vector<std::vector<double>> decoys;
  decoys.reserve(n);
  for (auto& node : nodes) {
    node.u.resize(kRank);
    node.v.resize(kRank);
    decoys.emplace_back(64, 0.0);
    for (std::size_t d = 0; d < kRank; ++d) {
      node.u[d] = rng.Uniform();
      node.v[d] = rng.Uniform();
    }
  }
  double label = 1.0;
  return bench::MeasureMinOfK(
      "sgd_update/per-node-vector/n" + std::to_string(n), n * sweeps,
      /*warmup=*/1, repeats, [&] {
        for (std::size_t round = 0; round < sweeps; ++round) {
          for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j = RemoteOf(i, round, n);
            LegacyRttUpdate(nodes[i].u, nodes[i].v, label, nodes[j].u,
                            nodes[j].v, params);
            label = -label;
          }
        }
      });
}

bench::BenchJsonEntry SgdFusedSoa(std::size_t n, std::size_t sweeps,
                                  std::size_t repeats) {
  common::Rng rng(1);
  const core::UpdateParams params;
  core::CoordinateStore store(n, kRank);
  std::vector<core::DmfsgdNode> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.emplace_back(static_cast<core::NodeId>(i), store, i, rng);
  }
  double label = 1.0;
  return bench::MeasureMinOfK(
      "sgd_update/fused-soa/n" + std::to_string(n), n * sweeps,
      /*warmup=*/1, repeats, [&] {
        for (std::size_t round = 0; round < sweeps; ++round) {
          for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j = RemoteOf(i, round, n);
            nodes[i].RttUpdate(label, store.U(j), store.V(j), params);
            label = -label;
          }
        }
      });
}

// ------------------------------------------------------------------------
// Scenario: full-matrix predict + evaluate sweep.

bench::BenchJsonEntry MatrixSweep(std::size_t n, std::size_t threads,
                                  std::size_t repeats) {
  common::Rng rng(2);
  core::CoordinateStore store(n, kRank);
  for (std::size_t i = 0; i < n; ++i) {
    store.RandomizeRow(i, rng);
  }
  // Synthetic RTT-like ground truth (NaN diagonal) for the accuracy pass.
  std::vector<double> actual(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      actual[i * n + j] = i == j ? linalg::Matrix::kMissing
                                 : rng.Uniform(10.0, 400.0);
    }
  }
  common::ThreadPool pool(threads);
  // The predictions buffer is allocated once outside the timed body so the
  // scenario times the O(n²r) compute sweep, not 500 MB of allocator work.
  std::vector<double> predictions(n * n);
  // Volatile sink defeats dead-code elimination across repetitions.
  volatile double sink = 0.0;
  return bench::MeasureMinOfK(
      "predict_matrix/threads-" + std::to_string(threads) + "/n" +
          std::to_string(n),
      n * n, /*warmup=*/1, repeats, [&] {
        core::PredictAllInto(store, predictions, &pool);
        const auto summary =
            eval::EvaluateFullMatrix(predictions, actual, n, &pool);
        sink = sink + summary.stress;
      });
}

// ------------------------------------------------------------------------
// Scenario: end-to-end round throughput.

datasets::Dataset MakeSyntheticRtt(std::size_t n, std::uint64_t seed) {
  datasets::Dataset dataset;
  dataset.name = "bench-synthetic-rtt";
  dataset.metric = datasets::Metric::kRtt;
  dataset.ground_truth = linalg::Matrix(n, n, linalg::Matrix::kMissing);
  common::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double rtt = rng.Uniform(10.0, 400.0);
      dataset.ground_truth(i, j) = rtt;
      dataset.ground_truth(j, i) = rtt;
    }
  }
  return dataset;
}

/// Asymmetric ABW-like ground truth so the round driver exercises the
/// Algorithm-2 (target-measured) exchange path.
datasets::Dataset MakeSyntheticAbw(std::size_t n, std::uint64_t seed) {
  datasets::Dataset dataset;
  dataset.name = "bench-synthetic-abw";
  dataset.metric = datasets::Metric::kAbw;
  dataset.ground_truth = linalg::Matrix(n, n, linalg::Matrix::kMissing);
  common::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        dataset.ground_truth(i, j) = rng.Uniform(5.0, 100.0);
      }
    }
  }
  return dataset;
}

core::SimulationConfig RoundConfig() {
  core::SimulationConfig config;
  config.rank = kRank;
  config.neighbor_count = 10;
  config.tau = 150.0;
  config.seed = 7;
  return config;
}

/// RoundConfig with tau landed inside the dataset's value range, so both
/// drain variants of a scenario train on the same class balance.
core::SimulationConfig RoundConfigFor(const datasets::Dataset& dataset) {
  core::SimulationConfig config = RoundConfig();
  if (dataset.metric == datasets::Metric::kAbw) {
    config.tau = 50.0;
  }
  return config;
}

bench::BenchJsonEntry RoundSequential(const datasets::Dataset& dataset,
                                      const std::string& label,
                                      std::size_t rounds, std::size_t repeats) {
  core::DmfsgdSimulation simulation(dataset, RoundConfigFor(dataset));
  return bench::MeasureMinOfK(
      "round_throughput/" + label + "sequential/n" +
          std::to_string(dataset.NodeCount()),
      rounds * dataset.NodeCount(), /*warmup=*/1, repeats,
      [&] { simulation.RunRounds(rounds); });
}

bench::BenchJsonEntry RoundParallel(const datasets::Dataset& dataset,
                                    const std::string& label,
                                    std::size_t rounds, std::size_t threads,
                                    std::size_t repeats) {
  core::DmfsgdSimulation simulation(dataset, RoundConfigFor(dataset));
  common::ThreadPool pool(threads);
  return bench::MeasureMinOfK(
      "round_throughput/" + label + "parallel-hw/n" +
          std::to_string(dataset.NodeCount()),
      rounds * dataset.NodeCount(), /*warmup=*/1, repeats,
      [&] { simulation.RunRoundsParallel(rounds, pool); });
}

/// The sparse round compiler (DESIGN.md §14): same rounds as
/// RoundSequential, gathered into COO and executed as fused sweeps through
/// the runtime-dispatched kernel table — no per-message variant dispatch, no
/// per-reply coordinate copies.
bench::BenchJsonEntry RoundCompiled(const datasets::Dataset& dataset,
                                    const std::string& label,
                                    std::size_t rounds, std::size_t repeats) {
  core::DmfsgdSimulation simulation(dataset, RoundConfigFor(dataset));
  return bench::MeasureMinOfK(
      "round_throughput/" + label + "coo-compiled/n" +
          std::to_string(dataset.NodeCount()),
      rounds * dataset.NodeCount(), /*warmup=*/1, repeats,
      [&] { simulation.RunRoundsCompiled(rounds); });
}

// ------------------------------------------------------------------------
// Scenario: asynchronous event-drain throughput.

core::AsyncSimulationConfig AsyncConfig(std::size_t shards) {
  core::AsyncSimulationConfig config;
  config.base = RoundConfig();
  config.mean_probe_interval_s = 1.0;
  config.shard_count = shards;
  return config;
}

/// Advances one simulation by `horizon_s` per timed pass; items = expected
/// probe exchanges in a pass (n per simulated second at the 1 s mean
/// interval), identical for both drain modes so the ratio is honest.
bench::BenchJsonEntry AsyncDrainSequential(const datasets::Dataset& dataset,
                                           std::size_t shards, double horizon_s,
                                           std::size_t repeats) {
  core::AsyncDmfsgdSimulation simulation(dataset, AsyncConfig(shards));
  return bench::MeasureMinOfK(
      "async_drain/sequential/n" + std::to_string(dataset.NodeCount()),
      static_cast<std::size_t>(horizon_s) * dataset.NodeCount(), /*warmup=*/1,
      repeats, [&] { simulation.RunUntil(simulation.Now() + horizon_s); });
}

bench::BenchJsonEntry AsyncDrainParallel(const datasets::Dataset& dataset,
                                         std::size_t shards,
                                         std::size_t threads, double horizon_s,
                                         std::size_t repeats) {
  core::AsyncDmfsgdSimulation simulation(dataset, AsyncConfig(shards));
  common::ThreadPool pool(threads);
  return bench::MeasureMinOfK(
      "async_drain/parallel-hw/n" + std::to_string(dataset.NodeCount()),
      static_cast<std::size_t>(horizon_s) * dataset.NodeCount(), /*warmup=*/1,
      repeats,
      [&] { simulation.RunUntilParallel(simulation.Now() + horizon_s, pool); });
}

/// Link stacking for the distributed-drain scenarios (DESIGN.md §15):
/// the raw loopback hub, the reliability decorator at zero loss (its pure
/// bookkeeping overhead), or the reliability decorator repairing a seeded
/// 5 %-drop fault injector.
enum class LinkMode { kRaw, kReliable, kLossyReliable };

/// The distributed drain (DESIGN.md §12) as two loopback "processes" on two
/// threads, each windowing the same deployment in lock step over the
/// inter-shard channel.  Measures end-to-end event throughput including the
/// full barrier/event-batch protocol, so the ratio against the sequential
/// drain records what the channel machinery costs (1-core hosts) or buys
/// (multi-core hosts).
bench::BenchJsonEntry AsyncDrainDistributed(const datasets::Dataset& dataset,
                                            std::size_t shards,
                                            double horizon_s,
                                            std::size_t repeats,
                                            LinkMode link = LinkMode::kRaw,
                                            const char* label =
                                                "distributed-2proc") {
  constexpr std::size_t kProcesses = 2;
  netsim::LoopbackInterShardHub hub(kProcesses);
  struct Process {
    std::unique_ptr<core::AsyncDmfsgdSimulation> simulation;
    std::unique_ptr<netsim::LoopbackInterShardChannel> channel;
    std::unique_ptr<netsim::FaultInjectingInterShardChannel> fault;
    std::unique_ptr<netsim::ReliableInterShardChannel> reliable;
    netsim::InterShardChannel* top = nullptr;
    std::unique_ptr<netsim::ShardRuntime> runtime;
    std::unique_ptr<common::ThreadPool> pool;
  };
  std::vector<Process> processes(kProcesses);
  for (std::size_t p = 0; p < kProcesses; ++p) {
    Process& process = processes[p];
    process.simulation = std::make_unique<core::AsyncDmfsgdSimulation>(
        dataset, AsyncConfig(shards));
    process.channel =
        std::make_unique<netsim::LoopbackInterShardChannel>(hub, p);
    process.top = process.channel.get();
    if (link == LinkMode::kLossyReliable) {
      netsim::FaultChannelOptions faults;
      faults.outbound.drop_rate = 0.05;
      faults.seed = 0xbe9c + p;
      process.fault = std::make_unique<netsim::FaultInjectingInterShardChannel>(
          *process.top, faults);
      process.top = process.fault.get();
    }
    if (link != LinkMode::kRaw) {
      netsim::ReliableChannelOptions reliable;
      if (link == LinkMode::kLossyReliable) {
        // Loopback RTT is microseconds; a LAN-tuned RTO would serialize the
        // bench behind 40 ms retransmit waits instead of measuring the
        // protocol, so the lossy leg recovers at loopback speed.
        reliable.initial_rto_ms = 5;
        reliable.ack_delay_ms = 2;
      }
      process.reliable = std::make_unique<netsim::ReliableInterShardChannel>(
          *process.top, reliable);
      process.top = process.reliable.get();
    }
    core::ShardedEventQueueDeliveryChannel& delivery =
        process.simulation->ShardedChannel();
    process.runtime = std::make_unique<netsim::ShardRuntime>(
        process.simulation->MutableEvents(), *process.top,
        process.simulation->PairLookaheads(),
        [&delivery](netsim::ShardedEventQueue::OwnerId owner,
                    std::vector<std::byte> payload) {
          return delivery.DecodeEnvelopeCallback(owner, std::move(payload));
        });
    process.pool = std::make_unique<common::ThreadPool>(1);
  }
  return bench::MeasureMinOfK(
      "async_drain/" + std::string(label) + "/n" +
          std::to_string(dataset.NodeCount()),
      static_cast<std::size_t>(horizon_s) * dataset.NodeCount(), /*warmup=*/1,
      repeats, [&] {
        const double until = processes[0].simulation->Now() + horizon_s;
        // Exceptions (stall timeout, lookahead violation) must reach main's
        // error reporting, not std::terminate: capture the peer's, and join
        // before letting process 0's propagate.
        std::exception_ptr peer_error;
        std::thread peer([&] {
          try {
            processes[1].simulation->RunUntilDistributed(
                until, *processes[1].pool, *processes[1].runtime);
          } catch (...) {
            peer_error = std::current_exception();
          }
        });
        try {
          processes[0].simulation->RunUntilDistributed(
              until, *processes[0].pool, *processes[0].runtime);
        } catch (...) {
          peer.join();
          if (peer_error) {
            // The peer died first; process 0's failure (usually a stall
            // waiting for the corpse) is the symptom, not the cause.
            std::rethrow_exception(peer_error);
          }
          throw;
        }
        peer.join();
        if (peer_error) {
          std::rethrow_exception(peer_error);
        }
      });
}

/// Constant-delay burst traffic: every one-way delay is exactly 0.05 s, so
/// a burst's replies converge on the prober at one instant and the
/// coalescing channel merges them into one event (DESIGN.md §13).
core::AsyncSimulationConfig BurstAsyncConfig(std::size_t shards,
                                             bool coalesce) {
  core::AsyncSimulationConfig config = AsyncConfig(shards);
  config.base.tau = 50.0;  // ABW range
  config.base.probe_burst = 8;
  config.base.coalesce_delivery = coalesce;
  config.min_oneway_delay_s = 0.05;
  config.max_oneway_delay_s = 0.05;
  return config;
}

/// Sequential drain of burst traffic, per-message vs coalesced.  Both modes
/// run the same simulated traffic (bit-identical results, pinned by
/// core_coalesced_drain_test); the coalesced drain executes fewer events —
/// `events_out` accumulates EventsExecuted across the warmup + repeats so
/// the caller can form the event-count gain from identical run counts.
bench::BenchJsonEntry AsyncDrainBurst(const datasets::Dataset& dataset,
                                      const std::string& label, bool coalesce,
                                      double horizon_s, std::size_t repeats,
                                      std::uint64_t* events_out) {
  core::AsyncDmfsgdSimulation simulation(dataset,
                                         BurstAsyncConfig(1, coalesce));
  auto entry = bench::MeasureMinOfK(
      "async_drain/" + label + "/n" + std::to_string(dataset.NodeCount()),
      static_cast<std::size_t>(horizon_s) * dataset.NodeCount() * 8,
      /*warmup=*/1, repeats,
      [&] { simulation.RunUntil(simulation.Now() + horizon_s); });
  *events_out = simulation.EventsExecuted();
  return entry;
}

/// Inter-shard frame gain of envelope coalescing (DESIGN.md §13): the same
/// 2-process loopback distributed drain with MTU-sized frames, per-message
/// vs merged reply envelopes; the ratio is coordinator frames(per-message) /
/// frames(coalesced) >= 1.  Results are bit-identical either way (pinned by
/// core_multiprocess_drain_test).
double InterShardFrameGain(std::size_t n, double horizon_s) {
  const auto dataset = MakeSyntheticAbw(n, 11);
  netsim::ShardRuntimeOptions options;
  options.max_frame_bytes = 1400;
  auto run = [&](bool coalesce) {
    constexpr std::size_t kProcesses = 2;
    core::AsyncSimulationConfig config = BurstAsyncConfig(2, coalesce);
    config.mean_probe_interval_s = 0.25;  // dense windows
    netsim::LoopbackInterShardHub hub(kProcesses);
    std::vector<core::MultiprocessRunReport> reports(kProcesses);
    std::exception_ptr peer_error;
    std::thread peer([&] {
      try {
        netsim::LoopbackInterShardChannel channel(hub, 1);
        common::ThreadPool pool(1);
        reports[1] = core::RunMultiprocessAsyncSimulation(
            dataset, config, channel, horizon_s, pool, options);
      } catch (...) {
        peer_error = std::current_exception();
      }
    });
    netsim::LoopbackInterShardChannel channel(hub, 0);
    common::ThreadPool pool(1);
    reports[0] = core::RunMultiprocessAsyncSimulation(dataset, config, channel,
                                                      horizon_s, pool, options);
    peer.join();
    if (peer_error) {
      std::rethrow_exception(peer_error);
    }
    return reports[0].frames_sent + reports[1].frames_sent;
  };
  const std::uint64_t per_message = run(false);
  const std::uint64_t coalesced = run(true);
  return static_cast<double>(per_message) / static_cast<double>(coalesced);
}

// ------------------------------------------------------------------------
// Scenario: ANN query plane (DESIGN.md §16).

/// Recall and query throughput of the drift-tolerant PeerIndex against the
/// brute-force oracle on *live-drifting* coordinates: train, index, keep
/// training so the snapshots go stale, drain the engine dirty set into the
/// index, then measure k-NN queries against the fresh store.  Recall is
/// computed against the fresh-coordinate oracle (the staleness acceptance
/// of the query plane), throughput with warmup + min-of-k over one shared
/// deterministic query sample.
struct AnnPlaneResult {
  bench::BenchJsonEntry brute;
  bench::BenchJsonEntry index;
  double recall_at_10 = 0.0;
  double build_seconds = 0.0;  ///< wall-clock of the index construction
};

/// Tier-scaled index options (DESIGN.md §18): the query beam widens with
/// n, and past 65536 the IVF coarse quantizer takes over entry-point
/// routing — at n = 10⁶ a flat evenly-spaced walk has to cross the whole
/// delay space, while 16 probes of 1024 k-means cells land the beam in the
/// right region for ~1k centroid dots.
ann::PeerIndexOptions AnnOptionsForTier(std::size_t n) {
  ann::PeerIndexOptions options;
  // The canonical record pins recall@10 >= 0.9 at n = 65536 and n = 10⁶;
  // at n = 8192 the library default already holds the floor and a wider
  // beam would just erode the gap against the cache-resident scan.
  options.ef_search = n > 8192 ? 192 : 96;
  if (n > 65536) {
    options.ef_search = 512;
    options.ivf_cells = 1024;
    options.ivf_nprobe = 16;
  }
  return options;
}

AnnPlaneResult AnnQueryPlane(const datasets::Dataset& dataset,
                             std::size_t train_rounds,
                             std::size_t drift_rounds, std::size_t repeats,
                             common::ThreadPool* oracle_pool) {
  core::DmfsgdSimulation simulation(dataset, RoundConfigFor(dataset));
  simulation.RunRoundsCompiled(train_rounds);
  simulation.EnableDriftTracking();
  (void)simulation.TakeDirtyNodes();  // index from here; discard history
  const core::CoordinateStore& store = simulation.engine().store();
  const ann::PeerIndexOptions options = AnnOptionsForTier(dataset.NodeCount());
  const auto build_start = std::chrono::steady_clock::now();
  ann::PeerIndex index(store, options);
  const auto build_stop = std::chrono::steady_clock::now();
  simulation.RunRoundsCompiled(drift_rounds);
  (void)index.ApplyUpdates(simulation.TakeDirtyNodes());

  const std::size_t n = store.NodeCount();
  // The million-node tier keeps the query sample small: every recall query
  // also runs the exact oracle (n dot products even when pooled).
  const std::size_t query_count =
      std::min<std::size_t>(n > 65536 ? 128 : 256, n);
  std::vector<std::size_t> queries;
  queries.reserve(query_count);
  for (std::size_t q = 0; q < query_count; ++q) {
    queries.push_back(q * (n / query_count));
  }

  AnnPlaneResult result;
  result.build_seconds =
      std::chrono::duration<double>(build_stop - build_start).count();
  constexpr std::size_t kK = 10;
  double recall_sum = 0.0;
  for (const std::size_t q : queries) {
    const auto approx =
        index.SearchFrom(q, kK, eval::KnnOrdering::kSmallestFirst);
    const auto oracle = eval::BruteForceKnnAll(
        store, q, kK, eval::KnnOrdering::kSmallestFirst, oracle_pool);
    recall_sum += eval::RecallAtK(approx, oracle);
  }
  result.recall_at_10 = recall_sum / static_cast<double>(queries.size());

  volatile double sink = 0.0;
  result.brute = bench::MeasureMinOfK(
      "ann_query/brute-force/n" + std::to_string(n), queries.size(),
      /*warmup=*/1, repeats, [&] {
        for (const std::size_t q : queries) {
          sink = sink + eval::BruteForceKnnAll(
                            store, q, kK, eval::KnnOrdering::kSmallestFirst)
                            .scores[0];
        }
      });
  result.index = bench::MeasureMinOfK(
      "ann_query/index/n" + std::to_string(n), queries.size(),
      /*warmup=*/1, repeats, [&] {
        for (const std::size_t q : queries) {
          sink = sink +
                 index.SearchFrom(q, kK, eval::KnnOrdering::kSmallestFirst)
                     .scores[0];
        }
      });
  return result;
}

// ------------------------------------------------------------------------
// Scenario: the resident coordinate service under mixed traffic
// (DESIGN.md §17).

struct SvcPlaneResult {
  bench::BenchJsonEntry mixed;
  bench::BenchJsonEntry ingest;
  bench::BenchJsonEntry query_single;
  std::optional<bench::BenchJsonEntry> query_parallel;  // hw > 1 only
  double query_p50_ms = 0.0;
  double query_p99_ms = 0.0;
  double staleness = 0.0;
  double parallel_scaling = 1.0;  ///< hw-thread qps / 1-thread qps
};

/// Mixed read/update traffic against a resident CoordinateService:
/// `query_ratio` k-NN queries ride along with every measurement ingest, and
/// every query is individually timed for the p50/p99 SLO scalars (sampled
/// from the final timed pass, the service's steady state).  The staleness
/// budget is one probing round (n ingests), so the warm-up rounds exercise
/// the index-absorb path and svc_coord_staleness stays bounded by it.
/// A quiescent query-only pass then runs at 1 thread and at `hw` threads
/// (each worker owns a contiguous node slice through the shared-lock query
/// plane, DESIGN.md §18) — their ratio is svc_query_parallel_scaling.
SvcPlaneResult SvcMixedTraffic(const datasets::Dataset& dataset,
                               std::size_t warm_rounds, std::size_t ops,
                               std::size_t query_ratio, std::size_t repeats,
                               std::size_t hw) {
  const core::SimulationConfig round_config = RoundConfigFor(dataset);
  svc::ServiceConfig config;
  static_cast<core::ProtocolConfig&>(config) = round_config;
  config.mode = round_config.mode;
  config.neighbor_count = round_config.neighbor_count;
  const std::size_t n = dataset.NodeCount();
  config.staleness_budget = n;
  // Same tier-scaled beam (and, at n = 10⁶, coarse quantizer) as the
  // ann_query scenario.
  config.index = AnnOptionsForTier(n);
  svc::CoordinateService service(dataset, config);
  service.IngestRounds(warm_rounds);

  SvcPlaneResult result;
  constexpr std::size_t kK = 10;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(ops);
  volatile double sink = 0.0;
  std::size_t cursor = 0;
  result.mixed = bench::MeasureMinOfK(
      "svc_mixed/n" + std::to_string(n), ops, /*warmup=*/1, repeats, [&] {
        latencies_ms.clear();  // keep only the final (steady-state) pass
        for (std::size_t op = 0; op < ops; ++op) {
          const auto node = static_cast<core::NodeId>(++cursor * 7919 % n);
          if (op % (query_ratio + 1) == 0) {
            (void)service.IngestProbe(node);
          } else {
            const auto start = std::chrono::steady_clock::now();
            sink = sink + service.QueryNearestPeers(node, kK).scores[0];
            const auto stop = std::chrono::steady_clock::now();
            latencies_ms.push_back(
                std::chrono::duration<double, std::milli>(stop - start)
                    .count());
          }
        }
      });
  result.query_p50_ms = common::Percentile(latencies_ms, 50.0);
  result.query_p99_ms = common::Percentile(latencies_ms, 99.0);

  const std::size_t ingest_ops = std::min<std::size_t>(5000, 10 * n);
  result.ingest = bench::MeasureMinOfK(
      "svc_ingest/n" + std::to_string(n), ingest_ops, /*warmup=*/1, repeats,
      [&] {
        for (std::size_t op = 0; op < ingest_ops; ++op) {
          (void)service.IngestProbe(
              static_cast<core::NodeId>(++cursor * 7919 % n));
        }
      });
  result.staleness = static_cast<double>(service.CurrentStaleness());

  // Parallel query scaling on the now-quiescent service: the same k-NN
  // query list through 1 thread and through hw threads sharing the read
  // lock.  Answers are bit-identical either way (the concurrent-query
  // tests pin that); only the throughput differs.
  const std::size_t query_ops = std::min<std::size_t>(n > 65536 ? 256 : 512, n);
  std::vector<core::NodeId> query_nodes;
  query_nodes.reserve(query_ops);
  for (std::size_t q = 0; q < query_ops; ++q) {
    query_nodes.push_back(static_cast<core::NodeId>(q * (n / query_ops)));
  }
  result.query_single = bench::MeasureMinOfK(
      "svc_query/n" + std::to_string(n) + "/threads-1", query_ops,
      /*warmup=*/1, repeats, [&] {
        for (const core::NodeId node : query_nodes) {
          sink = sink + service.QueryNearestPeers(node, kK).scores[0];
        }
      });
  if (hw > 1) {
    result.query_parallel = bench::MeasureMinOfK(
        "svc_query/n" + std::to_string(n) + "/threads-" + std::to_string(hw),
        query_ops, /*warmup=*/1, repeats, [&] {
          std::vector<double> partial(hw, 0.0);
          std::vector<std::thread> workers;
          workers.reserve(hw);
          for (std::size_t t = 0; t < hw; ++t) {
            workers.emplace_back([&, t] {
              const auto [begin, end] =
                  common::BlockRange(query_nodes.size(), hw, t);
              double local = 0.0;
              for (std::size_t q = begin; q < end; ++q) {
                local += service.QueryNearestPeers(query_nodes[q], kK).scores[0];
              }
              partial[t] = local;
            });
          }
          for (std::thread& worker : workers) {
            worker.join();
          }
          for (const double p : partial) {
            sink = sink + p;
          }
        });
    result.parallel_scaling =
        result.query_parallel->ops_per_sec / result.query_single.ops_per_sec;
  }
  return result;
}

/// Window-width gain of the per-shard-pair lookahead matrix on a
/// heterogeneous delay space: identical seeds drained with the global-min
/// lookahead and with the matrix; the gain is windows(global) /
/// windows(per-pair) >= 1 (results are bit-identical either way — the
/// matrix only widens windows, DESIGN.md §12).
double PairLookaheadWindowGain(std::size_t n, std::size_t shards,
                               double horizon_s) {
  datasets::TwoClusterRttConfig cluster_config;
  cluster_config.node_count = n;
  const datasets::Dataset dataset = datasets::MakeTwoClusterRtt(cluster_config);
  common::ThreadPool pool(1);
  core::AsyncSimulationConfig uniform = AsyncConfig(shards);
  uniform.use_pair_lookaheads = false;
  core::AsyncDmfsgdSimulation uniform_run(dataset, uniform);
  uniform_run.RunUntilParallel(horizon_s, pool);
  core::AsyncSimulationConfig pairwise = AsyncConfig(shards);
  core::AsyncDmfsgdSimulation pairwise_run(dataset, pairwise);
  pairwise_run.RunUntilParallel(horizon_s, pool);
  return static_cast<double>(uniform_run.WindowsExecuted()) /
         static_cast<double>(pairwise_run.WindowsExecuted());
}

}  // namespace

int main(int argc, char** argv) {
  std::string output = "BENCH_core.json";
  bool quick = false;
  std::size_t svc_ratio = 4;  // k-NN queries per measurement ingest
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--svc-ratio=", 0) == 0) {
      svc_ratio = static_cast<std::size_t>(std::stoul(arg.substr(12)));
    } else {
      output = arg;
    }
  }

  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t repeats = quick ? 3 : 5;
  // The layout/fusion difference is partly a cache effect: it only fully
  // shows once the factor working set outgrows L2, so the headline ratios
  // come from the largest tier and even --quick keeps the deployment-scale
  // n = 8192 (it drops the small tier and shrinks repetition counts).
  const std::vector<std::size_t> tiers =
      quick ? std::vector<std::size_t>{8192} : std::vector<std::size_t>{1024, 8192};
  const std::size_t n_large = tiers.back();
  // The SGD sweep also runs a 65536 tier (factor working set ~10 MB — far
  // past every cache level); the matrix sweep can't follow it there, its n²
  // buffers would need ~68 GB, so the tier list splits here.
  std::vector<std::size_t> sgd_tiers = tiers;
  sgd_tiers.push_back(65536);

  std::vector<bench::BenchJsonEntry> entries;
  double sgd_speedup = 0.0;
  double matrix_scaling = 0.0;

  for (const std::size_t n : sgd_tiers) {
    // ~1M updates per timed pass regardless of tier.
    const std::size_t sweeps = std::max<std::size_t>(1, 1000000 / n);
    const auto legacy = SgdLegacy(n, sweeps, repeats);
    const auto fused = SgdFusedSoa(n, sweeps, repeats);
    entries.push_back(legacy);
    entries.push_back(fused);
    // The headline ratio stays pinned to the deployment-scale 8192 tier the
    // trajectory has always recorded; the 65536 tier is extra coverage.
    if (n == n_large) {
      sgd_speedup = fused.ops_per_sec / legacy.ops_per_sec;
    }
  }

  for (const std::size_t n : tiers) {
    const std::size_t matrix_repeats = n >= 8192 ? 3 : repeats;
    const auto matrix_single = MatrixSweep(n, 1, matrix_repeats);
    entries.push_back(matrix_single);
    bench::BenchJsonEntry matrix_hw = matrix_single;
    if (hw > 1) {
      matrix_hw = MatrixSweep(n, hw, matrix_repeats);
      entries.push_back(matrix_hw);
    }
    if (n == n_large) {
      matrix_scaling = matrix_hw.ops_per_sec / matrix_single.ops_per_sec;
    }
  }

  const std::size_t rounds = quick ? 10 : 30;
  double round_scaling = 0.0;
  {
    const auto dataset = MakeSyntheticRtt(1024, 3);
    const auto round_seq = RoundSequential(dataset, "", rounds, repeats);
    const auto round_par = RoundParallel(dataset, "", rounds, hw, repeats);
    entries.push_back(round_seq);
    entries.push_back(round_par);
    round_scaling = round_par.ops_per_sec / round_seq.ops_per_sec;
  }

  // Sparse round compiler vs the per-message channel drain (DESIGN.md §14),
  // at the deployment tier (dense synthetic matrix) and at 65536 nodes
  // (procedural delay-space ground truth — a dense matrix would be ~34 GB).
  double coo_speedup_8192 = 0.0;
  double coo_speedup_65536 = 0.0;
  for (const std::size_t n : {std::size_t{8192}, std::size_t{65536}}) {
    datasets::Dataset dataset;
    if (n > 8192) {
      datasets::EuclideanRttConfig euclid;
      euclid.node_count = n;
      euclid.seed = 3;
      dataset = datasets::MakeEuclideanRtt(euclid);
    } else {
      dataset = MakeSyntheticRtt(n, 3);
    }
    const std::size_t coo_rounds = quick ? 5 : 10;
    const auto per_message = RoundSequential(dataset, "", coo_rounds, repeats);
    const auto compiled = RoundCompiled(dataset, "", coo_rounds, repeats);
    entries.push_back(per_message);
    entries.push_back(compiled);
    (n > 8192 ? coo_speedup_65536 : coo_speedup_8192) =
        compiled.ops_per_sec / per_message.ops_per_sec;
  }
  const double coo_speedup = coo_speedup_65536;

  // ANN query plane (DESIGN.md §16, §18): recall@10 against the fresh-
  // coordinate oracle and index-vs-scan query throughput on live-drifting
  // coordinates.  Two headline tiers follow the round compiler (the CI
  // floors — recall >= 0.9, speedup > 1 — come from n = 65536), and the
  // full run adds the n = 10⁶ tier: IVF-routed queries where an exact scan
  // is a million dot products, plus the index build-time scalar.  --quick
  // skips the million-node tier (it is minutes of index builds; the
  // multicore CI leg and the tracked record run it).
  double ann_recall_8192 = 0.0;
  double ann_recall_65536 = 0.0;
  double ann_speedup_8192 = 0.0;
  double ann_speedup_65536 = 0.0;
  double ann_recall_1m = 0.0;
  double ann_speedup_1m = 0.0;
  double ann_build_seconds_1m = 0.0;
  common::ThreadPool oracle_pool(hw);
  std::vector<std::size_t> ann_tiers{8192, 65536};
  if (!quick) {
    ann_tiers.push_back(1000000);
  }
  for (const std::size_t n : ann_tiers) {
    datasets::Dataset dataset;
    if (n > 8192) {
      datasets::EuclideanRttConfig euclid;
      euclid.node_count = n;
      euclid.seed = 3;
      dataset = datasets::MakeEuclideanRtt(euclid);
    } else {
      dataset = MakeSyntheticRtt(n, 3);
    }
    // The million-node tier trims training and drift (each round is 10⁶
    // SGD probes, each rebuild a full graph construction) and keeps
    // min-of-k short; the recall sample is already reduced in-scenario.
    const std::size_t train_rounds = quick ? 15 : (n > 65536 ? 10 : 30);
    const std::size_t drift_rounds = n > 65536 ? 2 : 5;
    const std::size_t ann_repeats =
        n > 65536 ? std::min<std::size_t>(repeats, 2) : repeats;
    const auto ann_result = AnnQueryPlane(dataset, train_rounds, drift_rounds,
                                          ann_repeats, &oracle_pool);
    entries.push_back(ann_result.brute);
    entries.push_back(ann_result.index);
    const double speedup =
        ann_result.index.ops_per_sec / ann_result.brute.ops_per_sec;
    if (n > 65536) {
      ann_recall_1m = ann_result.recall_at_10;
      ann_speedup_1m = speedup;
      ann_build_seconds_1m = ann_result.build_seconds;
    } else if (n > 8192) {
      ann_recall_65536 = ann_result.recall_at_10;
      ann_speedup_65536 = speedup;
    } else {
      ann_recall_8192 = ann_result.recall_at_10;
      ann_speedup_8192 = speedup;
    }
  }

  // Resident-service SLO (DESIGN.md §17): mixed read/update traffic against
  // svc::CoordinateService at the same two tiers as the query plane.  The
  // p50/p99 query latencies, sustained ingest throughput and the end-of-run
  // index staleness become the svc_* scalars the service-slo CI leg pins
  // (p99 recorded and positive, staleness finite and within budget).
  double svc_p50_8192 = 0.0, svc_p50_65536 = 0.0;
  double svc_p99_8192 = 0.0, svc_p99_65536 = 0.0;
  double svc_ingest_8192 = 0.0, svc_ingest_65536 = 0.0;
  double svc_stale_8192 = 0.0, svc_stale_65536 = 0.0;
  double svc_query_parallel_scaling = 1.0;
  for (const std::size_t n : ann_tiers) {
    datasets::Dataset dataset;
    if (n > 8192) {
      datasets::EuclideanRttConfig euclid;
      euclid.node_count = n;
      euclid.seed = 3;
      dataset = datasets::MakeEuclideanRtt(euclid);
    } else {
      dataset = MakeSyntheticRtt(n, 3);
    }
    // Warm-up rounds are index rebuilds (the whole membership drifts), so
    // the bigger tiers keep them short; --quick shortens both.
    const std::size_t warm_rounds =
        quick ? 2 : (n > 65536 ? 1 : (n > 8192 ? 2 : 10));
    const std::size_t ops =
        quick ? 500 : (n > 65536 ? 400 : (n > 8192 ? 1000 : 2000));
    const std::size_t svc_repeats =
        n > 65536 ? 2 : std::min<std::size_t>(repeats, 3);
    const auto svc_result =
        SvcMixedTraffic(dataset, warm_rounds, ops, svc_ratio, svc_repeats, hw);
    entries.push_back(svc_result.mixed);
    entries.push_back(svc_result.ingest);
    entries.push_back(svc_result.query_single);
    if (svc_result.query_parallel) {
      entries.push_back(*svc_result.query_parallel);
    }
    // The headline parallel-scaling scalar comes from the n = 65536 tier
    // (present in both quick and full runs); single-core hosts record 1.0.
    if (n == 65536) {
      svc_query_parallel_scaling = svc_result.parallel_scaling;
    }
    if (n > 65536) {
      // The million-node tier contributes the shared-lock query entries;
      // the svc_* latency scalars stay pinned to the two headline tiers.
    } else if (n > 8192) {
      svc_p50_65536 = svc_result.query_p50_ms;
      svc_p99_65536 = svc_result.query_p99_ms;
      svc_ingest_65536 = svc_result.ingest.ops_per_sec;
      svc_stale_65536 = svc_result.staleness;
    } else {
      svc_p50_8192 = svc_result.query_p50_ms;
      svc_p99_8192 = svc_result.query_p99_ms;
      svc_ingest_8192 = svc_result.ingest.ops_per_sec;
      svc_stale_8192 = svc_result.staleness;
    }
  }

  // Algorithm-2 rounds (target-sharded phases) and the async event drain run
  // per tier; datasets are scoped so only one n² ground truth is live.
  double alg2_scaling = 0.0;
  double async_scaling = 0.0;
  double async_distributed_scaling = 0.0;
  double async_coalesced_event_gain = 0.0;
  double async_coalesced_throughput = 0.0;
  for (const std::size_t n : tiers) {
    {
      const auto abw = MakeSyntheticAbw(n, 11);
      const auto alg2_seq = RoundSequential(abw, "alg2-", rounds, repeats);
      const auto alg2_par = RoundParallel(abw, "alg2-", rounds, hw, repeats);
      entries.push_back(alg2_seq);
      entries.push_back(alg2_par);
      if (n == n_large) {
        alg2_scaling = alg2_par.ops_per_sec / alg2_seq.ops_per_sec;
      }
    }
    {
      const auto rtt = MakeSyntheticRtt(n, 3);
      const double horizon_s = quick ? 5.0 : 15.0;
      const auto drain_seq = AsyncDrainSequential(rtt, hw, horizon_s, repeats);
      const auto drain_par =
          AsyncDrainParallel(rtt, hw, hw, horizon_s, repeats);
      entries.push_back(drain_seq);
      entries.push_back(drain_par);
      // The distributed drain needs >= 2 shards (one block per process).
      const auto drain_dist = AsyncDrainDistributed(
          rtt, std::max<std::size_t>(2, hw), horizon_s, repeats);
      entries.push_back(drain_dist);
      if (n == n_large) {
        async_scaling = drain_par.ops_per_sec / drain_seq.ops_per_sec;
        async_distributed_scaling =
            drain_dist.ops_per_sec / drain_seq.ops_per_sec;
      }
    }
    {
      // Batched message plane (DESIGN.md §13): constant-delay burst traffic
      // through the coalescing channel vs the per-message path — same
      // trajectory, fewer events per simulated second.
      const auto abw = MakeSyntheticAbw(n, 11);
      const double horizon_s = quick ? 3.0 : 8.0;
      std::uint64_t events_burst = 0;
      std::uint64_t events_coalesced = 0;
      const auto burst_seq = AsyncDrainBurst(abw, "burst-seq", false,
                                             horizon_s, repeats, &events_burst);
      const auto coalesced_seq =
          AsyncDrainBurst(abw, "coalesced-seq", true, horizon_s, repeats,
                          &events_coalesced);
      entries.push_back(burst_seq);
      entries.push_back(coalesced_seq);
      if (n == n_large) {
        async_coalesced_event_gain = static_cast<double>(events_burst) /
                                     static_cast<double>(events_coalesced);
        async_coalesced_throughput =
            coalesced_seq.ops_per_sec / burst_seq.ops_per_sec;
      }
    }
  }

  // Reliability-layer cost and loss tolerance (DESIGN.md §15), at the small
  // tier — properties of the channel machinery, not of n.  The raw/reliable/
  // lossy trio shares one config (2 shards, 2 loopback processes) so the
  // ratios isolate the link:
  //   intershard_retransmit_overhead   raw/reliable ops ratio minus 1 at 0 %
  //                                    loss (CI pins this below 5 %)
  //   intershard_lossy_window_throughput  fraction of the raw distributed
  //                                    throughput retained while the
  //                                    reliability layer repairs a seeded
  //                                    5 %-drop link
  double intershard_retransmit_overhead = 0.0;
  double intershard_lossy_window_throughput = 0.0;
  {
    const auto rtt = MakeSyntheticRtt(1024, 3);
    const double horizon_s = quick ? 3.0 : 8.0;
    const auto raw = AsyncDrainDistributed(rtt, 2, horizon_s, repeats,
                                           LinkMode::kRaw,
                                           "distributed-2proc-rawlink");
    const auto reliable = AsyncDrainDistributed(rtt, 2, horizon_s, repeats,
                                                LinkMode::kReliable,
                                                "distributed-2proc-reliable");
    const auto lossy = AsyncDrainDistributed(rtt, 2, horizon_s, repeats,
                                             LinkMode::kLossyReliable,
                                             "distributed-2proc-lossy5");
    entries.push_back(raw);
    entries.push_back(reliable);
    entries.push_back(lossy);
    intershard_retransmit_overhead =
        raw.ops_per_sec / reliable.ops_per_sec - 1.0;
    intershard_lossy_window_throughput = lossy.ops_per_sec / raw.ops_per_sec;
  }

  // Inter-shard frame reduction of merged reply envelopes, measured (not
  // timed) on the 2-process loopback distributed drain with MTU frames.
  const double intershard_frame_gain =
      InterShardFrameGain(1024, quick ? 2.0 : 4.0);

  // Per-pair-lookahead window widths, measured (not timed) on a two-cluster
  // delay space at the small tier — the ratio is a property of the window
  // protocol, not of n.
  const double pair_window_gain =
      PairLookaheadWindowGain(1024, std::max<std::size_t>(2, hw),
                              quick ? 2.0 : 5.0);

  try {
    bench::WriteBenchJson(
        output, entries,
        {{"nodes", static_cast<double>(n_large)},
         {"rank", static_cast<double>(kRank)},
         {"hw_threads", static_cast<double>(hw)},
         {"sgd_update_speedup", sgd_speedup},
         {"matrix_parallel_scaling", matrix_scaling},
         {"round_parallel_scaling", round_scaling},
         {"coo_round_speedup", coo_speedup},
         {"coo_round_speedup_n8192", coo_speedup_8192},
         {"coo_round_speedup_n65536", coo_speedup_65536},
         {"ann_recall_at_10", ann_recall_65536},
         {"ann_recall_at_10_n8192", ann_recall_8192},
         {"ann_qps_speedup", ann_speedup_65536},
         {"ann_qps_speedup_n8192", ann_speedup_8192},
         {"ann_recall_at_10_n1m", ann_recall_1m},
         {"ann_qps_speedup_n1m", ann_speedup_1m},
         {"ann_index_build_seconds_n1m", ann_build_seconds_1m},
         {"svc_query_parallel_scaling", svc_query_parallel_scaling},
         {"svc_query_p50_ms", svc_p50_65536},
         {"svc_query_p50_ms_n8192", svc_p50_8192},
         {"svc_query_p99_ms", svc_p99_65536},
         {"svc_query_p99_ms_n8192", svc_p99_8192},
         {"svc_ingest_throughput", svc_ingest_65536},
         {"svc_ingest_throughput_n8192", svc_ingest_8192},
         {"svc_coord_staleness", svc_stale_65536},
         {"svc_coord_staleness_n8192", svc_stale_8192},
         {"svc_staleness_budget", 65536.0},
         {"svc_staleness_budget_n8192", 8192.0},
         {"svc_query_ratio", static_cast<double>(svc_ratio)},
         {"alg2_round_parallel_scaling", alg2_scaling},
         {"async_drain_parallel_scaling", async_scaling},
         {"async_distributed_scaling", async_distributed_scaling},
         {"async_pair_lookahead_window_gain", pair_window_gain},
         {"async_coalesced_event_gain", async_coalesced_event_gain},
         {"async_coalesced_throughput", async_coalesced_throughput},
         {"async_intershard_frame_gain", intershard_frame_gain},
         {"intershard_retransmit_overhead", intershard_retransmit_overhead},
         {"intershard_lossy_window_throughput",
          intershard_lossy_window_throughput},
         {"async_shards", static_cast<double>(hw)}});
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }

  for (const auto& entry : entries) {
    std::printf("%-42s %14.0f ops/s\n", entry.name.c_str(), entry.ops_per_sec);
  }
  std::printf(
      "sgd_update_speedup: %.3fx  matrix_parallel_scaling: %.3fx (hw=%zu)  "
      "round_parallel_scaling: %.3fx  "
      "coo_round_speedup: %.3fx (n8192 %.3fx, n65536 %.3fx)  "
      "ann_recall_at_10: %.3f (n8192 %.3f, n1m %.3f)  "
      "ann_qps_speedup: %.3fx (n8192 %.3fx, n1m %.3fx)  "
      "ann_index_build_seconds_n1m: %.1f  "
      "svc_query_parallel_scaling: %.3fx  "
      "svc_query_p50_ms: %.4f  svc_query_p99_ms: %.4f  "
      "svc_ingest_throughput: %.0f/s  svc_coord_staleness: %.0f  "
      "alg2_round_parallel_scaling: %.3fx  "
      "async_drain_parallel_scaling: %.3fx  async_distributed_scaling: %.3fx  "
      "async_pair_lookahead_window_gain: %.3fx  "
      "async_coalesced_event_gain: %.3fx  async_intershard_frame_gain: %.3fx  "
      "intershard_retransmit_overhead: %.3f  "
      "intershard_lossy_window_throughput: %.3f  "
      "-> %s\n",
      sgd_speedup, matrix_scaling, hw, round_scaling, coo_speedup,
      coo_speedup_8192, coo_speedup_65536, ann_recall_65536, ann_recall_8192,
      ann_recall_1m, ann_speedup_65536, ann_speedup_8192, ann_speedup_1m,
      ann_build_seconds_1m, svc_query_parallel_scaling, svc_p50_65536,
      svc_p99_65536, svc_ingest_65536, svc_stale_65536, alg2_scaling,
      async_scaling, async_distributed_scaling, pair_window_gain,
      async_coalesced_event_gain, intershard_frame_gain,
      intershard_retransmit_overhead, intershard_lossy_window_throughput,
      output.c_str());
  return 0;
}
