// Figure 4: AUC under different ranks r, neighbor counts k and
// classification thresholds τ, on all three datasets.
//
// Paper setup: (a) r in {3, 10, 20, 100} at default k; (b) k in
// {5, 10, 30, 50} (Harvard, HP-S3) / {16, 32, 64, 128} (Meridian) at r = 10;
// (c) τ at the {10, 25, 50, 75, 90}% good-portion points (Table 1's rows).
// Expected shape: small r and k already suffice; extreme class imbalance
// (10% / 90%) costs a few AUC points.
//
// Usage: fig4_rank_neighbors_tau [--quick] [--seed=N]
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace dmfsgd;

  const common::Flags flags(argc, argv, {"quick", "seed"});
  const bool quick = flags.GetBool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  const auto papers = bench::AllPaperDatasets(quick);

  std::cout << "=== Figure 4(a): AUC vs rank r (default k, tau = median) ===\n";
  {
    const std::vector<std::size_t> ranks{3, 10, 20, 100};
    common::Table table({"dataset", "r=3", "r=10", "r=20", "r=100"});
    for (const auto& paper : papers) {
      std::vector<std::string> row{paper.dataset.name};
      for (const std::size_t r : ranks) {
        core::SimulationConfig config = bench::DefaultConfig(paper, seed);
        config.rank = r;
        row.push_back(common::FormatFixed(bench::TrainedAuc(paper, config), 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
  }

  std::cout << "\n=== Figure 4(b): AUC vs neighbor count k (r = 10) ===\n";
  for (const auto& paper : papers) {
    common::Table table({"k", "AUC"});
    for (const std::size_t k : paper.k_sweep) {
      core::SimulationConfig config = bench::DefaultConfig(paper, seed);
      config.neighbor_count = k;
      table.AddRow({std::to_string(k),
                    common::FormatFixed(bench::TrainedAuc(paper, config), 3)});
    }
    std::cout << paper.dataset.name << ":\n";
    table.Print(std::cout);
  }

  std::cout << "\n=== Figure 4(c): AUC vs tau (portion of good paths) ===\n";
  {
    const std::vector<double> portions{0.10, 0.25, 0.50, 0.75, 0.90};
    common::Table table({"dataset", "10%", "25%", "50%", "75%", "90%"});
    for (const auto& paper : papers) {
      std::vector<std::string> row{paper.dataset.name};
      for (const double portion : portions) {
        core::SimulationConfig config = bench::DefaultConfig(paper, seed);
        config.tau = paper.dataset.TauForGoodPortion(portion);
        row.push_back(common::FormatFixed(bench::TrainedAuc(paper, config), 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
  }

  std::cout << "\npaper shape: r and k beyond ~10 buy little; best AUC near "
               "balanced classes\n";
  return 0;
}
