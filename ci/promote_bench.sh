#!/usr/bin/env bash
# Promote the latest multicore-bench CI artifact into the tracked
# BENCH_core.json — closing the loop the ROADMAP calls for: the dev
# containers are 1-core (and have historically carried polluted toolchain
# caches), so the only honest multi-core perf record is the one the CI
# `multicore-bench` leg measures on a hosted runner and uploads as the
# `BENCH_core-multicore` artifact.  This script downloads that artifact,
# stamps it with provenance (runner, nproc, commit, workflow run), and
# replaces the tracked file; commit the result like any reviewed change.
#
# Usage: ci/promote_bench.sh [run-id]
#   run-id   optional workflow-run id; default: the newest successful CI run
#            on main that produced the artifact.
#
# Requires the GitHub CLI (`gh`, authenticated for this repo) and python3.
set -euo pipefail

cd "$(dirname "$0")/.."

artifact_name=BENCH_core-multicore
run_id="${1:-}"

command -v gh >/dev/null 2>&1 || {
  echo "promote_bench: the GitHub CLI (gh) is required" >&2; exit 2; }
command -v python3 >/dev/null 2>&1 || {
  echo "promote_bench: python3 is required" >&2; exit 2; }

if [[ -z "$run_id" ]]; then
  # Newest successful run of the CI workflow on main.
  run_id=$(gh run list --workflow=ci.yml --branch=main --status=success \
             --limit 1 --json databaseId --jq '.[0].databaseId')
fi
if [[ -z "$run_id" || "$run_id" == "null" ]]; then
  echo "promote_bench: no successful CI run found on main" >&2
  exit 1
fi

commit=$(gh run view "$run_id" --json headSha --jq .headSha)
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "promote_bench: downloading $artifact_name from run $run_id ($commit)"
gh run download "$run_id" -n "$artifact_name" -D "$workdir"
[[ -f "$workdir/BENCH_core.json" ]] || {
  echo "promote_bench: artifact did not contain BENCH_core.json" >&2; exit 1; }

# Stamp provenance and pretty-print into the tracked record.  nproc comes
# from the measurement itself (summary.hw_threads) — the runner's value, not
# this machine's.
RUN_ID="$run_id" COMMIT="$commit" WORKDIR="$workdir" python3 - <<'EOF'
import datetime
import json
import os

path = os.path.join(os.environ["WORKDIR"], "BENCH_core.json")
record = json.load(open(path))
record["provenance"] = {
    "source": "ci-artifact",
    "runner": "github-hosted ubuntu-latest (multicore-bench leg)",
    "nproc": int(record["summary"]["hw_threads"]),
    "commit": os.environ["COMMIT"],
    "workflow_run": int(os.environ["RUN_ID"]),
    "promoted_at": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
}
json.dump(record, open("BENCH_core.json", "w"), indent=1)
open("BENCH_core.json", "a").write("\n")
print("promote_bench: BENCH_core.json replaced "
      f"(nproc={record['provenance']['nproc']}, commit={os.environ['COMMIT'][:12]})")
EOF

echo "promote_bench: review with 'git diff BENCH_core.json', then commit"
