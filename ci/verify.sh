#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full test suite,
# and record the hot-path perf trajectory (BENCH_core.json).
set -euo pipefail

cd "$(dirname "$0")/.."

# Force Release even over a stale cache: an unoptimized build would both
# hide perf-path breakage and misrecord the BENCH_core.json trajectory.
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

# Perf smoke (quick tier): fused SGD kernels vs the frozen seed baseline,
# parallel full-matrix sweep, end-to-end round throughput.  Catches perf-path
# build breaks in CI.  Writes into build/ — the tracked BENCH_core.json is
# the curated full-run trajectory record and must only be replaced by a
# deliberate full `bench_bench_core BENCH_core.json` run, never by CI.
./build/bench_bench_core build/BENCH_core_quick.json --quick
cat build/BENCH_core_quick.json
