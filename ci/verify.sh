#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full test suite,
# record the hot-path perf trajectory (BENCH_core.json), and check that the
# public face (README, DESIGN anchors) stays in sync with the code.
set -euo pipefail

cd "$(dirname "$0")/.."

# ---------------------------------------------------------------- docs ----
# The docs checks run first: they are cheap and a missing README should fail
# fast, before a long build.
docs_failed=0

if [[ ! -f README.md ]]; then
  echo "docs check: README.md is missing" >&2
  docs_failed=1
fi

# Every example must be discoverable from the README.
for example in examples/*.cpp; do
  name=$(basename "$example")
  if [[ -f README.md ]] && ! grep -q "$name" README.md; then
    echo "docs check: $example is not mentioned in README.md" >&2
    docs_failed=1
  fi
done

# Every "DESIGN.md §N" a source comment cites must resolve to a real section
# header, so renumbering DESIGN.md can't silently strand references.  The
# first grep captures the whole citation span — including list forms like
# "DESIGN.md §6, §8, §9" — so every listed section is checked.
for section in $(grep -rhoE "DESIGN\.md §[0-9]+((, ?| and )§[0-9]+)*" src bench examples tests ci 2>/dev/null \
                   | grep -oE "[0-9]+" | sort -un); do
  if ! grep -qE "^## §${section}[^0-9]" DESIGN.md; then
    echo "docs check: a code comment cites DESIGN.md §${section}, which does not exist" >&2
    docs_failed=1
  fi
done

if [[ $docs_failed -ne 0 ]]; then
  echo "docs check failed" >&2
  exit 1
fi
echo "docs check passed"

# Force Release even over a stale cache: an unoptimized build would both
# hide perf-path breakage and misrecord the BENCH_core.json trajectory.
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

# Perf smoke (quick tier): fused SGD kernels vs the frozen seed baseline,
# parallel full-matrix sweep, end-to-end round throughput.  Catches perf-path
# build breaks in CI.  Writes into build/ — the tracked BENCH_core.json is
# the curated full-run trajectory record and must only be replaced by a
# deliberate full `bench_bench_core BENCH_core.json` run, never by CI.
./build/bench_bench_core build/BENCH_core_quick.json --quick
cat build/BENCH_core_quick.json
