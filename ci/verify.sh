#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the full test suite,
# and record the hot-path perf trajectory (BENCH_core.json).
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

# Perf record: SGD update loop, SoA store vs the legacy per-node layout.
./build/bench_bench_core BENCH_core.json --quick
cat BENCH_core.json
