#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run the test suite,
# record the hot-path perf trajectory (BENCH_core.json), and check that the
# public face (README, DESIGN anchors) stays in sync with the code.
#
# One entry point for every CI leg (.github/workflows/ci.yml):
#   --build-type=<Release|Debug>   default Release
#   --sanitize=<asan|tsan>         sanitizer build (own build dir)
#   --no-bench                     skip the perf smoke (Debug/sanitizer legs)
#   --quick-tests                  run `ctest -L quick` only (sanitizer legs
#                                  skip the socket/fork-heavy `slow` label)
#   --test-label=<label>           run only tests carrying a ctest label
#                                  (the lossy-link leg passes `lossy`:
#                                  fault-injection, reliability and registry
#                                  tests, including the 20%-loss parity pins)
#   --avx=<AUTO|ON|OFF>            forwarded as -DDMFSGD_ENABLE_AVX: the avx2
#                                  CI leg passes ON (configure fails rather
#                                  than silently building scalar-only)
set -euo pipefail

cd "$(dirname "$0")/.."

build_type=Release
sanitize=""
run_bench=1
avx=AUTO
test_label_args=()
for arg in "$@"; do
  case "$arg" in
    --build-type=*) build_type="${arg#*=}" ;;
    --sanitize=*)   sanitize="${arg#*=}" ;;
    --no-bench)     run_bench=0 ;;
    --quick-tests)  test_label_args=(-L quick) ;;
    --test-label=*) test_label_args=(-L "${arg#*=}") ;;
    --avx=*)        avx="${arg#*=}" ;;
    *) echo "usage: ci/verify.sh [--build-type=T] [--sanitize=asan|tsan]" \
            "[--no-bench] [--quick-tests] [--test-label=L]" \
            "[--avx=AUTO|ON|OFF]" >&2; exit 2 ;;
  esac
done

# ---------------------------------------------------------------- docs ----
# The docs checks run first: they are cheap and a missing README should fail
# fast, before a long build.  Every failure is reported — the check never
# stops at the first missing item.
docs_failures=()

if [[ ! -f README.md ]]; then
  docs_failures+=("README.md is missing")
fi

# Every example must be discoverable from the README.
if [[ -f README.md ]]; then
  for example in examples/*.cpp; do
    name=$(basename "$example")
    if ! grep -q "$name" README.md; then
      docs_failures+=("$example is not mentioned in README.md")
    fi
  done
fi

# The tracked perf record must carry every scenario and summary scalar the
# docs promise — in particular the batched-message-plane entries (DESIGN.md
# §13).  A bench refactor that silently drops a scenario would otherwise
# leave a stale record in place; ci/promote_bench.sh replaces the file only
# with artifacts that pass the same shape.
if [[ ! -f BENCH_core.json ]]; then
  docs_failures+=("BENCH_core.json (the tracked perf record) is missing")
else
  for required in \
      '"async_drain/burst-seq' '"async_drain/coalesced-seq' \
      '"async_coalesced_event_gain"' '"async_intershard_frame_gain"' \
      '"async_pair_lookahead_window_gain"' '"sgd_update_speedup"' \
      '"async_drain_parallel_scaling"' '"async_distributed_scaling"' \
      '"coo_round_speedup"' '"round_throughput/coo-compiled' \
      '"async_drain/distributed-2proc-rawlink' \
      '"async_drain/distributed-2proc-reliable' \
      '"async_drain/distributed-2proc-lossy5' \
      '"intershard_retransmit_overhead"' \
      '"intershard_lossy_window_throughput"' \
      '"ann_query/index' '"ann_query/brute-force' \
      '"ann_recall_at_10"' '"ann_qps_speedup"' \
      '"ann_query/index/n1000000' '"ann_recall_at_10_n1m"' \
      '"ann_qps_speedup_n1m"' '"ann_index_build_seconds_n1m"' \
      '"svc_mixed/' '"svc_ingest/' '"svc_query/' \
      '"svc_mixed/n1000000' '"svc_query_parallel_scaling"' \
      '"svc_query_p50_ms"' '"svc_query_p99_ms"' \
      '"svc_ingest_throughput"' '"svc_coord_staleness"' \
      '"svc_staleness_budget"'; do
    if ! grep -qF "$required" BENCH_core.json; then
      docs_failures+=("BENCH_core.json lacks $required — regenerate with bench_bench_core (or ci/promote_bench.sh)")
    fi
  done
fi

# The sparse round compiler (DESIGN.md §14) is opt-in through --compile-rounds
# on both drivers; the README must keep the flag discoverable.
if [[ -f README.md ]] && ! grep -q -- '--compile-rounds' README.md; then
  docs_failures+=("README.md does not document the --compile-rounds flag")
fi

# The ANN query plane (DESIGN.md §16) is opt-in through --index on the peer
# selection demo; the README must keep the flag discoverable.
if [[ -f README.md ]] && ! grep -q -- '--index' README.md; then
  docs_failures+=("README.md does not document the --index flag")
fi

# The fault/reliability demo flags (DESIGN.md §15) gate the multi-host story;
# the README must keep the lossy-link and rendezvous modes discoverable.
if [[ -f README.md ]]; then
  for flag in '--drop' '--reliable' '--registry' '--kill-after'; do
    if ! grep -q -- "$flag" README.md; then
      docs_failures+=("README.md does not document the $flag flag")
    fi
  done
fi

# Every "DESIGN.md §N" a source comment (or workflow file) cites must resolve
# to a real section header, so renumbering DESIGN.md can't silently strand
# references.  The first grep captures the whole citation span — including
# list forms like "DESIGN.md §6, §8, §9" — so every listed section is checked.
for section in $(grep -rhoE "DESIGN\.md §[0-9]+((, ?| and )§[0-9]+)*" \
                   src bench examples tests ci .github 2>/dev/null \
                   | grep -oE "[0-9]+" | sort -un); do
  if ! grep -qE "^## §${section}[^0-9]" DESIGN.md; then
    docs_failures+=("a code comment cites DESIGN.md §${section}, which does not exist")
  fi
done

if [[ ${#docs_failures[@]} -ne 0 ]]; then
  for failure in "${docs_failures[@]}"; do
    echo "docs check: $failure" >&2
  done
  echo "docs check failed (${#docs_failures[@]} problem(s))" >&2
  exit 1
fi
echo "docs check passed"

# ---------------------------------------------------------------- build ----
# Sanitizer builds get their own directory so a plain rebuild never links
# against instrumented objects; the default build dir stays `build`.
build_dir=build
if [[ -n "$sanitize" ]]; then
  build_dir="build-$sanitize"
fi

cmake_args=(-B "$build_dir" -S . -DCMAKE_BUILD_TYPE="$build_type"
            -DDMFSGD_SANITIZE="$sanitize" -DDMFSGD_ENABLE_AVX="$avx")
# ccache keeps the CI matrix warm; harmless to omit locally.
if command -v ccache >/dev/null 2>&1; then
  cmake_args+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi
cmake "${cmake_args[@]}"
cmake --build "$build_dir" -j"$(nproc)"
# (The empty-array guard keeps `set -u` happy on bash < 4.4.)
(cd "$build_dir" && ctest --output-on-failure -j"$(nproc)" \
   ${test_label_args[@]+"${test_label_args[@]}"})

# Perf smoke (quick tier): fused SGD kernels vs the frozen seed baseline,
# parallel full-matrix sweep, end-to-end round throughput.  Catches perf-path
# build breaks in CI.  Writes into the build dir — the tracked
# BENCH_core.json is the curated full-run trajectory record and must only be
# replaced by a deliberate full `bench_bench_core BENCH_core.json` run on a
# multi-core host, never by CI (the dedicated multi-core CI leg uploads its
# run as an artifact instead of committing it).
if [[ $run_bench -eq 1 ]]; then
  if [[ "$build_type" != Release ]]; then
    echo "note: skipping bench — build type $build_type would misrecord it" >&2
  else
    "./$build_dir/bench_bench_core" "$build_dir/BENCH_core_quick.json" --quick
    cat "$build_dir/BENCH_core_quick.json"
  fi
fi
