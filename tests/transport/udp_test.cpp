#include "transport/udp.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace dmfsgd::transport {
namespace {

std::vector<std::byte> Bytes(const char* text) {
  std::vector<std::byte> out(std::strlen(text));
  std::memcpy(out.data(), text, out.size());
  return out;
}

TEST(UdpSocket, BindsEphemeralPort) {
  UdpSocket socket;
  EXPECT_GT(socket.Port(), 0);
}

TEST(UdpSocket, DistinctSocketsGetDistinctPorts) {
  UdpSocket a;
  UdpSocket b;
  EXPECT_NE(a.Port(), b.Port());
}

TEST(UdpSocket, SendReceiveRoundTrip) {
  UdpSocket sender;
  UdpSocket receiver;
  const auto payload = Bytes("hello dmfsgd");
  sender.SendTo(payload, receiver.Port());
  const auto datagram = receiver.Receive(1000);
  ASSERT_TRUE(datagram.has_value());
  EXPECT_EQ(datagram->payload, payload);
  EXPECT_EQ(datagram->sender_port, sender.Port());
}

TEST(UdpSocket, ReceiveTimesOutWhenIdle) {
  UdpSocket socket;
  EXPECT_FALSE(socket.Receive(0).has_value());
  EXPECT_FALSE(socket.Receive(10).has_value());
}

TEST(UdpSocket, RejectsEmptyPayload) {
  UdpSocket socket;
  EXPECT_THROW(socket.SendTo({}, socket.Port()), std::invalid_argument);
}

TEST(UdpSocket, PreservesMessageBoundaries) {
  UdpSocket sender;
  UdpSocket receiver;
  sender.SendTo(Bytes("one"), receiver.Port());
  sender.SendTo(Bytes("twotwo"), receiver.Port());
  const auto first = receiver.Receive(1000);
  const auto second = receiver.Receive(1000);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->payload.size(), 3u);
  EXPECT_EQ(second->payload.size(), 6u);
}

TEST(UdpSocket, MoveTransfersOwnership) {
  UdpSocket original;
  const std::uint16_t port = original.Port();
  UdpSocket moved(std::move(original));
  EXPECT_EQ(moved.Port(), port);
  UdpSocket sender;
  sender.SendTo(Bytes("x"), port);
  EXPECT_TRUE(moved.Receive(1000).has_value());
  EXPECT_THROW((void)original.Receive(0), std::runtime_error);  // NOLINT
}

TEST(UdpSocket, SelfSendWorks) {
  UdpSocket socket;
  socket.SendTo(Bytes("loop"), socket.Port());
  const auto datagram = socket.Receive(1000);
  ASSERT_TRUE(datagram.has_value());
  EXPECT_EQ(datagram->sender_port, socket.Port());
}

}  // namespace
}  // namespace dmfsgd::transport
