#include "transport/udp_peer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/hps3.hpp"
#include "datasets/meridian.hpp"
#include "core/wire.hpp"
#include "eval/roc.hpp"

namespace dmfsgd::transport {
namespace {

using datasets::Dataset;

Dataset SmallRtt() {
  datasets::MeridianConfig config;
  config.node_count = 40;
  config.seed = 31;
  return datasets::MakeMeridian(config);
}

Dataset SmallAbw() {
  datasets::HpS3Config config;
  config.host_count = 30;
  config.missing_fraction = 0.0;
  config.seed = 33;
  return datasets::MakeHpS3(config);
}

/// Builds a fully-wired loopback swarm: every peer neighbors `k` others.
std::vector<std::unique_ptr<UdpDmfsgdPeer>> MakeSwarm(const Dataset& dataset,
                                                      double tau, std::size_t k) {
  const bool symmetric = dataset.metric == datasets::Metric::kRtt;
  MeasurementFn measure = [&dataset, tau](core::NodeId prober,
                                          core::NodeId target) {
    return static_cast<double>(datasets::ClassOf(
        dataset.metric, dataset.Quantity(prober, target), tau));
  };
  std::vector<std::unique_ptr<UdpDmfsgdPeer>> peers;
  for (std::size_t i = 0; i < dataset.NodeCount(); ++i) {
    UdpPeerConfig config;
    config.id = static_cast<core::NodeId>(i);
    config.symmetric_metric = symmetric;
    config.tau = tau;
    config.seed = 100 + i;
    peers.push_back(std::make_unique<UdpDmfsgdPeer>(config, measure));
  }
  common::Rng rng(7);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    const auto picks = rng.SampleWithoutReplacement(peers.size() - 1, k);
    for (const std::size_t p : picks) {
      const std::size_t j = p < i ? p : p + 1;  // skip self
      peers[i]->AddNeighbor(static_cast<core::NodeId>(j), peers[j]->Port());
    }
  }
  return peers;
}

void RunRounds(std::vector<std::unique_ptr<UdpDmfsgdPeer>>& peers,
               std::size_t rounds) {
  for (std::size_t round = 0; round < rounds; ++round) {
    for (auto& peer : peers) {
      peer->Probe();
    }
    // Pump until the swarm drains (requests spawn replies).
    std::size_t handled = 1;
    while (handled > 0) {
      handled = 0;
      for (auto& peer : peers) {
        handled += peer->Pump();
      }
    }
  }
}

TEST(UdpPeer, RequiresMeasurementCallback) {
  EXPECT_THROW(UdpDmfsgdPeer(UdpPeerConfig{}, MeasurementFn{}),
               std::invalid_argument);
}

TEST(UdpPeer, RejectsSelfNeighbor) {
  UdpPeerConfig config;
  config.id = 3;
  UdpDmfsgdPeer peer(config, [](core::NodeId, core::NodeId) { return 1.0; });
  EXPECT_THROW(peer.AddNeighbor(3, 12345), std::invalid_argument);
  EXPECT_EQ(peer.NeighborCount(), 0u);
}

TEST(UdpPeer, ProbeWithoutNeighborsIsNoOp) {
  UdpDmfsgdPeer peer(UdpPeerConfig{},
                     [](core::NodeId, core::NodeId) { return 1.0; });
  EXPECT_NO_THROW(peer.Probe());
  EXPECT_EQ(peer.Pump(), 0u);
}

TEST(UdpPeer, RttExchangeAppliesMeasurementAtProber) {
  const Dataset dataset = SmallRtt();
  const double tau = dataset.MedianValue();
  auto peers = MakeSwarm(dataset, tau, 5);
  RunRounds(peers, 3);
  // Every peer probed 3 times; each successful exchange applies exactly one
  // measurement at the prober.
  for (const auto& peer : peers) {
    EXPECT_EQ(peer->MeasurementsApplied(), 3u);
    EXPECT_EQ(peer->MalformedDatagrams(), 0u);
  }
}

TEST(UdpPeer, AbwExchangeAppliesMeasurementAtTarget) {
  const Dataset dataset = SmallAbw();
  const double tau = dataset.MedianValue();
  auto peers = MakeSwarm(dataset, tau, 5);
  RunRounds(peers, 3);
  std::size_t total = 0;
  for (const auto& peer : peers) {
    total += peer->MeasurementsApplied();
  }
  // ABW measurements are counted at targets: 3 probes per node => 3n total.
  EXPECT_EQ(total, 3u * peers.size());
}

TEST(UdpPeer, SwarmLearnsOverRealSockets) {
  const Dataset dataset = SmallRtt();
  const double tau = dataset.MedianValue();
  auto peers = MakeSwarm(dataset, tau, 10);
  RunRounds(peers, 250);

  // Evaluate over all ordered pairs using live coordinates.
  std::vector<double> scores;
  std::vector<int> labels;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    for (std::size_t j = 0; j < peers.size(); ++j) {
      if (i == j) {
        continue;
      }
      scores.push_back(peers[i]->Predict(peers[j]->node().v()));
      labels.push_back(
          datasets::ClassOf(dataset.metric, dataset.Quantity(i, j), tau));
    }
  }
  EXPECT_GT(eval::Auc(scores, labels), 0.85);
}

/// MakeSwarm with the batched message plane on: bursts of `burst` probes,
/// packed request/reply datagrams, mini-batch folds at the receivers.
std::vector<std::unique_ptr<UdpDmfsgdPeer>> MakeBatchedSwarm(
    const Dataset& dataset, double tau, std::size_t k, std::size_t burst,
    bool coalesce, bool compile_rounds = false) {
  const bool symmetric = dataset.metric == datasets::Metric::kRtt;
  // The peer copies the callback; `dataset` must outlive the swarm (it does
  // — both live in the test scope).
  MeasurementFn measure = [&dataset, tau](core::NodeId prober,
                                          core::NodeId target) {
    return static_cast<double>(datasets::ClassOf(
        dataset.metric, dataset.Quantity(prober, target), tau));
  };
  std::vector<std::unique_ptr<UdpDmfsgdPeer>> peers;
  for (std::size_t i = 0; i < dataset.NodeCount(); ++i) {
    UdpPeerConfig config;
    config.id = static_cast<core::NodeId>(i);
    config.symmetric_metric = symmetric;
    config.tau = tau;
    config.seed = 100 + i;
    config.probe_burst = burst;
    config.coalesce_delivery = coalesce;
    config.compile_rounds = compile_rounds;
    peers.push_back(std::make_unique<UdpDmfsgdPeer>(config, measure));
  }
  common::Rng rng(7);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    const auto picks = rng.SampleWithoutReplacement(peers.size() - 1, k);
    for (const std::size_t p : picks) {
      const std::size_t j = p < i ? p : p + 1;  // skip self
      peers[i]->AddNeighbor(static_cast<core::NodeId>(j), peers[j]->Port());
    }
  }
  return peers;
}

TEST(UdpPeer, BatchedSwarmLearnsWithFewerDatagrams) {
  // Same probe budget (burst 4 x 80 rounds), coalesced vs per-message: the
  // packed datagrams and receive-side mini-batch folds must preserve
  // learning quality while measurably cutting the datagram count.
  const Dataset dataset = SmallRtt();
  const double tau = dataset.MedianValue();
  auto evaluate = [&](std::vector<std::unique_ptr<UdpDmfsgdPeer>>& peers) {
    std::vector<double> scores;
    std::vector<int> labels;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      for (std::size_t j = 0; j < peers.size(); ++j) {
        if (i == j) {
          continue;
        }
        scores.push_back(peers[i]->Predict(peers[j]->node().v()));
        labels.push_back(
            datasets::ClassOf(dataset.metric, dataset.Quantity(i, j), tau));
      }
    }
    return eval::Auc(scores, labels);
  };
  auto datagrams = [](std::vector<std::unique_ptr<UdpDmfsgdPeer>>& peers) {
    std::size_t total = 0;
    std::size_t applied = 0;
    for (const auto& peer : peers) {
      total += peer->DatagramsSent();
      applied += peer->MeasurementsApplied();
    }
    return std::pair<std::size_t, std::size_t>(total, applied);
  };

  auto per_message = MakeBatchedSwarm(dataset, tau, 8, 4, /*coalesce=*/false);
  RunRounds(per_message, 80);
  const auto [datagrams_plain, applied_plain] = datagrams(per_message);
  const double auc_plain = evaluate(per_message);

  auto coalesced = MakeBatchedSwarm(dataset, tau, 8, 4, /*coalesce=*/true);
  RunRounds(coalesced, 80);
  const auto [datagrams_packed, applied_packed] = datagrams(coalesced);
  const double auc_packed = evaluate(coalesced);

  EXPECT_GT(applied_plain, 0u);
  EXPECT_EQ(applied_plain, applied_packed);  // same measurement budget
  EXPECT_GT(auc_plain, 0.85);
  EXPECT_GT(auc_packed, 0.85);
  // Duplicate picks pack requests; request batches come back as one reply
  // datagram per prober.  The exact ratio depends on pick collisions, but
  // the direction must be unmistakable.
  EXPECT_LT(datagrams_packed, datagrams_plain * 9 / 10);
}

TEST(UdpPeer, AbwBatchedSwarmFoldsAtBothEnds) {
  // Algorithm 2: a packed request batch folds eq. 13 at the target and the
  // packed reply batch folds eq. 12 at the prober.
  const Dataset dataset = SmallAbw();
  const double tau = dataset.MedianValue();
  auto peers = MakeBatchedSwarm(dataset, tau, 8, 4, /*coalesce=*/true);
  RunRounds(peers, 60);
  std::size_t applied = 0;
  for (const auto& peer : peers) {
    applied += peer->MeasurementsApplied();
    EXPECT_EQ(peer->MalformedDatagrams(), 0u);
  }
  EXPECT_EQ(applied, dataset.NodeCount() * 60 * 4);
}

TEST(UdpPeer, CompiledEnvelopesKeepPerMessageSemantics) {
  // compile_rounds on the receive path (DESIGN.md §14): packed envelopes
  // stay packed on the wire, but each item applies its own per-message
  // gradient step through one hoisted kernel table — so the measurement
  // accounting matches the per-message budget exactly, nothing is
  // rejected, and the swarm still learns.  Both algorithms: RTT folds at
  // the prober, ABW at the target then the prober.
  for (const bool rtt : {true, false}) {
    const Dataset dataset = rtt ? SmallRtt() : SmallAbw();
    const double tau = dataset.MedianValue();
    auto peers = MakeBatchedSwarm(dataset, tau, 8, 4, /*coalesce=*/true,
                                  /*compile_rounds=*/true);
    RunRounds(peers, 60);
    std::size_t applied = 0;
    for (const auto& peer : peers) {
      applied += peer->MeasurementsApplied();
      EXPECT_EQ(peer->MalformedDatagrams(), 0u);
    }
    EXPECT_EQ(applied, dataset.NodeCount() * 60 * 4);
    std::vector<double> scores;
    std::vector<int> labels;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      for (std::size_t j = 0; j < peers.size(); ++j) {
        if (i == j) {
          continue;
        }
        scores.push_back(peers[i]->Predict(peers[j]->node().v()));
        labels.push_back(
            datasets::ClassOf(dataset.metric, dataset.Quantity(i, j), tau));
      }
    }
    EXPECT_GT(eval::Auc(scores, labels), 0.85) << (rtt ? "rtt" : "abw");
  }
}

TEST(UdpPeer, MalformedDatagramsAreCountedNotFatal) {
  const Dataset dataset = SmallRtt();
  const double tau = dataset.MedianValue();
  auto peers = MakeSwarm(dataset, tau, 3);

  UdpSocket attacker;
  // Garbage, truncated header, wrong version, and an oversized-length lie.
  attacker.SendTo(std::vector<std::byte>{std::byte{0xff}, std::byte{0xee}},
                  peers[0]->Port());
  attacker.SendTo(std::vector<std::byte>{std::byte{1}}, peers[0]->Port());
  auto bad_version = core::Encode(core::RttProbeRequest{1});
  bad_version[0] = std::byte{99};
  attacker.SendTo(bad_version, peers[0]->Port());
  auto truncated = core::Encode(core::RttProbeReply{1, {1.0, 2.0}, {3.0}});
  truncated.resize(truncated.size() / 2);
  attacker.SendTo(truncated, peers[0]->Port());

  EXPECT_EQ(peers[0]->Pump(), 4u);
  EXPECT_EQ(peers[0]->MalformedDatagrams(), 4u);
  // The peer still works afterwards.
  RunRounds(peers, 2);
  EXPECT_EQ(peers[0]->MeasurementsApplied(), 2u);
}

TEST(UdpPeer, RankMismatchFromForeignDeploymentIsDropped) {
  const Dataset dataset = SmallRtt();
  const double tau = dataset.MedianValue();
  auto peers = MakeSwarm(dataset, tau, 3);

  // A well-formed reply whose vectors have the wrong rank (a node from a
  // deployment configured with r = 4 instead of 10).
  UdpSocket foreign;
  const core::RttProbeReply reply{7, std::vector<double>(4, 0.5),
                                  std::vector<double>(4, 0.5)};
  foreign.SendTo(core::Encode(reply), peers[0]->Port());
  EXPECT_EQ(peers[0]->Pump(), 1u);
  EXPECT_EQ(peers[0]->MalformedDatagrams(), 1u);
  EXPECT_EQ(peers[0]->MeasurementsApplied(), 0u);
}

}  // namespace
}  // namespace dmfsgd::transport
