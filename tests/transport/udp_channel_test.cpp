#include "transport/udp_channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/wire.hpp"
#include "datasets/meridian.hpp"
#include "eval/roc.hpp"
#include "transport/udp.hpp"

namespace dmfsgd::transport {
namespace {

using core::NodeId;
using core::ProtocolMessage;

TEST(UdpChannel, RegistersLocalNodesOnDistinctPorts) {
  UdpDeliveryChannel channel;
  const auto port_a = channel.Register(1);
  const auto port_b = channel.Register(2);
  EXPECT_NE(port_a, port_b);
  EXPECT_EQ(channel.Port(1), port_a);
  EXPECT_EQ(channel.LocalNodeCount(), 2u);
  EXPECT_TRUE(channel.HasContact(1));
  EXPECT_THROW((void)channel.Register(1), std::invalid_argument);
  EXPECT_THROW((void)channel.Port(9), std::out_of_range);
}

TEST(UdpChannel, SendValidatesEndpoints) {
  UdpDeliveryChannel channel;
  (void)channel.Register(1);
  EXPECT_THROW(channel.Send(7, 1, core::RttProbeRequest{7}),
               std::invalid_argument);  // 7 is not local
  EXPECT_THROW(channel.Send(1, 42, core::RttProbeRequest{1}),
               std::runtime_error);  // no contact for 42
}

TEST(UdpChannel, DeliversEveryMessageTypeThroughRealSockets) {
  UdpDeliveryChannel channel;
  (void)channel.Register(1);
  (void)channel.Register(2);
  std::vector<ProtocolMessage> received;
  std::vector<NodeId> receivers;
  channel.BindSink([&](const core::MessageBatch& batch) {
    for (const core::BatchItem& item : batch.items) {
      received.push_back(item.message);
      receivers.push_back(batch.to);
    }
  });

  channel.Send(1, 2, core::RttProbeRequest{1});
  channel.Send(2, 1, core::RttProbeReply{2, {1.0, 2.0}, {3.0, 4.0}});
  channel.Send(1, 2, core::AbwProbeRequest{1, {0.5}, 10.0});
  channel.Send(2, 1, core::AbwProbeReply{2, -1.0, {0.25}});
  while (channel.Pump() > 0) {
  }

  ASSERT_EQ(received.size(), 4u);
  EXPECT_EQ(channel.MalformedDatagrams(), 0u);
  std::size_t rtt_requests = 0;
  for (std::size_t m = 0; m < received.size(); ++m) {
    if (std::holds_alternative<core::RttProbeRequest>(received[m])) {
      ++rtt_requests;
      EXPECT_EQ(receivers[m], 2u);
    }
  }
  EXPECT_EQ(rtt_requests, 1u);
}

TEST(UdpChannel, MalformedDatagramsAreCountedNotDelivered) {
  UdpDeliveryChannel channel;
  (void)channel.Register(1);
  std::size_t delivered = 0;
  channel.BindSink(
      [&](const core::MessageBatch& batch) { delivered += batch.items.size(); });

  UdpSocket attacker;
  attacker.SendTo(std::vector<std::byte>{std::byte{0xff}, std::byte{0xee}},
                  channel.Port(1));
  auto bad_version = core::Encode(core::RttProbeRequest{1});
  bad_version[0] = std::byte{99};
  attacker.SendTo(bad_version, channel.Port(1));

  EXPECT_EQ(channel.Pump(), 2u);  // both handled...
  EXPECT_EQ(delivered, 0u);       // ...neither delivered
  EXPECT_EQ(channel.MalformedDatagrams(), 2u);
}

TEST(UdpChannel, LearnsReturnRoutesFromIncomingDatagrams) {
  UdpDeliveryChannel receiver_channel;
  (void)receiver_channel.Register(1);
  receiver_channel.BindSink([](const core::MessageBatch&) {});

  // A stranger (not introduced via AddContact) probes node 1.
  UdpDeliveryChannel stranger_channel;
  (void)stranger_channel.Register(77);
  stranger_channel.AddContact(1, receiver_channel.Port(1));
  stranger_channel.Send(77, 1, core::RttProbeRequest{77});
  while (receiver_channel.Pump() > 0) {
  }

  // Node 1 can now answer the stranger without any manual introduction.
  EXPECT_TRUE(receiver_channel.HasContact(77));
  EXPECT_NO_THROW(
      receiver_channel.Send(1, 77, core::RttProbeReply{1, {1.0}, {1.0}}));
}

TEST(UdpChannel, SendBatchPacksOneDatagramAndDeliversOneEnvelope) {
  UdpDeliveryChannel channel;
  (void)channel.Register(1);
  (void)channel.Register(2);
  std::vector<core::MessageBatch> delivered;
  channel.BindSink(
      [&](const core::MessageBatch& batch) { delivered.push_back(batch); });

  core::MessageBatch batch;
  batch.to = 2;
  batch.items.push_back(
      core::BatchItem{1, core::RttProbeReply{1, {1.0, 2.0}, {3.0, 4.0}}});
  batch.items.push_back(core::BatchItem{1, core::AbwProbeReply{1, -1.0, {0.5}}});
  batch.items.push_back(core::BatchItem{1, core::RttProbeRequest{1}});
  channel.SendBatch(batch);
  EXPECT_EQ(channel.DatagramsSent(), 1u);  // three messages, one datagram
  EXPECT_EQ(channel.MessagesSent(), 3u);

  while (channel.Pump() > 0) {
  }
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered.front().to, 2u);
  ASSERT_EQ(delivered.front().items.size(), 3u);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_TRUE(delivered.front().items[m].message == batch.items[m].message);
    EXPECT_EQ(delivered.front().items[m].from, 1u);
  }
  EXPECT_EQ(channel.MalformedDatagrams(), 0u);
}

TEST(UdpChannel, MalformedBatchDatagramsAreCountedNotDelivered) {
  UdpDeliveryChannel channel;
  (void)channel.Register(1);
  std::size_t delivered = 0;
  channel.BindSink(
      [&](const core::MessageBatch& batch) { delivered += batch.items.size(); });

  core::MessageBatch batch;
  batch.to = 1;
  batch.items.push_back(core::BatchItem{2, core::RttProbeRequest{2}});
  batch.items.push_back(
      core::BatchItem{3, core::RttProbeReply{3, {1.0}, {2.0}}});
  const auto frame = core::EncodeBatchFrame(batch);

  UdpSocket attacker;
  // Truncated at an arbitrary interior point, zero count, garbage inner tag.
  attacker.SendTo(std::span<const std::byte>(frame.data(), frame.size() - 3),
                  channel.Port(1));
  auto zero_count = frame;
  zero_count[2] = std::byte{0};
  zero_count[3] = std::byte{0};
  attacker.SendTo(zero_count, channel.Port(1));
  auto bad_inner = frame;
  bad_inner[9] = std::byte{77};
  attacker.SendTo(bad_inner, channel.Port(1));

  EXPECT_EQ(channel.Pump(), 3u);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(channel.MalformedDatagrams(), 3u);

  // A good batch afterwards still flows.
  attacker.SendTo(frame, channel.Port(1));
  EXPECT_EQ(channel.Pump(), 1u);
  EXPECT_EQ(delivered, 2u);
}

TEST(UdpChannel, OversizedBatchesSplitAcrossDatagrams) {
  UdpDeliveryChannel channel;
  (void)channel.Register(1);
  (void)channel.Register(2);
  std::size_t messages = 0;
  std::size_t envelopes = 0;
  channel.BindSink([&](const core::MessageBatch& batch) {
    ++envelopes;
    messages += batch.items.size();
  });
  // ~200 replies with rank-32 vectors ≈ 2 x the datagram budget.
  core::MessageBatch batch;
  batch.to = 2;
  for (std::size_t m = 0; m < 200; ++m) {
    batch.items.push_back(core::BatchItem{
        1, core::RttProbeReply{1, std::vector<double>(32, 0.25),
                               std::vector<double>(32, 0.5)}});
  }
  channel.SendBatch(batch);
  EXPECT_GT(channel.DatagramsSent(), 1u);
  EXPECT_LT(channel.DatagramsSent(), 200u);
  while (channel.Pump(256) > 0) {
  }
  EXPECT_EQ(messages, 200u);
  EXPECT_EQ(envelopes, channel.DatagramsSent());
  EXPECT_EQ(channel.MalformedDatagrams(), 0u);
}

TEST(UdpChannel, ForeignButWellFormedDatagramsCannotCrashTheEngine) {
  // Decodes cleanly, but the ids/rank belong to some other deployment: the
  // engine sink rejects it, and Pump must count-and-drop, never crash.
  datasets::MeridianConfig dataset_config;
  dataset_config.node_count = 20;
  dataset_config.seed = 23;
  const auto dataset = datasets::MakeMeridian(dataset_config);

  core::SimulationConfig config;
  config.neighbor_count = 5;
  config.tau = dataset.MedianValue();

  UdpDeliveryChannel channel;
  for (std::size_t i = 0; i < dataset.NodeCount(); ++i) {
    (void)channel.Register(static_cast<NodeId>(i));
  }
  core::DeploymentEngine engine(dataset, config, nullptr, channel);

  UdpSocket foreign;
  // Node id far outside this deployment; rank from another deployment.
  foreign.SendTo(core::Encode(core::RttProbeReply{
                     1000, std::vector<double>(10, 0.5),
                     std::vector<double>(10, 0.5)}),
                 channel.Port(0));
  foreign.SendTo(core::Encode(core::RttProbeReply{
                     3, std::vector<double>(4, 0.5),
                     std::vector<double>(4, 0.5)}),
                 channel.Port(0));

  EXPECT_NO_THROW((void)channel.Pump());
  EXPECT_EQ(channel.MalformedDatagrams(), 2u);
  EXPECT_EQ(engine.MeasurementCount(), 0u);

  // The deployment still works afterwards.
  engine.StartExchange(0, engine.PickNeighbor(0), std::nullopt);
  while (channel.Pump() > 0) {
  }
  EXPECT_EQ(engine.MeasurementCount(), 1u);
  EXPECT_EQ(engine.InFlight(), 0u);
}

TEST(UdpChannel, FullDeploymentEngineRunsOverRealSockets) {
  // The headline of the channel abstraction: the exact engine the simulators
  // use — membership, strategies, measurement pipeline, Algorithm 1 state
  // machine — drives a swarm of real UDP sockets without modification.
  datasets::MeridianConfig dataset_config;
  dataset_config.node_count = 30;
  dataset_config.seed = 17;
  const auto dataset = datasets::MakeMeridian(dataset_config);

  core::SimulationConfig config;
  config.neighbor_count = 8;
  config.tau = dataset.MedianValue();
  config.seed = 3;

  UdpDeliveryChannel channel;
  for (std::size_t i = 0; i < dataset.NodeCount(); ++i) {
    (void)channel.Register(static_cast<NodeId>(i));
  }
  core::DeploymentEngine engine(dataset, config, nullptr, channel);

  const std::size_t rounds = 150;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (NodeId i = 0; i < engine.NodeCount(); ++i) {
      engine.StartExchange(i, engine.PickNeighbor(i), std::nullopt);
    }
    // Drain the swarm: requests spawn replies, replies apply measurements.
    while (channel.Pump() > 0) {
    }
  }

  EXPECT_EQ(channel.MalformedDatagrams(), 0u);
  EXPECT_EQ(engine.MeasurementCount(), rounds * engine.NodeCount());
  EXPECT_EQ(engine.InFlight(), 0u);

  std::vector<double> scores;
  std::vector<int> labels;
  for (std::size_t i = 0; i < dataset.NodeCount(); ++i) {
    for (std::size_t j = 0; j < dataset.NodeCount(); ++j) {
      if (i == j || engine.IsNeighborPair(i, j)) {
        continue;
      }
      scores.push_back(engine.Predict(i, j));
      labels.push_back(datasets::ClassOf(dataset.metric, dataset.Quantity(i, j),
                                         config.tau));
    }
  }
  EXPECT_GT(eval::Auc(scores, labels), 0.8);
}

}  // namespace
}  // namespace dmfsgd::transport
